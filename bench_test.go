package repro

// One benchmark per table/figure of the paper's evaluation (§4). Each
// benchmark measures the real work this repository can execute — the
// functional PIM-simulator kernels (which the paper-scale model
// extrapolates from) — and additionally reports the modeled paper-scale
// execution times of all four platforms as custom metrics, so
// `go test -bench=.` regenerates the paper's series:
//
//	model-pim-ms, model-cpu-ms, model-seal-ms, model-gpu-ms, speedup-vs-cpu
//
// Run a single figure with e.g. `go test -bench=Fig1a -benchmem`.

import (
	"fmt"
	"math/big"
	"sync"
	"testing"

	"repro/internal/bench"
	"repro/internal/bfv"
	"repro/internal/hepim"
	"repro/internal/hestats"
	"repro/internal/perfmodel"
	"repro/internal/pim"
	"repro/internal/pim/kernels"
	"repro/internal/poly"
	"repro/internal/sampling"
)

var (
	suiteOnce sync.Once
	suite     *bench.Suite
	suiteErr  error
)

func getSuite(b *testing.B) *bench.Suite {
	suiteOnce.Do(func() { suite, suiteErr = bench.NewSuite() })
	if suiteErr != nil {
		b.Fatal(suiteErr)
	}
	return suite
}

func mod109(b *testing.B) *poly.Modulus {
	q, _ := new(big.Int).SetString("649037107316853453566312041152481", 10)
	m, err := poly.NewModulus(q)
	if err != nil {
		b.Fatal(err)
	}
	return m
}

func randVec(src *sampling.Source, coeffs int, mod *poly.Modulus) []uint32 {
	out := make([]uint32, coeffs*mod.W)
	for i := 0; i < coeffs; i++ {
		copy(out[i*mod.W:(i+1)*mod.W], src.UniformNat(mod.Q, mod.W))
	}
	return out
}

func reportRow(b *testing.B, row benchRow) {
	b.ReportMetric(row.cpu*1e3, "model-cpu-ms")
	b.ReportMetric(row.pim*1e3, "model-pim-ms")
	b.ReportMetric(row.seal*1e3, "model-seal-ms")
	b.ReportMetric(row.gpu*1e3, "model-gpu-ms")
	b.ReportMetric(row.cpu/row.pim, "speedup-vs-cpu")
}

type benchRow struct{ cpu, pim, seal, gpu float64 }

// BenchmarkFig1aVectorAdd: Figure 1(a) — 128-bit ciphertext vector
// addition. The measured loop runs the real DPU addition kernel on a
// scaled-down shard (256 ciphertext polynomials on 8 DPUs); the reported
// model-* metrics are the paper-scale times.
func BenchmarkFig1aVectorAdd(b *testing.B) {
	s := getSuite(b)
	mod := mod109(b)
	src := sampling.NewSourceFromUint64(1)
	cfg := pim.DefaultConfig()
	cfg.NumDPUs = 8
	for _, elems := range []int{20480, 40960, 81920, 163840, 327680} {
		b.Run(fmt.Sprintf("cts=%d", elems), func(b *testing.B) {
			v := perfmodel.VectorSpec{Elems: elems, N: 4096, W: 4}
			row := benchRow{
				cpu:  s.CPU.VectorAddSeconds(v),
				pim:  s.PIM.VectorAddSeconds(v),
				seal: s.SEAL.VectorAddSeconds(v),
				gpu:  s.GPU.VectorAddSeconds(v),
			}
			coeffs := 256 * 64 // scaled-down functional shard
			a := randVec(src, coeffs, mod)
			bb := randVec(src, coeffs, mod)
			sys, err := pim.NewSystem(cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := kernels.RunVectorAdd(sys, a, bb, mod.W, mod.Q); err != nil {
					b.Fatal(err)
				}
			}
			reportRow(b, row)
		})
	}
}

// BenchmarkFig1bVectorMul: Figure 1(b) — 128-bit ciphertext vector
// multiplication. Functional shard: 2 polynomial pairs at n=64.
func BenchmarkFig1bVectorMul(b *testing.B) {
	s := getSuite(b)
	mod := mod109(b)
	src := sampling.NewSourceFromUint64(2)
	cfg := pim.DefaultConfig()
	cfg.NumDPUs = 2
	for _, elems := range []int{5120, 10240, 20480, 40960, 81920} {
		b.Run(fmt.Sprintf("cts=%d", elems), func(b *testing.B) {
			v := perfmodel.VectorSpec{Elems: elems, N: 4096, W: 4}
			row := benchRow{
				cpu:  s.CPU.VectorMulSeconds(v),
				pim:  s.PIM.VectorMulSeconds(v),
				seal: s.SEAL.VectorMulSeconds(v),
				gpu:  s.GPU.VectorMulSeconds(v),
			}
			n := 64
			a := randVec(src, 2*n, mod)
			bb := randVec(src, 2*n, mod)
			sys, err := pim.NewSystem(cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := kernels.RunVectorPolyMul(sys, a, bb, n, mod.W, mod.Q); err != nil {
					b.Fatal(err)
				}
			}
			reportRow(b, row)
		})
	}
}

func statsBench(b *testing.B, f func(perfmodel.Model, perfmodel.StatsSpec) float64, spec perfmodel.StatsSpec) {
	s := getSuite(b)
	row := benchRow{
		cpu:  f(s.CPU, spec),
		pim:  f(s.PIM, spec),
		seal: f(s.SEAL, spec),
		gpu:  f(s.GPU, spec),
	}
	// Functional core: the same workload at toy scale on the PIM server.
	params := toyStatsParams(b)
	src := sampling.NewSourceFromUint64(3)
	kg := bfv.NewKeyGenerator(params, src)
	sk, pk := kg.GenKeyPair()
	rlk := kg.GenRelinKey(sk)
	enc := bfv.NewEncryptor(params, pk, src)
	cfg := pim.DefaultConfig()
	cfg.NumDPUs = 4
	srv, err := hepim.NewServer(cfg, params, rlk)
	if err != nil {
		b.Fatal(err)
	}
	cts := make([]*bfv.Ciphertext, 8)
	for i := range cts {
		ct, err := enc.EncryptValue(uint64(i % 5))
		if err != nil {
			b.Fatal(err)
		}
		cts[i] = ct
	}
	_ = sk
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hestats.Mean(srv, cts); err != nil {
			b.Fatal(err)
		}
	}
	reportRow(b, row)
}

func toyStatsParams(b *testing.B) *bfv.Parameters {
	q, _ := new(big.Int).SetString("1152921504606846883", 10)
	p, err := bfv.NewParameters(64, q, 257, 20)
	if err != nil {
		b.Fatal(err)
	}
	return p
}

// BenchmarkFig2aMean: Figure 2(a) — arithmetic mean across user counts.
func BenchmarkFig2aMean(b *testing.B) {
	for _, u := range []int{640, 1280, 2560} {
		b.Run(fmt.Sprintf("users=%d", u), func(b *testing.B) {
			statsBench(b, func(m perfmodel.Model, s perfmodel.StatsSpec) float64 {
				return m.MeanSeconds(s)
			}, perfmodel.PaperStatsSpec(u))
		})
	}
}

// BenchmarkFig2bVariance: Figure 2(b) — variance across user counts.
func BenchmarkFig2bVariance(b *testing.B) {
	for _, u := range []int{640, 1280, 2560} {
		b.Run(fmt.Sprintf("users=%d", u), func(b *testing.B) {
			statsBench(b, func(m perfmodel.Model, s perfmodel.StatsSpec) float64 {
				return m.VarianceSeconds(s)
			}, perfmodel.PaperStatsSpec(u))
		})
	}
}

// BenchmarkFig2cLinReg: Figure 2(c) — linear regression at 32 and 64
// ciphertexts per user.
func BenchmarkFig2cLinReg(b *testing.B) {
	for _, cts := range []int{32, 64} {
		b.Run(fmt.Sprintf("cts=%d", cts), func(b *testing.B) {
			spec := perfmodel.PaperStatsSpec(640)
			spec.CtsPerUser = cts
			statsBench(b, func(m perfmodel.Model, s perfmodel.StatsSpec) float64 {
				return m.LinRegSeconds(s)
			}, spec)
		})
	}
}

// BenchmarkWidthSweep: §4.2 text — 32/64/128-bit add and mul.
func BenchmarkWidthSweep(b *testing.B) {
	s := getSuite(b)
	nFor := map[int]int{1: 1024, 2: 2048, 4: 4096}
	for _, w := range []int{1, 2, 4} {
		for _, op := range []string{"add", "mul"} {
			b.Run(fmt.Sprintf("bits=%d/%s", 32*w, op), func(b *testing.B) {
				var v perfmodel.VectorSpec
				var row benchRow
				if op == "add" {
					v = perfmodel.VectorSpec{Elems: 20480, N: nFor[w], W: w}
					row = benchRow{s.CPU.VectorAddSeconds(v), s.PIM.VectorAddSeconds(v),
						s.SEAL.VectorAddSeconds(v), s.GPU.VectorAddSeconds(v)}
				} else {
					v = perfmodel.VectorSpec{Elems: 5120, N: nFor[w], W: w}
					row = benchRow{s.CPU.VectorMulSeconds(v), s.PIM.VectorMulSeconds(v),
						s.SEAL.VectorMulSeconds(v), s.GPU.VectorMulSeconds(v)}
				}
				for i := 0; i < b.N; i++ {
					_ = s.PIM.MulCyclesPerPair(w, nFor[w])
				}
				reportRow(b, row)
			})
		}
	}
}

// BenchmarkTaskletSweep: §4.2 observation 1 — kernel cycles vs tasklet
// count on one simulated DPU (saturation at ≥ 11).
func BenchmarkTaskletSweep(b *testing.B) {
	mod := mod109(b)
	src := sampling.NewSourceFromUint64(4)
	a := randVec(src, 8192, mod)
	bb := randVec(src, 8192, mod)
	for _, tk := range []int{1, 2, 4, 8, 11, 16, 24} {
		b.Run(fmt.Sprintf("tasklets=%d", tk), func(b *testing.B) {
			cfg := pim.DefaultConfig()
			cfg.NumDPUs = 1
			cfg.Tasklets = tk
			sys, err := pim.NewSystem(cfg)
			if err != nil {
				b.Fatal(err)
			}
			var cycles int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, rep, err := kernels.RunVectorAdd(sys, a, bb, mod.W, mod.Q)
				if err != nil {
					b.Fatal(err)
				}
				cycles = rep.KernelCycles
			}
			b.ReportMetric(float64(cycles), "sim-cycles")
			b.ReportMetric(float64(cycles)/425e3, "sim-ms")
		})
	}
}

// BenchmarkAblationNativeMul32: Key Takeaway 2 — multiplication with the
// hypothetical native 32-bit multiplier vs the shift-and-add baseline.
func BenchmarkAblationNativeMul32(b *testing.B) {
	mod := mod109(b)
	src := sampling.NewSourceFromUint64(5)
	n := 64
	a := randVec(src, n, mod)
	bb := randVec(src, n, mod)
	for _, variant := range []struct {
		name string
		cost *pim.CostModel
	}{
		{"shift-and-add", pim.DefaultCostModel()},
		{"native-mul32", pim.NativeMul32CostModel()},
	} {
		b.Run(variant.name, func(b *testing.B) {
			cfg := pim.DefaultConfig()
			cfg.NumDPUs = 1
			cfg.Cost = variant.cost
			sys, err := pim.NewSystem(cfg)
			if err != nil {
				b.Fatal(err)
			}
			var cycles int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, rep, err := kernels.RunVectorPolyMul(sys, a, bb, n, mod.W, mod.Q)
				if err != nil {
					b.Fatal(err)
				}
				cycles = rep.KernelCycles
			}
			b.ReportMetric(float64(cycles), "sim-cycles")
		})
	}
}

// BenchmarkHostEvaluator measures the real host BFV evaluator (toy ring):
// the functional cost of Add and Mul this library delivers.
func BenchmarkHostEvaluator(b *testing.B) {
	params := bfv.ParamsToy()
	src := sampling.NewSourceFromUint64(6)
	kg := bfv.NewKeyGenerator(params, src)
	sk, pk := kg.GenKeyPair()
	rlk := kg.GenRelinKey(sk)
	_ = sk
	enc := bfv.NewEncryptor(params, pk, src)
	eval := bfv.NewEvaluator(params, rlk)
	ct1, _ := enc.EncryptValue(3)
	ct2, _ := enc.EncryptValue(5)

	b.Run("Add", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			eval.Add(ct1, ct2)
		}
	})
	b.Run("Mul", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := eval.Mul(ct1, ct2); err != nil {
				b.Fatal(err)
			}
		}
	})
}
