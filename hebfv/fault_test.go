package hebfv

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/dcrt"
	"repro/internal/faultinject"
)

// Fault-tolerance tests: differential runs under injected DPU faults,
// backend failover, and the no-panic error contract of the public API.

// runWorkload drives one fixed slot-level workload and returns the
// decrypted result of each step. Both contexts in a differential pair
// must consume randomness identically, so the op sequence is fixed.
func runWorkload(t *testing.T, ctx *Context) [][]uint64 {
	t.Helper()
	a := []uint64{3, 1, 4, 1, 5, 9, 2, 6}
	b := []uint64{2, 7, 1, 8, 2, 8, 1, 8}
	ca, err := ctx.EncryptSlots(a)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := ctx.EncryptSlots(b)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := ctx.Add(ca, cb)
	if err != nil {
		t.Fatal(err)
	}
	prod, err := ctx.Mul(ca, cb)
	if err != nil {
		t.Fatal(err)
	}
	rot, err := ctx.RotateRows(sum, 3)
	if err != nil {
		t.Fatal(err)
	}
	inner, err := ctx.InnerSum(prod)
	if err != nil {
		t.Fatal(err)
	}
	var out [][]uint64
	for _, ct := range []*Ciphertext{sum, prod, rot, inner} {
		slots, err := ctx.DecryptSlots(ct)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, slots)
	}
	return out
}

// TestFaultDifferentialPIMvsDCRTNative injects a 10% transient DPU
// fault rate (plus deaths and stragglers) into the pim backend and
// asserts its results stay bit-identical to dcrt-native, with the fault
// toll visible in the stats — the acceptance bar of the fault model.
func TestFaultDifferentialPIMvsDCRTNative(t *testing.T) {
	pimCtx, err := New(WithInsecureToyParameters(), WithSeed(42),
		WithBackend("pim"), WithPIMDPUs(8),
		WithPIMFaultInjection(7, 0.10, 0.01, 0.05))
	if err != nil {
		t.Fatal(err)
	}
	hostCtx, err := New(WithInsecureToyParameters(), WithSeed(42))
	if err != nil {
		t.Fatal(err)
	}

	got := runWorkload(t, pimCtx)
	want := runWorkload(t, hostCtx)
	for step := range want {
		for i := range want[step] {
			if got[step][i] != want[step][i] {
				t.Fatalf("step %d slot %d: pim %d, dcrt-native %d", step, i, got[step][i], want[step][i])
			}
		}
	}

	ps, ok := pimCtx.PIMStats()
	if !ok {
		t.Fatal("pim context reports no fault stats")
	}
	if ps.TransientFaults == 0 || ps.Retries == 0 {
		t.Fatalf("10%% transient rate left no trace: %+v", ps)
	}
	if _, ok := hostCtx.PIMStats(); ok {
		t.Fatal("dcrt-native context claims fault stats")
	}
	if launches, _, ok := pimCtx.PIMReport(); !ok || launches == 0 {
		t.Fatalf("PIMReport broken under faults: launches=%d ok=%v", launches, ok)
	}
}

// TestFailoverToHostBackend kills every DPU and asserts the pim context
// degrades to the host engine with identical results and a recorded
// failover.
func TestFailoverToHostBackend(t *testing.T) {
	pimCtx, err := New(WithInsecureToyParameters(), WithSeed(11),
		WithBackend("pim"), WithPIMDPUs(4),
		WithPIMFaultInjection(1, 0, 1 /*every DPU dies*/, 0))
	if err != nil {
		t.Fatal(err)
	}
	hostCtx, err := New(WithInsecureToyParameters(), WithSeed(11))
	if err != nil {
		t.Fatal(err)
	}

	got := runWorkload(t, pimCtx)
	want := runWorkload(t, hostCtx)
	for step := range want {
		for i := range want[step] {
			if got[step][i] != want[step][i] {
				t.Fatalf("step %d slot %d: failed-over pim %d, host %d", step, i, got[step][i], want[step][i])
			}
		}
	}

	fs, ok := pimCtx.FailoverStats()
	if !ok || !fs.Engaged {
		t.Fatalf("failover not engaged: %+v (ok=%v)", fs, ok)
	}
	if fs.Primary != "pim" || fs.Fallback != DefaultBackend || fs.FailedOps == 0 || fs.Trigger == "" {
		t.Fatalf("failover stats incomplete: %+v", fs)
	}
	ps, _ := pimCtx.PIMStats()
	if ps.DeadDPUs == 0 {
		t.Fatalf("no DPU deaths recorded at rate 1: %+v", ps)
	}
	if fs2, ok := hostCtx.FailoverStats(); ok {
		t.Fatalf("host context claims a failover path: %+v", fs2)
	}
}

// TestSemanticErrorsDoNotFailover: an unsupported operation on the pim
// backend must surface its own error, not silently degrade the backend.
func TestSemanticErrorsDoNotFailover(t *testing.T) {
	ctx, err := New(WithInsecureToyParameters(), WithSeed(5), WithBackend("pim"), WithPIMDPUs(4))
	if err != nil {
		t.Fatal(err)
	}
	ct, err := ctx.EncryptValue(9)
	if err != nil {
		t.Fatal(err)
	}
	_, err = ctx.MulPlain(ct, ctx.EncodeValue(2))
	if err == nil || !strings.Contains(err.Error(), "does not implement MulPlain") {
		t.Fatalf("expected the pim MulPlain error, got %v", err)
	}
	if errors.Is(err, ErrBackendFailed) {
		t.Fatal("semantic error carries the fault-class sentinel")
	}
	if fs, _ := ctx.FailoverStats(); fs.Engaged {
		t.Fatalf("semantic error engaged failover: %+v", fs)
	}
}

// TestEvaluationOnlyContextTypedErrors: a context restored from
// ExportKeys(false) refuses secret-key operations with ErrNoSecretKey.
func TestEvaluationOnlyContextTypedErrors(t *testing.T) {
	owner, err := New(WithInsecureToyParameters(), WithSeed(3), WithRotations(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	blob, err := owner.ExportKeys(false)
	if err != nil {
		t.Fatal(err)
	}
	eval, err := New(WithInsecureToyParameters(), WithKeySet(blob))
	if err != nil {
		t.Fatal(err)
	}
	if eval.CanDecrypt() {
		t.Fatal("evaluation-only context claims decryption")
	}
	ct, err := eval.EncryptSlots([]uint64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eval.DecryptSlots(ct); !errors.Is(err, ErrNoSecretKey) {
		t.Fatalf("DecryptSlots: got %v, want ErrNoSecretKey", err)
	}
	if _, err := eval.Decrypt(ct); !errors.Is(err, ErrNoSecretKey) {
		t.Fatalf("Decrypt: got %v, want ErrNoSecretKey", err)
	}
	if _, err := eval.NoiseBudget(ct); !errors.Is(err, ErrNoSecretKey) {
		t.Fatalf("NoiseBudget: got %v, want ErrNoSecretKey", err)
	}
	if _, err := eval.ExportKeys(true); !errors.Is(err, ErrNoSecretKey) {
		t.Fatalf("ExportKeys(true): got %v, want ErrNoSecretKey", err)
	}
	// Rotation by a step with no cached key needs secret-key derivation.
	if _, err := eval.RotateRows(ct, 5); !errors.Is(err, ErrNoSecretKey) {
		t.Fatalf("RotateRows(uncached step): got %v, want ErrNoSecretKey", err)
	}
	// Cached steps still work.
	if _, err := eval.RotateRows(ct, 1); err != nil {
		t.Fatalf("RotateRows(cached step): %v", err)
	}
}

// TestHandleErrorsAreTyped audits the entry points reachable with
// user-controlled handles and shapes.
func TestHandleErrorsAreTyped(t *testing.T) {
	ctx, err := New(WithInsecureToyParameters(), WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	other, err := New(WithInsecureToyParameters(), WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	ct, err := ctx.EncryptValue(1)
	if err != nil {
		t.Fatal(err)
	}
	foreign, err := other.EncryptValue(1)
	if err != nil {
		t.Fatal(err)
	}

	if _, err := ctx.Add(nil, ct); !errors.Is(err, ErrNilHandle) {
		t.Fatalf("Add(nil): got %v, want ErrNilHandle", err)
	}
	if _, err := ctx.Add(ct, foreign); !errors.Is(err, ErrForeignHandle) {
		t.Fatalf("Add(foreign): got %v, want ErrForeignHandle", err)
	}
	if _, err := ctx.MulPlain(ct, nil); !errors.Is(err, ErrNilHandle) {
		t.Fatalf("MulPlain(nil plaintext): got %v, want ErrNilHandle", err)
	}
	if _, err := ctx.AddPlain(ct, other.EncodeValue(1)); !errors.Is(err, ErrForeignHandle) {
		t.Fatalf("AddPlain(foreign plaintext): got %v, want ErrForeignHandle", err)
	}
	if _, err := ctx.EncodeSlots(make([]uint64, ctx.Slots()+1)); err == nil {
		t.Fatal("EncodeSlots accepted more values than slots")
	}
	// Extreme rotation steps must reduce, not panic or overflow.
	for _, k := range []int{-1 << 30, 1 << 30, 0} {
		if _, err := ctx.RotateRows(ct, k); err != nil {
			t.Fatalf("RotateRows(%d): %v", k, err)
		}
	}
	if _, err := ctx.UnmarshalCiphertext([]byte("not a blob")); !errors.Is(err, ErrCorruptBlob) {
		t.Fatalf("UnmarshalCiphertext(garbage): got %v, want ErrCorruptBlob", err)
	}
	if _, err := ctx.Sum(nil); err == nil {
		t.Fatal("Sum(nil) accepted")
	}
	if _, err := ctx.MulMany([]*Ciphertext{ct}, nil); err == nil {
		t.Fatal("MulMany length mismatch accepted")
	}
}

// TestPoolPanicSurfacesAsBackendFailed arms the worker pool's panic
// injector and asserts an injected task panic crosses the public API as
// a typed ErrBackendFailed error — and that the pool (and a fresh
// context) works fine afterward.
func TestPoolPanicSurfacesAsBackendFailed(t *testing.T) {
	ctx, err := New(WithInsecureToyParameters(), WithSeed(8))
	if err != nil {
		t.Fatal(err)
	}
	as := make([]*Ciphertext, 4)
	bs := make([]*Ciphertext, 4)
	for i := range as {
		if as[i], err = ctx.EncryptValue(uint64(i)); err != nil {
			t.Fatal(err)
		}
		if bs[i], err = ctx.EncryptValue(uint64(i * i)); err != nil {
			t.Fatal(err)
		}
	}

	dcrt.SetFaultInjector(faultinject.New(4).SetRate(dcrt.SitePoolPanic, 1))
	_, err = ctx.AddMany(as, bs)
	dcrt.SetFaultInjector(nil)
	if !errors.Is(err, ErrBackendFailed) {
		t.Fatalf("injected pool panic surfaced as %v, want ErrBackendFailed", err)
	}

	// Disarmed, a fresh context evaluates normally on the same pool.
	fresh, err := New(WithInsecureToyParameters(), WithSeed(8))
	if err != nil {
		t.Fatal(err)
	}
	ca, err := fresh.EncryptValue(2)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := fresh.EncryptValue(3)
	if err != nil {
		t.Fatal(err)
	}
	out, err := fresh.AddMany([]*Ciphertext{ca}, []*Ciphertext{cb})
	if err != nil {
		t.Fatal(err)
	}
	v, err := fresh.DecryptValue(out[0])
	if err != nil {
		t.Fatal(err)
	}
	if v != 5 {
		t.Fatalf("post-recovery sum = %d, want 5", v)
	}
}
