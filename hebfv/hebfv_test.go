package hebfv_test

import (
	"strings"
	"sync"
	"testing"

	"repro/hebfv"
)

// toyCtx builds a deterministic toy-parameter context.
func toyCtx(t *testing.T, seed uint64, opts ...hebfv.Option) *hebfv.Context {
	t.Helper()
	ctx, err := hebfv.New(append([]hebfv.Option{
		hebfv.WithInsecureToyParameters(),
		hebfv.WithSeed(seed),
	}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	return ctx
}

func TestFacadeValueRoundTrip(t *testing.T) {
	ctx := toyCtx(t, 1)
	a, err := ctx.EncryptValue(3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ctx.EncryptValue(5)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := ctx.Add(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if v, err := ctx.DecryptValue(sum); err != nil || v != 8 {
		t.Fatalf("3+5 = %d, %v", v, err)
	}
	prod, err := ctx.Mul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if v, err := ctx.DecryptValue(prod); err != nil || v != 15 {
		t.Fatalf("3*5 = %d, %v", v, err)
	}
	diff, err := ctx.Sub(b, a)
	if err != nil {
		t.Fatal(err)
	}
	if v, err := ctx.DecryptValue(diff); err != nil || v != 2 {
		t.Fatalf("5-3 = %d, %v", v, err)
	}
	sq, err := ctx.Square(a)
	if err != nil {
		t.Fatal(err)
	}
	if v, err := ctx.DecryptValue(sq); err != nil || v != 9 {
		t.Fatalf("3^2 = %d, %v", v, err)
	}
	if budget, err := ctx.NoiseBudget(prod); err != nil || budget <= 0 {
		t.Fatalf("noise budget %d, %v", budget, err)
	}
}

func TestFacadeSlotRoundTripAndPlainOps(t *testing.T) {
	ctx := toyCtx(t, 2)
	n := ctx.Slots()
	if n != ctx.N() || ctx.RowSlots() != n/2 {
		t.Fatalf("slot geometry: slots=%d rows of %d, N=%d", n, ctx.RowSlots(), ctx.N())
	}
	vals := make([]uint64, n)
	for i := range vals {
		vals[i] = uint64(3*i + 1)
	}
	ct, err := ctx.EncryptSlots(vals)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ctx.DecryptSlots(ct)
	if err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if got[i] != vals[i]%ctx.PlaintextModulus() {
			t.Fatalf("slot %d: got %d want %d", i, got[i], vals[i])
		}
	}
	// Slot-wise plaintext operations.
	mask := make([]uint64, n)
	for i := range mask {
		mask[i] = uint64(i % 3)
	}
	pt, err := ctx.EncodeSlots(mask)
	if err != nil {
		t.Fatal(err)
	}
	summed, err := ctx.AddPlain(ct, pt)
	if err != nil {
		t.Fatal(err)
	}
	scaled, err := ctx.MulPlain(ct, pt)
	if err != nil {
		t.Fatal(err)
	}
	sumSlots, err := ctx.DecryptSlots(summed)
	if err != nil {
		t.Fatal(err)
	}
	mulSlots, err := ctx.DecryptSlots(scaled)
	if err != nil {
		t.Fatal(err)
	}
	tm := ctx.PlaintextModulus()
	for i := range vals {
		if sumSlots[i] != (vals[i]+mask[i])%tm {
			t.Fatalf("AddPlain slot %d: got %d", i, sumSlots[i])
		}
		if mulSlots[i] != (vals[i]*mask[i])%tm {
			t.Fatalf("MulPlain slot %d: got %d", i, mulSlots[i])
		}
	}
}

func TestFacadeRotationSemantics(t *testing.T) {
	ctx := toyCtx(t, 3)
	n, row := ctx.Slots(), ctx.RowSlots()
	vals := make([]uint64, n)
	for i := range vals {
		vals[i] = uint64(i)
	}
	ct, err := ctx.EncryptSlots(vals)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{1, 2, row - 1, -1, row, 0, 7} {
		rot, err := ctx.RotateRows(ct, k)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ctx.DecryptSlots(rot)
		if err != nil {
			t.Fatal(err)
		}
		for r := 0; r < 2; r++ {
			for col := 0; col < row; col++ {
				want := vals[r*row+((col+k%row+row)%row)]
				if got[r*row+col] != want {
					t.Fatalf("RotateRows(%d) slot (%d,%d): got %d want %d", k, r, col, got[r*row+col], want)
				}
			}
		}
	}
	swapped, err := ctx.RotateColumns(ct)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ctx.DecryptSlots(swapped)
	if err != nil {
		t.Fatal(err)
	}
	for col := 0; col < row; col++ {
		if got[col] != vals[row+col] || got[row+col] != vals[col] {
			t.Fatalf("RotateColumns column %d: got (%d,%d)", col, got[col], got[row+col])
		}
	}
	// InnerSum replicates the total of all slots into every slot.
	total := uint64(0)
	for _, v := range vals {
		total += v
	}
	total %= ctx.PlaintextModulus()
	inner, err := ctx.InnerSum(ct)
	if err != nil {
		t.Fatal(err)
	}
	got, err = ctx.DecryptSlots(inner)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != total {
			t.Fatalf("InnerSum slot %d: got %d want %d", i, got[i], total)
		}
	}
}

// TestFacadeDifferentialBackends proves the acceptance contract: facade
// results are bit-identical across backends — RotateRows and InnerSum
// slot semantics included. Key material is shared through ExportKeys so
// every context evaluates under identical keys, and ciphertexts cross
// contexts through the versioned serialization.
func TestFacadeDifferentialBackends(t *testing.T) {
	ref := toyCtx(t, 4)
	n := ref.Slots()
	vals := make([]uint64, n)
	for i := range vals {
		vals[i] = uint64(7*i + 2)
	}
	ctA, err := ref.EncryptSlots(vals)
	if err != nil {
		t.Fatal(err)
	}
	ctB, err := ref.EncryptValue(9)
	if err != nil {
		t.Fatal(err)
	}
	// Derive every Galois key the workload needs before exporting.
	if _, err := ref.RotateRows(ctA, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := ref.InnerSum(ctA); err != nil {
		t.Fatal(err)
	}
	keys, err := ref.ExportKeys(true)
	if err != nil {
		t.Fatal(err)
	}
	rawA, err := ctA.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	rawB, err := ctB.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}

	type results struct {
		add, mul, rot, cols, inner, rotSum, sum []byte
		rotMany                                 [][]byte
	}
	run := func(t *testing.T, backend string) results {
		ctx, err := hebfv.New(
			hebfv.WithInsecureToyParameters(),
			hebfv.WithBackend(backend),
			hebfv.WithKeySet(keys),
			hebfv.WithSeed(99), // encryption unused; keys come from the set
		)
		if err != nil {
			t.Fatal(err)
		}
		a, err := ctx.UnmarshalCiphertext(rawA)
		if err != nil {
			t.Fatal(err)
		}
		b, err := ctx.UnmarshalCiphertext(rawB)
		if err != nil {
			t.Fatal(err)
		}
		marshal := func(ct *hebfv.Ciphertext, err error) []byte {
			t.Helper()
			if err != nil {
				t.Fatal(err)
			}
			data, err := ct.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			return data
		}
		var r results
		r.add = marshal(ctx.Add(a, b))
		r.mul = marshal(ctx.Mul(a, b))
		r.rot = marshal(ctx.RotateRows(a, 3))
		r.cols = marshal(ctx.RotateColumns(a))
		r.inner = marshal(ctx.InnerSum(a))
		rotSum, err := ctx.RotateRowsAndSum([]*hebfv.Ciphertext{a}, []int{1, 3, 5})
		if err != nil {
			t.Fatal(err)
		}
		r.rotSum = marshal(rotSum[0], nil)
		r.sum = marshal(ctx.Sum([]*hebfv.Ciphertext{a, b, a}))
		many, err := ctx.RotateRowsMany(a, []int{1, 3, 5})
		if err != nil {
			t.Fatal(err)
		}
		for _, ct := range many {
			r.rotMany = append(r.rotMany, marshal(ct, nil))
		}
		return r
	}

	want := run(t, "dcrt-native")
	for _, backend := range []string{"schoolbook", "dcrt-legacy", "pim"} {
		got := run(t, backend)
		pairs := []struct {
			name       string
			have, need []byte
		}{
			{"Add", got.add, want.add},
			{"Mul", got.mul, want.mul},
			{"RotateRows", got.rot, want.rot},
			{"RotateColumns", got.cols, want.cols},
			{"InnerSum", got.inner, want.inner},
			{"RotateRowsAndSum", got.rotSum, want.rotSum},
			{"Sum", got.sum, want.sum},
		}
		for _, p := range pairs {
			if string(p.have) != string(p.need) {
				t.Errorf("backend %s: %s differs from dcrt-native", backend, p.name)
			}
		}
		if len(got.rotMany) != len(want.rotMany) {
			t.Fatalf("backend %s: RotateRowsMany count", backend)
		}
		for i := range got.rotMany {
			if string(got.rotMany[i]) != string(want.rotMany[i]) {
				t.Errorf("backend %s: RotateRowsMany[%d] differs from dcrt-native", backend, i)
			}
		}
	}
}

func TestFacadeEvaluationOnlyContext(t *testing.T) {
	owner := toyCtx(t, 5, hebfv.WithRotations(1, 2), hebfv.WithColumnRotation())
	pub, err := owner.ExportKeys(false)
	if err != nil {
		t.Fatal(err)
	}
	server, err := hebfv.New(
		hebfv.WithInsecureToyParameters(),
		hebfv.WithKeySet(pub),
		hebfv.WithSeed(6),
	)
	if err != nil {
		t.Fatal(err)
	}
	if server.CanDecrypt() {
		t.Fatal("evaluation-only context claims it can decrypt")
	}
	ct, err := server.EncryptSlots([]uint64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	rot, err := server.RotateRows(ct, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := server.Decrypt(rot); err == nil || !strings.Contains(err.Error(), "secret") {
		t.Fatalf("Decrypt on evaluation-only context: %v", err)
	}
	// A rotation whose key was not exported cannot be derived without the
	// secret key.
	if _, err := server.RotateRows(ct, 5); err == nil || !strings.Contains(err.Error(), "Galois") {
		t.Fatalf("unexported rotation step: %v", err)
	}
	// The owner decrypts the server's work: round-trip the ciphertext.
	blob, err := rot.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	back, err := owner.UnmarshalCiphertext(blob)
	if err != nil {
		t.Fatal(err)
	}
	got, err := owner.DecryptSlots(back)
	if err != nil {
		t.Fatal(err)
	}
	row := owner.RowSlots()
	if got[0] != 3 || got[1] != 4 || got[2] != 0 {
		t.Fatalf("rotated slots: %v (row=%d)", got[:4], row)
	}
}

// TestFacadeDeferredRotations pins the NTT-resident path: RotateRowsMany
// outputs (deferred on the native backend) must be bit-identical to
// serial RotateRows, and sums of deferred outputs must match
// coefficient-domain sums.
func TestFacadeDeferredRotations(t *testing.T) {
	ctx := toyCtx(t, 7)
	vals := make([]uint64, ctx.Slots())
	for i := range vals {
		vals[i] = uint64(5 * i)
	}
	ct, err := ctx.EncryptSlots(vals)
	if err != nil {
		t.Fatal(err)
	}
	ks := []int{1, 2, 3, 4}
	many, err := ctx.RotateRowsMany(ct, ks)
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range ks {
		serial, err := ctx.RotateRows(ct, k)
		if err != nil {
			t.Fatal(err)
		}
		if !many[i].Equal(serial) {
			t.Fatalf("deferred rotation k=%d differs from RotateRows", k)
		}
	}
	// NTT-domain fused sum vs coefficient-domain fold.
	many2, err := ctx.RotateRowsMany(ct, ks)
	if err != nil {
		t.Fatal(err)
	}
	fused := many2[0]
	for _, r := range many2[1:] {
		if fused, err = ctx.Add(fused, r); err != nil {
			t.Fatal(err)
		}
	}
	serialAcc, err := ctx.RotateRows(ct, ks[0])
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range ks[1:] {
		r, err := ctx.RotateRows(ct, k)
		if err != nil {
			t.Fatal(err)
		}
		if serialAcc, err = ctx.Add(serialAcc, r); err != nil {
			t.Fatal(err)
		}
	}
	if !fused.Equal(serialAcc) {
		t.Fatal("fused deferred sum differs from serial fold")
	}
}

// TestFacadeIdentityRotationSteps pins the k=0 (and k ≡ 0 mod RowSlots)
// behavior: identity steps pass through un-keyswitched in every rotation
// API, match RotateRows bit for bit, and need no Galois key — so an
// evaluation-only context handles them too.
func TestFacadeIdentityRotationSteps(t *testing.T) {
	owner := toyCtx(t, 30, hebfv.WithRotations(1, 2))
	ct, err := owner.EncryptSlots([]uint64{9, 8, 7})
	if err != nil {
		t.Fatal(err)
	}
	row := owner.RowSlots()
	ks := []int{0, 1, 2, row}
	many, err := owner.RotateRowsMany(ct, ks)
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range ks {
		serial, err := owner.RotateRows(ct, k)
		if err != nil {
			t.Fatal(err)
		}
		if !many[i].Equal(serial) {
			t.Fatalf("RotateRowsMany k=%d differs from RotateRows", k)
		}
	}
	// Rotate-and-sum with identity steps folds the input itself, exactly
	// like folding RotateRows outputs.
	sums, err := owner.RotateRowsAndSum([]*hebfv.Ciphertext{ct}, ks)
	if err != nil {
		t.Fatal(err)
	}
	want := ct
	for _, k := range ks {
		r, err := owner.RotateRows(ct, k)
		if err != nil {
			t.Fatal(err)
		}
		if want, err = owner.Add(want, r); err != nil {
			t.Fatal(err)
		}
	}
	if !sums[0].Equal(want) {
		t.Fatal("RotateRowsAndSum with identity steps differs from the RotateRows fold")
	}
	// All-identity step lists short-circuit entirely: no keys, no
	// hoisting, outputs are the inputs / repeated self-adds.
	onlyID, err := owner.RotateRowsMany(ct, []int{0, row})
	if err != nil {
		t.Fatal(err)
	}
	if !onlyID[0].Equal(ct) || !onlyID[1].Equal(ct) {
		t.Fatal("all-identity RotateRowsMany altered the ciphertext")
	}
	idSum, err := owner.RotateRowsAndSum([]*hebfv.Ciphertext{ct}, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	doubled, err := owner.Add(ct, ct)
	if err != nil {
		t.Fatal(err)
	}
	if !idSum[0].Equal(doubled) {
		t.Fatal("all-identity RotateRowsAndSum differs from ct + ct")
	}

	// An evaluation-only context (keys for steps 1 and 2 only) handles the
	// same step list: identity steps need no key.
	pub, err := owner.ExportKeys(false)
	if err != nil {
		t.Fatal(err)
	}
	server, err := hebfv.New(hebfv.WithInsecureToyParameters(), hebfv.WithKeySet(pub), hebfv.WithSeed(31))
	if err != nil {
		t.Fatal(err)
	}
	blob, err := ct.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	over, err := server.UnmarshalCiphertext(blob)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := server.RotateRowsMany(over, ks); err != nil {
		t.Fatalf("evaluation-only RotateRowsMany with identity steps: %v", err)
	}
	if _, err := server.RotateRowsAndSum([]*hebfv.Ciphertext{over}, ks); err != nil {
		t.Fatalf("evaluation-only RotateRowsAndSum with identity steps: %v", err)
	}
}

func TestFacadeBatchedPipelines(t *testing.T) {
	ctx := toyCtx(t, 8)
	const batch = 3
	as := make([]*hebfv.Ciphertext, batch)
	bs := make([]*hebfv.Ciphertext, batch)
	for i := 0; i < batch; i++ {
		var err error
		if as[i], err = ctx.EncryptValue(uint64(i + 2)); err != nil {
			t.Fatal(err)
		}
		if bs[i], err = ctx.EncryptValue(uint64(i + 5)); err != nil {
			t.Fatal(err)
		}
	}
	sums, err := ctx.AddMany(as, bs)
	if err != nil {
		t.Fatal(err)
	}
	prods, err := ctx.MulMany(as, bs)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < batch; i++ {
		if v, err := ctx.DecryptValue(sums[i]); err != nil || v != uint64(2*i+7) {
			t.Fatalf("AddMany[%d] = %d, %v", i, v, err)
		}
		if v, err := ctx.DecryptValue(prods[i]); err != nil || v != uint64((i+2)*(i+5)) {
			t.Fatalf("MulMany[%d] = %d, %v", i, v, err)
		}
	}
	total, err := ctx.Sum(as)
	if err != nil {
		t.Fatal(err)
	}
	if v, err := ctx.DecryptValue(total); err != nil || v != 2+3+4 {
		t.Fatalf("Sum = %d, %v", v, err)
	}
}

func TestFacadePIMBackendReportsKernels(t *testing.T) {
	ctx := toyCtx(t, 9, hebfv.WithBackend("pim"), hebfv.WithPIMDPUs(8))
	if _, _, ok := ctx.PIMReport(); !ok {
		t.Fatal("pim backend does not report kernels")
	}
	a, err := ctx.EncryptValue(3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ctx.EncryptValue(4)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := ctx.Add(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if v, err := ctx.DecryptValue(sum); err != nil || v != 7 {
		t.Fatalf("pim 3+4 = %d, %v", v, err)
	}
	launches, seconds, ok := ctx.PIMReport()
	if !ok || launches == 0 || seconds <= 0 {
		t.Fatalf("PIM report: launches=%d seconds=%g ok=%v", launches, seconds, ok)
	}
	// Unsupported operation errors name the backend.
	pt := ctx.EncodeValue(2)
	if _, err := ctx.MulPlain(a, pt); err == nil || !strings.Contains(err.Error(), "pim") {
		t.Fatalf("MulPlain on pim: %v", err)
	}
	// Host backends do not report kernels.
	host := toyCtx(t, 10)
	if _, _, ok := host.PIMReport(); ok {
		t.Fatal("host backend claims a PIM report")
	}
}

// TestFacadeConcurrentUse exercises the documented concurrency
// contract under -race: parallel encryptions (shared randomness
// source), lazy Galois-key derivation, deferred-rotation sums and
// forcing all run against one context.
func TestFacadeConcurrentUse(t *testing.T) {
	ctx := toyCtx(t, 40)
	base, err := ctx.EncryptSlots([]uint64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ct, err := ctx.EncryptValue(uint64(w))
			if err != nil {
				errs <- err
				return
			}
			if _, err := ctx.Add(ct, base); err != nil {
				errs <- err
				return
			}
			rots, err := ctx.RotateRowsMany(base, []int{w%3 + 1, w%5 + 1})
			if err != nil {
				errs <- err
				return
			}
			// Race deferred Add against forcing (decryption) of the same
			// handles.
			if _, err := ctx.Add(rots[0], rots[1]); err != nil {
				errs <- err
				return
			}
			for _, r := range rots {
				if _, err := ctx.DecryptSlots(r); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestFacadeRejectsMisuse(t *testing.T) {
	if _, err := hebfv.New(hebfv.WithBackend("no-such-backend")); err == nil {
		t.Fatal("unknown backend accepted")
	}
	if _, err := hebfv.New(hebfv.WithSecurityLevel(64)); err == nil {
		t.Fatal("bad security level accepted")
	}
	if _, err := hebfv.New(hebfv.WithInsecureToyParameters(), hebfv.WithSecurityLevel(54)); err == nil {
		t.Fatal("toy + security level accepted")
	}
	// Cross-context handles are rejected.
	a := toyCtx(t, 11)
	b := toyCtx(t, 12)
	ctA, err := a.EncryptValue(1)
	if err != nil {
		t.Fatal(err)
	}
	ctB, err := b.EncryptValue(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Add(ctA, ctB); err == nil {
		t.Fatal("cross-context Add accepted")
	}
	// Non-batching modulus: integer API works, slot API reports why not.
	nb, err := hebfv.New(
		hebfv.WithInsecureToyParameters(),
		hebfv.WithPlaintextModulus(16),
		hebfv.WithSeed(13),
	)
	if err != nil {
		t.Fatal(err)
	}
	if nb.Slots() != 0 {
		t.Fatal("non-batching modulus reports slots")
	}
	ct, err := nb.EncryptValue(6)
	if err != nil {
		t.Fatal(err)
	}
	if v, err := nb.DecryptValue(ct); err != nil || v != 6 {
		t.Fatalf("integer round trip under t=16: %d, %v", v, err)
	}
	if _, err := nb.RotateRows(ct, 1); err == nil || !strings.Contains(err.Error(), "batching") {
		t.Fatalf("RotateRows without batching: %v", err)
	}
	if _, err := hebfv.New(hebfv.WithInsecureToyParameters(), hebfv.WithPlaintextModulus(16), hebfv.WithRotations(1)); err == nil {
		t.Fatal("eager rotations without batching accepted")
	}
}

// TestFacadeDeferredProducts drives the NTT-resident multiplication
// pipeline through the facade: Mul chains, Square, MulMany + Sum fusion
// — each compared slot-for-slot and bit-for-bit against the schoolbook
// backend, which never defers.
func TestFacadeDeferredProducts(t *testing.T) {
	fast := toyCtx(t, 41)
	keys, err := fast.ExportKeys(true)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := hebfv.New(
		hebfv.WithInsecureToyParameters(),
		hebfv.WithBackend("schoolbook"),
		hebfv.WithKeySet(keys),
	)
	if err != nil {
		t.Fatal(err)
	}

	vals := make([]uint64, fast.Slots())
	for i := range vals {
		vals[i] = uint64(3*i + 1)
	}
	encBoth := func(v []uint64) (*hebfv.Ciphertext, *hebfv.Ciphertext) {
		t.Helper()
		ct, err := fast.EncryptSlots(v)
		if err != nil {
			t.Fatal(err)
		}
		blob, err := ct.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		ct2, err := slow.UnmarshalCiphertext(blob)
		if err != nil {
			t.Fatal(err)
		}
		return ct, ct2
	}
	a, aS := encBoth(vals)
	b, bS := encBoth(append([]uint64{7, 5}, vals[:len(vals)-2]...))

	equal := func(name string, f, s *hebfv.Ciphertext) {
		t.Helper()
		fb, err := f.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		sb, err := s.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if string(fb) != string(sb) {
			t.Fatalf("%s: deferred facade result differs from schoolbook", name)
		}
	}

	// Chained Mul: the intermediate stays deferred between levels.
	p, err := fast.Mul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := fast.Mul(p, b)
	if err != nil {
		t.Fatal(err)
	}
	pS, err := slow.Mul(aS, bS)
	if err != nil {
		t.Fatal(err)
	}
	p2S, err := slow.Mul(pS, bS)
	if err != nil {
		t.Fatal(err)
	}
	equal("mul chain", p2, p2S)

	// Square of a deferred product.
	sq, err := fast.Square(p)
	if err != nil {
		t.Fatal(err)
	}
	sqS, err := slow.Square(pS)
	if err != nil {
		t.Fatal(err)
	}
	equal("square", sq, sqS)

	// MulMany + Sum: the dot-product reduction fuses in the RNS domain.
	as := []*hebfv.Ciphertext{a, b, a}
	bs := []*hebfv.Ciphertext{b, b, a}
	asS := []*hebfv.Ciphertext{aS, bS, aS}
	bsS := []*hebfv.Ciphertext{bS, bS, aS}
	prods, err := fast.MulMany(as, bs)
	if err != nil {
		t.Fatal(err)
	}
	dot, err := fast.Sum(prods)
	if err != nil {
		t.Fatal(err)
	}
	prodsS, err := slow.MulMany(asS, bsS)
	if err != nil {
		t.Fatal(err)
	}
	dotS, err := slow.Sum(prodsS)
	if err != nil {
		t.Fatal(err)
	}
	equal("mulmany+sum", dot, dotS)

	// Mixed Add (deferred product + fresh ciphertext) falls back to the
	// coefficient domain, still bit-identical.
	mixed, err := fast.Add(prods[0], a)
	if err != nil {
		t.Fatal(err)
	}
	mixedS, err := slow.Add(prodsS[0], aS)
	if err != nil {
		t.Fatal(err)
	}
	equal("mixed add", mixed, mixedS)

	// Decryption of a deferred chain recovers the slotwise product.
	got, err := fast.DecryptSlots(p2)
	if err != nil {
		t.Fatal(err)
	}
	want, err := slow.DecryptSlots(p2S)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("slot %d: %d != %d", i, got[i], want[i])
		}
	}
}
