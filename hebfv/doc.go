// Package hebfv is the public facade of the BFV implementation: a
// small, stable, scheme-level API over the internal layers (key
// generation, encoding, encryption, double-CRT evaluation, the PIM
// simulator). It is the surface every consumer builds on — the
// benchmarks and examples in this repository, and the served HTTP
// evaluation plane (repro/hebfv/serve, cmd/hebfvd). Everything
// under internal/ is private and may change freely; only this package
// is a compatibility surface.
//
// # Contexts and keys
//
// A Context bundles parameters, keys, encoders and the evaluation
// engine behind functional options:
//
//	ctx, err := hebfv.New(
//		hebfv.WithSecurityLevel(109),   // the paper's presets: 27, 54, 109
//		hebfv.WithBackend("dcrt-native"),
//		hebfv.WithRotations(1, 2, 4),   // eager Galois keys for these steps
//	)
//
// Keys are context-managed: secret, public and relinearization keys
// generate at construction, and slot rotations derive their Galois keys
// on demand — callers never touch a Galois element. ExportKeys /
// WithKeySet move key material between contexts with a versioned binary
// header; exporting without the secret key yields an evaluation-only
// context (it encrypts and evaluates, but cannot decrypt), which is the
// server half of the paper's deployment model. Ciphertexts marshal with
// the same versioned header (Ciphertext.MarshalBinary /
// Context.UnmarshalCiphertext).
//
// # Streaming serialization
//
// The serialization API is streaming-first: Ciphertext.MarshalTo and
// Context.ReadCiphertext move one ciphertext record across an
// io.Writer/io.Reader in pooled fixed-size chunks — the encoder's
// working set is O(chunk), never O(blob), so a served front end pipes
// multi-100KiB ciphertexts straight between sockets without staging
// them. ReadCiphertext consumes exactly one record, so a request body
// can carry operands back to back. Context.ExportKeysTo and
// WithKeySetFrom are the same streaming pair for key sets, and the
// []byte forms (MarshalBinary, UnmarshalCiphertext, ExportKeys,
// WithKeySet) are thin wrappers over the identical code paths — one
// wire format, no double buffering. Ciphertext.MarshaledBytes and
// Context.CiphertextBytes return the exact encoded size — for deferred
// (NTT-resident) handles too, without forcing them — so servers can set
// Content-Length before streaming.
//
// # Memory management and handle lifecycle
//
// Handles are cheap; their coefficient backings are not (128 KiB per
// two-component ciphertext at n=4096). Each Context therefore owns a
// size-classed backing pool, and ReadCiphertext / UnmarshalCiphertext
// decode directly into pooled backings — zero staging copies beyond
// the fixed chunk buffer. Calling Ciphertext.Release returns those
// backings for the next decode to reuse; at steady state a serving hot
// loop re-allocates nothing but small fixed-size structs.
//
// The lifecycle rules:
//
//   - Release is required (well, strongly recommended — an unreleased
//     handle is garbage-collected like any value, the pool just never
//     recycles it) only for handles produced by ReadCiphertext /
//     UnmarshalCiphertext. Handles from Encrypt or evaluation results
//     do not draw on the pool; releasing them is harmless uniformity.
//   - A released handle is dead: every error-bearing use reports
//     ErrReleasedHandle (double Release included), Degree returns −1,
//     Equal reports false. Nothing ever panics or silently reads a
//     recycled backing.
//   - Evaluation outputs never alias their inputs, so releasing the
//     operands of a completed operation cannot corrupt its result.
//   - Context.Close drains the pool; PoolStats exposes the
//     gets/puts/hits/misses balance (InUse == 0 means every pooled
//     handle came back) and keeps working after Close for
//     post-eviction leak audits.
//   - WithPoolRetention bounds the bytes kept warm per context
//     (default 32 MiB; 0 disables retention so every Get allocates —
//     the A/B arm the GC benchmarks diff against).
//
// The serve package applies these rules automatically: request handles
// and the response handle are released once the response is flushed,
// and the server's /v1/stats reports the aggregated pool counters next
// to a runtime.MemStats excerpt.
//
// # Serving
//
// Package repro/hebfv/serve builds the HE-as-a-service evaluation
// plane on this facade, and the deployment split is expressed entirely
// in Context state:
//
//   - The client keeps the key-owning context: it encrypts, derives the
//     rotation keys its workload needs (WithRotations, or by running it
//     once), and onboards ExportKeysTo(w, false) — the evaluation-only
//     key set.
//   - The server restores evaluation-only contexts with WithKeySetFrom
//     and identifies them by Context.KeySetHash — the SHA-256 of the
//     evaluation-only export, identical on both sides of the wire, so
//     client and server agree on the tenant fingerprint without a
//     registration round trip.
//   - A serving cache bounds resident tenants and calls Context.Close
//     on eviction: the cached Galois keys drop immediately and every
//     later operation fails with typed ErrContextClosed (Close is
//     idempotent; evict only at zero in-flight requests).
//
// RotateRowsEach is the coalesced-rotation primitive of that plane:
// many ciphertexts, one step, one Galois key, one batch dispatch.
//
// # Slot-level operations
//
// With the default plaintext modulus (65537, batching-capable at every
// supported degree) the N plaintext slots form a 2 × (N/2) matrix and
// the API speaks in slots, not exponents: EncryptSlots packs a vector,
// RotateRows(ct, k) rotates each row left by k, RotateColumns swaps the
// rows, InnerSum replicates the total of all slots into every slot. The
// slot → Galois-element mapping is computed inside the facade from the
// transform's evaluation-point layout.
//
// Batched variants delegate to the hoisted pipelines underneath:
// RotateRowsMany shares one key-switching digit decomposition across
// all steps and — on the native backend — returns NTT-resident outputs
// whose base conversions are deferred until a consumer forces
// coefficients (sums of such outputs fuse entirely in the NTT domain);
// RotateRowsAndSum fuses all key-switch reductions of a
// rotate-and-aggregate into one extended-basis accumulator; MulMany and
// AddMany schedule element-wise pipelines on the shared worker pool.
//
// # Backends
//
// Evaluation strategy is pluggable and selected by name (WithBackend):
// "dcrt-native" (default, the RNS+NTT fast path), "dcrt-legacy" (the
// retained big.Int rescale baseline), "schoolbook" (the O(n²) path that
// is the paper's PIM cost model and the correctness oracle), and "pim"
// (the simulated UPMEM server; Context.PIMReport exposes its modeled
// kernel time). All backends are mutually bit-identical — the
// differential tests in this package prove it across the facade,
// RotateRows/InnerSum slot semantics included. The Backend/Engine
// registry (RegisterBackend, NewEngine) is the mount point for new
// in-repo engines; its signatures name internal types deliberately, so
// it cannot be implemented outside the repository.
//
// # Error contract and fault tolerance
//
// The public API never lets a panic escape: every exported entry point
// recovers internal panics and converts them to errors, and every
// rejection of user-controlled input is typed so callers can branch
// with errors.Is:
//
//   - ErrCorruptBlob — a serialized blob (ciphertext or key set) failed
//     validation: truncated, bad magic/version/kind, parameters that do
//     not match the context, non-canonical coefficients, or trailing
//     bytes. Deserialization is hardened against hostile input and
//     fuzz-tested (FuzzUnmarshalCiphertext, FuzzImportKeySet).
//   - ErrNoSecretKey — a secret-key operation (Decrypt, NoiseBudget,
//     ExportKeys(true), deriving an uncached Galois key) on an
//     evaluation-only context restored from ExportKeys(false).
//   - ErrNilHandle / ErrForeignHandle — a nil handle, or one created by
//     a different Context.
//   - ErrReleasedHandle — the handle was Released (its pooled backings
//     recycled) and then used, or Released twice.
//   - ErrNoBatching — slot operations under a plaintext modulus with no
//     batching structure.
//   - ErrBackendFailed — an evaluation backend failed internally (e.g.
//     a worker panic, or a PIM fault budget exhausted); the operation
//     did not produce a result.
//
// The simulated PIM backend carries a deterministic fault model:
// WithPIMFaultInjection(seed, transient, dead, straggler) arms
// per-launch DPU fault rates, transient faults retry with backoff,
// dead DPUs' shards re-dispatch to survivors, and Context.PIMStats
// reports the toll. When the PIM system degrades beyond recovery
// (pim-fault-class errors only — semantic errors propagate unchanged),
// the context fails over to the host backend once and replays the
// failed operation; Context.FailoverStats records the switch. Results
// remain bit-identical under any fault schedule — the differential
// fault tests pin this at a 10% transient rate and under total DPU
// loss.
package hebfv
