package hebfv

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/bfv"
	"repro/internal/faultinject"
	"repro/internal/hepim"
	"repro/internal/pim"
	"repro/internal/pimsched"
)

// Pluggable evaluation backends. A Backend turns a parameter set and
// evaluation keys into an Engine — the operation surface every facade
// call routes through — and is selectable by name through one
// constructor (New(WithBackend(name)) for contexts, NewEngine for
// lower-level harnesses like the benchmark suite).
//
// Five backends are built in:
//
//   - "dcrt-native": the double-CRT (RNS + NTT) backend with RNS-native
//     rescaling, NTT-resident ciphertexts, and hoisted rotations — the
//     default and the fast path.
//   - "dcrt-legacy": the same double-CRT backend pinned to the retained
//     big.Int rescale/key-switch round trip — the tracked baseline the
//     perf benchmarks compare against.
//   - "schoolbook": the O(n²) limb schoolbook path — the paper's PIM
//     cost model (its instruction stream is what the simulator meters)
//     and the correctness oracle; every backend is bit-identical to it.
//   - "pim": the simulated UPMEM PIM server (internal/hepim) — kernels
//     run on the cycle-level simulator through the async multi-DPU
//     execution plane (internal/pimsched) and the engine reports
//     modeled kernel time and the sharded cycle/transfer/energy
//     breakdown (see Context.PIMReport and Context.PIMBreakdown).
//   - "auto": the heterogeneous scheduler — holds both the dcrt-native
//     host engine and the pim engine and routes each *batched*
//     operation to whichever side's cost estimate is lower (measured
//     host wall time vs the PIM plane's modeled makespan); singleton
//     operations always run on the host. Every routing decision is
//     recorded (see Context.AutoStats), and results are bit-identical
//     no matter where an operation lands.
//
// The Engine and Backend interfaces name internal types, so they are
// implementable only inside this repository — which is the point: the
// registry is the mount point for in-repo backends (the served
// evaluation front end, future accelerators), not a third-party plugin
// system. External consumers select backends by name.

// Engine is the evaluation capability a backend provides. All methods
// must be bit-identical to the schoolbook oracle's results; engines that
// do not support an operation return an error naming the backend.
type Engine interface {
	Add(a, b *bfv.Ciphertext) (*bfv.Ciphertext, error)
	Sub(a, b *bfv.Ciphertext) (*bfv.Ciphertext, error)
	Neg(a *bfv.Ciphertext) (*bfv.Ciphertext, error)
	AddPlain(a *bfv.Ciphertext, pt *bfv.Plaintext) (*bfv.Ciphertext, error)
	MulPlain(a *bfv.Ciphertext, pt *bfv.Plaintext) (*bfv.Ciphertext, error)
	Mul(a, b *bfv.Ciphertext) (*bfv.Ciphertext, error)
	Square(a *bfv.Ciphertext) (*bfv.Ciphertext, error)
	Sum(cts []*bfv.Ciphertext) (*bfv.Ciphertext, error)
	ApplyGalois(a *bfv.Ciphertext, gk *bfv.GaloisKey) (*bfv.Ciphertext, error)
	RotateMany(a *bfv.Ciphertext, gks []*bfv.GaloisKey) ([]*bfv.Ciphertext, error)
	RotateAndSum(cts []*bfv.Ciphertext, gks []*bfv.GaloisKey) ([]*bfv.Ciphertext, error)
	MulMany(as, bs []*bfv.Ciphertext) ([]*bfv.Ciphertext, error)
	AddMany(as, bs []*bfv.Ciphertext) ([]*bfv.Ciphertext, error)
}

// DeferredRotator is the optional Engine upgrade for NTT-resident
// rotation outputs: RotateManyNTT defers each output's base conversions
// until a consumer forces coefficients. CanDefer reports whether
// deferral actually happens on this engine's configuration —
// RotateManyNTT itself transparently materializes on backends that
// cannot defer, so callers that *label* results (the bench harness)
// must gate on CanDefer, not on the interface assertion. The facade
// uses the deferred path when CanDefer holds and falls back to
// RotateMany otherwise.
type DeferredRotator interface {
	CanDefer() bool
	RotateManyNTT(ct *bfv.Ciphertext, gks []*bfv.GaloisKey) ([]*bfv.RotatedNTT, error)
}

// DeferredMultiplier is the optional Engine upgrade for NTT-resident
// multiplication outputs: MulNTT/MulManyNTT return deferred product
// handles whose base conversions wait until a consumer forces
// coefficients, chain into further multiplications, and fuse sums in the
// RNS domain. CanDeferMul reports whether deferral actually happens on
// this engine's configuration — MulNTT itself transparently materializes
// on backends that cannot defer, so callers that route pipelines (the
// facade) gate on CanDeferMul and fall back to Mul/MulMany otherwise.
type DeferredMultiplier interface {
	CanDeferMul() bool
	MulNTT(a, b bfv.MulOperand) (*bfv.ProductNTT, error)
	MulManyNTT(as, bs []bfv.MulOperand) ([]*bfv.ProductNTT, error)
}

// batchApplier is the optional Engine upgrade for applying one Galois
// key across many ciphertexts as a single batch pipeline (the
// coalesced-rotation workload of the served front end: many tenants'
// same-step rotations gathered into one flush). Engines without it fall
// back to per-ciphertext ApplyGalois.
type batchApplier interface {
	RotateManyAll(cts []*bfv.Ciphertext, gks []*bfv.GaloisKey) ([][]*bfv.Ciphertext, error)
}

// KernelReporter is the optional Engine upgrade for modeled-hardware
// backends that account their kernel launches (the "pim" backend).
type KernelReporter interface {
	KernelLaunches() int
	ModeledSeconds() float64
}

// faultReporter is the optional Engine upgrade for backends with a
// fault model (the "pim" backend): accumulated injection/retry
// counters, surfaced through Context.PIMStats.
type faultReporter interface {
	FaultStats() pim.FaultStats
}

// breakdownReporter is the optional Engine upgrade for backends on the
// async execution plane: the aggregated sharded cycle/transfer/energy
// breakdown, surfaced through Context.PIMBreakdown.
type breakdownReporter interface {
	Breakdown() *pimsched.Report
}

// Config carries everything a backend needs to construct its engine.
type Config struct {
	Params *bfv.Parameters
	Relin  *bfv.RelinKey // may be nil when Mul is not used

	// PIMDPUs overrides the simulated DPU count for the "pim" and
	// "auto" backends (0 = the paper machine's 2,524). Other backends
	// ignore it.
	PIMDPUs int

	// PIMRanks/PIMDPUsPerRank pin the rank×DPU topology of the async
	// execution plane (both zero = the largest whole-rank topology that
	// fits the DPU count). When set without PIMDPUs, the simulated
	// system is sized to the topology.
	PIMRanks       int
	PIMDPUsPerRank int

	// PIMNoOverlap disables the async plane's staging/compute
	// pipelining, so modeled makespans equal the serial sums. Results
	// are unaffected.
	PIMNoOverlap bool

	// PIMFaultSeed/PIMFaultRates arm the "pim" backend's deterministic
	// fault injector: rates maps injection sites (pim.SiteDPUTransient,
	// pim.SiteDPUDead, pim.SiteDPUStraggler) to per-launch-per-DPU
	// probabilities. A nil/empty map leaves injection disabled. Other
	// backends ignore both.
	PIMFaultSeed  uint64
	PIMFaultRates map[string]float64
}

// Backend constructs evaluation engines for a named strategy.
type Backend interface {
	Name() string
	New(cfg Config) (Engine, error)
}

// DefaultBackend is the backend a Context uses when WithBackend is not
// given.
const DefaultBackend = "dcrt-native"

var (
	backendMu sync.RWMutex
	backends  = map[string]Backend{}
)

// RegisterBackend adds a backend to the registry. It panics on a
// duplicate name — registration is init-time wiring, and a silent
// overwrite would make WithBackend ambiguous.
func RegisterBackend(b Backend) {
	backendMu.Lock()
	defer backendMu.Unlock()
	if _, dup := backends[b.Name()]; dup {
		panic(fmt.Sprintf("hebfv: backend %q registered twice", b.Name()))
	}
	backends[b.Name()] = b
}

// Backends returns the registered backend names, sorted.
func Backends() []string {
	backendMu.RLock()
	defer backendMu.RUnlock()
	names := make([]string, 0, len(backends))
	for name := range backends {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// NewEngine constructs the named backend's engine — the one constructor
// every consumer (contexts, the benchmark harness, a served front end)
// selects backends through.
func NewEngine(name string, cfg Config) (Engine, error) {
	if cfg.Params == nil {
		return nil, errors.New("hebfv: NewEngine requires parameters")
	}
	backendMu.RLock()
	b, ok := backends[name]
	backendMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("hebfv: unknown backend %q (have %v)", name, Backends())
	}
	return b.New(cfg)
}

// backendFunc adapts a constructor function to the Backend interface.
type backendFunc struct {
	name string
	mk   func(cfg Config) (Engine, error)
}

func (b backendFunc) Name() string                   { return b.name }
func (b backendFunc) New(cfg Config) (Engine, error) { return b.mk(cfg) }

func init() {
	RegisterBackend(backendFunc{"dcrt-native", func(cfg Config) (Engine, error) {
		return newEvalEngine(bfv.NewEvaluator(cfg.Params, cfg.Relin)), nil
	}})
	RegisterBackend(backendFunc{"dcrt-legacy", func(cfg Config) (Engine, error) {
		ev := bfv.NewEvaluator(cfg.Params, cfg.Relin)
		ev.SetBigIntRescale(true)
		return newEvalEngine(ev), nil
	}})
	RegisterBackend(backendFunc{"schoolbook", func(cfg Config) (Engine, error) {
		return newEvalEngine(bfv.NewSchoolbookEvaluator(cfg.Params, cfg.Relin)), nil
	}})
	RegisterBackend(backendFunc{"pim", func(cfg Config) (Engine, error) {
		return newPIMEngine(cfg)
	}})
	RegisterBackend(backendFunc{"auto", func(cfg Config) (Engine, error) {
		return newAutoEngine(cfg)
	}})
}

// newPIMEngine builds the simulated PIM server engine — shared by the
// "pim" backend and the "auto" backend's PIM side. The topology is
// explicit when the config pins one, otherwise the largest whole-rank
// shape fitting the DPU count; an explicit topology without an explicit
// DPU count sizes the system to the topology.
func newPIMEngine(cfg Config) (*pimEngine, error) {
	sys := pim.DefaultConfig()
	if cfg.PIMDPUs > 0 {
		sys.NumDPUs = cfg.PIMDPUs
	}
	topo := pimsched.FitTopology(sys.NumDPUs)
	if cfg.PIMRanks > 0 && cfg.PIMDPUsPerRank > 0 {
		topo = pimsched.Topology{Ranks: cfg.PIMRanks, DPUsPerRank: cfg.PIMDPUsPerRank}
		if cfg.PIMDPUs == 0 {
			sys.NumDPUs = topo.NumDPUs()
		}
	}
	srv, err := hepim.NewServerWithTopology(sys, cfg.Params, cfg.Relin, topo, !cfg.PIMNoOverlap)
	if err != nil {
		return nil, err
	}
	if len(cfg.PIMFaultRates) > 0 {
		in := faultinject.New(cfg.PIMFaultSeed)
		for site, p := range cfg.PIMFaultRates {
			in.SetRate(site, p)
		}
		srv.Sys.SetFaultInjector(in)
	}
	return &pimEngine{srv: srv}, nil
}

// evalEngine adapts a host bfv.Evaluator (any of the three host
// backends) plus its batched front end to the Engine interface.
type evalEngine struct {
	ev *bfv.Evaluator
	be *bfv.BatchEvaluator
}

func newEvalEngine(ev *bfv.Evaluator) *evalEngine {
	return &evalEngine{ev: ev, be: bfv.NewBatchEvaluatorFrom(ev)}
}

func (e *evalEngine) Add(a, b *bfv.Ciphertext) (*bfv.Ciphertext, error) { return e.ev.Add(a, b), nil }
func (e *evalEngine) Sub(a, b *bfv.Ciphertext) (*bfv.Ciphertext, error) { return e.ev.Sub(a, b), nil }
func (e *evalEngine) Neg(a *bfv.Ciphertext) (*bfv.Ciphertext, error)    { return e.ev.Neg(a), nil }

func (e *evalEngine) AddPlain(a *bfv.Ciphertext, pt *bfv.Plaintext) (*bfv.Ciphertext, error) {
	return e.ev.AddPlain(a, pt), nil
}

func (e *evalEngine) MulPlain(a *bfv.Ciphertext, pt *bfv.Plaintext) (*bfv.Ciphertext, error) {
	return e.ev.MulPlain(a, pt), nil
}

func (e *evalEngine) Mul(a, b *bfv.Ciphertext) (*bfv.Ciphertext, error) { return e.ev.Mul(a, b) }
func (e *evalEngine) Square(a *bfv.Ciphertext) (*bfv.Ciphertext, error) { return e.ev.Square(a) }

// Sum folds in slice order — the convention every backend shares, so
// results stay mutually bit-identical.
func (e *evalEngine) Sum(cts []*bfv.Ciphertext) (*bfv.Ciphertext, error) {
	if len(cts) == 0 {
		return nil, errors.New("hebfv: empty sum")
	}
	if len(cts) == 1 {
		// Engine outputs never alias inputs: a single-element sum must
		// not hand the caller's ciphertext back (the facade may recycle
		// an input's backings after the call).
		return cts[0].Clone(), nil
	}
	acc := cts[0]
	for _, ct := range cts[1:] {
		acc = e.ev.Add(acc, ct)
	}
	return acc, nil
}

func (e *evalEngine) ApplyGalois(a *bfv.Ciphertext, gk *bfv.GaloisKey) (*bfv.Ciphertext, error) {
	return e.ev.ApplyGalois(a, gk)
}

func (e *evalEngine) RotateMany(a *bfv.Ciphertext, gks []*bfv.GaloisKey) ([]*bfv.Ciphertext, error) {
	return e.be.RotateMany(a, gks)
}

func (e *evalEngine) CanDefer() bool { return e.be.CanDeferRotations() }

func (e *evalEngine) RotateManyNTT(a *bfv.Ciphertext, gks []*bfv.GaloisKey) ([]*bfv.RotatedNTT, error) {
	return e.be.RotateManyNTT(a, gks)
}

func (e *evalEngine) CanDeferMul() bool { return e.be.CanDeferMuls() }

func (e *evalEngine) MulNTT(a, b bfv.MulOperand) (*bfv.ProductNTT, error) {
	return e.ev.MulNTT(a, b)
}

func (e *evalEngine) MulManyNTT(as, bs []bfv.MulOperand) ([]*bfv.ProductNTT, error) {
	return e.be.MulManyNTT(as, bs)
}

func (e *evalEngine) RotateAndSum(cts []*bfv.Ciphertext, gks []*bfv.GaloisKey) ([]*bfv.Ciphertext, error) {
	return e.be.RotateAndSum(cts, gks)
}

func (e *evalEngine) RotateManyAll(cts []*bfv.Ciphertext, gks []*bfv.GaloisKey) ([][]*bfv.Ciphertext, error) {
	return e.be.RotateManyAll(cts, gks)
}

func (e *evalEngine) MulMany(as, bs []*bfv.Ciphertext) ([]*bfv.Ciphertext, error) {
	return e.be.MulMany(as, bs)
}

func (e *evalEngine) AddMany(as, bs []*bfv.Ciphertext) ([]*bfv.Ciphertext, error) {
	return e.be.AddMany(as, bs)
}

// pimEngine adapts the simulated UPMEM PIM server. Homomorphic
// arithmetic runs as DPU kernels on the cycle-level simulator;
// operations the server does not implement return an error naming the
// backend. The server's kernel-report accounting is unsynchronized, so
// the engine serializes operations behind one lock — the simulator
// models a single machine anyway.
type pimEngine struct {
	mu  sync.Mutex
	srv *hepim.Server
}

func (e *pimEngine) Add(a, b *bfv.Ciphertext) (*bfv.Ciphertext, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.srv.Add(a, b)
}
func (e *pimEngine) Sub(a, b *bfv.Ciphertext) (*bfv.Ciphertext, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.srv.Sub(a, b)
}
func (e *pimEngine) Neg(a *bfv.Ciphertext) (*bfv.Ciphertext, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.srv.Neg(a)
}

func (e *pimEngine) AddPlain(a *bfv.Ciphertext, pt *bfv.Plaintext) (*bfv.Ciphertext, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.srv.AddPlain(a, pt)
}

func (e *pimEngine) MulPlain(*bfv.Ciphertext, *bfv.Plaintext) (*bfv.Ciphertext, error) {
	return nil, errors.New("hebfv: backend \"pim\" does not implement MulPlain")
}

func (e *pimEngine) Mul(a, b *bfv.Ciphertext) (*bfv.Ciphertext, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.srv.Mul(a, b)
}
func (e *pimEngine) Square(a *bfv.Ciphertext) (*bfv.Ciphertext, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.srv.Square(a)
}

func (e *pimEngine) Sum(cts []*bfv.Ciphertext) (*bfv.Ciphertext, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.srv.Sum(cts)
}

func (e *pimEngine) ApplyGalois(a *bfv.Ciphertext, gk *bfv.GaloisKey) (*bfv.Ciphertext, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.srv.ApplyGalois(a, gk)
}

func (e *pimEngine) RotateMany(a *bfv.Ciphertext, gks []*bfv.GaloisKey) ([]*bfv.Ciphertext, error) {
	out := make([]*bfv.Ciphertext, len(gks))
	for i, gk := range gks {
		r, err := e.ApplyGalois(a, gk)
		if err != nil {
			return nil, err
		}
		out[i] = r
	}
	return out, nil
}

// RotateAndSum folds ct + Σ_g τ_g(ct) in slice order — the same
// convention bfv.BatchEvaluator.RotateAndSum is pinned to.
func (e *pimEngine) RotateAndSum(cts []*bfv.Ciphertext, gks []*bfv.GaloisKey) ([]*bfv.Ciphertext, error) {
	out := make([]*bfv.Ciphertext, len(cts))
	for i, ct := range cts {
		acc := ct
		if len(gks) == 0 {
			// No steps: never alias the input (see evalEngine.Sum).
			acc = ct.Clone()
		}
		for _, gk := range gks {
			r, err := e.ApplyGalois(ct, gk)
			if err != nil {
				return nil, err
			}
			if acc, err = e.Add(acc, r); err != nil {
				return nil, err
			}
		}
		out[i] = acc
	}
	return out, nil
}

func (e *pimEngine) MulMany(as, bs []*bfv.Ciphertext) ([]*bfv.Ciphertext, error) {
	if len(as) != len(bs) {
		return nil, fmt.Errorf("hebfv: MulMany length mismatch: %d vs %d", len(as), len(bs))
	}
	out := make([]*bfv.Ciphertext, len(as))
	for i := range as {
		r, err := e.Mul(as[i], bs[i])
		if err != nil {
			return nil, err
		}
		out[i] = r
	}
	return out, nil
}

func (e *pimEngine) AddMany(as, bs []*bfv.Ciphertext) ([]*bfv.Ciphertext, error) {
	if len(as) != len(bs) {
		return nil, fmt.Errorf("hebfv: AddMany length mismatch: %d vs %d", len(as), len(bs))
	}
	out := make([]*bfv.Ciphertext, len(as))
	for i := range as {
		r, err := e.Add(as[i], bs[i])
		if err != nil {
			return nil, err
		}
		out[i] = r
	}
	return out, nil
}

func (e *pimEngine) KernelLaunches() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.srv.Reports)
}

func (e *pimEngine) ModeledSeconds() float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.srv.ModeledSeconds()
}

func (e *pimEngine) FaultStats() pim.FaultStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.srv.Sys.FaultStats()
}

func (e *pimEngine) Breakdown() *pimsched.Report {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.srv.Breakdown()
}
