package hebfv

import (
	"testing"
)

// twin builds two same-seed contexts — one on the reference backend,
// one on the backend under test — so identical call sequences consume
// identical randomness and results must match slot for slot.
func twin(t *testing.T, backend string, opts ...Option) (ref, got *Context) {
	t.Helper()
	mk := func(b string) *Context {
		all := append([]Option{
			WithInsecureToyParameters(),
			WithSeed(11),
			WithBackend(b),
		}, opts...)
		ctx, err := New(all...)
		if err != nil {
			t.Fatal(err)
		}
		return ctx
	}
	return mk("dcrt-native"), mk(backend)
}

func encryptPair(t *testing.T, ctx *Context, base uint64) (as, bs []*Ciphertext) {
	t.Helper()
	for i := uint64(0); i < 3; i++ {
		a, err := ctx.EncryptValue(base + i)
		if err != nil {
			t.Fatal(err)
		}
		b, err := ctx.EncryptValue(base + 10 + i)
		if err != nil {
			t.Fatal(err)
		}
		as, bs = append(as, a), append(bs, b)
	}
	return as, bs
}

func decryptAll(t *testing.T, ctx *Context, cts []*Ciphertext) []uint64 {
	t.Helper()
	out := make([]uint64, len(cts))
	for i, ct := range cts {
		v, err := ctx.DecryptValue(ct)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = v
	}
	return out
}

// TestAutoBackendBitIdentical drives enough batches through the "auto"
// backend to pass the probe phase on several op families and checks
// every result against a same-seed dcrt-native context.
func TestAutoBackendBitIdentical(t *testing.T) {
	ref, auto := twin(t, "auto", WithPIMTopology(2, 4))
	for round := uint64(0); round < 3; round++ {
		base := 100 * (round + 1)
		refA, refB := encryptPair(t, ref, base)
		autoA, autoB := encryptPair(t, auto, base)

		wantSums, err := ref.AddMany(refA, refB)
		if err != nil {
			t.Fatal(err)
		}
		gotSums, err := auto.AddMany(autoA, autoB)
		if err != nil {
			t.Fatal(err)
		}
		wantProds, err := ref.MulMany(refA, refB)
		if err != nil {
			t.Fatal(err)
		}
		gotProds, err := auto.MulMany(autoA, autoB)
		if err != nil {
			t.Fatal(err)
		}
		wantTot, err := ref.Sum(refA)
		if err != nil {
			t.Fatal(err)
		}
		gotTot, err := auto.Sum(autoA)
		if err != nil {
			t.Fatal(err)
		}

		want := append(decryptAll(t, ref, wantSums), decryptAll(t, ref, wantProds)...)
		got := append(decryptAll(t, auto, gotSums), decryptAll(t, auto, gotProds)...)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("round %d result %d: auto %d != dcrt-native %d", round, i, got[i], want[i])
			}
		}
		wt := decryptAll(t, ref, []*Ciphertext{wantTot})
		gt := decryptAll(t, auto, []*Ciphertext{gotTot})
		if gt[0] != wt[0] {
			t.Fatalf("round %d sum: auto %d != dcrt-native %d", round, gt[0], wt[0])
		}
	}

	st, ok := auto.AutoStats()
	if !ok {
		t.Fatal("AutoStats not available on the auto backend")
	}
	if st.HostOps == 0 || st.PIMOps == 0 {
		t.Fatalf("scheduler never used both sides: %+v", st)
	}
	reasons := map[string]bool{}
	for _, d := range st.Decisions {
		reasons[d.Reason] = true
		if d.Target != "host" && d.Target != "pim" {
			t.Fatalf("decision with unknown target: %+v", d)
		}
	}
	for _, want := range []string{"probe-host", "probe-pim", "modeled-cost"} {
		if !reasons[want] {
			t.Errorf("no %q decision recorded: %+v", want, st.Decisions)
		}
	}
	if st.Singletons != 0 {
		// Only batched ops ran through the engine above; encrypt/decrypt
		// never touch it.
		t.Errorf("unexpected singleton count %d", st.Singletons)
	}
}

// TestAutoStatsEstimatesConverge checks the decision surface carries
// both cost estimates once both sides have been probed.
func TestAutoStatsEstimatesConverge(t *testing.T) {
	_, auto := twin(t, "auto", WithPIMTopology(2, 4))
	as, bs := encryptPair(t, auto, 7)
	for i := 0; i < 3; i++ {
		if _, err := auto.AddMany(as, bs); err != nil {
			t.Fatal(err)
		}
	}
	st, _ := auto.AutoStats()
	last := st.Decisions[len(st.Decisions)-1]
	if last.Reason != "modeled-cost" {
		t.Fatalf("third batch should be cost-routed, got %+v", last)
	}
	if last.HostSecondsPerItem <= 0 || last.PIMSecondsPerItem <= 0 {
		t.Fatalf("cost-routed decision missing estimates: %+v", last)
	}
}

// TestAutoPIMSurfaces checks the modeled-hardware reporting surfaces
// reach the auto backend's PIM side.
func TestAutoPIMSurfaces(t *testing.T) {
	_, auto := twin(t, "auto", WithPIMTopology(2, 4))
	as, bs := encryptPair(t, auto, 3)
	// Two batches: probe-host then probe-pim, so the PIM plane has run.
	for i := 0; i < 2; i++ {
		if _, err := auto.AddMany(as, bs); err != nil {
			t.Fatal(err)
		}
	}
	launches, modeled, ok := auto.PIMReport()
	if !ok || launches == 0 || modeled <= 0 {
		t.Fatalf("PIMReport not wired to the PIM side: %d launches, %gs, ok=%v", launches, modeled, ok)
	}
	bd, ok := auto.PIMBreakdown()
	if !ok {
		t.Fatal("PIMBreakdown not available on the auto backend")
	}
	if bd.Ranks != 2 || bd.DPUsPerRank != 4 || !bd.Overlap {
		t.Fatalf("breakdown topology not carried: %+v", bd)
	}
	if bd.Shards == 0 || bd.BytesIn <= 0 || bd.BytesOut <= 0 || bd.MakespanSeconds <= 0 {
		t.Fatalf("empty breakdown after PIM-routed batch: %+v", bd)
	}
	if _, ok := auto.PIMStats(); !ok {
		t.Fatal("PIMStats not available on the auto backend")
	}
}

// TestPIMBreakdownOnPIMBackend checks the breakdown surface through
// the failover wrapper the "pim" backend runs under, and the topology
// and overlap options' plumbing.
func TestPIMBreakdownOnPIMBackend(t *testing.T) {
	ref, pimCtx := twin(t, "pim", WithPIMTopology(2, 4), WithPIMOverlap(false))
	a, err := pimCtx.EncryptValue(5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := pimCtx.EncryptValue(6)
	if err != nil {
		t.Fatal(err)
	}
	got, err := pimCtx.Add(a, b)
	if err != nil {
		t.Fatal(err)
	}
	refA, _ := ref.EncryptValue(5)
	refB, _ := ref.EncryptValue(6)
	want, err := ref.Add(refA, refB)
	if err != nil {
		t.Fatal(err)
	}
	gv, _ := pimCtx.DecryptValue(got)
	wv, _ := ref.DecryptValue(want)
	if gv != wv {
		t.Fatalf("pim Add %d != host %d", gv, wv)
	}

	bd, ok := pimCtx.PIMBreakdown()
	if !ok {
		t.Fatal("PIMBreakdown not available on the pim backend")
	}
	if bd.Ranks != 2 || bd.DPUsPerRank != 4 {
		t.Fatalf("WithPIMTopology not plumbed: %+v", bd)
	}
	if bd.Overlap {
		t.Fatal("WithPIMOverlap(false) not plumbed")
	}
	if bd.MakespanSeconds != bd.SerialSeconds {
		t.Fatalf("overlap-off makespan %g != serial %g", bd.MakespanSeconds, bd.SerialSeconds)
	}
	if bd.Launches == 0 || bd.KernelCycles <= 0 {
		t.Fatalf("empty breakdown after pim op: %+v", bd)
	}

	if _, ok := ref.PIMBreakdown(); ok {
		t.Fatal("host backend should not report a PIM breakdown")
	}
	if _, ok := ref.AutoStats(); ok {
		t.Fatal("host backend should not report auto stats")
	}
}

// TestAutoFailsOverOnFault drives the auto backend's PIM side into a
// fault past the retry budget and checks the batch replays on the host
// and the PIM side retires.
func TestAutoFailsOverOnFault(t *testing.T) {
	_, auto := twin(t, "auto",
		WithPIMTopology(2, 4),
		WithPIMFaultInjection(1, 1.0, 0, 0)) // every launch fails transiently
	as, bs := encryptPair(t, auto, 9)
	// Batch 1 probes the host; batch 2 probes PIM and hits the fault.
	for i := 0; i < 3; i++ {
		got, err := auto.AddMany(as, bs)
		if err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
		if len(got) != len(as) {
			t.Fatalf("batch %d: %d results", i, len(got))
		}
	}
	st, _ := auto.AutoStats()
	if !st.PIMOffline {
		t.Fatalf("PIM side not retired after exhausted fault budget: %+v", st)
	}
	reasons := map[string]bool{}
	for _, d := range st.Decisions {
		reasons[d.Reason] = true
	}
	if !reasons["pim-failover"] || !reasons["pim-offline"] {
		t.Fatalf("failover decisions missing: %+v", st.Decisions)
	}
}

// TestWithPIMTopologyValidation pins the option's input checking.
func TestWithPIMTopologyValidation(t *testing.T) {
	if _, err := New(WithInsecureToyParameters(), WithPIMTopology(0, 4)); err == nil {
		t.Fatal("zero-rank topology accepted")
	}
	if _, err := New(WithInsecureToyParameters(), WithPIMTopology(2, -1)); err == nil {
		t.Fatal("negative DPU width accepted")
	}
}
