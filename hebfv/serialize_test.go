package hebfv

import (
	"bytes"
	"testing"

	"repro/internal/bfv"
)

// The facade format is the versioned header plus the internal binary
// formats verbatim — these tests round-trip facade blobs against
// internal/bfv's serializers directly.

const headerLen = 4 + 1 + 1 + 4 + 4 + 8 + 4 // magic | ver | kind | N | W | T | base

func TestSerializeCiphertextAgainstInternal(t *testing.T) {
	ctx, err := New(WithInsecureToyParameters(), WithSeed(20))
	if err != nil {
		t.Fatal(err)
	}
	ct, err := ctx.EncryptSlots([]uint64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := ct.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}

	// The payload after the facade header is exactly the internal
	// ciphertext record: internal/bfv must parse it…
	payload := blob[headerLen:]
	internal, err := bfv.ReadCiphertext(bytes.NewReader(payload), ctx.params)
	if err != nil {
		t.Fatalf("internal reader rejects facade payload: %v", err)
	}
	if !internal.Equal(ct.force()) {
		t.Fatal("internal reader decoded a different ciphertext")
	}
	// …and re-serializing through internal/bfv reproduces the payload.
	var re bytes.Buffer
	if err := internal.Serialize(&re); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(re.Bytes(), payload) {
		t.Fatal("internal serializer and facade payload disagree")
	}

	// Facade round trip.
	back, err := ctx.UnmarshalCiphertext(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(ct) {
		t.Fatal("facade ciphertext round trip differs")
	}
}

func TestSerializeKeySetAgainstInternal(t *testing.T) {
	ctx, err := New(WithInsecureToyParameters(), WithSeed(21), WithRotations(1, 3), WithColumnRotation())
	if err != nil {
		t.Fatal(err)
	}
	blob, err := ctx.ExportKeys(true)
	if err != nil {
		t.Fatal(err)
	}

	// Walk the payload with the internal readers.
	r := bytes.NewReader(blob[headerLen:])
	flags, err := r.ReadByte()
	if err != nil || flags&keySetHasSecret == 0 {
		t.Fatalf("flags byte: %x, %v", flags, err)
	}
	sk, err := bfv.ReadSecretKey(r, ctx.params)
	if err != nil {
		t.Fatalf("internal secret-key reader: %v", err)
	}
	if !sk.S.Equal(ctx.sk.S) {
		t.Fatal("secret key differs through the internal reader")
	}
	pk, err := bfv.ReadPublicKey(r, ctx.params)
	if err != nil {
		t.Fatalf("internal public-key reader: %v", err)
	}
	if !pk.P0.Equal(ctx.pk.P0) || !pk.P1.Equal(ctx.pk.P1) {
		t.Fatal("public key differs through the internal reader")
	}
	if _, err := bfv.ReadRelinKey(r, ctx.params); err != nil {
		t.Fatalf("internal relin-key reader: %v", err)
	}
	var count [4]byte
	if _, err := r.Read(count[:]); err != nil {
		t.Fatal(err)
	}
	wantKeys := len(ctx.gks)
	if int(count[0]) != wantKeys || count[1]|count[2]|count[3] != 0 {
		t.Fatalf("Galois key count bytes %v, want %d", count, wantKeys)
	}
	for i := 0; i < wantKeys; i++ {
		gk, err := bfv.ReadGaloisKey(r, ctx.params)
		if err != nil {
			t.Fatalf("internal Galois-key reader at %d: %v", i, err)
		}
		if _, ok := ctx.gks[gk.G]; !ok {
			t.Fatalf("exported Galois key for unknown element %d", gk.G)
		}
	}
	if r.Len() != 0 {
		t.Fatalf("%d trailing bytes", r.Len())
	}

	// Facade round trip: the restored context decrypts the original's
	// ciphertexts and already holds the rotation keys.
	restored, err := New(WithInsecureToyParameters(), WithKeySet(blob), WithSeed(22))
	if err != nil {
		t.Fatal(err)
	}
	ct, err := ctx.EncryptSlots([]uint64{4, 5, 6})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := ct.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	over, err := restored.UnmarshalCiphertext(raw)
	if err != nil {
		t.Fatal(err)
	}
	got, err := restored.DecryptSlots(over)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 4 || got[1] != 5 || got[2] != 6 {
		t.Fatalf("restored context decrypts %v", got[:3])
	}
	rotA, err := ctx.RotateRows(ct, 3)
	if err != nil {
		t.Fatal(err)
	}
	rotB, err := restored.RotateRows(over, 3)
	if err != nil {
		t.Fatal(err)
	}
	ba, _ := rotA.MarshalBinary()
	bb, _ := rotB.MarshalBinary()
	if !bytes.Equal(ba, bb) {
		t.Fatal("restored context rotates differently")
	}
}

func TestSerializeRejectsMismatch(t *testing.T) {
	toy, err := New(WithInsecureToyParameters(), WithSeed(23))
	if err != nil {
		t.Fatal(err)
	}
	sec27, err := New(WithSecurityLevel(27), WithSeed(24))
	if err != nil {
		t.Fatal(err)
	}
	ct, err := toy.EncryptValue(1)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := ct.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sec27.UnmarshalCiphertext(blob); err == nil {
		t.Fatal("cross-parameter ciphertext accepted")
	}
	if _, err := toy.UnmarshalCiphertext(blob[:len(blob)/2]); err == nil {
		t.Fatal("truncated ciphertext accepted")
	}
	if _, err := toy.UnmarshalCiphertext([]byte("not a hebfv blob at all")); err == nil {
		t.Fatal("garbage accepted")
	}
	// A key-set blob is not a ciphertext.
	keys, err := toy.ExportKeys(false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := toy.UnmarshalCiphertext(keys); err == nil {
		t.Fatal("key set accepted as ciphertext")
	}
	// Wrong version byte.
	bad := append([]byte(nil), blob...)
	bad[4] = 99
	if _, err := toy.UnmarshalCiphertext(bad); err == nil {
		t.Fatal("future version accepted")
	}
	// ExportKeys with the secret on an evaluation-only context fails.
	pub, err := toy.ExportKeys(false)
	if err != nil {
		t.Fatal(err)
	}
	evalOnly, err := New(WithInsecureToyParameters(), WithKeySet(pub), WithSeed(25))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := evalOnly.ExportKeys(true); err == nil {
		t.Fatal("secret export from evaluation-only context accepted")
	}
}
