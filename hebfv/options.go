package hebfv

import (
	"errors"
	"fmt"
	"io"

	"repro/internal/pim"
)

// config collects the functional options New resolves a Context from.
type config struct {
	secLevel  int    // 27, 54 or 109; 0 = default (109)
	toy       bool   // insecure N=64 demo parameters
	t         uint64 // plaintext modulus; 0 = default (65537, batching-capable)
	backend   string // registry name; "" = DefaultBackend
	rotations []int  // row steps whose Galois keys generate eagerly
	columns   bool   // eagerly generate the column-swap key too
	seed      *uint64
	pimDPUs   int
	keySet    []byte
	keySetR   io.Reader

	pimRanks       int  // explicit rank×DPU topology; 0 = derive
	pimDPUsPerRank int  //
	pimNoOverlap   bool // disable the async plane's pipelining

	pimFaultSeed  uint64
	pimFaultRates map[string]float64 // injection site -> probability

	poolRetain *int64 // pool retention cap in bytes; nil = default
}

// Option configures a Context under construction.
type Option func(*config) error

// WithSecurityLevel selects one of the paper's parameter presets by its
// security level: 27 (N=1024), 54 (N=2048) or 109 bits (N=4096). The
// default is 109, the level with comfortable noise margin for
// multiplication.
func WithSecurityLevel(bits int) Option {
	return func(c *config) error {
		switch bits {
		case 27, 54, 109:
			c.secLevel = bits
			return nil
		}
		return fmt.Errorf("hebfv: unsupported security level %d (want 27, 54 or 109)", bits)
	}
}

// WithInsecureToyParameters selects the deliberately small N=64 instance
// (no security) so demos and tests run in microseconds. Mutually
// exclusive with WithSecurityLevel.
func WithInsecureToyParameters() Option {
	return func(c *config) error {
		c.toy = true
		return nil
	}
}

// WithPlaintextModulus overrides the plaintext modulus t. The default,
// 65537, is a prime with t ≡ 1 (mod 2N) at every supported ring degree,
// so the slot API (EncryptSlots, RotateRows, InnerSum, …) works out of
// the box; other moduli may disable batching, leaving the integer API
// available.
func WithPlaintextModulus(t uint64) Option {
	return func(c *config) error {
		if t < 2 {
			return errors.New("hebfv: plaintext modulus must be >= 2")
		}
		c.t = t
		return nil
	}
}

// WithBackend selects the evaluation backend by registry name (see
// Backends). The default is DefaultBackend ("dcrt-native").
func WithBackend(name string) Option {
	return func(c *config) error {
		if name == "" {
			return errors.New("hebfv: empty backend name")
		}
		c.backend = name
		return nil
	}
}

// WithRotations eagerly generates the Galois keys for the given row
// rotation steps at construction time (keys for other steps — and the
// InnerSum ladder — are derived lazily on first use, which requires the
// context to hold the secret key).
func WithRotations(ks ...int) Option {
	return func(c *config) error {
		c.rotations = append(c.rotations, ks...)
		return nil
	}
}

// WithColumnRotation eagerly generates the column-swap Galois key
// alongside WithRotations' row keys.
func WithColumnRotation() Option {
	return func(c *config) error {
		c.columns = true
		return nil
	}
}

// WithSeed makes key generation and encryption deterministic — for
// tests, reproducible benchmarks and examples. Without it the context
// draws from the system entropy source.
func WithSeed(seed uint64) Option {
	return func(c *config) error {
		c.seed = &seed
		return nil
	}
}

// WithPIMDPUs overrides the simulated DPU count for the "pim" backend.
func WithPIMDPUs(n int) Option {
	return func(c *config) error {
		if n <= 0 {
			return errors.New("hebfv: DPU count must be positive")
		}
		c.pimDPUs = n
		return nil
	}
}

// WithPIMTopology pins the rank×DPU shape of the "pim" and "auto"
// backends' async execution plane. Without it the backend derives the
// largest whole-rank topology that fits the simulated DPU count (see
// WithPIMDPUs); with it, and without an explicit DPU count, the
// simulated system is sized to ranks×dpusPerRank. Topology matters for
// the modeled times, never the results: transfers parallelize within a
// rank and serialize on the host bus across ranks, and staging/compute
// overlap happens at rank granularity, so the sharded breakdown
// (Context.PIMBreakdown) changes shape while ciphertexts stay
// bit-identical. Other backends ignore the option.
func WithPIMTopology(ranks, dpusPerRank int) Option {
	return func(c *config) error {
		if ranks <= 0 || dpusPerRank <= 0 {
			return fmt.Errorf("hebfv: PIM topology %d×%d must be positive", ranks, dpusPerRank)
		}
		c.pimRanks, c.pimDPUsPerRank = ranks, dpusPerRank
		return nil
	}
}

// WithPIMOverlap toggles the async execution plane's double-buffering:
// with overlap on (the default) one rank's copy-in overlaps another
// rank's kernel, and the modeled makespan is the pipelined completion
// time; with it off every chunk runs stage→launch→gather back to back
// and the makespan equals the serial sum. Results are bit-identical
// either way — only Context.PIMBreakdown's modeled times move. Other
// backends ignore the option.
func WithPIMOverlap(on bool) Option {
	return func(c *config) error {
		c.pimNoOverlap = !on
		return nil
	}
}

// WithPIMFaultInjection arms the "pim" backend's deterministic fault
// injector: each DPU launch independently suffers a transient failure,
// permanent death, or straggler slowdown with the given probabilities
// (each in [0, 1]). Decisions are a pure function of the seed and the
// launch sequence, so a chaos run replays identically. The backend
// retries transient faults, re-dispatches dead DPUs' shards to
// survivors, and — past the retry budget — fails over to the host
// backend, all while staying bit-identical; the toll shows up in
// Context.PIMStats and Context.FailoverStats, never in results. Other
// backends ignore the option.
func WithPIMFaultInjection(seed uint64, transient, dead, straggler float64) Option {
	return func(c *config) error {
		for _, p := range []float64{transient, dead, straggler} {
			if p < 0 || p > 1 {
				return fmt.Errorf("hebfv: fault probability %v outside [0, 1]", p)
			}
		}
		c.pimFaultSeed = seed
		c.pimFaultRates = map[string]float64{}
		if transient > 0 {
			c.pimFaultRates[pim.SiteDPUTransient] = transient
		}
		if dead > 0 {
			c.pimFaultRates[pim.SiteDPUDead] = dead
		}
		if straggler > 0 {
			c.pimFaultRates[pim.SiteDPUStraggler] = straggler
		}
		return nil
	}
}

// WithPoolRetention caps how many bytes of free ciphertext backings
// the context's decode pool retains between requests (see Context.
// PoolStats and the package's "Memory management and handle lifecycle"
// section). The default retains enough for a typical coalescing
// window's working set. A cap of 0 disables recycling entirely —
// every release drops its backings, restoring per-request allocation —
// which is the pooling-off arm of the serving GC benchmarks; the
// acquire/release accounting and the leak-balance invariant stay
// active either way.
func WithPoolRetention(bytes int64) Option {
	return func(c *config) error {
		if bytes < 0 {
			return errors.New("hebfv: pool retention cap must be non-negative")
		}
		c.poolRetain = &bytes
		return nil
	}
}

// WithKeySet restores the context's key material from an ExportKeys
// blob instead of generating fresh keys — the server-side half of the
// deployment model: a client exports its public material once, the
// evaluation context is built from it, and (when the blob was exported
// without the secret key) the context can evaluate but never decrypt.
// The blob's parameters must match the context's.
func WithKeySet(data []byte) Option {
	return func(c *config) error {
		if len(data) == 0 {
			return errors.New("hebfv: empty key set")
		}
		c.keySet = data
		return nil
	}
}

// WithKeySetFrom is WithKeySet's streaming form: the key material is
// read from r during New — exactly one ExportKeysTo record, consumed in
// O(chunk) memory — so a server restoring many tenants' evaluation-only
// contexts never stages whole key-set blobs. The stream is not read
// past the record's end. Mutually exclusive with WithKeySet.
func WithKeySetFrom(r io.Reader) Option {
	return func(c *config) error {
		if r == nil {
			return errors.New("hebfv: nil key-set reader")
		}
		c.keySetR = r
		return nil
	}
}
