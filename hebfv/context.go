package hebfv

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/bfv"
	"repro/internal/polypool"
	"repro/internal/sampling"
)

// Context is the scheme-level entry point: one value that owns the
// parameter set, the key material, the encoders, and the selected
// evaluation backend. Every operation — encryption, slot-level
// evaluation, decryption, serialization — goes through it, so consumers
// never wire params, keys, encoder and evaluator together by hand and
// never see raw Galois elements.
//
// A Context is safe for concurrent use. Keys are context-managed: the
// secret, public and relinearization keys are generated at construction
// (or restored via WithKeySet), and Galois keys are derived on demand
// from the slot rotations requested — eagerly for WithRotations, lazily
// otherwise. A context restored from a key set exported without the
// secret key is evaluation-only: it encrypts and evaluates but cannot
// decrypt or derive new Galois keys.
type Context struct {
	params  *bfv.Parameters
	backend string
	eng     Engine

	kg  *bfv.KeyGenerator // nil on imported key sets (no generator state)
	sk  *bfv.SecretKey    // nil on evaluation-only contexts
	pk  *bfv.PublicKey
	rlk *bfv.RelinKey
	enc *bfv.Encryptor
	dec *bfv.Decryptor // nil on evaluation-only contexts

	encoder  *bfv.BatchEncoder // nil when t does not support batching
	batchErr error             // why batching is unavailable
	perm     []int             // logical slot -> NTT slot (see slots.go)

	// srcMu serializes the consumers of the context's randomness source
	// (encryption and lazy Galois-key derivation): sampling.Source is
	// not goroutine-safe. Lock order: mu before srcMu.
	srcMu sync.Mutex

	mu  sync.Mutex
	gks map[uint64]*bfv.GaloisKey // Galois element -> key

	// pool recycles ciphertext coefficient backings for the zero-copy
	// decode path: ReadCiphertext draws from it, Ciphertext.Release
	// returns to it, Close drains it. See WithPoolRetention.
	pool *polypool.Pool

	closed atomic.Bool // set by Close; operations reject with ErrContextClosed
}

// defaultPoolRetainBytes sizes the decode pool when WithPoolRetention
// is not given: 32 MiB retains a full coalescing window's operand
// backings at n=4096/W=4 (64 KiB per polynomial, 128 KiB per
// two-component ciphertext — roughly 256 in-flight ciphertexts).
const defaultPoolRetainBytes = 32 << 20

// New builds a Context from functional options: parameter preset
// (WithSecurityLevel / WithInsecureToyParameters, plaintext modulus via
// WithPlaintextModulus), backend selection (WithBackend), key material
// (generated, or restored with WithKeySet), and eager rotation keys
// (WithRotations).
func New(opts ...Option) (*Context, error) {
	var cfg config
	for _, opt := range opts {
		if err := opt(&cfg); err != nil {
			return nil, err
		}
	}
	if cfg.toy && cfg.secLevel != 0 {
		return nil, errors.New("hebfv: WithInsecureToyParameters and WithSecurityLevel are mutually exclusive")
	}
	params, err := buildParams(&cfg)
	if err != nil {
		return nil, err
	}

	var src *sampling.Source
	if cfg.seed != nil {
		src = sampling.NewSourceFromUint64(*cfg.seed)
	} else if src, err = sampling.NewSystemSource(); err != nil {
		return nil, err
	}

	poolRetain := int64(defaultPoolRetainBytes)
	if cfg.poolRetain != nil {
		poolRetain = *cfg.poolRetain
	}
	c := &Context{
		params: params,
		gks:    map[uint64]*bfv.GaloisKey{},
		pool:   polypool.New(poolRetain),
	}
	if cfg.keySet != nil && cfg.keySetR != nil {
		return nil, errors.New("hebfv: WithKeySet and WithKeySetFrom are mutually exclusive")
	}
	if cfg.keySet != nil || cfg.keySetR != nil {
		if cfg.keySet != nil {
			err = c.importKeys(cfg.keySet)
		} else {
			err = c.importKeysFrom(cfg.keySetR)
		}
		if err != nil {
			return nil, err
		}
		if c.sk != nil {
			// A restored secret key supports lazy Galois-key derivation;
			// fresh randomness comes from the context's own source.
			c.kg = bfv.NewKeyGenerator(params, src)
		}
	} else {
		c.kg = bfv.NewKeyGenerator(params, src)
		c.sk, c.pk = c.kg.GenKeyPair()
		c.rlk = c.kg.GenRelinKey(c.sk)
	}
	c.enc = bfv.NewEncryptor(params, c.pk, src)
	if c.sk != nil {
		c.dec = bfv.NewDecryptor(params, c.sk)
	}

	if enc, err := bfv.NewBatchEncoder(params); err != nil {
		c.batchErr = err
	} else {
		c.encoder = enc
		c.perm = slotPerm(params.N)
	}

	c.backend = cfg.backend
	if c.backend == "" {
		c.backend = DefaultBackend
	}
	if c.eng, err = NewEngine(c.backend, Config{
		Params:         params,
		Relin:          c.rlk,
		PIMDPUs:        cfg.pimDPUs,
		PIMRanks:       cfg.pimRanks,
		PIMDPUsPerRank: cfg.pimDPUsPerRank,
		PIMNoOverlap:   cfg.pimNoOverlap,
		PIMFaultSeed:   cfg.pimFaultSeed,
		PIMFaultRates:  cfg.pimFaultRates,
	}); err != nil {
		return nil, err
	}
	if c.backend == "pim" {
		// Graceful degradation: a pim engine failing past its fault
		// retry budget fails over to the (bit-identical) host default.
		relin := c.rlk
		c.eng = newFailoverEngine(c.eng, c.backend, DefaultBackend, func() (Engine, error) {
			return NewEngine(DefaultBackend, Config{Params: params, Relin: relin})
		})
	}

	// Eager Galois keys: deduplicated, in sorted step order so two
	// same-seed contexts derive identical key streams.
	if len(cfg.rotations) > 0 || cfg.columns {
		if c.encoder == nil {
			return nil, fmt.Errorf("hebfv: rotations need a batching plaintext modulus: %v", c.batchErr)
		}
		steps := append([]int(nil), cfg.rotations...)
		sort.Ints(steps)
		seen := map[uint64]bool{}
		for _, k := range steps {
			g := c.rowStepElement(k)
			if g == 1 || seen[g] {
				continue
			}
			seen[g] = true
			if _, err := c.galoisKey(g); err != nil {
				return nil, err
			}
		}
		if cfg.columns {
			if _, err := c.galoisKey(c.columnElement()); err != nil {
				return nil, err
			}
		}
	}
	return c, nil
}

// buildParams resolves the option set to a bfv parameter set, reusing
// the preset instance (and its memoized double-CRT context) when the
// plaintext modulus is not overridden.
func buildParams(cfg *config) (*bfv.Parameters, error) {
	var base *bfv.Parameters
	switch {
	case cfg.toy:
		base = bfv.ParamsToy()
	case cfg.secLevel == 27:
		base = bfv.ParamsSec27()
	case cfg.secLevel == 54:
		base = bfv.ParamsSec54()
	default:
		base = bfv.ParamsSec109()
	}
	t := cfg.t
	if t == 0 {
		t = 65537
	}
	if t == base.T {
		return base, nil
	}
	return bfv.NewParameters(base.N, base.Q.QBig, t, base.RelinBaseBits)
}

// Backend returns the name of the evaluation backend this context runs.
func (c *Context) Backend() string { return c.backend }

// N returns the ring degree.
func (c *Context) N() int { return c.params.N }

// PlaintextModulus returns t.
func (c *Context) PlaintextModulus() uint64 { return c.params.T }

// Slots returns the number of plaintext slots (N, arranged as a 2 ×
// RowSlots matrix), or 0 when the plaintext modulus does not support
// batching.
func (c *Context) Slots() int {
	if c.encoder == nil {
		return 0
	}
	return c.params.N
}

// RowSlots returns the length of one slot row (N/2), or 0 without
// batching.
func (c *Context) RowSlots() int { return c.Slots() / 2 }

// CiphertextBytes returns the exact encoded size of a fresh ciphertext:
// the number of bytes MarshalTo writes for a two-component handle,
// versioned header included. Deferred (NTT-resident) rotation and
// multiplication outputs materialize to the same two-component form, so
// this size — and the per-handle Ciphertext.MarshaledBytes — is exact
// for both handle kinds; servers use it for Content-Length and
// streaming size hints.
func (c *Context) CiphertextBytes() int { return c.ciphertextWireBytes(2) }

// CanDecrypt reports whether this context holds the secret key.
func (c *Context) CanDecrypt() bool { return c.dec != nil }

// Close releases the context deterministically: the cached Galois keys
// — the dominant per-tenant memory in a serving cache, a full digit
// decomposition pair per rotation step — are dropped immediately, and
// every subsequent operation fails with a typed ErrContextClosed. Close
// is idempotent. It must not race in-flight operations: a serving cache
// evicts a context only once its in-flight count reaches zero.
// Engine-held scratch returns to the shared pools once the context
// becomes unreachable.
func (c *Context) Close() error {
	if c.closed.Swap(true) {
		return nil
	}
	c.mu.Lock()
	c.gks = map[uint64]*bfv.GaloisKey{}
	c.mu.Unlock()
	c.pool.Drain()
	return nil
}

// PoolStats is a snapshot of the context's decode-pool counters: how
// many backings were handed out (Gets) and returned (Puts), how the
// Gets split into recycles (Hits) and fresh allocations (Misses), how
// many returns were dropped at the retention cap (Dropped), the
// backings currently held by live handles (InUse = Gets − Puts, the
// leak-balance invariant), and the bytes sitting on the free lists
// (RetainedBytes — the pool's steady-state footprint).
type PoolStats struct {
	Gets          int64 `json:"gets"`
	Puts          int64 `json:"puts"`
	Hits          int64 `json:"hits"`
	Misses        int64 `json:"misses"`
	Dropped       int64 `json:"dropped"`
	InUse         int64 `json:"in_use"`
	RetainedBytes int64 `json:"retained_bytes"`
}

// PoolStats returns a snapshot of the decode pool's counters. It works
// on closed contexts too (the counters survive Close; only the
// retained backings are dropped), so a serving cache can audit evicted
// tenants for leaked handles.
func (c *Context) PoolStats() PoolStats {
	s := c.pool.Stats()
	return PoolStats{
		Gets:          s.Gets,
		Puts:          s.Puts,
		Hits:          s.Hits,
		Misses:        s.Misses,
		Dropped:       s.Dropped,
		InUse:         s.InUse,
		RetainedBytes: s.RetainedBytes,
	}
}

// requireOpen rejects operations on a closed context. It is checked at
// the entry points every operation funnels through: handle validation
// (own / ownPlain), the slot codec (requireBatching), deserialization
// and key export.
func (c *Context) requireOpen() error {
	if c.closed.Load() {
		return ErrContextClosed
	}
	return nil
}

// String summarizes the context.
func (c *Context) String() string {
	return fmt.Sprintf("hebfv.Context{%v, backend=%s}", c.params, c.backend)
}

// PIMReport returns the accumulated kernel-launch count and modeled
// kernel seconds of a modeled-hardware backend; ok is false when the
// selected backend does not model hardware (everything but "pim").
func (c *Context) PIMReport() (launches int, modeledSeconds float64, ok bool) {
	kr, isKR := c.eng.(KernelReporter)
	if !isKR {
		return 0, 0, false
	}
	return kr.KernelLaunches(), kr.ModeledSeconds(), true
}

// PIMStats holds the accumulated fault-model counters of the "pim"
// backend: faults injected, retries and shard re-dispatches the
// fault-tolerant dispatch performed, and DPUs lost permanently.
type PIMStats struct {
	TransientFaults int // injected transient launch failures
	DeadDPUs        int // DPUs permanently failed
	StragglerHits   int // launches slowed by the straggler model
	Retries         int // shard retries after transient faults
	Redispatches    int // shards re-dispatched off dead DPUs
}

// PIMStats returns the fault and retry counters of a modeled-hardware
// backend; ok is false when the selected backend has no fault model
// (everything but "pim"). All-zero counters with ok true mean no faults
// were injected — the normal case without WithPIMFaultInjection.
func (c *Context) PIMStats() (stats PIMStats, ok bool) {
	fr, isFR := c.eng.(faultReporter)
	if !isFR {
		return PIMStats{}, false
	}
	fs := fr.FaultStats()
	return PIMStats{
		TransientFaults: fs.TransientFaults,
		DeadDPUs:        fs.DeadDPUs,
		StragglerHits:   fs.StragglerHits,
		Retries:         fs.Retries,
		Redispatches:    fs.Redispatches,
	}, true
}

// PIMBreakdown is the aggregated sharded execution breakdown of the
// async PIM plane (see Context.PIMBreakdown): where the modeled time
// went — kernels, host→DPU staging, DPU→host gathering — across the
// rank×DPU topology, with both the pipelined makespan and the
// no-overlap serial time so overlap's benefit is a measured ratio.
type PIMBreakdown struct {
	Ranks       int  // topology: ranks scheduled over
	DPUsPerRank int  // topology: DPUs per rank
	Overlap     bool // staging/compute pipelining enabled

	Launches int // rank-granularity kernel launches issued
	Shards   int // placeable work units executed

	KernelCycles   int64   // summed per-launch critical-path cycles
	KernelSeconds  float64 // modeled kernel time incl. launch overhead
	CopyInSeconds  float64 // modeled host→DPU staging time
	CopyOutSeconds float64 // modeled DPU→host gathering time
	BytesIn        int64   // host→DPU bytes transferred
	BytesOut       int64   // DPU→host bytes transferred

	MakespanSeconds float64 // pipelined end-to-end modeled time
	SerialSeconds   float64 // no-overlap end-to-end modeled time

	EnergyKernelJoules   float64 // DPU dynamic + DMA + static energy
	EnergyTransferJoules float64 // host↔DPU interface energy

	Retried   int // shard re-launches after transient faults
	Resharded int // shards re-placed off dead DPUs onto survivors
}

// PIMBreakdown returns the accumulated sharded cycle/transfer/energy
// breakdown of a backend on the async PIM execution plane ("pim", or
// "auto" for its PIM-routed share); ok is false for host-only
// backends. All-zero fields with ok true mean no operation has reached
// the PIM plane yet.
func (c *Context) PIMBreakdown() (bd PIMBreakdown, ok bool) {
	br, isBR := c.eng.(breakdownReporter)
	if !isBR {
		return PIMBreakdown{}, false
	}
	rep := br.Breakdown()
	if rep == nil {
		return PIMBreakdown{}, false
	}
	return PIMBreakdown{
		Ranks:                rep.Topology.Ranks,
		DPUsPerRank:          rep.Topology.DPUsPerRank,
		Overlap:              rep.Overlap,
		Launches:             rep.Launches,
		Shards:               rep.Shards,
		KernelCycles:         rep.KernelCycles,
		KernelSeconds:        rep.KernelSeconds,
		CopyInSeconds:        rep.CopyInSeconds,
		CopyOutSeconds:       rep.CopyOutSeconds,
		BytesIn:              rep.BytesIn,
		BytesOut:             rep.BytesOut,
		MakespanSeconds:      rep.MakespanSeconds,
		SerialSeconds:        rep.SerialSeconds,
		EnergyKernelJoules:   rep.EnergyKernelJoules,
		EnergyTransferJoules: rep.EnergyTransferJoules,
		Retried:              rep.Retried,
		Resharded:            rep.Resharded,
	}, true
}

// AutoStats returns the "auto" backend's routing decision surface —
// how many batched operations each side ran and the cost estimates
// behind the recent decisions; ok is false on every other backend.
func (c *Context) AutoStats() (stats AutoStats, ok bool) {
	ar, isAR := c.eng.(autoReporter)
	if !isAR {
		return AutoStats{}, false
	}
	return ar.AutoStats(), true
}

// FailoverStats reports the backend-failover state; ok is false when
// the context's backend has no failover path (everything but "pim").
func (c *Context) FailoverStats() (stats FailoverStats, ok bool) {
	fe, isFE := c.eng.(*failoverEngine)
	if !isFE {
		return FailoverStats{}, false
	}
	return fe.stats(), true
}

// galoisKey returns the key for Galois element g, deriving and caching
// it when the context holds the secret key.
func (c *Context) galoisKey(g uint64) (*bfv.GaloisKey, error) {
	if err := c.requireOpen(); err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if gk, ok := c.gks[g]; ok {
		return gk, nil
	}
	if c.sk == nil || c.kg == nil {
		return nil, fmt.Errorf("%w: no Galois key for element %d and no secret key to derive one (export it from the key-owning context)", ErrNoSecretKey, g)
	}
	c.srcMu.Lock()
	gk, err := c.kg.GenGaloisKey(c.sk, g)
	c.srcMu.Unlock()
	if err != nil {
		return nil, err
	}
	c.gks[g] = gk
	return gk, nil
}

// galoisKeys resolves a key per element, preserving order.
func (c *Context) galoisKeys(gs []uint64) ([]*bfv.GaloisKey, error) {
	out := make([]*bfv.GaloisKey, len(gs))
	for i, g := range gs {
		gk, err := c.galoisKey(g)
		if err != nil {
			return nil, err
		}
		out[i] = gk
	}
	return out, nil
}

// requireBatching returns the batch encoder or a descriptive error.
func (c *Context) requireBatching() (*bfv.BatchEncoder, error) {
	if err := c.requireOpen(); err != nil {
		return nil, err
	}
	if c.encoder == nil {
		return nil, fmt.Errorf("%w: the slot API needs t prime with t ≡ 1 mod 2N: %v", ErrNoBatching, c.batchErr)
	}
	return c.encoder, nil
}
