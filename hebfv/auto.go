package hebfv

import (
	"sync"
	"time"

	"repro/internal/bfv"
	"repro/internal/pim"
	"repro/internal/pimsched"
)

// The "auto" backend: a first heterogeneous scheduler over the host
// and PIM engines. It holds both a dcrt-native host engine and the
// simulated PIM server engine and routes each *batched* operation
// (AddMany, MulMany, Sum, RotateMany, RotateAndSum) to whichever side
// a per-op-family cost estimate says is cheaper. Singleton operations
// always run on the host: one ciphertext never amortizes a DPU launch,
// which is the paper's own offload rule (batch work goes to the PIM
// server, scalar work stays on the host CPU).
//
// The two cost estimates are deliberately asymmetric, matching what
// each side actually is in this repository: the host cost is *measured*
// wall time per item (the host engine is real code on the real CPU),
// while the PIM cost is the *modeled* makespan per item the async
// execution plane reports (the simulator's functional execution time is
// meaningless — its modeled time is the quantity the paper compares).
// Each family's first batch runs on the host and is timed; its second
// probes the PIM plane; from the third on, the cheaper estimate wins
// and the winning side's estimate is refreshed by an exponential moving
// average. Every decision is recorded and surfaced through
// Context.AutoStats.
//
// Routing is invisible in results: the backend contract makes host and
// PIM engines bit-identical, so the scheduler is free to move a batch
// at any time. A fault-class PIM error (injected fault past the retry
// budget, dead machine, converted panic) retires the PIM side for the
// context's lifetime and replays the failed batch on the host.
//
// The auto engine intentionally does not implement the deferred
// (NTT-resident) fast-path interfaces: deferral would route every
// rotation and multiplication down a host-only pipeline before the
// scheduler ever saw the batch, hiding the decision surface this
// backend exists to expose.

// AutoDecision records one batched-operation routing choice.
type AutoDecision struct {
	Op     string // engine operation ("AddMany", "MulMany", "Sum", ...)
	Items  int    // batch size the decision covered
	Target string // "host" or "pim"
	// Reason is why the target won: "probe-host"/"probe-pim" (first
	// exposure of the op family to each side), "modeled-cost" (the
	// estimates decided), "pim-offline" (the PIM side was retired), or
	// "pim-failover" (this batch replayed on the host after a
	// fault-class PIM error).
	Reason string
	// The per-item cost estimates at decision time, in seconds: the
	// host's measured wall time and the PIM plane's modeled makespan.
	// Zero means the side had not been probed yet.
	HostSecondsPerItem float64
	PIMSecondsPerItem  float64
}

// AutoStats is the decision surface of the "auto" backend (see
// Context.AutoStats): how many batched operations each side ran, the
// recent routing decisions with the estimates that drove them, and
// whether the PIM side has been retired by a fault.
type AutoStats struct {
	HostOps    int  // batched ops routed to the host engine
	PIMOps     int  // batched ops routed to the PIM engine
	Singletons int  // singleton ops (always host)
	PIMOffline bool // the PIM engine was retired after a fault-class error
	Decisions  []AutoDecision
}

// autoReporter is the optional Engine upgrade surfacing the routing
// decision surface, implemented by the "auto" backend.
type autoReporter interface {
	AutoStats() AutoStats
}

// autoDecisionCap bounds the retained decision log: long-lived serving
// contexts keep the most recent window, not an unbounded history.
const autoDecisionCap = 512

// famEstimate is one op family's per-item cost state.
type famEstimate struct {
	hostPerItem float64 // EWMA of measured host seconds per item
	hostN       int     // host batches observed
	pimPerItem  float64 // EWMA of modeled PIM makespan seconds per item
	pimN        int     // PIM batches observed
}

type autoEngine struct {
	host Engine     // dcrt-native: measured side, and the fault fallback
	pimE *pimEngine // simulated PIM server: modeled side

	// pimMu serializes PIM-routed batches so the modeled-makespan delta
	// read around each one is attributable to that batch alone.
	pimMu sync.Mutex

	mu      sync.Mutex
	fams    map[string]*famEstimate
	stats   AutoStats
	pimDown bool
}

func newAutoEngine(cfg Config) (*autoEngine, error) {
	pe, err := newPIMEngine(cfg)
	if err != nil {
		return nil, err
	}
	return &autoEngine{
		host: newEvalEngine(bfv.NewEvaluator(cfg.Params, cfg.Relin)),
		pimE: pe,
		fams: map[string]*famEstimate{},
	}, nil
}

// fam returns (creating on first use) the op family's estimate state.
// Caller holds e.mu.
func (e *autoEngine) fam(op string) *famEstimate {
	f := e.fams[op]
	if f == nil {
		f = &famEstimate{}
		e.fams[op] = f
	}
	return f
}

// record appends a decision and bumps the side counter. Caller holds
// e.mu.
func (e *autoEngine) record(dec AutoDecision) {
	if dec.Target == "pim" {
		e.stats.PIMOps++
	} else {
		e.stats.HostOps++
	}
	if len(e.stats.Decisions) >= autoDecisionCap {
		n := copy(e.stats.Decisions, e.stats.Decisions[1:])
		e.stats.Decisions = e.stats.Decisions[:n]
	}
	e.stats.Decisions = append(e.stats.Decisions, dec)
}

// pick chooses the target for one batched op and records the decision.
func (e *autoEngine) pick(op string, items int) AutoDecision {
	e.mu.Lock()
	defer e.mu.Unlock()
	f := e.fam(op)
	dec := AutoDecision{
		Op: op, Items: items,
		HostSecondsPerItem: f.hostPerItem,
		PIMSecondsPerItem:  f.pimPerItem,
	}
	switch {
	case f.hostN == 0:
		dec.Target, dec.Reason = "host", "probe-host"
	case e.pimDown:
		dec.Target, dec.Reason = "host", "pim-offline"
	case f.pimN == 0:
		dec.Target, dec.Reason = "pim", "probe-pim"
	case f.pimPerItem <= f.hostPerItem:
		dec.Target, dec.Reason = "pim", "modeled-cost"
	default:
		dec.Target, dec.Reason = "host", "modeled-cost"
	}
	e.record(dec)
	return dec
}

// ewma folds a new observation into an estimate (plain average of old
// and new — responsive without whiplash on the small batch counts a
// context sees).
func ewma(old float64, n int, obs float64) float64 {
	if n == 0 {
		return obs
	}
	return (old + obs) / 2
}

func (e *autoEngine) observeHost(op string, perItem float64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	f := e.fam(op)
	f.hostPerItem = ewma(f.hostPerItem, f.hostN, perItem)
	f.hostN++
}

func (e *autoEngine) observePIM(op string, perItem float64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	f := e.fam(op)
	f.pimPerItem = ewma(f.pimPerItem, f.pimN, perItem)
	f.pimN++
}

// retirePIM marks the PIM side dead and records the failover replay of
// the batch that killed it.
func (e *autoEngine) retirePIM(op string, items int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.pimDown = true
	e.stats.PIMOffline = true
	e.record(AutoDecision{Op: op, Items: items, Target: "host", Reason: "pim-failover"})
}

// route runs one batched op on the side pick chose, keeps the cost
// estimates fresh, and falls back to the host on a fault-class PIM
// error (retiring the PIM side). Panics on either engine surface as
// errors via safeOp, exactly like the failover wrapper.
func route[T any](e *autoEngine, op string, items int, run func(Engine) (T, error)) (T, error) {
	if items < 1 {
		items = 1
	}
	if e.pick(op, items).Target == "host" {
		return runHostOp(e, op, items, run)
	}
	e.pimMu.Lock()
	before := e.pimE.Breakdown().MakespanSeconds
	out, err := safeOp(e.pimE, run)
	after := e.pimE.Breakdown().MakespanSeconds
	e.pimMu.Unlock()
	if err == nil {
		e.observePIM(op, (after-before)/float64(items))
		return out, nil
	}
	if !faultClass(err) {
		return out, err
	}
	e.retirePIM(op, items)
	return runHostOp(e, op, items, run)
}

// runHostOp runs one batched op on the host engine and folds its
// measured per-item wall time into the family's host estimate.
func runHostOp[T any](e *autoEngine, op string, items int, run func(Engine) (T, error)) (T, error) {
	start := time.Now()
	out, err := safeOp(e.host, run)
	if err == nil {
		e.observeHost(op, time.Since(start).Seconds()/float64(items))
	}
	return out, err
}

// Singleton operations always run on the host.

func (e *autoEngine) single() Engine {
	e.mu.Lock()
	e.stats.Singletons++
	e.mu.Unlock()
	return e.host
}

func (e *autoEngine) Add(a, b *bfv.Ciphertext) (*bfv.Ciphertext, error) { return e.single().Add(a, b) }
func (e *autoEngine) Sub(a, b *bfv.Ciphertext) (*bfv.Ciphertext, error) { return e.single().Sub(a, b) }
func (e *autoEngine) Neg(a *bfv.Ciphertext) (*bfv.Ciphertext, error)    { return e.single().Neg(a) }
func (e *autoEngine) Mul(a, b *bfv.Ciphertext) (*bfv.Ciphertext, error) { return e.single().Mul(a, b) }
func (e *autoEngine) Square(a *bfv.Ciphertext) (*bfv.Ciphertext, error) { return e.single().Square(a) }

func (e *autoEngine) AddPlain(a *bfv.Ciphertext, pt *bfv.Plaintext) (*bfv.Ciphertext, error) {
	return e.single().AddPlain(a, pt)
}

func (e *autoEngine) MulPlain(a *bfv.Ciphertext, pt *bfv.Plaintext) (*bfv.Ciphertext, error) {
	return e.single().MulPlain(a, pt)
}

func (e *autoEngine) ApplyGalois(a *bfv.Ciphertext, gk *bfv.GaloisKey) (*bfv.Ciphertext, error) {
	return e.single().ApplyGalois(a, gk)
}

// Batched operations go through the scheduler.

func (e *autoEngine) Sum(cts []*bfv.Ciphertext) (*bfv.Ciphertext, error) {
	return route(e, "Sum", len(cts), func(g Engine) (*bfv.Ciphertext, error) { return g.Sum(cts) })
}

func (e *autoEngine) RotateMany(a *bfv.Ciphertext, gks []*bfv.GaloisKey) ([]*bfv.Ciphertext, error) {
	return route(e, "RotateMany", len(gks), func(g Engine) ([]*bfv.Ciphertext, error) {
		return g.RotateMany(a, gks)
	})
}

func (e *autoEngine) RotateAndSum(cts []*bfv.Ciphertext, gks []*bfv.GaloisKey) ([]*bfv.Ciphertext, error) {
	return route(e, "RotateAndSum", len(cts), func(g Engine) ([]*bfv.Ciphertext, error) {
		return g.RotateAndSum(cts, gks)
	})
}

func (e *autoEngine) MulMany(as, bs []*bfv.Ciphertext) ([]*bfv.Ciphertext, error) {
	return route(e, "MulMany", len(as), func(g Engine) ([]*bfv.Ciphertext, error) {
		return g.MulMany(as, bs)
	})
}

func (e *autoEngine) AddMany(as, bs []*bfv.Ciphertext) ([]*bfv.Ciphertext, error) {
	return route(e, "AddMany", len(as), func(g Engine) ([]*bfv.Ciphertext, error) {
		return g.AddMany(as, bs)
	})
}

// RotateManyAll (the serve front end's coalesced flush) is host-only:
// the batch pipeline behind it is a host fast path with no PIM
// counterpart, so routing it would only ever pick the host anyway.
func (e *autoEngine) RotateManyAll(cts []*bfv.Ciphertext, gks []*bfv.GaloisKey) ([][]*bfv.Ciphertext, error) {
	return e.host.(batchApplier).RotateManyAll(cts, gks)
}

// The modeled-hardware reporting surfaces delegate to the PIM side, so
// Context.PIMReport/PIMStats/PIMBreakdown work on auto contexts.

func (e *autoEngine) KernelLaunches() int        { return e.pimE.KernelLaunches() }
func (e *autoEngine) ModeledSeconds() float64    { return e.pimE.ModeledSeconds() }
func (e *autoEngine) FaultStats() pim.FaultStats { return e.pimE.FaultStats() }

func (e *autoEngine) Breakdown() *pimsched.Report { return e.pimE.Breakdown() }

// AutoStats returns a copy of the decision surface.
func (e *autoEngine) AutoStats() AutoStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	st := e.stats
	st.Decisions = append([]AutoDecision(nil), e.stats.Decisions...)
	return st
}
