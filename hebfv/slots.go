package hebfv

import (
	"math/bits"

	"repro/internal/bfv"
)

// Slot-level rotations. Under CRT batching the N plaintext slots form a
// 2 × (N/2) matrix, and the ring's Galois automorphisms act on it as
// slot permutations: τ_{3^k} rotates each row left by k, τ_{2N−1} swaps
// the rows. The slot → Galois-element mapping is computed here, inside
// the facade, so callers speak in rotation steps and never see
// exponents; the mapping itself is backend-independent (it depends only
// on the ring degree), so rotations are bit-identical across backends.
//
// Mechanics: the NTT slot at index j holds the evaluation of the
// plaintext polynomial at ψ^(2·bitrev(j)+1) (the transform's
// Longa–Naehrig layout). The odd exponents mod 2N factor as ±3^c —
// ⟨−1⟩ × ⟨3⟩ generates the whole group — so logical slot (row r,
// column c) is assigned the evaluation at (−1)^r·3^c. Applying τ_g
// (g = 3^k) to the ciphertext moves the evaluation at ±3^c to
// ±3^(c−k): each row rotates left by k, rows never mix. g = 2N−1
// negates every exponent: the rows swap column-wise.

// slotPerm maps logical slot index (row-major in the 2 × N/2 matrix) to
// the NTT slot holding its evaluation point.
func slotPerm(n int) []int {
	logN := bits.TrailingZeros(uint(n))
	twoN := uint64(2 * n)
	perm := make([]int, n)
	row := n / 2
	e := uint64(1) // 3^c mod 2N
	for c := 0; c < row; c++ {
		perm[c] = nttSlot(e, logN)          // row 0: evaluation at ψ^(3^c)
		perm[row+c] = nttSlot(twoN-e, logN) // row 1: evaluation at ψ^(−3^c)
		e = e * 3 % twoN
	}
	return perm
}

// nttSlot returns the NTT slot index whose evaluation exponent is the
// odd e: j with 2·bitrev(j)+1 = e.
func nttSlot(e uint64, logN int) int {
	return int(bits.Reverse64((e-1)/2) >> (64 - logN))
}

// rowStepElement returns the Galois element realizing a row rotation by
// k steps (left for positive k, right for negative), i.e. 3^(k mod N/2)
// mod 2N.
func (c *Context) rowStepElement(k int) uint64 {
	row := c.params.N / 2
	k = ((k % row) + row) % row
	twoN := uint64(2 * c.params.N)
	g := uint64(1)
	for i := 0; i < k; i++ {
		g = g * 3 % twoN
	}
	return g
}

// columnElement returns the Galois element realizing the column-wise
// row swap: 2N − 1 (negation of every evaluation exponent).
func (c *Context) columnElement() uint64 {
	return uint64(2*c.params.N) - 1
}

// RotateRows rotates each slot row left by k steps (right for negative
// k): output slot (r, c) receives input slot (r, (c+k) mod RowSlots).
// The Galois key for the step is derived and cached on first use.
func (c *Context) RotateRows(ct *Ciphertext, k int) (_ *Ciphertext, err error) {
	defer guard(&err)
	if _, err := c.requireBatching(); err != nil {
		return nil, err
	}
	raw, err := c.own(ct)
	if err != nil {
		return nil, err
	}
	g := c.rowStepElement(k)
	if g == 1 {
		return ct, nil // rotation by a multiple of the row length
	}
	gk, err := c.galoisKey(g)
	if err != nil {
		return nil, err
	}
	out, err := c.eng.ApplyGalois(raw, gk)
	if err != nil {
		return nil, err
	}
	return c.wrap(out), nil
}

// RotateColumns swaps the two slot rows column-wise: output slot (r, c)
// receives input slot (1−r, c).
func (c *Context) RotateColumns(ct *Ciphertext) (_ *Ciphertext, err error) {
	defer guard(&err)
	if _, err := c.requireBatching(); err != nil {
		return nil, err
	}
	raw, err := c.own(ct)
	if err != nil {
		return nil, err
	}
	gk, err := c.galoisKey(c.columnElement())
	if err != nil {
		return nil, err
	}
	out, err := c.eng.ApplyGalois(raw, gk)
	if err != nil {
		return nil, err
	}
	return c.wrap(out), nil
}

// InnerSum returns a ciphertext whose every slot holds the sum of all
// input slots, via the log-depth rotate-and-add ladder (log2(RowSlots)
// row rotations plus one column swap). The ladder's Galois keys derive
// lazily; pregenerate them with WithRotations(1, 2, 4, …) and
// WithColumnRotation on contexts that must stay evaluation-only.
func (c *Context) InnerSum(ct *Ciphertext) (_ *Ciphertext, err error) {
	defer guard(&err)
	if _, err := c.requireBatching(); err != nil {
		return nil, err
	}
	if _, err := c.own(ct); err != nil {
		return nil, err
	}
	acc := ct
	for sh := 1; sh < c.RowSlots(); sh <<= 1 {
		rot, err := c.RotateRows(acc, sh)
		if err != nil {
			return nil, err
		}
		if acc, err = c.Add(acc, rot); err != nil {
			return nil, err
		}
	}
	swapped, err := c.RotateColumns(acc)
	if err != nil {
		return nil, err
	}
	return c.Add(acc, swapped)
}

// RotateRowsMany returns the row rotations of ct by every step in ks,
// hoisting the key-switching digit decomposition: one decomposition
// serves all steps. On backends with NTT-resident rotation outputs the
// results stay in cached NTT form — their base conversions deferred —
// until a consumer forces coefficients (see Ciphertext). Each output is
// bit-identical to RotateRows(ct, ks[i]).
func (c *Context) RotateRowsMany(ct *Ciphertext, ks []int) (_ []*Ciphertext, err error) {
	defer guard(&err)
	if _, err := c.requireBatching(); err != nil {
		return nil, err
	}
	raw, err := c.own(ct)
	if err != nil {
		return nil, err
	}
	// Identity steps (k ≡ 0 mod RowSlots) pass through untouched, exactly
	// like RotateRows — no key switch, no key required.
	els := c.rowStepElements(ks)
	out := make([]*Ciphertext, len(ks))
	var positions []int
	var gs []uint64
	for i, g := range els {
		if g == 1 {
			out[i] = ct
		} else {
			positions = append(positions, i)
			gs = append(gs, g)
		}
	}
	gks, err := c.galoisKeys(gs)
	if err != nil {
		return nil, err
	}
	if len(gs) == 0 {
		return out, nil // all steps were identities: nothing to hoist
	}
	if dr, ok := c.eng.(DeferredRotator); ok && dr.CanDefer() {
		rots, err := dr.RotateManyNTT(raw, gks)
		if err != nil {
			return nil, err
		}
		for j, r := range rots {
			out[positions[j]] = c.wrapDeferred(r)
		}
		return out, nil
	}
	rots, err := c.eng.RotateMany(raw, gks)
	if err != nil {
		return nil, err
	}
	for j, r := range rots {
		out[positions[j]] = c.wrap(r)
	}
	return out, nil
}

// RotateRowsAndSum returns, for each input ciphertext, ct + Σ_k
// RotateRows(ct, k) over the steps ks — the batched rotate-and-sum
// aggregation, with the key-switching reductions of all steps fused on
// backends that support it. Bit-identical to folding RotateRows outputs
// with Add in step order.
func (c *Context) RotateRowsAndSum(cts []*Ciphertext, ks []int) (_ []*Ciphertext, err error) {
	defer guard(&err)
	if _, err := c.requireBatching(); err != nil {
		return nil, err
	}
	raw, err := c.ownAll(cts)
	if err != nil {
		return nil, err
	}
	// Identity steps contribute the un-keyswitched input itself, like
	// RotateRows; modular addition commutes bit-exactly, so folding them
	// after the engine's reduction matches the documented step order.
	var gs []uint64
	identity := 0
	for _, g := range c.rowStepElements(ks) {
		if g == 1 {
			identity++
		} else {
			gs = append(gs, g)
		}
	}
	gks, err := c.galoisKeys(gs)
	if err != nil {
		return nil, err
	}
	var out []*rawCiphertext
	if len(gs) == 0 && identity == 0 {
		// No steps at all: return fresh copies — facade outputs never
		// alias input backings (callers may release inputs afterwards).
		out = make([]*rawCiphertext, len(raw))
		for i, r := range raw {
			out[i] = r.Clone()
		}
	} else if len(gs) == 0 {
		// All steps were identities: no hoisted decomposition to pay.
		// The identity folds below produce fresh outputs.
		out = append(out, raw...)
	} else if out, err = c.eng.RotateAndSum(raw, gks); err != nil {
		return nil, err
	}
	for i := range out {
		for r := 0; r < identity; r++ {
			if out[i], err = c.eng.Add(out[i], raw[i]); err != nil {
				return nil, err
			}
		}
	}
	wrapped := make([]*Ciphertext, len(out))
	for i, ct := range out {
		wrapped[i] = c.wrap(ct)
	}
	return wrapped, nil
}

// RotateRowsEach rotates every input ciphertext's rows left by the same
// k steps — the coalesced-rotation workload of the served front end,
// where concurrent tenants' same-step requests are gathered and flushed
// as one batch. On engines exposing a batch rotation pipeline the whole
// slice shares one dispatch; otherwise the rotations apply serially.
// Each output is bit-identical to RotateRows(cts[i], k).
func (c *Context) RotateRowsEach(cts []*Ciphertext, k int) (_ []*Ciphertext, err error) {
	defer guard(&err)
	if _, err := c.requireBatching(); err != nil {
		return nil, err
	}
	raw, err := c.ownAll(cts)
	if err != nil {
		return nil, err
	}
	g := c.rowStepElement(k)
	if g == 1 {
		out := make([]*Ciphertext, len(cts))
		copy(out, cts) // rotation by a multiple of the row length
		return out, nil
	}
	gk, err := c.galoisKey(g)
	if err != nil {
		return nil, err
	}
	out := make([]*Ciphertext, len(raw))
	if ba, ok := c.eng.(batchApplier); ok {
		rows, err := ba.RotateManyAll(raw, []*bfv.GaloisKey{gk})
		if err != nil {
			return nil, err
		}
		for i, row := range rows {
			out[i] = c.wrap(row[0])
		}
		return out, nil
	}
	for i, r := range raw {
		rot, err := c.eng.ApplyGalois(r, gk)
		if err != nil {
			return nil, err
		}
		out[i] = c.wrap(rot)
	}
	return out, nil
}

// rowStepElements maps rotation steps to Galois elements. Steps that
// reduce to the identity element g = 1 (k ≡ 0 mod RowSlots) are handled
// by the callers as pass-throughs — never key-switched.
func (c *Context) rowStepElements(ks []int) []uint64 {
	out := make([]uint64, len(ks))
	for i, k := range ks {
		out[i] = c.rowStepElement(k)
	}
	return out
}
