package hebfv

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"sort"

	"repro/internal/bfv"
)

// Versioned serialization for facade types. Every blob starts with one
// header:
//
//	magic "HEBF" | u8 version | u8 kind | u32 N | u32 W | u64 T |
//	u32 relinBaseBits
//
// followed by a kind-specific payload that reuses the internal binary
// formats (internal/bfv serialize.go / serialize_keys.go) verbatim — so
// facade blobs are the internal formats plus a self-describing,
// versioned parameter guard, and the round trip is testable against the
// internal layer directly.
//
// Kinds:
//
//	ciphertext (1): one internal ciphertext record
//	key set    (2): u8 flags (bit0: secret key present) | [secret key] |
//	                public key | relin key | u32 count | count ×
//	                (internal Galois-key record)

const serialVersion = 1

var serialMagic = [4]byte{'H', 'E', 'B', 'F'}

const (
	kindCiphertext = 1
	kindKeySet     = 2
)

// serialHeader is the fixed-size parameter guard after the magic.
type serialHeader struct {
	Version  uint8
	Kind     uint8
	N        uint32
	W        uint32
	T        uint64
	BaseBits uint32
}

func (c *Context) writeHeader(w io.Writer, kind uint8) error {
	if _, err := w.Write(serialMagic[:]); err != nil {
		return err
	}
	return binary.Write(w, binary.LittleEndian, serialHeader{
		Version:  serialVersion,
		Kind:     kind,
		N:        uint32(c.params.N),
		W:        uint32(c.params.Q.W),
		T:        c.params.T,
		BaseBits: uint32(c.params.RelinBaseBits),
	})
}

func (c *Context) readHeader(r io.Reader, wantKind uint8) error {
	var magic [4]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return fmt.Errorf("%w: truncated header: %v", ErrCorruptBlob, err)
	}
	if magic != serialMagic {
		return fmt.Errorf("%w: bad magic (not a hebfv blob)", ErrCorruptBlob)
	}
	var h serialHeader
	if err := binary.Read(r, binary.LittleEndian, &h); err != nil {
		return fmt.Errorf("%w: truncated header: %v", ErrCorruptBlob, err)
	}
	if h.Version != serialVersion {
		return fmt.Errorf("%w: unsupported format version %d (have %d)", ErrCorruptBlob, h.Version, serialVersion)
	}
	if h.Kind != wantKind {
		return fmt.Errorf("%w: blob kind %d, want %d", ErrCorruptBlob, h.Kind, wantKind)
	}
	if int(h.N) != c.params.N || int(h.W) != c.params.Q.W ||
		h.T != c.params.T || uint(h.BaseBits) != c.params.RelinBaseBits {
		return fmt.Errorf("%w: blob parameters (N=%d W=%d t=%d base=%d) do not match the context's %v",
			ErrCorruptBlob, h.N, h.W, h.T, h.BaseBits, c.params)
	}
	return nil
}

// MarshalBinary serializes the ciphertext (forcing a deferred rotation
// output first) with the versioned facade header.
func (ct *Ciphertext) MarshalBinary() (_ []byte, err error) {
	defer guard(&err)
	raw := ct.force()
	var buf bytes.Buffer
	if err := ct.ctx.writeHeader(&buf, kindCiphertext); err != nil {
		return nil, err
	}
	if err := raw.Serialize(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// UnmarshalCiphertext deserializes a ciphertext blob into a handle
// bound to this context, validating the parameter guard.
func (c *Context) UnmarshalCiphertext(data []byte) (_ *Ciphertext, err error) {
	defer guardBlob(&err)
	r := bytes.NewReader(data)
	if err := c.readHeader(r, kindCiphertext); err != nil {
		return nil, err
	}
	ct, err := bfv.ReadCiphertext(r, c.params)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorruptBlob, err)
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after ciphertext", ErrCorruptBlob, r.Len())
	}
	return c.wrap(ct), nil
}

const keySetHasSecret = 1

// ExportKeys serializes the context's key material — the public and
// relinearization keys, every Galois key cached so far, and (when
// includeSecret is set) the secret key — as one versioned blob a new
// context restores with WithKeySet. Exporting without the secret yields
// an evaluation-only key set: the server half of the deployment model.
//
// Galois keys are exported in element order; derive the keys a
// restored evaluation-only context will need (WithRotations /
// WithColumnRotation, or by running the workload once) before
// exporting.
func (c *Context) ExportKeys(includeSecret bool) (_ []byte, err error) {
	defer guard(&err)
	if includeSecret && c.sk == nil {
		return nil, fmt.Errorf("%w: nothing to export", ErrNoSecretKey)
	}
	c.mu.Lock()
	gs := make([]uint64, 0, len(c.gks))
	for g := range c.gks {
		gs = append(gs, g)
	}
	gks := make([]*bfv.GaloisKey, 0, len(gs))
	sort.Slice(gs, func(i, j int) bool { return gs[i] < gs[j] })
	for _, g := range gs {
		gks = append(gks, c.gks[g])
	}
	c.mu.Unlock()

	var buf bytes.Buffer
	if err := c.writeHeader(&buf, kindKeySet); err != nil {
		return nil, err
	}
	flags := byte(0)
	if includeSecret {
		flags |= keySetHasSecret
	}
	buf.WriteByte(flags)
	if includeSecret {
		if err := c.sk.Serialize(&buf); err != nil {
			return nil, err
		}
	}
	if err := c.pk.Serialize(&buf); err != nil {
		return nil, err
	}
	if err := c.rlk.Serialize(&buf); err != nil {
		return nil, err
	}
	if err := binary.Write(&buf, binary.LittleEndian, uint32(len(gks))); err != nil {
		return nil, err
	}
	for _, gk := range gks {
		if err := gk.Serialize(&buf); err != nil {
			return nil, err
		}
	}
	return buf.Bytes(), nil
}

// maxKeySetGaloisKeys bounds the Galois-key count when decoding.
const maxKeySetGaloisKeys = 1 << 16

// importKeys restores key material from an ExportKeys blob (New with
// WithKeySet).
func (c *Context) importKeys(data []byte) (err error) {
	defer guardBlob(&err)
	r := bytes.NewReader(data)
	if err := c.readHeader(r, kindKeySet); err != nil {
		return err
	}
	var flags [1]byte
	if _, err := io.ReadFull(r, flags[:]); err != nil {
		return fmt.Errorf("%w: truncated key set: %v", ErrCorruptBlob, err)
	}
	if flags[0]&keySetHasSecret != 0 {
		sk, err := bfv.ReadSecretKey(r, c.params)
		if err != nil {
			return fmt.Errorf("%w: key set secret key: %v", ErrCorruptBlob, err)
		}
		c.sk = sk
	}
	pk, err := bfv.ReadPublicKey(r, c.params)
	if err != nil {
		return fmt.Errorf("%w: key set public key: %v", ErrCorruptBlob, err)
	}
	c.pk = pk
	rlk, err := bfv.ReadRelinKey(r, c.params)
	if err != nil {
		return fmt.Errorf("%w: key set relin key: %v", ErrCorruptBlob, err)
	}
	c.rlk = rlk
	var count uint32
	if err := binary.Read(r, binary.LittleEndian, &count); err != nil {
		return fmt.Errorf("%w: truncated key set: %v", ErrCorruptBlob, err)
	}
	if count > maxKeySetGaloisKeys {
		return fmt.Errorf("%w: implausible Galois-key count %d", ErrCorruptBlob, count)
	}
	for i := uint32(0); i < count; i++ {
		gk, err := bfv.ReadGaloisKey(r, c.params)
		if err != nil {
			return fmt.Errorf("%w: key set Galois key %d: %v", ErrCorruptBlob, i, err)
		}
		c.gks[gk.G] = gk
	}
	if r.Len() != 0 {
		return fmt.Errorf("%w: %d trailing bytes after key set", ErrCorruptBlob, r.Len())
	}
	return nil
}
