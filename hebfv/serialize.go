package hebfv

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
	"sort"

	"repro/internal/bfv"
)

// Versioned serialization for facade types. Every blob starts with one
// header:
//
//	magic "HEBF" | u8 version | u8 kind | u32 N | u32 W | u64 T |
//	u32 relinBaseBits
//
// followed by a kind-specific payload that reuses the internal binary
// formats (internal/bfv serialize.go / serialize_keys.go) verbatim — so
// facade blobs are the internal formats plus a self-describing,
// versioned parameter guard, and the round trip is testable against the
// internal layer directly.
//
// The primary entry points are streaming: Ciphertext.MarshalTo /
// Context.ReadCiphertext and Context.ExportKeysTo / WithKeySetFrom move
// records across io.Writer/io.Reader boundaries in O(chunk) memory, so
// a served front end never stages a multi-MB ciphertext as one buffer.
// The []byte forms (MarshalBinary, UnmarshalCiphertext, ExportKeys,
// WithKeySet) are thin wrappers over the same code paths — one format,
// no double buffering underneath.
//
// Kinds:
//
//	ciphertext (1): one internal ciphertext record
//	key set    (2): u8 flags (bit0: secret key present) | [secret key] |
//	                public key | relin key | u32 count | count ×
//	                (internal Galois-key record)

const serialVersion = 1

var serialMagic = [4]byte{'H', 'E', 'B', 'F'}

const (
	kindCiphertext = 1
	kindKeySet     = 2
)

// serialHeader is the fixed-size parameter guard after the magic.
type serialHeader struct {
	Version  uint8
	Kind     uint8
	N        uint32
	W        uint32
	T        uint64
	BaseBits uint32
}

// serialHeaderBytes is the encoded size of the magic plus serialHeader.
const serialHeaderBytes = 4 + 1 + 1 + 4 + 4 + 8 + 4

// internalCiphertextHeaderBytes is the fixed prefix of the internal
// ciphertext record: magic "BFVc" | u32 polyCount | u32 N | u32 W.
const internalCiphertextHeaderBytes = 4 + 4 + 4 + 4

func (c *Context) writeHeader(w io.Writer, kind uint8) error {
	if _, err := w.Write(serialMagic[:]); err != nil {
		return err
	}
	return binary.Write(w, binary.LittleEndian, serialHeader{
		Version:  serialVersion,
		Kind:     kind,
		N:        uint32(c.params.N),
		W:        uint32(c.params.Q.W),
		T:        c.params.T,
		BaseBits: uint32(c.params.RelinBaseBits),
	})
}

func (c *Context) readHeader(r io.Reader, wantKind uint8) error {
	var magic [4]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return fmt.Errorf("%w: truncated header: %v", ErrCorruptBlob, err)
	}
	if magic != serialMagic {
		return fmt.Errorf("%w: bad magic (not a hebfv blob)", ErrCorruptBlob)
	}
	var h serialHeader
	if err := binary.Read(r, binary.LittleEndian, &h); err != nil {
		return fmt.Errorf("%w: truncated header: %v", ErrCorruptBlob, err)
	}
	if h.Version != serialVersion {
		return fmt.Errorf("%w: unsupported format version %d (have %d)", ErrCorruptBlob, h.Version, serialVersion)
	}
	if h.Kind != wantKind {
		return fmt.Errorf("%w: blob kind %d, want %d", ErrCorruptBlob, h.Kind, wantKind)
	}
	if int(h.N) != c.params.N || int(h.W) != c.params.Q.W ||
		h.T != c.params.T || uint(h.BaseBits) != c.params.RelinBaseBits {
		return fmt.Errorf("%w: blob parameters (N=%d W=%d t=%d base=%d) do not match the context's %v",
			ErrCorruptBlob, h.N, h.W, h.T, h.BaseBits, c.params)
	}
	return nil
}

// ciphertextWireBytes is the exact encoded size of a ciphertext with the
// given component count under this context's parameters.
func (c *Context) ciphertextWireBytes(components int) int {
	return serialHeaderBytes + internalCiphertextHeaderBytes +
		components*c.params.N*c.params.Q.W*4
}

// MarshalTo streams the ciphertext — versioned facade header plus the
// internal record — to w in fixed-size chunks: the encoder's working
// set is O(chunk) regardless of the ciphertext size, so serving paths
// can pipe multi-MB ciphertexts straight into a socket. A deferred
// (NTT-resident) handle is forced first; the bytes written are exactly
// MarshaledBytes.
func (ct *Ciphertext) MarshalTo(w io.Writer) (err error) {
	defer guard(&err)
	raw := ct.force()
	if raw == nil {
		return fmt.Errorf("%w: marshal after release", ErrReleasedHandle)
	}
	if err := ct.ctx.writeHeader(w, kindCiphertext); err != nil {
		return err
	}
	return raw.Serialize(w)
}

// MarshaledBytes returns the exact encoded size of this handle —
// MarshalTo writes exactly this many bytes. Deferred (NTT-resident)
// rotation and multiplication outputs are sized without forcing them:
// both materialize to the relinearized two-component form, so the size
// hint is exact for either handle kind. Use it for Content-Length
// headers and streaming buffers.
func (ct *Ciphertext) MarshaledBytes() int {
	return ct.ctx.ciphertextWireBytes(ct.components())
}

// MarshalBinary serializes the ciphertext as one buffer. It is a thin
// wrapper over MarshalTo, pre-sized by MarshaledBytes.
func (ct *Ciphertext) MarshalBinary() ([]byte, error) {
	var buf bytes.Buffer
	buf.Grow(ct.MarshaledBytes())
	if err := ct.MarshalTo(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// ReadCiphertext streams one ciphertext record from r into a handle
// bound to this context, validating the parameter guard. It consumes
// exactly the record's bytes, so records can be read back to back off
// one stream (a request body carrying two operands, say). Decoding is
// hardened: any structural violation is a typed ErrCorruptBlob.
//
// The coefficient backings are drawn from the context's decode pool
// and deserialized in place — no staging beyond the serializer's fixed
// chunk buffer — so the returned handle is pooled: call Release when
// done with it to recycle the backings (the serve package does this
// automatically). A handle that is never released stays valid
// indefinitely and is reclaimed by the garbage collector like any
// other; releasing is an optimization contract, not a correctness one.
// A rejected blob returns every acquired backing before the error
// surfaces, keeping the pool's leak balance intact.
func (c *Context) ReadCiphertext(r io.Reader) (_ *Ciphertext, err error) {
	defer guardBlob(&err)
	if err := c.requireOpen(); err != nil {
		return nil, err
	}
	if err := c.readHeader(r, kindCiphertext); err != nil {
		return nil, err
	}
	ct, err := bfv.ReadCiphertextBacked(r, c.params, c.pool)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorruptBlob, err)
	}
	h := c.wrap(ct)
	h.pooled = true
	return h, nil
}

// UnmarshalCiphertext deserializes a ciphertext blob. It is a thin
// wrapper over ReadCiphertext that additionally rejects trailing bytes
// — a blob is exactly one record.
func (c *Context) UnmarshalCiphertext(data []byte) (*Ciphertext, error) {
	r := bytes.NewReader(data)
	ct, err := c.ReadCiphertext(r)
	if err != nil {
		return nil, err
	}
	if r.Len() != 0 {
		n := r.Len()
		_ = ct.Release() // return the pooled backings before rejecting
		return nil, fmt.Errorf("%w: %d trailing bytes after ciphertext", ErrCorruptBlob, n)
	}
	return ct, nil
}

const keySetHasSecret = 1

// ExportKeysTo streams the context's key material — the public and
// relinearization keys, every Galois key cached so far, and (when
// includeSecret is set) the secret key — as one versioned record a new
// context restores with WithKeySet / WithKeySetFrom. Exporting without
// the secret yields an evaluation-only key set: the server half of the
// deployment model.
//
// Galois keys are exported in element order; derive the keys a
// restored evaluation-only context will need (WithRotations /
// WithColumnRotation, or by running the workload once) before
// exporting. The encoding is deterministic for a fixed key state, which
// is what makes KeySetHash a stable fingerprint.
func (c *Context) ExportKeysTo(w io.Writer, includeSecret bool) (err error) {
	defer guard(&err)
	if err := c.requireOpen(); err != nil {
		return err
	}
	if includeSecret && c.sk == nil {
		return fmt.Errorf("%w: nothing to export", ErrNoSecretKey)
	}
	c.mu.Lock()
	gs := make([]uint64, 0, len(c.gks))
	for g := range c.gks {
		gs = append(gs, g)
	}
	gks := make([]*bfv.GaloisKey, 0, len(gs))
	sort.Slice(gs, func(i, j int) bool { return gs[i] < gs[j] })
	for _, g := range gs {
		gks = append(gks, c.gks[g])
	}
	c.mu.Unlock()

	if err := c.writeHeader(w, kindKeySet); err != nil {
		return err
	}
	flags := []byte{0}
	if includeSecret {
		flags[0] |= keySetHasSecret
	}
	if _, err := w.Write(flags); err != nil {
		return err
	}
	if includeSecret {
		if err := c.sk.Serialize(w); err != nil {
			return err
		}
	}
	if err := c.pk.Serialize(w); err != nil {
		return err
	}
	if err := c.rlk.Serialize(w); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(len(gks))); err != nil {
		return err
	}
	for _, gk := range gks {
		if err := gk.Serialize(w); err != nil {
			return err
		}
	}
	return nil
}

// ExportKeys serializes the key material as one buffer — a thin wrapper
// over ExportKeysTo.
func (c *Context) ExportKeys(includeSecret bool) ([]byte, error) {
	var buf bytes.Buffer
	if err := c.ExportKeysTo(&buf, includeSecret); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// KeySetHash returns the context's stable identity: the SHA-256 of its
// evaluation-only key-set encoding (ExportKeysTo with includeSecret
// false). Two contexts holding the same public material — a client and
// the evaluation-only server context restored from its export — hash
// identically, so the hash is the tenant key a serving cache looks
// contexts up by. The fingerprint covers exactly the Galois keys cached
// at call time: derive the workload's rotation keys before
// fingerprinting, and fingerprint the blob you export, not a context
// that has since derived more keys. A closed context returns the zero
// hash.
func (c *Context) KeySetHash() [32]byte {
	h := sha256.New()
	if err := c.ExportKeysTo(h, false); err != nil {
		return [32]byte{}
	}
	var sum [32]byte
	h.Sum(sum[:0])
	return sum
}

// maxKeySetGaloisKeys bounds the Galois-key count when decoding.
const maxKeySetGaloisKeys = 1 << 16

// importKeys restores key material from an ExportKeys blob (New with
// WithKeySet), rejecting trailing bytes.
func (c *Context) importKeys(data []byte) error {
	r := bytes.NewReader(data)
	if err := c.importKeysFrom(r); err != nil {
		return err
	}
	if r.Len() != 0 {
		return fmt.Errorf("%w: %d trailing bytes after key set", ErrCorruptBlob, r.Len())
	}
	return nil
}

// importKeysFrom streams key material from an ExportKeysTo record (New
// with WithKeySetFrom). It consumes exactly the record's bytes.
func (c *Context) importKeysFrom(r io.Reader) (err error) {
	defer guardBlob(&err)
	if err := c.readHeader(r, kindKeySet); err != nil {
		return err
	}
	var flags [1]byte
	if _, err := io.ReadFull(r, flags[:]); err != nil {
		return fmt.Errorf("%w: truncated key set: %v", ErrCorruptBlob, err)
	}
	if flags[0]&keySetHasSecret != 0 {
		sk, err := bfv.ReadSecretKey(r, c.params)
		if err != nil {
			return fmt.Errorf("%w: key set secret key: %v", ErrCorruptBlob, err)
		}
		c.sk = sk
	}
	pk, err := bfv.ReadPublicKey(r, c.params)
	if err != nil {
		return fmt.Errorf("%w: key set public key: %v", ErrCorruptBlob, err)
	}
	c.pk = pk
	rlk, err := bfv.ReadRelinKey(r, c.params)
	if err != nil {
		return fmt.Errorf("%w: key set relin key: %v", ErrCorruptBlob, err)
	}
	c.rlk = rlk
	var count uint32
	if err := binary.Read(r, binary.LittleEndian, &count); err != nil {
		return fmt.Errorf("%w: truncated key set: %v", ErrCorruptBlob, err)
	}
	if count > maxKeySetGaloisKeys {
		return fmt.Errorf("%w: implausible Galois-key count %d", ErrCorruptBlob, count)
	}
	for i := uint32(0); i < count; i++ {
		gk, err := bfv.ReadGaloisKey(r, c.params)
		if err != nil {
			return fmt.Errorf("%w: key set Galois key %d: %v", ErrCorruptBlob, i, err)
		}
		c.gks[gk.G] = gk
	}
	return nil
}
