package hebfv

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"io"
	"runtime"
	"testing"
)

// TestStreamingRoundTrip pins the streaming entry points against the
// []byte wrappers: MarshalTo writes the same bytes MarshalBinary
// returns, ReadCiphertext consumes exactly one record (so records read
// back to back off one stream), and the decrypted results match.
func TestStreamingRoundTrip(t *testing.T) {
	ctx, err := New(WithInsecureToyParameters(), WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	ct1, err := ctx.EncryptValue(11)
	if err != nil {
		t.Fatal(err)
	}
	ct2, err := ctx.EncryptValue(13)
	if err != nil {
		t.Fatal(err)
	}
	blob1, err := ct1.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var streamed bytes.Buffer
	if err := ct1.MarshalTo(&streamed); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(streamed.Bytes(), blob1) {
		t.Fatalf("MarshalTo and MarshalBinary disagree: %d vs %d bytes", streamed.Len(), len(blob1))
	}

	// Two records back to back off one reader, like an eval request body.
	if err := ct2.MarshalTo(&streamed); err != nil {
		t.Fatal(err)
	}
	r := bytes.NewReader(streamed.Bytes())
	got1, err := ctx.ReadCiphertext(r)
	if err != nil {
		t.Fatal(err)
	}
	got2, err := ctx.ReadCiphertext(r)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 0 {
		t.Fatalf("%d bytes left after two records", r.Len())
	}
	for i, pair := range []struct {
		got  *Ciphertext
		want uint64
	}{{got1, 11}, {got2, 13}} {
		v, err := ctx.DecryptValue(pair.got)
		if err != nil {
			t.Fatal(err)
		}
		if v != pair.want {
			t.Fatalf("record %d: decrypted %d, want %d", i, v, pair.want)
		}
	}
}

// TestMarshaledBytesExact pins the size accounting for all three handle
// kinds — fresh, deferred rotation, deferred product — against the
// actual encoding, without the deferred handles being forced by the
// size query itself.
func TestMarshaledBytesExact(t *testing.T) {
	ctx, err := New(WithInsecureToyParameters(), WithSeed(3), WithRotations(1))
	if err != nil {
		t.Fatal(err)
	}
	vals := make([]uint64, ctx.Slots())
	for i := range vals {
		vals[i] = uint64(i)
	}
	fresh, err := ctx.EncryptSlots(vals)
	if err != nil {
		t.Fatal(err)
	}
	rots, err := ctx.RotateRowsMany(fresh, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	prod, err := ctx.Mul(fresh, fresh)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		ct   *Ciphertext
	}{{"fresh", fresh}, {"deferred-rotation", rots[0]}, {"deferred-product", prod}} {
		want := tc.ct.MarshaledBytes()
		if cb := ctx.CiphertextBytes(); want != cb {
			t.Errorf("%s: MarshaledBytes %d != CiphertextBytes %d", tc.name, want, cb)
		}
		blob, err := tc.ct.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if len(blob) != want {
			t.Errorf("%s: encoded %d bytes, MarshaledBytes said %d", tc.name, len(blob), want)
		}
	}
}

// TestKeySetHash pins the fingerprint semantics: the hash is the
// sha256 of the evaluation-only export, a context restored from that
// export hashes identically (the client/server agreement the serving
// cache keys on), and deriving a new Galois key changes it.
func TestKeySetHash(t *testing.T) {
	ctx, err := New(WithInsecureToyParameters(), WithSeed(5), WithRotations(1))
	if err != nil {
		t.Fatal(err)
	}
	blob, err := ctx.ExportKeys(false)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := ctx.KeySetHash(), sha256.Sum256(blob); got != want {
		t.Fatalf("KeySetHash != sha256 of the evaluation-only export")
	}
	restored, err := New(WithInsecureToyParameters(), WithKeySet(blob))
	if err != nil {
		t.Fatal(err)
	}
	if restored.KeySetHash() != ctx.KeySetHash() {
		t.Fatalf("restored context fingerprint differs from its source")
	}
	// A new rotation key extends the exported key set: new fingerprint.
	before := ctx.KeySetHash()
	ct, err := ctx.EncryptValue(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctx.RotateRows(ct, 2); err != nil {
		t.Fatal(err)
	}
	if ctx.KeySetHash() == before {
		t.Fatalf("fingerprint unchanged after deriving a new Galois key")
	}
}

// TestWithKeySetFrom pins the streaming restore path: a context built
// from an io.Reader matches the []byte restore, consumes exactly one
// record, and the two options are mutually exclusive.
func TestWithKeySetFrom(t *testing.T) {
	ctx, err := New(WithInsecureToyParameters(), WithSeed(9), WithRotations(1))
	if err != nil {
		t.Fatal(err)
	}
	blob, err := ctx.ExportKeys(false)
	if err != nil {
		t.Fatal(err)
	}
	// Trailing bytes after the record must stay unread.
	r := bytes.NewReader(append(append([]byte{}, blob...), 0xEE))
	restored, err := New(WithInsecureToyParameters(), WithKeySetFrom(r))
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 1 {
		t.Fatalf("WithKeySetFrom read past the record: %d trailing bytes left", r.Len())
	}
	if restored.KeySetHash() != ctx.KeySetHash() {
		t.Fatalf("streamed restore fingerprint differs")
	}
	if restored.CanDecrypt() {
		t.Fatalf("evaluation-only restore can decrypt")
	}
	if _, err := New(WithInsecureToyParameters(), WithKeySet(blob), WithKeySetFrom(bytes.NewReader(blob))); err == nil {
		t.Fatalf("WithKeySet + WithKeySetFrom accepted together")
	}
}

// TestContextClose pins the lifecycle contract: every operation class
// fails typed after Close, and Close is idempotent.
func TestContextClose(t *testing.T) {
	ctx, err := New(WithInsecureToyParameters(), WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	ct, err := ctx.EncryptValue(4)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := ct.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if err := ctx.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ctx.Close(); err != nil {
		t.Fatal(err) // idempotent
	}
	if _, err := ctx.Add(ct, ct); !errors.Is(err, ErrContextClosed) {
		t.Errorf("Add after Close: %v, want ErrContextClosed", err)
	}
	if _, err := ctx.ReadCiphertext(bytes.NewReader(blob)); !errors.Is(err, ErrContextClosed) {
		t.Errorf("ReadCiphertext after Close: %v, want ErrContextClosed", err)
	}
	if err := ctx.ExportKeysTo(io.Discard, false); !errors.Is(err, ErrContextClosed) {
		t.Errorf("ExportKeysTo after Close: %v, want ErrContextClosed", err)
	}
	if _, err := ctx.EncryptSlots([]uint64{1}); !errors.Is(err, ErrContextClosed) {
		t.Errorf("EncryptSlots after Close: %v, want ErrContextClosed", err)
	}
	if ctx.KeySetHash() != ([32]byte{}) {
		t.Errorf("KeySetHash after Close is not the zero hash")
	}
}

// TestStreamingMarshalAllocs pins the tentpole memory property: at
// n=4096 a ciphertext encodes to ~256 KiB, and streaming it must cost
// O(chunk) heap, not O(blob) — the 32 KiB chunk buffer is pooled, so
// the steady-state per-op allocation is bounded by small header
// scratch. A buffered single-blob encoder would show up here as
// hundreds of KiB per op.
func TestStreamingMarshalAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("n=4096 key generation in -short mode")
	}
	ctx, err := New(WithSecurityLevel(109), WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	ct, err := ctx.EncryptValue(3)
	if err != nil {
		t.Fatal(err)
	}
	blobSize := ct.MarshaledBytes()
	if blobSize < 100<<10 {
		t.Fatalf("n=4096 ciphertext is %d bytes; the bound below assumes a ~128 KiB blob", blobSize)
	}
	if err := ct.MarshalTo(io.Discard); err != nil { // warm the chunk pool
		t.Fatal(err)
	}
	const iters = 16
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	for i := 0; i < iters; i++ {
		if err := ct.MarshalTo(io.Discard); err != nil {
			t.Fatal(err)
		}
	}
	runtime.ReadMemStats(&after)
	perOp := (after.TotalAlloc - before.TotalAlloc) / iters
	// O(chunk) bound: at most two 32 KiB chunks per op, half the O(blob)
	// cost a staging encoder would pay.
	if perOp > 64<<10 {
		t.Fatalf("MarshalTo allocates %d B/op for a %d B ciphertext; want O(chunk) (< 64 KiB)", perOp, blobSize)
	}
	t.Logf("MarshalTo: %d B/op for a %d B ciphertext", perOp, blobSize)
}
