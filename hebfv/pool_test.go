package hebfv

import (
	"bytes"
	"errors"
	"io"
	"runtime"
	"sync"
	"testing"
)

// Recycle-aware handle lifecycle and decode-pool tests: the zero-copy
// serving path's contract. Released handles must fail with
// ErrReleasedHandle (never panic, never compute on dead backings),
// pooled decodes must recycle bit-identically, and the steady-state
// decode->marshal->release loop must not re-allocate ciphertext
// backings once the pool is warm.

func TestReleaseErrors(t *testing.T) {
	ctx, err := New(WithInsecureToyParameters(), WithSeed(60))
	if err != nil {
		t.Fatal(err)
	}
	ct, err := ctx.EncryptSlots([]uint64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	other, err := ctx.EncryptSlots([]uint64{4, 5, 6})
	if err != nil {
		t.Fatal(err)
	}

	var nilCT *Ciphertext
	if err := nilCT.Release(); !errors.Is(err, ErrNilHandle) {
		t.Fatalf("nil Release: got %v, want ErrNilHandle", err)
	}

	if err := ct.Release(); err != nil {
		t.Fatalf("first Release: %v", err)
	}
	if err := ct.Release(); !errors.Is(err, ErrReleasedHandle) {
		t.Fatalf("double Release: got %v, want ErrReleasedHandle", err)
	}

	// Every error-bearing entry point reports ErrReleasedHandle, on
	// either operand side.
	if _, err := ctx.Add(ct, other); !errors.Is(err, ErrReleasedHandle) {
		t.Fatalf("Add(released, live): got %v", err)
	}
	if _, err := ctx.Add(other, ct); !errors.Is(err, ErrReleasedHandle) {
		t.Fatalf("Add(live, released): got %v", err)
	}
	if _, err := ctx.Mul(ct, other); !errors.Is(err, ErrReleasedHandle) {
		t.Fatalf("Mul(released, live): got %v", err)
	}
	if _, err := ctx.Square(ct); !errors.Is(err, ErrReleasedHandle) {
		t.Fatalf("Square(released): got %v", err)
	}
	if _, err := ctx.Decrypt(ct); !errors.Is(err, ErrReleasedHandle) {
		t.Fatalf("Decrypt(released): got %v", err)
	}
	if err := ct.MarshalTo(io.Discard); !errors.Is(err, ErrReleasedHandle) {
		t.Fatalf("MarshalTo(released): got %v", err)
	}
	if _, err := ct.MarshalBinary(); !errors.Is(err, ErrReleasedHandle) {
		t.Fatalf("MarshalBinary(released): got %v", err)
	}
	if _, err := ctx.RotateRows(ct, 1); !errors.Is(err, ErrReleasedHandle) {
		t.Fatalf("RotateRows(released): got %v", err)
	}

	// The no-error accessors degrade instead of panicking.
	if d := ct.Degree(); d != -1 {
		t.Fatalf("Degree on released handle: %d, want -1", d)
	}
	if ct.Equal(other) || other.Equal(ct) {
		t.Fatal("Equal involving a released handle must be false")
	}
}

func TestPooledDecodeRecycle(t *testing.T) {
	ctx, err := New(WithInsecureToyParameters(), WithSeed(61))
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{7, 8, 9, 10}
	ct, err := ctx.EncryptSlots(want)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := ct.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}

	// First pooled decode: a miss (cold pool), bit-identical round trip.
	h1, err := ctx.ReadCiphertext(bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	s := ctx.PoolStats()
	if s.Gets == 0 || s.Misses == 0 {
		t.Fatalf("cold decode did not draw from the pool: %+v", s)
	}
	re1, err := h1.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(re1, blob) {
		t.Fatal("pooled decode round trip is not bit-identical")
	}
	if err := h1.Release(); err != nil {
		t.Fatal(err)
	}
	if s = ctx.PoolStats(); s.InUse != 0 {
		t.Fatalf("pool leaks after release: %+v", s)
	}

	// Second decode of the same blob recycles the released backings and
	// still decrypts to the same slots.
	h2, err := ctx.ReadCiphertext(bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	if s = ctx.PoolStats(); s.Hits == 0 {
		t.Fatalf("warm decode did not hit the pool: %+v", s)
	}
	got, err := ctx.DecryptSlots(h2)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range want {
		if got[i] != v {
			t.Fatalf("slot %d: %d, want %d (recycled backing corrupted the decode)", i, got[i], v)
		}
	}
	re2, err := h2.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(re2, blob) {
		t.Fatal("recycled decode round trip is not bit-identical")
	}
	if err := h2.Release(); err != nil {
		t.Fatal(err)
	}
	if s = ctx.PoolStats(); s.InUse != 0 || s.Gets != s.Puts {
		t.Fatalf("pool unbalanced at end: %+v", s)
	}
}

// servePathBytesPerOp measures heap growth per serve-shaped op
// (decode two request ciphertexts, Add, stream the response, release
// all three) against the given context, after a warmup that fills the
// pool to steady state.
func servePathBytesPerOp(t *testing.T, ctx *Context, blobA, blobB []byte, iters int) float64 {
	t.Helper()
	op := func() {
		a, err := ctx.ReadCiphertext(bytes.NewReader(blobA))
		if err != nil {
			t.Fatal(err)
		}
		b, err := ctx.ReadCiphertext(bytes.NewReader(blobB))
		if err != nil {
			t.Fatal(err)
		}
		out, err := ctx.Add(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if err := out.MarshalTo(io.Discard); err != nil {
			t.Fatal(err)
		}
		for _, h := range []*Ciphertext{out, a, b} {
			if err := h.Release(); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i := 0; i < 4; i++ { // warm the pool and the chunk buffers
		op()
	}
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	for i := 0; i < iters; i++ {
		op()
	}
	runtime.ReadMemStats(&m1)
	return float64(m1.TotalAlloc-m0.TotalAlloc) / float64(iters)
}

// TestPooledDecodeBytesReduction is the test-level form of the PR's
// acceptance criterion: pooling the decode backings must cut
// bytes-allocated per serve op by at least 30% against an identical
// context with retention off (every Get misses, every Put drops). The
// evaluation output is freshly allocated in both arms — the delta is
// purely the request-decode traffic the pool recycles.
func TestPooledDecodeBytesReduction(t *testing.T) {
	pooled, err := New(WithSecurityLevel(27), WithSeed(62))
	if err != nil {
		t.Fatal(err)
	}
	unpooled, err := New(WithSecurityLevel(27), WithSeed(62), WithPoolRetention(0))
	if err != nil {
		t.Fatal(err)
	}
	a, err := pooled.EncryptSlots([]uint64{11, 22, 33})
	if err != nil {
		t.Fatal(err)
	}
	b, err := pooled.EncryptSlots([]uint64{44, 55, 66})
	if err != nil {
		t.Fatal(err)
	}
	blobA, err := a.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	blobB, err := b.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}

	const iters = 50
	on := servePathBytesPerOp(t, pooled, blobA, blobB, iters)
	off := servePathBytesPerOp(t, unpooled, blobA, blobB, iters)
	t.Logf("serve-path add: %.0f bytes/op pooled vs %.0f bytes/op retention-off (%.1f%% reduction)",
		on, off, (1-on/off)*100)
	if on > 0.7*off {
		t.Fatalf("pooled serve path allocates %.0f bytes/op vs %.0f unpooled; want >=30%% reduction", on, off)
	}
	if s := pooled.PoolStats(); s.InUse != 0 {
		t.Fatalf("pooled context leaks backings: %+v", s)
	}
}

// TestServeAllocsSteadyState pins the serialization half of the serve
// path — decode request, stream response, release — to near-zero heap
// growth per op once the pool is warm: no coefficient backing may be
// re-allocated, leaving only small fixed-size header/handle structs.
func TestServeAllocsSteadyState(t *testing.T) {
	ctx, err := New(WithSecurityLevel(27), WithSeed(63))
	if err != nil {
		t.Fatal(err)
	}
	ct, err := ctx.EncryptSlots([]uint64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := ct.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	backingBytes := ctx.params.N * ctx.params.Q.W * 4 // one poly backing

	op := func() {
		h, err := ctx.ReadCiphertext(bytes.NewReader(blob))
		if err != nil {
			t.Fatal(err)
		}
		if err := h.MarshalTo(io.Discard); err != nil {
			t.Fatal(err)
		}
		if err := h.Release(); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		op()
	}

	allocs := testing.AllocsPerRun(100, op)
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	const iters = 100
	for i := 0; i < iters; i++ {
		op()
	}
	runtime.ReadMemStats(&m1)
	bytesPerOp := float64(m1.TotalAlloc-m0.TotalAlloc) / float64(iters)

	t.Logf("steady-state decode->marshal->release: %.1f allocs/op, %.0f bytes/op (backing is %d bytes)",
		allocs, bytesPerOp, backingBytes)
	// A single leaked backing re-allocation would add backingBytes per
	// op; the fixed header/handle structs stay well under half of one.
	if bytesPerOp >= float64(backingBytes)/2 {
		t.Fatalf("steady-state serve path allocates %.0f bytes/op; backings (%d bytes) are not being recycled",
			bytesPerOp, backingBytes)
	}
	if allocs > 64 {
		t.Fatalf("steady-state serve path makes %.1f allocs/op; want a small fixed count", allocs)
	}
	if s := ctx.PoolStats(); s.InUse != 0 {
		t.Fatalf("pool leaks after steady-state loop: %+v", s)
	}
}

// TestPoolStressConcurrent hammers two tenant contexts from concurrent
// goroutines — decode, evaluate, marshal, release — and asserts the
// leak balance afterwards. Run under -race this is the pool's
// thread-safety proof across the whole facade lifecycle.
func TestPoolStressConcurrent(t *testing.T) {
	tenants := make([]*Context, 2)
	blobs := make([][][]byte, 2)
	for i := range tenants {
		ctx, err := New(WithInsecureToyParameters(), WithSeed(uint64(70+i)))
		if err != nil {
			t.Fatal(err)
		}
		tenants[i] = ctx
		for j := 0; j < 2; j++ {
			ct, err := ctx.EncryptSlots([]uint64{uint64(i + 1), uint64(j + 2)})
			if err != nil {
				t.Fatal(err)
			}
			blob, err := ct.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			blobs[i] = append(blobs[i], blob)
		}
	}

	const workers = 8
	const iters = 100
	var wg sync.WaitGroup
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ctx := tenants[w%len(tenants)]
			pair := blobs[w%len(tenants)]
			for i := 0; i < iters; i++ {
				a, err := ctx.ReadCiphertext(bytes.NewReader(pair[0]))
				if err != nil {
					errc <- err
					return
				}
				b, err := ctx.ReadCiphertext(bytes.NewReader(pair[1]))
				if err != nil {
					errc <- err
					return
				}
				out, err := ctx.Add(a, b)
				if err != nil {
					errc <- err
					return
				}
				if err := out.MarshalTo(io.Discard); err != nil {
					errc <- err
					return
				}
				for _, h := range []*Ciphertext{out, a, b} {
					if err := h.Release(); err != nil {
						errc <- err
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	for i, ctx := range tenants {
		if s := ctx.PoolStats(); s.InUse != 0 || s.Gets != s.Puts+s.InUse {
			t.Fatalf("tenant %d pool unbalanced after stress: %+v", i, s)
		}
	}
}
