package hebfv

import (
	"bytes"
	"errors"
	"sync"
	"testing"
)

// Fuzz targets for the hardened deserializers. The invariant under
// test is the API's error contract: arbitrary bytes must produce a
// typed error or a valid object — never a panic, never an object that
// later blows up. Valid blobs exercise the accept path so the fuzzer
// keeps coverage on both sides of every guard.

var fuzzCtxOnce = sync.OnceValues(func() (*Context, error) {
	return New(WithInsecureToyParameters(), WithSeed(0xfadedbee), WithRotations(1))
})

func fuzzContext(t testing.TB) *Context {
	ctx, err := fuzzCtxOnce()
	if err != nil {
		t.Fatal(err)
	}
	return ctx
}

// validCiphertextBlob marshals a fresh toy encryption.
func validCiphertextBlob(t testing.TB) []byte {
	ctx := fuzzContext(t)
	ct, err := ctx.EncryptSlots([]uint64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := ct.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

func FuzzUnmarshalCiphertext(f *testing.F) {
	blob := validCiphertextBlob(f)
	f.Add(blob)
	f.Add(blob[:len(blob)/2])       // truncated mid-payload
	f.Add(blob[:4])                 // header cut after magic
	f.Add(append(blob, 0, 0, 0, 0)) // trailing garbage
	flip := bytes.Clone(blob)
	flip[len(flip)-3] ^= 0xff // non-canonical top limb
	f.Add(flip)
	f.Add([]byte{})
	f.Add([]byte("HEBF"))

	f.Fuzz(func(t *testing.T, data []byte) {
		ctx := fuzzContext(t)
		ct, err := ctx.UnmarshalCiphertext(data)
		if err != nil {
			if !errors.Is(err, ErrCorruptBlob) {
				t.Fatalf("unmarshal error is not ErrCorruptBlob-typed: %v", err)
			}
			return
		}
		// Accepted blobs must be safe to operate on and re-serialize.
		if _, err := ctx.Add(ct, ct); err != nil {
			t.Fatalf("accepted ciphertext unusable: %v", err)
		}
		if _, err := ct.MarshalBinary(); err != nil {
			t.Fatalf("accepted ciphertext does not re-serialize: %v", err)
		}
	})
}

func FuzzImportKeySet(f *testing.F) {
	ctx := fuzzContext(f)
	full, err := ctx.ExportKeys(true)
	if err != nil {
		f.Fatal(err)
	}
	public, err := ctx.ExportKeys(false)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(full)
	f.Add(public)
	f.Add(full[:len(full)/3]) // truncated inside the key material
	tamper := bytes.Clone(public)
	tamper[5] ^= 0x40 // corrupt the header kind
	f.Add(tamper)
	f.Add([]byte{})
	f.Add([]byte("HEBF\x01\x02"))

	f.Fuzz(func(t *testing.T, data []byte) {
		restored, err := New(WithInsecureToyParameters(), WithKeySet(data))
		if err != nil {
			return // typed rejection is the expected outcome for noise
		}
		// A context restored from an accepted key set must evaluate.
		ct, err := restored.EncryptSlots([]uint64{7, 8})
		if err != nil {
			t.Fatalf("restored context cannot encrypt: %v", err)
		}
		if _, err := restored.Add(ct, ct); err != nil {
			t.Fatalf("restored context cannot evaluate: %v", err)
		}
		// Evaluation-only restores must refuse decryption with the
		// typed sentinel, not panic.
		if !restored.CanDecrypt() {
			if _, err := restored.DecryptSlots(ct); !errors.Is(err, ErrNoSecretKey) {
				t.Fatalf("DecryptSlots on evaluation-only context: got %v, want ErrNoSecretKey", err)
			}
		}
	})
}
