package hebfv_test

import (
	"fmt"
	"log"

	"repro/hebfv"
)

// The complete flow — context, encryption, homomorphic arithmetic,
// decryption — through the facade alone.
func ExampleNew() {
	ctx, err := hebfv.New(
		hebfv.WithInsecureToyParameters(), // demo speed; use WithSecurityLevel(109) for real parameters
		hebfv.WithSeed(1),                 // deterministic for the example
	)
	if err != nil {
		log.Fatal(err)
	}
	a, _ := ctx.EncryptValue(3)
	b, _ := ctx.EncryptValue(5)
	sum, _ := ctx.Add(a, b)
	prod, _ := ctx.Mul(a, b)
	s, _ := ctx.DecryptValue(sum)
	p, _ := ctx.DecryptValue(prod)
	fmt.Println("3 + 5 =", s)
	fmt.Println("3 * 5 =", p)
	// Output:
	// 3 + 5 = 8
	// 3 * 5 = 15
}

// Slot-level rotation: slots form a 2 × (N/2) matrix; RotateRows shifts
// each row, and the facade derives the Galois keys on demand.
func ExampleContext_RotateRows() {
	ctx, err := hebfv.New(hebfv.WithInsecureToyParameters(), hebfv.WithSeed(2))
	if err != nil {
		log.Fatal(err)
	}
	ct, _ := ctx.EncryptSlots([]uint64{10, 20, 30, 40})
	rot, err := ctx.RotateRows(ct, 1) // each row left by one
	if err != nil {
		log.Fatal(err)
	}
	slots, _ := ctx.DecryptSlots(rot)
	fmt.Println(slots[:4])
	// Output:
	// [20 30 40 0]
}

// InnerSum replicates the total of every slot into all slots — the
// rotate-and-add ladder under one call.
func ExampleContext_InnerSum() {
	ctx, err := hebfv.New(hebfv.WithInsecureToyParameters(), hebfv.WithSeed(3))
	if err != nil {
		log.Fatal(err)
	}
	ct, _ := ctx.EncryptSlots([]uint64{1, 2, 3, 4, 5})
	total, err := ctx.InnerSum(ct)
	if err != nil {
		log.Fatal(err)
	}
	slots, _ := ctx.DecryptSlots(total)
	fmt.Println(slots[0], slots[17])
	// Output:
	// 15 15
}

// Key material moves between contexts as one versioned blob: exporting
// without the secret key yields an evaluation-only context — the server
// half of the deployment model.
func ExampleContext_ExportKeys() {
	client, err := hebfv.New(
		hebfv.WithInsecureToyParameters(),
		hebfv.WithSeed(4),
		hebfv.WithRotations(1), // the server may rotate by one step
	)
	if err != nil {
		log.Fatal(err)
	}
	publicKeys, _ := client.ExportKeys(false)

	server, err := hebfv.New(
		hebfv.WithInsecureToyParameters(),
		hebfv.WithKeySet(publicKeys),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("server can decrypt:", server.CanDecrypt())

	// Client encrypts, server evaluates, client decrypts.
	ct, _ := client.EncryptSlots([]uint64{7, 8, 9})
	blob, _ := ct.MarshalBinary()
	onServer, _ := server.UnmarshalCiphertext(blob)
	rotated, err := server.RotateRows(onServer, 1)
	if err != nil {
		log.Fatal(err)
	}
	back, _ := rotated.MarshalBinary()
	result, _ := client.UnmarshalCiphertext(back)
	slots, _ := client.DecryptSlots(result)
	fmt.Println(slots[:3])
	// Output:
	// server can decrypt: false
	// [8 9 0]
}

// Backends are selected by name through the registry; the "pim" backend
// evaluates on the simulated UPMEM system and reports modeled kernel
// time.
func ExampleWithBackend() {
	fmt.Println(hebfv.Backends())
	ctx, err := hebfv.New(
		hebfv.WithInsecureToyParameters(),
		hebfv.WithSeed(5),
		hebfv.WithBackend("pim"),
		hebfv.WithPIMDPUs(8),
	)
	if err != nil {
		log.Fatal(err)
	}
	a, _ := ctx.EncryptValue(20)
	b, _ := ctx.EncryptValue(22)
	sum, err := ctx.Add(a, b)
	if err != nil {
		log.Fatal(err)
	}
	v, _ := ctx.DecryptValue(sum)
	launches, _, _ := ctx.PIMReport()
	fmt.Println("20 + 22 =", v, "in", launches, "kernel launch(es)")
	// Output:
	// [auto dcrt-legacy dcrt-native pim schoolbook]
	// 20 + 22 = 42 in 1 kernel launch(es)
}
