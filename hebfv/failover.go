package hebfv

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/bfv"
	"repro/internal/pim"
	"repro/internal/pimsched"
)

// Backend failover: graceful degradation for modeled-hardware backends.
// A Context on the "pim" backend wraps its engine in a failoverEngine
// whose fallback is the dcrt-native host engine. When the primary fails
// with a *fault-class* error — a DPU fault past the retry budget, no
// live DPUs left, or a panic converted by the guard — the wrapper
// constructs the fallback, replays the failed operation on it, and
// routes every subsequent operation there. Results are bit-identical by
// the backend contract, so callers observe nothing but the stats.
//
// Semantic errors (unsupported operation, shape mismatch, foreign
// handles) never trigger failover: they would fail identically — or
// mask a real bug — on the fallback.

// FailoverStats describes a context's backend-failover state (see
// Context.FailoverStats).
type FailoverStats struct {
	Engaged   bool   // the fallback engine has taken over
	Primary   string // backend name of the original engine
	Fallback  string // backend name of the fallback engine
	FailedOps int    // operations that hit a fault-class error on the primary
	Trigger   string // error message that first engaged the fallback
}

// failoverEngine wraps a primary Engine with a lazily constructed
// fallback. It implements the optional Engine upgrades by delegating to
// whichever engine is current, so deferred fast paths light up after
// failing over to a host backend.
type failoverEngine struct {
	primary     Engine
	makeFB      func() (Engine, error)
	primaryName string
	fbName      string

	mu      sync.Mutex
	fb      Engine // non-nil once engaged
	trigger error
	failed  int
}

func newFailoverEngine(primary Engine, primaryName, fbName string, makeFB func() (Engine, error)) *failoverEngine {
	return &failoverEngine{primary: primary, makeFB: makeFB, primaryName: primaryName, fbName: fbName}
}

// current returns the engine operations run on right now.
func (e *failoverEngine) current() Engine {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.fb != nil {
		return e.fb
	}
	return e.primary
}

// engage switches to the fallback (constructing it on first use) and
// records the trigger. Safe to call concurrently.
func (e *failoverEngine) engage(cause error) (Engine, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.failed++
	if e.fb == nil {
		fb, err := e.makeFB()
		if err != nil {
			return nil, err
		}
		e.fb = fb
		e.trigger = cause
	}
	return e.fb, nil
}

func (e *failoverEngine) stats() FailoverStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	st := FailoverStats{
		Engaged:   e.fb != nil,
		Primary:   e.primaryName,
		Fallback:  e.fbName,
		FailedOps: e.failed,
	}
	if e.trigger != nil {
		st.Trigger = e.trigger.Error()
	}
	return st
}

// faultClass reports whether err warrants failing over: hardware-model
// faults and converted panics do, semantic errors do not.
func faultClass(err error) bool {
	return pim.IsFault(err) || errors.Is(err, ErrBackendFailed)
}

// fo runs op on the current engine, converting panics to errors. A
// fault-class failure on the primary engages the fallback and replays
// the operation there once.
func fo[T any](e *failoverEngine, op func(Engine) (T, error)) (T, error) {
	eng := e.current()
	out, err := safeOp(eng, op)
	if err == nil || !faultClass(err) || eng != e.primary {
		return out, err
	}
	fb, ferr := e.engage(err)
	if ferr != nil {
		var zero T
		return zero, fmt.Errorf("%w (and constructing the %q fallback failed: %v)", err, e.fbName, ferr)
	}
	return safeOp(fb, op)
}

// safeOp runs op with the engine, converting a panic into a typed
// fault-class error so it both propagates cleanly and triggers
// failover.
func safeOp[T any](eng Engine, op func(Engine) (T, error)) (out T, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = panicError(r)
		}
	}()
	return op(eng)
}

func (e *failoverEngine) Add(a, b *bfv.Ciphertext) (*bfv.Ciphertext, error) {
	return fo(e, func(g Engine) (*bfv.Ciphertext, error) { return g.Add(a, b) })
}

func (e *failoverEngine) Sub(a, b *bfv.Ciphertext) (*bfv.Ciphertext, error) {
	return fo(e, func(g Engine) (*bfv.Ciphertext, error) { return g.Sub(a, b) })
}

func (e *failoverEngine) Neg(a *bfv.Ciphertext) (*bfv.Ciphertext, error) {
	return fo(e, func(g Engine) (*bfv.Ciphertext, error) { return g.Neg(a) })
}

func (e *failoverEngine) AddPlain(a *bfv.Ciphertext, pt *bfv.Plaintext) (*bfv.Ciphertext, error) {
	return fo(e, func(g Engine) (*bfv.Ciphertext, error) { return g.AddPlain(a, pt) })
}

func (e *failoverEngine) MulPlain(a *bfv.Ciphertext, pt *bfv.Plaintext) (*bfv.Ciphertext, error) {
	return fo(e, func(g Engine) (*bfv.Ciphertext, error) { return g.MulPlain(a, pt) })
}

func (e *failoverEngine) Mul(a, b *bfv.Ciphertext) (*bfv.Ciphertext, error) {
	return fo(e, func(g Engine) (*bfv.Ciphertext, error) { return g.Mul(a, b) })
}

func (e *failoverEngine) Square(a *bfv.Ciphertext) (*bfv.Ciphertext, error) {
	return fo(e, func(g Engine) (*bfv.Ciphertext, error) { return g.Square(a) })
}

func (e *failoverEngine) Sum(cts []*bfv.Ciphertext) (*bfv.Ciphertext, error) {
	return fo(e, func(g Engine) (*bfv.Ciphertext, error) { return g.Sum(cts) })
}

func (e *failoverEngine) ApplyGalois(a *bfv.Ciphertext, gk *bfv.GaloisKey) (*bfv.Ciphertext, error) {
	return fo(e, func(g Engine) (*bfv.Ciphertext, error) { return g.ApplyGalois(a, gk) })
}

func (e *failoverEngine) RotateMany(a *bfv.Ciphertext, gks []*bfv.GaloisKey) ([]*bfv.Ciphertext, error) {
	return fo(e, func(g Engine) ([]*bfv.Ciphertext, error) { return g.RotateMany(a, gks) })
}

func (e *failoverEngine) RotateAndSum(cts []*bfv.Ciphertext, gks []*bfv.GaloisKey) ([]*bfv.Ciphertext, error) {
	return fo(e, func(g Engine) ([]*bfv.Ciphertext, error) { return g.RotateAndSum(cts, gks) })
}

func (e *failoverEngine) MulMany(as, bs []*bfv.Ciphertext) ([]*bfv.Ciphertext, error) {
	return fo(e, func(g Engine) ([]*bfv.Ciphertext, error) { return g.MulMany(as, bs) })
}

func (e *failoverEngine) AddMany(as, bs []*bfv.Ciphertext) ([]*bfv.Ciphertext, error) {
	return fo(e, func(g Engine) ([]*bfv.Ciphertext, error) { return g.AddMany(as, bs) })
}

// Optional upgrades delegate to the current engine, so a fallback host
// engine's deferred fast paths are reachable after failover. The
// deferred methods are only called after the matching Can* probe — the
// not-implemented branches are unreachable through the facade.

func (e *failoverEngine) CanDefer() bool {
	dr, ok := e.current().(DeferredRotator)
	return ok && dr.CanDefer()
}

func (e *failoverEngine) RotateManyNTT(a *bfv.Ciphertext, gks []*bfv.GaloisKey) ([]*bfv.RotatedNTT, error) {
	dr, ok := e.current().(DeferredRotator)
	if !ok {
		return nil, errors.New("hebfv: current engine cannot defer rotations")
	}
	return dr.RotateManyNTT(a, gks)
}

func (e *failoverEngine) CanDeferMul() bool {
	dm, ok := e.current().(DeferredMultiplier)
	return ok && dm.CanDeferMul()
}

func (e *failoverEngine) MulNTT(a, b bfv.MulOperand) (*bfv.ProductNTT, error) {
	dm, ok := e.current().(DeferredMultiplier)
	if !ok {
		return nil, errors.New("hebfv: current engine cannot defer multiplications")
	}
	return dm.MulNTT(a, b)
}

func (e *failoverEngine) MulManyNTT(as, bs []bfv.MulOperand) ([]*bfv.ProductNTT, error) {
	dm, ok := e.current().(DeferredMultiplier)
	if !ok {
		return nil, errors.New("hebfv: current engine cannot defer multiplications")
	}
	return dm.MulManyNTT(as, bs)
}

// KernelReporter delegates to the primary: modeled-hardware accounting
// belongs to the modeled hardware even after its retirement.

func (e *failoverEngine) KernelLaunches() int {
	if kr, ok := e.primary.(KernelReporter); ok {
		return kr.KernelLaunches()
	}
	return 0
}

func (e *failoverEngine) ModeledSeconds() float64 {
	if kr, ok := e.primary.(KernelReporter); ok {
		return kr.ModeledSeconds()
	}
	return 0
}

func (e *failoverEngine) FaultStats() pim.FaultStats {
	if fr, ok := e.primary.(faultReporter); ok {
		return fr.FaultStats()
	}
	return pim.FaultStats{}
}

func (e *failoverEngine) Breakdown() *pimsched.Report {
	if br, ok := e.primary.(breakdownReporter); ok {
		return br.Breakdown()
	}
	return nil
}
