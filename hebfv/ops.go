package hebfv

import (
	"errors"
	"fmt"

	"repro/internal/bfv"
)

// Encoding and encryption.

// EncodeValue places one value (mod t) in the constant coefficient —
// the integer encoding of the paper's statistical workloads. Available
// with every plaintext modulus.
func (c *Context) EncodeValue(v uint64) *Plaintext {
	pt := newPlain(c)
	pt.pt.Coeffs[0] = v % c.params.T
	return pt
}

// EncodeSlots packs up to Slots() values (each mod t) into the
// plaintext slots; homomorphic operations then act slot-wise (SIMD).
// Slots form a 2 × RowSlots matrix: index i < RowSlots is row 0 column
// i, the rest row 1 — the layout RotateRows and RotateColumns act on.
func (c *Context) EncodeSlots(values []uint64) (_ *Plaintext, err error) {
	defer guard(&err)
	enc, err := c.requireBatching()
	if err != nil {
		return nil, err
	}
	n := c.params.N
	if len(values) > n {
		return nil, fmt.Errorf("hebfv: %d values exceed the %d slots", len(values), n)
	}
	raw := make([]uint64, n)
	for i, v := range values {
		raw[c.perm[i]] = v % c.params.T
	}
	pt, err := enc.Encode(raw)
	if err != nil {
		return nil, err
	}
	return &Plaintext{ctx: c, pt: pt}, nil
}

// DecodeSlots recovers the slot values of a plaintext.
func (c *Context) DecodeSlots(pt *Plaintext) (_ []uint64, err error) {
	defer guard(&err)
	enc, err := c.requireBatching()
	if err != nil {
		return nil, err
	}
	raw, err := c.ownPlain(pt)
	if err != nil {
		return nil, err
	}
	flat := enc.Decode(raw)
	out := make([]uint64, len(flat))
	for i := range out {
		out[i] = flat[c.perm[i]]
	}
	return out, nil
}

func newPlain(c *Context) *Plaintext {
	return &Plaintext{ctx: c, pt: newBFVPlaintext(c)}
}

// Encrypt encrypts an encoded plaintext under the context's public key.
// Encryptions are serialized on the context's randomness source.
func (c *Context) Encrypt(pt *Plaintext) (_ *Ciphertext, err error) {
	defer guard(&err)
	raw, err := c.ownPlain(pt)
	if err != nil {
		return nil, err
	}
	c.srcMu.Lock()
	ct, err := c.enc.Encrypt(raw)
	c.srcMu.Unlock()
	if err != nil {
		return nil, err
	}
	return c.wrap(ct), nil
}

// EncryptValue is Encrypt ∘ EncodeValue.
func (c *Context) EncryptValue(v uint64) (*Ciphertext, error) {
	return c.Encrypt(c.EncodeValue(v))
}

// EncryptSlots is Encrypt ∘ EncodeSlots.
func (c *Context) EncryptSlots(values []uint64) (*Ciphertext, error) {
	pt, err := c.EncodeSlots(values)
	if err != nil {
		return nil, err
	}
	return c.Encrypt(pt)
}

// Decryption — requires the secret key (CanDecrypt).

// Decrypt recovers the encoded plaintext.
func (c *Context) Decrypt(ct *Ciphertext) (_ *Plaintext, err error) {
	defer guard(&err)
	raw, err := c.own(ct)
	if err != nil {
		return nil, err
	}
	if c.dec == nil {
		return nil, ErrNoSecretKey
	}
	return &Plaintext{ctx: c, pt: c.dec.Decrypt(raw)}, nil
}

// DecryptValue recovers the constant coefficient (EncryptValue's
// inverse).
func (c *Context) DecryptValue(ct *Ciphertext) (uint64, error) {
	pt, err := c.Decrypt(ct)
	if err != nil {
		return 0, err
	}
	return pt.pt.Coeffs[0], nil
}

// DecryptSlots recovers the slot values (EncryptSlots' inverse).
func (c *Context) DecryptSlots(ct *Ciphertext) ([]uint64, error) {
	pt, err := c.Decrypt(ct)
	if err != nil {
		return nil, err
	}
	return c.DecodeSlots(pt)
}

// NoiseBudget returns the remaining noise budget of ct in bits; zero or
// negative means decryption is no longer guaranteed.
func (c *Context) NoiseBudget(ct *Ciphertext) (_ int, err error) {
	defer guard(&err)
	raw, err := c.own(ct)
	if err != nil {
		return 0, err
	}
	if c.dec == nil {
		return 0, ErrNoSecretKey
	}
	return c.dec.NoiseBudget(raw), nil
}

// Homomorphic arithmetic — slot-wise (SIMD) under batching encodings.

// Add returns a + b. Sums of deferred rotation outputs fuse in the NTT
// domain, and sums of deferred product outputs in the RNS domain, when
// exactness bounds allow (see Ciphertext).
func (c *Context) Add(a, b *Ciphertext) (_ *Ciphertext, err error) {
	defer guard(&err)
	if a != nil && b != nil && a.ctx == c && b.ctx == c {
		if ra, rb := a.deferred(), b.deferred(); ra != nil && rb != nil {
			if sum, ok := ra.Add(rb); ok {
				return c.wrapDeferred(sum), nil
			}
		}
		if pa, pb := a.deferredProd(), b.deferredProd(); pa != nil && pb != nil {
			if sum, ok := pa.Add(pb); ok {
				return c.wrapDeferredProd(sum), nil
			}
		}
	}
	ra, err := c.own(a)
	if err != nil {
		return nil, err
	}
	rb, err := c.own(b)
	if err != nil {
		return nil, err
	}
	out, err := c.eng.Add(ra, rb)
	if err != nil {
		return nil, err
	}
	return c.wrap(out), nil
}

// Sub returns a − b.
func (c *Context) Sub(a, b *Ciphertext) (_ *Ciphertext, err error) {
	defer guard(&err)
	return c.binOp(a, b, c.eng.Sub)
}

// Mul returns the relinearized product a·b. On backends with deferred
// multiplication the result stays NTT-resident — it chains into further
// Mul calls and fuses under Sum/Add without intermediate base
// conversions — and materializes transparently (bit-identically) when a
// consumer needs coefficients.
func (c *Context) Mul(a, b *Ciphertext) (_ *Ciphertext, err error) {
	defer guard(&err)
	if dm, ok := c.eng.(DeferredMultiplier); ok && dm.CanDeferMul() &&
		a != nil && b != nil && a.ctx == c && b.ctx == c {
		oa, ob := a.operand(), b.operand()
		if oa != nil && ob != nil { // released handles fall through to binOp's typed error
			prod, err := dm.MulNTT(oa, ob)
			if err != nil {
				return nil, err
			}
			return c.wrapDeferredProd(prod), nil
		}
	}
	return c.binOp(a, b, c.eng.Mul)
}

// Square returns the relinearized square of a (deferred like Mul where
// the backend supports it).
func (c *Context) Square(a *Ciphertext) (_ *Ciphertext, err error) {
	defer guard(&err)
	if dm, ok := c.eng.(DeferredMultiplier); ok && dm.CanDeferMul() &&
		a != nil && a.ctx == c {
		if op := a.operand(); op != nil { // released handles fall through to unOp's typed error
			prod, err := dm.MulNTT(op, op)
			if err != nil {
				return nil, err
			}
			return c.wrapDeferredProd(prod), nil
		}
	}
	return c.unOp(a, c.eng.Square)
}

// Neg returns −a.
func (c *Context) Neg(a *Ciphertext) (_ *Ciphertext, err error) {
	defer guard(&err)
	return c.unOp(a, c.eng.Neg)
}

// AddPlain returns a + pt.
func (c *Context) AddPlain(a *Ciphertext, pt *Plaintext) (_ *Ciphertext, err error) {
	defer guard(&err)
	ra, err := c.own(a)
	if err != nil {
		return nil, err
	}
	rp, err := c.ownPlain(pt)
	if err != nil {
		return nil, err
	}
	out, err := c.eng.AddPlain(ra, rp)
	if err != nil {
		return nil, err
	}
	return c.wrap(out), nil
}

// MulPlain returns a·pt (slot-wise under batching encodings).
func (c *Context) MulPlain(a *Ciphertext, pt *Plaintext) (_ *Ciphertext, err error) {
	defer guard(&err)
	ra, err := c.own(a)
	if err != nil {
		return nil, err
	}
	rp, err := c.ownPlain(pt)
	if err != nil {
		return nil, err
	}
	out, err := c.eng.MulPlain(ra, rp)
	if err != nil {
		return nil, err
	}
	return c.wrap(out), nil
}

// Sum folds the ciphertexts into their total in slice order — the
// aggregation kernel of the paper's mean/variance workloads. When every
// input is a deferred product (a MulMany-then-Sum dot product), the fold
// fuses in the RNS domain and the whole reduction pays one base-
// conversion pair; the result is bit-identical to the materialized fold.
func (c *Context) Sum(cts []*Ciphertext) (_ *Ciphertext, err error) {
	defer guard(&err)
	if len(cts) == 0 {
		return nil, errors.New("hebfv: empty sum")
	}
	if sum, ok := c.sumDeferred(cts); ok {
		return sum, nil
	}
	raw, err := c.ownAll(cts)
	if err != nil {
		return nil, err
	}
	out, err := c.eng.Sum(raw)
	if err != nil {
		return nil, err
	}
	return c.wrap(out), nil
}

// sumDeferred folds all-deferred-product inputs in the RNS domain
// ((…(c0+c1)+c2)+…, the engine Sum order). It reports false — releasing
// any intermediate handles it made — when an input is not a live
// deferred product or a fusion falls back (bound overflow), leaving the
// caller to take the materialized path.
func (c *Context) sumDeferred(cts []*Ciphertext) (*Ciphertext, bool) {
	if len(cts) < 2 {
		return nil, false
	}
	prods := make([]*bfv.ProductNTT, len(cts))
	for i, ct := range cts {
		if ct == nil || ct.ctx != c {
			return nil, false
		}
		if prods[i] = ct.deferredProd(); prods[i] == nil {
			return nil, false
		}
	}
	acc := prods[0]
	accOwned := false
	for _, p := range prods[1:] {
		sum, ok := acc.Add(p)
		if !ok {
			if accOwned {
				acc.Release()
			}
			return nil, false
		}
		if accOwned {
			acc.Release()
		}
		acc, accOwned = sum, true
	}
	return c.wrapDeferredProd(acc), true
}

// AddMany returns the element-wise sums as[i] + bs[i], scheduled on the
// backend's batch pipeline.
func (c *Context) AddMany(as, bs []*Ciphertext) (_ []*Ciphertext, err error) {
	defer guard(&err)
	return c.batchBinOp(as, bs, c.eng.AddMany)
}

// MulMany returns the element-wise relinearized products as[i]·bs[i],
// scheduled on the backend's batch pipeline. On backends with deferred
// multiplication the products stay NTT-resident (see Mul) — a following
// Sum fuses the whole reduction in the RNS domain.
func (c *Context) MulMany(as, bs []*Ciphertext) (_ []*Ciphertext, err error) {
	defer guard(&err)
	dm, ok := c.eng.(DeferredMultiplier)
	if !ok || !dm.CanDeferMul() || len(as) != len(bs) {
		return c.batchBinOp(as, bs, c.eng.MulMany)
	}
	aOps := make([]bfv.MulOperand, len(as))
	bOps := make([]bfv.MulOperand, len(bs))
	for i := range as {
		if as[i] == nil || bs[i] == nil || as[i].ctx != c || bs[i].ctx != c {
			return c.batchBinOp(as, bs, c.eng.MulMany)
		}
		aOps[i] = as[i].operand()
		bOps[i] = bs[i].operand()
		if aOps[i] == nil || bOps[i] == nil { // released: take the typed-error path
			return c.batchBinOp(as, bs, c.eng.MulMany)
		}
	}
	prods, err := dm.MulManyNTT(aOps, bOps)
	if err != nil {
		return nil, err
	}
	out := make([]*Ciphertext, len(prods))
	for i, p := range prods {
		out[i] = c.wrapDeferredProd(p)
	}
	return out, nil
}

// Helpers.

type bfvBinOp = func(a, b *rawCiphertext) (*rawCiphertext, error)

func (c *Context) binOp(a, b *Ciphertext, op bfvBinOp) (*Ciphertext, error) {
	ra, err := c.own(a)
	if err != nil {
		return nil, err
	}
	rb, err := c.own(b)
	if err != nil {
		return nil, err
	}
	out, err := op(ra, rb)
	if err != nil {
		return nil, err
	}
	return c.wrap(out), nil
}

func (c *Context) unOp(a *Ciphertext, op func(*rawCiphertext) (*rawCiphertext, error)) (*Ciphertext, error) {
	ra, err := c.own(a)
	if err != nil {
		return nil, err
	}
	out, err := op(ra)
	if err != nil {
		return nil, err
	}
	return c.wrap(out), nil
}

func (c *Context) batchBinOp(as, bs []*Ciphertext, op func(as, bs []*rawCiphertext) ([]*rawCiphertext, error)) ([]*Ciphertext, error) {
	ra, err := c.ownAll(as)
	if err != nil {
		return nil, err
	}
	rb, err := c.ownAll(bs)
	if err != nil {
		return nil, err
	}
	out, err := op(ra, rb)
	if err != nil {
		return nil, err
	}
	wrapped := make([]*Ciphertext, len(out))
	for i, ct := range out {
		wrapped[i] = c.wrap(ct)
	}
	return wrapped, nil
}
