package hebfv

import (
	"bytes"
	"math/rand"
	"testing"
)

// TestSlotPermIsPermutation checks the logical→NTT slot mapping is a
// bijection at every supported ring degree.
func TestSlotPermIsPermutation(t *testing.T) {
	for _, n := range []int{8, 64, 1024, 2048, 4096} {
		perm := slotPerm(n)
		seen := make([]bool, n)
		for ell, j := range perm {
			if j < 0 || j >= n {
				t.Fatalf("n=%d: slot %d maps outside the ring (%d)", n, ell, j)
			}
			if seen[j] {
				t.Fatalf("n=%d: NTT slot %d hit twice", n, j)
			}
			seen[j] = true
		}
	}
}

// runSlotRotationProperty is the satellite property test: RotateRows(k)
// through the facade must be bit-identical on the schoolbook and
// dcrt-native backends for random k — the slot→Galois mapping and the
// key-switching convention agree across backends or nothing matches.
// Keys are shared through an exported key set so both contexts evaluate
// under identical key material.
func runSlotRotationProperty(t *testing.T, level int, seed int64, steps int, edges ...int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))

	ref, err := New(WithSecurityLevel(level), WithSeed(uint64(seed)))
	if err != nil {
		t.Fatal(err)
	}
	row := ref.RowSlots()
	ks := make([]int, steps)
	for i := range ks {
		ks[i] = rng.Intn(2*row) - row // random steps, both signs, with wrap
	}
	// Edge steps ride along (note -1 and row-1 share one Galois element).
	ks = append(ks, edges...)

	refK, err := New(WithSecurityLevel(level), WithSeed(uint64(seed)), WithRotations(ks...))
	if err != nil {
		t.Fatal(err)
	}
	keys, err := refK.ExportKeys(true)
	if err != nil {
		t.Fatal(err)
	}

	native, err := New(WithSecurityLevel(level), WithKeySet(keys), WithSeed(uint64(seed)+1), WithBackend("dcrt-native"))
	if err != nil {
		t.Fatal(err)
	}
	school, err := New(WithSecurityLevel(level), WithKeySet(keys), WithSeed(uint64(seed)+2), WithBackend("schoolbook"))
	if err != nil {
		t.Fatal(err)
	}

	vals := make([]uint64, native.Slots())
	for i := range vals {
		vals[i] = rng.Uint64() % native.PlaintextModulus()
	}
	ct, err := native.EncryptSlots(vals)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := ct.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	ctS, err := school.UnmarshalCiphertext(blob)
	if err != nil {
		t.Fatal(err)
	}

	for _, k := range ks {
		rotN, err := native.RotateRows(ct, k)
		if err != nil {
			t.Fatal(err)
		}
		rotS, err := school.RotateRows(ctS, k)
		if err != nil {
			t.Fatal(err)
		}
		bn, err := rotN.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		bs, err := rotS.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(bn, bs) {
			t.Fatalf("level %d, k=%d: facade rotation differs between schoolbook and dcrt-native", level, k)
		}
		// The native side must also decode to the rotated slot model.
		got, err := native.DecryptSlots(rotN)
		if err != nil {
			t.Fatal(err)
		}
		for r := 0; r < 2; r++ {
			for col := 0; col < row; col++ {
				want := vals[r*row+((col+k%row+row)%row)]
				if got[r*row+col] != want {
					t.Fatalf("level %d, k=%d: slot (%d,%d) = %d, want %d", level, k, r, col, got[r*row+col], want)
				}
			}
		}
	}
}

func TestSlotRotationPropertySec27(t *testing.T) {
	// t=65537 leaves no noise headroom for rotations at the 27-bit level,
	// so decryption is not meaningful there — but bit-identity across
	// backends still is, and DecryptSlots is only checked against the
	// model where the budget allows. Use the bit-identity-only variant.
	runSlotRotationBitIdentity(t, 27, 2701, 4)
}

func TestSlotRotationPropertySec54(t *testing.T) {
	if testing.Short() {
		t.Skip("schoolbook rotations at N=2048 are slow")
	}
	runSlotRotationProperty(t, 54, 5401, 3, 1, -1)
}

func TestSlotRotationPropertySec109(t *testing.T) {
	if testing.Short() {
		t.Skip("schoolbook rotations at N=4096, W=4 are slow")
	}
	// Two rotations only: each schoolbook key switch at W=4 costs ~15s.
	runSlotRotationProperty(t, 109, 10901, 1, 1)
}

// runSlotRotationBitIdentity is the property test without the
// decode-against-model check, for parameter sets whose noise budget
// cannot absorb a key switch (sec27 with the batching modulus).
func runSlotRotationBitIdentity(t *testing.T, level int, seed int64, steps int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	ref, err := New(WithSecurityLevel(level), WithSeed(uint64(seed)))
	if err != nil {
		t.Fatal(err)
	}
	row := ref.RowSlots()
	ks := make([]int, steps)
	for i := range ks {
		ks[i] = 1 + rng.Intn(row-1)
	}
	refK, err := New(WithSecurityLevel(level), WithSeed(uint64(seed)), WithRotations(ks...))
	if err != nil {
		t.Fatal(err)
	}
	keys, err := refK.ExportKeys(true)
	if err != nil {
		t.Fatal(err)
	}
	native, err := New(WithSecurityLevel(level), WithKeySet(keys), WithSeed(uint64(seed)+1))
	if err != nil {
		t.Fatal(err)
	}
	school, err := New(WithSecurityLevel(level), WithKeySet(keys), WithSeed(uint64(seed)+2), WithBackend("schoolbook"))
	if err != nil {
		t.Fatal(err)
	}
	vals := make([]uint64, native.Slots())
	for i := range vals {
		vals[i] = rng.Uint64() % native.PlaintextModulus()
	}
	ct, err := native.EncryptSlots(vals)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := ct.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	ctS, err := school.UnmarshalCiphertext(blob)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range ks {
		rotN, err := native.RotateRows(ct, k)
		if err != nil {
			t.Fatal(err)
		}
		rotS, err := school.RotateRows(ctS, k)
		if err != nil {
			t.Fatal(err)
		}
		bn, _ := rotN.MarshalBinary()
		bs, _ := rotS.MarshalBinary()
		if !bytes.Equal(bn, bs) {
			t.Fatalf("level %d, k=%d: facade rotation differs between schoolbook and dcrt-native", level, k)
		}
	}
}
