package hebfv

import (
	"errors"
	"fmt"

	"repro/internal/dcrt"
)

// Error taxonomy. Every failure crossing the public API wraps one of
// these sentinels, so callers branch with errors.Is instead of matching
// message strings:
//
//   - ErrCorruptBlob: a serialized blob (ciphertext or key set) failed
//     structural validation — truncated, oversized, wrong magic,
//     non-canonical coefficients, trailing bytes.
//   - ErrBackendFailed: the evaluation backend failed operationally —
//     a worker panic converted to an error, or a modeled-hardware fault
//     past its retry budget. Distinct from semantic errors (unsupported
//     operation, shape mismatch), which never carry this sentinel.
//   - ErrNoSecretKey: the operation needs the secret key and the
//     context is evaluation-only (restored from ExportKeys(false)).
//   - ErrNoBatching: the slot API was used with a plaintext modulus
//     that does not support CRT batching.
//   - ErrNilHandle / ErrForeignHandle: a nil ciphertext/plaintext
//     handle, or one owned by a different Context.
//   - ErrContextClosed: the context was released with Close — a serving
//     cache evicted it — and no longer accepts operations.
//   - ErrReleasedHandle: the ciphertext handle was released — its
//     backings returned to the context pool — and then used again, or
//     Release was called twice.
//
// No panic escapes the public API on malformed input: entry points
// recover internal panics and surface them as wrapped ErrBackendFailed
// (evaluation) or ErrCorruptBlob (deserialization) errors.
var (
	ErrCorruptBlob    = errors.New("hebfv: corrupt blob")
	ErrBackendFailed  = errors.New("hebfv: backend evaluation failed")
	ErrNoSecretKey    = errors.New("hebfv: context holds no secret key (evaluation-only)")
	ErrNoBatching     = errors.New("hebfv: plaintext modulus does not support batching")
	ErrNilHandle      = errors.New("hebfv: nil handle")
	ErrForeignHandle  = errors.New("hebfv: handle belongs to a different context")
	ErrContextClosed  = errors.New("hebfv: context is closed")
	ErrReleasedHandle = errors.New("hebfv: handle was released")
)

// guard is deferred by public entry points: a panic below the API
// boundary (a worker-pool task, an internal kernel) is converted to an
// ErrBackendFailed-wrapped error instead of unwinding into the caller.
func guard(err *error) {
	if r := recover(); r != nil {
		*err = panicError(r)
	}
}

// guardBlob is guard for deserialization entry points, where a panic
// means the blob drove internal decoding off the rails: it surfaces as
// ErrCorruptBlob.
func guardBlob(err *error) {
	if r := recover(); r != nil {
		*err = fmt.Errorf("%w: decoding panicked: %v", ErrCorruptBlob, r)
	}
}

// panicError maps a recovered panic value to a typed error. A typed
// *dcrt.PanicError from the worker pool keeps its task context; an
// error already carrying the released-handle sentinel passes through
// unchanged (a release racing an in-flight operation must surface as
// ErrReleasedHandle, not as a backend failure); any other value is
// reported verbatim.
func panicError(r any) error {
	if pe, ok := r.(*dcrt.PanicError); ok {
		return fmt.Errorf("%w: %v", ErrBackendFailed, pe)
	}
	if err, ok := r.(error); ok && errors.Is(err, ErrReleasedHandle) {
		return err
	}
	return fmt.Errorf("%w: panic: %v", ErrBackendFailed, r)
}
