package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/hebfv"
)

// newClient builds a key-owning toy client context with the rotation
// key for step 1 derived (so its evaluation-only export serves rotate
// requests).
func newClient(t *testing.T, seed uint64) *hebfv.Context {
	t.Helper()
	ctx, err := hebfv.New(hebfv.WithInsecureToyParameters(), hebfv.WithSeed(seed), hebfv.WithRotations(1))
	if err != nil {
		t.Fatal(err)
	}
	return ctx
}

func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	opts.ContextOptions = append(opts.ContextOptions, hebfv.WithInsecureToyParameters())
	s := NewServer(opts)
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(hs.Close)
	return s, hs
}

// onboard posts the client's evaluation-only key set and returns the
// fingerprint in request form.
func onboard(t *testing.T, base string, ctx *hebfv.Context, hint bool) string {
	t.Helper()
	blob, err := ctx.ExportKeys(false)
	if err != nil {
		t.Fatal(err)
	}
	fp := ctx.KeySetHash()
	url := base + "/v1/keysets"
	if hint {
		url = fmt.Sprintf("%s?sha256=%x", url, fp[:])
	}
	resp, err := http.Post(url, "application/octet-stream", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("onboarding: HTTP %d: %s", resp.StatusCode, body)
	}
	var got struct {
		KeySet string `json:"keyset"`
	}
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatalf("onboarding response %q: %v", body, err)
	}
	if want := fmt.Sprintf("%x", fp[:]); got.KeySet != want {
		t.Fatalf("server fingerprint %s, client computed %s", got.KeySet, want)
	}
	return got.KeySet
}

func evalReq(t *testing.T, base, op, fp string, extra string, body []byte) *http.Response {
	t.Helper()
	url := fmt.Sprintf("%s/v1/eval/%s?keyset=%s%s", base, op, fp, extra)
	resp, err := http.Post(url, "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// errCode decodes the typed error body.
func errCode(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	var e struct {
		Code string `json:"code"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatalf("error body: %v", err)
	}
	return e.Code
}

// TestServeEndToEnd runs the full deployment loop: onboard, evaluate
// add/mul/rotate over HTTP, decrypt locally — and pins the responses
// byte-identical to local evaluation (coalesced batches are scheduling,
// not approximation).
func TestServeEndToEnd(t *testing.T) {
	s, hs := newTestServer(t, Options{})
	ctx := newClient(t, 42)
	fp := onboard(t, hs.URL, ctx, true)

	va := make([]uint64, ctx.Slots())
	vb := make([]uint64, ctx.Slots())
	for i := range va {
		va[i], vb[i] = uint64(i), uint64(2*i+1)
	}
	cta, err := ctx.EncryptSlots(va)
	if err != nil {
		t.Fatal(err)
	}
	ctb, err := ctx.EncryptSlots(vb)
	if err != nil {
		t.Fatal(err)
	}
	blobA, _ := cta.MarshalBinary()
	blobB, _ := ctb.MarshalBinary()
	pair := append(append([]byte{}, blobA...), blobB...)

	row := ctx.RowSlots()
	mod := ctx.PlaintextModulus()
	expect := func(op string) ([]uint64, *hebfv.Ciphertext) {
		switch op {
		case "add":
			want := make([]uint64, len(va))
			for i := range want {
				want[i] = (va[i] + vb[i]) % mod
			}
			local, err := ctx.Add(cta, ctb)
			if err != nil {
				t.Fatal(err)
			}
			return want, local
		case "mul":
			want := make([]uint64, len(va))
			for i := range want {
				want[i] = va[i] * vb[i] % mod
			}
			local, err := ctx.Mul(cta, ctb)
			if err != nil {
				t.Fatal(err)
			}
			return want, local
		default: // rotate by 1: slot (r, c) <- slot (r, (c+1) mod row)
			want := make([]uint64, len(va))
			for r := 0; r < 2; r++ {
				for c := 0; c < row; c++ {
					want[r*row+c] = va[r*row+(c+1)%row]
				}
			}
			local, err := ctx.RotateRows(cta, 1)
			if err != nil {
				t.Fatal(err)
			}
			return want, local
		}
	}

	for _, op := range []string{"add", "mul", "rotate"} {
		body, extra := pair, ""
		if op == "rotate" {
			body, extra = blobA, "&k=1"
		}
		resp := evalReq(t, hs.URL, op, fp, extra, body)
		payload, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: HTTP %d (%v): %s", op, resp.StatusCode, err, payload)
		}
		if cl := resp.ContentLength; cl != int64(len(payload)) {
			t.Errorf("%s: Content-Length %d, body %d bytes", op, cl, len(payload))
		}
		want, local := expect(op)
		localBlob, err := local.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(payload, localBlob) {
			t.Errorf("%s: served response is not bit-identical to local evaluation", op)
		}
		out, err := ctx.UnmarshalCiphertext(payload)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ctx.DecryptSlots(out)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: slot %d = %d, want %d", op, i, got[i], want[i])
			}
		}
	}

	// Auto-release: the server recycles every request/response handle
	// once the response is flushed, so the decode pool is used and
	// balanced. The handler's deferred release may still be running
	// when the client sees the last byte, hence the short poll.
	var st ServerStats
	for deadline := time.Now().Add(time.Second); ; {
		st = s.Stats()
		if st.Pool.InUse == 0 || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st.Pool.Gets == 0 {
		t.Fatal("server decode pool was never used")
	}
	if st.Pool.InUse != 0 {
		t.Fatalf("server leaks pooled handles after responses: %+v", st.Pool)
	}
	if st.Mem.Mallocs == 0 || st.Mem.TotalAllocBytes == 0 {
		t.Fatal("server memstats excerpt missing from stats")
	}
}

// TestServeTypedRejections pins the error contract: corrupt blobs 400,
// unknown fingerprints 404, semantically impossible requests (a
// rotation step with no Galois key on an evaluation-only context) 422 —
// each with its machine-readable code — and the server keeps serving
// valid requests afterwards.
func TestServeTypedRejections(t *testing.T) {
	_, hs := newTestServer(t, Options{})
	ctx := newClient(t, 7)
	fp := onboard(t, hs.URL, ctx, false)
	ct, err := ctx.EncryptValue(5)
	if err != nil {
		t.Fatal(err)
	}
	blob, _ := ct.MarshalBinary()
	pair := append(append([]byte{}, blob...), blob...)

	// Corrupt body: flip a byte inside the header region.
	bad := append([]byte{}, pair...)
	bad[2] ^= 0xFF
	if resp := evalReq(t, hs.URL, "add", fp, "", bad); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("corrupt blob: HTTP %d, want 400", resp.StatusCode)
	} else if code := errCode(t, resp); code != "corrupt_blob" {
		t.Fatalf("corrupt blob code %q", code)
	}
	// Truncated body.
	if resp := evalReq(t, hs.URL, "add", fp, "", pair[:len(pair)/2]); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("truncated blob: HTTP %d, want 400", resp.StatusCode)
	} else {
		resp.Body.Close()
	}
	// Foreign fingerprint: never onboarded.
	foreign := newClient(t, 8)
	ffp := fmt.Sprintf("%x", foreign.KeySetHash())
	if resp := evalReq(t, hs.URL, "add", ffp, "", pair); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown key set: HTTP %d, want 404", resp.StatusCode)
	} else if code := errCode(t, resp); code != "unknown_keyset" {
		t.Fatalf("unknown key set code %q", code)
	}
	// Rotation step with no exported Galois key: the evaluation-only
	// server context cannot derive it — typed 422.
	if resp := evalReq(t, hs.URL, "rotate", fp, "&k=3", blob); resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("underivable rotation: HTTP %d, want 422", resp.StatusCode)
	} else if code := errCode(t, resp); code != "no_secret_key" {
		t.Fatalf("underivable rotation code %q", code)
	}
	// A key set containing the secret key is refused at onboarding.
	skBlob, err := ctx.ExportKeys(true)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(hs.URL+"/v1/keysets", "application/octet-stream", bytes.NewReader(skBlob))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("secret-key onboarding: HTTP %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()

	// The rejections poisoned nothing: a valid request still round-trips.
	resp2 := evalReq(t, hs.URL, "add", fp, "", pair)
	payload, err := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if err != nil || resp2.StatusCode != http.StatusOK {
		t.Fatalf("valid request after rejections: HTTP %d (%v)", resp2.StatusCode, err)
	}
	out, err := ctx.UnmarshalCiphertext(payload)
	if err != nil {
		t.Fatal(err)
	}
	if v, err := ctx.DecryptValue(out); err != nil || v != 10 {
		t.Fatalf("decrypted %d (%v), want 10", v, err)
	}
}

// TestServeQuota429 pins the backpressure contract: with a per-tenant
// quota of 1 and a coalescing window long enough to hold requests in
// flight, a concurrent burst sees typed 429s — and the server serves
// normally afterwards (no pool poisoning).
func TestServeQuota429(t *testing.T) {
	_, hs := newTestServer(t, Options{
		TenantInflight: 1,
		Window:         150 * time.Millisecond,
		MaxBatch:       1024, // only the window flushes: requests hold slots for the full window
	})
	ctx := newClient(t, 11)
	fp := onboard(t, hs.URL, ctx, false)
	ct, err := ctx.EncryptValue(3)
	if err != nil {
		t.Fatal(err)
	}
	blob, _ := ct.MarshalBinary()
	pair := append(append([]byte{}, blob...), blob...)

	const burst = 4
	codes := make(chan int, burst)
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp := evalReq(t, hs.URL, "add", fp, "", pair)
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			codes <- resp.StatusCode
		}()
		time.Sleep(10 * time.Millisecond) // stagger inside the window
	}
	wg.Wait()
	close(codes)
	var ok200, got429 int
	for c := range codes {
		switch c {
		case http.StatusOK:
			ok200++
		case http.StatusTooManyRequests:
			got429++
		default:
			t.Fatalf("unexpected status %d in burst", c)
		}
	}
	if ok200 == 0 || got429 == 0 {
		t.Fatalf("burst saw %d OKs and %d 429s; want both backpressure and progress", ok200, got429)
	}
	// Quota slots released: a sequential request succeeds.
	resp := evalReq(t, hs.URL, "add", fp, "", pair)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("request after burst: HTTP %d", resp.StatusCode)
	}
}

// TestCacheEvictionCloses pins the cache lifecycle: LRU eviction under
// the byte budget closes unpinned contexts immediately, defers closing
// pinned ones to the last release, and evicted fingerprints turn into
// typed misses.
func TestCacheEvictionCloses(t *testing.T) {
	cache := NewContextCache(100)
	ids := make([][32]byte, 3)
	ctxs := make([]*hebfv.Context, 3)
	clients := make([]*hebfv.Context, 3)
	for i := range ids {
		client := newClient(t, uint64(20+i))
		clients[i] = client
		blob, err := client.ExportKeys(false)
		if err != nil {
			t.Fatal(err)
		}
		ctxs[i], err = hebfv.New(hebfv.WithInsecureToyParameters(), hebfv.WithKeySet(blob))
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = client.KeySetHash()
	}
	if !cache.Add(ids[0], ctxs[0], 80) {
		t.Fatal("first Add rejected")
	}
	// Second insert blows the budget: entry 0 (LRU) evicts, refs 0 → closed.
	cache.Add(ids[1], ctxs[1], 80)
	if _, _, err := cache.Acquire(ids[0]); !errors.Is(err, ErrUnknownKeySet) {
		t.Fatalf("evicted entry Acquire: %v, want ErrUnknownKeySet", err)
	}
	if err := ctxs[0].ExportKeysTo(io.Discard, false); !errors.Is(err, hebfv.ErrContextClosed) {
		t.Fatalf("evicted unpinned context not closed: %v", err)
	}
	// Pin entry 1, then evict it: the close defers to the release.
	pinned, release, err := cache.Acquire(ids[1])
	if err != nil {
		t.Fatal(err)
	}
	cache.Add(ids[2], ctxs[2], 80)
	if _, _, err := cache.Acquire(ids[1]); !errors.Is(err, ErrUnknownKeySet) {
		t.Fatalf("doomed entry still acquirable: %v", err)
	}
	if err := pinned.ExportKeysTo(io.Discard, false); err != nil {
		t.Fatalf("doomed-but-pinned context closed early: %v", err)
	}
	// Pooled decode against the doomed-but-pinned context: the handle
	// must return its backings before the deferred Close drains the
	// pool, leaving the evicted context's leak balance at zero.
	ct, err := clients[1].EncryptSlots([]uint64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := ct.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	h, err := pinned.ReadCiphertext(bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Release(); err != nil {
		t.Fatal(err)
	}
	release()
	if err := pinned.ExportKeysTo(io.Discard, false); !errors.Is(err, hebfv.ErrContextClosed) {
		t.Fatalf("doomed context not closed at last release: %v", err)
	}
	if ps := pinned.PoolStats(); ps.InUse != 0 || ps.Gets != ps.Puts || ps.RetainedBytes != 0 {
		t.Fatalf("evicted context pool unbalanced after close: %+v", ps)
	}
	if st := cache.Stats(); st.Evictions != 2 || st.Entries != 1 {
		t.Fatalf("stats %+v; want 2 evictions, 1 entry", st)
	}
}

// TestCacheSingleflight pins the construction contract: concurrent
// onboards of one fingerprint run the build exactly once.
func TestCacheSingleflight(t *testing.T) {
	client := newClient(t, 33)
	blob, err := client.ExportKeys(false)
	if err != nil {
		t.Fatal(err)
	}
	id := client.KeySetHash()
	cache := NewContextCache(0)
	var builds sync.Map
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, release, _, err := cache.AcquireOrBuild(id, func() (*hebfv.Context, int64, error) {
				builds.Store(i, true)
				time.Sleep(20 * time.Millisecond) // hold the flight open for the racers
				ctx, err := hebfv.New(hebfv.WithInsecureToyParameters(), hebfv.WithKeySet(blob))
				return ctx, int64(len(blob)), err
			})
			if err != nil {
				t.Error(err)
				return
			}
			release()
		}(i)
	}
	wg.Wait()
	count := 0
	builds.Range(func(_, _ any) bool { count++; return true })
	if count != 1 {
		t.Fatalf("%d builds ran for one fingerprint; want 1 (singleflight)", count)
	}
	if st := cache.Stats(); st.Builds != 1 {
		t.Fatalf("stats count %d builds; want 1", st.Builds)
	}
}

// TestCoalescerBatching pins the batching semantics: concurrent
// same-kind submissions on one context land in one flush, and every
// waiter gets its own slot's result.
func TestCoalescerBatching(t *testing.T) {
	ctx := newClient(t, 44)
	co := NewCoalescer(100*time.Millisecond, 64)
	const k = 4
	cts := make([]*hebfv.Ciphertext, k)
	for i := range cts {
		var err error
		if cts[i], err = ctx.EncryptValue(uint64(10 + i)); err != nil {
			t.Fatal(err)
		}
	}
	one, err := ctx.EncryptValue(1)
	if err != nil {
		t.Fatal(err)
	}
	results := make([]uint64, k)
	var wg sync.WaitGroup
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out, err := co.Add(ctx, cts[i], one)
			if err != nil {
				t.Error(err)
				return
			}
			v, err := ctx.DecryptValue(out)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = v
		}(i)
	}
	wg.Wait()
	for i, v := range results {
		if v != uint64(11+i) {
			t.Errorf("waiter %d got %d, want %d (slot mix-up?)", i, v, 11+i)
		}
	}
	st := co.Stats()
	if st.Ops != k {
		t.Fatalf("stats count %d ops, want %d", st.Ops, k)
	}
	if st.Batches >= k {
		t.Fatalf("%d batches for %d concurrent ops: nothing coalesced", st.Batches, k)
	}
}
