// Package serve is the served evaluation plane over the hebfv facade:
// the reusable pieces of an HE-as-a-service deployment, where clients
// keep the secret key, onboard their public evaluation keys once, and
// submit ciphertext operations over HTTP. The hebfvd command wires this
// package to a listener; hebfv-loadgen drives it.
//
// Three pieces compose the plane:
//
//   - ContextCache: evaluation-only Contexts keyed by key-set
//     fingerprint (LRU under a byte budget, singleflight construction,
//     eviction deferred past in-flight work).
//   - Coalescer: concurrent tenants' single ops gathered into the
//     facade's batch pipelines (AddMany, MulMany, RotateRowsEach)
//     within a bounded window — batch efficiency without changing
//     results; everything stays bit-identical.
//   - Server: the HTTP surface — streaming ciphertext bodies in and
//     out (O(chunk) memory per transfer, exact Content-Length from
//     MarshaledBytes), per-tenant and global admission quotas, and the
//     error taxonomy mapped onto typed HTTP statuses.
//
// # Protocol
//
//	POST /v1/keysets[?sha256=<hex>]   body: ExportKeysTo(w, false) blob
//	  → 200 {"keyset": "<hex>", "cached": bool}
//	POST /v1/eval/add?keyset=<hex>    body: two ciphertext records
//	POST /v1/eval/mul?keyset=<hex>    body: two ciphertext records
//	POST /v1/eval/rotate?keyset=<hex>&k=<steps>  body: one record
//	  → 200 application/octet-stream: one ciphertext record
//	GET  /v1/stats                    → 200 ServerStats JSON
//	GET  /healthz                     → 200
//
// Failures map to statuses by sentinel (see HTTPStatus): unknown
// fingerprint 404, per-tenant quota 429, global quota 503, corrupt
// blob 400, semantic rejections (missing Galois key, no batching) 422,
// backend failure 500. Error bodies are JSON with the sentinel's code
// in "code".
package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"time"

	"repro/hebfv"
)

// Serving sentinels. Like the hebfv taxonomy, every admission or
// routing failure wraps one of these, and HTTPStatus maps them (plus
// the hebfv sentinels) to statuses.
var (
	// ErrUnknownKeySet: the request's key-set fingerprint has no
	// resident context — the tenant never onboarded, or was evicted.
	ErrUnknownKeySet = errors.New("serve: unknown key set")
	// ErrTenantBusy: the tenant's in-flight quota is exhausted; retry
	// after a response frees a slot (HTTP 429).
	ErrTenantBusy = errors.New("serve: tenant quota exhausted")
	// ErrOverloaded: the server's global in-flight quota is exhausted
	// (HTTP 503).
	ErrOverloaded = errors.New("serve: server overloaded")
)

// Options configures a Server.
type Options struct {
	// ContextOptions are the base options every restored tenant context
	// is built with (parameter preset, backend). The key material comes
	// from the onboarded blob; do not include WithKeySet/WithKeySetFrom.
	ContextOptions []hebfv.Option
	// MaxCacheBytes bounds the resident tenant key material (0 =
	// unbounded). Sizing uses the onboarded blob length — the key
	// material dominates a context's footprint.
	MaxCacheBytes int64
	// Window bounds how long a submitted op may wait for batch-mates
	// (default 2ms).
	Window time.Duration
	// MaxBatch flushes a batch at this many ops even inside the window
	// (default 32).
	MaxBatch int
	// TenantInflight is the per-tenant concurrent evaluation quota
	// (default 4; exceeding it is a 429).
	TenantInflight int
	// TotalInflight is the global concurrent evaluation quota (default
	// 64; exceeding it is a 503).
	TotalInflight int
}

// Server is the HTTP evaluation plane: admission control in front of a
// ContextCache and a Coalescer. Create one with NewServer and mount
// Handler on any mux or listener.
type Server struct {
	opts  Options
	cache *ContextCache
	coal  *Coalescer

	mu         sync.Mutex
	tenantLoad map[[32]byte]int
	totalLoad  int

	requests, rejections int64
}

// NewServer builds the serving plane from opts (zero values take the
// documented defaults).
func NewServer(opts Options) *Server {
	if opts.Window <= 0 {
		opts.Window = 2 * time.Millisecond
	}
	if opts.MaxBatch <= 0 {
		opts.MaxBatch = 32
	}
	if opts.TenantInflight <= 0 {
		opts.TenantInflight = 4
	}
	if opts.TotalInflight <= 0 {
		opts.TotalInflight = 64
	}
	return &Server{
		opts:       opts,
		cache:      NewContextCache(opts.MaxCacheBytes),
		coal:       NewCoalescer(opts.Window, opts.MaxBatch),
		tenantLoad: map[[32]byte]int{},
	}
}

// Cache exposes the tenant-context cache (stats, tests).
func (s *Server) Cache() *ContextCache { return s.cache }

// Coalescer exposes the batching layer (stats, tests).
func (s *Server) Coalescer() *Coalescer { return s.coal }

// Handler returns the HTTP surface documented in the package comment.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/keysets", s.handleOnboard)
	mux.HandleFunc("POST /v1/eval/{op}", s.handleEval)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		io.WriteString(w, "ok\n")
	})
	return mux
}

// HTTPStatus maps a serving or hebfv error to its HTTP status: the
// error contract of the evaluation plane.
func HTTPStatus(err error) int {
	switch {
	case err == nil:
		return http.StatusOK
	case errors.Is(err, ErrUnknownKeySet):
		return http.StatusNotFound // 404: onboard the key set first
	case errors.Is(err, ErrTenantBusy):
		return http.StatusTooManyRequests // 429: per-tenant backpressure
	case errors.Is(err, ErrOverloaded), errors.Is(err, hebfv.ErrContextClosed):
		return http.StatusServiceUnavailable // 503: retry elsewhere/later
	case errors.Is(err, hebfv.ErrCorruptBlob):
		return http.StatusBadRequest // 400: malformed wire bytes
	case errors.Is(err, hebfv.ErrNoSecretKey), errors.Is(err, hebfv.ErrNoBatching),
		errors.Is(err, hebfv.ErrNilHandle), errors.Is(err, hebfv.ErrForeignHandle):
		return http.StatusUnprocessableEntity // 422: well-formed, semantically rejected
	case errors.Is(err, hebfv.ErrBackendFailed):
		return http.StatusInternalServerError // 500: evaluation-side failure
	}
	return http.StatusBadRequest
}

// errorCode names the sentinel an error wraps, for machine-readable
// error bodies.
func errorCode(err error) string {
	for _, s := range []struct {
		err  error
		code string
	}{
		{ErrUnknownKeySet, "unknown_keyset"},
		{ErrTenantBusy, "tenant_busy"},
		{ErrOverloaded, "overloaded"},
		{hebfv.ErrContextClosed, "context_closed"},
		{hebfv.ErrCorruptBlob, "corrupt_blob"},
		{hebfv.ErrNoSecretKey, "no_secret_key"},
		{hebfv.ErrNoBatching, "no_batching"},
		{hebfv.ErrNilHandle, "nil_handle"},
		{hebfv.ErrForeignHandle, "foreign_handle"},
		{hebfv.ErrBackendFailed, "backend_failed"},
	} {
		if errors.Is(err, s.err) {
			return s.code
		}
	}
	return "bad_request"
}

func (s *Server) writeError(w http.ResponseWriter, err error) {
	status := HTTPStatus(err)
	if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
		s.mu.Lock()
		s.rejections++
		s.mu.Unlock()
		w.Header().Set("Retry-After", "1")
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]any{
		"error": err.Error(),
		"code":  errorCode(err),
	})
}

// admit reserves one evaluation slot for the tenant, enforcing the
// per-tenant then the global quota. The returned release must be called
// exactly once.
func (s *Server) admit(id [32]byte) (func(), error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.requests++
	if s.tenantLoad[id] >= s.opts.TenantInflight {
		return nil, fmt.Errorf("%w: %d in flight", ErrTenantBusy, s.tenantLoad[id])
	}
	if s.totalLoad >= s.opts.TotalInflight {
		return nil, fmt.Errorf("%w: %d in flight", ErrOverloaded, s.totalLoad)
	}
	s.tenantLoad[id]++
	s.totalLoad++
	return func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		s.tenantLoad[id]--
		if s.tenantLoad[id] == 0 {
			delete(s.tenantLoad, id)
		}
		s.totalLoad--
	}, nil
}

// handleOnboard builds (or finds) the tenant's evaluation-only context
// from the streamed key-set blob. With a ?sha256= fingerprint hint,
// concurrent onboards of the same key set singleflight — one build, the
// rest wait; without it the blob streams into a build first and
// deduplicates on insert.
func (s *Server) handleOnboard(w http.ResponseWriter, r *http.Request) {
	defer r.Body.Close()
	if hint := r.URL.Query().Get("sha256"); hint != "" {
		id, err := parseFingerprint(hint)
		if err != nil {
			s.writeError(w, err)
			return
		}
		_, release, built, err := s.cache.AcquireOrBuild(id, func() (*hebfv.Context, int64, error) {
			ctx, got, n, err := s.buildTenant(r.Body)
			if err != nil {
				return nil, 0, err
			}
			if got != id {
				ctx.Close()
				return nil, 0, fmt.Errorf("%w: body fingerprint %x does not match hint %x",
					hebfv.ErrCorruptBlob, got[:8], id[:8])
			}
			return ctx, n, nil
		})
		if err != nil {
			s.writeError(w, err)
			return
		}
		release()
		s.writeOnboarded(w, id, !built)
		return
	}
	ctx, id, n, err := s.buildTenant(r.Body)
	if err != nil {
		s.writeError(w, err)
		return
	}
	if !s.cache.Add(id, ctx, n) {
		ctx.Close() // already resident: keep the incumbent
		s.writeOnboarded(w, id, true)
		return
	}
	s.writeOnboarded(w, id, false)
}

// buildTenant streams one key-set record from r into an evaluation-only
// context, returning the blob's sha256 fingerprint and byte count. The
// fingerprint equals Context.KeySetHash for evaluation-only blobs —
// both are the sha256 of the same canonical encoding.
func (s *Server) buildTenant(r io.Reader) (*hebfv.Context, [32]byte, int64, error) {
	h := sha256.New()
	cr := &countingReader{r: io.TeeReader(r, h)}
	opts := append(append([]hebfv.Option{}, s.opts.ContextOptions...), hebfv.WithKeySetFrom(cr))
	ctx, err := hebfv.New(opts...)
	if err != nil {
		return nil, [32]byte{}, 0, err
	}
	if ctx.CanDecrypt() {
		ctx.Close()
		return nil, [32]byte{}, 0, fmt.Errorf("%w: refusing a key set containing the secret key; export with ExportKeysTo(w, false)", hebfv.ErrCorruptBlob)
	}
	var id [32]byte
	h.Sum(id[:0])
	return ctx, id, cr.n, nil
}

func (s *Server) writeOnboarded(w http.ResponseWriter, id [32]byte, cached bool) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"keyset": hex.EncodeToString(id[:]),
		"cached": cached,
	})
}

// handleEval runs one coalesced operation: admission, context pin,
// streamed operand decode, batched evaluation, streamed response.
//
// The operand handles decode into the pinned context's pooled backings
// (Context.ReadCiphertext), and every handle the request produced —
// operands and output — is released once the response bytes have been
// handed to the ResponseWriter, so a steady-state serve loop recycles
// one working set per in-flight request instead of allocating per op.
// An identity rotation returns the operand handle itself as the
// output; releaseHandles releases each distinct handle exactly once.
func (s *Server) handleEval(w http.ResponseWriter, r *http.Request) {
	defer r.Body.Close()
	id, err := parseFingerprint(r.URL.Query().Get("keyset"))
	if err != nil {
		s.writeError(w, err)
		return
	}
	release, err := s.admit(id)
	if err != nil {
		s.writeError(w, err)
		return
	}
	defer release()
	ctx, unpin, err := s.cache.Acquire(id)
	if err != nil {
		s.writeError(w, err)
		return
	}
	defer unpin()

	var a, b, out *hebfv.Ciphertext
	defer func() { releaseHandles(a, b, out) }()
	switch op := r.PathValue("op"); op {
	case "add", "mul":
		if a, err = ctx.ReadCiphertext(r.Body); err != nil {
			s.writeError(w, err)
			return
		}
		if b, err = ctx.ReadCiphertext(r.Body); err != nil {
			s.writeError(w, err)
			return
		}
		if op == "add" {
			out, err = s.coal.Add(ctx, a, b)
		} else {
			out, err = s.coal.Mul(ctx, a, b)
		}
		if err != nil {
			s.writeError(w, err)
			return
		}
	case "rotate":
		k, err := strconv.Atoi(r.URL.Query().Get("k"))
		if err != nil {
			s.writeError(w, fmt.Errorf("serve: rotate needs an integer k parameter: %v", err))
			return
		}
		if a, err = ctx.ReadCiphertext(r.Body); err != nil {
			s.writeError(w, err)
			return
		}
		if out, err = s.coal.RotateRows(ctx, a, k); err != nil {
			s.writeError(w, err)
			return
		}
	default:
		s.writeError(w, fmt.Errorf("serve: unknown operation %q (want add, mul or rotate)", op))
		return
	}

	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(out.MarshaledBytes()))
	out.MarshalTo(w) // nothing to salvage mid-stream on error
}

// releaseHandles releases the request's handles, each distinct one
// exactly once: an identity rotation's output IS its operand, and a
// double release is a typed error the hot path must not hit. The
// output's release only recycles pooled backings when the output
// aliases an operand; evaluator outputs carry fresh backings (engine
// outputs never alias inputs) and just get marked dead.
func releaseHandles(a, b, out *hebfv.Ciphertext) {
	if out != nil && out != a && out != b {
		out.Release()
	}
	if a != nil {
		a.Release()
	}
	if b != nil && b != a {
		b.Release()
	}
}

// ServerStats is the /v1/stats payload.
type ServerStats struct {
	Requests   int64          `json:"requests"`
	Rejections int64          `json:"rejections"` // 429s + 503s
	Inflight   int            `json:"inflight"`
	Cache      CacheStats     `json:"cache"`
	Coalescer  CoalescerStats `json:"coalescer"`
	// Pool aggregates the resident tenant contexts' decode-pool
	// counters (hebfv.Context.PoolStats): recycling hit rate, live
	// handles (in_use — the leak balance), and steady-state retained
	// bytes across the cache.
	Pool hebfv.PoolStats `json:"pool"`
	// Mem is the serving process's runtime memory view, for
	// cross-process GC-pressure measurement: a load generator snapshots
	// it before and after a run and diffs allocs/bytes per op and GC
	// pauses (hebfv-loadgen's GC axis).
	Mem MemStats `json:"mem"`
}

// MemStats is the runtime.ReadMemStats excerpt exposed in /v1/stats.
// Cumulative counters (TotalAllocBytes, Mallocs, NumGC, PauseTotalNs)
// diff cleanly across two snapshots; RecentPausesNs holds up to the
// last 256 GC pause durations, oldest first, so a diff with ΔNumGC ≤
// 256 recovers the exact pauses of the measured window.
type MemStats struct {
	HeapAllocBytes  uint64   `json:"heap_alloc_bytes"`
	TotalAllocBytes uint64   `json:"total_alloc_bytes"`
	Mallocs         uint64   `json:"mallocs"`
	NumGC           uint32   `json:"num_gc"`
	PauseTotalNs    uint64   `json:"pause_total_ns"`
	RecentPausesNs  []uint64 `json:"recent_pauses_ns"`
}

// readMemStats snapshots the runtime counters for /v1/stats.
func readMemStats() MemStats {
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	st := MemStats{
		HeapAllocBytes:  m.HeapAlloc,
		TotalAllocBytes: m.TotalAlloc,
		Mallocs:         m.Mallocs,
		NumGC:           m.NumGC,
		PauseTotalNs:    m.PauseTotalNs,
	}
	// PauseNs is a circular buffer indexed by GC number mod 256;
	// unwind it oldest-first over the window it still covers.
	n := uint32(len(m.PauseNs))
	count := m.NumGC
	if count > n {
		count = n
	}
	st.RecentPausesNs = make([]uint64, 0, count)
	for i := m.NumGC - count; i < m.NumGC; i++ {
		st.RecentPausesNs = append(st.RecentPausesNs, m.PauseNs[i%n])
	}
	return st
}

// Stats snapshots the serving counters.
func (s *Server) Stats() ServerStats {
	s.mu.Lock()
	st := ServerStats{
		Requests:   s.requests,
		Rejections: s.rejections,
		Inflight:   s.totalLoad,
	}
	s.mu.Unlock()
	st.Cache = s.cache.Stats()
	st.Coalescer = s.coal.Stats()
	st.Pool = s.cache.PoolStats()
	st.Mem = readMemStats()
	return st
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.Stats())
}

func parseFingerprint(hexID string) ([32]byte, error) {
	var id [32]byte
	raw, err := hex.DecodeString(hexID)
	if err != nil || len(raw) != 32 {
		return id, fmt.Errorf("serve: key-set fingerprint must be 64 hex chars")
	}
	copy(id[:], raw)
	return id, nil
}

// countingReader counts bytes as they stream through — the cache's
// per-tenant size estimate.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}
