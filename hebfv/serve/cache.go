package serve

import (
	"container/list"
	"fmt"
	"sync"

	"repro/hebfv"
)

// ContextCache holds evaluation-only hebfv Contexts keyed by key-set
// fingerprint (Context.KeySetHash — sha256 of the evaluation-only key
// export), with LRU eviction under a byte budget. It is the tenancy
// layer of the served evaluation plane: one onboarded key set is one
// tenant, and every request addresses its tenant by fingerprint.
//
// Construction is singleflighted: when many requests race to onboard
// the same fingerprint, exactly one build runs and the rest wait for
// its result. Eviction is deferred under load: an evicted entry with
// in-flight acquisitions is doomed — removed from the table so no new
// request finds it — and its Context is closed by the last release, so
// eviction never races an evaluation.
type ContextCache struct {
	maxBytes int64

	mu       sync.Mutex
	entries  map[[32]byte]*entry
	lru      *list.List // front = most recently used; values are *entry
	inflight map[[32]byte]*buildCall
	bytes    int64

	hits, misses, builds, evictions int64
}

type entry struct {
	id     [32]byte
	ctx    *hebfv.Context
	bytes  int64
	refs   int
	doomed bool
	elem   *list.Element
}

// buildCall is one singleflighted construction: concurrent onboarders
// of the same fingerprint block on done and share the result.
type buildCall struct {
	done chan struct{}
	ctx  *hebfv.Context
	err  error
}

// NewContextCache builds a cache that evicts least-recently-used
// entries once the resident key material exceeds maxBytes (0 means
// unbounded).
func NewContextCache(maxBytes int64) *ContextCache {
	return &ContextCache{
		maxBytes: maxBytes,
		entries:  map[[32]byte]*entry{},
		lru:      list.New(),
		inflight: map[[32]byte]*buildCall{},
	}
}

// Acquire pins the context for id and returns it with a release
// function. Every Acquire must be paired with exactly one release call;
// the context stays open at least until release. Unknown fingerprints
// fail with ErrUnknownKeySet.
func (c *ContextCache) Acquire(id [32]byte) (*hebfv.Context, func(), error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[id]
	if !ok {
		c.misses++
		return nil, nil, fmt.Errorf("%w: %x", ErrUnknownKeySet, id[:8])
	}
	c.hits++
	e.refs++
	c.lru.MoveToFront(e.elem)
	return e.ctx, func() { c.release(e) }, nil
}

// AcquireOrBuild is Acquire with singleflight construction on miss: the
// first caller runs build, concurrent callers of the same id wait and
// share the outcome, and the built context is inserted (evicting LRU
// entries past the byte budget). build returns the context plus its
// resident-size estimate in bytes. built reports whether this call (or
// the flight it joined) constructed the entry rather than finding it.
func (c *ContextCache) AcquireOrBuild(id [32]byte, build func() (*hebfv.Context, int64, error)) (_ *hebfv.Context, release func(), built bool, err error) {
	for {
		c.mu.Lock()
		if e, ok := c.entries[id]; ok {
			c.hits++
			e.refs++
			c.lru.MoveToFront(e.elem)
			c.mu.Unlock()
			return e.ctx, func() { c.release(e) }, false, nil
		}
		if call, ok := c.inflight[id]; ok {
			c.mu.Unlock()
			<-call.done
			if call.err != nil {
				return nil, nil, false, call.err
			}
			// The flight inserted the entry; loop to acquire it. It may
			// already have been evicted under extreme pressure — then the
			// loop rebuilds, which is correct, just slow.
			continue
		}
		c.misses++
		call := &buildCall{done: make(chan struct{})}
		c.inflight[id] = call
		c.mu.Unlock()

		ctx, bytes, err := build()
		c.mu.Lock()
		delete(c.inflight, id)
		if err != nil {
			call.err = err
			c.mu.Unlock()
			close(call.done)
			return nil, nil, false, err
		}
		c.builds++
		e := c.insertLocked(id, ctx, bytes)
		e.refs++
		c.mu.Unlock()
		close(call.done)
		return e.ctx, func() { c.release(e) }, true, nil
	}
}

// Add inserts a pre-built context under id, evicting past the budget.
// It reports false — leaving the cache untouched, the caller still owns
// ctx — when the id is already resident.
func (c *ContextCache) Add(id [32]byte, ctx *hebfv.Context, bytes int64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[id]; ok {
		return false
	}
	c.builds++
	c.insertLocked(id, ctx, bytes)
	return true
}

// insertLocked adds the entry, then walks the LRU tail until the budget
// holds again. Requires c.mu.
func (c *ContextCache) insertLocked(id [32]byte, ctx *hebfv.Context, bytes int64) *entry {
	e := &entry{id: id, ctx: ctx, bytes: bytes}
	e.elem = c.lru.PushFront(e)
	c.entries[id] = e
	c.bytes += bytes
	for c.maxBytes > 0 && c.bytes > c.maxBytes && c.lru.Len() > 1 {
		victim := c.lru.Back().Value.(*entry)
		if victim == e {
			break
		}
		c.evictLocked(victim)
	}
	return e
}

// evictLocked removes the entry from the table and budget; the Context
// closes now at zero refs, else at the last release. Requires c.mu.
func (c *ContextCache) evictLocked(e *entry) {
	c.lru.Remove(e.elem)
	delete(c.entries, e.id)
	c.bytes -= e.bytes
	c.evictions++
	e.doomed = true
	if e.refs == 0 {
		e.ctx.Close()
	}
}

func (c *ContextCache) release(e *entry) {
	c.mu.Lock()
	e.refs--
	closeNow := e.doomed && e.refs == 0
	c.mu.Unlock()
	if closeNow {
		e.ctx.Close()
	}
}

// CacheStats is a point-in-time snapshot of the cache counters.
type CacheStats struct {
	Entries   int   `json:"entries"`
	Bytes     int64 `json:"bytes"`
	MaxBytes  int64 `json:"max_bytes"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Builds    int64 `json:"builds"`
	Evictions int64 `json:"evictions"`
}

// PoolStats aggregates the decode-pool counters of every resident
// tenant context (hebfv.Context.PoolStats). Doomed-but-pinned entries
// left the table already, so their in-flight backings drop out of the
// aggregate at eviction, not at their eventual release; the per-context
// leak balance is still auditable on the evicted Context directly.
func (c *ContextCache) PoolStats() hebfv.PoolStats {
	c.mu.Lock()
	entries := make([]*entry, 0, len(c.entries))
	for _, e := range c.entries {
		entries = append(entries, e)
	}
	c.mu.Unlock()
	var agg hebfv.PoolStats
	for _, e := range entries {
		s := e.ctx.PoolStats()
		agg.Gets += s.Gets
		agg.Puts += s.Puts
		agg.Hits += s.Hits
		agg.Misses += s.Misses
		agg.Dropped += s.Dropped
		agg.InUse += s.InUse
		agg.RetainedBytes += s.RetainedBytes
	}
	return agg
}

// Stats snapshots the counters.
func (c *ContextCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Entries:   len(c.entries),
		Bytes:     c.bytes,
		MaxBytes:  c.maxBytes,
		Hits:      c.hits,
		Misses:    c.misses,
		Builds:    c.builds,
		Evictions: c.evictions,
	}
}
