package serve

import (
	"fmt"
	"sync"
	"time"

	"repro/hebfv"
)

// OpKind names the homomorphic operations the coalescer batches.
type OpKind int

const (
	OpAdd OpKind = iota
	OpMul
	OpRotateRows
)

func (k OpKind) String() string {
	switch k {
	case OpAdd:
		return "add"
	case OpMul:
		return "mul"
	case OpRotateRows:
		return "rotate"
	}
	return fmt.Sprintf("OpKind(%d)", int(k))
}

// Coalescer gathers concurrent single-op submissions into batch
// pipeline calls on the hebfv facade: Adds into AddMany, Muls into
// MulMany (the backend's NTT-resident batch pipeline), and same-step
// row rotations into RotateRowsEach. Requests group per (context, op
// kind, rotation step) — homomorphic operations never mix tenants, a
// rotation batch shares one Galois key — and a group flushes when it
// reaches MaxBatch or when its oldest member has waited Window.
//
// Coalescing trades a bounded queueing delay (≤ Window) for batch
// efficiency: one digit-decomposition setup, one worker-pool dispatch
// and one scratch reservation serve the whole group. Results are
// bit-identical to the single-op calls — batching in this codebase is
// a scheduling construct, never an approximation.
type Coalescer struct {
	window   time.Duration
	maxBatch int

	mu      sync.Mutex
	pending map[groupKey]*group

	ops, batches int64
	maxObserved  int
}

type groupKey struct {
	ctx  *hebfv.Context
	kind OpKind
	step int // rotation step; 0 for add/mul
}

// group is one open batch: operands accumulate until flush, then every
// waiter reads its slot of outs.
type group struct {
	key    groupKey
	as, bs []*hebfv.Ciphertext
	done   chan struct{}
	outs   []*hebfv.Ciphertext
	err    error
}

// NewCoalescer builds a coalescer flushing groups at maxBatch ops (≥ 1)
// or after window, whichever comes first. window 0 still coalesces
// whatever arrives within one scheduler pass — the timer fires
// immediately but submissions already queued join the batch.
func NewCoalescer(window time.Duration, maxBatch int) *Coalescer {
	if maxBatch < 1 {
		maxBatch = 1
	}
	return &Coalescer{
		window:   window,
		maxBatch: maxBatch,
		pending:  map[groupKey]*group{},
	}
}

// Add submits a + b and blocks until its batch flushes.
func (co *Coalescer) Add(ctx *hebfv.Context, a, b *hebfv.Ciphertext) (*hebfv.Ciphertext, error) {
	return co.submit(groupKey{ctx: ctx, kind: OpAdd}, a, b)
}

// Mul submits the relinearized product a·b and blocks until its batch
// flushes.
func (co *Coalescer) Mul(ctx *hebfv.Context, a, b *hebfv.Ciphertext) (*hebfv.Ciphertext, error) {
	return co.submit(groupKey{ctx: ctx, kind: OpMul}, a, b)
}

// RotateRows submits a row rotation by k steps and blocks until its
// batch flushes. Only same-step submissions share a batch (they share
// the Galois key).
func (co *Coalescer) RotateRows(ctx *hebfv.Context, a *hebfv.Ciphertext, k int) (*hebfv.Ciphertext, error) {
	return co.submit(groupKey{ctx: ctx, kind: OpRotateRows, step: k}, a, nil)
}

func (co *Coalescer) submit(key groupKey, a, b *hebfv.Ciphertext) (*hebfv.Ciphertext, error) {
	co.mu.Lock()
	g, ok := co.pending[key]
	if !ok {
		g = &group{key: key, done: make(chan struct{})}
		co.pending[key] = g
		// The window timer flushes the group unless MaxBatch got there
		// first (flushLocked removes it from pending, making the timer's
		// lookup miss).
		time.AfterFunc(co.window, func() {
			co.mu.Lock()
			if co.pending[key] == g {
				co.flushLocked(g)
			}
			co.mu.Unlock()
		})
	}
	idx := len(g.as)
	g.as = append(g.as, a)
	g.bs = append(g.bs, b)
	co.ops++
	if len(g.as) >= co.maxBatch {
		co.flushLocked(g)
	}
	co.mu.Unlock()

	<-g.done
	if g.err != nil {
		return nil, g.err
	}
	return g.outs[idx], nil
}

// flushLocked detaches the group and runs its batch call on a fresh
// goroutine (the caller holds co.mu; evaluation must not).
func (co *Coalescer) flushLocked(g *group) {
	delete(co.pending, g.key)
	co.batches++
	if len(g.as) > co.maxObserved {
		co.maxObserved = len(g.as)
	}
	go func() {
		defer close(g.done)
		switch g.key.kind {
		case OpAdd:
			g.outs, g.err = g.key.ctx.AddMany(g.as, g.bs)
		case OpMul:
			g.outs, g.err = g.key.ctx.MulMany(g.as, g.bs)
		case OpRotateRows:
			g.outs, g.err = g.key.ctx.RotateRowsEach(g.as, g.key.step)
		default:
			g.err = fmt.Errorf("serve: unknown op kind %v", g.key.kind)
		}
	}()
}

// CoalescerStats is a point-in-time snapshot of the batching counters.
type CoalescerStats struct {
	Ops      int64   `json:"ops"`
	Batches  int64   `json:"batches"`
	MaxBatch int     `json:"max_batch_observed"`
	AvgBatch float64 `json:"avg_batch"`
}

// Stats snapshots the counters.
func (co *Coalescer) Stats() CoalescerStats {
	co.mu.Lock()
	defer co.mu.Unlock()
	s := CoalescerStats{Ops: co.ops, Batches: co.batches, MaxBatch: co.maxObserved}
	if co.batches > 0 {
		s.AvgBatch = float64(co.ops) / float64(co.batches)
	}
	return s
}
