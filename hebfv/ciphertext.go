package hebfv

import (
	"fmt"
	"sync"

	"repro/internal/bfv"
)

// Ciphertext is an opaque handle to an encrypted vector, bound to the
// Context that produced it. Handles are immutable: every operation
// returns a fresh one.
//
// A rotation or multiplication produced by a deferred path
// (Context.RotateRowsMany, Mul/MulMany/Square on a backend supporting
// NTT-resident outputs) stays in RNS-resident form — its base
// conversions deferred — until a consumer forces coefficients:
// decryption, serialization, Equal, or an operation with no deferred
// path. Sums of deferred rotations fuse in the NTT domain, sums of
// deferred products fuse in the residue domain, and deferred products
// chain straight into further multiplications, all when exactness bounds
// allow. All of this is transparent: results are bit-identical either
// way.
type Ciphertext struct {
	ctx *Context

	mu       sync.Mutex
	ct       *bfv.Ciphertext // materialized form; nil while deferred
	rot      *bfv.RotatedNTT // deferred rotation output; nil once unused
	prod     *bfv.ProductNTT // deferred product output; nil once unused
	pooled   bool            // coefficient backings came from the context pool
	released bool            // Release was called; the handle is dead
}

// force materializes the handle's coefficient form, returning the
// deferred accumulators to the scratch pool — steady-state batched
// rotation and multiplication stay allocation-free through the facade
// too. A concurrent deferred Add against the released handle safely
// reports false and falls back to coefficient addition. After Release
// the handle holds no form at all and force returns nil; error-bearing
// entry points map that to ErrReleasedHandle via own.
func (ct *Ciphertext) force() *bfv.Ciphertext {
	ct.mu.Lock()
	defer ct.mu.Unlock()
	if ct.ct == nil && !ct.released {
		switch {
		case ct.rot != nil:
			ct.ct = ct.rot.Materialize()
			ct.rot.Release()
			ct.rot = nil
		case ct.prod != nil:
			ct.ct = ct.prod.Materialize()
			ct.prod.Release()
			ct.prod = nil
		}
	}
	return ct.ct
}

// Release returns the handle's resources — pooled coefficient backings
// to the owning context's pool, deferred accumulators to their scratch
// pools — and marks the handle dead. Every subsequent use returns (or
// reports through) ErrReleasedHandle; Degree returns −1 and Equal
// false. Releasing twice is an error.
//
// Release is only required for handles produced by Context.
// ReadCiphertext on the serving path, where recycling the decode
// backings is the point (the serve package calls it automatically once
// the response is flushed). Handles from Encrypt or evaluation results
// may be released for uniformity but recycle nothing beyond deferred
// scratch: their backings were never drawn from the pool.
func (ct *Ciphertext) Release() error {
	if ct == nil {
		return fmt.Errorf("%w: nil ciphertext", ErrNilHandle)
	}
	ct.mu.Lock()
	defer ct.mu.Unlock()
	if ct.released {
		return fmt.Errorf("%w: double release", ErrReleasedHandle)
	}
	ct.released = true
	if ct.rot != nil {
		ct.rot.Release()
		ct.rot = nil
	}
	if ct.prod != nil {
		ct.prod.Release()
		ct.prod = nil
	}
	if ct.ct != nil {
		if ct.pooled && ct.ctx != nil && ct.ctx.pool != nil {
			for _, p := range ct.ct.Polys {
				ct.ctx.pool.Put(p.C)
			}
		}
		ct.ct = nil
	}
	return nil
}

// components returns the handle's component (polynomial) count without
// forcing it: deferred rotation and multiplication outputs both
// materialize to the relinearized two-component form, so their size is
// known before any base conversion runs. Serialization size accounting
// (MarshaledBytes, the server's Content-Length hints) relies on this
// being exact for both handle kinds.
func (ct *Ciphertext) components() int {
	ct.mu.Lock()
	defer ct.mu.Unlock()
	if ct.ct != nil {
		return len(ct.ct.Polys)
	}
	return 2
}

// deferred returns the rotation handle while the ciphertext has not
// been materialized, else nil.
func (ct *Ciphertext) deferred() *bfv.RotatedNTT {
	ct.mu.Lock()
	defer ct.mu.Unlock()
	if ct.ct == nil {
		return ct.rot
	}
	return nil
}

// deferredProd returns the product handle while the ciphertext has not
// been materialized, else nil.
func (ct *Ciphertext) deferredProd() *bfv.ProductNTT {
	ct.mu.Lock()
	defer ct.mu.Unlock()
	if ct.ct == nil {
		return ct.prod
	}
	return nil
}

// operand returns the handle's form for the deferred multiplication
// pipeline: the live product handle when still deferred, else the
// materialized ciphertext. A released handle yields a nil interface
// (never a typed nil), which the callers map to ErrReleasedHandle.
func (ct *Ciphertext) operand() bfv.MulOperand {
	if p := ct.deferredProd(); p != nil {
		return p
	}
	if raw := ct.force(); raw != nil {
		return raw
	}
	return nil
}

// Degree returns the ciphertext degree (1 for fresh encryptions, 2 for
// unrelinearized products), or −1 for a released handle.
func (ct *Ciphertext) Degree() int {
	raw := ct.force()
	if raw == nil {
		return -1
	}
	return raw.Degree()
}

// Equal reports bitwise equality (forcing deferred forms first).
// Released handles compare equal to nothing, including each other.
func (ct *Ciphertext) Equal(o *Ciphertext) bool {
	if ct == nil || o == nil {
		return ct == o
	}
	a, b := ct.force(), o.force()
	if a == nil || b == nil {
		return false
	}
	return a.Equal(b)
}

// wrap binds a raw ciphertext to the context.
func (c *Context) wrap(ct *bfv.Ciphertext) *Ciphertext {
	return &Ciphertext{ctx: c, ct: ct}
}

// wrapDeferred binds a deferred rotation output to the context.
func (c *Context) wrapDeferred(rot *bfv.RotatedNTT) *Ciphertext {
	return &Ciphertext{ctx: c, rot: rot}
}

// wrapDeferredProd binds a deferred product output to the context.
func (c *Context) wrapDeferredProd(prod *bfv.ProductNTT) *Ciphertext {
	return &Ciphertext{ctx: c, prod: prod}
}

// own validates that ct belongs to this context and returns its
// materialized form.
func (c *Context) own(ct *Ciphertext) (*bfv.Ciphertext, error) {
	if err := c.requireOpen(); err != nil {
		return nil, err
	}
	if ct == nil {
		return nil, fmt.Errorf("%w: nil ciphertext", ErrNilHandle)
	}
	if ct.ctx != c {
		return nil, fmt.Errorf("%w: ciphertext from another context", ErrForeignHandle)
	}
	raw := ct.force()
	if raw == nil {
		return nil, fmt.Errorf("%w: use after release", ErrReleasedHandle)
	}
	return raw, nil
}

// ownAll validates and materializes a slice of handles.
func (c *Context) ownAll(cts []*Ciphertext) ([]*bfv.Ciphertext, error) {
	out := make([]*bfv.Ciphertext, len(cts))
	for i, ct := range cts {
		raw, err := c.own(ct)
		if err != nil {
			return nil, err
		}
		out[i] = raw
	}
	return out, nil
}

// rawCiphertext abbreviates the internal ciphertext type in facade
// plumbing signatures.
type rawCiphertext = bfv.Ciphertext

// newBFVPlaintext allocates an all-zero internal plaintext.
func newBFVPlaintext(c *Context) *bfv.Plaintext {
	return bfv.NewPlaintext(c.params)
}

// Plaintext is an opaque handle to an encoded (unencrypted) vector,
// bound to its Context.
type Plaintext struct {
	ctx *Context
	pt  *bfv.Plaintext
}

// ownPlain validates that pt belongs to this context.
func (c *Context) ownPlain(pt *Plaintext) (*bfv.Plaintext, error) {
	if err := c.requireOpen(); err != nil {
		return nil, err
	}
	if pt == nil {
		return nil, fmt.Errorf("%w: nil plaintext", ErrNilHandle)
	}
	if pt.ctx != c {
		return nil, fmt.Errorf("%w: plaintext from another context", ErrForeignHandle)
	}
	return pt.pt, nil
}
