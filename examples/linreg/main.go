// Encrypted linear-regression scoring: the paper's Figure 2(c) scenario.
// A model owner encrypts regression weights; users encrypt 3-feature
// samples; the PIM server computes ŷ = w·x homomorphically — it learns
// neither the model nor the data.
//
//	go run ./examples/linreg
package main

import (
	"fmt"
	"log"
	"math/big"

	"repro/internal/bfv"
	"repro/internal/hepim"
	"repro/internal/hestats"
	"repro/internal/pim"
	"repro/internal/sampling"
)

func main() {
	// Reduced ring (N=64) so the functional simulation of every
	// multiplication finishes in seconds; same 60-bit modulus class as
	// bfv.ParamsToy, with t=257 for headroom.
	q, _ := new(big.Int).SetString("1152921504606846883", 10)
	params, err := bfv.NewParameters(64, q, 257, 20)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("parameters:", params)

	src, err := sampling.NewSystemSource()
	if err != nil {
		log.Fatal(err)
	}
	kg := bfv.NewKeyGenerator(params, src)
	sk, pk := kg.GenKeyPair()
	rlk := kg.GenRelinKey(sk)
	enc := bfv.NewEncryptor(params, pk, src)
	dec := bfv.NewDecryptor(params, sk)

	// Model owner: y = 2·x1 + 3·x2 + 1·x3, weights encrypted.
	weights := []uint64{2, 3, 1}
	encW := make([]*bfv.Ciphertext, len(weights))
	for j, w := range weights {
		if encW[j], err = enc.EncryptValue(w); err != nil {
			log.Fatal(err)
		}
	}
	model := &hestats.LinRegModel{Weights: encW}

	// Users: four 3-feature samples, encrypted feature-wise.
	features := [][]uint64{
		{1, 1, 1},
		{4, 0, 2},
		{2, 5, 0},
		{0, 3, 7},
	}
	samples := make([][]*bfv.Ciphertext, len(features))
	for i, f := range features {
		samples[i] = make([]*bfv.Ciphertext, len(f))
		for j, x := range f {
			if samples[i][j], err = enc.EncryptValue(x); err != nil {
				log.Fatal(err)
			}
		}
	}

	// The PIM server scores all samples: 3 homomorphic multiplications +
	// a sum per sample, every polynomial product on the DPU kernels.
	cfg := pim.DefaultConfig()
	cfg.NumDPUs = 16
	srv, err := hepim.NewServer(cfg, params, rlk)
	if err != nil {
		log.Fatal(err)
	}
	preds, err := model.Predict(srv, samples)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("PIM server scored %d samples (%d kernel launches, %.3f ms modeled kernel time)\n",
		len(preds), len(srv.Reports), srv.ModeledSeconds()*1e3)

	for i, p := range preds {
		var want uint64
		for j := range weights {
			want += weights[j] * features[i][j]
		}
		got := dec.DecryptValue(p)
		status := "OK"
		if got != want {
			status = "MISMATCH"
		}
		fmt.Printf("  sample %d: encrypted prediction decrypts to %3d (expected %3d) %s\n",
			i, got, want, status)
		if got != want {
			log.Fatal("prediction mismatch")
		}
	}
	fmt.Println("OK: predictions computed under encryption")
}
