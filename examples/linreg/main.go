// Encrypted linear-regression scoring: the paper's Figure 2(c)
// scenario, through the facade. A model owner encrypts regression
// weights; users encrypt 3-feature samples; the hebfv "pim" backend
// computes ŷ = w·x homomorphically — it learns neither the model nor
// the data.
//
//	go run ./examples/linreg
package main

import (
	"fmt"
	"log"

	"repro/hebfv"
)

func main() {
	// Toy ring (N=64) so the functional simulation of every
	// multiplication finishes in seconds; t=257 gives the dot products
	// headroom.
	ctx, err := hebfv.New(
		hebfv.WithInsecureToyParameters(),
		hebfv.WithPlaintextModulus(257),
		hebfv.WithBackend("pim"),
		hebfv.WithPIMDPUs(16),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("context:", ctx)

	// Model owner: y = 2·x1 + 3·x2 + 1·x3, weights encrypted.
	weights := []uint64{2, 3, 1}
	encW := make([]*hebfv.Ciphertext, len(weights))
	for j, w := range weights {
		if encW[j], err = ctx.EncryptValue(w); err != nil {
			log.Fatal(err)
		}
	}

	// Users: four 3-feature samples, encrypted feature-wise.
	features := [][]uint64{
		{1, 1, 1},
		{4, 0, 2},
		{2, 5, 0},
		{0, 3, 7},
	}
	samples := make([][]*hebfv.Ciphertext, len(features))
	for i, f := range features {
		samples[i] = make([]*hebfv.Ciphertext, len(f))
		for j, x := range f {
			if samples[i][j], err = ctx.EncryptValue(x); err != nil {
				log.Fatal(err)
			}
		}
	}

	// The PIM backend scores all samples: 3 homomorphic multiplications
	// + a sum per sample, every polynomial product on the DPU kernels.
	preds := make([]*hebfv.Ciphertext, len(samples))
	for i, sample := range samples {
		prods := make([]*hebfv.Ciphertext, len(weights))
		for j := range weights {
			if prods[j], err = ctx.Mul(encW[j], sample[j]); err != nil {
				log.Fatal(err)
			}
		}
		if preds[i], err = ctx.Sum(prods); err != nil {
			log.Fatal(err)
		}
	}
	launches, seconds, _ := ctx.PIMReport()
	fmt.Printf("PIM backend scored %d samples (%d kernel launches, %.3f ms modeled kernel time)\n",
		len(preds), launches, seconds*1e3)

	for i, p := range preds {
		var want uint64
		for j := range weights {
			want += weights[j] * features[i][j]
		}
		got, err := ctx.DecryptValue(p)
		if err != nil {
			log.Fatal(err)
		}
		status := "OK"
		if got != want {
			status = "MISMATCH"
		}
		fmt.Printf("  sample %d: encrypted prediction decrypts to %3d (expected %3d) %s\n",
			i, got, want, status)
		if got != want {
			log.Fatal("prediction mismatch")
		}
	}
	fmt.Println("OK: predictions computed under encryption")
}
