// Encrypted linear-regression scoring through the NTT-resident
// multiplication pipeline: the paper's Figure 2(c) scenario, on the
// default double-CRT backend. A model owner encrypts regression weights;
// users encrypt 3-feature samples; the server computes ŷ = w·x
// homomorphically — it learns neither the model nor the data.
//
// The dot product is the deferred-Mul showcase: MulMany leaves every
// product NTT-resident (no base conversion per product), Sum folds the
// deferred handles in the RNS domain, and only the final prediction pays
// the conversion back to coefficients — transparently, with results
// bit-identical to the materialized pipeline. The same program on the
// "pim" backend runs every polynomial product on the simulated UPMEM
// kernels instead (examples/platformcompare shows that side).
//
//	go run ./examples/linreg
package main

import (
	"fmt"
	"log"
	"time"

	"repro/hebfv"
)

func main() {
	// Full-size parameters (the paper's 54-bit modulus at N=2048): the
	// deferred pipeline is a throughput optimization, so run it on the
	// real ring rather than a toy one. t=65537 batches slot-wise.
	ctx, err := hebfv.New(
		hebfv.WithSecurityLevel(54),
		hebfv.WithSeed(42),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("context:", ctx)

	// Model owner: y = 2·x1 + 3·x2 + 1·x3, weights encrypted.
	weights := []uint64{2, 3, 1}
	encW := make([]*hebfv.Ciphertext, len(weights))
	for j, w := range weights {
		if encW[j], err = ctx.EncryptValue(w); err != nil {
			log.Fatal(err)
		}
	}

	// Users: four 3-feature samples, encrypted feature-wise.
	features := [][]uint64{
		{1, 1, 1},
		{4, 0, 2},
		{2, 5, 0},
		{0, 3, 7},
	}
	samples := make([][]*hebfv.Ciphertext, len(features))
	for i, f := range features {
		samples[i] = make([]*hebfv.Ciphertext, len(f))
		for j, x := range f {
			if samples[i][j], err = ctx.Encrypt(ctx.EncodeValue(x)); err != nil {
				log.Fatal(err)
			}
		}
	}

	// Score all samples: MulMany computes the three weight·feature
	// products as deferred NTT-resident handles, Sum fuses the reduction
	// in the RNS domain — each prediction pays ONE base-conversion pair
	// instead of one per product.
	start := time.Now()
	preds := make([]*hebfv.Ciphertext, len(samples))
	for i, sample := range samples {
		prods, err := ctx.MulMany(encW, sample)
		if err != nil {
			log.Fatal(err)
		}
		if preds[i], err = ctx.Sum(prods); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("scored %d samples in %v (deferred NTT-resident pipeline)\n",
		len(preds), time.Since(start).Round(time.Microsecond))

	for i, p := range preds {
		var want uint64
		for j := range weights {
			want += weights[j] * features[i][j]
		}
		got, err := ctx.DecryptValue(p)
		if err != nil {
			log.Fatal(err)
		}
		status := "OK"
		if got != want {
			status = "MISMATCH"
		}
		fmt.Printf("  sample %d: encrypted prediction decrypts to %3d (expected %3d) %s\n",
			i, got, want, status)
		if got != want {
			log.Fatal("prediction mismatch")
		}
	}
	fmt.Println("OK: predictions computed under encryption, products deferred end to end")
}
