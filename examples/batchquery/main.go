// Batched query with hoisted rotations: a server holds several encrypted
// records and answers a "windowed aggregate" query — for each record,
// the sum of the record with k rotated copies of itself — the batched
// rotate-and-sum pipeline the paper's PIM workloads are shaped like.
//
// The BatchEvaluator hoists each record's key-switching digit
// decomposition (computed once, reused by all k Galois elements) and
// fuses the k key-switch reductions into one extended-basis accumulator,
// so the batch runs several times faster than per-rotation evaluation —
// while producing bit-identical ciphertexts, which this demo verifies.
//
//	go run ./examples/batchquery
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/bfv"
	"repro/internal/sampling"
)

func main() {
	params := bfv.ParamsSec54AtDegree(4096)
	fmt.Println("parameters:", params)

	src, err := sampling.NewSystemSource()
	if err != nil {
		log.Fatal(err)
	}
	kg := bfv.NewKeyGenerator(params, src)
	sk, pk := kg.GenKeyPair()
	enc := bfv.NewEncryptor(params, pk, src)
	dec := bfv.NewDecryptor(params, sk)

	// Galois keys for the window: the automorphisms X → X^(3^i).
	const rotations = 8
	gks := make([]*bfv.GaloisKey, rotations)
	g := uint64(1)
	for i := range gks {
		g = g * 3 % uint64(2*params.N)
		if gks[i], err = kg.GenGaloisKey(sk, g); err != nil {
			log.Fatal(err)
		}
	}

	// The server's batch: 4 encrypted records.
	const batch = 4
	records := make([]*bfv.Ciphertext, batch)
	plain := make([]*bfv.Plaintext, batch)
	for r := range records {
		pt := bfv.NewPlaintext(params)
		for i := range pt.Coeffs {
			pt.Coeffs[i] = uint64((i*(r+3) + r) % int(params.T))
		}
		plain[r] = pt
		if records[r], err = enc.Encrypt(pt); err != nil {
			log.Fatal(err)
		}
	}

	// Per-rotation evaluation: every rotation pays its own digit
	// decomposition.
	ev := bfv.NewEvaluator(params, nil)
	for _, gk := range gks { // exclude one-time key-form setup for every key
		if _, err := ev.ApplyGalois(records[0], gk); err != nil {
			log.Fatal(err)
		}
	}
	start := time.Now()
	serial := make([]*bfv.Ciphertext, batch)
	for r, ct := range records {
		acc := ct.Clone()
		for _, gk := range gks {
			rot, err := ev.ApplyGalois(ct, gk)
			if err != nil {
				log.Fatal(err)
			}
			acc = ev.Add(acc, rot)
		}
		serial[r] = acc
	}
	serialTime := time.Since(start)

	// Batched evaluation: one hoisted decomposition per record, one fused
	// reduction for all k rotations.
	be := bfv.NewBatchEvaluatorFrom(ev)
	start = time.Now()
	batched, err := be.RotateAndSum(records, gks)
	if err != nil {
		log.Fatal(err)
	}
	batchTime := time.Since(start)

	fmt.Printf("rotate-and-sum, %d records x %d rotations (n=%d):\n", batch, rotations, params.N)
	fmt.Printf("  per-rotation: %8.1f ms\n", serialTime.Seconds()*1e3)
	fmt.Printf("  hoisted:      %8.1f ms  (%.1fx)\n",
		batchTime.Seconds()*1e3, serialTime.Seconds()/batchTime.Seconds())

	// The two pipelines must agree bit for bit, and decrypt to the
	// plaintext rotate-and-sum reference.
	for r := range records {
		if !batched[r].Equal(serial[r]) {
			log.Fatalf("record %d: hoisted result differs from per-rotation evaluation", r)
		}
		want := plain[r]
		for _, gk := range gks {
			rotated := bfv.GaloisPlaintext(params, plain[r], gk.G)
			sum := bfv.NewPlaintext(params)
			for i := range sum.Coeffs {
				sum.Coeffs[i] = (want.Coeffs[i] + rotated.Coeffs[i]) % params.T
			}
			want = sum
		}
		got := dec.Decrypt(batched[r])
		for i := range want.Coeffs {
			if got.Coeffs[i] != want.Coeffs[i] {
				log.Fatalf("record %d: decrypted aggregate wrong at slot %d", r, i)
			}
		}
	}
	fmt.Println("OK: hoisted == per-rotation (bitwise), decryption matches the plaintext reference")
}
