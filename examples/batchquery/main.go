// Batched query with hoisted rotations, through the slot-level facade:
// a server holds several encrypted records and answers a "windowed
// aggregate" query — for each record, the sum of the record with k
// row-rotated copies of itself — the batched rotate-and-sum pipeline
// the paper's PIM workloads are shaped like.
//
// Callers speak in rotation steps; the facade maps steps to Galois
// elements, manages the Galois keys, hoists each record's key-switching
// digit decomposition (computed once, reused by all k steps) and fuses
// the k key-switch reductions into one extended-basis accumulator — so
// the batch runs several times faster than per-rotation evaluation
// while producing bit-identical ciphertexts, which this demo verifies.
//
//	go run ./examples/batchquery
package main

import (
	"fmt"
	"log"
	"time"

	"repro/hebfv"
)

func main() {
	ctx, err := hebfv.New(hebfv.WithSecurityLevel(54))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("context:", ctx)

	// The query window: rotations by steps 1..k.
	const rotations = 8
	steps := make([]int, rotations)
	for i := range steps {
		steps[i] = i + 1
	}

	// The server's batch: 4 encrypted records, values packed in slots.
	const batch = 4
	records := make([]*hebfv.Ciphertext, batch)
	plain := make([][]uint64, batch)
	t := ctx.PlaintextModulus()
	for r := range records {
		vals := make([]uint64, ctx.Slots())
		for i := range vals {
			vals[i] = uint64((i*(r+3) + r)) % t
		}
		plain[r] = vals
		if records[r], err = ctx.EncryptSlots(vals); err != nil {
			log.Fatal(err)
		}
	}

	// Per-rotation evaluation: every rotation pays its own digit
	// decomposition.
	if _, err := ctx.RotateRows(records[0], steps[0]); err != nil {
		log.Fatal(err) // warm the Galois keys and cached key forms
	}
	for _, k := range steps[1:] {
		if _, err := ctx.RotateRows(records[0], k); err != nil {
			log.Fatal(err)
		}
	}
	start := time.Now()
	serial := make([]*hebfv.Ciphertext, batch)
	for r, ct := range records {
		acc := ct
		for _, k := range steps {
			rot, err := ctx.RotateRows(ct, k)
			if err != nil {
				log.Fatal(err)
			}
			if acc, err = ctx.Add(acc, rot); err != nil {
				log.Fatal(err)
			}
		}
		serial[r] = acc
	}
	serialTime := time.Since(start)

	// Batched evaluation: one hoisted decomposition per record, one fused
	// reduction for all k rotations.
	start = time.Now()
	batched, err := ctx.RotateRowsAndSum(records, steps)
	if err != nil {
		log.Fatal(err)
	}
	batchTime := time.Since(start)

	fmt.Printf("rotate-and-sum, %d records x %d rotations (n=%d):\n", batch, rotations, ctx.N())
	fmt.Printf("  per-rotation: %8.1f ms\n", serialTime.Seconds()*1e3)
	fmt.Printf("  hoisted:      %8.1f ms  (%.1fx)\n",
		batchTime.Seconds()*1e3, serialTime.Seconds()/batchTime.Seconds())

	// The two pipelines must agree bit for bit, and decrypt to the
	// slot-level rotate-and-sum reference.
	row := ctx.RowSlots()
	for r := range records {
		if !batched[r].Equal(serial[r]) {
			log.Fatalf("record %d: hoisted result differs from per-rotation evaluation", r)
		}
		want := append([]uint64(nil), plain[r]...)
		for _, k := range steps {
			for i := range want {
				rr, col := i/row, i%row
				want[i] = (want[i] + plain[r][rr*row+(col+k)%row]) % t
			}
		}
		got, err := ctx.DecryptSlots(batched[r])
		if err != nil {
			log.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				log.Fatalf("record %d: decrypted aggregate wrong at slot %d", r, i)
			}
		}
	}
	fmt.Println("OK: hoisted == per-rotation (bitwise), decryption matches the slot-level reference")
}
