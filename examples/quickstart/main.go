// Quickstart: generate keys, encrypt two integers, add and multiply them
// homomorphically, and decrypt — the complete BFV flow in ~40 lines.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/bfv"
	"repro/internal/sampling"
)

func main() {
	// Toy parameters: fast, no security margin. Swap in
	// bfv.ParamsSec109() for the paper's 109-bit level.
	params := bfv.ParamsToy()
	fmt.Println("parameters:", params)

	src, err := sampling.NewSystemSource()
	if err != nil {
		log.Fatal(err)
	}
	kg := bfv.NewKeyGenerator(params, src)
	sk, pk := kg.GenKeyPair()
	rlk := kg.GenRelinKey(sk)

	enc := bfv.NewEncryptor(params, pk, src)
	dec := bfv.NewDecryptor(params, sk)
	eval := bfv.NewEvaluator(params, rlk)

	a, err := enc.EncryptValue(3)
	if err != nil {
		log.Fatal(err)
	}
	b, err := enc.EncryptValue(5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("encrypted 3 and 5 (each ciphertext: %d bytes for %d bytes of plain data)\n",
		params.CiphertextBytes(), params.PlaintextBytes())

	sum := eval.Add(a, b)
	fmt.Printf("3 + 5 = %d  (noise budget %d bits)\n",
		dec.DecryptValue(sum), dec.NoiseBudget(sum))

	prod, err := eval.Mul(a, b)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("3 * 5 = %d  (noise budget %d bits)\n",
		dec.DecryptValue(prod), dec.NoiseBudget(prod))

	// Computations compose: (3+5)*3 = 24 mod t.
	both, err := eval.Mul(sum, a)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("(3+5) * 3 = %d mod %d  (noise budget %d bits)\n",
		dec.DecryptValue(both), params.T, dec.NoiseBudget(both))
}
