// Quickstart: build a context, encrypt two integers, add and multiply
// them homomorphically, and decrypt — the complete BFV flow through the
// public hebfv facade in ~40 lines. The context manages every key;
// nothing but hebfv is imported.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/hebfv"
)

func main() {
	// Toy parameters: fast, no security margin. Swap in
	// hebfv.WithSecurityLevel(109) for the paper's 109-bit level.
	// t=16 leaves noise headroom for a two-deep multiplication chain.
	ctx, err := hebfv.New(
		hebfv.WithInsecureToyParameters(),
		hebfv.WithPlaintextModulus(16),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("context:", ctx)

	a, err := ctx.EncryptValue(3)
	if err != nil {
		log.Fatal(err)
	}
	b, err := ctx.EncryptValue(5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("encrypted 3 and 5 (each ciphertext: %d bytes)\n", ctx.CiphertextBytes())

	sum, err := ctx.Add(a, b)
	if err != nil {
		log.Fatal(err)
	}
	v, _ := ctx.DecryptValue(sum)
	budget, _ := ctx.NoiseBudget(sum)
	fmt.Printf("3 + 5 = %d  (noise budget %d bits)\n", v, budget)

	prod, err := ctx.Mul(a, b)
	if err != nil {
		log.Fatal(err)
	}
	v, _ = ctx.DecryptValue(prod)
	budget, _ = ctx.NoiseBudget(prod)
	fmt.Printf("3 * 5 = %d  (noise budget %d bits)\n", v, budget)

	// Computations compose: (3+5)*3 = 24 mod t.
	both, err := ctx.Mul(sum, a)
	if err != nil {
		log.Fatal(err)
	}
	v, _ = ctx.DecryptValue(both)
	budget, _ = ctx.NoiseBudget(both)
	fmt.Printf("(3+5) * 3 = %d mod %d  (noise budget %d bits)\n", v, ctx.PlaintextModulus(), budget)
}
