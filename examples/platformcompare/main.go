// Platform comparison: walk the paper's §4.2 microbenchmarks across all
// four platform models (CPU, PIM, CPU-SEAL, GPU) and print who wins
// where — the paper's two key takeaways in one run:
//
//   - addition: the PIM system's native 32-bit adders and 2,524-core
//     parallelism beat everything (Key Takeaway 1);
//
//   - multiplication: the missing 32-bit multiplier lets the GPU and the
//     NTT-based SEAL overtake PIM (Key Takeaway 2).
//
//     go run ./examples/platformcompare
package main

import (
	"fmt"
	"log"

	"repro/internal/bench"
	"repro/internal/perfmodel"
)

func main() {
	suite, err := bench.NewSuite()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println(bench.Render(suite.Fig1a()))
	fmt.Println(bench.Render(suite.Fig1b()))

	// Key Takeaway 1 & 2 in numbers:
	va := perfmodel.VectorSpec{Elems: 81920, N: 4096, W: 4}
	vm := perfmodel.VectorSpec{Elems: 20480, N: 4096, W: 4}
	fmt.Printf("Key Takeaway 1: 128-bit addition of %d ciphertexts — PIM is %.0fx faster than the CPU\n",
		va.Elems, suite.CPU.VectorAddSeconds(va)/suite.PIM.VectorAddSeconds(va))
	fmt.Printf("Key Takeaway 2: 128-bit multiplication of %d ciphertexts — the GPU is %.1fx faster than PIM\n",
		vm.Elems, suite.PIM.VectorMulSeconds(vm)/suite.GPU.VectorMulSeconds(vm))

	abl, err := suite.Ablations()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println(bench.Render(abl))
}
