// Platform comparison: walk the paper's §4.2 microbenchmarks across all
// four platform models (CPU, PIM, CPU-SEAL, GPU) and print who wins
// where — the paper's two key takeaways in one run:
//
//   - addition: the PIM system's native 32-bit adders and 2,524-core
//     parallelism beat everything (Key Takeaway 1);
//
//   - multiplication: the missing 32-bit multiplier lets the GPU and the
//     NTT-based SEAL overtake PIM (Key Takeaway 2).
//
// It then runs the sharded async execution plane (internal/pimsched)
// across a DPU-count sweep and prints how batched ciphertext addition
// scales from 1 DPU to the paper machine's full 2,524-DPU footprint:
// metered kernel cycles, host↔DPU transfer bytes, the pipelined
// makespan, and the speedup over the single-DPU point.
//
//	go run ./examples/platformcompare
package main

import (
	"fmt"
	"log"

	"repro/internal/bench"
	"repro/internal/perfmodel"
)

func main() {
	suite, err := bench.NewSuite()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println(bench.Render(suite.Fig1a()))
	fmt.Println(bench.Render(suite.Fig1b()))

	// Key Takeaway 1 & 2 in numbers:
	va := perfmodel.VectorSpec{Elems: 81920, N: 4096, W: 4}
	vm := perfmodel.VectorSpec{Elems: 20480, N: 4096, W: 4}
	fmt.Printf("Key Takeaway 1: 128-bit addition of %d ciphertexts — PIM is %.0fx faster than the CPU\n",
		va.Elems, suite.CPU.VectorAddSeconds(va)/suite.PIM.VectorAddSeconds(va))
	fmt.Printf("Key Takeaway 2: 128-bit multiplication of %d ciphertexts — the GPU is %.1fx faster than PIM\n",
		vm.Elems, suite.PIM.VectorMulSeconds(vm)/suite.GPU.VectorMulSeconds(vm))

	abl, err := suite.Ablations()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println(bench.Render(abl))

	// DPU scaling on the sharded async execution plane: the same
	// batched addition, metered end to end (kernel cycles + modeled
	// host↔DPU transfers with copy-in/launch overlap) as the topology
	// grows from one DPU to the full machine.
	_, rep, err := bench.MeasurePIMScale(nil, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("DPU scaling, batched ciphertext addition (pipelined makespan):")
	fmt.Printf("%6s %6s %8s %14s %12s %12s %10s\n",
		"n", "dpus", "ranks", "kernel cycles", "xfer bytes", "makespan", "speedup")
	base := map[int]float64{} // n -> 1-DPU pipelined makespan
	for _, p := range rep.Points {
		if p.DPUs == 1 {
			base[p.N] = p.OverlapSeconds
		}
	}
	for _, p := range rep.Points {
		fmt.Printf("%6d %6d %8d %14d %12d %11.3fms %9.1fx\n",
			p.N, p.DPUs, p.Ranks, p.KernelCycles, p.BytesIn+p.BytesOut,
			p.OverlapSeconds*1e3, base[p.N]/p.OverlapSeconds)
	}
}
