// Secure survey with SIMD batching: CRT batching packs many values into
// the slots of a single ciphertext, so one homomorphic addition
// aggregates an entire response sheet — the packing optimization SEAL
// exposes and the paper leaves as PIM future work.
//
// Scenario: respondents rate 8 questions 0–5; each response sheet is one
// ciphertext; the untrusted server adds the sheets; the analyst decrypts
// per-question totals.
//
//	go run ./examples/securesurvey
package main

import (
	"fmt"
	"log"
	"math/big"

	"repro/internal/bfv"
	"repro/internal/hepim"
	"repro/internal/pim"
	"repro/internal/sampling"
)

func main() {
	// Batching needs a prime t ≡ 1 (mod 2N): t=65537 works for N=64.
	q, _ := new(big.Int).SetString("1152921504606846883", 10)
	params, err := bfv.NewParameters(64, q, 65537, 20)
	if err != nil {
		log.Fatal(err)
	}
	be, err := bfv.NewBatchEncoder(params)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("parameters:", params)

	src, err := sampling.NewSystemSource()
	if err != nil {
		log.Fatal(err)
	}
	kg := bfv.NewKeyGenerator(params, src)
	sk, pk := kg.GenKeyPair()
	enc := bfv.NewEncryptor(params, pk, src)
	dec := bfv.NewDecryptor(params, sk)

	// 20 respondents, 8 questions each, packed one sheet per ciphertext.
	questions := 8
	responses := [][]uint64{}
	for r := 0; r < 20; r++ {
		sheet := make([]uint64, questions)
		for qi := range sheet {
			sheet[qi] = uint64((r*3 + qi*5 + 1) % 6)
		}
		responses = append(responses, sheet)
	}
	var cts []*bfv.Ciphertext
	for _, sheet := range responses {
		pt, err := be.Encode(sheet)
		if err != nil {
			log.Fatal(err)
		}
		ct, err := enc.Encrypt(pt)
		if err != nil {
			log.Fatal(err)
		}
		cts = append(cts, ct)
	}
	fmt.Printf("%d respondents packed %d answers each into one ciphertext apiece\n",
		len(cts), questions)

	// Untrusted aggregation on the PIM server: ONE sum over ciphertexts
	// aggregates all questions simultaneously (SIMD).
	cfg := pim.DefaultConfig()
	cfg.NumDPUs = 8
	srv, err := hepim.NewServer(cfg, params, nil)
	if err != nil {
		log.Fatal(err)
	}
	total, err := srv.Sum(cts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("PIM server aggregated all sheets in %.3f ms of modeled kernel time\n",
		srv.ModeledSeconds()*1e3)

	// The analyst decrypts per-question totals.
	slots := be.Decode(dec.Decrypt(total))
	for qi := 0; qi < questions; qi++ {
		var want uint64
		for _, sheet := range responses {
			want += sheet[qi]
		}
		status := "OK"
		if slots[qi] != want {
			status = "MISMATCH"
		}
		fmt.Printf("  question %d: total %3d (plaintext recomputation %3d) %s\n",
			qi, slots[qi], want, status)
		if slots[qi] != want {
			log.Fatal("aggregation mismatch")
		}
	}
	fmt.Println("OK: per-question totals recovered from a single SIMD aggregation")
}
