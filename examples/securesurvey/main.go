// Secure survey with SIMD batching, through the slot-level facade: CRT
// batching packs many values into the slots of a single ciphertext, so
// one homomorphic addition aggregates an entire response sheet — the
// packing optimization SEAL exposes and the paper leaves as PIM future
// work.
//
// Scenario: respondents rate 8 questions 0–5; each response sheet is
// one ciphertext; the untrusted server — the hebfv "pim" backend — adds
// the sheets; the analyst decrypts per-question totals.
//
//	go run ./examples/securesurvey
package main

import (
	"fmt"
	"log"

	"repro/hebfv"
)

func main() {
	// Toy ring (N=64) so the simulation runs instantly; the default
	// plaintext modulus 65537 supports batching at every degree.
	ctx, err := hebfv.New(
		hebfv.WithInsecureToyParameters(),
		hebfv.WithBackend("pim"),
		hebfv.WithPIMDPUs(8),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("context:", ctx)

	// 20 respondents, 8 questions each, packed one sheet per ciphertext.
	questions := 8
	responses := [][]uint64{}
	for r := 0; r < 20; r++ {
		sheet := make([]uint64, questions)
		for qi := range sheet {
			sheet[qi] = uint64((r*3 + qi*5 + 1) % 6)
		}
		responses = append(responses, sheet)
	}
	var cts []*hebfv.Ciphertext
	for _, sheet := range responses {
		ct, err := ctx.EncryptSlots(sheet)
		if err != nil {
			log.Fatal(err)
		}
		cts = append(cts, ct)
	}
	fmt.Printf("%d respondents packed %d answers each into one ciphertext apiece\n",
		len(cts), questions)

	// Untrusted aggregation on the PIM backend: ONE sum over ciphertexts
	// aggregates all questions simultaneously (SIMD).
	total, err := ctx.Sum(cts)
	if err != nil {
		log.Fatal(err)
	}
	_, seconds, _ := ctx.PIMReport()
	fmt.Printf("PIM backend aggregated all sheets in %.3f ms of modeled kernel time\n", seconds*1e3)

	// The analyst decrypts per-question totals.
	slots, err := ctx.DecryptSlots(total)
	if err != nil {
		log.Fatal(err)
	}
	for qi := 0; qi < questions; qi++ {
		var want uint64
		for _, sheet := range responses {
			want += sheet[qi]
		}
		status := "OK"
		if slots[qi] != want {
			status = "MISMATCH"
		}
		fmt.Printf("  question %d: total %3d (plaintext recomputation %3d) %s\n",
			qi, slots[qi], want, status)
		if slots[qi] != want {
			log.Fatal("aggregation mismatch")
		}
	}
	fmt.Println("OK: per-question totals recovered from a single SIMD aggregation")
}
