// Private mean: the paper's Figure 2(a) scenario end to end, through
// the public facade. Many users encrypt a private reading (e.g. a
// salary or a sensor value); the PIM-equipped server — selected as the
// hebfv "pim" backend — aggregates the ciphertexts without ever
// decrypting; the analyst decrypts only the final sum and divides.
//
//	go run ./examples/privatemean
package main

import (
	"fmt"
	"log"

	"repro/hebfv"
)

func main() {
	// The paper's 54-bit level; the default plaintext modulus t = 65537
	// keeps the aggregate of all readings below t (no wraparound).
	ctx, err := hebfv.New(
		hebfv.WithSecurityLevel(54),
		hebfv.WithBackend("pim"),
		hebfv.WithPIMDPUs(64),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("context:", ctx)

	// 64 users each encrypt one private reading in [0, 1000).
	users := 64
	readings := make([]uint64, users)
	cts := make([]*hebfv.Ciphertext, users)
	var trueSum uint64
	for i := range cts {
		readings[i] = uint64((i*137 + 41) % 1000)
		trueSum += readings[i]
		if cts[i], err = ctx.EncryptValue(readings[i]); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("%d users encrypted their readings (%d KiB of ciphertext total)\n",
		users, users*ctx.CiphertextBytes()/1024)

	// The server: a simulated UPMEM PIM system behind the backend
	// registry. The reduction runs as DPU kernels; the evaluation side
	// never needs a secret key.
	encSum, err := ctx.Sum(cts)
	if err != nil {
		log.Fatal(err)
	}
	launches, seconds, _ := ctx.PIMReport()
	fmt.Printf("PIM backend aggregated %d ciphertexts in %.3f ms of modeled kernel time (%d kernel launches)\n",
		users, seconds*1e3, launches)

	// The analyst decrypts the single result ciphertext.
	sum, err := ctx.DecryptValue(encSum)
	if err != nil {
		log.Fatal(err)
	}
	got := float64(sum) / float64(users)
	want := float64(trueSum) / float64(users)
	fmt.Printf("decrypted mean: %.4f (plaintext recomputation: %.4f)\n", got, want)
	if got != want {
		log.Fatal("mean mismatch — homomorphic aggregation failed")
	}
	fmt.Println("OK: the server computed the mean without seeing any reading")
}
