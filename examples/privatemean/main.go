// Private mean: the paper's Figure 2(a) scenario end to end. Many users
// encrypt a private reading (e.g. a salary or a sensor value); the
// PIM-equipped server aggregates the ciphertexts without ever decrypting;
// the analyst decrypts only the final sum and divides.
//
//	go run ./examples/privatemean
package main

import (
	"fmt"
	"log"
	"math/big"

	"repro/internal/bfv"
	"repro/internal/hepim"
	"repro/internal/hestats"
	"repro/internal/pim"
	"repro/internal/sampling"
)

func main() {
	// The paper's 54-bit level with plaintext modulus t = 65537, so the
	// aggregate of all readings stays below t (no plaintext wraparound).
	q, _ := new(big.Int).SetString("18014398509481951", 10)
	params, err := bfv.NewParameters(2048, q, 65537, 18)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("parameters:", params)

	src, err := sampling.NewSystemSource()
	if err != nil {
		log.Fatal(err)
	}
	kg := bfv.NewKeyGenerator(params, src)
	sk, pk := kg.GenKeyPair()
	enc := bfv.NewEncryptor(params, pk, src)
	dec := bfv.NewDecryptor(params, sk)

	// 64 users each encrypt one private reading in [0, 1000).
	users := 64
	readings := make([]uint64, users)
	cts := make([]*bfv.Ciphertext, users)
	var trueSum uint64
	for i := range cts {
		readings[i] = uint64((i*137 + 41) % 1000)
		trueSum += readings[i]
		ct, err := enc.EncryptValue(readings[i])
		if err != nil {
			log.Fatal(err)
		}
		cts[i] = ct
	}
	fmt.Printf("%d users encrypted their readings (%d KiB of ciphertext total)\n",
		users, users*params.CiphertextBytes()/1024)

	// The server: a simulated UPMEM PIM system. The reduction runs as DPU
	// kernels; the server never holds a key.
	cfg := pim.DefaultConfig()
	cfg.NumDPUs = 64
	srv, err := hepim.NewServer(cfg, params, nil)
	if err != nil {
		log.Fatal(err)
	}
	encMean, err := hestats.Mean(srv, cts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("PIM server aggregated %d ciphertexts in %.3f ms of modeled kernel time (%d kernel launches)\n",
		users, srv.ModeledSeconds()*1e3, len(srv.Reports))

	// The analyst decrypts the single result ciphertext.
	got := encMean.Decrypt(dec)
	want := float64(trueSum) / float64(users)
	fmt.Printf("decrypted mean: %.4f (plaintext recomputation: %.4f)\n", got, want)
	if got != want {
		log.Fatal("mean mismatch — homomorphic aggregation failed")
	}
	fmt.Println("OK: the server computed the mean without seeing any reading")
}
