// Package repro reproduces "Evaluating Homomorphic Operations on a
// Real-World Processing-In-Memory System" (Gupta, Kabra, Gómez-Luna,
// Kanellopoulos, Mutlu; IISWC 2023, arXiv:2309.06545) as a Go library:
// a from-scratch BFV somewhat-homomorphic encryption implementation, a
// cycle-level simulator of the first-generation UPMEM PIM system, the
// paper's CPU / CPU-SEAL / GPU baselines as calibrated analytic models,
// and a benchmark harness that regenerates every figure of the paper's
// evaluation.
//
// # Public API: package hebfv
//
// The public surface of the library is the hebfv package — a
// scheme-level facade with context-managed keys, slot-level rotations,
// versioned serialization, and pluggable evaluation backends selected
// by name ("dcrt-native", "dcrt-legacy", "schoolbook", "pim", "auto"). Every
// scheme-level consumer — all examples that touch BFV, cmd/hepim-bench's
// evaluation figures, and the served front end the roadmap plans —
// builds against hebfv only. (cmd/hepim and cmd/pimsim remain thin
// demos of the internal wire formats and the raw PIM simulator;
// examples/platformcompare drives only the analytic platform models.)
//
// Everything under internal/ is private by policy as well as by Go
// visibility: the packages below are implementation layers whose APIs
// may change freely between commits, and new consumers must go through
// the facade (adding whatever the facade lacks) rather than reaching
// around it.
//
// # Evaluation backends
//
// Host-side BFV evaluation runs on a double-CRT (RNS + NTT) backend
// (internal/dcrt): each R_q polynomial is represented by its residues
// modulo word-sized NTT-friendly primes and kept in the NTT domain, so
// ring products are pointwise O(n) per limb instead of O(n²·W²) limb
// schoolbook, and the BFV tensor product runs in an extended basis wide
// enough that the exact integer coefficients never wrap — making the
// backend bit-identical to the schoolbook path. Limb channels execute on
// a bounded process-wide worker pool; twiddle tables and contexts are
// cached per (q, n).
//
// Between operations, evaluation stays inside the RNS domain. The BFV
// tensor rescaling ⌊t·x/q⌉ runs RNS-native (internal/dcrt.ScaleRounder):
// a fast base conversion out of the extended basis — γᵢ Shoup passes, a
// 128-bit fixed-point lift counter, and word-sized Barrett arithmetic
// modulo q (one or two 64-bit words for every paper modulus) — yields
// t·x mod q, and the rounded quotient follows by exact per-limb division
// (t·xᵢ − r)·q⁻¹ mod pᵢ. The basis is sized two bits beyond the
// exactness requirement so the quarter-shifted conversion's fixed-point
// estimate is provably exact (not approximate: results stay bit-identical
// to the schoolbook oracle; see internal/dcrt/baseconv.go). Key-switching
// digits decompose by limb shifts, and ciphertexts are NTT-resident —
// centered double-CRT forms are cached per component, so chained
// Mul/Rotate and squarings never repeat the decompose + forward-NTT round
// trip; coefficient form is materialized only at decryption and
// serialization boundaries. No big.Int arithmetic remains on the
// unmetered multiply/relinearize path.
//
// # Batched evaluation and hoisted rotations
//
// The paper's PIM workloads are inherently batched — many ciphertexts
// flowing through the same kernels — and bfv.BatchEvaluator is that
// front end: MulMany/AddMany/RotateMany/RotateAndSum run pipelines over
// ciphertext slices, scheduling per-ciphertext tasks on the same bounded
// pool the per-limb work uses (the pool is nestable: submitters help
// drain the queue instead of blocking, so batch- and limb-level
// parallelism compose without oversubscription or deadlock).
//
// Rotations use the decompose-then-permute convention on every backend:
// c1 is digit-decomposed first, and the Galois automorphism τ_g — a pure
// NTT-slot permutation in double-CRT form (internal/dcrt.GaloisNTTIndices)
// — is applied to the digits inside the key-switching accumulation. The
// digit set is therefore independent of g, which enables hoisting
// (bfv.Evaluator.Hoist): one decomposition serves every Galois element,
// so k rotations of a ciphertext pay 1 decomposition instead of k, and
// rotate-and-sum aggregations additionally fuse all k key-switching
// reductions into one extended-basis accumulator. Hoisted outputs are
// bit-identical to per-rotation ApplyGalois, which is bit-identical to
// the schoolbook oracle and the PIM server.
//
// Rotation outputs can additionally stay NTT-resident
// (bfv.RotatedNTT / BatchEvaluator.RotateManyNTT): the two per-output
// base conversions — the cost that capped hoisted RotateMany at ~1.4×
// over serial rotation — are deferred until a consumer forces
// coefficients, and sums of deferred outputs fuse entirely in the NTT
// domain. Multiplication outputs defer the same way (bfv.ProductNTT /
// Evaluator.MulNTT / BatchEvaluator.MulManyNTT): a relinearized
// product's two components are exact integers in the extended basis —
// the rescaled tensor part plus the key-switching accumulator — held as
// residue-domain accumulators until forced, so deferred products Add in
// the RNS domain (a MulMany-then-Sum dot product pays one conversion
// pair for the whole reduction) and chain into further multiplications
// through a centered-mod-q re-entry that never packs coefficients. The
// hebfv facade threads both transparently: a deferred handle
// materializes on first decrypt/serialize/incompatible-arithmetic
// touch, bit-identically.
//
// # Kernel architecture: lazy reduction and fusion
//
// The scalar kernels under internal/ntt and internal/dcrt are organized
// around Harvey-style lazy reduction with explicit bound contracts, so
// reduction work is paid once per pipeline rather than once per op:
//
//   - ForwardLazy emits NTT values in [0, 4q) (two butterfly layers
//     merged per memory pass, bounds-check-free inner loops); Forward
//     adds the single folding pass that restores < q.
//   - InverseLazy emits [0, 2q) — the n⁻¹ scaling is folded into the
//     last butterfly stage, so no separate scaling pass runs at all —
//     and Inverse adds one conditional-subtraction pass.
//   - The base-conversion γ pass, the scale-and-round division, and the
//     pointwise Barrett products all accept lazy inputs exactly, so
//     Convolve and the evaluator pipelines run transform→multiply→
//     transform with one reduction per coefficient end to end.
//   - Key switching folds its whole digit sum in one fused pass per
//     component (ntt.MulAddPair128 / GaloisAccPair128): per slot, the
//     digit×key products accumulate lazily in 128 bits — digits may
//     carry the 4q transform bound — and a single Barrett reduction
//     lands the sum below q. The binding invariant is the reduction's
//     q·2⁶⁴ validity domain, enforced by ntt.Acc128Capacity (for the
//     paper's shapes: exactly the three-digit key switch in one fold).
//   - Key-switching accumulators are far smaller integers than tensor
//     components, so their digit transforms and accumulation run on a
//     basis prefix only and the missing limb channels are recovered by
//     an exact residue-domain base extension (dcrt.ExtendResidues) —
//     trading transforms for one word-level recombination pass.
//
// Values above q therefore appear, by design, in: digit NTT forms
// (< 4p unfolded on the deferred path, < 2p folded elsewhere), lazy
// inverse-transform outputs (< 2p), deferred product accumulators
// (< 2p), and deferred-chain operand forms (< 4p); every kernel
// documents which lazy bound it accepts, and the property tests in
// internal/ntt pin the bounds at the 60-bit prime ceiling with inputs
// at 0, q−1, 2q−1 and 4q−1.
//
// # Vectorized kernels and runtime dispatch
//
// The hot scalar kernels above have hand-written Go-assembly
// counterparts (internal/ntt, amd64): AVX-512 implementations of the
// forward/inverse lazy butterfly passes, the pointwise Barrett and
// Shoup products, the fused 128-bit digit accumulators
// (MulAddPair128 / GaloisAccPair128) and the limb-loop primitives
// (MulShoupLazyVec / MulPairAddVec), plus AVX2 tiers for the kernels
// whose arithmetic fits 256-bit lanes (the butterfly passes and the
// Shoup product). Dispatch is decided once at process start from CPUID
// (internal/cpufeat) and consulted per call through internal/ntt's
// dispatch table; the scalar kernels remain compiled-in on every
// platform as the always-available oracle, and non-amd64 builds
// (including NEON hosts, until an arm64 tier lands) run them
// exclusively. The vector kernels honor the same lazy-bound contracts
// as the scalar ones and are bit-identical to them — not merely
// numerically close — on every input inside the documented domains.
//
// The dispatch decision is overridable without rebuilding: the
// HEPIM_VECTOR environment variable (or ntt.SetVectorMode) forces
// "off"/"scalar", "avx2", "avx512" or "auto", and unsupported or
// unknown requests fall back to scalar with a note recorded in
// ntt.EnvNote. CI runs the differential-race job and the allocation
// gates twice — HEPIM_VECTOR=off and auto — so a divergence on either
// path fails exactly one matrix leg. `hepim-bench -kernels` prints the
// host's detected features, the live per-kernel dispatch, and measured
// scalar vs vector ns/op; the same table is embedded in
// BENCH_dcrt.json (schema v6, "dispatch" section).
//
// Verifying a new vector kernel, in order:
//
//  1. State the bound contract first: maximum input magnitude (q, 2q,
//     4q, or any-uint64 for Shoup), output bound, and the reduction's
//     validity domain (Barrett: x < q·2⁶⁴). The scalar kernel's doc
//     comment is the contract; the vector kernel must match it exactly.
//  2. Add the kernel to ntt's dispatch table with its scalar fallback
//     and tier predicates, so forcing HEPIM_VECTOR=off|avx2|avx512
//     exercises every path through the same entry point.
//  3. Pin bit-identity against the scalar oracle in
//     internal/ntt/vector_test.go under forEachVectorMode: adversarial
//     lanes (0, 1, q−1, q, 2q−1, 2q, 4q−1, bound−1), non-lane-multiple
//     tails, and every (m, step) geometry the pass dispatcher can
//     select — small n values reach pass shapes that n=4096 never does.
//  4. Extend FuzzForwardLazyVector (or add a sibling fuzz target) if
//     the kernel transforms whole vectors; byte-driven inputs catch
//     carry-chain bugs that structured tests miss.
//  5. Keep it allocation-free — the alloc gate runs in both dispatch
//     modes — and confirm `hepim-bench -kernels` reports the expected
//     path and a speedup worth the assembly.
//  6. Only then wire it into the limb loops (internal/dcrt), and
//     re-run the full differential suite in both forced modes: the
//     end-to-end EvalMul/rotation parity tests are the final word.
//
// Decryption is RNS-native on the same machinery: the phase c0 + c1·s
// (+ c2·s²) accumulates on cached NTT forms and the exact t/q rounding
// folds to mod t per limb (internal/dcrt.ScaleRounder.RoundModT), leaving
// no big.Int on the unmetered decrypt path either; the big.Int path
// survives as the pinned rounding oracle (bfv.Decryptor.DecryptBigInt).
//
// The O(n²) schoolbook path remains authoritative in two places: any
// bfv.Evaluator with a limb32.Meter attached runs it, because its
// instruction stream is what the PIM cost model counts (the paper's
// kernels deliberately do not use the NTT, §3); and it is the
// correctness oracle the double-CRT backend is differentially tested
// against (bfv.NewSchoolbookEvaluator).
//
// # Error contract and fault tolerance
//
// The facade's error contract is typed and panic-free: hebfv's public
// entry points recover internal panics into errors, blob rejection is
// hebfv.ErrCorruptBlob (deserialization validates magic, version,
// parameters and coefficient canonicity, and is fuzz-tested), and
// secret-key operations on evaluation-only contexts are
// hebfv.ErrNoSecretKey. See the hebfv package docs for the full
// taxonomy.
//
// Fault tolerance is built on a deterministic injector
// (internal/faultinject): a fault decision is a pure function of
// (seed, site, key), so chaos runs reproduce exactly. The simulated
// PIM system (internal/pim) models transient DPU faults (bounded retry
// with backoff), permanent DPU death (shards re-dispatch to
// survivors), and stragglers (modeled-cycle inflation); the kernel
// drivers in internal/pim/kernels re-stage and re-launch until the
// retry budget runs out, and pim.FaultStats counts the toll. The
// host-side worker pool (internal/dcrt) isolates task panics — a
// panicking task poisons only its own job, surfaces as a typed
// *dcrt.PanicError at the submitter, and leaves the pool serviceable —
// verified under the race detector with nested submissions. When the
// PIM backend degrades beyond its retry budget, the hebfv context
// fails over to the host backend and replays the operation,
// bit-identically. Reproducible chaos runs are scriptable:
//
//	hepim-bench -faults transient=0.1,dead=0.01,straggler=0.05
//	hepim-bench -faults dead=1 -fault-seed 11   # total DPU loss: exercises failover
//
// # PIM at scale: the sharded async execution plane
//
// internal/pimsched is the multi-DPU execution plane: it shards
// batched kernel work across an explicit rank topology and models the
// asynchronous host↔DPU pipeline the UPMEM runtime exposes. A
// pimsched.Topology is ranks × DPUs-per-rank (64 per rank, the real
// machine's granularity; FitTopology rounds a DPU budget down to whole
// ranks, so 2524 functional DPUs schedule as 39×64). The transfer cost
// model layers on the simulator's CostModel DMA pricing with the
// machine's two-level bus: DPUs within one rank load in parallel (one
// rank-wide transfer costs the slowest member), while distinct ranks
// serialize on the host memory bus.
//
// Execution is double-buffered at rank granularity — MRAM staging is
// single-buffered per DPU, so overlap happens across ranks, not within
// one: while rank r's shards execute, rank r+1's CopyToDPU streams in
// behind them, and the modeled makespan is the maximum over overlap
// lanes rather than the sum of phases. Two structural identities pin
// the model and are enforced by test and by the CI paper-validation
// gate: a single-rank topology has one transfer lane, so its pipelined
// makespan exactly equals the serialized one; and any multi-rank
// topology's pipelined makespan is strictly below serial. The plane is
// bit-identical to host evaluation — sharding, gathering and overlap
// are scheduling, never arithmetic — and deterministic under the fault
// injector: a dead DPU re-shards its work onto survivors through the
// same single-dispatcher path, so chaos runs reproduce exactly.
//
// internal/hepim drives BFV batches through the plane
// (NewServerWithTopology) and aggregates per-launch pimsched.Reports;
// hebfv surfaces the result as Context.PIMBreakdown — shards, launches,
// kernel cycles, per-direction transfer seconds and bytes, pipelined vs
// serialized makespan, and energy split by kernel vs transfer. The
// topology is selectable from the facade (WithPIMTopology,
// WithPIMOverlap) and from hepim-bench.
//
// A fifth registry backend, "auto", is the first heterogeneous
// scheduler: singleton ops stay on the host, while batched ops
// (Sum, RotateMany, RotateAndSum, MulMany, AddMany) route between the
// dcrt-native host and the PIM plane by comparing a measured host
// seconds-per-item estimate against the PIM plane's modeled makespan
// delta per item. The first batch of a family probes the host, the
// second probes PIM, and subsequent batches follow the cheaper side;
// every decision (target, reason, both estimates) is recorded in
// Context.AutoStats. A fault-class PIM failure retires the plane for
// the session and replays on the host, bit-identically.
//
// `hepim-bench -fig pim-scale -pim-json BENCH_pim.json` regenerates
// the tracked DPU-count sweep (1 → 2560 DPUs at n=2048 and n=4096,
// overlap on vs off, host-oracle identity checked at every point). The
// checked-in validation table (internal/bench/testdata/
// paper_validation.json) pins the sweep's metered cycle and byte
// counts exactly and its modeled makespans within a relative
// tolerance; CI regenerates the points and gates against it. The table
// gates on this repository's own metered values — the reproduction
// meters its own cost model rather than the paper's hardware — and
// each entry carries the paper's reported figures for the matching
// regime as context, so drift from the paper stays visible next to
// the gate.
//
// # Served evaluation plane
//
// The deployment model the paper assumes — clients hold keys, an
// evaluation server computes on ciphertexts it can never decrypt — is
// runnable: cmd/hebfvd serves the hebfv facade over HTTP, with the
// reusable pieces in repro/hebfv/serve. A tenant is an onboarded
// evaluation-only key set, identified by its SHA-256 fingerprint
// (hebfv.Context.KeySetHash, equal on both ends of the wire); the
// server keeps tenants in an LRU context cache under a byte budget
// (singleflight construction, Context.Close on eviction), coalesces
// concurrent single-op requests into the facade's batch pipelines
// (AddMany / MulMany / RotateRowsEach) within a bounded window, and
// streams ciphertext bodies in O(chunk) memory with exact
// Content-Length from MarshaledBytes. Results are bit-identical to
// local evaluation — coalescing is scheduling, never approximation.
// Backpressure is typed: per-tenant quota exhaustion is HTTP 429,
// global overload 503, corrupt blobs 400, unknown tenants 404, with
// machine-readable error codes throughout (serve.HTTPStatus is the
// contract). Topology: clients ↔ hebfvd over HTTP; hebfvd evaluates on
// any registry backend (-backend pim runs the modeled PIM system
// behind the same endpoints).
//
// Quickstart (two shells):
//
//	hebfvd -addr :8443                         # n=4096, dcrt-native
//	hebfv-loadgen -addr http://localhost:8443 -check
//
// hebfv-loadgen onboards simulated tenants, drives add/mul/rotate in a
// closed or open loop, verifies every response byte-for-byte against
// local evaluation (-check), and reports p50/p99 latency and ops/sec;
// `hebfv-loadgen -json BENCH_serve.json` emits the tracked serving
// report (schema repro/serve-loadgen/v2, internal/bench). v2 adds the
// GC axis: the loadgen diffs the server's /v1/stats memory counters
// across the run and reports server-side allocs/bytes per op, the GC
// pause tail, and the decode-pool recycling counters.
//
// # Memory management and handle lifecycle
//
// The serving path is zero-copy at steady state. Every hebfv.Context
// owns a size-classed pool of ciphertext coefficient backings
// (internal/polypool): Context.ReadCiphertext decodes straight into
// pooled backings — the only staging is the serializer's fixed 32 KiB
// chunk buffer — and Ciphertext.Release returns them for the next
// decode to reuse. At n=4096 one two-component ciphertext is 128 KiB
// of backing, so recycling the request traffic is the difference
// between a server that allocates per request and one that reaches a
// steady state; BENCH_serve.json's GC axis measures the win
// (>=30% fewer bytes allocated per op on the add/mul/rotate paths).
//
// Release is required only for handles from ReadCiphertext /
// UnmarshalCiphertext, and hebfvd's handlers call it automatically
// once the response is flushed — a released handle fails every
// subsequent use with hebfv.ErrReleasedHandle rather than corrupting a
// recycled backing. Retention is bounded per context
// (hebfv.WithPoolRetention, 32 MiB default; hebfvd -pool-mb;
// 0 disables retention for A/B runs), Context.Close drains the pool
// (the serve cache's eviction path, leak-checked in CI), and
// Context.PoolStats / the server's /v1/stats expose the
// gets/puts/hits/misses/in-use balance. Evaluation outputs are not
// pooled: engine results are freshly allocated and never alias their
// inputs.
//
// The root package holds the per-figure benchmarks (bench_test.go); the
// public API lives in hebfv/, the implementation under internal/ (see
// DESIGN.md for the map) and the runnable entry points under cmd/ and
// examples/. Evaluation-layer performance is
// tracked by `hepim-bench -fig dcrt -dcrt-json BENCH_dcrt.json` (v6:
// EvalMul incl. deferred Mul chains, batched-rotation, decryption and
// raw-kernel axes plus the SIMD dispatch table, measured through the
// hebfv backend registry and restrictable with -backend) and gated in
// CI by cmd/benchdiff against
// .github/bench-baseline.txt — a blocking job, now paired with an
// allocation-regression gate over the steady-state kernels. To profile
// the kernels from the CLI:
//
//	hepim-bench -fig dcrt -backend dcrt-native -cpuprofile cpu.out
//	go tool pprof -top cpu.out
//	hepim-bench -fig batch -memprofile mem.out
//	go tool pprof -alloc_space mem.out
package repro
