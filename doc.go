// Package repro reproduces "Evaluating Homomorphic Operations on a
// Real-World Processing-In-Memory System" (Gupta, Kabra, Gómez-Luna,
// Kanellopoulos, Mutlu; IISWC 2023, arXiv:2309.06545) as a Go library:
// a from-scratch BFV somewhat-homomorphic encryption implementation, a
// cycle-level simulator of the first-generation UPMEM PIM system, the
// paper's CPU / CPU-SEAL / GPU baselines as calibrated analytic models,
// and a benchmark harness that regenerates every figure of the paper's
// evaluation.
//
// The root package holds the per-figure benchmarks (bench_test.go); the
// implementation lives under internal/ (see DESIGN.md for the map) and
// the runnable entry points under cmd/ and examples/.
package repro
