// Package repro reproduces "Evaluating Homomorphic Operations on a
// Real-World Processing-In-Memory System" (Gupta, Kabra, Gómez-Luna,
// Kanellopoulos, Mutlu; IISWC 2023, arXiv:2309.06545) as a Go library:
// a from-scratch BFV somewhat-homomorphic encryption implementation, a
// cycle-level simulator of the first-generation UPMEM PIM system, the
// paper's CPU / CPU-SEAL / GPU baselines as calibrated analytic models,
// and a benchmark harness that regenerates every figure of the paper's
// evaluation.
//
// # Evaluation backends
//
// Host-side BFV evaluation runs on a double-CRT (RNS + NTT) backend
// (internal/dcrt): each R_q polynomial is represented by its residues
// modulo word-sized NTT-friendly primes and kept in the NTT domain, so
// ring products are pointwise O(n) per limb instead of O(n²·W²) limb
// schoolbook, and the BFV tensor product runs in an extended basis wide
// enough that the exact integer coefficients never wrap — making the
// backend bit-identical to the schoolbook path. Limb channels execute on
// a bounded process-wide worker pool; twiddle tables and contexts are
// cached per (q, n).
//
// Between operations, evaluation stays inside the RNS domain. The BFV
// tensor rescaling ⌊t·x/q⌉ runs RNS-native (internal/dcrt.ScaleRounder):
// a fast base conversion out of the extended basis — γᵢ Shoup passes, a
// 128-bit fixed-point lift counter, and word-sized Barrett arithmetic
// modulo q (one or two 64-bit words for every paper modulus) — yields
// t·x mod q, and the rounded quotient follows by exact per-limb division
// (t·xᵢ − r)·q⁻¹ mod pᵢ. The basis is sized two bits beyond the
// exactness requirement so the quarter-shifted conversion's fixed-point
// estimate is provably exact (not approximate: results stay bit-identical
// to the schoolbook oracle; see internal/dcrt/baseconv.go). Key-switching
// digits decompose by limb shifts, and ciphertexts are NTT-resident —
// centered double-CRT forms are cached per component, so chained
// Mul/Rotate and squarings never repeat the decompose + forward-NTT round
// trip; coefficient form is materialized only at decryption and
// serialization boundaries. No big.Int arithmetic remains on the
// unmetered multiply/relinearize path.
//
// The O(n²) schoolbook path remains authoritative in two places: any
// bfv.Evaluator with a limb32.Meter attached runs it, because its
// instruction stream is what the PIM cost model counts (the paper's
// kernels deliberately do not use the NTT, §3); and it is the
// correctness oracle the double-CRT backend is differentially tested
// against (bfv.NewSchoolbookEvaluator).
//
// The root package holds the per-figure benchmarks (bench_test.go); the
// implementation lives under internal/ (see DESIGN.md for the map) and
// the runnable entry points under cmd/ and examples/. Evaluation-layer
// performance is tracked by `hepim-bench -fig dcrt -dcrt-json
// BENCH_dcrt.json`.
package repro
