// Package repro reproduces "Evaluating Homomorphic Operations on a
// Real-World Processing-In-Memory System" (Gupta, Kabra, Gómez-Luna,
// Kanellopoulos, Mutlu; IISWC 2023, arXiv:2309.06545) as a Go library:
// a from-scratch BFV somewhat-homomorphic encryption implementation, a
// cycle-level simulator of the first-generation UPMEM PIM system, the
// paper's CPU / CPU-SEAL / GPU baselines as calibrated analytic models,
// and a benchmark harness that regenerates every figure of the paper's
// evaluation.
//
// # Evaluation backends
//
// Host-side BFV evaluation runs on a double-CRT (RNS + NTT) backend
// (internal/dcrt): each R_q polynomial is represented by its residues
// modulo word-sized NTT-friendly primes and kept in the NTT domain, so
// ring products are pointwise O(n) per limb instead of O(n²·W²) limb
// schoolbook, and the BFV tensor product runs in an extended basis wide
// enough that the exact integer coefficients never wrap — making the
// backend bit-identical to the schoolbook path. Limb channels execute on
// a bounded process-wide worker pool; twiddle tables and contexts are
// cached per (q, n).
//
// The O(n²) schoolbook path remains authoritative in two places: any
// bfv.Evaluator with a limb32.Meter attached runs it, because its
// instruction stream is what the PIM cost model counts (the paper's
// kernels deliberately do not use the NTT, §3); and it is the
// correctness oracle the double-CRT backend is differentially tested
// against (bfv.NewSchoolbookEvaluator).
//
// The root package holds the per-figure benchmarks (bench_test.go); the
// implementation lives under internal/ (see DESIGN.md for the map) and
// the runnable entry points under cmd/ and examples/. Evaluation-layer
// performance is tracked by `hepim-bench -fig dcrt -dcrt-json
// BENCH_dcrt.json`.
package repro
