// Command hebfv-loadgen drives a running hebfvd evaluation server with
// a multi-tenant homomorphic workload and reports per-op latency
// quantiles (p50/p99) and throughput, optionally emitting the tracked
// BENCH_serve.json (see internal/bench).
//
// Each simulated tenant generates its own keys locally, onboards the
// evaluation-only export, and submits add/mul/rotate requests over
// pre-encrypted operands. With -check every response is compared
// byte-for-byte against the same operation evaluated locally — the
// end-to-end bit-identity guarantee of the served plane.
//
// Usage:
//
//	hebfv-loadgen -addr http://localhost:8443                # closed loop: 2 tenants x 2 workers, 3s
//	hebfv-loadgen -tenants 4 -conc 4 -duration 10s -check
//	hebfv-loadgen -mode open -rate 200                       # open loop: 200 req/s offered load
//	hebfv-loadgen -sec 109 -json BENCH_serve.json            # emit the tracking report
//	hebfv-loadgen -toy                                       # against hebfvd -toy, for smoke tests
//
// The parameter preset (-sec/-toy) must match the server's.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/hebfv"
	"repro/internal/bench"
)

var ops = []string{"add", "mul", "rotate"}

// tenant is one simulated key-owning client: its context (secret key
// held locally), its onboarded fingerprint, its request bodies and the
// locally evaluated expected responses.
type tenant struct {
	fingerprint string
	bodies      map[string][]byte // op -> request body (concatenated ciphertext records)
	expected    map[string][]byte // op -> expected response bytes
}

func main() {
	addr := flag.String("addr", "http://localhost:8443", "hebfvd base URL")
	sec := flag.Int("sec", 109, "security preset: 27, 54 or 109 bits (must match the server)")
	toy := flag.Bool("toy", false, "insecure N=64 toy parameters (must match the server)")
	tenants := flag.Int("tenants", 2, "simulated key-owning clients")
	conc := flag.Int("conc", 2, "closed-loop workers per tenant")
	duration := flag.Duration("duration", 3*time.Second, "measured run length")
	mode := flag.String("mode", "closed", "load model: closed (conc workers back-to-back) | open (Poisson-less fixed rate)")
	rate := flag.Float64("rate", 100, "open-loop offered load, requests/second across all tenants")
	check := flag.Bool("check", false, "verify every response byte-for-byte against local evaluation")
	seed := flag.Uint64("seed", 1, "deterministic key/plaintext seed base")
	jsonPath := flag.String("json", "", "write the tracking report to this path (e.g. BENCH_serve.json)")
	flag.Parse()

	client := &http.Client{Timeout: 60 * time.Second}
	ts := make([]*tenant, *tenants)
	var n int
	for i := range ts {
		t, ringN, err := newTenant(client, *addr, *sec, *toy, *seed+uint64(i))
		if err != nil {
			log.Fatalf("hebfv-loadgen: tenant %d: %v", i, err)
		}
		ts[i], n = t, ringN
	}
	log.Printf("hebfv-loadgen: onboarded %d tenants (n=%d) at %s", len(ts), n, *addr)

	var (
		mu        sync.Mutex
		latencies = map[string][]time.Duration{}
		rejected  atomic.Int64
		mismatch  atomic.Int64
		failures  atomic.Int64
	)
	record := func(op string, d time.Duration) {
		mu.Lock()
		latencies[op] = append(latencies[op], d)
		mu.Unlock()
	}
	// one request: post the op, stream the response, verify if asked.
	shoot := func(t *tenant, op string) {
		url := fmt.Sprintf("%s/v1/eval/%s?keyset=%s", *addr, op, t.fingerprint)
		if op == "rotate" {
			url += "&k=1"
		}
		start := time.Now()
		resp, err := client.Post(url, "application/octet-stream", bytes.NewReader(t.bodies[op]))
		if err != nil {
			failures.Add(1)
			return
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		elapsed := time.Since(start)
		switch {
		case err != nil || resp.StatusCode == http.StatusOK && len(body) == 0:
			failures.Add(1)
		case resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable:
			rejected.Add(1) // backpressure, not failure: the quota worked
		case resp.StatusCode != http.StatusOK:
			failures.Add(1)
			log.Printf("hebfv-loadgen: %s: HTTP %d: %s", op, resp.StatusCode, body)
		default:
			record(op, elapsed)
			if *check && !bytes.Equal(body, t.expected[op]) {
				mismatch.Add(1)
			}
		}
	}

	start := time.Now()
	deadline := start.Add(*duration)
	var wg sync.WaitGroup
	if *mode == "open" {
		interval := time.Duration(float64(time.Second) / *rate)
		slots := make(chan struct{}, 256) // bound the outstanding-request pile-up
		for i := 0; time.Now().Before(deadline); i++ {
			slots <- struct{}{}
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				defer func() { <-slots }()
				shoot(ts[i%len(ts)], ops[i%len(ops)])
			}(i)
			time.Sleep(interval)
		}
	} else {
		for ti, t := range ts {
			for w := 0; w < *conc; w++ {
				wg.Add(1)
				go func(t *tenant, src *rand.Rand) {
					defer wg.Done()
					for time.Now().Before(deadline) {
						shoot(t, ops[src.Intn(len(ops))])
					}
				}(t, rand.New(rand.NewSource(int64(*seed)+int64(ti*100+w))))
			}
		}
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := &bench.ServeReport{
		Schema:      "repro/serve-loadgen/v1",
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		Backend:     hebfv.DefaultBackend,
		N:           n,
		Mode:        *mode,
		Tenants:     *tenants,
		Concurrency: *conc,
		DurationSec: elapsed.Seconds(),
		Rejections:  rejected.Load(),
		Checked:     *check,
		Mismatches:  mismatch.Load(),
	}
	if *mode == "open" {
		rep.RatePerSec = *rate
	}
	for _, op := range ops {
		p := bench.ServePointFrom(op, latencies[op], elapsed)
		rep.TotalOps += p.Count
		rep.Points = append(rep.Points, p)
	}
	if elapsed > 0 {
		rep.TotalOpsPerSec = float64(rep.TotalOps) / elapsed.Seconds()
	}

	fmt.Printf("%-8s %8s %10s %10s %10s %12s\n", "op", "count", "p50", "p99", "mean", "ops/sec")
	for _, p := range rep.Points {
		fmt.Printf("%-8s %8d %9dµs %9dµs %9dµs %12.1f\n",
			p.Op, p.Count, p.P50Micros, p.P99Micros, p.MeanMicros, p.OpsPerSec)
	}
	fmt.Printf("total: %d ops in %.2fs (%.1f ops/sec), %d rejected (429/503), %d failures",
		rep.TotalOps, elapsed.Seconds(), rep.TotalOpsPerSec, rejected.Load(), failures.Load())
	if *check {
		fmt.Printf(", %d mismatches", mismatch.Load())
	}
	fmt.Println()

	if *jsonPath != "" {
		if err := bench.WriteServeJSON(*jsonPath, rep); err != nil {
			log.Fatalf("hebfv-loadgen: %v", err)
		}
		log.Printf("hebfv-loadgen: wrote %s", *jsonPath)
	}
	if failures.Load() > 0 || mismatch.Load() > 0 || rep.TotalOps == 0 {
		os.Exit(1)
	}
}

// newTenant builds one client: local keys, onboarded evaluation-only
// export, pre-encrypted operands and locally evaluated expected
// responses for every op.
func newTenant(client *http.Client, addr string, sec int, toy bool, seed uint64) (*tenant, int, error) {
	opts := []hebfv.Option{hebfv.WithSeed(seed), hebfv.WithRotations(1)}
	if toy {
		opts = append(opts, hebfv.WithInsecureToyParameters())
	} else {
		opts = append(opts, hebfv.WithSecurityLevel(sec))
	}
	ctx, err := hebfv.New(opts...)
	if err != nil {
		return nil, 0, err
	}

	// Onboard: the sha256 hint routes concurrent duplicate onboards into
	// the server's singleflight; the body streams straight from the
	// export.
	fp := ctx.KeySetHash()
	var keys bytes.Buffer
	if err := ctx.ExportKeysTo(&keys, false); err != nil {
		return nil, 0, err
	}
	resp, err := client.Post(fmt.Sprintf("%s/v1/keysets?sha256=%x", addr, fp[:]),
		"application/octet-stream", &keys)
	if err != nil {
		return nil, 0, err
	}
	msg, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, 0, fmt.Errorf("onboarding: HTTP %d: %s", resp.StatusCode, msg)
	}

	// Operands: two deterministic slot vectors, encrypted once and
	// reused for every request of this tenant.
	va := make([]uint64, ctx.Slots())
	vb := make([]uint64, ctx.Slots())
	for i := range va {
		va[i] = (seed*31 + uint64(i)*7) % ctx.PlaintextModulus()
		vb[i] = (seed*17 + uint64(i)*13) % ctx.PlaintextModulus()
	}
	cta, err := ctx.EncryptSlots(va)
	if err != nil {
		return nil, 0, err
	}
	ctb, err := ctx.EncryptSlots(vb)
	if err != nil {
		return nil, 0, err
	}
	blobA, err := cta.MarshalBinary()
	if err != nil {
		return nil, 0, err
	}
	blobB, err := ctb.MarshalBinary()
	if err != nil {
		return nil, 0, err
	}

	t := &tenant{
		fingerprint: fmt.Sprintf("%x", fp[:]),
		bodies: map[string][]byte{
			"add":    append(append([]byte{}, blobA...), blobB...),
			"mul":    append(append([]byte{}, blobA...), blobB...),
			"rotate": blobA,
		},
		expected: map[string][]byte{},
	}
	// Local evaluation pins the expected response bytes: server-side
	// coalesced batches are bit-identical to the single-op calls.
	for op, eval := range map[string]func() (*hebfv.Ciphertext, error){
		"add":    func() (*hebfv.Ciphertext, error) { return ctx.Add(cta, ctb) },
		"mul":    func() (*hebfv.Ciphertext, error) { return ctx.Mul(cta, ctb) },
		"rotate": func() (*hebfv.Ciphertext, error) { return ctx.RotateRows(cta, 1) },
	} {
		out, err := eval()
		if err != nil {
			return nil, 0, err
		}
		if t.expected[op], err = out.MarshalBinary(); err != nil {
			return nil, 0, err
		}
	}
	return t, ctx.N(), nil
}
