// Command hebfv-loadgen drives a running hebfvd evaluation server with
// a multi-tenant homomorphic workload and reports per-op latency
// quantiles (p50/p99) and throughput, optionally emitting the tracked
// BENCH_serve.json (see internal/bench).
//
// Each simulated tenant generates its own keys locally, onboards the
// evaluation-only export, and submits add/mul/rotate requests over
// pre-encrypted operands. With -check every response is compared
// byte-for-byte against the same operation evaluated locally — the
// end-to-end bit-identity guarantee of the served plane.
//
// The report (schema v2) carries a server-side GC axis: /v1/stats
// memory and pool counters are snapshotted before and after the
// measured window and diffed into allocs/op, bytes/op, GC pause p99
// and the decode-pool hit rate — the zero-copy serving path's
// measured effect.
//
// Usage:
//
//	hebfv-loadgen -addr http://localhost:8443                # closed loop: 2 tenants x 2 workers, 3s
//	hebfv-loadgen -tenants 4 -conc 4 -duration 10s -check
//	hebfv-loadgen -mode open -rate 200                       # open loop: 200 req/s offered load
//	hebfv-loadgen -sec 109 -json BENCH_serve.json            # emit the tracking report
//	hebfv-loadgen -toy                                       # against hebfvd -toy, for smoke tests
//
// The parameter preset (-sec/-toy) must match the server's.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/hebfv"
	"repro/hebfv/serve"
	"repro/internal/bench"
)

var ops = []string{"add", "mul", "rotate"}

// tenant is one simulated key-owning client: its context (secret key
// held locally), its onboarded fingerprint, its request bodies and the
// locally evaluated expected responses.
type tenant struct {
	fingerprint string
	bodies      map[string][]byte // op -> request body (concatenated ciphertext records)
	expected    map[string][]byte // op -> expected response bytes
}

func main() {
	addr := flag.String("addr", "http://localhost:8443", "hebfvd base URL")
	sec := flag.Int("sec", 109, "security preset: 27, 54 or 109 bits (must match the server)")
	toy := flag.Bool("toy", false, "insecure N=64 toy parameters (must match the server)")
	tenants := flag.Int("tenants", 2, "simulated key-owning clients")
	conc := flag.Int("conc", 2, "closed-loop workers per tenant")
	duration := flag.Duration("duration", 3*time.Second, "measured run length")
	mode := flag.String("mode", "closed", "load model: closed (conc workers back-to-back) | open (Poisson-less fixed rate)")
	rate := flag.Float64("rate", 100, "open-loop offered load, requests/second across all tenants")
	check := flag.Bool("check", false, "verify every response byte-for-byte against local evaluation")
	seed := flag.Uint64("seed", 1, "deterministic key/plaintext seed base")
	jsonPath := flag.String("json", "", "write the tracking report to this path (e.g. BENCH_serve.json)")
	flag.Parse()

	client := &http.Client{Timeout: 60 * time.Second}
	ts := make([]*tenant, *tenants)
	var n int
	for i := range ts {
		t, ringN, err := newTenant(client, *addr, *sec, *toy, *seed+uint64(i))
		if err != nil {
			log.Fatalf("hebfv-loadgen: tenant %d: %v", i, err)
		}
		ts[i], n = t, ringN
	}
	log.Printf("hebfv-loadgen: onboarded %d tenants (n=%d) at %s", len(ts), n, *addr)

	var (
		mu        sync.Mutex
		latencies = map[string][]time.Duration{}
		rejected  atomic.Int64
		mismatch  atomic.Int64
		failures  atomic.Int64
	)
	record := func(op string, d time.Duration) {
		mu.Lock()
		latencies[op] = append(latencies[op], d)
		mu.Unlock()
	}
	// one request: post the op, stream the response, verify if asked.
	shoot := func(t *tenant, op string) {
		url := fmt.Sprintf("%s/v1/eval/%s?keyset=%s", *addr, op, t.fingerprint)
		if op == "rotate" {
			url += "&k=1"
		}
		start := time.Now()
		resp, err := client.Post(url, "application/octet-stream", bytes.NewReader(t.bodies[op]))
		if err != nil {
			failures.Add(1)
			return
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		elapsed := time.Since(start)
		switch {
		case err != nil || resp.StatusCode == http.StatusOK && len(body) == 0:
			failures.Add(1)
		case resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable:
			rejected.Add(1) // backpressure, not failure: the quota worked
		case resp.StatusCode != http.StatusOK:
			failures.Add(1)
			log.Printf("hebfv-loadgen: %s: HTTP %d: %s", op, resp.StatusCode, body)
		default:
			record(op, elapsed)
			if *check && !bytes.Equal(body, t.expected[op]) {
				mismatch.Add(1)
			}
		}
	}

	// GC axis (schema v2): snapshot the server's memory and pool
	// counters around the measured window; the diff is the server-side
	// churn the run caused.
	statsBefore, statsErr := fetchStats(client, *addr)
	if statsErr != nil {
		log.Printf("hebfv-loadgen: /v1/stats unavailable, GC axis skipped: %v", statsErr)
	}

	start := time.Now()
	deadline := start.Add(*duration)
	var wg sync.WaitGroup
	if *mode == "open" {
		interval := time.Duration(float64(time.Second) / *rate)
		slots := make(chan struct{}, 256) // bound the outstanding-request pile-up
		for i := 0; time.Now().Before(deadline); i++ {
			slots <- struct{}{}
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				defer func() { <-slots }()
				shoot(ts[i%len(ts)], ops[i%len(ops)])
			}(i)
			time.Sleep(interval)
		}
	} else {
		for ti, t := range ts {
			for w := 0; w < *conc; w++ {
				wg.Add(1)
				go func(t *tenant, src *rand.Rand) {
					defer wg.Done()
					for time.Now().Before(deadline) {
						shoot(t, ops[src.Intn(len(ops))])
					}
				}(t, rand.New(rand.NewSource(int64(*seed)+int64(ti*100+w))))
			}
		}
	}
	wg.Wait()
	elapsed := time.Since(start)
	var statsAfter *serve.ServerStats
	if statsErr == nil {
		if statsAfter, statsErr = fetchStats(client, *addr); statsErr != nil {
			log.Printf("hebfv-loadgen: closing /v1/stats snapshot failed, GC axis skipped: %v", statsErr)
		}
	}

	rep := &bench.ServeReport{
		Schema:      "repro/serve-loadgen/v2",
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		Backend:     hebfv.DefaultBackend,
		N:           n,
		Mode:        *mode,
		Tenants:     *tenants,
		Concurrency: *conc,
		DurationSec: elapsed.Seconds(),
		Rejections:  rejected.Load(),
		Checked:     *check,
		Mismatches:  mismatch.Load(),
	}
	if *mode == "open" {
		rep.RatePerSec = *rate
	}
	for _, op := range ops {
		p := bench.ServePointFrom(op, latencies[op], elapsed)
		rep.TotalOps += p.Count
		rep.Points = append(rep.Points, p)
	}
	if elapsed > 0 {
		rep.TotalOpsPerSec = float64(rep.TotalOps) / elapsed.Seconds()
	}
	rep.GC = gcAxis(statsBefore, statsAfter, rep.TotalOps)

	fmt.Printf("%-8s %8s %10s %10s %10s %12s\n", "op", "count", "p50", "p99", "mean", "ops/sec")
	for _, p := range rep.Points {
		fmt.Printf("%-8s %8d %9dµs %9dµs %9dµs %12.1f\n",
			p.Op, p.Count, p.P50Micros, p.P99Micros, p.MeanMicros, p.OpsPerSec)
	}
	fmt.Printf("total: %d ops in %.2fs (%.1f ops/sec), %d rejected (429/503), %d failures",
		rep.TotalOps, elapsed.Seconds(), rep.TotalOpsPerSec, rejected.Load(), failures.Load())
	if *check {
		fmt.Printf(", %d mismatches", mismatch.Load())
	}
	fmt.Println()
	if rep.GC != nil {
		fmt.Printf("server GC: %.0f allocs/op, %.0f bytes/op, %d collections, pause p99 %dµs, pool hit rate %.1f%% (in use %d, retained %s)\n",
			rep.GC.AllocsPerOp, rep.GC.BytesPerOp, rep.GC.NumGC, rep.GC.GCPauseP99Micros,
			rep.GC.PoolHitRate*100, rep.GC.PoolInUse, fmtBytes(rep.GC.PoolRetainedBytes))
	}

	if *jsonPath != "" {
		if err := bench.WriteServeJSON(*jsonPath, rep); err != nil {
			log.Fatalf("hebfv-loadgen: %v", err)
		}
		log.Printf("hebfv-loadgen: wrote %s", *jsonPath)
	}
	if failures.Load() > 0 || mismatch.Load() > 0 || rep.TotalOps == 0 {
		os.Exit(1)
	}
}

// fetchStats reads the server's /v1/stats payload.
func fetchStats(client *http.Client, addr string) (*serve.ServerStats, error) {
	resp, err := client.Get(addr + "/v1/stats")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("/v1/stats: HTTP %d", resp.StatusCode)
	}
	var st serve.ServerStats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}

// gcAxis diffs the two /v1/stats snapshots into the schema-v2 GC
// section. It returns nil when either snapshot is missing or the run
// evaluated nothing.
func gcAxis(before, after *serve.ServerStats, ops int) *bench.ServeGCStats {
	if before == nil || after == nil || ops == 0 {
		return nil
	}
	gc := &bench.ServeGCStats{
		AllocsPerOp:       float64(after.Mem.Mallocs-before.Mem.Mallocs) / float64(ops),
		BytesPerOp:        float64(after.Mem.TotalAllocBytes-before.Mem.TotalAllocBytes) / float64(ops),
		NumGC:             after.Mem.NumGC - before.Mem.NumGC,
		PoolInUse:         after.Pool.InUse,
		PoolRetainedBytes: after.Pool.RetainedBytes,
	}
	if gets := after.Pool.Gets - before.Pool.Gets; gets > 0 {
		gc.PoolHitRate = float64(after.Pool.Hits-before.Pool.Hits) / float64(gets)
	}
	// The pause ring holds the last ≤256 pauses; take the window's share.
	if pauses := after.Mem.RecentPausesNs; gc.NumGC > 0 && len(pauses) > 0 {
		k := int(gc.NumGC)
		if k > len(pauses) {
			k = len(pauses)
		}
		window := make([]time.Duration, k)
		for i, ns := range pauses[len(pauses)-k:] {
			window[i] = time.Duration(ns)
		}
		gc.GCPauseP99Micros = bench.Quantile(window, 0.99).Microseconds()
	}
	return gc
}

// fmtBytes renders a byte count with a binary unit.
func fmtBytes(b int64) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(b)/(1<<10))
	}
	return fmt.Sprintf("%dB", b)
}

// newTenant builds one client: local keys, onboarded evaluation-only
// export, pre-encrypted operands and locally evaluated expected
// responses for every op.
func newTenant(client *http.Client, addr string, sec int, toy bool, seed uint64) (*tenant, int, error) {
	opts := []hebfv.Option{hebfv.WithSeed(seed), hebfv.WithRotations(1)}
	if toy {
		opts = append(opts, hebfv.WithInsecureToyParameters())
	} else {
		opts = append(opts, hebfv.WithSecurityLevel(sec))
	}
	ctx, err := hebfv.New(opts...)
	if err != nil {
		return nil, 0, err
	}

	// Onboard: the sha256 hint routes concurrent duplicate onboards into
	// the server's singleflight; the body streams straight from the
	// export.
	fp := ctx.KeySetHash()
	var keys bytes.Buffer
	if err := ctx.ExportKeysTo(&keys, false); err != nil {
		return nil, 0, err
	}
	resp, err := client.Post(fmt.Sprintf("%s/v1/keysets?sha256=%x", addr, fp[:]),
		"application/octet-stream", &keys)
	if err != nil {
		return nil, 0, err
	}
	msg, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, 0, fmt.Errorf("onboarding: HTTP %d: %s", resp.StatusCode, msg)
	}

	// Operands: two deterministic slot vectors, encrypted once and
	// reused for every request of this tenant.
	va := make([]uint64, ctx.Slots())
	vb := make([]uint64, ctx.Slots())
	for i := range va {
		va[i] = (seed*31 + uint64(i)*7) % ctx.PlaintextModulus()
		vb[i] = (seed*17 + uint64(i)*13) % ctx.PlaintextModulus()
	}
	cta, err := ctx.EncryptSlots(va)
	if err != nil {
		return nil, 0, err
	}
	ctb, err := ctx.EncryptSlots(vb)
	if err != nil {
		return nil, 0, err
	}
	blobA, err := cta.MarshalBinary()
	if err != nil {
		return nil, 0, err
	}
	blobB, err := ctb.MarshalBinary()
	if err != nil {
		return nil, 0, err
	}

	t := &tenant{
		fingerprint: fmt.Sprintf("%x", fp[:]),
		bodies: map[string][]byte{
			"add":    append(append([]byte{}, blobA...), blobB...),
			"mul":    append(append([]byte{}, blobA...), blobB...),
			"rotate": blobA,
		},
		expected: map[string][]byte{},
	}
	// Local evaluation pins the expected response bytes: server-side
	// coalesced batches are bit-identical to the single-op calls.
	for op, eval := range map[string]func() (*hebfv.Ciphertext, error){
		"add":    func() (*hebfv.Ciphertext, error) { return ctx.Add(cta, ctb) },
		"mul":    func() (*hebfv.Ciphertext, error) { return ctx.Mul(cta, ctb) },
		"rotate": func() (*hebfv.Ciphertext, error) { return ctx.RotateRows(cta, 1) },
	} {
		out, err := eval()
		if err != nil {
			return nil, 0, err
		}
		if t.expected[op], err = out.MarshalBinary(); err != nil {
			return nil, 0, err
		}
	}
	return t, ctx.N(), nil
}
