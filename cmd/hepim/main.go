// Command hepim is a small CLI for the BFV library: generate keys,
// encrypt values, run homomorphic operations on ciphertext files, and
// decrypt — the full client/server flow of the paper's deployment model.
//
// Usage:
//
//	hepim keygen -out secret.key
//	hepim encrypt -key secret.key -value 7 -out a.ct
//	hepim encrypt -key secret.key -value 5 -out b.ct
//	hepim add -in a.ct -in b.ct -out sum.ct        # runs on the PIM simulator
//	hepim mul -in a.ct -in b.ct -out prod.ct       # runs on the PIM simulator
//	hepim decrypt -key secret.key -in sum.ct
package main

import (
	"flag"
	"fmt"
	"math/big"
	"os"

	"repro/internal/bfv"
	"repro/internal/hepim"
	"repro/internal/pim"
	"repro/internal/sampling"
)

type multiFlag []string

func (m *multiFlag) String() string     { return fmt.Sprint(*m) }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "keygen":
		err = keygen(args)
	case "encrypt":
		err = encrypt(args)
	case "add", "mul":
		err = evaluate(cmd, args)
	case "decrypt":
		err = decrypt(args)
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "hepim:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: hepim keygen|encrypt|add|mul|decrypt [flags]")
	os.Exit(2)
}

// params is the fixed CLI parameter set: the paper's 54-bit modulus over
// a reduced ring (N=256) so every CLI operation completes in seconds on
// the functional simulator. It supports addition chains and one
// multiplication. (No security margin — this is a demo tool.)
func params() *bfv.Parameters {
	q, _ := new(big.Int).SetString("18014398509481951", 10)
	p, err := bfv.NewParameters(256, q, 65537, 18)
	if err != nil {
		panic(err)
	}
	return p
}

func keygen(args []string) error {
	fs := flag.NewFlagSet("keygen", flag.ExitOnError)
	out := fs.String("out", "secret.key", "output file for the secret key")
	fs.Parse(args)
	src, err := sampling.NewSystemSource()
	if err != nil {
		return err
	}
	kg := bfv.NewKeyGenerator(params(), src)
	sk := kg.GenSecretKey()
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := sk.Serialize(f); err != nil {
		return err
	}
	fmt.Printf("wrote secret key (%s) for %v\n", *out, params())
	return nil
}

func loadKeys(keyPath string) (*bfv.SecretKey, *bfv.PublicKey, *bfv.RelinKey, error) {
	f, err := os.Open(keyPath)
	if err != nil {
		return nil, nil, nil, err
	}
	defer f.Close()
	sk, err := bfv.ReadSecretKey(f, params())
	if err != nil {
		return nil, nil, nil, err
	}
	// Public and relinearization keys are derived fresh from the secret
	// key with new randomness: any public key for the same secret
	// produces interoperable ciphertexts.
	src, err := sampling.NewSystemSource()
	if err != nil {
		return nil, nil, nil, err
	}
	kg := bfv.NewKeyGenerator(params(), src)
	pk := kg.GenPublicKey(sk)
	rlk := kg.GenRelinKey(sk)
	return sk, pk, rlk, nil
}

func encrypt(args []string) error {
	fs := flag.NewFlagSet("encrypt", flag.ExitOnError)
	key := fs.String("key", "secret.key", "secret key file")
	value := fs.Uint64("value", 0, "value to encrypt (mod t)")
	out := fs.String("out", "out.ct", "output ciphertext file")
	fs.Parse(args)
	_, pk, _, err := loadKeys(*key)
	if err != nil {
		return err
	}
	src, err := sampling.NewSystemSource()
	if err != nil {
		return err
	}
	enc := bfv.NewEncryptor(params(), pk, src)
	ct, err := enc.EncryptValue(*value)
	if err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := ct.Serialize(f); err != nil {
		return err
	}
	fmt.Printf("encrypted %d -> %s (%d bytes of ciphertext for %d bytes of plain data)\n",
		*value, *out, params().CiphertextBytes(), params().PlaintextBytes())
	return nil
}

func readCt(path string) (*bfv.Ciphertext, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return bfv.ReadCiphertext(f, params())
}

func evaluate(op string, args []string) error {
	fs := flag.NewFlagSet(op, flag.ExitOnError)
	var ins multiFlag
	fs.Var(&ins, "in", "input ciphertext file (repeat twice)")
	out := fs.String("out", "out.ct", "output ciphertext file")
	key := fs.String("key", "secret.key", "secret key file (for the relinearization key)")
	dpus := fs.Int("dpus", 64, "simulated DPUs to use")
	fs.Parse(args)
	if len(ins) != 2 {
		return fmt.Errorf("%s needs exactly two -in files", op)
	}
	ct0, err := readCt(ins[0])
	if err != nil {
		return err
	}
	ct1, err := readCt(ins[1])
	if err != nil {
		return err
	}

	var rlk *bfv.RelinKey
	if op == "mul" {
		_, _, r, err := loadKeys(*key)
		if err != nil {
			return err
		}
		rlk = r
	}
	cfg := pim.DefaultConfig()
	cfg.NumDPUs = *dpus
	srv, err := hepim.NewServer(cfg, params(), rlk)
	if err != nil {
		return err
	}
	var res *bfv.Ciphertext
	if op == "add" {
		res, err = srv.Add(ct0, ct1)
	} else {
		res, err = srv.Mul(ct0, ct1)
	}
	if err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := res.Serialize(f); err != nil {
		return err
	}
	fmt.Printf("%s(%s, %s) -> %s on %d simulated DPUs (modeled kernel time %.4g ms)\n",
		op, ins[0], ins[1], *out, *dpus, srv.ModeledSeconds()*1e3)
	return nil
}

func decrypt(args []string) error {
	fs := flag.NewFlagSet("decrypt", flag.ExitOnError)
	key := fs.String("key", "secret.key", "secret key file")
	in := fs.String("in", "out.ct", "ciphertext file")
	fs.Parse(args)
	sk, _, _, err := loadKeys(*key)
	if err != nil {
		return err
	}
	ct, err := readCt(*in)
	if err != nil {
		return err
	}
	dec := bfv.NewDecryptor(params(), sk)
	fmt.Printf("%s decrypts to %d (noise budget: %d bits)\n",
		*in, dec.DecryptValue(ct), dec.NoiseBudget(ct))
	return nil
}
