// Command hepim-bench regenerates every table and figure of the paper's
// evaluation section, and tracks the repo's own evaluation-layer
// performance (double-CRT vs schoolbook).
//
// Usage:
//
//	hepim-bench -fig all          # every paper figure (default)
//	hepim-bench -fig 1a           # one figure: 1a 1b 2a 2b 2c width tasklets transfers ablation
//	hepim-bench -fig 1b -csv      # machine-readable output
//	hepim-bench -fig dcrt         # measure host EvalMul across hebfv backends (slow: runs the schoolbook)
//	hepim-bench -fig dcrt -backend dcrt-native         # restrict to one registry backend
//	hepim-bench -fig batch        # measure batched rotations (hoisted vs serial) + decryption
//	hepim-bench -fig dcrt -dcrt-json BENCH_dcrt.json   # emit the tracking JSON (dcrt + batch + kernel axes)
//
// Profiling the kernel hot spots (see doc.go for the workflow):
//
//	hepim-bench -fig dcrt -backend dcrt-native -cpuprofile cpu.out
//	go tool pprof -top cpu.out            # NTT butterflies, conversions, fused accumulators
//	hepim-bench -fig batch -memprofile mem.out
//	go tool pprof -alloc_space mem.out    # steady-state allocation audit
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"repro/hebfv"
	"repro/internal/bench"
)

func main() {
	figFlag := flag.String("fig", "all", "figure to regenerate: 1a|1b|2a|2b|2c|width|tasklets|transfers|energy|ablation|dcrt|batch|all")
	csvFlag := flag.Bool("csv", false, "emit CSV instead of an aligned table")
	jsonFlag := flag.String("dcrt-json", "", "write the measured evaluation-layer report (EvalMul + batched-rotation + kernel axes) to this path (e.g. BENCH_dcrt.json)")
	backendFlag := flag.String("backend", "",
		fmt.Sprintf("restrict -fig dcrt/batch to one hebfv backend %v; empty = the tracked set", hebfv.Backends()))
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the measured workload to this file (go tool pprof)")
	memProfile := flag.String("memprofile", "", "write a heap profile taken after the measured workload to this file")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hepim-bench:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "hepim-bench:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "hepim-bench:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "hepim-bench:", err)
			}
		}()
	}

	if *backendFlag != "" {
		known := false
		for _, name := range hebfv.Backends() {
			if name == *backendFlag {
				known = true
				break
			}
		}
		if !known {
			fmt.Fprintf(os.Stderr, "hepim-bench: unknown backend %q (have %s)\n",
				*backendFlag, strings.Join(hebfv.Backends(), ", "))
			os.Exit(1)
		}
		if *backendFlag == "pim" {
			fmt.Fprintln(os.Stderr, "hepim-bench: the pim backend runs every kernel on the functional simulator —",
				"far too slow for the n=1024/4096 measurement figures; exercise it via the examples (e.g. examples/privatemean)")
			os.Exit(1)
		}
	}

	// The dcrt and batch figures measure this process's real evaluator
	// rather than replaying the paper's models, so they bypass the suite.
	// Neither is part of -fig all: the dcrt schoolbook side alone costs
	// ~10s. The tracking JSON always carries both axes.
	if *figFlag == "dcrt" || *figFlag == "batch" || *jsonFlag != "" {
		emit := func(fig *bench.Figure) {
			if *csvFlag {
				fmt.Print(bench.CSV(fig))
			} else {
				fmt.Print(bench.Render(fig))
			}
		}
		var figs []*bench.Figure
		var rep *bench.DCRTReport
		var evalBackends []string
		if *backendFlag != "" {
			evalBackends = []string{*backendFlag}
		}
		if *figFlag == "dcrt" || *jsonFlag != "" {
			fig, r, err := bench.MeasureDCRT([]int{1024, 4096}, evalBackends)
			if err != nil {
				fmt.Fprintln(os.Stderr, "hepim-bench:", err)
				os.Exit(1)
			}
			rep = r
			if *figFlag == "dcrt" {
				figs = append(figs, fig)
			}
		}
		if *figFlag == "batch" || *jsonFlag != "" {
			fig, points, err := bench.MeasureBatch(4096, 8, *backendFlag)
			if err != nil {
				fmt.Fprintln(os.Stderr, "hepim-bench:", err)
				os.Exit(1)
			}
			if rep != nil {
				rep.Points = append(rep.Points, points...)
			}
			if *figFlag == "batch" {
				figs = append(figs, fig)
			}
		}
		if *jsonFlag != "" {
			if err := bench.WriteDCRTJSON(*jsonFlag, rep); err != nil {
				fmt.Fprintln(os.Stderr, "hepim-bench:", err)
				os.Exit(1)
			}
		}
		if *figFlag == "dcrt" || *figFlag == "batch" {
			for _, f := range figs {
				emit(f)
			}
			return
		}
	}

	suite, err := bench.NewSuite()
	if err != nil {
		fmt.Fprintln(os.Stderr, "hepim-bench:", err)
		os.Exit(1)
	}

	figs, err := collect(suite, *figFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hepim-bench:", err)
		os.Exit(1)
	}
	for i, f := range figs {
		if *csvFlag {
			fmt.Print(bench.CSV(f))
		} else {
			fmt.Print(bench.Render(f))
		}
		if i != len(figs)-1 {
			fmt.Println()
		}
	}
}

func collect(s *bench.Suite, which string) ([]*bench.Figure, error) {
	mk := map[string]func() (*bench.Figure, error){
		"1a":        func() (*bench.Figure, error) { return s.Fig1a(), nil },
		"1b":        func() (*bench.Figure, error) { return s.Fig1b(), nil },
		"2a":        func() (*bench.Figure, error) { return s.Fig2a(), nil },
		"2b":        func() (*bench.Figure, error) { return s.Fig2b(), nil },
		"2c":        func() (*bench.Figure, error) { return s.Fig2c(), nil },
		"width":     func() (*bench.Figure, error) { return s.WidthSweep(), nil },
		"tasklets":  s.TaskletSweep,
		"transfers": func() (*bench.Figure, error) { return s.Transfers(), nil },
		"energy":    s.Energy,
		"ablation":  s.Ablations,
	}
	if which == "all" {
		var out []*bench.Figure
		for _, id := range []string{"1a", "1b", "2a", "2b", "2c", "width", "tasklets", "transfers", "energy", "ablation"} {
			f, err := mk[id]()
			if err != nil {
				return nil, err
			}
			out = append(out, f)
		}
		return out, nil
	}
	f, ok := mk[which]
	if !ok {
		return nil, fmt.Errorf("unknown figure %q", which)
	}
	fig, err := f()
	if err != nil {
		return nil, err
	}
	return []*bench.Figure{fig}, nil
}
