// Command hepim-bench regenerates every table and figure of the paper's
// evaluation section, and tracks the repo's own evaluation-layer
// performance (double-CRT vs schoolbook).
//
// Usage:
//
//	hepim-bench -fig all          # every paper figure (default)
//	hepim-bench -fig 1a           # one figure: 1a 1b 2a 2b 2c width tasklets transfers ablation
//	hepim-bench -fig 1b -csv      # machine-readable output
//	hepim-bench -fig dcrt         # measure host EvalMul across hebfv backends (slow: runs the schoolbook)
//	hepim-bench -fig dcrt -backend dcrt-native         # restrict to one registry backend
//	hepim-bench -fig batch        # measure batched rotations (hoisted vs serial) + decryption
//	hepim-bench -fig dcrt -dcrt-json BENCH_dcrt.json   # emit the tracking JSON (dcrt + batch + kernel axes)
//	hepim-bench -kernels          # CPU features + per-kernel vector dispatch, scalar vs vector ns/op
//
// Reproducible chaos runs (fault injection on the simulated PIM system):
//
//	hepim-bench -faults transient=0.1,dead=0.01,straggler=0.05
//	hepim-bench -faults dead=1 -fault-seed 11 -fault-dpus 4   # kill every DPU: exercises backend failover
//
// A chaos run drives one fixed slot-level workload on the pim backend
// under the given per-launch fault rates, checks the decrypted results
// bit-for-bit against the dcrt-native host backend, and prints the
// fault and failover statistics. The same -fault-seed always yields the
// same fault schedule.
//
// Profiling the kernel hot spots (see doc.go for the workflow):
//
//	hepim-bench -fig dcrt -backend dcrt-native -cpuprofile cpu.out
//	go tool pprof -top cpu.out            # NTT butterflies, conversions, fused accumulators
//	hepim-bench -fig batch -memprofile mem.out
//	go tool pprof -alloc_space mem.out    # steady-state allocation audit
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"repro/hebfv"
	"repro/internal/bench"
)

func main() {
	figFlag := flag.String("fig", "all", "figure to regenerate: 1a|1b|2a|2b|2c|width|tasklets|transfers|energy|ablation|dcrt|batch|pim-scale|all")
	csvFlag := flag.Bool("csv", false, "emit CSV instead of an aligned table")
	jsonFlag := flag.String("dcrt-json", "", "write the measured evaluation-layer report (EvalMul + batched-rotation + kernel axes) to this path (e.g. BENCH_dcrt.json)")
	pimJSONFlag := flag.String("pim-json", "", "with -fig pim-scale: write the DPU-sweep report to this path (e.g. BENCH_pim.json)")
	backendFlag := flag.String("backend", "",
		fmt.Sprintf("restrict -fig dcrt/batch to one hebfv backend %v; empty = the tracked set", hebfv.Backends()))
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the measured workload to this file (go tool pprof)")
	memProfile := flag.String("memprofile", "", "write a heap profile taken after the measured workload to this file")
	faultsFlag := flag.String("faults", "",
		"run a chaos workload on the pim backend with these fault rates (e.g. transient=0.1,dead=0.01,straggler=0.05)")
	faultSeed := flag.Uint64("fault-seed", 1, "seed of the deterministic fault schedule for -faults")
	faultDPUs := flag.Int("fault-dpus", 8, "number of simulated DPUs for -faults")
	kernelsFlag := flag.Bool("kernels", false,
		"print the host CPU features, the per-kernel vector dispatch, and measured scalar vs vector ns/op, then exit")
	flag.Parse()

	if *faultsFlag != "" {
		if err := chaosRun(*faultsFlag, *faultSeed, *faultDPUs, *csvFlag); err != nil {
			fmt.Fprintln(os.Stderr, "hepim-bench:", err)
			os.Exit(1)
		}
		return
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hepim-bench:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "hepim-bench:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "hepim-bench:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "hepim-bench:", err)
			}
		}()
	}

	if *kernelsFlag {
		if err := kernelsRun(*csvFlag); err != nil {
			fmt.Fprintln(os.Stderr, "hepim-bench:", err)
			os.Exit(1)
		}
		return
	}

	if *backendFlag != "" {
		known := false
		for _, name := range hebfv.Backends() {
			if name == *backendFlag {
				known = true
				break
			}
		}
		if !known {
			fmt.Fprintf(os.Stderr, "hepim-bench: unknown backend %q (have %s)\n",
				*backendFlag, strings.Join(hebfv.Backends(), ", "))
			os.Exit(1)
		}
		if *backendFlag == "pim" {
			fmt.Fprintln(os.Stderr, "hepim-bench: the pim backend runs every kernel on the functional simulator —",
				"far too slow for the n=1024/4096 measurement figures; exercise it via the examples (e.g. examples/privatemean)")
			os.Exit(1)
		}
	}

	// The pim-scale sweep runs the async execution plane for real across
	// DPU counts up to the paper machine — metered, oracle-checked, and
	// independent of the calibrated models, so it bypasses the suite.
	if *figFlag == "pim-scale" {
		fig, rep, err := bench.MeasurePIMScale(nil, 0)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hepim-bench:", err)
			os.Exit(1)
		}
		if *pimJSONFlag != "" {
			if err := bench.WritePIMScaleJSON(*pimJSONFlag, rep); err != nil {
				fmt.Fprintln(os.Stderr, "hepim-bench:", err)
				os.Exit(1)
			}
		}
		if *csvFlag {
			fmt.Print(bench.CSV(fig))
		} else {
			fmt.Print(bench.Render(fig))
		}
		return
	}

	// The dcrt and batch figures measure this process's real evaluator
	// rather than replaying the paper's models, so they bypass the suite.
	// Neither is part of -fig all: the dcrt schoolbook side alone costs
	// ~10s. The tracking JSON always carries both axes.
	if *figFlag == "dcrt" || *figFlag == "batch" || *jsonFlag != "" {
		emit := func(fig *bench.Figure) {
			if *csvFlag {
				fmt.Print(bench.CSV(fig))
			} else {
				fmt.Print(bench.Render(fig))
			}
		}
		var figs []*bench.Figure
		var rep *bench.DCRTReport
		var evalBackends []string
		if *backendFlag != "" {
			evalBackends = []string{*backendFlag}
		}
		if *figFlag == "dcrt" || *jsonFlag != "" {
			fig, r, err := bench.MeasureDCRT([]int{1024, 4096}, evalBackends)
			if err != nil {
				fmt.Fprintln(os.Stderr, "hepim-bench:", err)
				os.Exit(1)
			}
			rep = r
			if *figFlag == "dcrt" {
				figs = append(figs, fig)
			}
		}
		if *figFlag == "batch" || *jsonFlag != "" {
			fig, points, err := bench.MeasureBatch(4096, 8, *backendFlag)
			if err != nil {
				fmt.Fprintln(os.Stderr, "hepim-bench:", err)
				os.Exit(1)
			}
			if rep != nil {
				rep.Points = append(rep.Points, points...)
			}
			if *figFlag == "batch" {
				figs = append(figs, fig)
			}
		}
		if *jsonFlag != "" {
			if err := bench.WriteDCRTJSON(*jsonFlag, rep); err != nil {
				fmt.Fprintln(os.Stderr, "hepim-bench:", err)
				os.Exit(1)
			}
		}
		if *figFlag == "dcrt" || *figFlag == "batch" {
			for _, f := range figs {
				emit(f)
			}
			return
		}
	}

	suite, err := bench.NewSuite()
	if err != nil {
		fmt.Fprintln(os.Stderr, "hepim-bench:", err)
		os.Exit(1)
	}

	figs, err := collect(suite, *figFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hepim-bench:", err)
		os.Exit(1)
	}
	for i, f := range figs {
		if *csvFlag {
			fmt.Print(bench.CSV(f))
		} else {
			fmt.Print(bench.Render(f))
		}
		if i != len(figs)-1 {
			fmt.Println()
		}
	}
}

// kernelsRun measures and prints the per-kernel vector dispatch table:
// what the host CPU supports, which path each hot kernel dispatches to
// under the live HEPIM_VECTOR mode, and the measured scalar vs vector
// cost of each.
func kernelsRun(csv bool) error {
	const n = 4096
	info, err := bench.MeasureKernelDispatch(n)
	if err != nil {
		return err
	}
	if csv {
		fmt.Printf("cpu,%q\nmode,%s\nn,%d\n", info.CPU, info.Mode, info.N)
		if info.EnvNote != "" {
			fmt.Printf("note,%s\n", info.EnvNote)
		}
		fmt.Println("kernel,path,scalar_ns_per_op,vector_ns_per_op,speedup_x")
		for _, k := range info.Kernels {
			fmt.Printf("%s,%s,%d,%d,%.2f\n", k.Kernel, k.Path, k.ScalarNs, k.VectorNs, k.SpeedupX)
		}
		return nil
	}
	fmt.Printf("Kernel dispatch (n=%d)\n", info.N)
	fmt.Printf("  cpu features: %s\n", info.CPU)
	fmt.Printf("  vector mode:  %s\n", info.Mode)
	if info.EnvNote != "" {
		fmt.Printf("  note:         %s\n", info.EnvNote)
	}
	fmt.Printf("  %-20s %-8s %14s %14s %9s\n", "kernel", "path", "scalar ns/op", "vector ns/op", "speedup")
	for _, k := range info.Kernels {
		fmt.Printf("  %-20s %-8s %14d %14d %8.2fx\n", k.Kernel, k.Path, k.ScalarNs, k.VectorNs, k.SpeedupX)
	}
	return nil
}

// parseFaultRates decodes "transient=0.1,dead=0.01,straggler=0.05".
// Omitted classes default to rate 0.
func parseFaultRates(spec string) (transient, dead, straggler float64, err error) {
	for _, field := range strings.Split(spec, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(field), "=")
		if !ok {
			return 0, 0, 0, fmt.Errorf("bad fault spec %q (want class=rate)", field)
		}
		rate, perr := strconv.ParseFloat(val, 64)
		if perr != nil || rate < 0 || rate > 1 {
			return 0, 0, 0, fmt.Errorf("bad fault rate %q (want a probability in [0,1])", val)
		}
		switch name {
		case "transient":
			transient = rate
		case "dead":
			dead = rate
		case "straggler":
			straggler = rate
		default:
			return 0, 0, 0, fmt.Errorf("unknown fault class %q (have transient, dead, straggler)", name)
		}
	}
	return transient, dead, straggler, nil
}

// chaosRun drives one fixed slot workload on the pim backend under
// injected DPU faults and verifies the decrypted results bit-for-bit
// against the dcrt-native host backend. Toy parameters keep the
// functional simulator fast; the fault schedule is a pure function of
// the seed, so a failing run reproduces exactly.
func chaosRun(spec string, seed uint64, dpus int, csv bool) error {
	transient, dead, straggler, err := parseFaultRates(spec)
	if err != nil {
		return err
	}
	const workloadSeed = 42
	pimCtx, err := hebfv.New(hebfv.WithInsecureToyParameters(), hebfv.WithSeed(workloadSeed),
		hebfv.WithBackend("pim"), hebfv.WithPIMDPUs(dpus),
		hebfv.WithPIMFaultInjection(seed, transient, dead, straggler))
	if err != nil {
		return err
	}
	hostCtx, err := hebfv.New(hebfv.WithInsecureToyParameters(), hebfv.WithSeed(workloadSeed))
	if err != nil {
		return err
	}

	run := func(ctx *hebfv.Context) ([][]uint64, error) {
		a := []uint64{3, 1, 4, 1, 5, 9, 2, 6}
		b := []uint64{2, 7, 1, 8, 2, 8, 1, 8}
		ca, err := ctx.EncryptSlots(a)
		if err != nil {
			return nil, err
		}
		cb, err := ctx.EncryptSlots(b)
		if err != nil {
			return nil, err
		}
		sum, err := ctx.Add(ca, cb)
		if err != nil {
			return nil, err
		}
		prod, err := ctx.Mul(ca, cb)
		if err != nil {
			return nil, err
		}
		rot, err := ctx.RotateRows(sum, 3)
		if err != nil {
			return nil, err
		}
		inner, err := ctx.InnerSum(prod)
		if err != nil {
			return nil, err
		}
		var out [][]uint64
		for _, ct := range []*hebfv.Ciphertext{sum, prod, rot, inner} {
			slots, err := ctx.DecryptSlots(ct)
			if err != nil {
				return nil, err
			}
			out = append(out, slots)
		}
		return out, nil
	}

	got, err := run(pimCtx)
	if err != nil {
		return fmt.Errorf("chaos workload on pim backend: %w", err)
	}
	want, err := run(hostCtx)
	if err != nil {
		return fmt.Errorf("reference workload on %s: %w", hebfv.DefaultBackend, err)
	}
	mismatches := 0
	for step := range want {
		for i := range want[step] {
			if got[step][i] != want[step][i] {
				mismatches++
			}
		}
	}

	stats, _ := pimCtx.PIMStats()
	fo, _ := pimCtx.FailoverStats()
	verdict := "bit-identical"
	if mismatches != 0 {
		verdict = fmt.Sprintf("%d slot mismatches", mismatches)
	}

	rows := [][2]string{
		{"fault-seed", fmt.Sprint(seed)},
		{"dpus", fmt.Sprint(dpus)},
		{"rate-transient", fmt.Sprintf("%.3f", transient)},
		{"rate-dead", fmt.Sprintf("%.3f", dead)},
		{"rate-straggler", fmt.Sprintf("%.3f", straggler)},
		{"verdict", verdict},
		{"transient-faults", fmt.Sprint(stats.TransientFaults)},
		{"dead-dpus", fmt.Sprint(stats.DeadDPUs)},
		{"straggler-hits", fmt.Sprint(stats.StragglerHits)},
		{"retries", fmt.Sprint(stats.Retries)},
		{"redispatches", fmt.Sprint(stats.Redispatches)},
		{"failover-engaged", fmt.Sprint(fo.Engaged)},
	}
	if fo.Engaged {
		rows = append(rows,
			[2]string{"failover-fallback", fo.Fallback},
			[2]string{"failover-failed-ops", fmt.Sprint(fo.FailedOps)},
			[2]string{"failover-trigger", fo.Trigger})
	}
	if csv {
		fmt.Println("stat,value")
		for _, r := range rows {
			fmt.Printf("%s,%s\n", r[0], r[1])
		}
	} else {
		fmt.Printf("Chaos run: pim backend vs %s (4-step slot workload)\n", hebfv.DefaultBackend)
		for _, r := range rows {
			fmt.Printf("  %-20s %s\n", r[0], r[1])
		}
	}
	if mismatches != 0 {
		return fmt.Errorf("chaos run diverged: %s", verdict)
	}
	return nil
}

func collect(s *bench.Suite, which string) ([]*bench.Figure, error) {
	mk := map[string]func() (*bench.Figure, error){
		"1a":        func() (*bench.Figure, error) { return s.Fig1a(), nil },
		"1b":        func() (*bench.Figure, error) { return s.Fig1b(), nil },
		"2a":        func() (*bench.Figure, error) { return s.Fig2a(), nil },
		"2b":        func() (*bench.Figure, error) { return s.Fig2b(), nil },
		"2c":        func() (*bench.Figure, error) { return s.Fig2c(), nil },
		"width":     func() (*bench.Figure, error) { return s.WidthSweep(), nil },
		"tasklets":  s.TaskletSweep,
		"transfers": func() (*bench.Figure, error) { return s.Transfers(), nil },
		"energy":    s.Energy,
		"ablation":  s.Ablations,
	}
	if which == "all" {
		var out []*bench.Figure
		for _, id := range []string{"1a", "1b", "2a", "2b", "2c", "width", "tasklets", "transfers", "energy", "ablation"} {
			f, err := mk[id]()
			if err != nil {
				return nil, err
			}
			out = append(out, f)
		}
		return out, nil
	}
	f, ok := mk[which]
	if !ok {
		return nil, fmt.Errorf("unknown figure %q", which)
	}
	fig, err := f()
	if err != nil {
		return nil, err
	}
	return []*bench.Figure{fig}, nil
}
