// Command pimsim inspects the UPMEM PIM simulator: it runs the paper's
// addition or multiplication kernel and prints the per-roofline cycle
// breakdown, or sweeps the tasklet count to reproduce the pipeline-
// saturation observation (§4.2 observation 1).
//
// Usage:
//
//	pimsim -kernel add -coeffs 8192 -width 4 -dpus 4 -tasklets 16
//	pimsim -kernel mul -n 64 -pairs 4 -width 4
//	pimsim -sweep
package main

import (
	"flag"
	"fmt"
	"math/big"
	"os"

	"repro/internal/limb32"
	"repro/internal/pim"
	"repro/internal/pim/kernels"
	"repro/internal/poly"
	"repro/internal/sampling"
)

func main() {
	kernel := flag.String("kernel", "add", "kernel to run: add | mul")
	coeffs := flag.Int("coeffs", 8192, "coefficients for the add kernel")
	n := flag.Int("n", 64, "polynomial degree for the mul kernel")
	pairs := flag.Int("pairs", 4, "polynomial pairs for the mul kernel")
	width := flag.Int("width", 4, "limbs per coefficient: 1 (27-bit), 2 (54-bit), 4 (109-bit)")
	dpus := flag.Int("dpus", 4, "active DPUs")
	tasklets := flag.Int("tasklets", 16, "tasklets per DPU")
	sweep := flag.Bool("sweep", false, "sweep tasklet counts instead of a single run")
	flag.Parse()

	mod, err := modulusFor(*width)
	if err != nil {
		fail(err)
	}
	src := sampling.NewSourceFromUint64(42)

	if *sweep {
		runSweep(mod, src, *coeffs)
		return
	}

	cfg := pim.DefaultConfig()
	cfg.NumDPUs = *dpus
	cfg.Tasklets = *tasklets
	sys, err := pim.NewSystem(cfg)
	if err != nil {
		fail(err)
	}

	var rep *pim.Report
	switch *kernel {
	case "add":
		a, b := randVec(src, *coeffs, mod), randVec(src, *coeffs, mod)
		_, rep, err = kernels.RunVectorAdd(sys, a, b, mod.W, mod.Q)
	case "mul":
		a, b := randVec(src, *pairs**n, mod), randVec(src, *pairs**n, mod)
		_, rep, err = kernels.RunVectorPolyMul(sys, a, b, *n, mod.W, mod.Q)
	default:
		fail(fmt.Errorf("unknown kernel %q", *kernel))
	}
	if err != nil {
		fail(err)
	}

	fmt.Printf("kernel=%s width=%d-bit dpus=%d tasklets=%d\n", *kernel, 32*mod.W, *dpus, *tasklets)
	fmt.Printf("  kernel cycles (max over DPUs): %d  (%.4g ms at 425 MHz)\n",
		rep.KernelCycles, float64(rep.KernelCycles)/425e3)
	fmt.Printf("  total instructions:            %d\n", rep.TotalInstr)
	fmt.Printf("  total DMA cycles:              %d\n", rep.TotalDMACycles)
	fmt.Printf("  host copy-in / copy-out:       %.4g ms / %.4g ms\n",
		rep.CopyInSeconds*1e3, rep.CopyOutSeconds*1e3)
	fmt.Println("  instruction mix:")
	for op := limb32.Op(0); op < limb32.NumOps; op++ {
		if rep.Counts[op] > 0 {
			fmt.Printf("    %-6s %12d\n", op, rep.Counts[op])
		}
	}
}

func runSweep(mod *poly.Modulus, src *sampling.Source, coeffs int) {
	a, b := randVec(src, coeffs, mod), randVec(src, coeffs, mod)
	fmt.Printf("tasklet sweep: %d-bit addition of %d coefficients on 1 DPU\n", 32*mod.W, coeffs)
	var base int64
	for _, tk := range []int{1, 2, 4, 8, 11, 16, 24} {
		cfg := pim.DefaultConfig()
		cfg.NumDPUs = 1
		cfg.Tasklets = tk
		sys, err := pim.NewSystem(cfg)
		if err != nil {
			fail(err)
		}
		_, rep, err := kernels.RunVectorAdd(sys, a, b, mod.W, mod.Q)
		if err != nil {
			fail(err)
		}
		if base == 0 {
			base = rep.KernelCycles
		}
		fmt.Printf("  tasklets=%2d  cycles=%10d  speedup vs 1 tasklet: %.2fx\n",
			tk, rep.KernelCycles, float64(base)/float64(rep.KernelCycles))
	}
	fmt.Println("  (the paper's observation 1: saturation at >= 11 tasklets)")
}

func modulusFor(w int) (*poly.Modulus, error) {
	var s string
	switch w {
	case 1:
		s = "134217689"
	case 2:
		s = "18014398509481951"
	case 4:
		s = "649037107316853453566312041152481"
	default:
		return nil, fmt.Errorf("width must be 1, 2 or 4 (got %d)", w)
	}
	q, _ := new(big.Int).SetString(s, 10)
	return poly.NewModulus(q)
}

func randVec(src *sampling.Source, coeffs int, mod *poly.Modulus) []uint32 {
	out := make([]uint32, coeffs*mod.W)
	for i := 0; i < coeffs; i++ {
		copy(out[i*mod.W:(i+1)*mod.W], src.UniformNat(mod.Q, mod.W))
	}
	return out
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "pimsim:", err)
	os.Exit(1)
}
