// Command benchdiff compares `go test -bench` output against a
// checked-in baseline and fails on regressions — the benchstat-style
// gate of the CI benchmark-regression job.
//
// Both inputs are raw `go test -bench` output (any -count). For each
// benchmark name the minimum ns/op across repetitions is used — the
// estimate least polluted by scheduling noise — and a benchmark regresses
// when its minimum exceeds the baseline minimum by more than the
// threshold factor. Benchmarks present on only one side are reported but
// never fail the gate, so adding or retiring benchmarks doesn't break CI.
//
//	go test ./internal/bfv -run '^$' -bench . -benchtime=1x -count=3 > new.txt
//	benchdiff -baseline .github/bench-baseline.txt -new new.txt -threshold 1.25
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// benchLine matches e.g. "BenchmarkRotateHoisted-8   10   13464356 ns/op ..."
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+(\d+(?:\.\d+)?) ns/op`)

// parseBench returns the minimum ns/op per benchmark name.
func parseBench(path string) (map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := map[string]float64{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		if cur, ok := out[m[1]]; !ok || ns < cur {
			out[m[1]] = ns
		}
	}
	return out, sc.Err()
}

func main() {
	baseline := flag.String("baseline", "", "checked-in `go test -bench` output to compare against")
	fresh := flag.String("new", "", "freshly measured `go test -bench` output")
	threshold := flag.Float64("threshold", 1.25, "fail when new/baseline exceeds this factor")
	serveBaseline := flag.String("serve-baseline", "", "checked-in hebfv-loadgen JSON report to compare against")
	serveNew := flag.String("serve-new", "", "freshly measured hebfv-loadgen JSON report")
	serveOps := flag.Float64("serve-ops-threshold", 2.0, "fail when baseline/new ops/sec exceeds this factor (total and per-op)")
	serveP99 := flag.Float64("serve-p99-threshold", 2.0, "fail when new/baseline per-op p99 exceeds this factor")
	flag.Parse()
	if *serveBaseline != "" || *serveNew != "" {
		if *serveBaseline == "" || *serveNew == "" {
			fmt.Fprintln(os.Stderr, "benchdiff: -serve-baseline and -serve-new are both required for the serve gate")
			os.Exit(2)
		}
		os.Exit(serveGate(*serveBaseline, *serveNew, *serveOps, *serveP99))
	}
	if *baseline == "" || *fresh == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -baseline and -new are required")
		os.Exit(2)
	}
	base, err := parseBench(*baseline)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	cur, err := parseBench(*fresh)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	if len(base) == 0 || len(cur) == 0 {
		fmt.Fprintln(os.Stderr, "benchdiff: no benchmark lines parsed (baseline:", len(base), "new:", len(cur), ")")
		os.Exit(2)
	}

	names := make([]string, 0, len(base))
	for name := range base {
		names = append(names, name)
	}
	sort.Strings(names)
	regressed := regressions(base, cur, names, *threshold)
	for _, name := range names {
		b := base[name]
		n, ok := cur[name]
		if !ok {
			fmt.Printf("%-40s baseline %.3fms, not measured (skipped)\n", name, b/1e6)
			continue
		}
		ratio := n / b
		status := "ok"
		if ratio > *threshold {
			status = "REGRESSION"
		}
		fmt.Printf("%-40s %.3fms -> %.3fms (%.2fx) %s\n", name, b/1e6, n/1e6, ratio, status)
	}
	fresh2 := make([]string, 0, len(cur))
	for name := range cur {
		if _, ok := base[name]; !ok {
			fresh2 = append(fresh2, name)
		}
	}
	sort.Strings(fresh2)
	for _, name := range fresh2 {
		fmt.Printf("%-40s new benchmark %.3fms (no baseline)\n", name, cur[name]/1e6)
	}
	if len(regressed) > 0 {
		fmt.Print(summarize(regressed))
		fmt.Printf("benchdiff: %d regression(s) beyond %.0f%% threshold\n", len(regressed), (*threshold-1)*100)
		os.Exit(1)
	}
	fmt.Println("benchdiff: within threshold")
}

// regression is one benchmark whose new minimum exceeded the threshold.
type regression struct {
	name     string
	old, new float64 // ns/op
}

// regressions collects the rows that fail the gate, sorted worst-first
// so the biggest offender leads the summary.
func regressions(base, cur map[string]float64, names []string, threshold float64) []regression {
	var out []regression
	for _, name := range names {
		n, ok := cur[name]
		if !ok {
			continue
		}
		if b := base[name]; n/b > threshold {
			out = append(out, regression{name: name, old: b, new: n})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].new/out[i].old > out[j].new/out[j].old })
	return out
}

// summarize renders the regressed-rows block appended after the full
// per-row listing: only the failures, with old/new times and the
// percentage slowdown, so a long CI log still ends with the verdict.
func summarize(regressed []regression) string {
	var sb strings.Builder
	sb.WriteString("\nRegressed rows:\n")
	for _, r := range regressed {
		sb.WriteString(fmt.Sprintf("  %-40s %.3fms -> %.3fms (+%.1f%%)\n",
			r.name, r.old/1e6, r.new/1e6, (r.new/r.old-1)*100))
	}
	return sb.String()
}
