package main

import (
	"strings"
	"testing"

	"repro/internal/bench"
)

func serveReport(totalOps float64, pts ...bench.ServePoint) *bench.ServeReport {
	total := 0
	for _, p := range pts {
		total += p.Count
	}
	if total == 0 {
		total = 1
	}
	return &bench.ServeReport{
		Schema:         "repro/serve-loadgen/v1",
		TotalOps:       total,
		TotalOpsPerSec: totalOps,
		Points:         pts,
	}
}

func TestServeDiffWithinThresholds(t *testing.T) {
	base := serveReport(100,
		bench.ServePoint{Op: "add", Count: 50, OpsPerSec: 60, P99Micros: 1000},
		bench.ServePoint{Op: "mul", Count: 50, OpsPerSec: 40, P99Micros: 5000},
	)
	cur := serveReport(90,
		bench.ServePoint{Op: "add", Count: 45, OpsPerSec: 55, P99Micros: 1200},
		bench.ServePoint{Op: "mul", Count: 45, OpsPerSec: 35, P99Micros: 6000},
	)
	listing, regressed := serveDiff(base, cur, 1.5, 1.5)
	if len(regressed) != 0 {
		t.Fatalf("unexpected regressions: %+v", regressed)
	}
	for _, want := range []string{"total", "add", "mul", "ok"} {
		if !strings.Contains(listing, want) {
			t.Errorf("listing missing %q:\n%s", want, listing)
		}
	}
}

func TestServeDiffFlagsThroughputDrop(t *testing.T) {
	base := serveReport(100, bench.ServePoint{Op: "add", Count: 10, OpsPerSec: 100, P99Micros: 1000})
	cur := serveReport(40, bench.ServePoint{Op: "add", Count: 10, OpsPerSec: 40, P99Micros: 1000})
	_, regressed := serveDiff(base, cur, 1.5, 1.5)
	if len(regressed) != 2 {
		t.Fatalf("got %d regressions, want 2 (total + add ops/sec): %+v", len(regressed), regressed)
	}
	for _, r := range regressed {
		if r.metric != "ops/sec" {
			t.Errorf("regression metric = %q, want ops/sec", r.metric)
		}
		if r.ratio < 2.4 || r.ratio > 2.6 {
			t.Errorf("ratio = %.2f, want ~2.5", r.ratio)
		}
	}
}

func TestServeDiffFlagsTailLatency(t *testing.T) {
	base := serveReport(100, bench.ServePoint{Op: "mul", Count: 10, OpsPerSec: 100, P99Micros: 1000})
	cur := serveReport(100, bench.ServePoint{Op: "mul", Count: 10, OpsPerSec: 100, P99Micros: 4000})
	_, regressed := serveDiff(base, cur, 1.5, 1.5)
	if len(regressed) != 1 {
		t.Fatalf("got %d regressions, want 1: %+v", len(regressed), regressed)
	}
	if regressed[0].metric != "p99" || regressed[0].row != "mul" {
		t.Errorf("regression = %+v, want mul p99", regressed[0])
	}
}

func TestServeDiffOneSidedOpsNeverFail(t *testing.T) {
	base := serveReport(100,
		bench.ServePoint{Op: "add", Count: 10, OpsPerSec: 100, P99Micros: 1000},
		bench.ServePoint{Op: "rotate", Count: 10, OpsPerSec: 100, P99Micros: 1000},
	)
	cur := serveReport(100,
		bench.ServePoint{Op: "add", Count: 10, OpsPerSec: 100, P99Micros: 1000},
		bench.ServePoint{Op: "sum", Count: 10, OpsPerSec: 1, P99Micros: 999999},
	)
	listing, regressed := serveDiff(base, cur, 1.5, 1.5)
	if len(regressed) != 0 {
		t.Fatalf("one-sided ops regressed: %+v", regressed)
	}
	if !strings.Contains(listing, "not measured (skipped)") {
		t.Errorf("listing missing skip note for retired op:\n%s", listing)
	}
	if !strings.Contains(listing, "new op") {
		t.Errorf("listing missing new-op note:\n%s", listing)
	}
}

func TestServeDiffSkipsZeroCountRows(t *testing.T) {
	base := serveReport(100,
		bench.ServePoint{Op: "add", Count: 10, OpsPerSec: 100, P99Micros: 1000},
		bench.ServePoint{Op: "mul", Count: 0, OpsPerSec: 0, P99Micros: 0},
	)
	cur := serveReport(100,
		bench.ServePoint{Op: "add", Count: 10, OpsPerSec: 100, P99Micros: 1000},
		bench.ServePoint{Op: "mul", Count: 0, OpsPerSec: 0, P99Micros: 0},
	)
	listing, regressed := serveDiff(base, cur, 1.5, 1.5)
	if len(regressed) != 0 {
		t.Fatalf("zero-count rows regressed: %+v", regressed)
	}
	if strings.Contains(listing, "mul") {
		t.Errorf("zero-count row should be absent from listing:\n%s", listing)
	}
}

func TestLoadServeReportRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"wrong-schema.json": `{"schema":"repro/other/v1","total_ops":5,"total_ops_per_sec":1}`,
		"empty-run.json":    `{"schema":"repro/serve-loadgen/v1","total_ops":0,"total_ops_per_sec":0}`,
		"not-json.json":     `{{{`,
	}
	for name, content := range cases {
		p := writeTemp(t, name, content)
		if _, err := loadServeReport(p); err == nil {
			t.Errorf("%s: loadServeReport accepted bad input", name)
		}
	}
	if _, err := loadServeReport(writeTemp(t, "ok.json",
		`{"schema":"repro/serve-loadgen/v1","total_ops":5,"total_ops_per_sec":2.5}`)); err != nil {
		t.Errorf("valid report rejected: %v", err)
	}
}

func TestServeGateExitCodes(t *testing.T) {
	good := `{"schema":"repro/serve-loadgen/v1","total_ops":10,"total_ops_per_sec":100,
		"points":[{"op":"add","count":10,"ops_per_sec":100,"p50_us":10,"p99_us":100,"mean_us":20}]}`
	slow := `{"schema":"repro/serve-loadgen/v1","total_ops":10,"total_ops_per_sec":10,
		"points":[{"op":"add","count":10,"ops_per_sec":10,"p50_us":10,"p99_us":100,"mean_us":20}]}`
	mismatched := `{"schema":"repro/serve-loadgen/v1","total_ops":10,"total_ops_per_sec":100,
		"checked":true,"mismatches":3}`
	base := writeTemp(t, "base.json", good)
	if code := serveGate(base, writeTemp(t, "same.json", good), 1.5, 1.5); code != 0 {
		t.Errorf("identical reports: exit %d, want 0", code)
	}
	if code := serveGate(base, writeTemp(t, "slow.json", slow), 1.5, 1.5); code != 1 {
		t.Errorf("10x throughput drop: exit %d, want 1", code)
	}
	if code := serveGate(base, writeTemp(t, "bad.json", mismatched), 1.5, 1.5); code != 1 {
		t.Errorf("response mismatches: exit %d, want 1", code)
	}
	if code := serveGate("does-not-exist.json", base, 1.5, 1.5); code != 2 {
		t.Errorf("missing baseline: exit %d, want 2", code)
	}
}
