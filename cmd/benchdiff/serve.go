package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/bench"
)

// Serve-latency gate: diff two hebfv-loadgen JSON reports
// (bench.ServeReport) and fail on throughput or tail-latency
// regressions. Throughput regresses when baseline/new ops/sec exceeds
// the ops threshold (total and per-op); latency regresses when
// new/baseline p99 exceeds the p99 threshold (per-op). Ops present on
// only one side are reported but never fail the gate, mirroring the
// benchmark diff's add/retire tolerance. Zero-count rows (an op the
// run never exercised) are skipped entirely.

// loadServeReport reads and sanity-checks one loadgen report.
func loadServeReport(path string) (*bench.ServeReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep bench.ServeReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if !strings.HasPrefix(rep.Schema, "repro/serve-loadgen/") {
		return nil, fmt.Errorf("%s: unexpected schema %q", path, rep.Schema)
	}
	if rep.TotalOps == 0 || rep.TotalOpsPerSec <= 0 {
		return nil, fmt.Errorf("%s: empty run (total_ops=%d)", path, rep.TotalOps)
	}
	return &rep, nil
}

// serveRegression is one failed serve-gate row.
type serveRegression struct {
	row    string
	metric string
	ratio  float64 // how far beyond the threshold's nominal direction
}

// serveDiff compares the two reports and returns the rendered listing
// plus the regressed rows.
func serveDiff(base, cur *bench.ServeReport, opsFactor, p99Factor float64) (string, []serveRegression) {
	var sb strings.Builder
	var regressed []serveRegression

	row := func(label string, baseOps, curOps float64, baseP99, curP99 int64) {
		status := "ok"
		if baseOps > 0 && curOps > 0 && baseOps/curOps > opsFactor {
			status = "REGRESSION"
			regressed = append(regressed, serveRegression{
				row: label, metric: "ops/sec", ratio: baseOps / curOps,
			})
		}
		if baseP99 > 0 && curP99 > 0 && float64(curP99)/float64(baseP99) > p99Factor {
			if status == "ok" {
				status = "REGRESSION"
			}
			regressed = append(regressed, serveRegression{
				row: label, metric: "p99", ratio: float64(curP99) / float64(baseP99),
			})
		}
		sb.WriteString(fmt.Sprintf("%-12s %10.1f -> %10.1f ops/s  p99 %8dus -> %8dus  %s\n",
			label, baseOps, curOps, baseP99, curP99, status))
	}

	row("total", base.TotalOpsPerSec, cur.TotalOpsPerSec, 0, 0)

	basePts := map[string]bench.ServePoint{}
	for _, p := range base.Points {
		if p.Count > 0 {
			basePts[p.Op] = p
		}
	}
	curPts := map[string]bench.ServePoint{}
	for _, p := range cur.Points {
		if p.Count > 0 {
			curPts[p.Op] = p
		}
	}
	ops := make([]string, 0, len(basePts))
	for op := range basePts {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	for _, op := range ops {
		b := basePts[op]
		c, ok := curPts[op]
		if !ok {
			sb.WriteString(fmt.Sprintf("%-12s baseline %.1f ops/s, not measured (skipped)\n", op, b.OpsPerSec))
			continue
		}
		row(op, b.OpsPerSec, c.OpsPerSec, b.P99Micros, c.P99Micros)
	}
	newOps := make([]string, 0, len(curPts))
	for op := range curPts {
		if _, ok := basePts[op]; !ok {
			newOps = append(newOps, op)
		}
	}
	sort.Strings(newOps)
	for _, op := range newOps {
		sb.WriteString(fmt.Sprintf("%-12s new op %.1f ops/s (no baseline)\n", op, curPts[op].OpsPerSec))
	}
	// Informational GC axis (schema v2): shown when present, never
	// gated — allocation behavior is gated by the AllocsPerRun tests.
	if cur.GC != nil {
		if base.GC != nil {
			sb.WriteString(fmt.Sprintf("%-12s %10.0f -> %10.0f bytes/op  (%.2fx)\n",
				"gc bytes/op", base.GC.BytesPerOp, cur.GC.BytesPerOp,
				cur.GC.BytesPerOp/base.GC.BytesPerOp))
		} else {
			sb.WriteString(fmt.Sprintf("%-12s %.0f bytes/op, pool hit rate %.1f%% (no v1 baseline)\n",
				"gc", cur.GC.BytesPerOp, cur.GC.PoolHitRate*100))
		}
	}
	return sb.String(), regressed
}

// serveGate is the -serve-baseline/-serve-new entry point. It returns
// the process exit code.
func serveGate(baselinePath, newPath string, opsFactor, p99Factor float64) int {
	base, err := loadServeReport(baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		return 2
	}
	cur, err := loadServeReport(newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		return 2
	}
	if cur.Checked && cur.Mismatches != 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: new run reports %d response mismatches (must be 0)\n", cur.Mismatches)
		return 1
	}
	listing, regressed := serveDiff(base, cur, opsFactor, p99Factor)
	fmt.Print(listing)
	if len(regressed) > 0 {
		fmt.Println("\nRegressed rows:")
		for _, r := range regressed {
			fmt.Printf("  %-12s %s %.2fx beyond baseline\n", r.row, r.metric, r.ratio)
		}
		fmt.Printf("benchdiff: %d serve regression(s) (ops/sec floor %.2fx, p99 ceiling %.2fx)\n",
			len(regressed), opsFactor, p99Factor)
		return 1
	}
	fmt.Println("benchdiff: serve metrics within thresholds")
	return 0
}
