package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestParseBenchTakesMinAcrossCounts(t *testing.T) {
	p := writeTemp(t, "bench.txt", `
goos: linux
BenchmarkEvalMulDepth1/path=rns-8   	       1	   4991741 ns/op
BenchmarkEvalMulDepth1/path=rns-8   	       1	   4700123 ns/op
BenchmarkEvalMulDepth1/path=rns-8   	       1	   5100000 ns/op
BenchmarkRotateHoisted     	       2	  13464356 ns/op	 1024 B/op
PASS
`)
	got, err := parseBench(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(got))
	}
	if got["BenchmarkEvalMulDepth1/path=rns"] != 4700123 {
		t.Errorf("min ns/op = %v, want 4700123", got["BenchmarkEvalMulDepth1/path=rns"])
	}
	if got["BenchmarkRotateHoisted"] != 13464356 {
		t.Errorf("rotate = %v", got["BenchmarkRotateHoisted"])
	}
}

func TestParseBenchIgnoresNoise(t *testing.T) {
	p := writeTemp(t, "noise.txt", `
ok  	repro/internal/bfv	1.358s
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
Benchmark without numbers
`)
	got, err := parseBench(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("parsed %d benchmarks from noise, want 0", len(got))
	}
}
