package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestParseBenchTakesMinAcrossCounts(t *testing.T) {
	p := writeTemp(t, "bench.txt", `
goos: linux
BenchmarkEvalMulDepth1/path=rns-8   	       1	   4991741 ns/op
BenchmarkEvalMulDepth1/path=rns-8   	       1	   4700123 ns/op
BenchmarkEvalMulDepth1/path=rns-8   	       1	   5100000 ns/op
BenchmarkRotateHoisted     	       2	  13464356 ns/op	 1024 B/op
PASS
`)
	got, err := parseBench(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(got))
	}
	if got["BenchmarkEvalMulDepth1/path=rns"] != 4700123 {
		t.Errorf("min ns/op = %v, want 4700123", got["BenchmarkEvalMulDepth1/path=rns"])
	}
	if got["BenchmarkRotateHoisted"] != 13464356 {
		t.Errorf("rotate = %v", got["BenchmarkRotateHoisted"])
	}
}

func TestRegressionsSortedWorstFirst(t *testing.T) {
	base := map[string]float64{"BenchmarkA": 100, "BenchmarkB": 100, "BenchmarkC": 100, "BenchmarkD": 100}
	cur := map[string]float64{"BenchmarkA": 150, "BenchmarkB": 300, "BenchmarkC": 110} // D not measured
	got := regressions(base, cur, []string{"BenchmarkA", "BenchmarkB", "BenchmarkC", "BenchmarkD"}, 1.25)
	if len(got) != 2 {
		t.Fatalf("got %d regressions, want 2 (A and B)", len(got))
	}
	if got[0].name != "BenchmarkB" || got[1].name != "BenchmarkA" {
		t.Errorf("order = %s, %s; want worst-first BenchmarkB, BenchmarkA", got[0].name, got[1].name)
	}
}

func TestSummarizeShowsOldNewPercent(t *testing.T) {
	out := summarize([]regression{{name: "BenchmarkEvalMul", old: 1e6, new: 1.5e6}})
	for _, want := range []string{"Regressed rows:", "BenchmarkEvalMul", "1.000ms -> 1.500ms", "+50.0%"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestParseBenchIgnoresNoise(t *testing.T) {
	p := writeTemp(t, "noise.txt", `
ok  	repro/internal/bfv	1.358s
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
Benchmark without numbers
`)
	got, err := parseBench(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("parsed %d benchmarks from noise, want 0", len(got))
	}
}
