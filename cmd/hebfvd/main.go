// Command hebfvd serves the hebfv evaluation plane over HTTP: clients
// keep their secret keys, onboard evaluation-only key sets once, and
// submit ciphertext add/mul/rotate operations against them (the
// HE-as-a-service deployment model — see package repro/hebfv/serve for
// the protocol and error contract).
//
// Usage:
//
//	hebfvd                          # listen on :8443, n=4096 (109-bit), dcrt-native
//	hebfvd -addr :9000 -sec 54      # other presets: 27 (N=1024), 54 (N=2048), 109 (N=4096)
//	hebfvd -backend pim             # evaluate on the modeled-PIM backend
//	hebfvd -toy                     # insecure N=64 parameters, for smoke tests
//	hebfvd -cache-mb 64             # tenant key-set cache budget (LRU past it)
//	hebfvd -window 2ms -max-batch 32            # request coalescing bounds
//	hebfvd -tenant-inflight 4 -total-inflight 64  # admission quotas (429 / 503)
//	hebfvd -pool-mb 32              # per-tenant decode-pool retention (0 = pooling off)
//
// The parameter preset must match the clients': a key-set blob exported
// at one ring degree does not restore at another (onboarding rejects it
// with a corrupt-blob error).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/hebfv"
	"repro/hebfv/serve"
)

func main() {
	addr := flag.String("addr", ":8443", "listen address")
	sec := flag.Int("sec", 109, "security preset: 27, 54 or 109 bits")
	toy := flag.Bool("toy", false, "insecure N=64 toy parameters (overrides -sec)")
	backend := flag.String("backend", hebfv.DefaultBackend,
		fmt.Sprintf("evaluation backend %v", hebfv.Backends()))
	cacheMB := flag.Int64("cache-mb", 256, "tenant key-set cache budget in MiB (0 = unbounded)")
	window := flag.Duration("window", 2*time.Millisecond, "coalescing window per op batch")
	maxBatch := flag.Int("max-batch", 32, "flush an op batch at this size even inside the window")
	tenantInflight := flag.Int("tenant-inflight", 4, "per-tenant concurrent evaluation quota (429 past it)")
	totalInflight := flag.Int("total-inflight", 64, "global concurrent evaluation quota (503 past it)")
	poolMB := flag.Int64("pool-mb", 32, "per-tenant ciphertext decode-pool retention in MiB (0 = pooling off)")
	flag.Parse()

	ctxOpts := []hebfv.Option{
		hebfv.WithBackend(*backend),
		hebfv.WithPoolRetention(*poolMB << 20),
	}
	if *toy {
		ctxOpts = append(ctxOpts, hebfv.WithInsecureToyParameters())
	} else {
		ctxOpts = append(ctxOpts, hebfv.WithSecurityLevel(*sec))
	}

	srv := serve.NewServer(serve.Options{
		ContextOptions: ctxOpts,
		MaxCacheBytes:  *cacheMB << 20,
		Window:         *window,
		MaxBatch:       *maxBatch,
		TenantInflight: *tenantInflight,
		TotalInflight:  *totalInflight,
	})
	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}

	// Graceful shutdown: stop accepting, drain in-flight evaluations.
	done := make(chan struct{})
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		log.Printf("hebfvd: shutting down")
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		hs.Shutdown(ctx)
		close(done)
	}()

	log.Printf("hebfvd: serving on %s (backend=%s, quotas tenant=%d total=%d, window=%v)",
		*addr, *backend, *tenantInflight, *totalInflight, *window)
	if err := hs.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		log.Fatalf("hebfvd: %v", err)
	}
	<-done
}
