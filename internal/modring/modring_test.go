package modring

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/nt"
)

var testModuli = []uint64{
	3, 17, 65537,
	1<<30 - 35,
	1<<50 - 27,
	1<<61 - 1,
	1<<62 - 57,
}

func TestAddSubNeg(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	for _, q := range testModuli {
		r := New(q)
		for i := 0; i < 200; i++ {
			a, b := rng.Uint64()%q, rng.Uint64()%q
			if got, want := r.Add(a, b), (a+b)%q; got != want && q < 1<<62 {
				// (a+b) can overflow only for q near 2^64, excluded by New.
				t.Fatalf("q=%d Add(%d,%d)=%d want %d", q, a, b, got, want)
			}
			want := new(big.Int).Sub(new(big.Int).SetUint64(a), new(big.Int).SetUint64(b))
			want.Mod(want, new(big.Int).SetUint64(q))
			if got := r.Sub(a, b); got != want.Uint64() {
				t.Fatalf("q=%d Sub mismatch", q)
			}
			if got := r.Add(a, r.Neg(a)); got != 0 {
				t.Fatalf("q=%d a + (-a) = %d", q, got)
			}
		}
	}
}

func TestMulMatchesBig(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for _, q := range testModuli {
		r := New(q)
		qb := new(big.Int).SetUint64(q)
		for i := 0; i < 500; i++ {
			a, b := rng.Uint64()%q, rng.Uint64()%q
			got := r.Mul(a, b)
			want := new(big.Int).Mul(new(big.Int).SetUint64(a), new(big.Int).SetUint64(b))
			want.Mod(want, qb)
			if got != want.Uint64() {
				t.Fatalf("q=%d: Mul(%d,%d) = %d, want %v", q, a, b, got, want)
			}
		}
		// Edge operands.
		for _, a := range []uint64{0, 1, q - 1} {
			for _, b := range []uint64{0, 1, q - 1} {
				got := r.Mul(a, b)
				want := nt.MulMod(a, b, q)
				if got != want {
					t.Fatalf("q=%d: Mul(%d,%d) = %d, want %d", q, a, b, got, want)
				}
			}
		}
	}
}

func TestMulProperty(t *testing.T) {
	r := New(1<<62 - 57)
	f := func(a, b uint64) bool {
		a, b = a%r.Q, b%r.Q
		return r.Mul(a, b) == nt.MulMod(a, b, r.Q)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestPowInv(t *testing.T) {
	q := uint64(1<<50 - 27) // prime
	r := New(q)
	rng := rand.New(rand.NewSource(52))
	for i := 0; i < 100; i++ {
		a := rng.Uint64()%(q-1) + 1
		inv := r.Inv(a)
		if r.Mul(a, inv) != 1 {
			t.Fatalf("a * a^-1 != 1 for a=%d", a)
		}
	}
	if r.Pow(3, 0) != 1 {
		t.Error("a^0 != 1")
	}
	if r.Pow(0, 5) != 0 {
		t.Error("0^e != 0")
	}
}

func TestMulShoup(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for _, q := range testModuli {
		r := New(q)
		for i := 0; i < 300; i++ {
			a, w := rng.Uint64()%q, rng.Uint64()%q
			ws := r.ShoupConst(w)
			if got, want := r.MulShoup(a, w, ws), r.Mul(a, w); got != want {
				t.Fatalf("q=%d: MulShoup(%d,%d) = %d, want %d", q, a, w, got, want)
			}
		}
	}
}

func TestNewPanics(t *testing.T) {
	for _, q := range []uint64{0, 1, 1 << 62, 1 << 63} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d) should panic", q)
				}
			}()
			New(q)
		}()
	}
}

func BenchmarkMulBarrett(b *testing.B) {
	r := New(1<<50 - 27)
	x, y := uint64(123456789012345), uint64(987654321098765)
	for i := 0; i < b.N; i++ {
		x = r.Mul(x, y)
	}
}

func BenchmarkMulShoup(b *testing.B) {
	r := New(1<<50 - 27)
	w := uint64(987654321098765) % r.Q
	ws := r.ShoupConst(w)
	x := uint64(123456789012345)
	for i := 0; i < b.N; i++ {
		x = r.MulShoup(x, w, ws)
	}
}
