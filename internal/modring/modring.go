// Package modring implements fast single-word modular arithmetic for
// moduli below 2⁶², the workhorse of the NTT used by the SEAL-style CPU
// baseline. It provides Barrett reduction for general products and Shoup
// multiplication for products with a precomputed constant operand (twiddle
// factors), matching the inner loops of production BFV libraries.
package modring

import "math/bits"

// Ring is a modulus with its precomputed Barrett constant.
type Ring struct {
	Q uint64
	// barrettHi:barrettLo ≈ floor(2^128 / Q), used for 128-bit Barrett.
	barrettHi uint64
	barrettLo uint64
}

// New returns a Ring for modulus q (1 < q < 2⁶²).
func New(q uint64) *Ring {
	if q < 2 || q >= 1<<62 {
		panic("modring: modulus out of range (need 1 < q < 2^62)")
	}
	// Compute floor(2^128 / q) via two-step division.
	hi, rem := bits.Div64(1, 0, q) // floor(2^64 / q), remainder
	lo, _ := bits.Div64(rem, 0, q)
	return &Ring{Q: q, barrettHi: hi, barrettLo: lo}
}

// Reduce returns x mod q for x < 2^64.
func (r *Ring) Reduce(x uint64) uint64 { return x % r.Q }

// Add returns (a + b) mod q for a, b < q.
func (r *Ring) Add(a, b uint64) uint64 {
	s := a + b
	if s >= r.Q || s < a { // s < a detects wraparound (q < 2^62 makes it moot)
		s -= r.Q
	}
	return s
}

// Sub returns (a - b) mod q for a, b < q.
func (r *Ring) Sub(a, b uint64) uint64 {
	d := a - b
	if a < b {
		d += r.Q
	}
	return d
}

// Neg returns (-a) mod q for a < q.
func (r *Ring) Neg(a uint64) uint64 {
	if a == 0 {
		return 0
	}
	return r.Q - a
}

// Mul returns (a * b) mod q for a, b < q, via 128-bit Barrett reduction.
func (r *Ring) Mul(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	return r.reduce128(hi, lo)
}

// reduce128 reduces the 128-bit value hi:lo modulo q. The value must
// satisfy x < q·2⁶⁴ — the quotient has to fit one word for the Barrett
// estimate (and the correction loop) to be meaningful. Every caller
// bounds its operands so this holds: products of values below q (Mul),
// lazily-reduced pointwise products folded below 2q per operand, and the
// fused 128-bit accumulations capped by ntt.Acc128Capacity.
func (r *Ring) reduce128(hi, lo uint64) uint64 {
	// q < 2^62 keeps the estimate within one conditional subtraction.
	// Estimate floor(x/q) ≈ floor((x * floor(2^128/q)) / 2^128), computing
	// only the needed upper words of the 256-bit product.
	// x = hi*2^64 + lo; mu = barrettHi*2^64 + barrettLo.
	// t = floor(x*mu / 2^128) = hi*barrettHi + floor((cross terms + ...)/2^64)
	c1hi, c1lo := bits.Mul64(hi, r.barrettLo)
	c2hi, c2lo := bits.Mul64(lo, r.barrettHi)
	c3hi, _ := bits.Mul64(lo, r.barrettLo)

	mid, carry1 := bits.Add64(c1lo, c2lo, 0)
	_, carry2 := bits.Add64(mid, c3hi, 0)
	t := hi*r.barrettHi + c1hi + c2hi + carry1 + carry2

	// rem = x - t*q, then correct (at most twice).
	ph, pl := bits.Mul64(t, r.Q)
	rl, borrow := bits.Sub64(lo, pl, 0)
	rh, _ := bits.Sub64(hi, ph, borrow)
	rem := rl
	for rh != 0 || rem >= r.Q {
		rem2, borrow := bits.Sub64(rem, r.Q, 0)
		rh -= borrow
		rem = rem2
	}
	return rem
}

// BarrettConsts exposes the two words of ⌊2¹²⁸/q⌋ (hi, lo) for kernels
// that inline the 128-bit Barrett reduction — the vectorized pointwise
// and accumulator paths in internal/ntt replicate reduce128 lane-wise
// and need the same constants the scalar reduction uses.
func (r *Ring) BarrettConsts() (hi, lo uint64) { return r.barrettHi, r.barrettLo }

// ReduceWide returns (hi·2⁶⁴ + lo) mod q for a 128-bit value below
// q·2⁶⁴ (see reduce128) — the folding primitive the RNS base-conversion
// kernels use to bring a two-word remainder into a limb channel without
// a hardware division.
func (r *Ring) ReduceWide(hi, lo uint64) uint64 { return r.reduce128(hi, lo) }

// Pow returns a^e mod q.
func (r *Ring) Pow(a, e uint64) uint64 {
	res := uint64(1)
	a %= r.Q
	for e > 0 {
		if e&1 == 1 {
			res = r.Mul(res, a)
		}
		a = r.Mul(a, a)
		e >>= 1
	}
	return res
}

// Inv returns the inverse of a mod q (q prime), via Fermat.
func (r *Ring) Inv(a uint64) uint64 { return r.Pow(a, r.Q-2) }

// ShoupConst precomputes floor(w * 2^64 / q) for Shoup multiplication by
// the fixed operand w.
func (r *Ring) ShoupConst(w uint64) uint64 {
	hi, _ := bits.Div64(w, 0, r.Q)
	return hi
}

// MulShoup returns (a * w) mod q given wShoup = ShoupConst(w). This is the
// two-multiply butterfly primitive (Harvey, "Faster arithmetic for
// number-theoretic transforms").
func (r *Ring) MulShoup(a, w, wShoup uint64) uint64 {
	res := r.MulShoupLazy(a, w, wShoup)
	if res >= r.Q {
		res -= r.Q
	}
	return res
}

// MulShoupLazy is MulShoup without the final conditional subtraction: the
// result lies in [0, 2q). It accepts any a < 2^64 (the quotient estimate
// floor(a·wShoup/2^64) undershoots floor(a·w/q) by at most one), which is
// what lets the NTT butterflies run on lazily-reduced values < 4q.
func (r *Ring) MulShoupLazy(a, w, wShoup uint64) uint64 {
	qhat, _ := bits.Mul64(a, wShoup)
	return a*w - qhat*r.Q
}
