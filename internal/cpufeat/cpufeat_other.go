//go:build !amd64 && !arm64

package cpufeat

func detect() Features { return Features{} }
