//go:build arm64

package cpufeat

// Advanced SIMD (NEON) is architecturally mandatory on AArch64, so no
// runtime probing is needed. No NEON kernels exist yet: the dispatch
// layer reports the feature and keeps the scalar path.
func detect() Features { return Features{NEON: true} }
