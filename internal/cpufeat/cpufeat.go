// Package cpufeat detects, at process start, the SIMD instruction-set
// extensions the vectorized kernels in internal/ntt can dispatch to.
// Detection is self-contained (raw CPUID/XGETBV on amd64) so the module
// needs no external dependency; non-amd64 architectures report no x86
// features and arm64 reports NEON (always architecturally present),
// which the dispatch layer treats as "detected but no kernels yet".
//
// The flags describe only what the hardware AND the operating system
// support: AVX state must be OS-enabled via XSAVE (XCR0 bits 1–2) and
// AVX-512 state via XCR0 bits 5–7, otherwise the corresponding flag is
// reported false even if CPUID advertises the instructions.
package cpufeat

// Features is the detected SIMD capability set of the host.
type Features struct {
	// AVX2 means VEX-encoded 256-bit integer SIMD is usable
	// (AVX2 + OS-enabled YMM state).
	AVX2 bool
	// AVX512 means the Skylake-X server bundle is usable:
	// AVX-512 F+DQ+BW+VL with OS-enabled opmask/ZMM state. The NTT
	// kernels need F (64-bit lane ops, masks), DQ (VPMULLQ) and VL;
	// BW rides along on every server part that has the other three.
	AVX512 bool
	// NEON means the architecturally mandatory Advanced-SIMD unit of
	// an arm64 host. Detection-only: no NEON kernels exist yet, so the
	// dispatch layer reports it and still runs the scalar path.
	NEON bool
}

var hostFeatures = detect()

// Host returns the features detected at process start. The value is
// computed once and immutable, so it is safe for concurrent use.
func Host() Features { return hostFeatures }

// String renders the detected set the way diagnostic tools print it,
// e.g. "avx2,avx512" or "none".
func (f Features) String() string {
	s := ""
	add := func(name string) {
		if s != "" {
			s += ","
		}
		s += name
	}
	if f.AVX2 {
		add("avx2")
	}
	if f.AVX512 {
		add("avx512")
	}
	if f.NEON {
		add("neon")
	}
	if s == "" {
		return "none"
	}
	return s
}
