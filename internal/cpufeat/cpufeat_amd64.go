//go:build amd64

package cpufeat

// cpuid executes CPUID with the given leaf/subleaf.
func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)

// xgetbv reads XCR0 (requires OSXSAVE, checked by the caller).
func xgetbv() (eax, edx uint32)

// CPUID bit positions (Intel SDM vol. 2A, CPUID leaf 01H/07H).
const (
	leaf1ECXOSXSAVE = 1 << 27
	leaf1ECXAVX     = 1 << 28

	leaf7EBXAVX2     = 1 << 5
	leaf7EBXAVX512F  = 1 << 16
	leaf7EBXAVX512DQ = 1 << 17
	leaf7EBXAVX512BW = 1 << 30
	leaf7EBXAVX512VL = 1 << 31

	// XCR0 state-component bits the OS must have enabled.
	xcr0SSE      = 1 << 1
	xcr0AVX      = 1 << 2
	xcr0Opmask   = 1 << 5
	xcr0ZMMHi256 = 1 << 6
	xcr0Hi16ZMM  = 1 << 7
)

func detect() Features {
	var f Features
	maxLeaf, _, _, _ := cpuid(0, 0)
	if maxLeaf < 7 {
		return f
	}
	_, _, ecx1, _ := cpuid(1, 0)
	if ecx1&leaf1ECXOSXSAVE == 0 || ecx1&leaf1ECXAVX == 0 {
		return f // no OS XSAVE support: no VEX/EVEX state at all
	}
	xlo, _ := xgetbv()
	avxState := xlo&(xcr0SSE|xcr0AVX) == xcr0SSE|xcr0AVX
	avx512State := avxState && xlo&(xcr0Opmask|xcr0ZMMHi256|xcr0Hi16ZMM) ==
		xcr0Opmask|xcr0ZMMHi256|xcr0Hi16ZMM

	_, ebx7, _, _ := cpuid(7, 0)
	f.AVX2 = avxState && ebx7&leaf7EBXAVX2 != 0
	const avx512Bundle = leaf7EBXAVX512F | leaf7EBXAVX512DQ | leaf7EBXAVX512BW | leaf7EBXAVX512VL
	f.AVX512 = avx512State && f.AVX2 && ebx7&avx512Bundle == avx512Bundle
	return f
}
