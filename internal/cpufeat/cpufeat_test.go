package cpufeat

import "testing"

func TestHostIsStable(t *testing.T) {
	a, b := Host(), Host()
	if a != b {
		t.Fatalf("Host() not stable: %+v vs %+v", a, b)
	}
	t.Logf("detected: %s", a)
}

func TestAVX512ImpliesAVX2(t *testing.T) {
	f := Host()
	if f.AVX512 && !f.AVX2 {
		t.Fatalf("AVX512 detected without AVX2: %+v", f)
	}
}

func TestString(t *testing.T) {
	if got := (Features{}).String(); got != "none" {
		t.Fatalf("empty feature set = %q, want none", got)
	}
	if got := (Features{AVX2: true, AVX512: true}).String(); got != "avx2,avx512" {
		t.Fatalf("avx2+avx512 = %q", got)
	}
	if got := (Features{NEON: true}).String(); got != "neon" {
		t.Fatalf("neon = %q", got)
	}
}
