package hepim

import (
	"testing"

	"repro/internal/bfv"
	"repro/internal/pim"
	"repro/internal/sampling"
)

type fixture struct {
	params *bfv.Parameters
	sk     *bfv.SecretKey
	enc    *bfv.Encryptor
	dec    *bfv.Decryptor
	eval   *bfv.Evaluator
	srv    *Server
}

func newFixture(t *testing.T, seed uint64) *fixture {
	t.Helper()
	params := bfv.ParamsToy()
	src := sampling.NewSourceFromUint64(seed)
	kg := bfv.NewKeyGenerator(params, src)
	sk, pk := kg.GenKeyPair()
	rlk := kg.GenRelinKey(sk)

	cfg := pim.DefaultConfig()
	cfg.NumDPUs = 8
	srv, err := NewServer(cfg, params, rlk)
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{
		params: params,
		sk:     sk,
		enc:    bfv.NewEncryptor(params, pk, src),
		dec:    bfv.NewDecryptor(params, sk),
		eval:   bfv.NewEvaluator(params, rlk),
		srv:    srv,
	}
}

func TestServerAddMatchesHostBitExact(t *testing.T) {
	f := newFixture(t, 1)
	ct1, _ := f.enc.EncryptValue(3)
	ct2, _ := f.enc.EncryptValue(9)
	got, err := f.srv.Add(ct1, ct2)
	if err != nil {
		t.Fatal(err)
	}
	want := f.eval.Add(ct1, ct2)
	if !got.Equal(want) {
		t.Fatal("PIM Add differs from host evaluator")
	}
	if v := f.dec.DecryptValue(got); v != 12 {
		t.Errorf("decrypt(PIM add) = %d", v)
	}
	if len(f.srv.Reports) == 0 || f.srv.ModeledSeconds() <= 0 {
		t.Error("server recorded no kernel time")
	}
}

func TestServerSumMatchesHost(t *testing.T) {
	f := newFixture(t, 2)
	var cts []*bfv.Ciphertext
	want := uint64(0)
	for i := uint64(1); i <= 10; i++ {
		ct, _ := f.enc.EncryptValue(i % 4)
		cts = append(cts, ct)
		want += i % 4
	}
	got, err := f.srv.Sum(cts)
	if err != nil {
		t.Fatal(err)
	}
	// Host reference: fold with the evaluator.
	ref := cts[0]
	for _, ct := range cts[1:] {
		ref = f.eval.Add(ref, ct)
	}
	if !got.Equal(ref) {
		t.Fatal("PIM Sum differs from host fold")
	}
	if v := f.dec.DecryptValue(got); v != want%f.params.T {
		t.Errorf("decrypt(PIM sum) = %d, want %d", v, want%f.params.T)
	}
}

func TestServerSumErrors(t *testing.T) {
	f := newFixture(t, 3)
	if _, err := f.srv.Sum(nil); err == nil {
		t.Error("empty sum accepted")
	}
}

func TestServerMulMatchesHostBitExact(t *testing.T) {
	f := newFixture(t, 4)
	ct1, _ := f.enc.EncryptValue(3)
	ct2, _ := f.enc.EncryptValue(5)
	got, err := f.srv.Mul(ct1, ct2)
	if err != nil {
		t.Fatal(err)
	}
	want, err := f.eval.Mul(ct1, ct2)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatal("PIM Mul differs from host evaluator (not bit-exact)")
	}
	if v := f.dec.DecryptValue(got); v != 15 {
		t.Errorf("decrypt(PIM mul) = %d, want 15", v)
	}
}

func TestServerSquareForVariance(t *testing.T) {
	f := newFixture(t, 5)
	ct, _ := f.enc.EncryptValue(3)
	sq, err := f.srv.Square(ct)
	if err != nil {
		t.Fatal(err)
	}
	if v := f.dec.DecryptValue(sq); v != 9 {
		t.Errorf("decrypt(PIM square) = %d, want 9", v)
	}
}

func TestServerMulThenAddPipeline(t *testing.T) {
	// A small encrypted pipeline entirely on the PIM server:
	// (2*3) + (4*2) = 14.
	f := newFixture(t, 6)
	a, _ := f.enc.EncryptValue(2)
	b, _ := f.enc.EncryptValue(3)
	c, _ := f.enc.EncryptValue(4)
	ab, err := f.srv.Mul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	cd, err := f.srv.Mul(c, a)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := f.srv.Add(ab, cd)
	if err != nil {
		t.Fatal(err)
	}
	if v := f.dec.DecryptValue(sum); v != 14 {
		t.Errorf("pipeline result = %d, want 14", v)
	}
}

func TestServerMulRequiresRelinKey(t *testing.T) {
	params := bfv.ParamsToy()
	src := sampling.NewSourceFromUint64(7)
	kg := bfv.NewKeyGenerator(params, src)
	sk, pk := kg.GenKeyPair()
	_ = sk
	cfg := pim.DefaultConfig()
	cfg.NumDPUs = 2
	srv, err := NewServer(cfg, params, nil)
	if err != nil {
		t.Fatal(err)
	}
	enc := bfv.NewEncryptor(params, pk, src)
	ct, _ := enc.EncryptValue(1)
	if _, err := srv.Mul(ct, ct); err == nil {
		t.Error("Mul without relin key accepted")
	}
}

func TestServerAddDegreeMismatch(t *testing.T) {
	f := newFixture(t, 8)
	ct, _ := f.enc.EncryptValue(1)
	d2, err := f.eval.MulNoRelin(ct, ct)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.srv.Add(ct, d2); err == nil {
		t.Error("degree mismatch accepted")
	}
}

func TestResetReports(t *testing.T) {
	f := newFixture(t, 9)
	ct, _ := f.enc.EncryptValue(1)
	if _, err := f.srv.Add(ct, ct); err != nil {
		t.Fatal(err)
	}
	if len(f.srv.Reports) == 0 {
		t.Fatal("no reports recorded")
	}
	f.srv.ResetReports()
	if len(f.srv.Reports) != 0 || f.srv.ModeledSeconds() != 0 {
		t.Error("ResetReports did not clear")
	}
}
