package hepim

import (
	"testing"

	"repro/internal/bfv"
)

func TestServerSubMatchesHost(t *testing.T) {
	f := newFixture(t, 30)
	ct1, _ := f.enc.EncryptValue(9)
	ct2, _ := f.enc.EncryptValue(3)
	got, err := f.srv.Sub(ct1, ct2)
	if err != nil {
		t.Fatal(err)
	}
	want := f.eval.Sub(ct1, ct2)
	if !got.Equal(want) {
		t.Fatal("PIM Sub differs from host evaluator")
	}
	if v := f.dec.DecryptValue(got); v != 6 {
		t.Errorf("9 - 3 = %d", v)
	}
}

func TestServerNegMatchesHost(t *testing.T) {
	f := newFixture(t, 31)
	ct, _ := f.enc.EncryptValue(3)
	got, err := f.srv.Neg(ct)
	if err != nil {
		t.Fatal(err)
	}
	want := f.eval.Neg(ct)
	if !got.Equal(want) {
		t.Fatal("PIM Neg differs from host evaluator")
	}
	if v := f.dec.DecryptValue(got); v != f.params.T-3 {
		t.Errorf("-3 mod t = %d", v)
	}
}

func TestServerAddPlainMatchesHost(t *testing.T) {
	f := newFixture(t, 32)
	ct, _ := f.enc.EncryptValue(5)
	pt := bfv.NewPlaintext(f.params)
	pt.Coeffs[0] = 4
	got, err := f.srv.AddPlain(ct, pt)
	if err != nil {
		t.Fatal(err)
	}
	want := f.eval.AddPlain(ct, pt)
	if !got.Equal(want) {
		t.Fatal("PIM AddPlain differs from host evaluator")
	}
	if v := f.dec.DecryptValue(got); v != 9 {
		t.Errorf("5 + plain 4 = %d", v)
	}
}
