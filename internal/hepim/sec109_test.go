package hepim

import (
	"testing"

	"repro/internal/bfv"
	"repro/internal/hestats"
	"repro/internal/pim"
	"repro/internal/sampling"
)

// TestSec109AdditionPipelineRealParams runs the paper's flagship
// parameter set (N=4096, 109-bit q, 128-bit coefficients) through the
// full encrypted-mean pipeline on the simulated PIM system. Slow
// (real-size schoolbook polynomial products during key generation and
// encryption), so skipped under -short.
func TestSec109AdditionPipelineRealParams(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale 109-bit pipeline is slow")
	}
	params := bfv.ParamsSec109()
	src := sampling.NewSourceFromUint64(109)
	kg := bfv.NewKeyGenerator(params, src)
	sk, pk := kg.GenKeyPair()
	enc := bfv.NewEncryptor(params, pk, src)
	dec := bfv.NewDecryptor(params, sk)

	cfg := pim.DefaultConfig()
	cfg.NumDPUs = 32
	srv, err := NewServer(cfg, params, nil)
	if err != nil {
		t.Fatal(err)
	}

	vals := []uint64{3, 7, 1, 5}
	var cts []*bfv.Ciphertext
	var want uint64
	for _, v := range vals {
		ct, err := enc.EncryptValue(v)
		if err != nil {
			t.Fatal(err)
		}
		cts = append(cts, ct)
		want += v
	}
	m, err := hestats.Mean(srv, cts)
	if err != nil {
		t.Fatal(err)
	}
	if got := dec.DecryptValue(m.Sum); got != want%params.T {
		t.Errorf("sec109 PIM sum = %d, want %d", got, want%params.T)
	}
	if b := dec.NoiseBudget(m.Sum); b <= 0 {
		t.Errorf("sec109 budget exhausted: %d", b)
	}
	// The kernel report must reflect the real 128-bit workload.
	if len(srv.Reports) == 0 {
		t.Fatal("no kernel reports")
	}
	if srv.ModeledSeconds() <= 0 {
		t.Error("no modeled kernel time")
	}
}
