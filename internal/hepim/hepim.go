// Package hepim executes BFV homomorphic operations on the simulated
// UPMEM PIM system — the deployment the paper proposes (§3): users
// encrypt locally, the PIM server computes on ciphertexts, results come
// back still encrypted.
//
// Addition and summation run entirely as DPU kernels and are bit-exact
// against the host evaluator. Multiplication follows the paper's split:
// the polynomial multiplications (the dominant cost) run on the PIM
// cores, while the host performs the t/q rescaling — made exact by
// lifting centered operands into a 256-bit working modulus wide enough
// that no tensor coefficient wraps.
package hepim

import (
	"errors"
	"fmt"
	"math/big"

	"repro/internal/bfv"
	"repro/internal/pim"
	"repro/internal/pim/kernels"
	"repro/internal/pimsched"
	"repro/internal/poly"
)

// Server is a PIM-resident BFV evaluation service. All kernels run
// through the async multi-DPU execution plane (internal/pimsched):
// work is sharded over the scheduler's rank×DPU topology and the
// per-op reports carry the sharded cycle/transfer/energy breakdown,
// including both the pipelined makespan and the no-overlap serial
// time.
type Server struct {
	Sys    *pim.System
	Sched  *pimsched.Scheduler
	Params *bfv.Parameters

	lift *poly.Modulus // 256-bit lift modulus for exact tensor products
	rlk  *bfv.RelinKey

	// Reports collects the launch reports of every kernel this server ran
	// (reset with ResetReports), in the flat pim.Report shape older
	// consumers read; SchedReports carries the full sharded breakdowns.
	Reports      []*pim.Report
	SchedReports []*pimsched.Report
}

// NewServer builds a PIM evaluation server over the largest whole-rank
// topology fitting cfg.NumDPUs, with transfer/compute overlap enabled.
// rlk may be nil when Mul is not used.
func NewServer(cfg pim.SystemConfig, params *bfv.Parameters, rlk *bfv.RelinKey) (*Server, error) {
	return NewServerWithTopology(cfg, params, rlk, pimsched.FitTopology(cfg.NumDPUs), true)
}

// NewServerWithTopology builds a PIM evaluation server scheduling over
// an explicit rank×DPU topology. The topology must fit within
// cfg.NumDPUs; overlap selects whether the modeled makespan pipelines
// staging against compute or serializes every phase.
func NewServerWithTopology(cfg pim.SystemConfig, params *bfv.Parameters, rlk *bfv.RelinKey, topo pimsched.Topology, overlap bool) (*Server, error) {
	sys, err := pim.NewSystem(cfg)
	if err != nil {
		return nil, err
	}
	sched, err := pimsched.New(sys, topo, overlap)
	if err != nil {
		return nil, err
	}
	// Lift modulus: any modulus exceeding 2·n·(q/2)² + margin keeps the
	// centered tensor coefficients from wrapping. 2²⁵⁶−189 covers every
	// paper parameter set (n ≤ 4096, q ≤ 2¹⁰⁹ → bound < 2²³⁰).
	liftQ := new(big.Int).Lsh(big.NewInt(1), 256)
	liftQ.Sub(liftQ, big.NewInt(189))
	bound := new(big.Int).Mul(params.Q.QBig, params.Q.QBig)
	bound.Mul(bound, big.NewInt(int64(params.N)))
	if bound.BitLen() >= liftQ.BitLen()-1 {
		return nil, fmt.Errorf("hepim: parameters too large for the 256-bit lift modulus")
	}
	lift, err := poly.NewModulus(liftQ)
	if err != nil {
		return nil, err
	}
	return &Server{Sys: sys, Sched: sched, Params: params, lift: lift, rlk: rlk}, nil
}

// ResetReports clears the accumulated kernel reports.
func (s *Server) ResetReports() { s.Reports, s.SchedReports = nil, nil }

// record folds one scheduler run into both report streams.
func (s *Server) record(rep *pimsched.Report) {
	s.SchedReports = append(s.SchedReports, rep)
	s.Reports = append(s.Reports, &pim.Report{
		KernelCycles:   rep.KernelCycles,
		KernelSeconds:  rep.KernelSeconds,
		CopyInSeconds:  rep.CopyInSeconds,
		CopyOutSeconds: rep.CopyOutSeconds,
		TotalInstr:     rep.TotalInstr,
		TotalDMACycles: rep.TotalDMACycles,
		Counts:         rep.Counts,
		ActiveDPUs:     rep.ActiveDPUs,
	})
}

// ModeledSeconds sums the modeled kernel time of the accumulated reports.
func (s *Server) ModeledSeconds() float64 {
	var t float64
	for _, r := range s.Reports {
		t += r.KernelSeconds
	}
	return t
}

// Breakdown aggregates the accumulated scheduler reports into one
// sharded cycle/transfer/energy summary for the whole run so far.
func (s *Server) Breakdown() *pimsched.Report {
	total := &pimsched.Report{Topology: s.Sched.Topo, Overlap: s.Sched.Overlap}
	for _, r := range s.SchedReports {
		total.Accumulate(r)
	}
	return total
}

// flattenPolys concatenates ciphertext component p of every ciphertext.
func flattenPolys(cts []*bfv.Ciphertext, comp, n, w int) []uint32 {
	out := make([]uint32, 0, len(cts)*n*w)
	for _, ct := range cts {
		out = append(out, ct.Polys[comp].C...)
	}
	return out
}

// Add returns ct0 + ct1 computed by the PIM vector-addition kernel.
// Bit-exact against bfv.Evaluator.Add.
func (s *Server) Add(ct0, ct1 *bfv.Ciphertext) (*bfv.Ciphertext, error) {
	if len(ct0.Polys) != len(ct1.Polys) {
		return nil, errors.New("hepim: degree mismatch (relinearize first)")
	}
	par := s.Params
	n, w := par.N, par.Q.W
	a := flattenPolys([]*bfv.Ciphertext{ct0}, 0, n, w)
	b := flattenPolys([]*bfv.Ciphertext{ct1}, 0, n, w)
	for c := 1; c < len(ct0.Polys); c++ {
		a = append(a, ct0.Polys[c].C...)
		b = append(b, ct1.Polys[c].C...)
	}
	out, rep, err := kernels.RunVectorAddSched(s.Sched, a, b, w, par.Q.Q)
	if err != nil {
		return nil, err
	}
	s.record(rep)
	return unflatten(out, len(ct0.Polys), n, w), nil
}

// Neg returns −ct. Negation is a single data-recoding pass (q − x per
// coefficient) the host performs while staging, like the paper's
// host-side scalar work; no kernel launch is charged.
func (s *Server) Neg(ct *bfv.Ciphertext) (*bfv.Ciphertext, error) {
	par := s.Params
	out := &bfv.Ciphertext{Polys: make([]*poly.Poly, len(ct.Polys))}
	for i, p := range ct.Polys {
		np := poly.NewPoly(par.N, par.Q.W)
		poly.Neg(np, p, par.Q, nil)
		out.Polys[i] = np
	}
	return out, nil
}

// Sub returns ct0 − ct1 computed on the PIM system: the host negates ct1
// (data recoding) and the addition kernel does the arithmetic.
func (s *Server) Sub(ct0, ct1 *bfv.Ciphertext) (*bfv.Ciphertext, error) {
	neg, err := s.Neg(ct1)
	if err != nil {
		return nil, err
	}
	return s.Add(ct0, neg)
}

// AddPlain returns ct + Δ·m with the addition on the PIM system.
func (s *Server) AddPlain(ct *bfv.Ciphertext, pt *bfv.Plaintext) (*bfv.Ciphertext, error) {
	par := s.Params
	dm := bfv.DeltaEncode(par, pt)
	other := ct.Clone()
	other.Polys[0] = dm
	for i := 1; i < len(other.Polys); i++ {
		other.Polys[i] = poly.NewPoly(par.N, par.Q.W)
	}
	return s.Add(ct, other)
}

// Sum reduces many degree-1 ciphertexts in one kernel launch per
// component — the paper's arithmetic-mean aggregation.
func (s *Server) Sum(cts []*bfv.Ciphertext) (*bfv.Ciphertext, error) {
	if len(cts) == 0 {
		return nil, errors.New("hepim: empty sum")
	}
	par := s.Params
	n, w := par.N, par.Q.W
	comps := len(cts[0].Polys)
	for _, ct := range cts {
		if len(ct.Polys) != comps {
			return nil, errors.New("hepim: mixed-degree ciphertexts in sum")
		}
	}
	outPolys := make([]*poly.Poly, comps)
	for c := 0; c < comps; c++ {
		vecs := make([][]uint32, len(cts))
		for i, ct := range cts {
			vecs[i] = ct.Polys[c].C
		}
		out, rep, err := kernels.RunVectorSumSched(s.Sched, vecs, w, par.Q.Q)
		if err != nil {
			return nil, err
		}
		s.record(rep)
		p := poly.NewPoly(n, w)
		copy(p.C, out)
		outPolys[c] = p
	}
	return &bfv.Ciphertext{Polys: outPolys}, nil
}

// unflatten splits a flat limb vector back into ciphertext polynomials.
func unflatten(flat []uint32, comps, n, w int) *bfv.Ciphertext {
	polys := make([]*poly.Poly, comps)
	for c := 0; c < comps; c++ {
		p := poly.NewPoly(n, w)
		copy(p.C, flat[c*n*w:(c+1)*n*w])
		polys[c] = p
	}
	return &bfv.Ciphertext{Polys: polys}
}

// liftCentered maps a mod-q polynomial to the 256-bit lift modulus with
// centered representatives, so PIM products equal the integer products.
func (s *Server) liftCentered(p *poly.Poly) *poly.Poly {
	return poly.FromBigCoeffs(p.ToCenteredCoeffs(s.Params.Q), s.lift)
}

// Mul returns the relinearized product of two degree-1 ciphertexts with
// every polynomial multiplication executed on the PIM system:
//
//  1. tensor products a·b over the 256-bit lift modulus (4 pairs, one
//     kernel launch);
//  2. host t/q rescaling of the centered results (cheap, linear);
//  3. relinearization digit products against the evaluation key (2·digits
//     pairs, one kernel launch) and the final additions (one launch).
//
// Bit-exact against bfv.Evaluator.Mul.
func (s *Server) Mul(ct0, ct1 *bfv.Ciphertext) (*bfv.Ciphertext, error) {
	if ct0.Degree() != 1 || ct1.Degree() != 1 {
		return nil, errors.New("hepim: Mul requires degree-1 ciphertexts")
	}
	if s.rlk == nil {
		return nil, errors.New("hepim: server has no relinearization key")
	}
	par := s.Params
	n := par.N
	lw := s.lift.W

	// Tensor products on PIM over the lift modulus.
	a0, a1 := s.liftCentered(ct0.Polys[0]), s.liftCentered(ct0.Polys[1])
	b0, b1 := s.liftCentered(ct1.Polys[0]), s.liftCentered(ct1.Polys[1])
	a := make([]uint32, 0, 4*n*lw)
	b := make([]uint32, 0, 4*n*lw)
	a = append(append(append(append(a, a0.C...), a0.C...), a1.C...), a1.C...)
	b = append(append(append(append(b, b0.C...), b1.C...), b0.C...), b1.C...)
	prods, rep, err := kernels.RunVectorPolyMulSched(s.Sched, a, b, n, lw, s.lift.Q)
	if err != nil {
		return nil, err
	}
	s.record(rep)

	// Host: centered-lift each product back to Z, combine the cross terms,
	// rescale by t/q.
	productZ := func(idx int) []*big.Int {
		p := poly.NewPoly(n, lw)
		copy(p.C, prods[idx*n*lw:(idx+1)*n*lw])
		return p.ToCenteredCoeffs(s.lift)
	}
	d0z := productZ(0)
	d1z := productZ(1)
	for i, c := range productZ(2) {
		d1z[i] = new(big.Int).Add(d1z[i], c)
	}
	d2z := productZ(3)

	d0 := bfv.ScaleRoundCoeffs(par, d0z)
	d1 := bfv.ScaleRoundCoeffs(par, d1z)
	d2 := bfv.ScaleRoundCoeffs(par, d2z)

	// Relinearization: digit products on PIM over q.
	digits := bfv.DecomposeForRelin(d2, par)
	w := par.Q.W
	ra := make([]uint32, 0, 2*len(digits)*n*w)
	rb := make([]uint32, 0, 2*len(digits)*n*w)
	for i, d := range digits {
		if i >= len(s.rlk.K0) {
			break
		}
		ra = append(ra, d.C...)
		rb = append(rb, s.rlk.K0[i].C...)
		ra = append(ra, d.C...)
		rb = append(rb, s.rlk.K1[i].C...)
	}
	rprods, rep2, err := kernels.RunVectorPolyMulSched(s.Sched, ra, rb, n, w, par.Q.Q)
	if err != nil {
		return nil, err
	}
	s.record(rep2)

	// Final additions on PIM: c0 = d0 + Σ even products, c1 = d1 + Σ odd.
	pairs := len(rprods) / (2 * n * w)
	sum0 := [][]uint32{d0.C}
	sum1 := [][]uint32{d1.C}
	for i := 0; i < pairs; i++ {
		sum0 = append(sum0, rprods[(2*i)*n*w:(2*i+1)*n*w])
		sum1 = append(sum1, rprods[(2*i+1)*n*w:(2*i+2)*n*w])
	}
	c0flat, rep3, err := kernels.RunVectorSumSched(s.Sched, sum0, w, par.Q.Q)
	if err != nil {
		return nil, err
	}
	s.record(rep3)
	c1flat, rep4, err := kernels.RunVectorSumSched(s.Sched, sum1, w, par.Q.Q)
	if err != nil {
		return nil, err
	}
	s.record(rep4)

	c0 := poly.NewPoly(n, w)
	copy(c0.C, c0flat)
	c1 := poly.NewPoly(n, w)
	copy(c1.C, c1flat)
	return &bfv.Ciphertext{Polys: []*poly.Poly{c0, c1}}, nil
}

// Square is Mul(ct, ct) — the variance workload's inner operation.
func (s *Server) Square(ct *bfv.Ciphertext) (*bfv.Ciphertext, error) {
	return s.Mul(ct, ct)
}

// ApplyGalois applies the automorphism X→X^g to a degree-1 ciphertext
// with the key-switching digit products executed on the PIM system (one
// kernel launch), bit-exact against bfv.Evaluator.ApplyGalois. Like the
// host evaluator, it uses the decompose-then-permute convention (c1's
// digits are computed first, then permuted — the ordering that lets a
// host hoist one decomposition across many Galois elements). The
// permutations themselves are data movement, not arithmetic; the host
// performs them as the paper's host performs scalar work.
func (s *Server) ApplyGalois(ct *bfv.Ciphertext, gk *bfv.GaloisKey) (*bfv.Ciphertext, error) {
	if ct.Degree() != 1 {
		return nil, errors.New("hepim: ApplyGalois requires a degree-1 ciphertext")
	}
	if gk == nil {
		return nil, errors.New("hepim: nil Galois key")
	}
	par := s.Params
	n, w := par.N, par.Q.W

	// Host: permute c0 and the digits of c1 (pure data movement).
	c0 := bfv.PermuteGaloisPoly(ct.Polys[0], gk.G, par)

	// PIM: permuted digit × key products, one launch.
	digits := bfv.DecomposeForRelin(ct.Polys[1], par)
	for i, d := range digits {
		digits[i] = bfv.PermuteGaloisPoly(d, gk.G, par)
	}
	ra := make([]uint32, 0, 2*len(digits)*n*w)
	rb := make([]uint32, 0, 2*len(digits)*n*w)
	pairs := 0
	for i, d := range digits {
		if i >= len(gk.K0) {
			break
		}
		ra = append(ra, d.C...)
		rb = append(rb, gk.K0[i].C...)
		ra = append(ra, d.C...)
		rb = append(rb, gk.K1[i].C...)
		pairs += 2
	}
	prods, rep, err := kernels.RunVectorPolyMulSched(s.Sched, ra, rb, n, w, par.Q.Q)
	if err != nil {
		return nil, err
	}
	s.record(rep)

	// PIM: fold the products into (c0, c1) with sum kernels.
	sum0 := [][]uint32{c0.C}
	var sum1 [][]uint32
	for i := 0; i < pairs/2; i++ {
		sum0 = append(sum0, prods[(2*i)*n*w:(2*i+1)*n*w])
		sum1 = append(sum1, prods[(2*i+1)*n*w:(2*i+2)*n*w])
	}
	c0flat, rep2, err := kernels.RunVectorSumSched(s.Sched, sum0, w, par.Q.Q)
	if err != nil {
		return nil, err
	}
	s.record(rep2)
	c1flat, rep3, err := kernels.RunVectorSumSched(s.Sched, sum1, w, par.Q.Q)
	if err != nil {
		return nil, err
	}
	s.record(rep3)

	outC0 := poly.NewPoly(n, w)
	copy(outC0.C, c0flat)
	outC1 := poly.NewPoly(n, w)
	copy(outC1.C, c1flat)
	return &bfv.Ciphertext{Polys: []*poly.Poly{outC0, outC1}}, nil
}
