package hepim

import (
	"testing"

	"repro/internal/bfv"
	"repro/internal/pim"
	"repro/internal/pim/kernels"
	"repro/internal/sampling"
)

func TestServerApplyGaloisMatchesHostBitExact(t *testing.T) {
	f := newFixture(t, 20)
	src := sampling.NewSourceFromUint64(200)
	kg := bfv.NewKeyGenerator(f.params, src)
	gk, err := kg.GenGaloisKey(f.sk, 3)
	if err != nil {
		t.Fatal(err)
	}
	pt := bfv.NewPlaintext(f.params)
	for i := range pt.Coeffs {
		pt.Coeffs[i] = uint64(i % int(f.params.T))
	}
	ct, err := f.enc.Encrypt(pt)
	if err != nil {
		t.Fatal(err)
	}

	want, err := f.eval.ApplyGalois(ct, gk)
	if err != nil {
		t.Fatal(err)
	}
	got, err := f.srv.ApplyGalois(ct, gk)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatal("PIM ApplyGalois differs from host evaluator")
	}
	// And it decrypts to the permuted plaintext.
	dec := f.dec.Decrypt(got)
	ref := bfv.GaloisPlaintext(f.params, pt, 3)
	for i := range ref.Coeffs {
		if dec.Coeffs[i] != ref.Coeffs[i] {
			t.Fatalf("coeff %d: %d != %d", i, dec.Coeffs[i], ref.Coeffs[i])
		}
	}
}

func TestServerApplyGaloisErrors(t *testing.T) {
	f := newFixture(t, 21)
	ct, _ := f.enc.EncryptValue(1)
	if _, err := f.srv.ApplyGalois(ct, nil); err == nil {
		t.Error("nil key accepted")
	}
	d2, err := f.eval.MulNoRelin(ct, ct)
	if err != nil {
		t.Fatal(err)
	}
	src := sampling.NewSourceFromUint64(201)
	kg := bfv.NewKeyGenerator(f.params, src)
	gk, _ := kg.GenGaloisKey(f.sk, 3)
	if _, err := f.srv.ApplyGalois(d2, gk); err == nil {
		t.Error("degree-2 ciphertext accepted")
	}
}

// TestServerDeterministic: launching the same workload twice must produce
// identical results AND identical cycle reports — the simulation has no
// hidden nondeterminism despite host-side goroutine parallelism.
func TestServerDeterministic(t *testing.T) {
	run := func() (int64, *bfv.Ciphertext) {
		params := bfv.ParamsToy()
		src := sampling.NewSourceFromUint64(77)
		kg := bfv.NewKeyGenerator(params, src)
		sk, pk := kg.GenKeyPair()
		rlk := kg.GenRelinKey(sk)
		cfg := pim.DefaultConfig()
		cfg.NumDPUs = 8
		srv, err := NewServer(cfg, params, rlk)
		if err != nil {
			t.Fatal(err)
		}
		enc := bfv.NewEncryptor(params, pk, src)
		a, _ := enc.EncryptValue(3)
		b, _ := enc.EncryptValue(4)
		prod, err := srv.Mul(a, b)
		if err != nil {
			t.Fatal(err)
		}
		var cycles int64
		for _, r := range srv.Reports {
			cycles += r.KernelCycles
		}
		return cycles, prod
	}
	c1, p1 := run()
	c2, p2 := run()
	if c1 != c2 {
		t.Errorf("cycle counts differ across identical runs: %d vs %d", c1, c2)
	}
	if !p1.Equal(p2) {
		t.Error("results differ across identical runs")
	}
}

// TestWRAMExhaustionSurfacesAsError: a configuration whose per-tasklet
// working set cannot fit in WRAM must fail loudly, not silently truncate.
func TestWRAMExhaustionSurfacesAsError(t *testing.T) {
	cfg := pim.DefaultConfig()
	cfg.NumDPUs = 1
	cfg.Tasklets = 1 // one tasklet owns all n output accumulators
	sys, err := pim.NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// n=1024 with 8-limb coefficients: accumulators alone need
	// 2*1024*17 = 34816 words > 16384 WRAM words.
	n := 1024
	w := 8
	q := make([]uint32, w)
	for i := range q {
		q[i] = 0xffffffff
	}
	a := make([]uint32, n*w)
	b := make([]uint32, n*w)
	a[0], b[0] = 1, 1
	_, _, err = kernels.RunVectorPolyMul(sys, a, b, n, w, q)
	if err == nil {
		t.Fatal("expected WRAM exhaustion error")
	}
}
