package hepim

import (
	"testing"

	"repro/internal/bfv"
	"repro/internal/pim"
	"repro/internal/pimsched"
	"repro/internal/sampling"
)

// multiRankFixture builds a server over an explicit multi-rank
// topology so the sharded breakdown exercises the overlap path.
func multiRankFixture(t *testing.T, overlap bool) *fixture {
	t.Helper()
	params := bfv.ParamsToy()
	src := sampling.NewSourceFromUint64(5)
	kg := bfv.NewKeyGenerator(params, src)
	sk, pk := kg.GenKeyPair()
	rlk := kg.GenRelinKey(sk)

	cfg := pim.DefaultConfig()
	topo := pimsched.Topology{Ranks: 4, DPUsPerRank: 4}
	cfg.NumDPUs = topo.NumDPUs()
	srv, err := NewServerWithTopology(cfg, params, rlk, topo, overlap)
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{
		params: params,
		sk:     sk,
		enc:    bfv.NewEncryptor(params, pk, src),
		dec:    bfv.NewDecryptor(params, sk),
		eval:   bfv.NewEvaluator(params, rlk),
		srv:    srv,
	}
}

func TestBreakdownAggregatesSchedReports(t *testing.T) {
	f := multiRankFixture(t, true)
	ct1, _ := f.enc.EncryptValue(3)
	ct2, _ := f.enc.EncryptValue(9)
	got, err := f.srv.Mul(ct1, ct2)
	if err != nil {
		t.Fatal(err)
	}
	want, err := f.eval.Mul(ct1, ct2)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatal("PIM Mul differs from host evaluator")
	}
	bd := f.srv.Breakdown()
	if bd.Topology != f.srv.Sched.Topo || !bd.Overlap {
		t.Errorf("breakdown topology/overlap not carried: %+v", bd)
	}
	if len(f.srv.SchedReports) != len(f.srv.Reports) {
		t.Errorf("report streams diverged: %d sched vs %d flat",
			len(f.srv.SchedReports), len(f.srv.Reports))
	}
	if bd.Launches == 0 || bd.Shards == 0 || bd.KernelCycles <= 0 {
		t.Errorf("empty breakdown: %+v", bd)
	}
	if bd.BytesIn <= 0 || bd.BytesOut <= 0 || bd.EnergyKernelJoules <= 0 || bd.EnergyTransferJoules <= 0 {
		t.Errorf("breakdown missing transfer/energy accounting: %+v", bd)
	}
	if bd.MakespanSeconds <= 0 || bd.SerialSeconds < bd.MakespanSeconds {
		t.Errorf("makespan/serial inconsistent: makespan=%g serial=%g",
			bd.MakespanSeconds, bd.SerialSeconds)
	}
}

// TestOverlapConfigPropagates checks overlap-off servers report
// makespan == serial while staying bit-identical.
func TestOverlapConfigPropagates(t *testing.T) {
	on := multiRankFixture(t, true)
	off := multiRankFixture(t, false)
	ct1, _ := on.enc.EncryptValue(7)
	ct2, _ := on.enc.EncryptValue(4)

	gotOn, err := on.srv.Add(ct1, ct2)
	if err != nil {
		t.Fatal(err)
	}
	gotOff, err := off.srv.Add(ct1, ct2)
	if err != nil {
		t.Fatal(err)
	}
	if !gotOn.Equal(gotOff) {
		t.Fatal("overlap mode changed results")
	}
	bdOff := off.srv.Breakdown()
	if bdOff.MakespanSeconds != bdOff.SerialSeconds {
		t.Errorf("overlap-off makespan %g != serial %g", bdOff.MakespanSeconds, bdOff.SerialSeconds)
	}
}
