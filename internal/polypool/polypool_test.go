package polypool

import (
	"sync"
	"testing"
)

func TestPoolRecycle(t *testing.T) {
	p := New(1 << 20)
	a := p.Get(256)
	if len(a) != 256 {
		t.Fatalf("Get(256) returned len %d", len(a))
	}
	a[0] = 0xdeadbeef
	p.Put(a)
	b := p.Get(256)
	if &b[0] != &a[0] {
		t.Fatalf("expected recycled backing, got a fresh one")
	}
	s := p.Stats()
	if s.Gets != 2 || s.Puts != 1 || s.Hits != 1 || s.Misses != 1 {
		t.Fatalf("stats = %+v, want gets=2 puts=1 hits=1 misses=1", s)
	}
	if s.InUse != 1 {
		t.Fatalf("InUse = %d, want 1", s.InUse)
	}
}

func TestPoolSizeClasses(t *testing.T) {
	p := New(1 << 20)
	a := p.Get(64)
	p.Put(a)
	// A different class must not serve the retained 64-word backing.
	b := p.Get(128)
	if len(b) != 128 {
		t.Fatalf("Get(128) returned len %d", len(b))
	}
	if p.Stats().Hits != 0 {
		t.Fatalf("cross-class Get hit the pool")
	}
	c := p.Get(64)
	if &c[0] != &a[0] {
		t.Fatalf("same-class Get missed the retained backing")
	}
}

func TestPoolRetentionCap(t *testing.T) {
	// Cap fits exactly one 256-word backing (1024 bytes).
	p := New(1024)
	a, b := p.Get(256), p.Get(256)
	p.Put(a)
	p.Put(b)
	s := p.Stats()
	if s.Dropped != 1 {
		t.Fatalf("Dropped = %d, want 1 (cap fits one backing)", s.Dropped)
	}
	if s.RetainedBytes != 1024 {
		t.Fatalf("RetainedBytes = %d, want 1024", s.RetainedBytes)
	}
	// InUse balances regardless of drops.
	if s.InUse != 0 {
		t.Fatalf("InUse = %d, want 0", s.InUse)
	}
}

func TestPoolRetentionDisabled(t *testing.T) {
	p := New(0)
	a := p.Get(64)
	p.Put(a)
	s := p.Stats()
	if s.Dropped != 1 || s.RetainedBytes != 0 {
		t.Fatalf("retention-disabled pool retained: %+v", s)
	}
	if s.InUse != 0 {
		t.Fatalf("InUse = %d, want 0 (accounting stays live with cap 0)", s.InUse)
	}
	b := p.Get(64)
	if &b[0] == &a[0] {
		t.Fatalf("retention-disabled pool recycled a backing")
	}
}

func TestPoolDrain(t *testing.T) {
	p := New(1 << 20)
	p.Put(p.Get(256))
	p.Put(p.Get(512))
	freed := p.Drain()
	if want := int64((256 + 512) * 4); freed != want {
		t.Fatalf("Drain freed %d bytes, want %d", freed, want)
	}
	s := p.Stats()
	if s.RetainedBytes != 0 {
		t.Fatalf("RetainedBytes = %d after Drain", s.RetainedBytes)
	}
	if s.Gets != 2 || s.Puts != 2 {
		t.Fatalf("Drain disturbed cumulative counters: %+v", s)
	}
	if len(p.Get(256)) != 256 {
		t.Fatalf("pool unusable after Drain")
	}
}

func TestPoolConcurrent(t *testing.T) {
	p := New(1 << 22)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed uint32) {
			defer wg.Done()
			classes := []int{64, 256, 1024}
			for i := 0; i < 500; i++ {
				b := p.Get(classes[(int(seed)+i)%len(classes)])
				b[0] = seed
				p.Put(b)
			}
		}(uint32(g))
	}
	wg.Wait()
	s := p.Stats()
	if s.InUse != 0 {
		t.Fatalf("InUse = %d after balanced concurrent use, want 0", s.InUse)
	}
	if s.Gets != 8*500 || s.Puts != 8*500 {
		t.Fatalf("counters lost updates: %+v", s)
	}
}
