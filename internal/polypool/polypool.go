// Package polypool provides size-classed free lists for limb-aligned
// polynomial backings ([]uint32 keyed by word count n·w). It is the
// memory layer behind the zero-copy serving path: request decoding
// acquires backings from a context-owned pool, evaluation reads them in
// place, and handle release returns them for the next request, so the
// steady-state serve loop recycles a fixed working set instead of
// churning the garbage collector.
//
// The pool is deliberately simple: a mutex-guarded map from word count
// to a stack of free backings, bounded by a total retention byte cap.
// Get prefers a pooled backing of the exact class and falls back to a
// fresh allocation (a miss); Put returns a backing, dropping it when
// retention is full. Every acquire/release is counted, and
// InUse = Gets − Puts is the leak-balance invariant the serve tests
// assert: a context that decoded k pooled ciphertexts and released all
// of them reads InUse == 0.
//
// Backings returned by Get have undefined contents — callers that need
// zeroed memory must clear them. The serving decode path overwrites
// every word, so it never pays for zeroing.
package polypool

import "sync"

// Stats is a point-in-time snapshot of pool counters. All fields are
// cumulative except InUse and RetainedBytes, which are balances.
type Stats struct {
	// Gets counts backings handed out (pooled or freshly allocated).
	Gets int64 `json:"gets"`
	// Puts counts backings returned (retained or dropped).
	Puts int64 `json:"puts"`
	// Hits counts Gets satisfied from a free list.
	Hits int64 `json:"hits"`
	// Misses counts Gets that fell back to a fresh allocation.
	Misses int64 `json:"misses"`
	// Dropped counts Puts discarded because retention was full (or the
	// pool is retention-disabled).
	Dropped int64 `json:"dropped"`
	// InUse is Gets − Puts: backings currently held by live handles.
	// A steady-state server with all handles released reads zero.
	InUse int64 `json:"in_use"`
	// RetainedBytes is the total size of backings sitting on free
	// lists, bounded by the pool's retention cap.
	RetainedBytes int64 `json:"retained_bytes"`
}

// Pool is a size-classed free list of []uint32 backings. The zero
// value is not usable; construct with New. All methods are safe for
// concurrent use.
type Pool struct {
	mu       sync.Mutex
	free     map[int][][]uint32 // word count -> free stack
	retained int64              // bytes across all free lists
	cap      int64              // retention cap in bytes; 0 disables retention

	gets, puts, hits, misses, dropped int64
}

// New returns a pool retaining at most maxRetainBytes of free
// backings. A cap of 0 disables retention — every Put drops its
// backing — which keeps the acquire/release accounting (and the leak
// invariant) intact while restoring ordinary per-request allocation;
// the serving A/B benchmarks use this as the pooling-off arm.
// Negative caps are treated as 0.
func New(maxRetainBytes int64) *Pool {
	if maxRetainBytes < 0 {
		maxRetainBytes = 0
	}
	return &Pool{free: make(map[int][][]uint32), cap: maxRetainBytes}
}

// Get returns a backing of exactly words words. Contents are
// undefined. words must be positive.
func (p *Pool) Get(words int) []uint32 {
	if words <= 0 {
		panic("polypool: Get with non-positive word count")
	}
	p.mu.Lock()
	p.gets++
	if stack := p.free[words]; len(stack) > 0 {
		b := stack[len(stack)-1]
		stack[len(stack)-1] = nil
		p.free[words] = stack[:len(stack)-1]
		p.retained -= int64(words) * 4
		p.hits++
		p.mu.Unlock()
		return b
	}
	p.misses++
	p.mu.Unlock()
	return make([]uint32, words)
}

// Put returns a backing to its size class. The caller must not touch b
// afterwards. Backings beyond the retention cap are dropped (counted,
// then left to the garbage collector).
func (p *Pool) Put(b []uint32) {
	if len(b) == 0 {
		return
	}
	words := len(b)
	bytes := int64(words) * 4
	p.mu.Lock()
	p.puts++
	if p.retained+bytes > p.cap {
		p.dropped++
		p.mu.Unlock()
		return
	}
	p.free[words] = append(p.free[words], b)
	p.retained += bytes
	p.mu.Unlock()
}

// Drain discards every retained backing and returns the number of
// bytes freed. Cumulative counters and the InUse balance are
// unaffected: draining releases the pool's own memory, not the
// handles' — Context.Close drains after the last handle check.
func (p *Pool) Drain() int64 {
	p.mu.Lock()
	freed := p.retained
	p.free = make(map[int][][]uint32)
	p.retained = 0
	p.mu.Unlock()
	return freed
}

// Stats returns a snapshot of the pool counters.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	s := Stats{
		Gets:          p.gets,
		Puts:          p.puts,
		Hits:          p.hits,
		Misses:        p.misses,
		Dropped:       p.dropped,
		InUse:         p.gets - p.puts,
		RetainedBytes: p.retained,
	}
	p.mu.Unlock()
	return s
}
