package hestats

import (
	"math"
	"math/big"
	"testing"

	"repro/internal/bfv"
	"repro/internal/hepim"
	"repro/internal/pim"
	"repro/internal/sampling"
)

// statsParams: toy ring with a plaintext modulus big enough for sums of
// squares (t = 257).
func statsParams(t *testing.T) *bfv.Parameters {
	t.Helper()
	q, _ := new(big.Int).SetString("1152921504606846883", 10)
	p, err := bfv.NewParameters(64, q, 257, 20)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

type rig struct {
	params *bfv.Parameters
	enc    *bfv.Encryptor
	dec    *bfv.Decryptor
	host   *HostEngine
	pimSrv *hepim.Server
}

func newRig(t *testing.T, seed uint64) *rig {
	t.Helper()
	params := statsParams(t)
	src := sampling.NewSourceFromUint64(seed)
	kg := bfv.NewKeyGenerator(params, src)
	sk, pk := kg.GenKeyPair()
	rlk := kg.GenRelinKey(sk)
	cfg := pim.DefaultConfig()
	cfg.NumDPUs = 4
	srv, err := hepim.NewServer(cfg, params, rlk)
	if err != nil {
		t.Fatal(err)
	}
	return &rig{
		params: params,
		enc:    bfv.NewEncryptor(params, pk, src),
		dec:    bfv.NewDecryptor(params, sk),
		host:   &HostEngine{Eval: bfv.NewEvaluator(params, rlk)},
		pimSrv: srv,
	}
}

func (r *rig) encryptAll(t *testing.T, vals []uint64) []*bfv.Ciphertext {
	t.Helper()
	cts := make([]*bfv.Ciphertext, len(vals))
	for i, v := range vals {
		ct, err := r.enc.EncryptValue(v)
		if err != nil {
			t.Fatal(err)
		}
		cts[i] = ct
	}
	return cts
}

func TestMeanOnBothEngines(t *testing.T) {
	r := newRig(t, 1)
	vals := []uint64{2, 4, 6, 8, 10, 12}
	want := 7.0
	for _, eng := range []Engine{r.host, Engine(r.pimSrv)} {
		cts := r.encryptAll(t, vals)
		m, err := Mean(eng, cts)
		if err != nil {
			t.Fatal(err)
		}
		if got := m.Decrypt(r.dec); got != want {
			t.Errorf("mean = %v, want %v", got, want)
		}
		if m.Count != len(vals) {
			t.Errorf("count = %d", m.Count)
		}
	}
}

func TestMeanEmpty(t *testing.T) {
	r := newRig(t, 2)
	if _, err := Mean(r.host, nil); err == nil {
		t.Error("empty mean accepted")
	}
}

func TestVarianceOnBothEngines(t *testing.T) {
	r := newRig(t, 3)
	vals := []uint64{1, 2, 3, 4}
	// E[x²] = 30/4 = 7.5; E[x]² = 2.5² = 6.25 → var = 1.25.
	want := 1.25
	for _, eng := range []Engine{r.host, Engine(r.pimSrv)} {
		cts := r.encryptAll(t, vals)
		v, err := Variance(eng, cts)
		if err != nil {
			t.Fatal(err)
		}
		if got := v.Decrypt(r.dec); math.Abs(got-want) > 1e-9 {
			t.Errorf("variance = %v, want %v", got, want)
		}
	}
}

func TestVarianceOfConstantIsZero(t *testing.T) {
	r := newRig(t, 4)
	cts := r.encryptAll(t, []uint64{5, 5, 5})
	v, err := Variance(r.host, cts)
	if err != nil {
		t.Fatal(err)
	}
	if got := v.Decrypt(r.dec); got != 0 {
		t.Errorf("variance of constant = %v", got)
	}
}

func TestLinRegPredictOnBothEngines(t *testing.T) {
	r := newRig(t, 5)
	// Model: y = 2·x1 + 3·x2 + 1·x3 (3 features, as in the paper).
	weights := r.encryptAll(t, []uint64{2, 3, 1})
	model := &LinRegModel{Weights: weights}
	samples := [][]*bfv.Ciphertext{
		r.encryptAll(t, []uint64{1, 1, 1}), // 2+3+1 = 6
		r.encryptAll(t, []uint64{4, 0, 2}), // 8+0+2 = 10
	}
	want := []uint64{6, 10}
	for _, eng := range []Engine{r.host, Engine(r.pimSrv)} {
		preds, err := model.Predict(eng, samples)
		if err != nil {
			t.Fatal(err)
		}
		for i, p := range preds {
			if got := r.dec.DecryptValue(p); got != want[i] {
				t.Errorf("prediction %d = %d, want %d", i, got, want[i])
			}
		}
	}
}

func TestLinRegFeatureCountMismatch(t *testing.T) {
	r := newRig(t, 6)
	model := &LinRegModel{Weights: r.encryptAll(t, []uint64{1, 2, 3})}
	bad := [][]*bfv.Ciphertext{r.encryptAll(t, []uint64{1, 2})}
	if _, err := model.Predict(r.host, bad); err == nil {
		t.Error("feature mismatch accepted")
	}
}

func TestPIMAndHostAgreeBitExact(t *testing.T) {
	// The PIM engine must produce byte-identical ciphertexts to the host
	// for the full variance pipeline (sums and squares).
	r := newRig(t, 7)
	vals := []uint64{3, 1, 4, 1}
	cts := r.encryptAll(t, vals)
	vHost, err := Variance(r.host, cts)
	if err != nil {
		t.Fatal(err)
	}
	vPIM, err := Variance(r.pimSrv, cts)
	if err != nil {
		t.Fatal(err)
	}
	if !vHost.Sum.Equal(vPIM.Sum) {
		t.Error("Σx differs between host and PIM")
	}
	if !vHost.SumSquares.Equal(vPIM.SumSquares) {
		t.Error("Σx² differs between host and PIM")
	}
}

func TestCovarianceOnBothEngines(t *testing.T) {
	r := newRig(t, 9)
	xs := []uint64{1, 2, 3, 4}
	ys := []uint64{2, 4, 6, 8} // y = 2x → cov = 2·var(x) = 2·1.25
	want := 2.5
	for _, eng := range []Engine{r.host, Engine(r.pimSrv)} {
		cx := r.encryptAll(t, xs)
		cy := r.encryptAll(t, ys)
		cov, err := Covariance(eng, cx, cy)
		if err != nil {
			t.Fatal(err)
		}
		if got := cov.Decrypt(r.dec); math.Abs(got-want) > 1e-9 {
			t.Errorf("covariance = %v, want %v", got, want)
		}
	}
}

func TestCovarianceIndependentVarsNearZero(t *testing.T) {
	r := newRig(t, 10)
	xs := []uint64{1, 1, 5, 5}
	ys := []uint64{3, 7, 3, 7} // orthogonal pattern → cov = 0
	cov, err := Covariance(r.host, r.encryptAll(t, xs), r.encryptAll(t, ys))
	if err != nil {
		t.Fatal(err)
	}
	if got := cov.Decrypt(r.dec); got != 0 {
		t.Errorf("covariance of orthogonal vars = %v", got)
	}
}

func TestCovarianceValidation(t *testing.T) {
	r := newRig(t, 11)
	if _, err := Covariance(r.host, nil, nil); err == nil {
		t.Error("empty covariance accepted")
	}
	xs := r.encryptAll(t, []uint64{1, 2})
	ys := r.encryptAll(t, []uint64{1})
	if _, err := Covariance(r.host, xs, ys); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestHostEngineSumEmpty(t *testing.T) {
	r := newRig(t, 8)
	if _, err := r.host.Sum(nil); err == nil {
		t.Error("empty host sum accepted")
	}
}
