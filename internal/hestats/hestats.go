// Package hestats implements the paper's three statistical workloads
// (§3, §4.3) — arithmetic mean, variance and linear regression — over BFV
// ciphertexts, against any evaluation engine (the host evaluator or the
// simulated PIM server). The split follows the paper exactly: additions
// and multiplications happen on the engine (server side, encrypted); the
// final scalar divisions happen on the client after decryption.
package hestats

import (
	"errors"
	"fmt"

	"repro/internal/bfv"
)

// Engine is the server-side evaluation capability the workloads need.
// Both *hepim.Server (PIM) and *HostEngine (CPU) satisfy it.
type Engine interface {
	Add(a, b *bfv.Ciphertext) (*bfv.Ciphertext, error)
	Sum(cts []*bfv.Ciphertext) (*bfv.Ciphertext, error)
	Mul(a, b *bfv.Ciphertext) (*bfv.Ciphertext, error)
}

// HostEngine adapts bfv.Evaluator to the Engine interface — the custom
// CPU implementation of the paper.
type HostEngine struct {
	Eval *bfv.Evaluator
}

// Add implements Engine.
func (h *HostEngine) Add(a, b *bfv.Ciphertext) (*bfv.Ciphertext, error) {
	return h.Eval.Add(a, b), nil
}

// Sum implements Engine by sequential folding.
func (h *HostEngine) Sum(cts []*bfv.Ciphertext) (*bfv.Ciphertext, error) {
	if len(cts) == 0 {
		return nil, errors.New("hestats: empty sum")
	}
	acc := cts[0]
	for _, ct := range cts[1:] {
		acc = h.Eval.Add(acc, ct)
	}
	return acc, nil
}

// Mul implements Engine.
func (h *HostEngine) Mul(a, b *bfv.Ciphertext) (*bfv.Ciphertext, error) {
	return h.Eval.Mul(a, b)
}

// EncryptedMean is the server-side result of the mean workload: the
// encrypted sum plus the (public) count. The client decrypts and divides
// (§3: "scalar division performed on the host processor").
type EncryptedMean struct {
	Sum   *bfv.Ciphertext
	Count int
}

// Mean aggregates the users' sample ciphertexts into an encrypted sum.
func Mean(e Engine, samples []*bfv.Ciphertext) (*EncryptedMean, error) {
	if len(samples) == 0 {
		return nil, errors.New("hestats: mean of zero samples")
	}
	sum, err := e.Sum(samples)
	if err != nil {
		return nil, err
	}
	return &EncryptedMean{Sum: sum, Count: len(samples)}, nil
}

// Decrypt finishes the mean on the client.
func (m *EncryptedMean) Decrypt(dec *bfv.Decryptor) float64 {
	return float64(dec.DecryptValue(m.Sum)) / float64(m.Count)
}

// EncryptedVariance is the server-side result of the variance workload:
// encrypted Σx and Σx². The client computes E[x²] − E[x]².
type EncryptedVariance struct {
	Sum        *bfv.Ciphertext
	SumSquares *bfv.Ciphertext
	Count      int
}

// Variance squares every sample homomorphically (multiplication of two
// equal numbers, §4.3) and aggregates both moments.
func Variance(e Engine, samples []*bfv.Ciphertext) (*EncryptedVariance, error) {
	if len(samples) == 0 {
		return nil, errors.New("hestats: variance of zero samples")
	}
	squares := make([]*bfv.Ciphertext, len(samples))
	for i, ct := range samples {
		sq, err := e.Mul(ct, ct)
		if err != nil {
			return nil, fmt.Errorf("hestats: squaring sample %d: %w", i, err)
		}
		squares[i] = sq
	}
	sum, err := e.Sum(samples)
	if err != nil {
		return nil, err
	}
	sumSq, err := e.Sum(squares)
	if err != nil {
		return nil, err
	}
	return &EncryptedVariance{Sum: sum, SumSquares: sumSq, Count: len(samples)}, nil
}

// Decrypt finishes the variance on the client: Σx²/n − (Σx/n)².
func (v *EncryptedVariance) Decrypt(dec *bfv.Decryptor) float64 {
	n := float64(v.Count)
	mean := float64(dec.DecryptValue(v.Sum)) / n
	meanSq := float64(dec.DecryptValue(v.SumSquares)) / n
	return meanSq - mean*mean
}

// EncryptedCovariance is the server-side result of the covariance
// workload: encrypted Σx, Σy and Σxy. The client computes
// E[xy] − E[x]E[y].
type EncryptedCovariance struct {
	SumX, SumY, SumXY *bfv.Ciphertext
	Count             int
}

// Covariance multiplies paired samples homomorphically and aggregates
// the three moments — the natural extension of the variance workload to
// two variables.
func Covariance(e Engine, xs, ys []*bfv.Ciphertext) (*EncryptedCovariance, error) {
	if len(xs) == 0 || len(xs) != len(ys) {
		return nil, errors.New("hestats: covariance needs equal-length non-empty samples")
	}
	prods := make([]*bfv.Ciphertext, len(xs))
	for i := range xs {
		p, err := e.Mul(xs[i], ys[i])
		if err != nil {
			return nil, fmt.Errorf("hestats: product %d: %w", i, err)
		}
		prods[i] = p
	}
	sumX, err := e.Sum(xs)
	if err != nil {
		return nil, err
	}
	sumY, err := e.Sum(ys)
	if err != nil {
		return nil, err
	}
	sumXY, err := e.Sum(prods)
	if err != nil {
		return nil, err
	}
	return &EncryptedCovariance{SumX: sumX, SumY: sumY, SumXY: sumXY, Count: len(xs)}, nil
}

// Decrypt finishes the covariance on the client: Σxy/n − (Σx/n)(Σy/n).
func (c *EncryptedCovariance) Decrypt(dec *bfv.Decryptor) float64 {
	n := float64(c.Count)
	ex := float64(dec.DecryptValue(c.SumX)) / n
	ey := float64(dec.DecryptValue(c.SumY)) / n
	exy := float64(dec.DecryptValue(c.SumXY)) / n
	return exy - ex*ey
}

// LinRegModel holds encrypted model weights (one ciphertext per feature).
// The model owner never reveals the weights to the server.
type LinRegModel struct {
	Weights []*bfv.Ciphertext
}

// Predict computes the encrypted prediction ŷ = Σ_j w_j·x_j for each
// sample (a slice of per-feature ciphertexts) — the encrypted
// vector–matrix multiplication of §3, built from homomorphic
// multiplications and additions.
func (m *LinRegModel) Predict(e Engine, samples [][]*bfv.Ciphertext) ([]*bfv.Ciphertext, error) {
	out := make([]*bfv.Ciphertext, len(samples))
	for i, features := range samples {
		if len(features) != len(m.Weights) {
			return nil, fmt.Errorf("hestats: sample %d has %d features, model has %d",
				i, len(features), len(m.Weights))
		}
		terms := make([]*bfv.Ciphertext, len(features))
		for j, x := range features {
			p, err := e.Mul(m.Weights[j], x)
			if err != nil {
				return nil, err
			}
			terms[j] = p
		}
		y, err := e.Sum(terms)
		if err != nil {
			return nil, err
		}
		out[i] = y
	}
	return out, nil
}
