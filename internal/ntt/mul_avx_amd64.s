//go:build amd64

// Vectorized pointwise kernels: Barrett pointwise multiplication and
// the Shoup-companion pointwise paths. See dispatch.go for the
// dispatch contract; every kernel reproduces its scalar oracle's
// arithmetic bit-for-bit (same folds, same reduction algorithm).
//
// AVX-512 register conventions shared by the macros below:
//
//	Z24 = q          Z25 = 2q
//	Z26 = muLo       Z27 = muLo>>32    (⌊2¹²⁸/q⌋ low word + its top half)
//	Z28 = muHi       Z29 = muHi>>32
//	Z30 = 0xFFFFFFFF lane mask
//	Z31 = 1 per lane
//	Z0–Z11 are macro scratch; results land where each macro documents.
//
// The 64×64 multiplies are composed from VPMULUDQ 32×32 partial
// products (no IFMA: the basis primes run to 60 bits, beyond the
// 52-bit IFMA lanes), with VPMULLQ (AVX-512DQ) supplying low halves.

#include "textflag.h"

// MULHI_Z(X, Y, YH, XH, T1, T2, TT, DST): DST = ⌊X·Y/2⁶⁴⌋ per lane.
// Y and YH = Y>>32 are inputs and preserved; X preserved; XH, T1, T2,
// TT clobbered. Uses Z30 as the 32-bit lane mask.
#define MULHI_Z(X, Y, YH, XH, T1, T2, TT, DST) \
	VPSRLQ   $32, X, XH     \
	VPMULUDQ Y, X, T1       \
	VPMULUDQ Y, XH, TT      \
	VPMULUDQ YH, XH, DST    \
	VPMULUDQ YH, X, XH      \
	VPSRLQ   $32, T1, T1    \
	VPANDQ   Z30, TT, T2    \
	VPADDQ   T2, T1, T1     \
	VPANDQ   Z30, XH, T2    \
	VPADDQ   T2, T1, T1     \
	VPSRLQ   $32, T1, T1    \
	VPSRLQ   $32, TT, TT    \
	VPADDQ   TT, DST, DST   \
	VPSRLQ   $32, XH, XH    \
	VPADDQ   XH, DST, DST   \
	VPADDQ   T1, DST, DST

// MULFULL_Z: full 128-bit product of Z2·Z3 into HI=Z4, LO=Z5.
// Clobbers Z0, Z1, Z6, Z7, Z8, Z9; Z2, Z3 preserved.
#define MULFULL_Z \
	VPSRLQ   $32, Z2, Z0  \
	VPSRLQ   $32, Z3, Z1  \
	VPMULUDQ Z3, Z2, Z6   \
	VPMULUDQ Z3, Z0, Z7   \
	VPMULUDQ Z1, Z2, Z8   \
	VPMULUDQ Z1, Z0, Z4   \
	VPMULLQ  Z3, Z2, Z5   \
	VPSRLQ   $32, Z6, Z6  \
	VPANDQ   Z30, Z7, Z9  \
	VPADDQ   Z9, Z6, Z6   \
	VPANDQ   Z30, Z8, Z9  \
	VPADDQ   Z9, Z6, Z6   \
	VPSRLQ   $32, Z6, Z6  \
	VPSRLQ   $32, Z7, Z7  \
	VPADDQ   Z7, Z4, Z4   \
	VPSRLQ   $32, Z8, Z8  \
	VPADDQ   Z8, Z4, Z4   \
	VPADDQ   Z6, Z4, Z4

// REDUCE128_Z: Z0 = (Z4·2⁶⁴ + Z5) mod q for values < q·2⁶⁴ — the exact
// lane-wise replica of modring.reduce128 (quotient estimate from the
// 128-bit Barrett constant, then ≤2 conditional subtractions; the
// remainder fits one word because q < 2⁶²). Clobbers Z0–Z11, K1, K2.
#define REDUCE128_Z \
	MULHI_Z(Z4, Z26, Z27, Z0, Z1, Z2, Z3, Z6)  \ // c1hi = ⌊hi·muLo/2⁶⁴⌋
	VPMULLQ  Z26, Z4, Z7                       \ // c1lo
	MULHI_Z(Z5, Z28, Z29, Z0, Z1, Z2, Z3, Z8)  \ // c2hi = ⌊lo·muHi/2⁶⁴⌋
	VPMULLQ  Z28, Z5, Z9                       \ // c2lo
	MULHI_Z(Z5, Z26, Z27, Z0, Z1, Z2, Z3, Z10) \ // c3hi = ⌊lo·muLo/2⁶⁴⌋
	VPADDQ   Z9, Z7, Z0                        \ // mid = c1lo + c2lo
	VPCMPUQ  $1, Z7, Z0, K1                    \ // carry1 = mid < c1lo
	VPADDQ   Z10, Z0, Z1                       \ // mid + c3hi
	VPCMPUQ  $1, Z0, Z1, K2                    \ // carry2
	VPMULLQ  Z28, Z4, Z2                       \ // t = hi·muHi (low)
	VPADDQ   Z6, Z2, Z2                        \
	VPADDQ   Z8, Z2, Z2                        \
	VPADDQ   Z31, Z2, K1, Z2                   \
	VPADDQ   Z31, Z2, K2, Z2                   \
	VPMULLQ  Z24, Z2, Z2                       \ // t·q (low; remainder fits a word)
	VPSUBQ   Z2, Z5, Z0                        \ // rem = lo − t·q
	VPSUBQ   Z24, Z0, Z1                       \
	VPMINUQ  Z1, Z0, Z0                        \
	VPSUBQ   Z24, Z0, Z1                       \
	VPMINUQ  Z1, Z0, Z0

// FOLD2Q_Z(X, T): X = X − 2q if X ≥ 2q (unsigned min trick).
#define FOLD2Q_Z(X, T) \
	VPSUBQ  Z25, X, T \
	VPMINUQ T, X, X

// CONSTS_Z(qOff, muHiOff, muLoOff): load the shared constant registers
// from the given frame offsets.
#define CONSTS_Z(qOff, muHiOff, muLoOff) \
	VPBROADCASTQ qOff(FP), Z24     \
	VPADDQ       Z24, Z24, Z25     \
	VPBROADCASTQ muLoOff(FP), Z26  \
	VPSRLQ       $32, Z26, Z27     \
	VPBROADCASTQ muHiOff(FP), Z28  \
	VPSRLQ       $32, Z28, Z29     \
	VPTERNLOGQ   $0xFF, Z30, Z30, Z30 \
	VPSRLQ       $32, Z30, Z30     \
	VPSRLQ       $31, Z30, Z31

// func pwMulAVX512(dst, a, b *uint64, n int, q, muHi, muLo uint64)
// dst[j] = fold(a[j])·fold(b[j]) mod q, n a multiple of 8.
TEXT ·pwMulAVX512(SB), NOSPLIT, $0-56
	MOVQ dst+0(FP), DI
	MOVQ a+8(FP), SI
	MOVQ b+16(FP), DX
	MOVQ n+24(FP), CX
	CONSTS_Z(q+32, muHi+40, muLo+48)
	SHRQ $3, CX
	JZ   pwdone

pwloop:
	VMOVDQU64 (SI), Z2
	VMOVDQU64 (DX), Z3
	FOLD2Q_Z(Z2, Z0)
	FOLD2Q_Z(Z3, Z0)
	MULFULL_Z
	REDUCE128_Z
	VMOVDQU64 Z0, (DI)
	ADDQ $64, SI
	ADDQ $64, DX
	ADDQ $64, DI
	DECQ CX
	JNZ  pwloop

pwdone:
	VZEROUPPER
	RET

// func mulShoupLazyAVX512(dst, a, w, ws *uint64, n int, q uint64)
// dst[j] = a[j]·w[j] − ⌊a[j]·ws[j]/2⁶⁴⌋·q (lazy Shoup, < 2q for w < q).
TEXT ·mulShoupLazyAVX512(SB), NOSPLIT, $0-48
	MOVQ dst+0(FP), DI
	MOVQ a+8(FP), SI
	MOVQ w+16(FP), DX
	MOVQ ws+24(FP), BX
	MOVQ n+32(FP), CX
	VPBROADCASTQ q+40(FP), Z24
	VPTERNLOGQ   $0xFF, Z30, Z30, Z30
	VPSRLQ       $32, Z30, Z30
	SHRQ $3, CX
	JZ   msldone

mslloop:
	VMOVDQU64 (SI), Z12 // x
	VMOVDQU64 (DX), Z13 // w
	VMOVDQU64 (BX), Z14 // ws
	VPSRLQ    $32, Z14, Z15
	MULHI_Z(Z12, Z14, Z15, Z0, Z1, Z2, Z3, Z4) // Z4 = qhat
	VPMULLQ   Z13, Z12, Z5
	VPMULLQ   Z24, Z4, Z4
	VPSUBQ    Z4, Z5, Z5
	VMOVDQU64 Z5, (DI)
	ADDQ $64, SI
	ADDQ $64, DX
	ADDQ $64, BX
	ADDQ $64, DI
	DECQ CX
	JNZ  mslloop

msldone:
	VZEROUPPER
	RET

// func mulPairAddShoupLazyAVX512(dst, a0, w0, w0s, a1, w1, w1s *uint64, n int, q uint64)
// dst[j] = fold2q(shoupLazy(a0,w0) + shoupLazy(a1,w1)).
TEXT ·mulPairAddShoupLazyAVX512(SB), NOSPLIT, $0-72
	MOVQ dst+0(FP), DI
	MOVQ a0+8(FP), SI
	MOVQ w0+16(FP), DX
	MOVQ w0s+24(FP), BX
	MOVQ a1+32(FP), R8
	MOVQ w1+40(FP), R9
	MOVQ w1s+48(FP), R10
	MOVQ n+56(FP), CX
	VPBROADCASTQ q+64(FP), Z24
	VPADDQ       Z24, Z24, Z25
	VPTERNLOGQ   $0xFF, Z30, Z30, Z30
	VPSRLQ       $32, Z30, Z30
	SHRQ $3, CX
	JZ   mpsdone

mpsloop:
	VMOVDQU64 (SI), Z12
	VMOVDQU64 (DX), Z13
	VMOVDQU64 (BX), Z14
	VPSRLQ    $32, Z14, Z15
	MULHI_Z(Z12, Z14, Z15, Z0, Z1, Z2, Z3, Z4)
	VPMULLQ   Z13, Z12, Z5
	VPMULLQ   Z24, Z4, Z4
	VPSUBQ    Z4, Z5, Z16 // s0
	VMOVDQU64 (R8), Z12
	VMOVDQU64 (R9), Z13
	VMOVDQU64 (R10), Z14
	VPSRLQ    $32, Z14, Z15
	MULHI_Z(Z12, Z14, Z15, Z0, Z1, Z2, Z3, Z4)
	VPMULLQ   Z13, Z12, Z5
	VPMULLQ   Z24, Z4, Z4
	VPSUBQ    Z4, Z5, Z5 // s1
	VPADDQ    Z16, Z5, Z5
	FOLD2Q_Z(Z5, Z0)
	VMOVDQU64 Z5, (DI)
	ADDQ $64, SI
	ADDQ $64, DX
	ADDQ $64, BX
	ADDQ $64, R8
	ADDQ $64, R9
	ADDQ $64, R10
	ADDQ $64, DI
	DECQ CX
	JNZ  mpsloop

mpsdone:
	VZEROUPPER
	RET

// func mulPairAddAVX512(dst, a0, b0, a1, b1 *uint64, n int, q, muHi, muLo uint64)
// dst[j] = (fold(a0)·fold(b0) + fold(a1)·fold(b1)) mod q — both
// products accumulate in 128 bits and fold with one Barrett reduction,
// exactly like dcrt.MulPairAddNTT's scalar loop.
TEXT ·mulPairAddAVX512(SB), NOSPLIT, $0-72
	MOVQ dst+0(FP), DI
	MOVQ a0+8(FP), SI
	MOVQ b0+16(FP), DX
	MOVQ a1+24(FP), BX
	MOVQ b1+32(FP), R8
	MOVQ n+40(FP), CX
	CONSTS_Z(q+48, muHi+56, muLo+64)
	SHRQ $3, CX
	JZ   mpadone

mpaloop:
	VMOVDQU64 (SI), Z2
	VMOVDQU64 (DX), Z3
	FOLD2Q_Z(Z2, Z0)
	FOLD2Q_Z(Z3, Z0)
	MULFULL_Z            // HI=Z4, LO=Z5
	VMOVDQU64 Z4, Z16
	VMOVDQU64 Z5, Z17
	VMOVDQU64 (BX), Z2
	VMOVDQU64 (R8), Z3
	FOLD2Q_Z(Z2, Z0)
	FOLD2Q_Z(Z3, Z0)
	MULFULL_Z
	VPADDQ    Z17, Z5, Z5      // lo sum
	VPCMPUQ   $1, Z17, Z5, K1  // carry: lo < l1
	VPADDQ    Z16, Z4, Z4
	VPADDQ    Z31, Z4, K1, Z4
	REDUCE128_Z
	VMOVDQU64 Z0, (DI)
	ADDQ $64, SI
	ADDQ $64, DX
	ADDQ $64, BX
	ADDQ $64, R8
	ADDQ $64, DI
	DECQ CX
	JNZ  mpaloop

mpadone:
	VZEROUPPER
	RET

// ---------------------------------------------------------------------
// AVX2 (4-lane, VEX) kernels. No VPMULLQ and no mask registers here:
// low halves are composed from VPMULUDQ partials, which keeps only the
// Shoup-style kernels profitable at 4 lanes (see dispatch.go).
//
// Register conventions: Y12 = q, Y13 = q>>32, Y14 = 32-bit lane mask.

// MULHI_Y: as MULHI_Z with the VEX AND and the Y14 mask.
#define MULHI_Y(X, Y, YH, XH, T1, T2, TT, DST) \
	VPSRLQ   $32, X, XH     \
	VPMULUDQ Y, X, T1       \
	VPMULUDQ Y, XH, TT      \
	VPMULUDQ YH, XH, DST    \
	VPMULUDQ YH, X, XH      \
	VPSRLQ   $32, T1, T1    \
	VPAND    Y14, TT, T2    \
	VPADDQ   T2, T1, T1     \
	VPAND    Y14, XH, T2    \
	VPADDQ   T2, T1, T1     \
	VPSRLQ   $32, T1, T1    \
	VPSRLQ   $32, TT, TT    \
	VPADDQ   TT, DST, DST   \
	VPSRLQ   $32, XH, XH    \
	VPADDQ   XH, DST, DST   \
	VPADDQ   T1, DST, DST

// MULLO_Y(X, Y, YH, XH, T1, DST): DST = X·Y mod 2⁶⁴ per lane.
// X, Y, YH preserved; XH, T1 clobbered.
#define MULLO_Y(X, Y, YH, XH, T1, DST) \
	VPSRLQ   $32, X, XH    \
	VPMULUDQ Y, XH, T1     \
	VPMULUDQ YH, X, DST    \
	VPADDQ   T1, DST, DST  \
	VPSLLQ   $32, DST, DST \
	VPMULUDQ Y, X, T1      \
	VPADDQ   T1, DST, DST

// func mulShoupLazyAVX2(dst, a, w, ws *uint64, n int, q uint64)
TEXT ·mulShoupLazyAVX2(SB), NOSPLIT, $0-48
	MOVQ dst+0(FP), DI
	MOVQ a+8(FP), SI
	MOVQ w+16(FP), DX
	MOVQ ws+24(FP), BX
	MOVQ n+32(FP), CX
	VPBROADCASTQ q+40(FP), Y12
	VPSRLQ       $32, Y12, Y13
	VPCMPEQD     Y14, Y14, Y14
	VPSRLQ       $32, Y14, Y14
	SHRQ $2, CX
	JZ   msl2done

msl2loop:
	VMOVDQU (SI), Y0 // x
	VMOVDQU (BX), Y1 // ws
	VPSRLQ  $32, Y1, Y2
	MULHI_Y(Y0, Y1, Y2, Y3, Y4, Y5, Y6, Y7) // Y7 = qhat
	VMOVDQU (DX), Y1                        // w
	VPSRLQ  $32, Y1, Y2
	MULLO_Y(Y0, Y1, Y2, Y3, Y4, Y8)         // Y8 = x·w
	MULLO_Y(Y7, Y12, Y13, Y3, Y4, Y9)       // Y9 = qhat·q
	VPSUBQ  Y9, Y8, Y8
	VMOVDQU Y8, (DI)
	ADDQ $32, SI
	ADDQ $32, DX
	ADDQ $32, BX
	ADDQ $32, DI
	DECQ CX
	JNZ  msl2loop

msl2done:
	VZEROUPPER
	RET

// ---------------------------------------------------------------------
// Fused 128-bit key-switching accumulators (AVX-512 only: the lazy
// carry chains need mask registers). k0p/k1p/dp are arrays of ndig row
// base pointers built by the Go wrappers; rows are read at the same
// offset as the accumulators. The digit sums accumulate exactly as the
// scalar kernel's (s_lo, carry, s_hi) chains do, and the final fold is
// REDUCE128_Z — bit-identical to r.ReduceWide.

// func accPair128AVX512(acc0, acc1 *uint64, n int, k0p, k1p, dp *uintptr, ndig, seed int, q, muHi, muLo uint64)
// s0 = Z16 (lo), Z17 (hi); s1 = Z18, Z19. n must be a multiple of 8.
TEXT ·accPair128AVX512(SB), NOSPLIT, $0-88
	MOVQ acc0+0(FP), DI
	MOVQ acc1+8(FP), SI
	MOVQ n+16(FP), CX
	MOVQ k0p+24(FP), R8
	MOVQ k1p+32(FP), R9
	MOVQ dp+40(FP), R10
	MOVQ ndig+48(FP), R11
	MOVQ seed+56(FP), R15
	CONSTS_Z(q+64, muHi+72, muLo+80)
	XORQ R12, R12 // byte offset into the rows
	SHRQ $3, CX
	JZ   accdone

accouter:
	VPXORQ Z16, Z16, Z16
	VPXORQ Z17, Z17, Z17
	VPXORQ Z18, Z18, Z18
	VPXORQ Z19, Z19, Z19
	TESTQ  R15, R15
	JZ     accnoseed
	VMOVDQU64 (DI), Z16
	VMOVDQU64 (SI), Z18

accnoseed:
	XORQ BX, BX

accdig:
	MOVQ      (R10)(BX*8), R13
	VMOVDQU64 (R13)(R12*1), Z3 // v = digits[d][j..j+7]
	MOVQ      (R8)(BX*8), AX
	VMOVDQU64 (AX)(R12*1), Z2  // k0 row
	MULFULL_Z                  // Z4:Z5 = k0·v
	VPADDQ  Z5, Z16, Z16
	VPCMPUQ $1, Z5, Z16, K1 // carry out of the low-word add
	VPADDQ  Z4, Z17, Z17
	VPADDQ  Z31, Z17, K1, Z17
	MOVQ      (R9)(BX*8), AX
	VMOVDQU64 (AX)(R12*1), Z2 // k1 row (v still live in Z3)
	MULFULL_Z
	VPADDQ  Z5, Z18, Z18
	VPCMPUQ $1, Z5, Z18, K1
	VPADDQ  Z4, Z19, Z19
	VPADDQ  Z31, Z19, K1, Z19
	INCQ    BX
	CMPQ    BX, R11
	JL      accdig

	VMOVDQA64 Z17, Z4
	VMOVDQA64 Z16, Z5
	REDUCE128_Z
	VMOVDQU64 Z0, (DI)
	VMOVDQA64 Z19, Z4
	VMOVDQA64 Z18, Z5
	REDUCE128_Z
	VMOVDQU64 Z0, (SI)
	ADDQ $64, DI
	ADDQ $64, SI
	ADDQ $64, R12
	DECQ CX
	JNZ  accouter

accdone:
	VZEROUPPER
	RET

// func galoisAccPair128AVX512(acc0, acc1 *uint64, n int, k0p, k1p, dp *uintptr, ndig int, idx *uint32, q, muHi, muLo uint64)
// accPair128AVX512 (always seeded) with the digit rows gathered through
// the uint32 permutation idx (VPGATHERDQ, mask reset per gather).
TEXT ·galoisAccPair128AVX512(SB), NOSPLIT, $0-88
	MOVQ acc0+0(FP), DI
	MOVQ acc1+8(FP), SI
	MOVQ n+16(FP), CX
	MOVQ k0p+24(FP), R8
	MOVQ k1p+32(FP), R9
	MOVQ dp+40(FP), R10
	MOVQ ndig+48(FP), R11
	MOVQ idx+56(FP), R14
	CONSTS_Z(q+64, muHi+72, muLo+80)
	XORQ R12, R12
	SHRQ $3, CX
	JZ   gaccdone

gaccouter:
	VMOVDQU   (R14), Y10 // 8 gather indices
	VMOVDQU64 (DI), Z16
	VPXORQ    Z17, Z17, Z17
	VMOVDQU64 (SI), Z18
	VPXORQ    Z19, Z19, Z19
	XORQ      BX, BX

gaccdig:
	MOVQ       (R10)(BX*8), R13
	KXNORW     K1, K1, K1
	VPGATHERDQ (R13)(Y10*8), K1, Z3 // v = digits[d][idx[j..j+7]]
	MOVQ       (R8)(BX*8), AX
	VMOVDQU64  (AX)(R12*1), Z2
	MULFULL_Z
	VPADDQ  Z5, Z16, Z16
	VPCMPUQ $1, Z5, Z16, K1
	VPADDQ  Z4, Z17, Z17
	VPADDQ  Z31, Z17, K1, Z17
	MOVQ      (R9)(BX*8), AX
	VMOVDQU64 (AX)(R12*1), Z2
	MULFULL_Z
	VPADDQ  Z5, Z18, Z18
	VPCMPUQ $1, Z5, Z18, K1
	VPADDQ  Z4, Z19, Z19
	VPADDQ  Z31, Z19, K1, Z19
	INCQ    BX
	CMPQ    BX, R11
	JL      gaccdig

	VMOVDQA64 Z17, Z4
	VMOVDQA64 Z16, Z5
	REDUCE128_Z
	VMOVDQU64 Z0, (DI)
	VMOVDQA64 Z19, Z4
	VMOVDQA64 Z18, Z5
	REDUCE128_Z
	VMOVDQU64 Z0, (SI)
	ADDQ $64, DI
	ADDQ $64, SI
	ADDQ $64, R12
	ADDQ $32, R14
	DECQ CX
	JNZ  gaccouter

gaccdone:
	VZEROUPPER
	RET
