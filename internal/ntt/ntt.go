// Package ntt implements the in-place negacyclic Number Theoretic
// Transform over NTT-friendly primes (p ≡ 1 mod 2n), using the
// Cooley–Tukey / Gentleman–Sande butterfly pair with Shoup multiplication
// and Harvey-style lazy reduction: butterfly values are allowed to grow to
// 4q (forward) / 2q (inverse) and are only brought back below q at the
// end of a transform, saving the per-butterfly conditional subtractions.
//
// The transform kernels are written for the scalar hot path: two
// butterfly layers are merged into one radix-4 memory pass (halving the
// load/store traffic of a transform), the inner loops run over re-sliced
// quarters so the compiler drops every bounds check, and the lazy entry
// points (ForwardLazy, InverseLazy, PointwiseMulLazy) let fused pipelines
// such as Convolve and the key-switching accumulators skip the final
// reduction pass of each individual op and reduce once at the end.
//
// Lazy-bound contract (q < 2⁶², so 4q < 2⁶⁴ never wraps):
//
//   - Forward/Inverse take values < q and produce values < q.
//   - ForwardLazy takes values < q (or lazily, < 4q: the first layer folds)
//     and produces values < 4q.
//   - InverseLazy takes values < 2q and produces values < 2q.
//   - PointwiseMulLazy takes operands < 2⁶² and produces values < q
//     (the Barrett reduction is exact for any 128-bit product).
//
// This is the algorithmic core of the CPU-SEAL baseline in the paper
// (§4.1): SEAL "leverages the Residue Number System (RNS) and the Number
// Theoretic Transform (NTT) implementations for faster operations". The
// paper's own PIM kernels deliberately do NOT use the NTT (§3: "We do not
// incorporate Number Theoretic Transform techniques ... we leave them for
// future work"), which is why SEAL overtakes PIM on multiplication-heavy
// workloads.
package ntt

import (
	"fmt"
	"math/bits"
	"sync"

	"repro/internal/modring"
	"repro/internal/nt"
)

// Table holds the precomputed twiddle factors for one (prime, n) pair.
type Table struct {
	N    int
	R    *modring.Ring
	nInv uint64 // n^{-1} mod q

	psiRev      []uint64 // psi^bitrev(i), CT order
	psiRevShoup []uint64
	psiInvRev   []uint64 // psi^{-bitrev(i)}, GS order
	psiInvShoup []uint64
	nInvShoup   uint64

	// n⁻¹ folded into the last GS stage (see inverseCore): the final
	// stage's twiddle pre-multiplied by n⁻¹, so the inverse transform
	// needs no separate scaling pass.
	lastW, lastWShoup uint64

	scratch sync.Pool // *[]uint64 buffers of length N for Convolve
}

// tableKey identifies a twiddle table: one per (prime, ring degree) pair.
type tableKey struct {
	Q uint64
	N int
}

// tables is the process-wide table cache. Twiddle construction costs
// O(n log n) modular exponentiations and every (q, n) pair is immutable
// after construction, so all callers — encoders, the double-CRT contexts,
// the SEAL baseline — share one table per pair.
var tables sync.Map // tableKey -> *Table

// GetTable returns the shared twiddle table for (q, n), constructing and
// caching it on first use. Tables are immutable and safe for concurrent
// use.
func GetTable(q uint64, n int) (*Table, error) {
	key := tableKey{q, n}
	if v, ok := tables.Load(key); ok {
		return v.(*Table), nil
	}
	t, err := NewTable(q, n)
	if err != nil {
		return nil, err
	}
	v, _ := tables.LoadOrStore(key, t)
	return v.(*Table), nil
}

// NewTable precomputes twiddles for the negacyclic NTT of size n (a power
// of two) modulo the NTT-friendly prime q.
func NewTable(q uint64, n int) (*Table, error) {
	if n <= 0 || n&(n-1) != 0 {
		return nil, fmt.Errorf("ntt: size %d is not a power of two", n)
	}
	r := modring.New(q)
	psi, err := nt.RootOfUnity(q, n)
	if err != nil {
		return nil, fmt.Errorf("ntt: %w", err)
	}
	psiInv := r.Inv(psi)
	logN := bits.TrailingZeros(uint(n))

	t := &Table{
		N:           n,
		R:           r,
		psiRev:      make([]uint64, n),
		psiRevShoup: make([]uint64, n),
		psiInvRev:   make([]uint64, n),
		psiInvShoup: make([]uint64, n),
	}
	pw, pwInv := uint64(1), uint64(1)
	powers := make([]uint64, n)
	powersInv := make([]uint64, n)
	for i := 0; i < n; i++ {
		powers[i], powersInv[i] = pw, pwInv
		pw = r.Mul(pw, psi)
		pwInv = r.Mul(pwInv, psiInv)
	}
	for i := 0; i < n; i++ {
		j := bitrev(uint(i), logN)
		t.psiRev[i] = powers[j]
		t.psiRevShoup[i] = r.ShoupConst(powers[j])
		t.psiInvRev[i] = powersInv[j]
		t.psiInvShoup[i] = r.ShoupConst(powersInv[j])
	}
	t.nInv = r.Inv(uint64(n))
	t.nInvShoup = r.ShoupConst(t.nInv)
	if n > 1 {
		t.lastW = r.Mul(t.psiInvRev[1], t.nInv)
		t.lastWShoup = r.ShoupConst(t.lastW)
	}
	t.scratch.New = func() any {
		buf := make([]uint64, n)
		return &buf
	}
	return t, nil
}

// getScratch returns a length-N scratch buffer from the table's pool.
func (t *Table) getScratch() *[]uint64 { return t.scratch.Get().(*[]uint64) }

func (t *Table) putScratch(buf *[]uint64) { t.scratch.Put(buf) }

func bitrev(x uint, bits int) uint {
	var r uint
	for i := 0; i < bits; i++ {
		r = r<<1 | (x>>i)&1
	}
	return r
}

// Forward transforms a (length N, coefficients < q) into the NTT domain in
// place, restoring the < q contract with one final reduction pass over the
// lazy transform.
func (t *Table) Forward(a []uint64) {
	t.ForwardLazy(a)
	t.reduce4Q(a)
}

// ForwardScalar is Forward pinned to the scalar kernels, bypassing the
// vector dispatch — the differential-test oracle.
func (t *Table) ForwardScalar(a []uint64) {
	t.ForwardLazyScalar(a)
	t.reduce4Q(a)
}

// reduce4Q folds lazy transform outputs (< 4q) to canonical (< q).
func (t *Table) reduce4Q(a []uint64) {
	q := t.R.Q
	twoQ := 2 * q
	for i, v := range a {
		if v >= twoQ {
			v -= twoQ
		}
		if v >= q {
			v -= q
		}
		a[i] = v
	}
}

// ForwardLazy transforms a into the NTT domain in place, leaving the
// outputs lazily reduced in [0, 4q). Cooley–Tukey, decimation in time, no
// explicit bit reversal (Longa–Naehrig layout). Butterflies run on
// lazily-reduced values (Harvey): u is folded below 2q on read,
// v = MulShoupLazy < 2q, and the outputs u+v and u−v+2q stay below 4q
// (< 2^64 since q < 2^62). Two butterfly layers are merged per memory
// pass: each radix-4 block keeps its four values in registers through
// both layers, so the array is swept ⌈log₂(n)/2⌉ times instead of
// log₂(n). Inputs may themselves be lazy (< 4q): the first layer's fold
// brings them into range.
//
// Callers that need canonical outputs use Forward; consumers that reduce
// anyway (pointwise Barrett products, the 128-bit fused accumulators)
// take the lazy form and save the reduction pass.
func (t *Table) ForwardLazy(a []uint64) {
	t.forwardLazy(a, currentISA())
}

// ForwardLazyScalar is ForwardLazy pinned to the scalar kernels — the
// oracle the vector paths are differentially tested against.
func (t *Table) ForwardLazyScalar(a []uint64) {
	t.forwardLazy(a, isaScalar)
}

// forwardLazy runs the CT passes, dispatching each pass to the widest
// kernel the requested tier supports: AVX-512 for step ≥ 8, the 4-lane
// AVX2 kernel at step == 4 (also on AVX-512 hosts), the transpose-based
// AVX-512 tail at step == 1, scalar otherwise. Pass geometry and
// arithmetic are identical across tiers, so outputs are bit-identical.
func (t *Table) forwardLazy(a []uint64, isa uint32) {
	if len(a) != t.N {
		panic("ntt: Forward length mismatch")
	}
	n := t.N
	q := t.R.Q
	psi, psiS := t.psiRev, t.psiRevShoup
	m := 1
	step := n
	if bits.TrailingZeros(uint(n))&1 == 1 {
		// Odd log₂(n): one single-layer pass, then radix-4 the rest.
		step >>= 1
		t.fwdSingleScalar(a, step)
		m = 2
	}
	for ; m < n; m <<= 2 {
		step >>= 2 // distance of the second merged layer; blocks span 4·step
		switch {
		case isa == isaAVX512 && step >= 8:
			fwdPassAVX512(&a[0], &psi[0], &psiS[0], m, step, q)
		case isa != isaScalar && step >= 4:
			fwdPassAVX2(&a[0], &psi[0], &psiS[0], m, step, q)
		case isa == isaAVX512 && step == 1 && m >= 8:
			// m is 4^j or 2·4^j here, so m ≥ 8 implies m % 8 == 0.
			fwdTailAVX512(&a[0], &psi[0], &psiS[0], m, q)
		default:
			t.fwdPassScalar(a, m, step)
		}
	}
}

// fwdSingleScalar is the odd-log₂(n) single-layer CT pass.
func (t *Table) fwdSingleScalar(a []uint64, step int) {
	q := t.R.Q
	twoQ := 2 * q
	w, ws := t.psiRev[1], t.psiRevShoup[1]
	x := a[:step:step]
	y := a[step : 2*step : 2*step]
	for j := 0; j < step && j < len(x) && j < len(y); j++ {
		u := x[j]
		if u >= twoQ {
			u -= twoQ
		}
		xv := y[j]
		qh, _ := bits.Mul64(xv, ws)
		v := xv*w - qh*q
		x[j] = u + v
		y[j] = u + twoQ - v
	}
}

// fwdPassScalar is one merged radix-4 CT pass over all m blocks.
func (t *Table) fwdPassScalar(a []uint64, m, step int) {
	q := t.R.Q
	twoQ := 2 * q
	psi, psiS := t.psiRev, t.psiRevShoup
	{
		for i := 0; i < m; i++ {
			j1 := 4 * i * step
			w1, w1s := psi[m+i], psiS[m+i]
			w2, w2s := psi[2*m+2*i], psiS[2*m+2*i]
			w3, w3s := psi[2*m+2*i+1], psiS[2*m+2*i+1]
			q0 := a[j1 : j1+step : j1+step]
			q1 := a[j1+step : j1+2*step : j1+2*step]
			q2 := a[j1+2*step : j1+3*step : j1+3*step]
			q3 := a[j1+3*step : j1+4*step : j1+4*step]
			for k := 0; k < len(q0) && k < len(q1) && k < len(q2) && k < len(q3); k++ {
				x0, x1, x2, x3 := q0[k], q1[k], q2[k], q3[k]
				// Layer 1 (distance 2·step): (x0,x2) and (x1,x3) on w1.
				if x0 >= twoQ {
					x0 -= twoQ
				}
				if x1 >= twoQ {
					x1 -= twoQ
				}
				qh, _ := bits.Mul64(x2, w1s)
				v2 := x2*w1 - qh*q
				qh, _ = bits.Mul64(x3, w1s)
				v3 := x3*w1 - qh*q
				y0 := x0 + v2
				y2 := x0 + twoQ - v2
				y1 := x1 + v3
				y3 := x1 + twoQ - v3
				// Layer 2 (distance step): (y0,y1) on w2, (y2,y3) on w3.
				if y0 >= twoQ {
					y0 -= twoQ
				}
				if y2 >= twoQ {
					y2 -= twoQ
				}
				qh, _ = bits.Mul64(y1, w2s)
				u1 := y1*w2 - qh*q
				qh, _ = bits.Mul64(y3, w3s)
				u3 := y3*w3 - qh*q
				q0[k] = y0 + u1
				q1[k] = y0 + twoQ - u1
				q2[k] = y2 + u3
				q3[k] = y2 + twoQ - u3
			}
		}
	}
}

// Inverse transforms a back to the coefficient domain in place
// (Gentleman–Sande, decimation in frequency) and divides by N, fully
// reducing the outputs below q.
func (t *Table) Inverse(a []uint64) {
	t.inverseCore(a, currentISA())
	t.reduce2Q(a)
}

// InverseScalar is Inverse pinned to the scalar kernels.
func (t *Table) InverseScalar(a []uint64) {
	t.inverseCore(a, isaScalar)
	t.reduce2Q(a)
}

// reduce2Q folds lazy inverse outputs (< 2q) to canonical (< q).
func (t *Table) reduce2Q(a []uint64) {
	q := t.R.Q
	for i, v := range a {
		if v >= q {
			v -= q
		}
		a[i] = v
	}
}

// InverseLazy is Inverse with the outputs left lazily reduced in [0, 2q).
// Inputs may be lazy themselves (< 2q). Consumers whose next step is a
// Shoup or Barrett multiplication (the base-conversion γ pass, the
// scale-and-round division) accept the lazy form directly and save the
// final reduction pass entirely.
func (t *Table) InverseLazy(a []uint64) {
	t.inverseCore(a, currentISA())
}

// InverseLazyScalar is InverseLazy pinned to the scalar kernels.
func (t *Table) InverseLazyScalar(a []uint64) {
	t.inverseCore(a, isaScalar)
}

// inverseCore runs the GS butterfly layers, two per memory pass; values
// stay below 2q throughout (inputs < 2q tolerated). The n⁻¹ scaling is
// folded into the last stage — its sum output multiplies by n⁻¹, its
// difference output by the pre-combined lastW = ψ⁻¹·n⁻¹ — so no separate
// scaling pass runs; outputs are lazily reduced (< 2q).
func (t *Table) inverseCore(a []uint64, isa uint32) {
	if len(a) != t.N {
		panic("ntt: Inverse length mismatch")
	}
	n := t.N
	q := t.R.Q
	psi, psiS := t.psiInvRev, t.psiInvShoup
	step := 1
	m := n >> 1
	for ; m >= 4; m >>= 2 {
		switch {
		case isa == isaAVX512 && step >= 8:
			invPassAVX512(&a[0], &psi[0], &psiS[0], m, step, q)
		case isa != isaScalar && step >= 4:
			invPassAVX2(&a[0], &psi[0], &psiS[0], m, step, q)
		case isa == isaAVX512 && step == 1 && m>>1 >= 8:
			// m>>1 is 4^j or 2·4^j, so ≥ 8 implies divisible by 8.
			invHeadAVX512(&a[0], &psi[0], &psiS[0], m, q)
		default:
			t.invPassScalar(a, m, step)
		}
		step <<= 2
	}
	t.invFinishScalar(a, m, step, isa)
}

// invPassScalar is one merged radix-4 GS pass: stages m (distance step)
// and m/2 (distance 2·step) over all m>>1 blocks.
func (t *Table) invPassScalar(a []uint64, m, step int) {
	q := t.R.Q
	twoQ := 2 * q
	psi, psiS := t.psiInvRev, t.psiInvShoup
	{
		half := m >> 1
		for i := 0; i < half; i++ {
			j1 := 4 * i * step
			wa0, wa0s := psi[m+2*i], psiS[m+2*i]
			wa1, wa1s := psi[m+2*i+1], psiS[m+2*i+1]
			wb, wbs := psi[half+i], psiS[half+i]
			q0 := a[j1 : j1+step : j1+step]
			q1 := a[j1+step : j1+2*step : j1+2*step]
			q2 := a[j1+2*step : j1+3*step : j1+3*step]
			q3 := a[j1+3*step : j1+4*step : j1+4*step]
			for k := 0; k < len(q0) && k < len(q1) && k < len(q2) && k < len(q3); k++ {
				x0, x1, x2, x3 := q0[k], q1[k], q2[k], q3[k]
				// Layer 1 (distance step): (x0,x1) on wa0, (x2,x3) on wa1.
				s0 := x0 + x1
				if s0 >= twoQ {
					s0 -= twoQ
				}
				d := x0 + twoQ - x1
				qh, _ := bits.Mul64(d, wa0s)
				d0 := d*wa0 - qh*q
				s1 := x2 + x3
				if s1 >= twoQ {
					s1 -= twoQ
				}
				d = x2 + twoQ - x3
				qh, _ = bits.Mul64(d, wa1s)
				d1 := d*wa1 - qh*q
				// Layer 2 (distance 2·step): (s0,s1) and (d0,d1) on wb.
				v := s0 + s1
				if v >= twoQ {
					v -= twoQ
				}
				q0[k] = v
				d = s0 + twoQ - s1
				qh, _ = bits.Mul64(d, wbs)
				q2[k] = d*wb - qh*q
				v = d0 + d1
				if v >= twoQ {
					v -= twoQ
				}
				q1[k] = v
				d = d0 + twoQ - d1
				qh, _ = bits.Mul64(d, wbs)
				q3[k] = d*wb - qh*q
			}
		}
	}
}

// invFinishScalar runs the final merged stages (m == 2 for even
// log₂(n), m == 1 for odd) with the n⁻¹ scaling folded in, dispatching
// the m == 2 case to the vector kernels when the tier allows.
func (t *Table) invFinishScalar(a []uint64, m, step int, isa uint32) {
	q := t.R.Q
	twoQ := 2 * q
	psi, psiS := t.psiInvRev, t.psiInvShoup
	nInv, nInvS := t.nInv, t.nInvShoup
	lw, lws := t.lastW, t.lastWShoup
	switch m {
	case 2:
		// Even log₂(n): the last two stages merge, with the n⁻¹ scaling
		// folded into the second one.
		wa0, wa0s := psi[2], psiS[2]
		wa1, wa1s := psi[3], psiS[3]
		if isa == isaAVX512 && step >= 8 {
			invLast4AVX512(&a[0], step, wa0, wa0s, wa1, wa1s, nInv, nInvS, lw, lws, q)
			return
		}
		if isa != isaScalar && step >= 4 {
			invLast4AVX2(&a[0], step, wa0, wa0s, wa1, wa1s, nInv, nInvS, lw, lws, q)
			return
		}
		q0 := a[0:step:step]
		q1 := a[step : 2*step : 2*step]
		q2 := a[2*step : 3*step : 3*step]
		q3 := a[3*step : 4*step : 4*step]
		for k := 0; k < len(q0) && k < len(q1) && k < len(q2) && k < len(q3); k++ {
			x0, x1, x2, x3 := q0[k], q1[k], q2[k], q3[k]
			s0 := x0 + x1
			if s0 >= twoQ {
				s0 -= twoQ
			}
			d := x0 + twoQ - x1
			qh, _ := bits.Mul64(d, wa0s)
			d0 := d*wa0 - qh*q
			s1 := x2 + x3
			if s1 >= twoQ {
				s1 -= twoQ
			}
			d = x2 + twoQ - x3
			qh, _ = bits.Mul64(d, wa1s)
			d1 := d*wa1 - qh*q
			v := s0 + s1
			qh, _ = bits.Mul64(v, nInvS)
			q0[k] = v*nInv - qh*q
			d = s0 + twoQ - s1
			qh, _ = bits.Mul64(d, lws)
			q2[k] = d*lw - qh*q
			v = d0 + d1
			qh, _ = bits.Mul64(v, nInvS)
			q1[k] = v*nInv - qh*q
			d = d0 + twoQ - d1
			qh, _ = bits.Mul64(d, lws)
			q3[k] = d*lw - qh*q
		}
	case 1:
		// Odd log₂(n): the last stage (distance n/2) runs alone, scaled.
		x := a[:step:step]
		y := a[step : 2*step : 2*step]
		for j := 0; j < step && j < len(x) && j < len(y); j++ {
			u, v := x[j], y[j]
			s := u + v
			qh, _ := bits.Mul64(s, nInvS)
			x[j] = s*nInv - qh*q
			d := u + twoQ - v
			qh, _ = bits.Mul64(d, lws)
			y[j] = d*lw - qh*q
		}
	}
}

// PointwiseMul sets dst[i] = a[i]*b[i] mod q. dst may alias a or b.
// Operands may be lazily reduced (< 4q): each is folded below 2q in a
// register before the Barrett product, keeping the 128-bit value inside
// the reduction's q·2⁶⁴ validity window for every q < 2⁶². Outputs are
// canonical (< q).
func (t *Table) PointwiseMul(dst, a, b []uint64) {
	t.pointwiseMul(dst, a, b, currentISA())
}

// PointwiseMulScalar is PointwiseMul pinned to the scalar kernel.
func (t *Table) PointwiseMulScalar(dst, a, b []uint64) {
	t.pointwiseMul(dst, a, b, isaScalar)
}

func (t *Table) pointwiseMul(dst, a, b []uint64, isa uint32) {
	if len(dst) != t.N || len(a) != t.N || len(b) != t.N {
		panic("ntt: PointwiseMul length mismatch")
	}
	r := t.R
	twoQ := 2 * r.Q
	a = a[:len(dst)]
	b = b[:len(dst)]
	i := 0
	// The Barrett fold needs AVX-512 (mask-register carries); the AVX2
	// tier keeps this kernel scalar — see KernelPaths.
	if isa == isaAVX512 && len(dst) >= 8 {
		i = len(dst) &^ 7
		muHi, muLo := r.BarrettConsts()
		pwMulAVX512(&dst[0], &a[0], &b[0], i, r.Q, muHi, muLo)
	}
	for ; i < len(dst); i++ {
		x, y := a[i], b[i]
		if x >= twoQ {
			x -= twoQ
		}
		if y >= twoQ {
			y -= twoQ
		}
		dst[i] = r.Mul(x, y)
	}
}

// PointwiseMulLazy is the lazy-input entry point of PointwiseMul, fusing
// with ForwardLazy: operands may carry the [0, 4q) transform bound, so a
// Forward→PointwiseMul pipeline pays no reduction pass between the
// stages. Outputs are canonical (< q); dst may alias a or b.
func (t *Table) PointwiseMulLazy(dst, a, b []uint64) {
	t.PointwiseMul(dst, a, b)
}

// Convolve computes the negacyclic convolution dst = a ⊛ b (i.e. the
// product of the polynomials in Z_q[X]/(Xⁿ+1)) without mutating a or b.
// The pipeline is fused through the lazy entry points: both forward
// transforms stay lazy (< 4q), the pointwise Barrett products reduce them
// exactly, and only the inverse transform's final scaling pass restores
// the < q contract — one reduction per coefficient for the whole
// convolution instead of one per stage. Scratch comes from the table's
// pool, so steady-state calls are allocation-free.
func (t *Table) Convolve(dst, a, b []uint64) {
	if len(a) != t.N || len(b) != t.N {
		panic("ntt: Convolve length mismatch")
	}
	ta := t.getScratch()
	tb := t.getScratch()
	copy(*ta, a)
	copy(*tb, b)
	t.ForwardLazy(*ta)
	t.ForwardLazy(*tb)
	t.PointwiseMulLazy(dst, *ta, *tb)
	t.Inverse(dst)
	t.putScratch(ta)
	t.putScratch(tb)
}

// OpCount returns the number of (mulmod, addmod) operation pairs a forward
// or inverse transform performs: (n/2)·log2(n) butterflies. Used by the
// CPU-SEAL performance model.
func (t *Table) OpCount() int {
	return t.N / 2 * bits.TrailingZeros(uint(t.N))
}
