// Package ntt implements the in-place negacyclic Number Theoretic
// Transform over NTT-friendly primes (p ≡ 1 mod 2n), using the
// Cooley–Tukey / Gentleman–Sande butterfly pair with Shoup multiplication
// and Harvey-style lazy reduction: butterfly values are allowed to grow to
// 4q (forward) / 2q (inverse) and are only brought back below q at the
// end of a transform, saving the per-butterfly conditional subtractions.
//
// This is the algorithmic core of the CPU-SEAL baseline in the paper
// (§4.1): SEAL "leverages the Residue Number System (RNS) and the Number
// Theoretic Transform (NTT) implementations for faster operations". The
// paper's own PIM kernels deliberately do NOT use the NTT (§3: "We do not
// incorporate Number Theoretic Transform techniques ... we leave them for
// future work"), which is why SEAL overtakes PIM on multiplication-heavy
// workloads.
package ntt

import (
	"fmt"
	"math/bits"
	"sync"

	"repro/internal/modring"
	"repro/internal/nt"
)

// Table holds the precomputed twiddle factors for one (prime, n) pair.
type Table struct {
	N    int
	R    *modring.Ring
	nInv uint64 // n^{-1} mod q

	psiRev      []uint64 // psi^bitrev(i), CT order
	psiRevShoup []uint64
	psiInvRev   []uint64 // psi^{-bitrev(i)}, GS order
	psiInvShoup []uint64
	nInvShoup   uint64

	scratch sync.Pool // *[]uint64 buffers of length N for Convolve
}

// tableKey identifies a twiddle table: one per (prime, ring degree) pair.
type tableKey struct {
	Q uint64
	N int
}

// tables is the process-wide table cache. Twiddle construction costs
// O(n log n) modular exponentiations and every (q, n) pair is immutable
// after construction, so all callers — encoders, the double-CRT contexts,
// the SEAL baseline — share one table per pair.
var tables sync.Map // tableKey -> *Table

// GetTable returns the shared twiddle table for (q, n), constructing and
// caching it on first use. Tables are immutable and safe for concurrent
// use.
func GetTable(q uint64, n int) (*Table, error) {
	key := tableKey{q, n}
	if v, ok := tables.Load(key); ok {
		return v.(*Table), nil
	}
	t, err := NewTable(q, n)
	if err != nil {
		return nil, err
	}
	v, _ := tables.LoadOrStore(key, t)
	return v.(*Table), nil
}

// NewTable precomputes twiddles for the negacyclic NTT of size n (a power
// of two) modulo the NTT-friendly prime q.
func NewTable(q uint64, n int) (*Table, error) {
	if n <= 0 || n&(n-1) != 0 {
		return nil, fmt.Errorf("ntt: size %d is not a power of two", n)
	}
	r := modring.New(q)
	psi, err := nt.RootOfUnity(q, n)
	if err != nil {
		return nil, fmt.Errorf("ntt: %w", err)
	}
	psiInv := r.Inv(psi)
	logN := bits.TrailingZeros(uint(n))

	t := &Table{
		N:           n,
		R:           r,
		psiRev:      make([]uint64, n),
		psiRevShoup: make([]uint64, n),
		psiInvRev:   make([]uint64, n),
		psiInvShoup: make([]uint64, n),
	}
	pw, pwInv := uint64(1), uint64(1)
	powers := make([]uint64, n)
	powersInv := make([]uint64, n)
	for i := 0; i < n; i++ {
		powers[i], powersInv[i] = pw, pwInv
		pw = r.Mul(pw, psi)
		pwInv = r.Mul(pwInv, psiInv)
	}
	for i := 0; i < n; i++ {
		j := bitrev(uint(i), logN)
		t.psiRev[i] = powers[j]
		t.psiRevShoup[i] = r.ShoupConst(powers[j])
		t.psiInvRev[i] = powersInv[j]
		t.psiInvShoup[i] = r.ShoupConst(powersInv[j])
	}
	t.nInv = r.Inv(uint64(n))
	t.nInvShoup = r.ShoupConst(t.nInv)
	t.scratch.New = func() any {
		buf := make([]uint64, n)
		return &buf
	}
	return t, nil
}

// getScratch returns a length-N scratch buffer from the table's pool.
func (t *Table) getScratch() *[]uint64 { return t.scratch.Get().(*[]uint64) }

func (t *Table) putScratch(buf *[]uint64) { t.scratch.Put(buf) }

func bitrev(x uint, bits int) uint {
	var r uint
	for i := 0; i < bits; i++ {
		r = r<<1 | (x>>i)&1
	}
	return r
}

// Forward transforms a (length N, coefficients < q) into the NTT domain in
// place. Cooley–Tukey, decimation in time, no explicit bit reversal
// (Longa–Naehrig layout). Butterflies run on lazily-reduced values < 4q
// (Harvey): u is folded below 2q on read, v = MulShoupLazy < 2q, and the
// outputs u+v and u−v+2q stay below 4q (< 2^64 since q < 2^62). A final
// pass restores the < q contract.
func (t *Table) Forward(a []uint64) {
	if len(a) != t.N {
		panic("ntt: Forward length mismatch")
	}
	n := t.N
	q := t.R.Q
	twoQ := 2 * q
	step := n
	for m := 1; m < n; m <<= 1 {
		step >>= 1
		for i := 0; i < m; i++ {
			j1 := 2 * i * step
			w := t.psiRev[m+i]
			ws := t.psiRevShoup[m+i]
			for j := j1; j < j1+step; j++ {
				u := a[j]
				if u >= twoQ {
					u -= twoQ
				}
				v := t.R.MulShoupLazy(a[j+step], w, ws)
				a[j] = u + v
				a[j+step] = u + twoQ - v
			}
		}
	}
	for i, v := range a {
		if v >= twoQ {
			v -= twoQ
		}
		if v >= q {
			v -= q
		}
		a[i] = v
	}
}

// Inverse transforms a back to the coefficient domain in place
// (Gentleman–Sande, decimation in frequency) and divides by N. Butterfly
// values stay below 2q (lazy); the final nInv scaling pass fully reduces.
func (t *Table) Inverse(a []uint64) {
	if len(a) != t.N {
		panic("ntt: Inverse length mismatch")
	}
	n := t.N
	twoQ := 2 * t.R.Q
	step := 1
	for m := n >> 1; m >= 1; m >>= 1 {
		for i := 0; i < m; i++ {
			j1 := 2 * i * step
			w := t.psiInvRev[m+i]
			ws := t.psiInvShoup[m+i]
			for j := j1; j < j1+step; j++ {
				u := a[j]
				v := a[j+step]
				s := u + v // < 4q
				if s >= twoQ {
					s -= twoQ
				}
				a[j] = s
				a[j+step] = t.R.MulShoupLazy(u+twoQ-v, w, ws)
			}
		}
		step <<= 1
	}
	for i := range a {
		a[i] = t.R.MulShoup(a[i], t.nInv, t.nInvShoup)
	}
}

// PointwiseMul sets dst[i] = a[i]*b[i] mod q. dst may alias a or b.
func (t *Table) PointwiseMul(dst, a, b []uint64) {
	if len(dst) != t.N || len(a) != t.N || len(b) != t.N {
		panic("ntt: PointwiseMul length mismatch")
	}
	for i := range dst {
		dst[i] = t.R.Mul(a[i], b[i])
	}
}

// Convolve computes the negacyclic convolution dst = a ⊛ b (i.e. the
// product of the polynomials in Z_q[X]/(Xⁿ+1)) without mutating a or b.
// Scratch comes from the table's pool, so steady-state calls are
// allocation-free.
func (t *Table) Convolve(dst, a, b []uint64) {
	if len(a) != t.N || len(b) != t.N {
		panic("ntt: Convolve length mismatch")
	}
	ta := t.getScratch()
	tb := t.getScratch()
	copy(*ta, a)
	copy(*tb, b)
	t.Forward(*ta)
	t.Forward(*tb)
	t.PointwiseMul(dst, *ta, *tb)
	t.Inverse(dst)
	t.putScratch(ta)
	t.putScratch(tb)
}

// OpCount returns the number of (mulmod, addmod) operation pairs a forward
// or inverse transform performs: (n/2)·log2(n) butterflies. Used by the
// CPU-SEAL performance model.
func (t *Table) OpCount() int {
	return t.N / 2 * bits.TrailingZeros(uint(t.N))
}
