// Package ntt implements the in-place negacyclic Number Theoretic
// Transform over NTT-friendly primes (p ≡ 1 mod 2n), using the
// Cooley–Tukey / Gentleman–Sande butterfly pair with Shoup multiplication
// (Harvey-style lazy arithmetic is kept simple: fully reduced at each
// butterfly).
//
// This is the algorithmic core of the CPU-SEAL baseline in the paper
// (§4.1): SEAL "leverages the Residue Number System (RNS) and the Number
// Theoretic Transform (NTT) implementations for faster operations". The
// paper's own PIM kernels deliberately do NOT use the NTT (§3: "We do not
// incorporate Number Theoretic Transform techniques ... we leave them for
// future work"), which is why SEAL overtakes PIM on multiplication-heavy
// workloads.
package ntt

import (
	"fmt"
	"math/bits"

	"repro/internal/modring"
	"repro/internal/nt"
)

// Table holds the precomputed twiddle factors for one (prime, n) pair.
type Table struct {
	N    int
	R    *modring.Ring
	nInv uint64 // n^{-1} mod q

	psiRev      []uint64 // psi^bitrev(i), CT order
	psiRevShoup []uint64
	psiInvRev   []uint64 // psi^{-bitrev(i)}, GS order
	psiInvShoup []uint64
	nInvShoup   uint64
}

// NewTable precomputes twiddles for the negacyclic NTT of size n (a power
// of two) modulo the NTT-friendly prime q.
func NewTable(q uint64, n int) (*Table, error) {
	if n <= 0 || n&(n-1) != 0 {
		return nil, fmt.Errorf("ntt: size %d is not a power of two", n)
	}
	r := modring.New(q)
	psi, err := nt.RootOfUnity(q, n)
	if err != nil {
		return nil, fmt.Errorf("ntt: %w", err)
	}
	psiInv := r.Inv(psi)
	logN := bits.TrailingZeros(uint(n))

	t := &Table{
		N:           n,
		R:           r,
		psiRev:      make([]uint64, n),
		psiRevShoup: make([]uint64, n),
		psiInvRev:   make([]uint64, n),
		psiInvShoup: make([]uint64, n),
	}
	pw, pwInv := uint64(1), uint64(1)
	powers := make([]uint64, n)
	powersInv := make([]uint64, n)
	for i := 0; i < n; i++ {
		powers[i], powersInv[i] = pw, pwInv
		pw = r.Mul(pw, psi)
		pwInv = r.Mul(pwInv, psiInv)
	}
	for i := 0; i < n; i++ {
		j := bitrev(uint(i), logN)
		t.psiRev[i] = powers[j]
		t.psiRevShoup[i] = r.ShoupConst(powers[j])
		t.psiInvRev[i] = powersInv[j]
		t.psiInvShoup[i] = r.ShoupConst(powersInv[j])
	}
	t.nInv = r.Inv(uint64(n))
	t.nInvShoup = r.ShoupConst(t.nInv)
	return t, nil
}

func bitrev(x uint, bits int) uint {
	var r uint
	for i := 0; i < bits; i++ {
		r = r<<1 | (x>>i)&1
	}
	return r
}

// Forward transforms a (length N, coefficients < q) into the NTT domain in
// place. Cooley–Tukey, decimation in time, no explicit bit reversal
// (Longa–Naehrig layout).
func (t *Table) Forward(a []uint64) {
	if len(a) != t.N {
		panic("ntt: Forward length mismatch")
	}
	n := t.N
	step := n
	for m := 1; m < n; m <<= 1 {
		step >>= 1
		for i := 0; i < m; i++ {
			j1 := 2 * i * step
			w := t.psiRev[m+i]
			ws := t.psiRevShoup[m+i]
			for j := j1; j < j1+step; j++ {
				u := a[j]
				v := t.R.MulShoup(a[j+step], w, ws)
				a[j] = t.R.Add(u, v)
				a[j+step] = t.R.Sub(u, v)
			}
		}
	}
}

// Inverse transforms a back to the coefficient domain in place
// (Gentleman–Sande, decimation in frequency) and divides by N.
func (t *Table) Inverse(a []uint64) {
	if len(a) != t.N {
		panic("ntt: Inverse length mismatch")
	}
	n := t.N
	step := 1
	for m := n >> 1; m >= 1; m >>= 1 {
		for i := 0; i < m; i++ {
			j1 := 2 * i * step
			w := t.psiInvRev[m+i]
			ws := t.psiInvShoup[m+i]
			for j := j1; j < j1+step; j++ {
				u := a[j]
				v := a[j+step]
				a[j] = t.R.Add(u, v)
				a[j+step] = t.R.MulShoup(t.R.Sub(u, v), w, ws)
			}
		}
		step <<= 1
	}
	for i := range a {
		a[i] = t.R.MulShoup(a[i], t.nInv, t.nInvShoup)
	}
}

// PointwiseMul sets dst[i] = a[i]*b[i] mod q. dst may alias a or b.
func (t *Table) PointwiseMul(dst, a, b []uint64) {
	if len(dst) != t.N || len(a) != t.N || len(b) != t.N {
		panic("ntt: PointwiseMul length mismatch")
	}
	for i := range dst {
		dst[i] = t.R.Mul(a[i], b[i])
	}
}

// Convolve computes the negacyclic convolution dst = a ⊛ b (i.e. the
// product of the polynomials in Z_q[X]/(Xⁿ+1)) without mutating a or b.
func (t *Table) Convolve(dst, a, b []uint64) {
	ta := append([]uint64(nil), a...)
	tb := append([]uint64(nil), b...)
	t.Forward(ta)
	t.Forward(tb)
	t.PointwiseMul(dst, ta, tb)
	t.Inverse(dst)
}

// OpCount returns the number of (mulmod, addmod) operation pairs a forward
// or inverse transform performs: (n/2)·log2(n) butterflies. Used by the
// CPU-SEAL performance model.
func (t *Table) OpCount() int {
	return t.N / 2 * bits.TrailingZeros(uint(t.N))
}
