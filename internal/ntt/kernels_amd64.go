//go:build amd64

package ntt

// haveVectorKernels gates "auto" dispatch: only amd64 ships assembly.
const haveVectorKernels = true

// The assembly kernels below are the vector halves of the dispatch
// table (ntt_avx_amd64.s for the butterfly passes, mul_avx_amd64.s for
// the pointwise and accumulator kernels). Every
// function is a leaf (NOSPLIT) operating on full vectors only — the Go
// wrappers run the scalar oracle on sub-lane tails — and reproduces the
// scalar kernel's arithmetic exactly: same fold points, same lazy
// representatives, same Barrett algorithm, so outputs are bit-identical
// to the scalar path, not merely congruent.

// fwdPassAVX512 runs one merged radix-4 forward butterfly pass (both
// layers) over all m blocks; step must be a multiple of 8.
//
//go:noescape
func fwdPassAVX512(a, psi, psiS *uint64, m, step int, q uint64)

// fwdPassAVX2 is the 4-lane pass; step must be a multiple of 4.
//
//go:noescape
func fwdPassAVX2(a, psi, psiS *uint64, m, step int, q uint64)

// fwdTailAVX512 runs the final forward radix-4 pass (step == 1, blocks
// of 4 contiguous values) via in-register transposes; m must be a
// multiple of 8.
//
//go:noescape
func fwdTailAVX512(a, psi, psiS *uint64, m int, q uint64)

// invPassAVX512 runs one merged radix-4 inverse (GS) pass over all
// m>>1 blocks; step must be a multiple of 8.
//
//go:noescape
func invPassAVX512(a, psi, psiS *uint64, m, step int, q uint64)

// invPassAVX2 is the 4-lane inverse pass; step must be a multiple of 4.
//
//go:noescape
func invPassAVX2(a, psi, psiS *uint64, m, step int, q uint64)

// invHeadAVX512 runs the leading inverse pass (step == 1) via
// in-register transposes; m>>1 must be a multiple of 8.
//
//go:noescape
func invHeadAVX512(a, psi, psiS *uint64, m int, q uint64)

// invLast4AVX512 runs the merged final two inverse stages with the n⁻¹
// scaling folded in (inverseCore case m == 2); step must be a multiple
// of 8.
//
//go:noescape
func invLast4AVX512(a *uint64, step int, wa0, wa0s, wa1, wa1s, nInv, nInvS, lw, lws, q uint64)

// invLast4AVX2 is the 4-lane final-stage kernel; step a multiple of 4.
//
//go:noescape
func invLast4AVX2(a *uint64, step int, wa0, wa0s, wa1, wa1s, nInv, nInvS, lw, lws, q uint64)

// pwMulAVX512 is PointwiseMul's vector half: folds both operands below
// 2q and reduces the full 128-bit product with the exact Barrett
// algorithm of modring.reduce128. n must be a multiple of 8.
//
//go:noescape
func pwMulAVX512(dst, a, b *uint64, n int, q, muHi, muLo uint64)

// mulShoupLazyAVX512 sets dst[j] = MulShoupLazy(a[j], w[j], ws[j]);
// n must be a multiple of 8.
//
//go:noescape
func mulShoupLazyAVX512(dst, a, w, ws *uint64, n int, q uint64)

// mulShoupLazyAVX2 is the 4-lane variant; n a multiple of 4.
//
//go:noescape
func mulShoupLazyAVX2(dst, a, w, ws *uint64, n int, q uint64)

// mulPairAddShoupLazyAVX512 sets dst[j] to the 2q-folded sum of two
// lazy Shoup products; n must be a multiple of 8.
//
//go:noescape
func mulPairAddShoupLazyAVX512(dst, a0, w0, w0s, a1, w1, w1s *uint64, n int, q uint64)

// mulPairAddAVX512 sets dst[j] = (fold(a0)·fold(b0) + fold(a1)·fold(b1))
// mod q via one 128-bit accumulation and Barrett fold; n a multiple of 8.
//
//go:noescape
func mulPairAddAVX512(dst, a0, b0, a1, b1 *uint64, n int, q, muHi, muLo uint64)

// accPair128AVX512 is the fused key-switching accumulator
// (MulAddPair128/MulPair128): k0p/k1p/dp point to ndig data pointers
// each (the rows' first elements); seed != 0 seeds the 128-bit sums
// with the accumulators' prior contents. n must be a multiple of 8.
//
//go:noescape
func accPair128AVX512(acc0, acc1 *uint64, n int, k0p, k1p, dp *uintptr, ndig, seed int, q, muHi, muLo uint64)

// galoisAccPair128AVX512 is accPair128AVX512 with the digit rows
// gathered through the uint32 slot permutation idx.
//
//go:noescape
func galoisAccPair128AVX512(acc0, acc1 *uint64, n int, k0p, k1p, dp *uintptr, ndig int, idx *uint32, q, muHi, muLo uint64)
