// Fused multiply-accumulate kernels for the key-switching inner loops.
//
// A key switch folds Σ_d key_d·digit_d into an accumulator, once per
// component, in the NTT domain. Done one digit at a time (the per-op
// kernels in internal/dcrt), every digit pays a full pass over the
// accumulator plus a modular reduction per product. The kernels here fuse
// the whole digit sum: for each slot the products accumulate lazily in
// 128 bits across all digits — plus the accumulator's previous value —
// and a single Barrett fold brings the sum back below q. One memory pass,
// one reduction per slot per component, regardless of the digit count.
//
// Overflow contract: the single Barrett fold (modring reduce128) is only
// valid for values below q·2⁶⁴ — the quotient must fit one word — so the
// binding constraint is not the 128-bit register but the reduction
// domain. Callers bound the inputs and digit count via
// Acc128Capacity(q, maxK, maxD): the number of key·digit products (each
// key value ≤ maxK, digit value ≤ maxD) that, plus a seed below 2⁶⁴,
// stay under q·2⁶⁴. Digits may arrive lazily reduced (< 4q from
// ForwardLazy); the capacity query accounts for that via maxD.
package ntt

import (
	"math/big"
	"math/bits"
	"runtime"
	"unsafe"

	"repro/internal/modring"
)

// accMaxDigits bounds the row-pointer arrays handed to the assembly
// accumulators. Acc128Capacity caps real digit counts far below this
// (3 for the paper shapes); larger fan-ins fall back to scalar.
const accMaxDigits = 8

// Acc128Capacity returns the number of a·b product terms (a ≤ maxA,
// b ≤ maxB) that can be accumulated on top of a seed below 2⁶⁴ while
// keeping the total below q·2⁶⁴ — the validity domain of the single
// Barrett fold: D·maxA·maxB + (2⁶⁴−1) ≤ q·2⁶⁴ − 1 for every D up to the
// returned value. Zero means no fusion headroom. (For the paper shapes —
// 60-bit basis primes, canonical keys, < 4p lazy digits — this is
// exactly 3, matching the three-digit key switch in one pass.)
func Acc128Capacity(q, maxA, maxB uint64) int {
	if maxA == 0 || maxB == 0 {
		return 1 << 30
	}
	num := new(big.Int).Lsh(new(big.Int).SetUint64(q-1), 64)
	den := new(big.Int).Mul(new(big.Int).SetUint64(maxA), new(big.Int).SetUint64(maxB))
	num.Div(num, den)
	if num.BitLen() > 30 {
		return 1 << 30 // plenty; keeps the result a sane int everywhere
	}
	return int(num.Int64())
}

// MulAddPair128 folds both key-switching component sums in one pass:
//
//	acc0[j] = (acc0[j] + Σ_d k0[d][j]·digits[d][j]) mod q
//	acc1[j] = (acc1[j] + Σ_d k1[d][j]·digits[d][j]) mod q
//
// with each slot's digit sum accumulated lazily in 128 bits and folded by
// a single Barrett reduction. Each digit slot is read once and feeds both
// components. Digits may be lazily reduced; keys and accumulators must be
// below q. The caller guarantees len(k0) == len(k1) == len(digits) ≤
// Acc128Capacity(maxKey, maxDigit). Allocation-free.
func MulAddPair128(r *modring.Ring, acc0, acc1 []uint64, k0, k1, digits [][]uint64) {
	mulPair128(r, acc0, acc1, k0, k1, digits, true)
}

// MulPair128 is MulAddPair128 in overwrite mode: the accumulators' prior
// contents are ignored (acc = Σ_d k·digit rather than +=), so a
// key-switch that starts from zero skips the clearing pass.
func MulPair128(r *modring.Ring, acc0, acc1 []uint64, k0, k1, digits [][]uint64) {
	mulPair128(r, acc0, acc1, k0, k1, digits, false)
}

// MulAddPair128Scalar is MulAddPair128 pinned to the scalar kernel —
// the differential-test oracle for the vectorized accumulator.
func MulAddPair128Scalar(r *modring.Ring, acc0, acc1 []uint64, k0, k1, digits [][]uint64) {
	mulPair128Scalar(r, acc0, acc1, k0, k1, digits, true)
}

// MulPair128Scalar is MulPair128 pinned to the scalar kernel.
func MulPair128Scalar(r *modring.Ring, acc0, acc1 []uint64, k0, k1, digits [][]uint64) {
	mulPair128Scalar(r, acc0, acc1, k0, k1, digits, false)
}

func mulPair128(r *modring.Ring, acc0, acc1 []uint64, k0, k1, digits [][]uint64, seed bool) {
	n := len(acc0)
	nd := len(digits)
	if currentISA() == isaAVX512 && n >= 8 && nd >= 1 && nd <= accMaxDigits {
		v := n &^ 7
		var k0p, k1p, dp [accMaxDigits]uintptr
		for d := 0; d < nd; d++ {
			k0p[d] = uintptr(unsafe.Pointer(&k0[d][0]))
			k1p[d] = uintptr(unsafe.Pointer(&k1[d][0]))
			dp[d] = uintptr(unsafe.Pointer(&digits[d][0]))
		}
		s := 0
		if seed {
			s = 1
		}
		muHi, muLo := r.BarrettConsts()
		accPair128AVX512(&acc0[0], &acc1[0], v, &k0p[0], &k1p[0], &dp[0], nd, s, r.Q, muHi, muLo)
		// The rows stay reachable through the slice headers for the
		// whole call, but make that explicit for the uintptr views.
		runtime.KeepAlive(k0)
		runtime.KeepAlive(k1)
		runtime.KeepAlive(digits)
		if v == n {
			return
		}
		mulPair128ScalarFrom(r, acc0, acc1, k0, k1, digits, seed, v)
		return
	}
	mulPair128Scalar(r, acc0, acc1, k0, k1, digits, seed)
}

func mulPair128Scalar(r *modring.Ring, acc0, acc1 []uint64, k0, k1, digits [][]uint64, seed bool) {
	mulPair128ScalarFrom(r, acc0, acc1, k0, k1, digits, seed, 0)
}

// mulPair128ScalarFrom runs the scalar accumulator over slots
// [from, len(acc0)) — the full kernel at from == 0, the sub-lane tail
// after a vector body otherwise.
func mulPair128ScalarFrom(r *modring.Ring, acc0, acc1 []uint64, k0, k1, digits [][]uint64, seed bool, from int) {
	n := len(acc0)
	acc1 = acc1[:n]
	for d := range digits {
		digits[d] = digits[d][:n]
		k0[d] = k0[d][:n]
		k1[d] = k1[d][:n]
	}
	for j := from; j < n; j++ {
		var s0lo, s0hi, s1lo, s1hi uint64
		if seed {
			s0lo, s1lo = acc0[j], acc1[j]
		}
		for d := range digits {
			v := digits[d][j]
			hi, lo := bits.Mul64(k0[d][j], v)
			var c uint64
			s0lo, c = bits.Add64(s0lo, lo, 0)
			s0hi += hi + c
			hi, lo = bits.Mul64(k1[d][j], v)
			s1lo, c = bits.Add64(s1lo, lo, 0)
			s1hi += hi + c
		}
		acc0[j] = r.ReduceWide(s0hi, s0lo)
		acc1[j] = r.ReduceWide(s1hi, s1lo)
	}
}

// GaloisAccPair128 is MulAddPair128 with the digits gathered through the
// slot permutation idx — the hoisted Galois key-switching inner loop:
//
//	acc0[j] = (acc0[j] + Σ_d k0[d][j]·digits[d][idx[j]]) mod q
//	acc1[j] = (acc1[j] + Σ_d k1[d][j]·digits[d][idx[j]]) mod q
//
// Each gathered digit slot is loaded once per (j, d) and feeds both
// component sums. Same bounds contract as MulAddPair128; allocation-free.
func GaloisAccPair128(r *modring.Ring, acc0, acc1 []uint64, k0, k1, digits [][]uint64, idx []uint32) {
	n := len(acc0)
	nd := len(digits)
	if currentISA() == isaAVX512 && n >= 8 && nd >= 1 && nd <= accMaxDigits {
		v := n &^ 7
		var k0p, k1p, dp [accMaxDigits]uintptr
		for d := 0; d < nd; d++ {
			k0p[d] = uintptr(unsafe.Pointer(&k0[d][0]))
			k1p[d] = uintptr(unsafe.Pointer(&k1[d][0]))
			dp[d] = uintptr(unsafe.Pointer(&digits[d][0]))
		}
		muHi, muLo := r.BarrettConsts()
		galoisAccPair128AVX512(&acc0[0], &acc1[0], v, &k0p[0], &k1p[0], &dp[0], nd, &idx[0], r.Q, muHi, muLo)
		runtime.KeepAlive(k0)
		runtime.KeepAlive(k1)
		runtime.KeepAlive(digits)
		if v == n {
			return
		}
		galoisAccPair128ScalarFrom(r, acc0, acc1, k0, k1, digits, idx, v)
		return
	}
	galoisAccPair128ScalarFrom(r, acc0, acc1, k0, k1, digits, idx, 0)
}

// GaloisAccPair128Scalar is GaloisAccPair128 pinned to the scalar
// kernel — the differential-test oracle for the gather path.
func GaloisAccPair128Scalar(r *modring.Ring, acc0, acc1 []uint64, k0, k1, digits [][]uint64, idx []uint32) {
	galoisAccPair128ScalarFrom(r, acc0, acc1, k0, k1, digits, idx, 0)
}

func galoisAccPair128ScalarFrom(r *modring.Ring, acc0, acc1 []uint64, k0, k1, digits [][]uint64, idx []uint32, from int) {
	n := len(acc0)
	acc1 = acc1[:n]
	idx = idx[:n]
	for d := range digits {
		k0[d] = k0[d][:n]
		k1[d] = k1[d][:n]
	}
	for j := from; j < n; j++ {
		ij := idx[j]
		s0lo, s0hi := acc0[j], uint64(0)
		s1lo, s1hi := acc1[j], uint64(0)
		for d := range digits {
			v := digits[d][ij]
			hi, lo := bits.Mul64(k0[d][j], v)
			var c uint64
			s0lo, c = bits.Add64(s0lo, lo, 0)
			s0hi += hi + c
			hi, lo = bits.Mul64(k1[d][j], v)
			s1lo, c = bits.Add64(s1lo, lo, 0)
			s1hi += hi + c
		}
		acc0[j] = r.ReduceWide(s0hi, s0lo)
		acc1[j] = r.ReduceWide(s1hi, s1lo)
	}
}
