package ntt

import (
	"encoding/binary"
	"math/rand"
	"testing"

	"repro/internal/modring"
	"repro/internal/nt"
)

// The vector kernels' contract is bit-identity with the scalar oracle —
// same lazy representatives, not just the same residues. The tests here
// pin that contract on adversarial inputs: boundary lanes (0, q−1,
// 2q−1, 4q−1, and all-ones where the kernel domain allows), lengths
// that are not lane multiples (exercising the scalar tail after the
// vector body), and every vector mode the host can force.

// vectorModes returns the forceable vector tiers this host supports
// (never includes "scalar" — that is the oracle side of each test).
func vectorModes(t *testing.T) []string {
	t.Helper()
	var modes []string
	for _, m := range []string{"avx2", "avx512"} {
		if err := SetVectorMode(m); err == nil {
			modes = append(modes, m)
		}
	}
	SetVectorMode("auto")
	if len(modes) == 0 {
		t.Skip("no vector kernels on this host")
	}
	return modes
}

// forEachVectorMode runs fn once per supported vector tier with the
// process-wide mode forced, restoring "auto" afterwards.
func forEachVectorMode(t *testing.T, fn func(t *testing.T, mode string)) {
	t.Helper()
	for _, mode := range vectorModes(t) {
		t.Run(mode, func(t *testing.T) {
			if err := SetVectorMode(mode); err != nil {
				t.Fatal(err)
			}
			defer SetVectorMode("auto")
			fn(t, mode)
		})
	}
}

// advFill fills a with an adversarial mix: boundary values in the first
// lanes (where vector and scalar disagree first when a fold or carry is
// wrong), random values below bound elsewhere.
func advFill(rng *rand.Rand, a []uint64, q, bound uint64) {
	boundary := []uint64{0, 1, q - 1, q, 2*q - 1, 2 * q, 4*q - 1, bound - 1}
	for i := range a {
		if i < len(boundary) && boundary[i] < bound {
			a[i] = boundary[i]
		} else {
			a[i] = rng.Uint64() % bound
		}
	}
}

func TestVectorForwardMatchesScalar(t *testing.T) {
	forEachVectorMode(t, func(t *testing.T, mode string) {
		rng := rand.New(rand.NewSource(101))
		for _, n := range []int{64, 128, 256, 1024, 2048, 4096} {
			q, err := nt.NTTPrime(60, n)
			if err != nil {
				t.Fatal(err)
			}
			tb, err := NewTable(q, n)
			if err != nil {
				t.Fatal(err)
			}
			// Inputs may arrive lazily reduced (< 4q).
			a := make([]uint64, n)
			advFill(rng, a, q, 4*q)
			b := append([]uint64(nil), a...)
			tb.ForwardLazyScalar(a)
			tb.ForwardLazy(b)
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("n=%d lane %d: scalar %d %s %d", n, i, a[i], mode, b[i])
				}
			}
			// Strict entry point too (adds the 4q→q reduction pass).
			c := make([]uint64, n)
			advFill(rng, c, q, 4*q)
			d := append([]uint64(nil), c...)
			tb.ForwardScalar(c)
			tb.Forward(d)
			for i := range c {
				if c[i] != d[i] {
					t.Fatalf("Forward n=%d lane %d: scalar %d %s %d", n, i, c[i], mode, d[i])
				}
			}
		}
	})
}

func TestVectorInverseMatchesScalar(t *testing.T) {
	forEachVectorMode(t, func(t *testing.T, mode string) {
		rng := rand.New(rand.NewSource(102))
		for _, n := range []int{64, 128, 256, 1024, 2048, 4096} {
			q, err := nt.NTTPrime(60, n)
			if err != nil {
				t.Fatal(err)
			}
			tb, err := NewTable(q, n)
			if err != nil {
				t.Fatal(err)
			}
			a := make([]uint64, n)
			advFill(rng, a, q, 2*q)
			b := append([]uint64(nil), a...)
			tb.InverseLazyScalar(a)
			tb.InverseLazy(b)
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("n=%d lane %d: scalar %d %s %d", n, i, a[i], mode, b[i])
				}
			}
			c := make([]uint64, n)
			advFill(rng, c, q, 2*q)
			d := append([]uint64(nil), c...)
			tb.InverseScalar(c)
			tb.Inverse(d)
			for i := range c {
				if c[i] != d[i] {
					t.Fatalf("Inverse n=%d lane %d: scalar %d %s %d", n, i, c[i], mode, d[i])
				}
			}
		}
	})
}

func TestVectorPointwiseMulMatchesScalar(t *testing.T) {
	forEachVectorMode(t, func(t *testing.T, mode string) {
		rng := rand.New(rand.NewSource(103))
		// n=4 is below every lane width (pure scalar tail); the larger
		// sizes exercise the vector body plus dispatch.
		for _, n := range []int{4, 8, 64, 4096} {
			q, err := nt.NTTPrime(60, n)
			if err != nil {
				t.Fatal(err)
			}
			tb, err := NewTable(q, n)
			if err != nil {
				t.Fatal(err)
			}
			a := make([]uint64, n)
			b := make([]uint64, n)
			advFill(rng, a, q, 4*q)
			advFill(rng, b, q, 4*q)
			want := make([]uint64, n)
			got := make([]uint64, n)
			tb.PointwiseMulScalar(want, a, b)
			tb.PointwiseMul(got, a, b)
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("n=%d lane %d: scalar %d %s %d", n, i, want[i], mode, got[i])
				}
			}
		}
	})
}

func TestVectorLimbKernelsMatchScalar(t *testing.T) {
	forEachVectorMode(t, func(t *testing.T, mode string) {
		rng := rand.New(rand.NewSource(104))
		q, err := nt.NTTPrime(60, 4096)
		if err != nil {
			t.Fatal(err)
		}
		r := modring.New(q)
		for _, n := range []int{1, 5, 8, 11, 16, 100, 1024} {
			a0 := make([]uint64, n)
			a1 := make([]uint64, n)
			w0 := make([]uint64, n)
			w1 := make([]uint64, n)
			w0s := make([]uint64, n)
			w1s := make([]uint64, n)
			// MulShoupLazy accepts any 64-bit multiplicand; include the
			// all-ones extreme alongside the lazy boundaries.
			advFill(rng, a0, q, 4*q)
			advFill(rng, a1, q, 4*q)
			if n > 2 {
				a0[2] = ^uint64(0)
				a1[2] = ^uint64(0)
			}
			for i := 0; i < n; i++ {
				w0[i] = rng.Uint64() % q
				w1[i] = rng.Uint64() % q
				w0s[i] = r.ShoupConst(w0[i])
				w1s[i] = r.ShoupConst(w1[i])
			}

			want := make([]uint64, n)
			got := make([]uint64, n)
			for i := range want {
				want[i] = r.MulShoupLazy(a0[i], w0[i], w0s[i])
			}
			MulShoupLazyVec(r, got, a0, w0, w0s)
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("MulShoupLazyVec n=%d lane %d: scalar %d %s %d", n, i, want[i], mode, got[i])
				}
			}

			twoQ := 2 * q
			for i := range want {
				s := r.MulShoupLazy(a0[i], w0[i], w0s[i]) + r.MulShoupLazy(a1[i], w1[i], w1s[i])
				if s >= twoQ {
					s -= twoQ
				}
				want[i] = s
			}
			MulPairAddShoupLazyVec(r, got, a0, w0, w0s, a1, w1, w1s)
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("MulPairAddShoupLazyVec n=%d lane %d: scalar %d %s %d", n, i, want[i], mode, got[i])
				}
			}

			// MulPairAddVec: operands strictly < 4q (folded below 2q
			// in-kernel) — the all-ones lanes above are out of contract
			// here, so build fresh in-domain inputs.
			c0 := make([]uint64, n)
			c1 := make([]uint64, n)
			b0 := make([]uint64, n)
			b1 := make([]uint64, n)
			advFill(rng, c0, q, 4*q)
			advFill(rng, c1, q, 4*q)
			advFill(rng, b0, q, 4*q)
			advFill(rng, b1, q, 4*q)
			for i := range want {
				f := func(x uint64) uint64 {
					if x >= twoQ {
						x -= twoQ
					}
					return x
				}
				want[i] = r.Reduce(r.Mul(f(c0[i]), f(b0[i])) + r.Mul(f(c1[i]), f(b1[i])))
			}
			MulPairAddVec(r, got, c0, b0, c1, b1)
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("MulPairAddVec n=%d lane %d: scalar %d %s %d", n, i, want[i], mode, got[i])
				}
			}
		}
	})
}

func TestVectorAccKernelsMatchScalar(t *testing.T) {
	forEachVectorMode(t, func(t *testing.T, mode string) {
		rng := rand.New(rand.NewSource(105))
		q, err := nt.NTTPrime(60, 4096)
		if err != nil {
			t.Fatal(err)
		}
		r := modring.New(q)
		nd := Acc128Capacity(q, q-1, 4*q-1)
		if nd > accMaxDigits {
			nd = accMaxDigits
		}
		for _, n := range []int{8, 11, 16, 35, 100, 256} {
			k0 := make([][]uint64, nd)
			k1 := make([][]uint64, nd)
			digits := make([][]uint64, nd)
			for d := 0; d < nd; d++ {
				k0[d] = make([]uint64, n)
				k1[d] = make([]uint64, n)
				digits[d] = make([]uint64, n)
				advFill(rng, k0[d], q, q)
				advFill(rng, k1[d], q, q)
				advFill(rng, digits[d], q, 4*q)
			}
			seed := make([]uint64, n)
			advFill(rng, seed, q, q)
			idx := make([]uint32, n)
			for j := range idx {
				idx[j] = uint32(rng.Intn(n))
			}

			check := func(name string, vec, ref func(a0, a1 []uint64)) {
				g0 := append([]uint64(nil), seed...)
				g1 := append([]uint64(nil), seed...)
				w0 := append([]uint64(nil), seed...)
				w1 := append([]uint64(nil), seed...)
				vec(g0, g1)
				ref(w0, w1)
				for j := 0; j < n; j++ {
					if g0[j] != w0[j] || g1[j] != w1[j] {
						t.Fatalf("%s n=%d nd=%d slot %d: %s (%d,%d) scalar (%d,%d)",
							name, n, nd, j, mode, g0[j], g1[j], w0[j], w1[j])
					}
				}
			}
			check("MulAddPair128",
				func(a0, a1 []uint64) { MulAddPair128(r, a0, a1, k0, k1, digits) },
				func(a0, a1 []uint64) { MulAddPair128Scalar(r, a0, a1, k0, k1, digits) })
			check("MulPair128",
				func(a0, a1 []uint64) { MulPair128(r, a0, a1, k0, k1, digits) },
				func(a0, a1 []uint64) { MulPair128Scalar(r, a0, a1, k0, k1, digits) })
			check("GaloisAccPair128",
				func(a0, a1 []uint64) { GaloisAccPair128(r, a0, a1, k0, k1, digits, idx) },
				func(a0, a1 []uint64) { GaloisAccPair128Scalar(r, a0, a1, k0, k1, digits, idx) })
		}
	})
}

// FuzzForwardLazyVector fuzzes the forward transform's scalar/vector
// bit-identity: arbitrary byte strings become lazy (< 4q) coefficient
// vectors, and every vector tier the host supports must agree with the
// scalar oracle on every lane.
func FuzzForwardLazyVector(f *testing.F) {
	const n = 256
	q, err := nt.NTTPrime(60, n)
	if err != nil {
		f.Fatal(err)
	}
	tb, err := NewTable(q, n)
	if err != nil {
		f.Fatal(err)
	}
	f.Add([]byte{0})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})
	seed := make([]byte, 8*n)
	for i := range seed {
		seed[i] = byte(i * 37)
	}
	f.Add(seed)
	f.Fuzz(func(t *testing.T, data []byte) {
		a := make([]uint64, n)
		for i := range a {
			var v uint64
			if 8*(i+1) <= len(data) {
				v = binary.LittleEndian.Uint64(data[8*i:])
			} else if 8*i < len(data) {
				var buf [8]byte
				copy(buf[:], data[8*i:])
				v = binary.LittleEndian.Uint64(buf[:])
			}
			a[i] = v % (4 * q)
		}
		want := append([]uint64(nil), a...)
		tb.ForwardLazyScalar(want)
		for _, mode := range []string{"avx2", "avx512"} {
			if err := SetVectorMode(mode); err != nil {
				continue
			}
			got := append([]uint64(nil), a...)
			tb.ForwardLazy(got)
			SetVectorMode("auto")
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("%s lane %d: scalar %d vector %d (input %d)", mode, i, want[i], got[i], a[i])
				}
			}
		}
		SetVectorMode("auto")
	})
}

// Pointwise kernel benchmarks at the paper's hot point (n=4096, 60-bit
// prime) — the rows hepim-bench -kernels and the CI regression gate
// compare across dispatch modes.

func benchTable(b *testing.B) *Table {
	b.Helper()
	q, err := nt.NTTPrime(60, 4096)
	if err != nil {
		b.Fatal(err)
	}
	tb, err := NewTable(q, 4096)
	if err != nil {
		b.Fatal(err)
	}
	return tb
}

func BenchmarkPointwiseMul(b *testing.B) {
	tb := benchTable(b)
	rng := rand.New(rand.NewSource(21))
	n := tb.N
	x := make([]uint64, n)
	y := make([]uint64, n)
	dst := make([]uint64, n)
	advFill(rng, x, tb.R.Q, 4*tb.R.Q)
	advFill(rng, y, tb.R.Q, 4*tb.R.Q)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb.PointwiseMul(dst, x, y)
	}
}

func BenchmarkMulShoupLazyVec(b *testing.B) {
	tb := benchTable(b)
	r := tb.R
	rng := rand.New(rand.NewSource(22))
	n := tb.N
	x := make([]uint64, n)
	w := make([]uint64, n)
	ws := make([]uint64, n)
	dst := make([]uint64, n)
	advFill(rng, x, r.Q, 4*r.Q)
	for i := range w {
		w[i] = rng.Uint64() % r.Q
		ws[i] = r.ShoupConst(w[i])
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MulShoupLazyVec(r, dst, x, w, ws)
	}
}

func BenchmarkMulPairAddVec(b *testing.B) {
	tb := benchTable(b)
	r := tb.R
	rng := rand.New(rand.NewSource(23))
	n := tb.N
	a0 := make([]uint64, n)
	b0 := make([]uint64, n)
	a1 := make([]uint64, n)
	b1 := make([]uint64, n)
	dst := make([]uint64, n)
	advFill(rng, a0, r.Q, 4*r.Q)
	advFill(rng, b0, r.Q, 4*r.Q)
	advFill(rng, a1, r.Q, 4*r.Q)
	advFill(rng, b1, r.Q, 4*r.Q)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MulPairAddVec(r, dst, a0, b0, a1, b1)
	}
}
