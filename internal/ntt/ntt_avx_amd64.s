//go:build amd64

// Vectorized NTT butterfly passes (forward CT and inverse GS, two
// layers merged per radix-4 pass, Harvey lazy reduction). Each kernel
// mirrors one pass of the scalar transform in ntt.go bit-for-bit: same
// fold points, same lazy representatives.
//
// AVX-512 register conventions (this file):
//
//	Z24 = q    Z25 = 2q    Z30 = 0xFFFFFFFF lane mask
//	Z0–Z4 are SHOUPLZ_Z scratch; Z5–Z23, Z26–Z29 documented per kernel.
//
// AVX2 conventions: Y12 = q>>32, Y13 = q, Y14 = 2q, Y15 = lane mask;
// Y4–Y10 are SHOUPLZ_Y scratch; twiddles broadcast from memory per use
// (16 ymm registers cannot hold three twiddle triples and the working
// set at once).

#include "textflag.h"

// MULHI_Z(X, Y, YH, XH, T1, T2, TT, DST): DST = ⌊X·Y/2⁶⁴⌋ per lane.
// X, Y, YH = Y>>32 preserved; XH, T1, T2, TT clobbered; Z30 is the mask.
#define MULHI_Z(X, Y, YH, XH, T1, T2, TT, DST) \
	VPSRLQ   $32, X, XH     \
	VPMULUDQ Y, X, T1       \
	VPMULUDQ Y, XH, TT      \
	VPMULUDQ YH, XH, DST    \
	VPMULUDQ YH, X, XH      \
	VPSRLQ   $32, T1, T1    \
	VPANDQ   Z30, TT, T2    \
	VPADDQ   T2, T1, T1     \
	VPANDQ   Z30, XH, T2    \
	VPADDQ   T2, T1, T1     \
	VPSRLQ   $32, T1, T1    \
	VPSRLQ   $32, TT, TT    \
	VPADDQ   TT, DST, DST   \
	VPSRLQ   $32, XH, XH    \
	VPADDQ   XH, DST, DST   \
	VPADDQ   T1, DST, DST

// SHOUPLZ_Z(X, W, WS, WSH, DST): DST = X·W − ⌊X·WS/2⁶⁴⌋·q, the lazy
// Shoup product (< 2q for W < q). Clobbers Z0–Z4; DST may equal X.
#define SHOUPLZ_Z(X, W, WS, WSH, DST) \
	MULHI_Z(X, WS, WSH, Z0, Z1, Z2, Z3, Z4) \
	VPMULLQ W, X, DST   \
	VPMULLQ Z24, Z4, Z4 \
	VPSUBQ  Z4, DST, DST

// FOLD2Q_Z(X, T): X -= 2q if X >= 2q.
#define FOLD2Q_Z(X, T) \
	VPSUBQ  Z25, X, T \
	VPMINUQ T, X, X

// TRANSP_IN: view 8 consecutive radix-4 blocks (Z12..Z15 as loaded,
// 4 elements per block) as four 8-lane vectors Z12..Z15 = element 0..3
// of each block. Clobbers Z16–Z19; needs idx0 in Z26, idx1 in Z27.
#define TRANSP_IN \
	VMOVDQA64  Z12, Z16          \
	VPERMT2Q   Z13, Z26, Z16     \
	VMOVDQA64  Z14, Z17          \
	VPERMT2Q   Z15, Z26, Z17     \
	VMOVDQA64  Z12, Z18          \
	VPERMT2Q   Z13, Z27, Z18     \
	VMOVDQA64  Z14, Z19          \
	VPERMT2Q   Z15, Z27, Z19     \
	VSHUFI64X2 $0x44, Z17, Z16, Z12 \
	VSHUFI64X2 $0xEE, Z17, Z16, Z13 \
	VSHUFI64X2 $0x44, Z19, Z18, Z14 \
	VSHUFI64X2 $0xEE, Z19, Z18, Z15

// TRANSP_OUT: inverse of TRANSP_IN, from Z12..Z15 into Z20..Z23 (the
// four store vectors in memory order). Clobbers Z5–Z8, Z16–Z19 (loads
// the interleave indices from rodata — the twiddle registers are dead
// by the time a kernel runs this).
#define TRANSP_OUT \
	VMOVDQU64 idxA<>(SB), Z5  \
	VMOVDQU64 idxB<>(SB), Z6  \
	VMOVDQU64 idxC<>(SB), Z7  \
	VMOVDQU64 idxD<>(SB), Z8  \
	VMOVDQA64 Z12, Z16        \
	VPERMT2Q  Z13, Z5, Z16    \
	VMOVDQA64 Z14, Z17        \
	VPERMT2Q  Z15, Z5, Z17    \
	VMOVDQA64 Z12, Z18        \
	VPERMT2Q  Z13, Z6, Z18    \
	VMOVDQA64 Z14, Z19        \
	VPERMT2Q  Z15, Z6, Z19    \
	VMOVDQA64 Z16, Z20        \
	VPERMT2Q  Z17, Z7, Z20    \
	VMOVDQA64 Z16, Z21        \
	VPERMT2Q  Z17, Z8, Z21    \
	VMOVDQA64 Z18, Z22        \
	VPERMT2Q  Z19, Z7, Z22    \
	VMOVDQA64 Z18, Z23        \
	VPERMT2Q  Z19, Z8, Z23

// Interleave index tables for the step-1 kernels.
DATA idx0<>+0(SB)/8, $0
DATA idx0<>+8(SB)/8, $4
DATA idx0<>+16(SB)/8, $8
DATA idx0<>+24(SB)/8, $12
DATA idx0<>+32(SB)/8, $1
DATA idx0<>+40(SB)/8, $5
DATA idx0<>+48(SB)/8, $9
DATA idx0<>+56(SB)/8, $13
GLOBL idx0<>(SB), RODATA, $64

DATA idx1<>+0(SB)/8, $2
DATA idx1<>+8(SB)/8, $6
DATA idx1<>+16(SB)/8, $10
DATA idx1<>+24(SB)/8, $14
DATA idx1<>+32(SB)/8, $3
DATA idx1<>+40(SB)/8, $7
DATA idx1<>+48(SB)/8, $11
DATA idx1<>+56(SB)/8, $15
GLOBL idx1<>(SB), RODATA, $64

DATA idxE<>+0(SB)/8, $0
DATA idxE<>+8(SB)/8, $2
DATA idxE<>+16(SB)/8, $4
DATA idxE<>+24(SB)/8, $6
DATA idxE<>+32(SB)/8, $8
DATA idxE<>+40(SB)/8, $10
DATA idxE<>+48(SB)/8, $12
DATA idxE<>+56(SB)/8, $14
GLOBL idxE<>(SB), RODATA, $64

DATA idxO<>+0(SB)/8, $1
DATA idxO<>+8(SB)/8, $3
DATA idxO<>+16(SB)/8, $5
DATA idxO<>+24(SB)/8, $7
DATA idxO<>+32(SB)/8, $9
DATA idxO<>+40(SB)/8, $11
DATA idxO<>+48(SB)/8, $13
DATA idxO<>+56(SB)/8, $15
GLOBL idxO<>(SB), RODATA, $64

DATA idxA<>+0(SB)/8, $0
DATA idxA<>+8(SB)/8, $8
DATA idxA<>+16(SB)/8, $1
DATA idxA<>+24(SB)/8, $9
DATA idxA<>+32(SB)/8, $2
DATA idxA<>+40(SB)/8, $10
DATA idxA<>+48(SB)/8, $3
DATA idxA<>+56(SB)/8, $11
GLOBL idxA<>(SB), RODATA, $64

DATA idxB<>+0(SB)/8, $4
DATA idxB<>+8(SB)/8, $12
DATA idxB<>+16(SB)/8, $5
DATA idxB<>+24(SB)/8, $13
DATA idxB<>+32(SB)/8, $6
DATA idxB<>+40(SB)/8, $14
DATA idxB<>+48(SB)/8, $7
DATA idxB<>+56(SB)/8, $15
GLOBL idxB<>(SB), RODATA, $64

DATA idxC<>+0(SB)/8, $0
DATA idxC<>+8(SB)/8, $1
DATA idxC<>+16(SB)/8, $8
DATA idxC<>+24(SB)/8, $9
DATA idxC<>+32(SB)/8, $2
DATA idxC<>+40(SB)/8, $3
DATA idxC<>+48(SB)/8, $10
DATA idxC<>+56(SB)/8, $11
GLOBL idxC<>(SB), RODATA, $64

DATA idxD<>+0(SB)/8, $4
DATA idxD<>+8(SB)/8, $5
DATA idxD<>+16(SB)/8, $12
DATA idxD<>+24(SB)/8, $13
DATA idxD<>+32(SB)/8, $6
DATA idxD<>+40(SB)/8, $7
DATA idxD<>+48(SB)/8, $14
DATA idxD<>+56(SB)/8, $15
GLOBL idxD<>(SB), RODATA, $64

// func fwdPassAVX512(a, psi, psiS *uint64, m, step int, q uint64)
// One merged radix-4 CT pass over all m blocks; step % 8 == 0.
// Twiddles: w1 = Z16..Z18, w2 = Z19..Z21, w3 = Z22,Z23,Z26.
TEXT ·fwdPassAVX512(SB), NOSPLIT, $0-48
	MOVQ a+0(FP), R11
	MOVQ psi+8(FP), SI
	MOVQ psiS+16(FP), DX
	MOVQ m+24(FP), R10
	MOVQ step+32(FP), R8
	VPBROADCASTQ q+40(FP), Z24
	VPADDQ       Z24, Z24, Z25
	VPTERNLOGQ   $0xFF, Z30, Z30, Z30
	VPSRLQ       $32, Z30, Z30
	MOVQ R8, R9
	SHLQ $3, R9  // step in bytes
	MOVQ R8, R15
	SHRQ $3, R15 // vectors per quarter
	MOVQ R10, BX // twiddle index m+i
	MOVQ R10, AX // blocks remaining

fwd512block:
	VPBROADCASTQ (SI)(BX*8), Z16
	VPBROADCASTQ (DX)(BX*8), Z17
	VPSRLQ       $32, Z17, Z18
	LEAQ         (BX)(BX*1), CX
	VPBROADCASTQ (SI)(CX*8), Z19
	VPBROADCASTQ (DX)(CX*8), Z20
	VPSRLQ       $32, Z20, Z21
	VPBROADCASTQ 8(SI)(CX*8), Z22
	VPBROADCASTQ 8(DX)(CX*8), Z23
	VPSRLQ       $32, Z23, Z26
	LEAQ (R11)(R9*1), R12
	LEAQ (R12)(R9*1), R13
	LEAQ (R13)(R9*1), R14
	MOVQ R15, CX

fwd512inner:
	VMOVDQU64 (R11), Z12
	VMOVDQU64 (R12), Z13
	VMOVDQU64 (R13), Z14
	VMOVDQU64 (R14), Z15
	FOLD2Q_Z(Z12, Z0)
	FOLD2Q_Z(Z13, Z0)
	SHOUPLZ_Z(Z14, Z16, Z17, Z18, Z5) // v2
	SHOUPLZ_Z(Z15, Z16, Z17, Z18, Z6) // v3
	VPADDQ Z5, Z12, Z7                // y0
	VPADDQ Z25, Z12, Z8
	VPSUBQ Z5, Z8, Z8                 // y2
	VPADDQ Z6, Z13, Z9                // y1
	VPADDQ Z25, Z13, Z10
	VPSUBQ Z6, Z10, Z10               // y3
	FOLD2Q_Z(Z7, Z0)
	FOLD2Q_Z(Z8, Z0)
	SHOUPLZ_Z(Z9, Z19, Z20, Z21, Z5)  // u1
	SHOUPLZ_Z(Z10, Z22, Z23, Z26, Z6) // u3
	VPADDQ    Z5, Z7, Z12
	VPADDQ    Z25, Z7, Z13
	VPSUBQ    Z5, Z13, Z13
	VPADDQ    Z6, Z8, Z14
	VPADDQ    Z25, Z8, Z15
	VPSUBQ    Z6, Z15, Z15
	VMOVDQU64 Z12, (R11)
	VMOVDQU64 Z13, (R12)
	VMOVDQU64 Z14, (R13)
	VMOVDQU64 Z15, (R14)
	ADDQ $64, R11
	ADDQ $64, R12
	ADDQ $64, R13
	ADDQ $64, R14
	DECQ CX
	JNZ  fwd512inner

	MOVQ R14, R11 // next block starts after q3
	INCQ BX
	DECQ AX
	JNZ  fwd512block
	VZEROUPPER
	RET

// func invPassAVX512(a, psi, psiS *uint64, m, step int, q uint64)
// One merged radix-4 GS pass over all m>>1 blocks; step % 8 == 0.
// Twiddles: wa0 = Z16..Z18, wa1 = Z19..Z21, wb = Z22,Z23,Z26.
TEXT ·invPassAVX512(SB), NOSPLIT, $0-48
	MOVQ a+0(FP), R11
	MOVQ psi+8(FP), SI
	MOVQ psiS+16(FP), DX
	MOVQ step+32(FP), R8
	VPBROADCASTQ q+40(FP), Z24
	VPADDQ       Z24, Z24, Z25
	VPTERNLOGQ   $0xFF, Z30, Z30, Z30
	VPSRLQ       $32, Z30, Z30
	MOVQ R8, R9
	SHLQ $3, R9
	MOVQ R8, R15
	SHRQ $3, R15
	MOVQ m+24(FP), AX
	MOVQ AX, BX  // wa index m+2i
	SHRQ $1, AX  // half = blocks remaining
	MOVQ AX, R10 // wb index half+i

inv512block:
	VPBROADCASTQ (SI)(BX*8), Z16
	VPBROADCASTQ (DX)(BX*8), Z17
	VPSRLQ       $32, Z17, Z18
	VPBROADCASTQ 8(SI)(BX*8), Z19
	VPBROADCASTQ 8(DX)(BX*8), Z20
	VPSRLQ       $32, Z20, Z21
	VPBROADCASTQ (SI)(R10*8), Z22
	VPBROADCASTQ (DX)(R10*8), Z23
	VPSRLQ       $32, Z23, Z26
	LEAQ (R11)(R9*1), R12
	LEAQ (R12)(R9*1), R13
	LEAQ (R13)(R9*1), R14
	MOVQ R15, CX

inv512inner:
	VMOVDQU64 (R11), Z12
	VMOVDQU64 (R12), Z13
	VMOVDQU64 (R13), Z14
	VMOVDQU64 (R14), Z15
	VPADDQ    Z13, Z12, Z5 // s0
	FOLD2Q_Z(Z5, Z0)
	VPADDQ Z25, Z12, Z6
	VPSUBQ Z13, Z6, Z6               // d
	SHOUPLZ_Z(Z6, Z16, Z17, Z18, Z6) // d0
	VPADDQ Z15, Z14, Z7              // s1
	FOLD2Q_Z(Z7, Z0)
	VPADDQ Z25, Z14, Z8
	VPSUBQ Z15, Z8, Z8               // d
	SHOUPLZ_Z(Z8, Z19, Z20, Z21, Z8) // d1
	VPADDQ Z7, Z5, Z12               // q0 = fold(s0+s1)
	FOLD2Q_Z(Z12, Z0)
	VPADDQ Z25, Z5, Z14
	VPSUBQ Z7, Z14, Z14
	SHOUPLZ_Z(Z14, Z22, Z23, Z26, Z14) // q2
	VPADDQ Z8, Z6, Z13                 // q1 = fold(d0+d1)
	FOLD2Q_Z(Z13, Z0)
	VPADDQ Z25, Z6, Z15
	VPSUBQ Z8, Z15, Z15
	SHOUPLZ_Z(Z15, Z22, Z23, Z26, Z15) // q3
	VMOVDQU64 Z12, (R11)
	VMOVDQU64 Z13, (R12)
	VMOVDQU64 Z14, (R13)
	VMOVDQU64 Z15, (R14)
	ADDQ $64, R11
	ADDQ $64, R12
	ADDQ $64, R13
	ADDQ $64, R14
	DECQ CX
	JNZ  inv512inner

	MOVQ R14, R11
	ADDQ $2, BX
	INCQ R10
	DECQ AX
	JNZ  inv512block
	VZEROUPPER
	RET

// func fwdTailAVX512(a, psi, psiS *uint64, m int, q uint64)
// Final CT pass (step == 1): 8 contiguous radix-4 blocks per iteration
// via in-register transposes; m % 8 == 0. Twiddles become 8-lane
// vectors: w1 contiguous from psi[m:], w2/w3 the even/odd lanes of
// psi[2m:]. w1 = Z5..Z7, w2 = Z8..Z10, w3 = Z11, Z16, Z17.
TEXT ·fwdTailAVX512(SB), NOSPLIT, $0-40
	MOVQ a+0(FP), DI
	MOVQ psi+8(FP), SI
	MOVQ psiS+16(FP), DX
	MOVQ m+24(FP), CX
	VPBROADCASTQ q+32(FP), Z24
	VPADDQ       Z24, Z24, Z25
	VPTERNLOGQ   $0xFF, Z30, Z30, Z30
	VPSRLQ       $32, Z30, Z30
	LEAQ (SI)(CX*8), R8  // psi + m
	LEAQ (DX)(CX*8), R9  // psiS + m
	LEAQ (R8)(CX*8), R10 // psi + 2m
	LEAQ (R9)(CX*8), R11 // psiS + 2m
	SHRQ $3, CX
	VMOVDQU64 idx0<>(SB), Z26
	VMOVDQU64 idx1<>(SB), Z27
	VMOVDQU64 idxE<>(SB), Z28
	VMOVDQU64 idxO<>(SB), Z29

fwdtailloop:
	// Transpose FIRST: TRANSP_IN scratches Z16..Z19, which the twiddle
	// extraction below also uses (w3 shoup lands in Z16/Z17).
	VMOVDQU64 (DI), Z12
	VMOVDQU64 64(DI), Z13
	VMOVDQU64 128(DI), Z14
	VMOVDQU64 192(DI), Z15
	TRANSP_IN
	VMOVDQU64 (R8), Z5 // w1
	VMOVDQU64 (R9), Z6 // w1 shoup
	VPSRLQ    $32, Z6, Z7
	VMOVDQU64 (R10), Z18
	VMOVDQU64 64(R10), Z19
	VMOVDQA64 Z18, Z8
	VPERMT2Q  Z19, Z28, Z8  // w2 = even lanes
	VMOVDQA64 Z18, Z11
	VPERMT2Q  Z19, Z29, Z11 // w3 = odd lanes
	VMOVDQU64 (R11), Z18
	VMOVDQU64 64(R11), Z19
	VMOVDQA64 Z18, Z9
	VPERMT2Q  Z19, Z28, Z9  // w2 shoup
	VPSRLQ    $32, Z9, Z10
	VMOVDQA64 Z18, Z16
	VPERMT2Q  Z19, Z29, Z16 // w3 shoup
	VPSRLQ    $32, Z16, Z17
	FOLD2Q_Z(Z12, Z0)
	FOLD2Q_Z(Z13, Z0)
	SHOUPLZ_Z(Z14, Z5, Z6, Z7, Z18) // v2
	SHOUPLZ_Z(Z15, Z5, Z6, Z7, Z19) // v3
	VPADDQ Z18, Z12, Z20            // y0
	VPADDQ Z25, Z12, Z21
	VPSUBQ Z18, Z21, Z21            // y2
	VPADDQ Z19, Z13, Z22            // y1
	VPADDQ Z25, Z13, Z23
	VPSUBQ Z19, Z23, Z23            // y3
	FOLD2Q_Z(Z20, Z0)
	FOLD2Q_Z(Z21, Z0)
	SHOUPLZ_Z(Z22, Z8, Z9, Z10, Z18)  // u1
	SHOUPLZ_Z(Z23, Z11, Z16, Z17, Z19) // u3
	VPADDQ Z18, Z20, Z12
	VPADDQ Z25, Z20, Z13
	VPSUBQ Z18, Z13, Z13
	VPADDQ Z19, Z21, Z14
	VPADDQ Z25, Z21, Z15
	VPSUBQ Z19, Z15, Z15
	TRANSP_OUT
	VMOVDQU64 Z20, (DI)
	VMOVDQU64 Z21, 64(DI)
	VMOVDQU64 Z22, 128(DI)
	VMOVDQU64 Z23, 192(DI)
	ADDQ $256, DI
	ADDQ $64, R8
	ADDQ $64, R9
	ADDQ $128, R10
	ADDQ $128, R11
	DECQ CX
	JNZ  fwdtailloop
	VZEROUPPER
	RET

// func invHeadAVX512(a, psi, psiS *uint64, m int, q uint64)
// Leading GS pass (step == 1, m == n>>1): 8 contiguous blocks per
// iteration; (m>>1) % 8 == 0. Twiddles: wa0/wa1 = even/odd lanes of
// psi[m:], wb contiguous from psi[m>>1:]. wa0 = Z5..Z7, wa1 = Z8..Z10,
// wb = Z11, Z20, Z21.
TEXT ·invHeadAVX512(SB), NOSPLIT, $0-40
	MOVQ a+0(FP), DI
	MOVQ psi+8(FP), SI
	MOVQ psiS+16(FP), DX
	MOVQ m+24(FP), CX
	VPBROADCASTQ q+32(FP), Z24
	VPADDQ       Z24, Z24, Z25
	VPTERNLOGQ   $0xFF, Z30, Z30, Z30
	VPSRLQ       $32, Z30, Z30
	LEAQ (SI)(CX*8), R8 // psi + m
	LEAQ (DX)(CX*8), R9 // psiS + m
	SHRQ $1, CX         // half
	LEAQ (SI)(CX*8), R10 // psi + half
	LEAQ (DX)(CX*8), R11 // psiS + half
	SHRQ $3, CX
	VMOVDQU64 idx0<>(SB), Z26
	VMOVDQU64 idx1<>(SB), Z27
	VMOVDQU64 idxE<>(SB), Z28
	VMOVDQU64 idxO<>(SB), Z29

invheadloop:
	VMOVDQU64 (R8), Z18
	VMOVDQU64 64(R8), Z19
	VMOVDQA64 Z18, Z5
	VPERMT2Q  Z19, Z28, Z5 // wa0 = even lanes
	VMOVDQA64 Z18, Z8
	VPERMT2Q  Z19, Z29, Z8 // wa1 = odd lanes
	VMOVDQU64 (R9), Z18
	VMOVDQU64 64(R9), Z19
	VMOVDQA64 Z18, Z6
	VPERMT2Q  Z19, Z28, Z6 // wa0 shoup
	VPSRLQ    $32, Z6, Z7
	VMOVDQA64 Z18, Z9
	VPERMT2Q  Z19, Z29, Z9 // wa1 shoup
	VPSRLQ    $32, Z9, Z10
	VMOVDQU64 (R10), Z11   // wb
	VMOVDQU64 (R11), Z20   // wb shoup
	VPSRLQ    $32, Z20, Z21
	VMOVDQU64 (DI), Z12
	VMOVDQU64 64(DI), Z13
	VMOVDQU64 128(DI), Z14
	VMOVDQU64 192(DI), Z15
	TRANSP_IN
	VPADDQ Z13, Z12, Z16 // s0
	FOLD2Q_Z(Z16, Z0)
	VPADDQ Z25, Z12, Z18
	VPSUBQ Z13, Z18, Z18            // d
	SHOUPLZ_Z(Z18, Z5, Z6, Z7, Z18) // d0
	VPADDQ Z15, Z14, Z17            // s1
	FOLD2Q_Z(Z17, Z0)
	VPADDQ Z25, Z14, Z19
	VPSUBQ Z15, Z19, Z19             // d
	SHOUPLZ_Z(Z19, Z8, Z9, Z10, Z19) // d1
	VPADDQ Z17, Z16, Z12             // q0 = fold(s0+s1)
	FOLD2Q_Z(Z12, Z0)
	VPADDQ Z25, Z16, Z14
	VPSUBQ Z17, Z14, Z14
	SHOUPLZ_Z(Z14, Z11, Z20, Z21, Z14) // q2
	VPADDQ Z19, Z18, Z13               // q1 = fold(d0+d1)
	FOLD2Q_Z(Z13, Z0)
	VPADDQ Z25, Z18, Z15
	VPSUBQ Z19, Z15, Z15
	SHOUPLZ_Z(Z15, Z11, Z20, Z21, Z15) // q3
	TRANSP_OUT
	VMOVDQU64 Z20, (DI)
	VMOVDQU64 Z21, 64(DI)
	VMOVDQU64 Z22, 128(DI)
	VMOVDQU64 Z23, 192(DI)
	ADDQ $256, DI
	ADDQ $128, R8
	ADDQ $128, R9
	ADDQ $64, R10
	ADDQ $64, R11
	DECQ CX
	JNZ  invheadloop
	VZEROUPPER
	RET

// func invLast4AVX512(a *uint64, step int, wa0, wa0s, wa1, wa1s, nInv, nInvS, lw, lws, q uint64)
// Merged final two GS stages with n⁻¹ folded in (inverseCore case
// m == 2); step % 8 == 0. Twiddles all broadcast: wa0 = Z16..Z18,
// wa1 = Z19..Z21, nInv = Z22, Z23, Z26, lastW = Z27..Z29.
TEXT ·invLast4AVX512(SB), NOSPLIT, $0-88
	MOVQ a+0(FP), R11
	MOVQ step+8(FP), R8
	VPBROADCASTQ q+80(FP), Z24
	VPADDQ       Z24, Z24, Z25
	VPTERNLOGQ   $0xFF, Z30, Z30, Z30
	VPSRLQ       $32, Z30, Z30
	VPBROADCASTQ wa0+16(FP), Z16
	VPBROADCASTQ wa0s+24(FP), Z17
	VPSRLQ       $32, Z17, Z18
	VPBROADCASTQ wa1+32(FP), Z19
	VPBROADCASTQ wa1s+40(FP), Z20
	VPSRLQ       $32, Z20, Z21
	VPBROADCASTQ nInv+48(FP), Z22
	VPBROADCASTQ nInvS+56(FP), Z23
	VPSRLQ       $32, Z23, Z26
	VPBROADCASTQ lw+64(FP), Z27
	VPBROADCASTQ lws+72(FP), Z28
	VPSRLQ       $32, Z28, Z29
	MOVQ R8, R9
	SHLQ $3, R9
	LEAQ (R11)(R9*1), R12
	LEAQ (R12)(R9*1), R13
	LEAQ (R13)(R9*1), R14
	MOVQ R8, CX
	SHRQ $3, CX

invlast512loop:
	VMOVDQU64 (R11), Z12
	VMOVDQU64 (R12), Z13
	VMOVDQU64 (R13), Z14
	VMOVDQU64 (R14), Z15
	VPADDQ    Z13, Z12, Z5 // s0
	FOLD2Q_Z(Z5, Z0)
	VPADDQ Z25, Z12, Z6
	VPSUBQ Z13, Z6, Z6               // d
	SHOUPLZ_Z(Z6, Z16, Z17, Z18, Z6) // d0
	VPADDQ Z15, Z14, Z7              // s1
	FOLD2Q_Z(Z7, Z0)
	VPADDQ Z25, Z14, Z8
	VPSUBQ Z15, Z8, Z8               // d
	SHOUPLZ_Z(Z8, Z19, Z20, Z21, Z8) // d1
	VPADDQ Z7, Z5, Z9                // v = s0+s1 (lazy, < 4q is fine)
	SHOUPLZ_Z(Z9, Z22, Z23, Z26, Z9) // q0 = v·n⁻¹
	VMOVDQU64 Z9, (R11)
	VPADDQ Z25, Z5, Z10
	VPSUBQ Z7, Z10, Z10
	SHOUPLZ_Z(Z10, Z27, Z28, Z29, Z10) // q2 = d·lastW
	VMOVDQU64 Z10, (R13)
	VPADDQ Z8, Z6, Z9
	SHOUPLZ_Z(Z9, Z22, Z23, Z26, Z9) // q1
	VMOVDQU64 Z9, (R12)
	VPADDQ Z25, Z6, Z10
	VPSUBQ Z8, Z10, Z10
	SHOUPLZ_Z(Z10, Z27, Z28, Z29, Z10) // q3
	VMOVDQU64 Z10, (R14)
	ADDQ $64, R11
	ADDQ $64, R12
	ADDQ $64, R13
	ADDQ $64, R14
	DECQ CX
	JNZ  invlast512loop
	VZEROUPPER
	RET

// ---------------------------------------------------------------------
// AVX2 variants (4 lanes). Twiddles are re-broadcast from the table
// memory inside the loop — with 16 ymm registers there is no room to
// keep three twiddle triples resident alongside the working set.

// MULHI_Y: as MULHI_Z under VEX; Y15 is the lane mask.
#define MULHI_Y(X, Y, YH, XH, T1, T2, TT, DST) \
	VPSRLQ   $32, X, XH     \
	VPMULUDQ Y, X, T1       \
	VPMULUDQ Y, XH, TT      \
	VPMULUDQ YH, XH, DST    \
	VPMULUDQ YH, X, XH      \
	VPSRLQ   $32, T1, T1    \
	VPAND    Y15, TT, T2    \
	VPADDQ   T2, T1, T1     \
	VPAND    Y15, XH, T2    \
	VPADDQ   T2, T1, T1     \
	VPSRLQ   $32, T1, T1    \
	VPSRLQ   $32, TT, TT    \
	VPADDQ   TT, DST, DST   \
	VPSRLQ   $32, XH, XH    \
	VPADDQ   XH, DST, DST   \
	VPADDQ   T1, DST, DST

// MULLO_Y(X, Y, YH, XH, T1, DST): DST = X·Y mod 2⁶⁴ (no VPMULLQ under
// VEX). X, Y, YH preserved; DST must differ from X, Y, YH.
#define MULLO_Y(X, Y, YH, XH, T1, DST) \
	VPSRLQ   $32, X, XH    \
	VPMULUDQ Y, XH, T1     \
	VPMULUDQ YH, X, DST    \
	VPADDQ   T1, DST, DST  \
	VPSLLQ   $32, DST, DST \
	VPMULUDQ Y, X, T1      \
	VPADDQ   T1, DST, DST

// SHOUPLZ_Y(X, WM, WSM, DST): lazy Shoup product with the twiddle and
// its companion broadcast from the memory operands WM/WSM. Clobbers
// Y4–Y10; DST must be outside Y4–Y10 and differ from X. Uses Y12
// (q>>32), Y13 (q), Y15 (mask).
#define SHOUPLZ_Y(X, WM, WSM, DST) \
	VPBROADCASTQ WSM, Y4                      \
	VPSRLQ       $32, Y4, Y5                  \
	MULHI_Y(X, Y4, Y5, Y6, Y7, Y8, Y9, Y10)   \
	VPBROADCASTQ WM, Y4                       \
	VPSRLQ       $32, Y4, Y5                  \
	MULLO_Y(X, Y4, Y5, Y6, Y7, DST)           \
	MULLO_Y(Y10, Y13, Y12, Y6, Y7, Y4)        \
	VPSUBQ       Y4, DST, DST

// FOLD2Q_Y(X, T, U): X -= 2q if X >= 2q. No VPMINUQ or unsigned
// compare under VEX, but none is needed: T = X − 2q wraps above 2⁶³
// exactly when X < 2q (2q < 2⁶³ since q < 2⁶²), so T's sign bit IS the
// keep-X condition. VPBLENDVB selects per byte on each byte's MSB, so
// the qword sign is first smeared across the lane (VPSHUFD replicates
// the high dwords, VPSRAD sign-extends them). Clobbers T, U.
#define FOLD2Q_Y(X, T, U) \
	VPSUBQ    Y14, X, T   \
	VPSHUFD   $0xF5, T, U \
	VPSRAD    $31, U, U   \
	VPBLENDVB U, X, T, X

// func fwdPassAVX2(a, psi, psiS *uint64, m, step int, q uint64)
// One merged radix-4 CT pass over all m blocks; step % 4 == 0.
TEXT ·fwdPassAVX2(SB), NOSPLIT, $0-48
	MOVQ a+0(FP), R11
	MOVQ psi+8(FP), SI
	MOVQ psiS+16(FP), DX
	MOVQ step+32(FP), R8
	VPBROADCASTQ q+40(FP), Y13
	VPSRLQ       $32, Y13, Y12
	VPADDQ       Y13, Y13, Y14
	VPCMPEQD     Y15, Y15, Y15
	VPSRLQ       $32, Y15, Y15
	MOVQ R8, R9
	SHLQ $3, R9  // step in bytes
	MOVQ R8, R15
	SHRQ $2, R15 // vectors per quarter
	MOVQ m+24(FP), AX
	MOVQ AX, BX  // w1 index m+i

fwd2block:
	LEAQ (BX)(BX*1), R10 // w2/w3 index 2(m+i)
	LEAQ (R11)(R9*1), R12
	LEAQ (R12)(R9*1), R13
	LEAQ (R13)(R9*1), R14
	MOVQ R15, CX

fwd2inner:
	VMOVDQU (R11), Y0
	VMOVDQU (R12), Y1
	VMOVDQU (R13), Y2
	VMOVDQU (R14), Y3
	FOLD2Q_Y(Y0, Y4, Y5)
	FOLD2Q_Y(Y1, Y4, Y5)
	SHOUPLZ_Y(Y2, (SI)(BX*8), (DX)(BX*8), Y11) // v2
	VPADDQ  Y11, Y0, Y2                        // y0
	VPADDQ  Y14, Y0, Y0
	VPSUBQ  Y11, Y0, Y0                        // y2
	SHOUPLZ_Y(Y3, (SI)(BX*8), (DX)(BX*8), Y11) // v3
	VPADDQ  Y11, Y1, Y3                        // y1
	VPADDQ  Y14, Y1, Y1
	VPSUBQ  Y11, Y1, Y1                        // y3
	FOLD2Q_Y(Y2, Y4, Y5)
	FOLD2Q_Y(Y0, Y4, Y5)
	SHOUPLZ_Y(Y3, (SI)(R10*8), (DX)(R10*8), Y11) // u1 on w2
	VPADDQ  Y11, Y2, Y3
	VMOVDQU Y3, (R11)
	VPADDQ  Y14, Y2, Y2
	VPSUBQ  Y11, Y2, Y2
	VMOVDQU Y2, (R12)
	SHOUPLZ_Y(Y1, 8(SI)(R10*8), 8(DX)(R10*8), Y11) // u3 on w3
	VPADDQ  Y11, Y0, Y3
	VMOVDQU Y3, (R13)
	VPADDQ  Y14, Y0, Y0
	VPSUBQ  Y11, Y0, Y0
	VMOVDQU Y0, (R14)
	ADDQ $32, R11
	ADDQ $32, R12
	ADDQ $32, R13
	ADDQ $32, R14
	DECQ CX
	JNZ  fwd2inner

	MOVQ R14, R11
	INCQ BX
	DECQ AX
	JNZ  fwd2block
	VZEROUPPER
	RET

// func invPassAVX2(a, psi, psiS *uint64, m, step int, q uint64)
// One merged radix-4 GS pass over all m>>1 blocks; step % 4 == 0.
TEXT ·invPassAVX2(SB), NOSPLIT, $0-48
	MOVQ a+0(FP), R11
	MOVQ psi+8(FP), SI
	MOVQ psiS+16(FP), DX
	MOVQ step+32(FP), R8
	VPBROADCASTQ q+40(FP), Y13
	VPSRLQ       $32, Y13, Y12
	VPADDQ       Y13, Y13, Y14
	VPCMPEQD     Y15, Y15, Y15
	VPSRLQ       $32, Y15, Y15
	MOVQ R8, R9
	SHLQ $3, R9
	MOVQ R8, R15
	SHRQ $2, R15
	MOVQ m+24(FP), AX
	MOVQ AX, BX  // wa index m+2i
	SHRQ $1, AX  // half = blocks remaining
	MOVQ AX, R10 // wb index half+i

inv2block:
	LEAQ (R11)(R9*1), R12
	LEAQ (R12)(R9*1), R13
	LEAQ (R13)(R9*1), R14
	MOVQ R15, CX

inv2inner:
	VMOVDQU (R11), Y0
	VMOVDQU (R12), Y1
	VMOVDQU (R13), Y2
	VMOVDQU (R14), Y3
	VPADDQ  Y14, Y0, Y11
	VPSUBQ  Y1, Y11, Y11 // d = x0+2q-x1
	VPADDQ  Y1, Y0, Y0
	FOLD2Q_Y(Y0, Y4, Y5)                           // s0
	SHOUPLZ_Y(Y11, (SI)(BX*8), (DX)(BX*8), Y1)     // d0 on wa0
	VPADDQ  Y14, Y2, Y11
	VPSUBQ  Y3, Y11, Y11
	VPADDQ  Y3, Y2, Y2
	FOLD2Q_Y(Y2, Y4, Y5)                           // s1
	SHOUPLZ_Y(Y11, 8(SI)(BX*8), 8(DX)(BX*8), Y3)   // d1 on wa1
	VPADDQ  Y14, Y0, Y11
	VPSUBQ  Y2, Y11, Y11                           // d = s0+2q-s1
	VPADDQ  Y2, Y0, Y0
	FOLD2Q_Y(Y0, Y4, Y5)                           // q0
	VMOVDQU Y0, (R11)
	SHOUPLZ_Y(Y11, (SI)(R10*8), (DX)(R10*8), Y2)   // q2 on wb
	VMOVDQU Y2, (R13)
	VPADDQ  Y14, Y1, Y11
	VPSUBQ  Y3, Y11, Y11
	VPADDQ  Y3, Y1, Y1
	FOLD2Q_Y(Y1, Y4, Y5)                           // q1
	VMOVDQU Y1, (R12)
	SHOUPLZ_Y(Y11, (SI)(R10*8), (DX)(R10*8), Y2)   // q3 on wb
	VMOVDQU Y2, (R14)
	ADDQ $32, R11
	ADDQ $32, R12
	ADDQ $32, R13
	ADDQ $32, R14
	DECQ CX
	JNZ  inv2inner

	MOVQ R14, R11
	ADDQ $2, BX
	INCQ R10
	DECQ AX
	JNZ  inv2block
	VZEROUPPER
	RET

// func invLast4AVX2(a *uint64, step int, wa0, wa0s, wa1, wa1s, nInv, nInvS, lw, lws, q uint64)
// Merged final two GS stages with n⁻¹ folded in; step % 4 == 0. All
// twiddles are scalar arguments, broadcast from the frame per use.
TEXT ·invLast4AVX2(SB), NOSPLIT, $0-88
	MOVQ a+0(FP), R11
	MOVQ step+8(FP), R8
	VPBROADCASTQ q+80(FP), Y13
	VPSRLQ       $32, Y13, Y12
	VPADDQ       Y13, Y13, Y14
	VPCMPEQD     Y15, Y15, Y15
	VPSRLQ       $32, Y15, Y15
	MOVQ R8, R9
	SHLQ $3, R9
	LEAQ (R11)(R9*1), R12
	LEAQ (R12)(R9*1), R13
	LEAQ (R13)(R9*1), R14
	MOVQ R8, CX
	SHRQ $2, CX

invlast2loop:
	VMOVDQU (R11), Y0
	VMOVDQU (R12), Y1
	VMOVDQU (R13), Y2
	VMOVDQU (R14), Y3
	VPADDQ  Y14, Y0, Y11
	VPSUBQ  Y1, Y11, Y11
	VPADDQ  Y1, Y0, Y0
	FOLD2Q_Y(Y0, Y4, Y5)                          // s0
	SHOUPLZ_Y(Y11, wa0+16(FP), wa0s+24(FP), Y1)   // d0
	VPADDQ  Y14, Y2, Y11
	VPSUBQ  Y3, Y11, Y11
	VPADDQ  Y3, Y2, Y2
	FOLD2Q_Y(Y2, Y4, Y5)                          // s1
	SHOUPLZ_Y(Y11, wa1+32(FP), wa1s+40(FP), Y3)   // d1
	VPADDQ  Y14, Y0, Y11
	VPSUBQ  Y2, Y11, Y11                          // d = s0+2q-s1
	VPADDQ  Y2, Y0, Y0                            // v = s0+s1 (lazy)
	SHOUPLZ_Y(Y11, lw+64(FP), lws+72(FP), Y2)     // q2 = d·lastW
	VMOVDQU Y2, (R13)
	SHOUPLZ_Y(Y0, nInv+48(FP), nInvS+56(FP), Y11) // q0 = v·n⁻¹
	VMOVDQU Y11, (R11)
	VPADDQ  Y14, Y1, Y11
	VPSUBQ  Y3, Y11, Y11
	VPADDQ  Y3, Y1, Y1
	SHOUPLZ_Y(Y11, lw+64(FP), lws+72(FP), Y2)     // q3
	VMOVDQU Y2, (R14)
	SHOUPLZ_Y(Y1, nInv+48(FP), nInvS+56(FP), Y11) // q1
	VMOVDQU Y11, (R12)
	ADDQ $32, R11
	ADDQ $32, R12
	ADDQ $32, R13
	ADDQ $32, R14
	DECQ CX
	JNZ  invlast2loop
	VZEROUPPER
	RET
