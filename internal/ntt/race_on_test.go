//go:build race

package ntt

const raceEnabled = true
