// Runtime CPU dispatch for the vectorized kernels.
//
// Every hot kernel in this package exists in (at least) two
// implementations: the portable scalar Go code — the oracle every other
// path is differentially tested against — and SIMD assembly selected at
// runtime from the host's detected instruction set (internal/cpufeat).
// The dispatch decision is a process-wide mode:
//
//   - "auto" (default): the best path the host supports — AVX-512 when
//     the F/DQ/BW/VL bundle is OS-enabled, else AVX2, else scalar.
//   - "off"/"scalar": force the scalar oracle everywhere.
//   - "avx2", "avx512": force one vector tier (error if unsupported),
//     so CI exercises each path deliberately rather than by host luck.
//
// The mode is settable programmatically (SetVectorMode) and via the
// HEPIM_VECTOR environment variable read at init. The scalar entry
// points (ForwardLazyScalar, PointwiseMulScalar, MulAddPair128Scalar,
// ...) bypass dispatch entirely, so differential tests compare paths
// in-process without mutating global state.
//
// Vector outputs are bit-identical to scalar outputs, including the
// lazy representatives: the assembly replicates the exact fold points
// and reduction algorithms of the scalar kernels, so a value that
// leaves ForwardLazy as 3q+7 on the scalar path leaves it as 3q+7 on
// every vector path too. Kernel coverage per tier is asymmetric where
// the hardware is: AVX2 (4 lanes, no mask registers) implements the
// butterfly passes and the Shoup pointwise kernels, while the
// Barrett-reduction kernels (pointwise-mul, mul-pair-add, the 128-bit
// accumulators) need the AVX-512 carry masks to pay off and stay
// scalar on AVX2-only hosts. KernelPaths reports the live decision per
// kernel. NEON is detected on arm64 but has no kernels yet; it reports
// as detected-but-scalar.
package ntt

import (
	"fmt"
	"os"
	"sync/atomic"

	"repro/internal/cpufeat"
)

// Instruction-set tiers, ordered by preference.
const (
	isaScalar uint32 = iota
	isaAVX2
	isaAVX512
)

// VectorEnv is the environment variable consulted once at init for the
// initial dispatch mode (same values SetVectorMode accepts).
const VectorEnv = "HEPIM_VECTOR"

var (
	activeISA atomic.Uint32
	// envNote records an ignored/invalid HEPIM_VECTOR value so
	// diagnostic tools (hepim-bench -kernels) can surface it.
	envNote string
)

func init() {
	mode := os.Getenv(VectorEnv)
	if mode == "" {
		mode = "auto"
	}
	if err := SetVectorMode(mode); err != nil {
		envNote = fmt.Sprintf("%s=%q ignored: %v", VectorEnv, mode, err)
		activeISA.Store(bestISA())
	}
}

// bestISA resolves "auto": the widest tier with both hardware support
// and an assembly implementation in this build.
func bestISA() uint32 {
	if !haveVectorKernels {
		return isaScalar
	}
	f := cpufeat.Host()
	switch {
	case f.AVX512:
		return isaAVX512
	case f.AVX2:
		return isaAVX2
	}
	return isaScalar
}

func currentISA() uint32 { return activeISA.Load() }

// SetVectorMode overrides the dispatch decision process-wide:
// "auto", "off" (or "scalar"), "avx2", "avx512". Forcing a tier the
// host cannot run returns an error and leaves the mode unchanged. Safe
// for concurrent use; in-flight kernels finish on the path they chose
// at entry.
func SetVectorMode(mode string) error {
	switch mode {
	case "auto", "":
		activeISA.Store(bestISA())
	case "off", "scalar":
		activeISA.Store(isaScalar)
	case "avx2":
		if !haveVectorKernels || !cpufeat.Host().AVX2 {
			return fmt.Errorf("ntt: avx2 kernels unavailable on this host (%s)", cpufeat.Host())
		}
		activeISA.Store(isaAVX2)
	case "avx512":
		if !haveVectorKernels || !cpufeat.Host().AVX512 {
			return fmt.Errorf("ntt: avx512 kernels unavailable on this host (%s)", cpufeat.Host())
		}
		activeISA.Store(isaAVX512)
	default:
		return fmt.Errorf("ntt: unknown vector mode %q (want auto|off|scalar|avx2|avx512)", mode)
	}
	return nil
}

// VectorMode reports the live dispatch mode as one of "scalar",
// "avx2", "avx512".
func VectorMode() string {
	switch currentISA() {
	case isaAVX512:
		return "avx512"
	case isaAVX2:
		return "avx2"
	}
	return "scalar"
}

// EnvNote reports a diagnostic when HEPIM_VECTOR held an unusable
// value at init ("" when the variable was absent or honored).
func EnvNote() string { return envNote }

// KernelPath is one kernel's live dispatch decision.
type KernelPath struct {
	Kernel string // dispatch-table name, e.g. "ntt-forward"
	Path   string // "scalar" | "avx2" | "avx512"
	Note   string // tier-specific caveat, e.g. which passes stay scalar
}

// KernelPaths reports, for the current mode, which implementation each
// dispatched kernel runs. This is what hepim-bench -kernels prints and
// what the BENCH_dcrt.json kernel-dispatch section records.
func KernelPaths() []KernelPath {
	isa := currentISA()
	pick := func(avx2OK bool, note2 string) (string, string) {
		switch {
		case isa == isaAVX512:
			return "avx512", ""
		case isa == isaAVX2 && avx2OK:
			return "avx2", note2
		case isa == isaAVX2:
			return "scalar", "barrett carry chains need AVX-512 masks"
		}
		return "scalar", ""
	}
	var out []KernelPath
	add := func(kernel string, avx2OK bool, note2 string) {
		path, note := pick(avx2OK, note2)
		out = append(out, KernelPath{Kernel: kernel, Path: path, Note: note})
	}
	add("ntt-forward", true, "radix-4 passes; final step-1 pass scalar")
	add("ntt-inverse", true, "radix-4 + final passes; leading step-1 pass scalar")
	add("pointwise-mul", false, "")
	add("pointwise-mul-shoup", true, "")
	add("mul-pair-add", false, "")
	add("acc-pair-128", false, "")
	add("galois-acc-128", false, "")
	return out
}
