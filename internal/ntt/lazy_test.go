package ntt

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/modring"
	"repro/internal/nt"
)

// Lazy-reduction property tests: the transform and accumulation kernels
// are exercised at a 60-bit prime — the ceiling the extended-basis
// contexts run at, where the 4q and 128-bit headroom arguments are
// tightest — with inputs pinned at the lazy-bound corner cases 0, q−1,
// 2q−1 and 4q−1 alongside random values, cross-checked against the
// strict-reduction kernels and (for Convolve) the schoolbook oracle.

// lazyTable returns a table at the 60-bit prime ceiling.
func lazyTable(t testing.TB, n int) *Table {
	t.Helper()
	q, err := nt.NTTPrime(60, n)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := GetTable(q, n)
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

// pinnedLazy fills a length-n vector with random values below bound,
// pinning the first slots to the corner cases 0, q−1, 2q−1, 4q−1 (those
// below bound).
func pinnedLazy(rng *rand.Rand, n int, q, bound uint64) []uint64 {
	a := make([]uint64, n)
	for i := range a {
		a[i] = rng.Uint64() % bound
	}
	pins := []uint64{0, q - 1, 2*q - 1, 4*q - 1}
	k := 0
	for _, p := range pins {
		if p < bound && k < n {
			a[k] = p
			k++
		}
	}
	return a
}

func modEq(r *modring.Ring, a, b uint64) bool { return a%r.Q == b%r.Q }

// TestForwardLazyBounds: ForwardLazy on lazy inputs (< 4q) stays below
// 4q and agrees with the strict Forward of the reduced input mod q.
func TestForwardLazyBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for _, n := range []int{2, 4, 8, 64, 512, 2048, 4096} {
		tab := lazyTable(t, n)
		q := tab.R.Q
		a := pinnedLazy(rng, n, q, 4*q)
		strict := make([]uint64, n)
		for i := range a {
			strict[i] = a[i] % q
		}
		tab.ForwardLazy(a)
		tab.Forward(strict)
		for i := range a {
			if a[i] >= 4*q {
				t.Fatalf("n=%d: ForwardLazy output %d = %d ≥ 4q", n, i, a[i])
			}
			if !modEq(tab.R, a[i], strict[i]) {
				t.Fatalf("n=%d: ForwardLazy ≠ Forward mod q at %d", n, i)
			}
		}
	}
}

// TestInverseLazyBounds: InverseLazy on lazy inputs (< 2q) stays below
// 2q and agrees with the strict Inverse of the reduced input mod q.
func TestInverseLazyBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	for _, n := range []int{2, 4, 8, 64, 512, 2048, 4096} {
		tab := lazyTable(t, n)
		q := tab.R.Q
		a := pinnedLazy(rng, n, q, 2*q)
		strict := make([]uint64, n)
		for i := range a {
			strict[i] = a[i] % q
		}
		tab.InverseLazy(a)
		tab.Inverse(strict)
		for i := range a {
			if a[i] >= 2*q {
				t.Fatalf("n=%d: InverseLazy output %d = %d ≥ 2q", n, i, a[i])
			}
			if !modEq(tab.R, a[i], strict[i]) {
				t.Fatalf("n=%d: InverseLazy ≠ Inverse mod q at %d", n, i)
			}
		}
	}
}

// TestPointwiseMulLazyInputs: the Barrett pointwise product reduces
// lazily-bounded operands exactly.
func TestPointwiseMulLazyInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	tab := lazyTable(t, 256)
	q := tab.R.Q
	a := pinnedLazy(rng, 256, q, 4*q)
	b := pinnedLazy(rng, 256, q, 4*q)
	got := make([]uint64, 256)
	tab.PointwiseMulLazy(got, a, b)
	for i := range got {
		want := tab.R.Mul(a[i]%q, b[i]%q)
		if got[i] != want {
			t.Fatalf("PointwiseMulLazy mismatch at %d: %d != %d", i, got[i], want)
		}
		if got[i] >= q {
			t.Fatalf("PointwiseMulLazy output %d not canonical", i)
		}
	}
}

// TestConvolveOracle: the fused lazy Convolve pipeline matches the
// schoolbook negacyclic product at the 60-bit ceiling.
func TestConvolveOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(74))
	for _, n := range []int{4, 16, 64} {
		tab := lazyTable(t, n)
		q := tab.R.Q
		a := pinnedLazy(rng, n, q, q)
		b := pinnedLazy(rng, n, q, q)
		got := make([]uint64, n)
		tab.Convolve(got, a, b)
		want := schoolbookNegacyclic(tab.R, a, b)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("n=%d: Convolve ≠ schoolbook at %d: %d != %d", n, i, got[i], want[i])
			}
		}
	}
}

func schoolbookNegacyclic(r *modring.Ring, a, b []uint64) []uint64 {
	n := len(a)
	out := make([]uint64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			p := r.Mul(a[i], b[j])
			if i+j < n {
				out[i+j] = r.Add(out[i+j], p)
			} else {
				out[i+j-n] = r.Sub(out[i+j-n], p)
			}
		}
	}
	return out
}

// naiveAccPair is the strict per-digit reference for the fused 128-bit
// accumulators.
func naiveAccPair(r *modring.Ring, acc0, acc1 []uint64, k0, k1, digits [][]uint64, idx []uint32) {
	for j := range acc0 {
		dj := j
		for d := range digits {
			if idx != nil {
				dj = int(idx[j])
			}
			v := digits[d][dj] % r.Q
			acc0[j] = r.Add(acc0[j], r.Mul(k0[d][j], v))
			acc1[j] = r.Add(acc1[j], r.Mul(k1[d][j], v))
		}
	}
}

// TestAcc128Oracle: MulAddPair128 / MulPair128 / GaloisAccPair128 match
// the strict per-digit loop at the 60-bit ceiling with lazy digit
// operands pinned at the bound corners, up to the advertised capacity.
func TestAcc128Oracle(t *testing.T) {
	rng := rand.New(rand.NewSource(75))
	const n = 128
	tab := lazyTable(t, n)
	r := tab.R
	q := r.Q
	// Lazy digits (< 4q): 3 at the 60-bit ceiling — exactly the paper's
	// three-digit key switch. Folded digits (< 2q) fit more; strict
	// digits (< q) the most. Each case runs at its capacity limit, the
	// Barrett fold's p·2⁶⁴ boundary.
	for _, shape := range []struct {
		bound uint64
		nd    int
	}{
		{4 * q, 1},
		{4 * q, Acc128Capacity(q, q-1, 4*q-1)},
		{2 * q, Acc128Capacity(q, q-1, 2*q-1)},
		{q, Acc128Capacity(q, q-1, q-1)},
	} {
		nd := shape.nd
		if nd < 1 {
			t.Fatalf("no fusion capacity at q=%d bound=%d", q, shape.bound)
		}
		k0 := make([][]uint64, nd)
		k1 := make([][]uint64, nd)
		digits := make([][]uint64, nd)
		for d := range digits {
			k0[d] = pinnedLazy(rng, n, q, q)
			k1[d] = pinnedLazy(rng, n, q, q)
			digits[d] = pinnedLazy(rng, n, q, shape.bound)
		}
		idx := make([]uint32, n)
		for j := range idx {
			idx[j] = uint32(rng.Intn(n))
		}
		seed := pinnedLazy(rng, n, q, q)

		for _, tc := range []struct {
			name string
			run  func(a0, a1 []uint64)
			ref  func(a0, a1 []uint64)
		}{
			{"mulAddPair", func(a0, a1 []uint64) { MulAddPair128(r, a0, a1, k0, k1, digits) },
				func(a0, a1 []uint64) { naiveAccPair(r, a0, a1, k0, k1, digits, nil) }},
			{"mulPair", func(a0, a1 []uint64) { MulPair128(r, a0, a1, k0, k1, digits) },
				func(a0, a1 []uint64) {
					for j := range a0 {
						a0[j], a1[j] = 0, 0
					}
					naiveAccPair(r, a0, a1, k0, k1, digits, nil)
				}},
			{"galoisAccPair", func(a0, a1 []uint64) { GaloisAccPair128(r, a0, a1, k0, k1, digits, idx) },
				func(a0, a1 []uint64) { naiveAccPair(r, a0, a1, k0, k1, digits, idx) }},
		} {
			g0 := append([]uint64(nil), seed...)
			g1 := append([]uint64(nil), seed...)
			w0 := append([]uint64(nil), seed...)
			w1 := append([]uint64(nil), seed...)
			tc.run(g0, g1)
			tc.ref(w0, w1)
			for j := 0; j < n; j++ {
				if g0[j] != w0[j] || g1[j] != w1[j] {
					t.Fatalf("%s nd=%d: mismatch at %d: (%d,%d) != (%d,%d)",
						tc.name, nd, j, g0[j], g1[j], w0[j], w1[j])
				}
			}
		}
	}
}

func TestAcc128Capacity(t *testing.T) {
	// The paper shape: 60-bit prime, canonical keys, < 4p lazy digits —
	// exactly three digits fit (D·(p−1)(4p−1) + 2⁶⁴−1 < p·2⁶⁴).
	p := uint64(1) << 60
	if c := Acc128Capacity(p+1, p, 4*p+3); c != 3 {
		t.Fatalf("60-bit lazy capacity: got %d want 3", c)
	}
	// The bound is the Barrett fold's q·2⁶⁴ domain, not the 128-bit
	// register: at a 62-bit q with 62×63-bit products, one term (plus
	// the seed's full 2⁶⁴ allowance) is all that provably fits.
	if c := Acc128Capacity(1<<62-1, 1<<62-1, 1<<63); c != 1 {
		t.Fatalf("worst-case capacity: got %d want 1", c)
	}
	if c := Acc128Capacity(1<<40, 1<<20, 1<<20); c != 1<<30 {
		t.Fatalf("capacity cap: got %d", c)
	}
}

// TestAllocs asserts zero steady-state allocations on the NTT,
// pointwise-mul, convolve and fused-accumulation kernels.
func TestAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items under the race detector")
	}
	tab := lazyTable(t, 1024)
	q := tab.R.Q
	rng := rand.New(rand.NewSource(76))
	a := pinnedLazy(rng, 1024, q, q)
	b := pinnedLazy(rng, 1024, q, q)
	dst := make([]uint64, 1024)
	k0 := [][]uint64{pinnedLazy(rng, 1024, q, q)}
	k1 := [][]uint64{pinnedLazy(rng, 1024, q, q)}
	digits := [][]uint64{pinnedLazy(rng, 1024, q, 4*q)}
	idx := make([]uint32, 1024)
	acc0 := make([]uint64, 1024)
	acc1 := make([]uint64, 1024)
	tab.Convolve(dst, a, b) // warm the scratch pool
	for name, fn := range map[string]func(){
		"Forward":      func() { tab.Forward(a) },
		"ForwardLazy":  func() { tab.ForwardLazy(a) },
		"Inverse":      func() { tab.Inverse(a) },
		"InverseLazy":  func() { tab.InverseLazy(a) },
		"PointwiseMul": func() { tab.PointwiseMul(dst, a, b) },
		"Convolve":     func() { tab.Convolve(dst, a, b) },
		"MulAddPair":   func() { MulAddPair128(tab.R, acc0, acc1, k0, k1, digits) },
		"GaloisAcc":    func() { GaloisAccPair128(tab.R, acc0, acc1, k0, k1, digits, idx) },
	} {
		if allocs := testing.AllocsPerRun(10, fn); allocs != 0 {
			t.Errorf("%s allocates %.1f per run; want 0", name, allocs)
		}
		// Keep a within the Forward/Inverse lazy input bounds for the
		// next kernel regardless of map order.
		for i := range a {
			a[i] %= q
		}
		_ = name
	}
}

// Kernel benchmarks at the paper's hot point (n=4096, 60-bit basis
// prime) — tracked by the benchmark-regression CI gate.

func benchVec(tab *Table, mul uint64) []uint64 {
	a := make([]uint64, tab.N)
	for i := range a {
		a[i] = uint64(i) * mul % tab.R.Q
	}
	return a
}

func BenchmarkNTTForward(b *testing.B) {
	tab := lazyTable(b, 4096)
	a := benchVec(tab, 12345)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab.Forward(a)
	}
}

func BenchmarkNTTForwardLazy(b *testing.B) {
	tab := lazyTable(b, 4096)
	a := benchVec(tab, 12345)
	b.ResetTimer()
	// ForwardLazy accepts its own lazy (< 4q) outputs, so the benchmark
	// self-feeds with no reduction — the true per-transform cost.
	for i := 0; i < b.N; i++ {
		tab.ForwardLazy(a)
	}
}

func BenchmarkNTTInverse(b *testing.B) {
	tab := lazyTable(b, 4096)
	a := benchVec(tab, 54321)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab.Inverse(a)
	}
}

func BenchmarkNTTConvolve(b *testing.B) {
	tab := lazyTable(b, 4096)
	x := benchVec(tab, 12345)
	y := benchVec(tab, 54321)
	dst := make([]uint64, 4096)
	tab.Convolve(dst, x, y)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab.Convolve(dst, x, y)
	}
}

func BenchmarkGaloisAccPair128(b *testing.B) {
	tab := lazyTable(b, 4096)
	q := tab.R.Q
	rng := rand.New(rand.NewSource(77))
	const nd = 3
	k0 := make([][]uint64, nd)
	k1 := make([][]uint64, nd)
	digits := make([][]uint64, nd)
	for d := 0; d < nd; d++ {
		k0[d] = pinnedLazy(rng, 4096, q, q)
		k1[d] = pinnedLazy(rng, 4096, q, q)
		digits[d] = pinnedLazy(rng, 4096, q, 4*q)
	}
	idx := make([]uint32, 4096)
	for j := range idx {
		idx[j] = uint32(rng.Intn(4096))
	}
	acc0 := make([]uint64, 4096)
	acc1 := make([]uint64, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GaloisAccPair128(tab.R, acc0, acc1, k0, k1, digits, idx)
	}
}

func ExampleAcc128Capacity() {
	// A 60-bit prime with canonical keys and < 4p lazy digits fuses the
	// paper's three-digit key switch in one fold.
	p := uint64(1) << 60
	fmt.Println(Acc128Capacity(p+1, p, 4*p+3) >= 3)
	// Output: true
}
