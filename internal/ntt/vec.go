package ntt

import (
	"math/bits"

	"repro/internal/modring"
)

// Package-level vectorized limb kernels for the double-CRT layer's
// slot loops (internal/dcrt). Each folds the dispatch decision inside:
// the vector body covers the lane-aligned prefix and the scalar oracle
// finishes the tail, so callers pass whole limbs and never think about
// lane widths. Outputs are bit-identical to the scalar loops they
// replace (same folds, same reductions, same lazy representatives).

// MulShoupLazyVec sets dst[j] = r.MulShoupLazy(a[j], w[j], ws[j]) for
// all j — the lazy Shoup limb product (outputs < 2q for w < q). dst
// may alias a.
func MulShoupLazyVec(r *modring.Ring, dst, a, w, ws []uint64) {
	n := len(dst)
	a = a[:n]
	w = w[:n]
	ws = ws[:n]
	i := 0
	switch currentISA() {
	case isaAVX512:
		if n >= 8 {
			i = n &^ 7
			mulShoupLazyAVX512(&dst[0], &a[0], &w[0], &ws[0], i, r.Q)
		}
	case isaAVX2:
		if n >= 4 {
			i = n &^ 3
			mulShoupLazyAVX2(&dst[0], &a[0], &w[0], &ws[0], i, r.Q)
		}
	}
	for ; i < n; i++ {
		dst[i] = r.MulShoupLazy(a[i], w[i], ws[i])
	}
}

// MulPairAddShoupLazyVec sets dst[j] to the 2q-folded sum of two lazy
// Shoup products:
//
//	dst[j] = fold2q(MulShoupLazy(a0,w0,w0s) + MulShoupLazy(a1,w1,w1s))
//
// the fused two-term pattern of the double-CRT rescale and rotation
// paths. Outputs stay below 2q; dst may alias any operand.
func MulPairAddShoupLazyVec(r *modring.Ring, dst, a0, w0, w0s, a1, w1, w1s []uint64) {
	n := len(dst)
	a0 = a0[:n]
	w0 = w0[:n]
	w0s = w0s[:n]
	a1 = a1[:n]
	w1 = w1[:n]
	w1s = w1s[:n]
	i := 0
	if currentISA() == isaAVX512 && n >= 8 {
		i = n &^ 7
		mulPairAddShoupLazyAVX512(&dst[0], &a0[0], &w0[0], &w0s[0], &a1[0], &w1[0], &w1s[0], i, r.Q)
	}
	twoQ := 2 * r.Q
	for ; i < n; i++ {
		s := r.MulShoupLazy(a0[i], w0[i], w0s[i]) + r.MulShoupLazy(a1[i], w1[i], w1s[i])
		if s >= twoQ {
			s -= twoQ
		}
		dst[i] = s
	}
}

// MulPairAddVec sets dst[j] = (a0[j]·b0[j] + a1[j]·b1[j]) mod q with
// one 128-bit accumulation and a single Barrett fold per slot — the
// tensor cross-term kernel. Operands may be lazily reduced (< 4q);
// each is folded below 2q first, keeping the two-product sum inside
// the reduction's q·2⁶⁴ window for q < 2⁶¹. Outputs are canonical.
func MulPairAddVec(r *modring.Ring, dst, a0, b0, a1, b1 []uint64) {
	n := len(dst)
	a0 = a0[:n]
	b0 = b0[:n]
	a1 = a1[:n]
	b1 = b1[:n]
	i := 0
	if currentISA() == isaAVX512 && n >= 8 {
		i = n &^ 7
		muHi, muLo := r.BarrettConsts()
		mulPairAddAVX512(&dst[0], &a0[0], &b0[0], &a1[0], &b1[0], i, r.Q, muHi, muLo)
	}
	twoQ := 2 * r.Q
	for ; i < n; i++ {
		x0, y0, x1, y1 := a0[i], b0[i], a1[i], b1[i]
		if x0 >= twoQ {
			x0 -= twoQ
		}
		if y0 >= twoQ {
			y0 -= twoQ
		}
		if x1 >= twoQ {
			x1 -= twoQ
		}
		if y1 >= twoQ {
			y1 -= twoQ
		}
		h0, l0 := bits.Mul64(x0, y0)
		h1, l1 := bits.Mul64(x1, y1)
		lo, cc := bits.Add64(l0, l1, 0)
		dst[i] = r.ReduceWide(h0+h1+cc, lo)
	}
}
