//go:build !race

package ntt

// raceEnabled reports whether the race detector is active; the
// allocation assertions skip under it (sync.Pool intentionally drops
// items to widen race coverage, so pooled paths allocate).
const raceEnabled = false
