package ntt

import (
	"math/big"
	"math/rand"
	"testing"

	"repro/internal/nt"
)

func testTable(t *testing.T, bits uint, n int) *Table {
	t.Helper()
	q, err := nt.NTTPrime(bits, n)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := NewTable(q, n)
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestForwardInverseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	for _, n := range []int{4, 8, 64, 256, 1024, 4096} {
		tab := testTable(t, 50, n)
		a := make([]uint64, n)
		for i := range a {
			a[i] = rng.Uint64() % tab.R.Q
		}
		orig := append([]uint64(nil), a...)
		tab.Forward(a)
		tab.Inverse(a)
		for i := range a {
			if a[i] != orig[i] {
				t.Fatalf("n=%d: round trip mismatch at %d: %d != %d", n, i, a[i], orig[i])
			}
		}
	}
}

func TestForwardIsLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	tab := testTable(t, 50, 256)
	n := tab.N
	a := make([]uint64, n)
	b := make([]uint64, n)
	sum := make([]uint64, n)
	for i := range a {
		a[i] = rng.Uint64() % tab.R.Q
		b[i] = rng.Uint64() % tab.R.Q
		sum[i] = tab.R.Add(a[i], b[i])
	}
	tab.Forward(a)
	tab.Forward(b)
	tab.Forward(sum)
	for i := range sum {
		if sum[i] != tab.R.Add(a[i], b[i]) {
			t.Fatalf("NTT(a+b) != NTT(a)+NTT(b) at %d", i)
		}
	}
}

// naiveNegacyclic computes a ⊛ b in Z_q[X]/(X^n+1) by schoolbook.
func naiveNegacyclic(a, b []uint64, q uint64) []uint64 {
	n := len(a)
	qb := new(big.Int).SetUint64(q)
	acc := make([]*big.Int, n)
	for i := range acc {
		acc[i] = new(big.Int)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			p := new(big.Int).Mul(new(big.Int).SetUint64(a[i]), new(big.Int).SetUint64(b[j]))
			k := i + j
			if k < n {
				acc[k].Add(acc[k], p)
			} else {
				acc[k-n].Sub(acc[k-n], p)
			}
		}
	}
	out := make([]uint64, n)
	for i := range acc {
		out[i] = acc[i].Mod(acc[i], qb).Uint64()
	}
	return out
}

func TestConvolveMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	for _, n := range []int{4, 8, 32, 128} {
		tab := testTable(t, 50, n)
		a := make([]uint64, n)
		b := make([]uint64, n)
		for i := range a {
			a[i] = rng.Uint64() % tab.R.Q
			b[i] = rng.Uint64() % tab.R.Q
		}
		got := make([]uint64, n)
		tab.Convolve(got, a, b)
		want := naiveNegacyclic(a, b, tab.R.Q)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("n=%d: convolution mismatch at %d: %d != %d", n, i, got[i], want[i])
			}
		}
	}
}

func TestConvolveNegacyclicWraparound(t *testing.T) {
	// X^(n-1) * X = X^n ≡ -1 (mod X^n + 1): the defining identity.
	tab := testTable(t, 50, 8)
	n := tab.N
	a := make([]uint64, n)
	b := make([]uint64, n)
	a[n-1] = 1 // X^{n-1}
	b[1] = 1   // X
	dst := make([]uint64, n)
	tab.Convolve(dst, a, b)
	for i, v := range dst {
		want := uint64(0)
		if i == 0 {
			want = tab.R.Q - 1 // -1 mod q
		}
		if v != want {
			t.Fatalf("X^{n-1}·X: coeff %d = %d, want %d", i, v, want)
		}
	}
}

func TestConvolveIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	tab := testTable(t, 50, 64)
	n := tab.N
	a := make([]uint64, n)
	for i := range a {
		a[i] = rng.Uint64() % tab.R.Q
	}
	one := make([]uint64, n)
	one[0] = 1
	dst := make([]uint64, n)
	tab.Convolve(dst, a, one)
	for i := range dst {
		if dst[i] != a[i] {
			t.Fatalf("a * 1 != a at %d", i)
		}
	}
}

func TestNewTableErrors(t *testing.T) {
	if _, err := NewTable(97, 3); err == nil {
		t.Error("expected error for non-power-of-two size")
	}
	// 97 ≡ 1 mod 32 fails for n=64 (2n=128 does not divide 96).
	if _, err := NewTable(97, 64); err == nil {
		t.Error("expected error for non-NTT-friendly prime")
	}
}

func TestOpCount(t *testing.T) {
	tab := testTable(t, 50, 1024)
	if got := tab.OpCount(); got != 512*10 {
		t.Errorf("OpCount(1024) = %d, want 5120", got)
	}
}

func BenchmarkForward4096(b *testing.B) {
	q, _ := nt.NTTPrime(50, 4096)
	tab, _ := NewTable(q, 4096)
	rng := rand.New(rand.NewSource(64))
	a := make([]uint64, 4096)
	for i := range a {
		a[i] = rng.Uint64() % q
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab.Forward(a)
	}
}

func TestGetTableCachesPerPair(t *testing.T) {
	q, err := nt.NTTPrime(50, 128)
	if err != nil {
		t.Fatal(err)
	}
	t1, err := GetTable(q, 128)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := GetTable(q, 128)
	if err != nil {
		t.Fatal(err)
	}
	if t1 != t2 {
		t.Error("GetTable returned distinct tables for the same (q, n)")
	}
	t3, err := GetTable(q, 64)
	if err != nil {
		t.Fatal(err)
	}
	if t3 == t1 {
		t.Error("GetTable shared a table across different degrees")
	}
	if _, err := GetTable(q+2, 128); err == nil {
		t.Error("GetTable accepted a non-NTT-friendly modulus")
	}
}

func TestConvolveAllocationFree(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items under the race detector")
	}
	tab := testTable(t, 50, 256)
	rng := rand.New(rand.NewSource(61))
	a := make([]uint64, 256)
	b := make([]uint64, 256)
	dst := make([]uint64, 256)
	for i := range a {
		a[i] = rng.Uint64() % tab.R.Q
		b[i] = rng.Uint64() % tab.R.Q
	}
	tab.Convolve(dst, a, b) // prime the scratch pool
	if allocs := testing.AllocsPerRun(20, func() {
		tab.Convolve(dst, a, b)
	}); allocs > 0 {
		t.Errorf("Convolve allocates %.0f objects per call, want 0", allocs)
	}
}

// TestLazyReductionBoundary drives the butterflies with the extreme
// inputs (all coefficients q-1) that maximize the lazy accumulators, and
// checks outputs stay canonical.
func TestLazyReductionBoundary(t *testing.T) {
	for _, n := range []int{8, 256, 1024} {
		tab := testTable(t, 60, n)
		a := make([]uint64, n)
		for i := range a {
			a[i] = tab.R.Q - 1
		}
		fwd := append([]uint64(nil), a...)
		tab.Forward(fwd)
		for i, v := range fwd {
			if v >= tab.R.Q {
				t.Fatalf("n=%d: Forward output %d = %d not reduced", n, i, v)
			}
		}
		tab.Inverse(fwd)
		for i, v := range fwd {
			if v != a[i] {
				t.Fatalf("n=%d: round trip differs at %d", n, i)
			}
		}
	}
}
