//go:build !amd64

package ntt

// No assembly kernels off amd64: dispatch always resolves to the
// scalar oracle (NEON on arm64 is detected but has no kernels yet).
const haveVectorKernels = false

// The stubs below are never reachable — bestISA/SetVectorMode refuse
// every vector tier when haveVectorKernels is false — but keep the
// dispatch call sites building on every GOARCH.

func fwdPassAVX512(a, psi, psiS *uint64, m, step int, q uint64) { panic("ntt: no asm") }
func fwdPassAVX2(a, psi, psiS *uint64, m, step int, q uint64)   { panic("ntt: no asm") }
func fwdTailAVX512(a, psi, psiS *uint64, m int, q uint64)       { panic("ntt: no asm") }
func invPassAVX512(a, psi, psiS *uint64, m, step int, q uint64) { panic("ntt: no asm") }
func invPassAVX2(a, psi, psiS *uint64, m, step int, q uint64)   { panic("ntt: no asm") }
func invHeadAVX512(a, psi, psiS *uint64, m int, q uint64)       { panic("ntt: no asm") }

func invLast4AVX512(a *uint64, step int, wa0, wa0s, wa1, wa1s, nInv, nInvS, lw, lws, q uint64) {
	panic("ntt: no asm")
}

func invLast4AVX2(a *uint64, step int, wa0, wa0s, wa1, wa1s, nInv, nInvS, lw, lws, q uint64) {
	panic("ntt: no asm")
}

func pwMulAVX512(dst, a, b *uint64, n int, q, muHi, muLo uint64) { panic("ntt: no asm") }
func mulShoupLazyAVX512(dst, a, w, ws *uint64, n int, q uint64)  { panic("ntt: no asm") }
func mulShoupLazyAVX2(dst, a, w, ws *uint64, n int, q uint64)    { panic("ntt: no asm") }

func mulPairAddShoupLazyAVX512(dst, a0, w0, w0s, a1, w1, w1s *uint64, n int, q uint64) {
	panic("ntt: no asm")
}

func mulPairAddAVX512(dst, a0, b0, a1, b1 *uint64, n int, q, muHi, muLo uint64) {
	panic("ntt: no asm")
}

func accPair128AVX512(acc0, acc1 *uint64, n int, k0p, k1p, dp *uintptr, ndig, seed int, q, muHi, muLo uint64) {
	panic("ntt: no asm")
}

func galoisAccPair128AVX512(acc0, acc1 *uint64, n int, k0p, k1p, dp *uintptr, ndig int, idx *uint32, q, muHi, muLo uint64) {
	panic("ntt: no asm")
}
