// Package nt provides the number-theoretic utilities the homomorphic
// encryption stack is built on: deterministic Miller–Rabin primality for
// 64-bit integers, generation of NTT-friendly primes (p ≡ 1 mod 2n),
// primitive roots and 2n-th roots of unity, modular exponentiation and
// inverses, and CRT recombination for the RNS representation used by the
// SEAL-style baseline.
package nt

import (
	"errors"
	"math/big"
	"math/bits"
)

// MulMod returns (a * b) mod m using a 128-bit intermediate product.
func MulMod(a, b, m uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	_, rem := bits.Div64(hi%m, lo, m)
	return rem
}

// PowMod returns a^e mod m by square-and-multiply.
func PowMod(a, e, m uint64) uint64 {
	if m == 1 {
		return 0
	}
	a %= m
	r := uint64(1)
	for e > 0 {
		if e&1 == 1 {
			r = MulMod(r, a, m)
		}
		a = MulMod(a, a, m)
		e >>= 1
	}
	return r
}

// IsPrime reports whether n is prime, using the deterministic Miller–Rabin
// witness set for 64-bit integers (Sinclair's 7-base set).
func IsPrime(n uint64) bool {
	if n < 2 {
		return false
	}
	for _, p := range []uint64{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37} {
		if n == p {
			return true
		}
		if n%p == 0 {
			return false
		}
	}
	d := n - 1
	r := 0
	for d&1 == 0 {
		d >>= 1
		r++
	}
	// Deterministic for all n < 2^64 (Jim Sinclair's bases).
	for _, a := range []uint64{2, 325, 9375, 28178, 450775, 9780504, 1795265022} {
		a %= n
		if a == 0 {
			continue
		}
		x := PowMod(a, d, n)
		if x == 1 || x == n-1 {
			continue
		}
		composite := true
		for i := 0; i < r-1; i++ {
			x = MulMod(x, x, n)
			if x == n-1 {
				composite = false
				break
			}
		}
		if composite {
			return false
		}
	}
	return true
}

// InvMod returns the multiplicative inverse of a modulo m, or an error when
// gcd(a, m) != 1.
func InvMod(a, m uint64) (uint64, error) {
	// Extended Euclid on signed 128-bit-safe arithmetic via big.Int is
	// simplest and runs only at setup time.
	ai := new(big.Int).SetUint64(a)
	mi := new(big.Int).SetUint64(m)
	inv := new(big.Int).ModInverse(ai, mi)
	if inv == nil {
		return 0, errors.New("nt: no modular inverse")
	}
	return inv.Uint64(), nil
}

// factorize returns the distinct prime factors of n (trial division plus
// Pollard's rho; n is at most 64 bits and this runs only at parameter-setup
// time).
func factorize(n uint64) []uint64 {
	var fs []uint64
	appendUnique := func(p uint64) {
		for _, f := range fs {
			if f == p {
				return
			}
		}
		fs = append(fs, p)
	}
	var rec func(n uint64)
	rec = func(n uint64) {
		if n == 1 {
			return
		}
		if IsPrime(n) {
			appendUnique(n)
			return
		}
		// Pollard's rho (Brent variant).
		d := pollardRho(n)
		rec(d)
		rec(n / d)
	}
	for _, p := range []uint64{2, 3, 5, 7, 11, 13} {
		for n%p == 0 {
			appendUnique(p)
			n /= p
		}
	}
	rec(n)
	return fs
}

func pollardRho(n uint64) uint64 {
	if n%2 == 0 {
		return 2
	}
	for c := uint64(1); ; c++ {
		f := func(x uint64) uint64 { return (MulMod(x, x, n) + c) % n }
		x, y, d := uint64(2), uint64(2), uint64(1)
		for d == 1 {
			x = f(x)
			y = f(f(y))
			diff := x - y
			if x < y {
				diff = y - x
			}
			if diff == 0 {
				d = n // cycle without factor; retry with new c
				break
			}
			d = gcd(diff, n)
		}
		if d != n {
			return d
		}
	}
}

func gcd(a, b uint64) uint64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// PrimitiveRoot returns a generator of the multiplicative group mod prime p.
func PrimitiveRoot(p uint64) uint64 {
	if p == 2 {
		return 1
	}
	phi := p - 1
	factors := factorize(phi)
	for g := uint64(2); ; g++ {
		ok := true
		for _, f := range factors {
			if PowMod(g, phi/f, p) == 1 {
				ok = false
				break
			}
		}
		if ok {
			return g
		}
	}
}

// NTTPrime returns the largest prime p < 2^bits with p ≡ 1 (mod 2n), which
// admits a primitive 2n-th root of unity as required by the negacyclic NTT.
func NTTPrime(bits uint, n int) (uint64, error) {
	if bits > 62 {
		return 0, errors.New("nt: NTT primes above 62 bits unsupported")
	}
	m := uint64(2 * n)
	p := (uint64(1)<<bits - 1) / m * m // largest multiple of 2n below 2^bits
	for ; p > m; p -= m {
		if IsPrime(p + 1) {
			return p + 1, nil
		}
	}
	return 0, errors.New("nt: no NTT prime found")
}

// NTTPrimes returns k distinct NTT-friendly primes of the given bit size,
// descending from 2^bits.
func NTTPrimes(bits uint, n, k int) ([]uint64, error) {
	m := uint64(2 * n)
	p := (uint64(1)<<bits - 1) / m * m
	var out []uint64
	for ; p > m && len(out) < k; p -= m {
		if IsPrime(p + 1) {
			out = append(out, p+1)
		}
	}
	if len(out) < k {
		return nil, errors.New("nt: not enough NTT primes")
	}
	return out, nil
}

// RootOfUnity returns a primitive 2n-th root of unity modulo the NTT prime
// p (p ≡ 1 mod 2n).
func RootOfUnity(p uint64, n int) (uint64, error) {
	order := uint64(2 * n)
	if (p-1)%order != 0 {
		return 0, errors.New("nt: p-1 not divisible by 2n")
	}
	g := PrimitiveRoot(p)
	psi := PowMod(g, (p-1)/order, p)
	// psi must have exact order 2n: psi^n == -1 mod p.
	if PowMod(psi, uint64(n), p) != p-1 {
		return 0, errors.New("nt: candidate root has wrong order")
	}
	return psi, nil
}

// CRT recombines residues modulo pairwise-coprime moduli into the unique
// value modulo the product of the moduli, returned as a big.Int.
func CRT(residues, moduli []uint64) (*big.Int, error) {
	if len(residues) != len(moduli) || len(moduli) == 0 {
		return nil, errors.New("nt: CRT length mismatch")
	}
	prod := big.NewInt(1)
	for _, m := range moduli {
		prod.Mul(prod, new(big.Int).SetUint64(m))
	}
	x := new(big.Int)
	for i, m := range moduli {
		mi := new(big.Int).SetUint64(m)
		ni := new(big.Int).Div(prod, mi)
		inv := new(big.Int).ModInverse(new(big.Int).Mod(ni, mi), mi)
		if inv == nil {
			return nil, errors.New("nt: CRT moduli not coprime")
		}
		term := new(big.Int).SetUint64(residues[i])
		term.Mul(term, ni)
		term.Mul(term, inv)
		x.Add(x, term)
	}
	return x.Mod(x, prod), nil
}
