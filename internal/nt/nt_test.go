package nt

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIsPrimeSmall(t *testing.T) {
	primes := []uint64{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 97, 101, 65537}
	for _, p := range primes {
		if !IsPrime(p) {
			t.Errorf("IsPrime(%d) = false", p)
		}
	}
	composites := []uint64{0, 1, 4, 6, 9, 15, 21, 25, 91, 561, 41041, 825265}
	for _, c := range composites {
		if IsPrime(c) {
			t.Errorf("IsPrime(%d) = true", c)
		}
	}
}

func TestIsPrimeKnownLarge(t *testing.T) {
	// Values near powers of two with known primality.
	cases := map[uint64]bool{
		1<<61 - 1:            true,  // Mersenne prime
		1<<62 - 57:           true,  // known prime
		1<<62 - 1:            false, // 3 * ...
		18014398509481951:    true,  // 2^54 - 33, the paper-style 54-bit q
		134217689:            true,  // 2^27 - 39
		18446744073709551557: true,  // largest 64-bit prime
		18446744073709551615: false, // 2^64-1
	}
	for n, want := range cases {
		if got := IsPrime(n); got != want {
			t.Errorf("IsPrime(%d) = %v, want %v", n, got, want)
		}
	}
}

func TestIsPrimeMatchesBig(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	for i := 0; i < 300; i++ {
		n := rng.Uint64() >> uint(rng.Intn(40))
		want := new(big.Int).SetUint64(n).ProbablyPrime(40)
		if got := IsPrime(n); got != want {
			t.Fatalf("IsPrime(%d) = %v, big says %v", n, got, want)
		}
	}
}

func TestMulModMatchesBig(t *testing.T) {
	f := func(a, b, m uint64) bool {
		if m == 0 {
			return true
		}
		got := MulMod(a%m, b%m, m)
		want := new(big.Int).Mul(new(big.Int).SetUint64(a%m), new(big.Int).SetUint64(b%m))
		want.Mod(want, new(big.Int).SetUint64(m))
		return got == want.Uint64()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestPowModMatchesBig(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for i := 0; i < 200; i++ {
		a, e, m := rng.Uint64(), rng.Uint64()%1000, rng.Uint64()|1
		got := PowMod(a, e, m)
		want := new(big.Int).Exp(
			new(big.Int).SetUint64(a),
			new(big.Int).SetUint64(e),
			new(big.Int).SetUint64(m))
		if got != want.Uint64() {
			t.Fatalf("PowMod(%d,%d,%d) = %d, want %v", a, e, m, got, want)
		}
	}
}

func TestInvMod(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	m := uint64(18014398509481951) // prime
	for i := 0; i < 100; i++ {
		a := rng.Uint64()%(m-1) + 1
		inv, err := InvMod(a, m)
		if err != nil {
			t.Fatal(err)
		}
		if MulMod(a, inv, m) != 1 {
			t.Fatalf("a*inv != 1 for a=%d", a)
		}
	}
	if _, err := InvMod(6, 9); err == nil {
		t.Error("expected error for non-coprime inverse")
	}
}

func TestPrimitiveRoot(t *testing.T) {
	for _, p := range []uint64{3, 5, 7, 11, 13, 17, 65537, 134217689} {
		g := PrimitiveRoot(p)
		// g^((p-1)/f) != 1 for every prime factor f of p-1, and g^(p-1) == 1.
		if PowMod(g, p-1, p) != 1 {
			t.Errorf("g^(p-1) != 1 for p=%d", p)
		}
		for _, f := range factorize(p - 1) {
			if PowMod(g, (p-1)/f, p) == 1 {
				t.Errorf("g=%d has non-maximal order mod %d (factor %d)", g, p, f)
			}
		}
	}
}

func TestFactorize(t *testing.T) {
	known := map[uint64][]uint64{
		12:           {2, 3},
		97:           {97},
		1 << 20:      {2},
		600851475143: {71, 839, 1471, 6857},
	}
	for n, want := range known {
		got := factorize(n)
		if len(got) != len(want) {
			t.Errorf("factorize(%d) = %v, want %v", n, got, want)
		}
	}
	// Property check on larger values: every reported factor is a distinct
	// prime divisor, and dividing them (with multiplicity) out of n leaves 1.
	rng := rand.New(rand.NewSource(44))
	values := []uint64{134217688, 18014398509481950}
	for i := 0; i < 30; i++ {
		values = append(values, rng.Uint64()>>uint(rng.Intn(24))+2)
	}
	for _, n := range values {
		got := factorize(n)
		seen := map[uint64]bool{}
		rest := n
		for _, f := range got {
			if seen[f] {
				t.Errorf("factorize(%d): duplicate factor %d", n, f)
			}
			seen[f] = true
			if n%f != 0 || !IsPrime(f) {
				t.Errorf("factorize(%d): %d is not a prime factor", n, f)
			}
			for rest%f == 0 {
				rest /= f
			}
		}
		if rest != 1 {
			t.Errorf("factorize(%d) = %v does not cover all factors (left %d)", n, got, rest)
		}
	}
}

func TestNTTPrime(t *testing.T) {
	for _, n := range []int{1024, 2048, 4096} {
		for _, b := range []uint{30, 50, 60} {
			p, err := NTTPrime(b, n)
			if err != nil {
				t.Fatal(err)
			}
			if !IsPrime(p) {
				t.Errorf("NTTPrime(%d,%d) = %d not prime", b, n, p)
			}
			if (p-1)%uint64(2*n) != 0 {
				t.Errorf("NTTPrime(%d,%d) = %d not ≡ 1 mod 2n", b, n, p)
			}
			if p >= 1<<b {
				t.Errorf("NTTPrime(%d,%d) = %d too large", b, n, p)
			}
		}
	}
	if _, err := NTTPrime(63, 1024); err == nil {
		t.Error("expected error for >62-bit request")
	}
}

func TestNTTPrimesDistinct(t *testing.T) {
	ps, err := NTTPrimes(50, 4096, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 3 || ps[0] == ps[1] || ps[1] == ps[2] || ps[0] == ps[2] {
		t.Errorf("NTTPrimes not distinct: %v", ps)
	}
}

func TestRootOfUnity(t *testing.T) {
	for _, n := range []int{8, 1024, 4096} {
		p, err := NTTPrime(50, n)
		if err != nil {
			t.Fatal(err)
		}
		psi, err := RootOfUnity(p, n)
		if err != nil {
			t.Fatal(err)
		}
		if PowMod(psi, uint64(n), p) != p-1 {
			t.Errorf("psi^n != -1 mod p for n=%d", n)
		}
		if PowMod(psi, uint64(2*n), p) != 1 {
			t.Errorf("psi^2n != 1 mod p for n=%d", n)
		}
	}
	if _, err := RootOfUnity(13, 1024); err == nil {
		t.Error("expected error when p-1 not divisible by 2n")
	}
}

func TestCRT(t *testing.T) {
	moduli := []uint64{1125899906842597, 1125899906842589} // two large primes
	rng := rand.New(rand.NewSource(43))
	prod := new(big.Int).Mul(
		new(big.Int).SetUint64(moduli[0]),
		new(big.Int).SetUint64(moduli[1]))
	for i := 0; i < 50; i++ {
		x := new(big.Int).Rand(rng, prod)
		residues := []uint64{
			new(big.Int).Mod(x, new(big.Int).SetUint64(moduli[0])).Uint64(),
			new(big.Int).Mod(x, new(big.Int).SetUint64(moduli[1])).Uint64(),
		}
		got, err := CRT(residues, moduli)
		if err != nil {
			t.Fatal(err)
		}
		if got.Cmp(x) != 0 {
			t.Fatalf("CRT = %v, want %v", got, x)
		}
	}
	if _, err := CRT([]uint64{1}, []uint64{2, 3}); err == nil {
		t.Error("expected length-mismatch error")
	}
	if _, err := CRT([]uint64{1, 2}, []uint64{4, 6}); err == nil {
		t.Error("expected non-coprime error")
	}
}
