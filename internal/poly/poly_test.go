package poly

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/limb32"
)

// The paper's three coefficient moduli (27-, 54-, 109-bit primes).
func testModuli(t *testing.T) []*Modulus {
	t.Helper()
	var mods []*Modulus
	for _, s := range []string{
		"134217689",
		"18014398509481951",
		"649037107316853453566312041152481",
	} {
		q, ok := new(big.Int).SetString(s, 10)
		if !ok {
			t.Fatal("bad modulus literal")
		}
		m, err := NewModulus(q)
		if err != nil {
			t.Fatal(err)
		}
		mods = append(mods, m)
	}
	return mods
}

func randPoly(rng *rand.Rand, n int, mod *Modulus) *Poly {
	p := NewPoly(n, mod.W)
	for i := 0; i < n; i++ {
		c := new(big.Int).Rand(rng, mod.QBig)
		p.Coeff(i).Set(limb32.FromBig(c, mod.W))
	}
	return p
}

func TestNewModulusWidths(t *testing.T) {
	mods := testModuli(t)
	for i, want := range []int{1, 2, 4} {
		if mods[i].W != want {
			t.Errorf("modulus %d: W = %d, want %d", i, mods[i].W, want)
		}
	}
	for i, want := range []int{27, 54, 109} {
		if mods[i].Bits() != want {
			t.Errorf("modulus %d: bits = %d, want %d", i, mods[i].Bits(), want)
		}
	}
	if _, err := NewModulus(big.NewInt(1)); err == nil {
		t.Error("modulus 1 should be rejected")
	}
	if _, err := NewModulus(big.NewInt(-5)); err == nil {
		t.Error("negative modulus should be rejected")
	}
	// A 200-bit modulus should get a generic width.
	big200 := new(big.Int).Lsh(big.NewInt(1), 199)
	big200.Add(big200, big.NewInt(1))
	m, err := NewModulus(big200)
	if err != nil {
		t.Fatal(err)
	}
	if m.W != 7 {
		t.Errorf("200-bit modulus W = %d, want 7", m.W)
	}
}

func TestAddSubNegMatchBig(t *testing.T) {
	rng := rand.New(rand.NewSource(80))
	for _, mod := range testModuli(t) {
		n := 32
		a, b := randPoly(rng, n, mod), randPoly(rng, n, mod)
		dst := NewPoly(n, mod.W)

		Add(dst, a, b, mod, nil)
		for i := 0; i < n; i++ {
			want := new(big.Int).Add(a.Coeff(i).Big(), b.Coeff(i).Big())
			want.Mod(want, mod.QBig)
			if dst.Coeff(i).Big().Cmp(want) != 0 {
				t.Fatalf("Add coeff %d mismatch", i)
			}
		}

		Sub(dst, a, b, mod, nil)
		for i := 0; i < n; i++ {
			want := new(big.Int).Sub(a.Coeff(i).Big(), b.Coeff(i).Big())
			want.Mod(want, mod.QBig)
			if dst.Coeff(i).Big().Cmp(want) != 0 {
				t.Fatalf("Sub coeff %d mismatch", i)
			}
		}

		Neg(dst, a, mod, nil)
		sum := NewPoly(n, mod.W)
		Add(sum, dst, a, mod, nil)
		if !sum.IsZero() {
			t.Fatal("a + (-a) != 0")
		}
	}
}

func TestAddAliasing(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	mod := testModuli(t)[2]
	a, b := randPoly(rng, 16, mod), randPoly(rng, 16, mod)
	want := NewPoly(16, mod.W)
	Add(want, a, b, mod, nil)
	aCopy := a.Clone()
	Add(aCopy, aCopy, b, mod, nil) // dst aliases a
	if !aCopy.Equal(want) {
		t.Error("aliased Add differs")
	}
}

// naiveNegacyclic computes the product with big.Int, the independent oracle.
func naiveNegacyclic(a, b *Poly, mod *Modulus) *Poly {
	n := a.N
	acc := make([]*big.Int, n)
	for i := range acc {
		acc[i] = new(big.Int)
	}
	for i := 0; i < n; i++ {
		ab := a.Coeff(i).Big()
		for j := 0; j < n; j++ {
			p := new(big.Int).Mul(ab, b.Coeff(j).Big())
			if i+j < n {
				acc[i+j].Add(acc[i+j], p)
			} else {
				acc[i+j-n].Sub(acc[i+j-n], p)
			}
		}
	}
	return FromBigCoeffs(acc, mod)
}

func TestMulNegacyclicMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	for _, mod := range testModuli(t) {
		for _, n := range []int{4, 16, 64} {
			a, b := randPoly(rng, n, mod), randPoly(rng, n, mod)
			got := NewPoly(n, mod.W)
			MulNegacyclic(got, a, b, mod, nil)
			want := naiveNegacyclic(a, b, mod)
			if !got.Equal(want) {
				t.Fatalf("W=%d n=%d: MulNegacyclic mismatch", mod.W, n)
			}
		}
	}
}

func TestMulNegacyclicIdentityAndWraparound(t *testing.T) {
	mod := testModuli(t)[2]
	n := 16
	rng := rand.New(rand.NewSource(83))
	a := randPoly(rng, n, mod)

	one := NewPoly(n, mod.W)
	one.Coeff(0).Set(limb32.FromUint64(1, mod.W))
	dst := NewPoly(n, mod.W)
	MulNegacyclic(dst, a, one, mod, nil)
	if !dst.Equal(a) {
		t.Error("a * 1 != a")
	}

	// X^{n-1} * X = -1.
	x := NewPoly(n, mod.W)
	x.Coeff(1).Set(limb32.FromUint64(1, mod.W))
	xn1 := NewPoly(n, mod.W)
	xn1.Coeff(n - 1).Set(limb32.FromUint64(1, mod.W))
	MulNegacyclic(dst, x, xn1, mod, nil)
	wantC := new(big.Int).Sub(mod.QBig, big.NewInt(1))
	if dst.Coeff(0).Big().Cmp(wantC) != 0 {
		t.Errorf("X^{n-1}·X coeff 0 = %v, want q-1", dst.Coeff(0))
	}
	for i := 1; i < n; i++ {
		if !dst.Coeff(i).IsZero() {
			t.Errorf("X^{n-1}·X coeff %d non-zero", i)
		}
	}
}

func TestMulCommutesProperty(t *testing.T) {
	mod := testModuli(t)[0]
	n := 8
	f := func(av, bv [8]uint32) bool {
		a, b := NewPoly(n, 1), NewPoly(n, 1)
		for i := 0; i < n; i++ {
			a.C[i] = av[i] % uint32(mod.QBig.Uint64())
			b.C[i] = bv[i] % uint32(mod.QBig.Uint64())
		}
		ab, ba := NewPoly(n, 1), NewPoly(n, 1)
		MulNegacyclic(ab, a, b, mod, nil)
		MulNegacyclic(ba, b, a, mod, nil)
		return ab.Equal(ba)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMulDistributesProperty(t *testing.T) {
	mod := testModuli(t)[1]
	rng := rand.New(rand.NewSource(84))
	n := 8
	for i := 0; i < 50; i++ {
		a, b, c := randPoly(rng, n, mod), randPoly(rng, n, mod), randPoly(rng, n, mod)
		bc := NewPoly(n, mod.W)
		Add(bc, b, c, mod, nil)
		lhs := NewPoly(n, mod.W)
		MulNegacyclic(lhs, a, bc, mod, nil)
		ab, ac := NewPoly(n, mod.W), NewPoly(n, mod.W)
		MulNegacyclic(ab, a, b, mod, nil)
		MulNegacyclic(ac, a, c, mod, nil)
		rhs := NewPoly(n, mod.W)
		Add(rhs, ab, ac, mod, nil)
		if !lhs.Equal(rhs) {
			t.Fatal("a(b+c) != ab+ac")
		}
	}
}

func TestMulScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(85))
	mod := testModuli(t)[2]
	n := 16
	a := randPoly(rng, n, mod)
	s := new(big.Int).Rand(rng, mod.QBig)
	dst := NewPoly(n, mod.W)
	MulScalar(dst, a, limb32.FromBig(s, mod.W), mod, nil)
	for i := 0; i < n; i++ {
		want := new(big.Int).Mul(a.Coeff(i).Big(), s)
		want.Mod(want, mod.QBig)
		if dst.Coeff(i).Big().Cmp(want) != 0 {
			t.Fatalf("MulScalar coeff %d mismatch", i)
		}
	}
}

func TestCenteredCoeffs(t *testing.T) {
	mod := testModuli(t)[0]
	p := FromInt64Coeffs([]int64{0, 1, -1, 5, -5, 0, 0, 0}, mod)
	got := p.ToCenteredCoeffs(mod)
	want := []int64{0, 1, -1, 5, -5, 0, 0, 0}
	for i := range want {
		if got[i].Int64() != want[i] {
			t.Errorf("centered coeff %d = %v, want %d", i, got[i], want[i])
		}
	}
	if p.InfNormCentered(mod).Int64() != 5 {
		t.Errorf("InfNorm = %v, want 5", p.InfNormCentered(mod))
	}
}

func TestFromBigRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(86))
	mod := testModuli(t)[2]
	coeffs := make([]*big.Int, 8)
	for i := range coeffs {
		coeffs[i] = new(big.Int).Rand(rng, mod.QBig)
	}
	p := FromBigCoeffs(coeffs, mod)
	back := p.ToBigCoeffs()
	for i := range coeffs {
		if back[i].Cmp(coeffs[i]) != 0 {
			t.Fatalf("big round trip at %d", i)
		}
	}
}

func TestNewPolyPanicsOnBadN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-power-of-two n")
		}
	}()
	NewPoly(12, 1)
}

func TestShapeMismatchPanics(t *testing.T) {
	mod := testModuli(t)[0]
	a := NewPoly(8, 1)
	b := NewPoly(16, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for shape mismatch")
		}
	}()
	Add(a, a, b, mod, nil)
}

func TestMeteredMulChargesKaratsubaCounts(t *testing.T) {
	// For the 109-bit modulus each coefficient product is a 4-limb
	// Karatsuba multiply: 9 OpMul32 per (i,j) pair, n² pairs.
	mod := testModuli(t)[2]
	n := 8
	rng := rand.New(rand.NewSource(87))
	a, b := randPoly(rng, n, mod), randPoly(rng, n, mod)
	var m limb32.Counts
	dst := NewPoly(n, mod.W)
	MulNegacyclic(dst, a, b, mod, &m)
	wantMin := int64(9 * n * n) // products only; Mod charges extra
	if m[limb32.OpMul32] < wantMin {
		t.Errorf("metered mul32 = %d, want >= %d", m[limb32.OpMul32], wantMin)
	}
}
