// Package poly implements the polynomial quotient ring
// R_q = Z_q[X]/(Xⁿ + 1) over multi-limb coefficient moduli, the algebra
// underlying the BFV scheme (§3 of the paper). Coefficients are stored as
// fixed-width base-2³² limbs — 1, 2, or 4 limbs for the paper's 27-, 54-
// and 109-bit security levels — in one flat slice, mirroring the memory
// layout the PIM kernels stream out of MRAM.
//
// All mutating operations accept a limb32.Meter so the PIM simulator can
// charge exact per-instruction costs while host callers pass nil.
package poly

import (
	"errors"
	"fmt"
	"math/big"

	"repro/internal/limb32"
)

// Modulus describes a coefficient modulus q together with its limb width
// and precomputed Barrett constant.
type Modulus struct {
	W    int        // limbs per coefficient (1, 2, 4, ...)
	Q    limb32.Nat // q, width W
	QBig *big.Int   // q as a big integer
	Half *big.Int   // floor(q/2), for centered lifts
	BR   *limb32.Barrett
}

// NewModulus builds a Modulus for q > 1. The limb width is the smallest of
// {1, 2, 4} that fits q, or ⌈bits/32⌉ beyond 128 bits — exactly the
// paper's mapping of 27/54/109-bit coefficients to 32/64/128-bit integers.
func NewModulus(q *big.Int) (*Modulus, error) {
	if q.Sign() <= 0 || q.Cmp(big.NewInt(1)) == 0 {
		return nil, errors.New("poly: modulus must exceed 1")
	}
	bits := q.BitLen()
	var w int
	switch {
	case bits <= 32:
		w = 1
	case bits <= 64:
		w = 2
	case bits <= 128:
		w = 4
	default:
		w = (bits + 31) / 32
	}
	qn := limb32.FromBig(q, w)
	return &Modulus{
		W:    w,
		Q:    qn,
		QBig: new(big.Int).Set(q),
		Half: new(big.Int).Rsh(q, 1),
		BR:   limb32.NewBarrett(qn),
	}, nil
}

// Bits returns the bit length of q.
func (m *Modulus) Bits() int { return m.QBig.BitLen() }

// Poly is a polynomial of degree < N with W-limb coefficients, reduced
// modulo q (callers maintain the reduction invariant).
type Poly struct {
	N int
	W int
	C []uint32 // coefficient i occupies C[i*W : (i+1)*W], little-endian
}

// NewPoly returns the zero polynomial with n coefficients of w limbs.
func NewPoly(n, w int) *Poly {
	if n <= 0 || n&(n-1) != 0 {
		panic(fmt.Sprintf("poly: n=%d is not a power of two", n))
	}
	return &Poly{N: n, W: w, C: make([]uint32, n*w)}
}

// NewPolyBacked wraps an existing backing of exactly n·w words as a
// polynomial, without zeroing it: the contents are whatever the backing
// holds. The zero-copy decode path uses this to deserialize directly
// into pooled memory — it overwrites every word, so a recycled backing
// is indistinguishable from a fresh one. Callers that do not overwrite
// all coefficients must clear the backing themselves.
func NewPolyBacked(n, w int, c []uint32) *Poly {
	if n <= 0 || n&(n-1) != 0 {
		panic(fmt.Sprintf("poly: n=%d is not a power of two", n))
	}
	if len(c) != n*w {
		panic(fmt.Sprintf("poly: backing has %d words, need %d", len(c), n*w))
	}
	return &Poly{N: n, W: w, C: c}
}

// Coeff returns a mutable view of coefficient i.
func (p *Poly) Coeff(i int) limb32.Nat { return limb32.Nat(p.C[i*p.W : (i+1)*p.W]) }

// Clone returns a deep copy.
func (p *Poly) Clone() *Poly {
	c := &Poly{N: p.N, W: p.W, C: make([]uint32, len(p.C))}
	copy(c.C, p.C)
	return c
}

// Zero clears all coefficients.
func (p *Poly) Zero() {
	for i := range p.C {
		p.C[i] = 0
	}
}

// IsZero reports whether all coefficients are zero.
func (p *Poly) IsZero() bool {
	for _, v := range p.C {
		if v != 0 {
			return false
		}
	}
	return true
}

// Equal reports coefficient-wise equality.
func (p *Poly) Equal(o *Poly) bool {
	if p.N != o.N || p.W != o.W {
		return false
	}
	for i := range p.C {
		if p.C[i] != o.C[i] {
			return false
		}
	}
	return true
}

func checkShapes(dst, a, b *Poly, mod *Modulus) {
	if dst.N != a.N || a.N != b.N || dst.W != mod.W || a.W != mod.W || b.W != mod.W {
		panic("poly: operand shape mismatch")
	}
}

// Add sets dst = a + b in R_q. dst may alias a or b.
func Add(dst, a, b *Poly, mod *Modulus, m limb32.Meter) {
	checkShapes(dst, a, b, mod)
	for i := 0; i < dst.N; i++ {
		limb32.AddMod(dst.Coeff(i), a.Coeff(i), b.Coeff(i), mod.Q, m)
	}
}

// Sub sets dst = a - b in R_q.
func Sub(dst, a, b *Poly, mod *Modulus, m limb32.Meter) {
	checkShapes(dst, a, b, mod)
	for i := 0; i < dst.N; i++ {
		limb32.SubMod(dst.Coeff(i), a.Coeff(i), b.Coeff(i), mod.Q, m)
	}
}

// Neg sets dst = -a in R_q.
func Neg(dst, a *Poly, mod *Modulus, m limb32.Meter) {
	if dst.N != a.N || dst.W != mod.W || a.W != mod.W {
		panic("poly: operand shape mismatch")
	}
	for i := 0; i < dst.N; i++ {
		limb32.NegMod(dst.Coeff(i), a.Coeff(i), mod.Q, m)
	}
}

// MulScalar sets dst = a * s in R_q for a W-limb scalar s < q.
func MulScalar(dst, a *Poly, s limb32.Nat, mod *Modulus, m limb32.Meter) {
	if dst.N != a.N || dst.W != mod.W || a.W != mod.W {
		panic("poly: operand shape mismatch")
	}
	for i := 0; i < dst.N; i++ {
		mod.BR.MulMod(dst.Coeff(i), a.Coeff(i), s, m)
	}
}

// MulNegacyclic sets dst = a * b in R_q by schoolbook multiplication with
// negacyclic wraparound (Xⁿ ≡ −1), accumulating products lazily and
// reducing each output coefficient once. This is the host reference for
// the PIM multiplication kernel; both compute identical values mod q.
// dst must not alias a or b.
func MulNegacyclic(dst, a, b *Poly, mod *Modulus, m limb32.Meter) {
	checkShapes(dst, a, b, mod)
	n, w := dst.N, dst.W
	accW := 2*w + 1 // room for n·q² (n ≤ 2³² covers all paper configs)

	pos := make([]uint32, n*accW) // positive accumulators
	neg := make([]uint32, n*accW) // wrapped (negated) accumulators
	prod := limb32.NewNat(2 * w)

	for i := 0; i < n; i++ {
		ai := a.Coeff(i)
		if ai.IsZero() {
			continue
		}
		for j := 0; j < n; j++ {
			bj := b.Coeff(j)
			if bj.IsZero() {
				continue
			}
			limb32.Mul(prod, ai, bj, m)
			k := i + j
			acc := pos
			if k >= n {
				k -= n
				acc = neg
			}
			accumAdd(acc[k*accW:(k+1)*accW], prod)
		}
	}

	qw := limb32.NewNat(accW)
	copy(qw, mod.Q)
	rp := limb32.NewNat(w)
	rn := limb32.NewNat(w)
	for k := 0; k < n; k++ {
		limb32.Mod(rp, limb32.Nat(pos[k*accW:(k+1)*accW]), mod.Q, m)
		limb32.Mod(rn, limb32.Nat(neg[k*accW:(k+1)*accW]), mod.Q, m)
		limb32.SubMod(dst.Coeff(k), rp, rn, mod.Q, m)
	}
}

// accumAdd adds src (2w limbs) into acc (2w+1 limbs) without metering:
// the accumulation strategy is a host-side optimization; the metered DPU
// kernel charges its own (different) instruction stream.
func accumAdd(acc []uint32, src limb32.Nat) {
	var carry uint64
	for i := 0; i < len(src); i++ {
		s := uint64(acc[i]) + uint64(src[i]) + carry
		acc[i] = uint32(s)
		carry = s >> 32
	}
	for i := len(src); carry != 0 && i < len(acc); i++ {
		s := uint64(acc[i]) + carry
		acc[i] = uint32(s)
		carry = s >> 32
	}
}

// FromBigCoeffs builds a polynomial from arbitrary big-integer
// coefficients, reducing each mod q.
func FromBigCoeffs(coeffs []*big.Int, mod *Modulus) *Poly {
	p := NewPoly(len(coeffs), mod.W)
	t := new(big.Int)
	for i, c := range coeffs {
		t.Mod(c, mod.QBig)
		p.Coeff(i).Set(limb32.FromBig(t, mod.W))
	}
	return p
}

// FromInt64Coeffs builds a polynomial from small signed coefficients
// (e.g. sampler output), reducing each mod q.
func FromInt64Coeffs(coeffs []int64, mod *Modulus) *Poly {
	bigs := make([]*big.Int, len(coeffs))
	for i, c := range coeffs {
		bigs[i] = big.NewInt(c)
	}
	return FromBigCoeffs(bigs, mod)
}

// ToBigCoeffs returns the canonical representatives in [0, q).
func (p *Poly) ToBigCoeffs() []*big.Int {
	out := make([]*big.Int, p.N)
	for i := range out {
		out[i] = p.Coeff(i).Big()
	}
	return out
}

// ToCenteredCoeffs returns the centered representatives in [-q/2, q/2).
func (p *Poly) ToCenteredCoeffs(mod *Modulus) []*big.Int {
	out := p.ToBigCoeffs()
	for _, c := range out {
		if c.Cmp(mod.Half) > 0 {
			c.Sub(c, mod.QBig)
		}
	}
	return out
}

// InfNormCentered returns max |c_i| over the centered representatives —
// the noise magnitude used by the BFV noise-budget estimator.
func (p *Poly) InfNormCentered(mod *Modulus) *big.Int {
	max := new(big.Int)
	for _, c := range p.ToCenteredCoeffs(mod) {
		a := new(big.Int).Abs(c)
		if a.Cmp(max) > 0 {
			max = a
		}
	}
	return max
}
