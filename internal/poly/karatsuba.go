package poly

import (
	"math/bits"

	"repro/internal/limb32"
)

// Polynomial-level Karatsuba multiplication. The paper applies Karatsuba
// at the *limb* level (splitting 64/128-bit coefficients into 32-bit
// chunks, §3); this file applies the same recursion at the *polynomial*
// level — an O(n^1.585) alternative to the O(n²) schoolbook that needs no
// NTT-friendly modulus. It serves as a design-choice ablation: DESIGN.md
// asks which level of the stack the divide-and-conquer pays off at.
//
// Implemented for single-limb (W=1) moduli, where coefficient arithmetic
// is native 64-bit.

// karatsubaPolyThreshold is the size below which schoolbook wins (the
// recursion overhead exceeds the saved multiplies).
const karatsubaPolyThreshold = 16

// MulNegacyclicKaratsuba sets dst = a·b in R_q using polynomial-level
// Karatsuba over the full 2n-1 product followed by the negacyclic fold
// (X^n ≡ −1). Requires mod.W == 1. dst must not alias a or b.
func MulNegacyclicKaratsuba(dst, a, b *Poly, mod *Modulus, m limb32.Meter) {
	checkShapes(dst, a, b, mod)
	if mod.W != 1 {
		panic("poly: MulNegacyclicKaratsuba requires a single-limb modulus")
	}
	n := a.N
	q := mod.QBig.Uint64()

	av := make([]uint64, n)
	bv := make([]uint64, n)
	for i := 0; i < n; i++ {
		av[i] = uint64(a.C[i])
		bv[i] = uint64(b.C[i])
	}
	full := karatsubaFull(av, bv, q, m) // 2n-1 coefficients

	for k := 0; k < n; k++ {
		v := full[k]
		if k+n < len(full) {
			// c[k] - c[k+n] mod q
			v = subMod64(v, full[k+n], q)
			tick(m, limb32.OpSub, 1)
		}
		dst.C[k] = uint32(v)
	}
	tick(m, limb32.OpStore, n)
}

// karatsubaFull returns the full product (len(a)+len(b)-1 coefficients)
// of two coefficient vectors mod q.
func karatsubaFull(a, b []uint64, q uint64, m limb32.Meter) []uint64 {
	n := len(a)
	if n <= karatsubaPolyThreshold || n%2 != 0 {
		return schoolbookFull(a, b, q, m)
	}
	h := n / 2
	a0, a1 := a[:h], a[h:]
	b0, b1 := b[:h], b[h:]

	z0 := karatsubaFull(a0, b0, q, m)
	z2 := karatsubaFull(a1, b1, q, m)

	sa := make([]uint64, h)
	sb := make([]uint64, h)
	for i := 0; i < h; i++ {
		sa[i] = addMod64(a0[i], a1[i], q)
		sb[i] = addMod64(b0[i], b1[i], q)
	}
	tick(m, limb32.OpAdd, 2*h)
	zm := karatsubaFull(sa, sb, q, m)
	// z1 = zm - z0 - z2
	for i := range zm {
		v := zm[i]
		if i < len(z0) {
			v = subMod64(v, z0[i], q)
		}
		if i < len(z2) {
			v = subMod64(v, z2[i], q)
		}
		zm[i] = v
	}
	tick(m, limb32.OpSub, 2*len(zm))

	out := make([]uint64, 2*n-1)
	copy(out, z0)
	for i, v := range zm {
		out[h+i] = addMod64(out[h+i], v, q)
	}
	for i, v := range z2 {
		out[2*h+i] = addMod64(out[2*h+i], v, q)
	}
	tick(m, limb32.OpAdd, len(zm)+len(z2))
	return out
}

// schoolbookFull is the base case: plain O(n·m) full product mod q.
func schoolbookFull(a, b []uint64, q uint64, m limb32.Meter) []uint64 {
	out := make([]uint64, len(a)+len(b)-1)
	for i, ai := range a {
		if ai == 0 {
			continue
		}
		for j, bj := range b {
			if bj == 0 {
				continue
			}
			hi, lo := bits.Mul64(ai, bj)
			_, rem := bits.Div64(hi%q, lo, q)
			out[i+j] = addMod64(out[i+j], rem, q)
		}
	}
	tick(m, limb32.OpMul32, len(a)*len(b))
	tick(m, limb32.OpAddC, len(a)*len(b))
	return out
}

func addMod64(a, b, q uint64) uint64 {
	s := a + b
	if s >= q {
		s -= q
	}
	return s
}

func subMod64(a, b, q uint64) uint64 {
	if a >= b {
		return a - b
	}
	return a + q - b
}

func tick(m limb32.Meter, op limb32.Op, n int) {
	if m != nil && n > 0 {
		m.Tick(op, n)
	}
}
