package poly

import (
	"math/big"
	"math/rand"
	"testing"

	"repro/internal/limb32"
)

func mod27(t *testing.T) *Modulus {
	t.Helper()
	m, err := NewModulus(big.NewInt(134217689))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestKaratsubaPolyMatchesSchoolbook(t *testing.T) {
	mod := mod27(t)
	rng := rand.New(rand.NewSource(90))
	for _, n := range []int{4, 8, 16, 32, 64, 128, 256} {
		a, b := randPoly(rng, n, mod), randPoly(rng, n, mod)
		want := NewPoly(n, 1)
		MulNegacyclic(want, a, b, mod, nil)
		got := NewPoly(n, 1)
		MulNegacyclicKaratsuba(got, a, b, mod, nil)
		if !got.Equal(want) {
			t.Fatalf("n=%d: Karatsuba differs from schoolbook", n)
		}
	}
}

func TestKaratsubaPolyEdgeInputs(t *testing.T) {
	mod := mod27(t)
	n := 64
	zero := NewPoly(n, 1)
	one := NewPoly(n, 1)
	one.Coeff(0).Set(limb32.FromUint64(1, 1))
	xn1 := NewPoly(n, 1)
	xn1.Coeff(n - 1).Set(limb32.FromUint64(1, 1))
	x := NewPoly(n, 1)
	x.Coeff(1).Set(limb32.FromUint64(1, 1))

	dst := NewPoly(n, 1)
	MulNegacyclicKaratsuba(dst, zero, one, mod, nil)
	if !dst.IsZero() {
		t.Error("0 * 1 != 0")
	}
	rng := rand.New(rand.NewSource(91))
	a := randPoly(rng, n, mod)
	MulNegacyclicKaratsuba(dst, a, one, mod, nil)
	if !dst.Equal(a) {
		t.Error("a * 1 != a")
	}
	// X^{n-1} · X ≡ −1.
	MulNegacyclicKaratsuba(dst, xn1, x, mod, nil)
	wantC := new(big.Int).Sub(mod.QBig, big.NewInt(1))
	if dst.Coeff(0).Big().Cmp(wantC) != 0 {
		t.Errorf("X^{n-1}·X coeff 0 = %v, want q-1", dst.Coeff(0))
	}
}

func TestKaratsubaPolyRejectsWideModulus(t *testing.T) {
	q, _ := new(big.Int).SetString("18014398509481951", 10)
	mod, err := NewModulus(q)
	if err != nil {
		t.Fatal(err)
	}
	a := NewPoly(16, mod.W)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for W>1 modulus")
		}
	}()
	MulNegacyclicKaratsuba(a.Clone(), a, a, mod, nil)
}

func TestKaratsubaPolyUsesFewerMultiplies(t *testing.T) {
	mod := mod27(t)
	rng := rand.New(rand.NewSource(92))
	n := 256
	a, b := randPoly(rng, n, mod), randPoly(rng, n, mod)
	var mk, ms limb32.Counts
	dst := NewPoly(n, 1)
	MulNegacyclicKaratsuba(dst, a, b, mod, &mk)
	MulNegacyclic(dst, a, b, mod, &ms)
	if mk[limb32.OpMul32] >= ms[limb32.OpMul32] {
		t.Errorf("polynomial Karatsuba multiplies (%d) not below schoolbook (%d)",
			mk[limb32.OpMul32], ms[limb32.OpMul32])
	}
	// O(n^1.585): at n=256 with threshold 16 the ratio should be ~3x.
	if ratio := float64(ms[limb32.OpMul32]) / float64(mk[limb32.OpMul32]); ratio < 2 {
		t.Errorf("Karatsuba multiply saving only %.2fx at n=%d", ratio, n)
	}
}

func BenchmarkMulNegacyclicSchoolbook1024(b *testing.B) {
	q, _ := NewModulus(big.NewInt(134217689))
	rng := rand.New(rand.NewSource(93))
	x, y := randPoly(rng, 1024, q), randPoly(rng, 1024, q)
	dst := NewPoly(1024, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MulNegacyclic(dst, x, y, q, nil)
	}
}

func BenchmarkMulNegacyclicKaratsuba1024(b *testing.B) {
	q, _ := NewModulus(big.NewInt(134217689))
	rng := rand.New(rand.NewSource(94))
	x, y := randPoly(rng, 1024, q), randPoly(rng, 1024, q)
	dst := NewPoly(1024, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MulNegacyclicKaratsuba(dst, x, y, q, nil)
	}
}
