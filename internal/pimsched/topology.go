// Package pimsched is the async multi-DPU execution plane: it shards
// kernel work across a rank×DPU topology, prices host↔DPU transfers
// with an explicit per-rank cost model, and pipelines staging, launch,
// and gathering so one rank's copy-in overlaps another rank's compute.
//
// The package sits between the raw simulator (internal/pim: one
// System, synchronous launches, aggregate transfer pricing) and the HE
// server (internal/hepim): drivers describe their work as a slice of
// Shard values — stage/kernel/gather closures plus declared transfer
// bytes — and Scheduler.Run places them on live DPUs, executes them
// chunk by chunk (a chunk is one rank's shards of one wave), and
// returns a Report with both the pipelined makespan and the no-overlap
// serial time, so the benefit of double-buffering is a measured, not
// asserted, quantity.
//
// Execution remains bit-exact and fault-deterministic: kernels run for
// real over real data, all LaunchOn calls are issued by a single
// dispatcher goroutine in chunk order (the launch sequence keys the
// fault schedule), and only the staging/gathering memcpys run
// concurrently. A dead DPU's shards are re-placed on survivors in
// bounded retry rounds, exactly like the monolithic kernels path.
package pimsched

import "fmt"

// DefaultDPUsPerRank is the UPMEM DIMM geometry: 64 DPUs per rank
// (8 chips × 8 DPUs), the granularity at which the host issues
// parallel transfers and kernel launches.
const DefaultDPUsPerRank = 64

// Topology is the rank×DPU shape of the simulated server. DPU IDs map
// to ranks in row-major order: DPU id lives in rank id/DPUsPerRank.
type Topology struct {
	Ranks       int
	DPUsPerRank int
}

// DefaultTopology is the paper's server rounded to whole ranks:
// 40 ranks × 64 DPUs = 2560 DPUs (the machine's 2524 functional DPUs
// live in 40 ranks with a few dead units).
func DefaultTopology() Topology {
	return Topology{Ranks: 40, DPUsPerRank: DefaultDPUsPerRank}
}

// TopologyFor derives the smallest whole-rank topology holding numDPUs
// at the default rank width. Small systems (≤ one rank) get a single
// rank of exactly numDPUs.
func TopologyFor(numDPUs int) Topology {
	if numDPUs <= 0 {
		numDPUs = 1
	}
	if numDPUs <= DefaultDPUsPerRank {
		return Topology{Ranks: 1, DPUsPerRank: numDPUs}
	}
	ranks := (numDPUs + DefaultDPUsPerRank - 1) / DefaultDPUsPerRank
	return Topology{Ranks: ranks, DPUsPerRank: DefaultDPUsPerRank}
}

// FitTopology derives the largest whole-rank topology that fits
// *inside* an existing system of numDPUs (TopologyFor rounds up and is
// for sizing new systems; FitTopology rounds down and is for
// scheduling over systems whose DPU count is not rank-aligned, like
// the paper machine's 2524 functional DPUs). Leftover DPUs beyond the
// last whole rank are not scheduled.
func FitTopology(numDPUs int) Topology {
	if numDPUs <= 0 {
		numDPUs = 1
	}
	if numDPUs <= DefaultDPUsPerRank {
		return Topology{Ranks: 1, DPUsPerRank: numDPUs}
	}
	return Topology{Ranks: numDPUs / DefaultDPUsPerRank, DPUsPerRank: DefaultDPUsPerRank}
}

// NumDPUs is the total DPU count of the topology.
func (t Topology) NumDPUs() int { return t.Ranks * t.DPUsPerRank }

// RankOf maps a DPU ID to its rank.
func (t Topology) RankOf(dpuID int) int { return dpuID / t.DPUsPerRank }

// Validate reports shape errors.
func (t Topology) Validate() error {
	if t.Ranks <= 0 || t.DPUsPerRank <= 0 {
		return fmt.Errorf("pimsched: topology %d×%d must be positive", t.Ranks, t.DPUsPerRank)
	}
	return nil
}

func (t Topology) String() string {
	return fmt.Sprintf("%d ranks × %d DPUs (%d total)", t.Ranks, t.DPUsPerRank, t.NumDPUs())
}
