package pimsched

import (
	"fmt"

	"repro/internal/pim"
)

// Shard is one placeable unit of work: staged onto whichever DPU the
// scheduler picks, executed by its kernel, gathered back. Stage and
// Gather may be nil for shards without input or output; a nil Kernel
// runs an empty tasklet program. BytesIn/BytesOut declare the host
// transfer volume the closures perform — the transfer cost model
// prices the declared bytes, so drivers must declare exactly what they
// copy.
type Shard struct {
	Stage    func(dpu int) error
	Kernel   pim.KernelFunc
	Gather   func(dpu int) error
	BytesIn  int64
	BytesOut int64
}

// Scheduler owns the async execution plane over one simulated System.
// It is not safe for concurrent Run calls — callers serialize (the
// hepim server already runs ops one at a time per context).
type Scheduler struct {
	Sys     *pim.System
	Topo    Topology
	Xfer    TransferModel
	Overlap bool // pipeline staging/compute/gathering across ranks
}

// New builds a scheduler over sys with the given topology. The
// topology must fit inside the system's DPU array (the scheduler
// addresses DPUs [0, topo.NumDPUs())).
func New(sys *pim.System, topo Topology, overlap bool) (*Scheduler, error) {
	if err := topo.Validate(); err != nil {
		return nil, err
	}
	if topo.NumDPUs() > len(sys.DPUs) {
		return nil, fmt.Errorf("pimsched: topology %v exceeds system's %d DPUs", topo, len(sys.DPUs))
	}
	return &Scheduler{
		Sys:     sys,
		Topo:    topo,
		Xfer:    NewTransferModel(sys.Config, topo),
		Overlap: overlap,
	}, nil
}

// TargetShards picks how many shards to cut for `items` independent
// work items: one per live in-topology DPU, fewer when there are fewer
// items (always ≥ 1; a fully dead system surfaces ErrNoLiveDPUs at
// Run time instead).
func (s *Scheduler) TargetShards(items int) int {
	live := 0
	for _, id := range s.Sys.LiveDPUIDs() {
		if id < s.Topo.NumDPUs() {
			live++
		}
	}
	n := live
	if items < n {
		n = items
	}
	if n < 1 {
		n = 1
	}
	return n
}

// chunk is the launch granularity: one rank's shards of one wave. The
// dispatcher issues one LaunchOn per chunk, so chunks on different
// ranks can overlap staging with compute.
type chunk struct {
	rank   int
	shards []int // indices into the round's shard-index list
	dpus   []int // dpus[j] runs shards[j]
}

// place cuts the pending shards into chunks: shards land on live DPUs
// in ID order (wave after wave when there are fewer live DPUs than
// shards), and each wave splits at rank boundaries.
func (s *Scheduler) place(nPending int) ([]chunk, error) {
	live := make([]int, 0, s.Topo.NumDPUs())
	for _, id := range s.Sys.LiveDPUIDs() {
		if id < s.Topo.NumDPUs() {
			live = append(live, id)
		}
	}
	if len(live) == 0 {
		return nil, pim.ErrNoLiveDPUs
	}
	var chunks []chunk
	for w := 0; w < nPending; w += len(live) {
		waveLen := min(len(live), nPending-w)
		cur := chunk{rank: -1}
		for j := 0; j < waveLen; j++ {
			dpu := live[j]
			r := s.Topo.RankOf(dpu)
			if r != cur.rank {
				if len(cur.shards) > 0 {
					chunks = append(chunks, cur)
				}
				cur = chunk{rank: r}
			}
			cur.shards = append(cur.shards, w+j)
			cur.dpus = append(cur.dpus, dpu)
		}
		if len(cur.shards) > 0 {
			chunks = append(chunks, cur)
		}
	}
	return chunks, nil
}

// timeline is the modeled pipeline state, carried across retry rounds.
// Copy-in transfers serialize on the in-bus, copy-outs on the out-bus,
// and a rank cannot restage until its previous chunk has fully drained
// (single-buffered MRAM: the kernel reads its inputs in place, and the
// gather must not race the next stage).
type timeline struct {
	inBusFree  float64
	outBusFree float64
	rankFree   map[int]float64
	makespan   float64
	serial     float64
}

func newTimeline() *timeline { return &timeline{rankFree: make(map[int]float64)} }

// advance folds one chunk's modeled phases into the pipeline:
//
//	inDone  = max(inBusFree, rankFree[rank]) + tIn
//	compDone = inDone + tK
//	outDone = max(outBusFree, compDone) + tOut
//
// and the no-overlap serial time just sums tIn+tK+tOut.
func (tl *timeline) advance(rank int, tIn, tK, tOut float64) {
	start := tl.inBusFree
	if rf := tl.rankFree[rank]; rf > start {
		start = rf
	}
	inDone := start + tIn
	tl.inBusFree = inDone
	compDone := inDone + tK
	outStart := tl.outBusFree
	if compDone > outStart {
		outStart = compDone
	}
	outDone := outStart + tOut
	tl.outBusFree = outDone
	tl.rankFree[rank] = outDone
	if outDone > tl.makespan {
		tl.makespan = outDone
	}
	tl.serial += tIn + tK + tOut
}

// gatherResult is one chunk's outcome, reported by its gather goroutine.
type gatherResult struct {
	chunk  int
	failed []failedShard // shards needing retry/re-dispatch
	err    error         // non-fault error: aborts the run
}

type failedShard struct {
	shard     int
	permanent bool
}

// Run executes the shards across the topology and returns the merged
// report. Faulted shards are retried (transient) or re-placed on
// survivors (dead DPU) in bounded rounds; any non-fault error aborts.
func (s *Scheduler) Run(shards []Shard) (*Report, error) {
	rep := &Report{Shards: len(shards), Topology: s.Topo, Overlap: s.Overlap}
	for i := range shards {
		rep.BytesIn += shards[i].BytesIn
		rep.BytesOut += shards[i].BytesOut
	}
	tl := newTimeline()
	pending := make([]int, len(shards))
	for i := range pending {
		pending[i] = i
	}
	budget := s.Sys.RetryBudget()
	for round := 0; len(pending) > 0; round++ {
		if round > budget {
			return nil, fmt.Errorf("%w: %d shard(s) still failing after %d round(s)",
				pim.ErrFaultBudget, len(pending), round)
		}
		failed, err := s.runRound(shards, pending, tl, rep)
		if err != nil {
			return nil, err
		}
		var next []int
		for _, f := range failed {
			if f.permanent {
				s.Sys.NoteRedispatch()
				rep.Resharded++
			} else {
				s.Sys.NoteRetry()
				rep.Retried++
			}
			next = append(next, f.shard)
		}
		pending = next
	}
	rep.MakespanSeconds = tl.makespan
	rep.SerialSeconds = tl.serial
	if !s.Overlap {
		rep.MakespanSeconds = tl.serial
	}
	s.priceEnergy(rep)
	return rep, nil
}

// runRound places the pending shards into chunks and executes them as
// a three-stage pipeline: a stager goroutine copies chunk inputs in
// (waiting for the chunk's rank to drain its previous chunk), the
// dispatcher — this goroutine — issues every LaunchOn in chunk order
// so the fault schedule stays deterministic, and per-chunk gather
// goroutines copy results out. Only memcpys run concurrently; kernels
// execute inside the dispatcher's LaunchOn calls.
func (s *Scheduler) runRound(shards []Shard, pending []int, tl *timeline, rep *Report) ([]failedShard, error) {
	chunks, err := s.place(len(pending))
	if err != nil {
		return nil, err
	}
	rep.Chunks += len(chunks)
	rep.Launches += len(chunks)
	if rep.ActiveDPUs == 0 {
		seen := map[int]bool{}
		ranks := map[int]bool{}
		for _, c := range chunks {
			ranks[c.rank] = true
			for _, d := range c.dpus {
				seen[d] = true
			}
		}
		rep.ActiveDPUs = len(seen)
		rep.RanksUsed = len(ranks)
	}

	// prev[c] = index of the chunk before c on the same rank (-1 if none):
	// the stage of chunk c must wait for prev[c]'s gather (single-buffered
	// MRAM), mirroring the timeline's rankFree dependency.
	prev := make([]int, len(chunks))
	last := map[int]int{}
	for c := range chunks {
		prev[c] = -1
		if p, ok := last[chunks[c].rank]; ok {
			prev[c] = p
		}
		last[chunks[c].rank] = c
	}

	stageErr := make([]chan error, len(chunks))
	gatherDone := make([]chan struct{}, len(chunks))
	for c := range chunks {
		stageErr[c] = make(chan error, 1)
		gatherDone[c] = make(chan struct{})
	}
	results := make(chan gatherResult, len(chunks))

	stage := func(c int) {
		if p := prev[c]; p >= 0 {
			<-gatherDone[p]
		}
		var err error
		for j, si := range chunks[c].shards {
			sh := &shards[pending[si]]
			if sh.Stage == nil {
				continue
			}
			if e := sh.Stage(chunks[c].dpus[j]); e != nil {
				err = e
				break
			}
		}
		stageErr[c] <- err
	}
	gather := func(c int, errs []error) {
		res := gatherResult{chunk: c}
		for j, si := range chunks[c].shards {
			switch fe := errs[j].(type) {
			case nil:
				sh := &shards[pending[si]]
				if sh.Gather != nil {
					if e := sh.Gather(chunks[c].dpus[j]); e != nil && res.err == nil {
						res.err = e
					}
				}
			case *pim.FaultError:
				res.failed = append(res.failed, failedShard{shard: pending[si], permanent: fe.Permanent})
			default:
				if res.err == nil {
					res.err = errs[j]
				}
			}
		}
		close(gatherDone[c])
		results <- res
	}

	launched := 0
	var runErr error
	go stage(0)
	for c := range chunks {
		if e := <-stageErr[c]; e != nil {
			runErr = e
			break
		}
		if c+1 < len(chunks) {
			go stage(c + 1)
		}
		byDPU := make(map[int]pim.KernelFunc, len(chunks[c].dpus))
		for j, d := range chunks[c].dpus {
			byDPU[d] = shards[pending[chunks[c].shards[j]]].Kernel
		}
		crep, errs := s.Sys.LaunchOn(chunks[c].dpus, func(dpuID int) pim.KernelFunc {
			if k := byDPU[dpuID]; k != nil {
				return k
			}
			return func(*pim.TaskletCtx) error { return nil }
		})
		launched++
		s.accountChunk(rep, tl, &chunks[c], crep, errs, shards, pending)
		go gather(c, errs)
	}

	// Drain every launched chunk's gather before returning (on abort the
	// unlaunched chunks never produce results, and any in-flight stage
	// goroutine only blocks on gatherDone channels of launched chunks).
	var failed []failedShard
	for i := 0; i < launched; i++ {
		res := <-results
		if res.err != nil && runErr == nil {
			runErr = res.err
		}
		failed = append(failed, res.failed...)
	}
	if runErr != nil {
		return nil, runErr
	}
	return failed, nil
}

// accountChunk folds one chunk's launch into the report and the
// timeline. tK comes from the chunk's critical-path cycles (the max
// over its DPUs, straggler inflation included) plus the per-launch
// overhead; tIn/tOut price the chunk's largest per-DPU declared
// transfer. Faulted slots still charge their copy-in — the bytes
// moved before the fault are not refunded.
func (s *Scheduler) accountChunk(rep *Report, tl *timeline, c *chunk, crep *pim.Report, errs []error, shards []Shard, pending []int) {
	var maxIn, maxOut int64
	for j, si := range c.shards {
		sh := &shards[pending[si]]
		if sh.BytesIn > maxIn {
			maxIn = sh.BytesIn
		}
		if errs[j] == nil && sh.BytesOut > maxOut {
			maxOut = sh.BytesOut
		}
	}
	tIn := s.Xfer.InSeconds(maxIn)
	tK := float64(crep.KernelCycles)/s.Sys.Config.ClockHz + s.Sys.Config.LaunchOverheadSec
	tOut := s.Xfer.OutSeconds(maxOut)
	tl.advance(c.rank, tIn, tK, tOut)

	rep.KernelCycles += crep.KernelCycles
	rep.KernelSeconds += tK
	rep.CopyInSeconds += tIn
	rep.CopyOutSeconds += tOut
	rep.TotalInstr += crep.TotalInstr
	rep.TotalDMACycles += crep.TotalDMACycles
	rep.Counts.Add(&crep.Counts)
}

// Retry rounds re-stage their inputs, so re-run shards charge their
// copy-in again; declared BytesIn/BytesOut in the report stay the
// logical volume of the workload (one pass), matching how the
// monolithic drivers account transfers.
func (s *Scheduler) priceEnergy(rep *Report) {
	em := pim.DefaultEnergyModel()
	krep := &pim.Report{
		TotalInstr:     rep.TotalInstr,
		TotalDMACycles: rep.TotalDMACycles,
		KernelCycles:   rep.KernelCycles,
		ActiveDPUs:     rep.ActiveDPUs,
	}
	rep.EnergyKernelJoules = em.KernelEnergyJoules(krep, &s.Sys.Config)
	rep.EnergyTransferJoules = em.HostTransferEnergyJoules(rep.BytesIn + rep.BytesOut)
}
