package pimsched

import (
	"testing"

	"repro/internal/faultinject"
	"repro/internal/limb32"
	"repro/internal/pim"
)

const testQ = 0x7fffffff // 2^31 - 1, a single-limb modulus

func testSystem(t *testing.T, topo Topology) *pim.System {
	t.Helper()
	cfg := pim.DefaultConfig()
	cfg.NumDPUs = topo.NumDPUs()
	cfg.Tasklets = 4
	sys, err := pim.NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// addKernel is a minimal single-limb vector-add tasklet program over a
// shard laid out as [a | b | out] in MRAM, coeffs words each.
func addKernel(coeffs int) pim.KernelFunc {
	return func(ctx *pim.TaskletCtx) error {
		s, e := pim.Partition(coeffs, ctx.NumTasklets, ctx.TaskletID)
		if s == e {
			return nil
		}
		n := e - s
		a := make([]uint32, n)
		b := make([]uint32, n)
		out := make([]uint32, n)
		ctx.MRAMRead(s, a)
		ctx.MRAMRead(coeffs+s, b)
		q := limb32.Nat{testQ}
		for i := 0; i < n; i++ {
			limb32.AddMod(out[i:i+1], a[i:i+1], b[i:i+1], q, ctx)
		}
		ctx.MRAMWrite(2*coeffs+s, out)
		return nil
	}
}

// vectorAddShards cuts a⊕b into nShards pimsched shards writing into out.
func vectorAddShards(sys *pim.System, a, b, out []uint32, nShards int) []Shard {
	shards := make([]Shard, nShards)
	for i := 0; i < nShards; i++ {
		s, e := pim.Partition(len(a), nShards, i)
		s, e, cw := s, e, e-s
		shards[i] = Shard{
			Stage: func(d int) error {
				if cw == 0 {
					return nil
				}
				if err := sys.CopyToDPU(d, 0, a[s:e]); err != nil {
					return err
				}
				if err := sys.CopyToDPU(d, cw, b[s:e]); err != nil {
					return err
				}
				return sys.DPUs[d].EnsureMRAM(3 * cw)
			},
			Kernel: addKernel(cw),
			Gather: func(d int) error {
				if cw == 0 {
					return nil
				}
				return sys.CopyFromDPU(d, 2*cw, out[s:e])
			},
			BytesIn:  int64(8 * cw),
			BytesOut: int64(4 * cw),
		}
	}
	return shards
}

func testVectors(n int) (a, b, want []uint32) {
	a = make([]uint32, n)
	b = make([]uint32, n)
	want = make([]uint32, n)
	for i := range a {
		a[i] = uint32(i*2654435761+17) % testQ
		b[i] = uint32(i*40503+99991) % testQ
		want[i] = uint32((uint64(a[i]) + uint64(b[i])) % testQ)
	}
	return
}

func runAdd(t *testing.T, sys *pim.System, topo Topology, overlap bool, nCoeffs, nShards int, want []uint32) *Report {
	t.Helper()
	a, b, _ := testVectors(nCoeffs)
	out := make([]uint32, nCoeffs)
	sched, err := New(sys, topo, overlap)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sched.Run(vectorAddShards(sys, a, b, out, nShards))
	if err != nil {
		t.Fatal(err)
	}
	for i := range out {
		if out[i] != want[i] {
			t.Fatalf("out[%d] = %d, want %d", i, out[i], want[i])
		}
	}
	return rep
}

func TestVectorAddBitIdentical(t *testing.T) {
	topo := Topology{Ranks: 4, DPUsPerRank: 8}
	_, _, want := testVectors(1000)
	// More shards than DPUs: exercises multiple waves through the pipeline.
	rep := runAdd(t, testSystem(t, topo), topo, true, 1000, 48, want)
	if rep.Shards != 48 || rep.Chunks < 4 {
		t.Errorf("report: %d shards in %d chunks, want 48 shards across ≥4 chunks", rep.Shards, rep.Chunks)
	}
	if rep.RanksUsed != 4 || rep.ActiveDPUs != 32 {
		t.Errorf("RanksUsed=%d ActiveDPUs=%d, want 4 and 32", rep.RanksUsed, rep.ActiveDPUs)
	}
	if rep.BytesIn != 8*1000 || rep.BytesOut != 4*1000 {
		t.Errorf("bytes = (%d, %d), want (8000, 4000)", rep.BytesIn, rep.BytesOut)
	}
	if rep.MakespanSeconds <= 0 || rep.KernelCycles <= 0 || rep.EnergyKernelJoules <= 0 {
		t.Errorf("degenerate report: %+v", rep)
	}
}

func TestOverlapBeatsSerialOnMultiRank(t *testing.T) {
	topo := Topology{Ranks: 4, DPUsPerRank: 8}
	_, _, want := testVectors(4096)

	on := runAdd(t, testSystem(t, topo), topo, true, 4096, 32, want)
	off := runAdd(t, testSystem(t, topo), topo, false, 4096, 32, want)

	if on.SerialSeconds != off.SerialSeconds {
		t.Errorf("serial time differs across overlap modes: %g vs %g", on.SerialSeconds, off.SerialSeconds)
	}
	if off.MakespanSeconds != off.SerialSeconds {
		t.Errorf("overlap-off makespan %g != serial %g", off.MakespanSeconds, off.SerialSeconds)
	}
	if !(on.MakespanSeconds < on.SerialSeconds) {
		t.Errorf("overlap-on makespan %g not below serial %g on a 4-rank topology",
			on.MakespanSeconds, on.SerialSeconds)
	}
}

func TestSingleRankMakespanEqualsSerial(t *testing.T) {
	topo := Topology{Ranks: 1, DPUsPerRank: 8}
	_, _, want := testVectors(512)
	// Two waves on the same rank: nothing to overlap with, so the
	// pipeline collapses to the serial sum.
	rep := runAdd(t, testSystem(t, topo), topo, true, 512, 16, want)
	if diff := rep.MakespanSeconds - rep.SerialSeconds; diff < -1e-15 || diff > 1e-15 {
		t.Errorf("single-rank makespan %g != serial %g", rep.MakespanSeconds, rep.SerialSeconds)
	}
}

// deadSeed finds a seed whose dead-DPU schedule actually fires on this
// topology (the injector is a pure function of seed/site/key, so the
// search is deterministic).
func deadSeed(t *testing.T, topo Topology, rate float64, nCoeffs, nShards int) uint64 {
	t.Helper()
	for seed := uint64(1); seed < 64; seed++ {
		sys := testSystem(t, topo)
		sys.SetFaultInjector(faultinject.New(seed).SetRate(pim.SiteDPUDead, rate))
		a, b, _ := testVectors(nCoeffs)
		out := make([]uint32, nCoeffs)
		sched, err := New(sys, topo, true)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := sched.Run(vectorAddShards(sys, a, b, out, nShards))
		if err == nil && rep.Resharded > 0 {
			return seed
		}
	}
	t.Fatal("no seed in 1..63 produced a dead-DPU re-dispatch")
	return 0
}

func TestDeadDPUReshardsBitIdentically(t *testing.T) {
	topo := Topology{Ranks: 4, DPUsPerRank: 8}
	const nCoeffs, nShards = 2000, 32
	_, _, want := testVectors(nCoeffs)
	seed := deadSeed(t, topo, 0.08, nCoeffs, nShards)

	run := func() ([]uint32, *Report, pim.FaultStats) {
		sys := testSystem(t, topo)
		sys.SetFaultInjector(faultinject.New(seed).SetRate(pim.SiteDPUDead, 0.08))
		a, b, _ := testVectors(nCoeffs)
		out := make([]uint32, nCoeffs)
		sched, err := New(sys, topo, true)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := sched.Run(vectorAddShards(sys, a, b, out, nShards))
		if err != nil {
			t.Fatal(err)
		}
		return out, rep, sys.FaultStats()
	}

	out1, rep1, st1 := run()
	out2, rep2, st2 := run()

	if rep1.Resharded == 0 {
		t.Fatal("seed stopped producing re-dispatches")
	}
	for i := range out1 {
		if out1[i] != want[i] {
			t.Fatalf("faulted run diverged from oracle at %d: %d != %d", i, out1[i], want[i])
		}
		if out1[i] != out2[i] {
			t.Fatalf("reruns diverged at %d", i)
		}
	}
	if *rep1 != *rep2 {
		t.Errorf("reports differ across identical reruns:\n%+v\n%+v", rep1, rep2)
	}
	if st1 != st2 {
		t.Errorf("fault stats differ across identical reruns: %+v vs %+v", st1, st2)
	}
}

func TestStragglerStretchesMakespanNotResults(t *testing.T) {
	topo := Topology{Ranks: 2, DPUsPerRank: 8}
	const nCoeffs, nShards = 1024, 16
	_, _, want := testVectors(nCoeffs)

	clean := runAdd(t, testSystem(t, topo), topo, true, nCoeffs, nShards, want)

	sys := testSystem(t, topo)
	sys.SetFaultInjector(faultinject.New(7).SetRate(pim.SiteDPUStraggler, 1))
	slow := runAdd(t, sys, topo, true, nCoeffs, nShards, want) // oracle check inside
	if !(slow.MakespanSeconds > clean.MakespanSeconds) {
		t.Errorf("straggling makespan %g not above clean %g", slow.MakespanSeconds, clean.MakespanSeconds)
	}
	if slow.KernelCycles <= clean.KernelCycles {
		t.Errorf("straggling cycles %d not above clean %d", slow.KernelCycles, clean.KernelCycles)
	}
}

func TestTransientFaultBudgetExhausted(t *testing.T) {
	topo := Topology{Ranks: 1, DPUsPerRank: 4}
	sys := testSystem(t, topo)
	sys.SetFaultInjector(faultinject.New(1).SetRate(pim.SiteDPUTransient, 1))
	a, b, _ := testVectors(64)
	out := make([]uint32, 64)
	sched, err := New(sys, topo, true)
	if err != nil {
		t.Fatal(err)
	}
	_, err = sched.Run(vectorAddShards(sys, a, b, out, 4))
	if !pim.IsFault(err) {
		t.Fatalf("expected fault-budget error, got %v", err)
	}
}

func TestTopologyHelpers(t *testing.T) {
	if got := DefaultTopology().NumDPUs(); got != 2560 {
		t.Errorf("default topology has %d DPUs, want 2560", got)
	}
	cases := []struct{ n, ranks, per int }{
		{1, 1, 1}, {17, 1, 17}, {64, 1, 64}, {65, 2, 64}, {2048, 32, 64}, {2524, 40, 64},
	}
	for _, c := range cases {
		topo := TopologyFor(c.n)
		if topo.Ranks != c.ranks || topo.DPUsPerRank != c.per {
			t.Errorf("TopologyFor(%d) = %v, want %d×%d", c.n, topo, c.ranks, c.per)
		}
		if topo.NumDPUs() < c.n {
			t.Errorf("TopologyFor(%d) holds only %d DPUs", c.n, topo.NumDPUs())
		}
	}
	if (Topology{Ranks: 0, DPUsPerRank: 4}).Validate() == nil {
		t.Error("zero-rank topology validated")
	}
}
