package pimsched

import "repro/internal/limb32"

// Report is the outcome of one Scheduler.Run: the sharded
// cycle/transfer/energy breakdown of an async multi-DPU execution.
//
// Two end-to-end times are always computed from the same per-chunk
// phases. SerialSeconds is the no-overlap sum Σ(tIn+tK+tOut) over all
// chunks; MakespanSeconds is the pipelined completion time where
// copy-ins serialize on the in-bus, copy-outs on the out-bus, compute
// runs rank-parallel, and a rank restages only after draining its
// previous chunk. With Overlap disabled MakespanSeconds equals
// SerialSeconds, so overlap's benefit is the ratio of the two fields.
type Report struct {
	Topology Topology
	Overlap  bool

	Shards     int // placeable work units in the run
	Chunks     int // rank-granularity launches (incl. retry rounds)
	Launches   int // LaunchOn calls issued (== Chunks)
	ActiveDPUs int // distinct DPUs used in the first round
	RanksUsed  int // distinct ranks used in the first round

	// KernelCycles sums each chunk's critical-path cycles (max over its
	// DPUs, straggler inflation included): the compute-serial total.
	KernelCycles  int64
	KernelSeconds float64 // Σ per-chunk kernel time incl. launch overhead
	// CopyInSeconds/CopyOutSeconds sum the per-chunk rank transfer
	// times (the serial transfer components of SerialSeconds).
	CopyInSeconds  float64
	CopyOutSeconds float64
	BytesIn        int64 // declared host→DPU bytes (one logical pass)
	BytesOut       int64 // declared DPU→host bytes

	MakespanSeconds float64 // pipelined end-to-end time
	SerialSeconds   float64 // no-overlap end-to-end time

	EnergyKernelJoules   float64 // DPU dynamic + DMA + static energy
	EnergyTransferJoules float64 // host↔DPU interface energy

	Retried   int // shard re-launches after transient faults
	Resharded int // shards re-placed off dead DPUs onto survivors

	TotalInstr     int64
	TotalDMACycles int64
	Counts         limb32.Counts
}

// TotalSeconds is the modeled end-to-end time of the run: the
// pipelined makespan (or the serial sum when overlap is off).
func (r *Report) TotalSeconds() float64 { return r.MakespanSeconds }

// Accumulate folds another run's report into r (for op-level
// aggregation in the HE server): counts and serial components add;
// makespans add too, because successive Runs execute back to back.
func (r *Report) Accumulate(o *Report) {
	r.Shards += o.Shards
	r.Chunks += o.Chunks
	r.Launches += o.Launches
	if o.ActiveDPUs > r.ActiveDPUs {
		r.ActiveDPUs = o.ActiveDPUs
	}
	if o.RanksUsed > r.RanksUsed {
		r.RanksUsed = o.RanksUsed
	}
	r.KernelCycles += o.KernelCycles
	r.KernelSeconds += o.KernelSeconds
	r.CopyInSeconds += o.CopyInSeconds
	r.CopyOutSeconds += o.CopyOutSeconds
	r.BytesIn += o.BytesIn
	r.BytesOut += o.BytesOut
	r.MakespanSeconds += o.MakespanSeconds
	r.SerialSeconds += o.SerialSeconds
	r.EnergyKernelJoules += o.EnergyKernelJoules
	r.EnergyTransferJoules += o.EnergyTransferJoules
	r.Retried += o.Retried
	r.Resharded += o.Resharded
	r.TotalInstr += o.TotalInstr
	r.TotalDMACycles += o.TotalDMACycles
	r.Counts.Add(&o.Counts)
}
