package pimsched

import "repro/internal/pim"

// TransferModel prices host↔DPU transfers at rank granularity.
//
// The host bus serves one rank at a time (transfers to different ranks
// serialize), but within a rank all DPUs receive their slices in
// parallel, each at a per-DPU share of the bus bandwidth. A rank's
// transfer time is therefore bounded by its *largest* per-DPU slice:
//
//	rankSeconds = maxPerDPUBytes / (aggregateBW / DPUsPerRank)
//
// For evenly cut shards this collapses to rankBytes/aggregateBW — the
// same total the flat model charges — while uneven cuts leave transfer
// lanes idle and show up as longer rank transfers. Copy-in (host→DPU)
// and copy-out (DPU→host) use the independently measured directions of
// pim.SystemConfig, and are treated as independent channels: a gather
// on the out-path can overlap a stage on the in-path.
type TransferModel struct {
	PerDPUInBytesPerSec  float64
	PerDPUOutBytesPerSec float64
}

// NewTransferModel derives the per-DPU transfer rates from the
// system's aggregate bus bandwidths and the topology's rank width.
func NewTransferModel(cfg pim.SystemConfig, topo Topology) TransferModel {
	w := float64(topo.DPUsPerRank)
	return TransferModel{
		PerDPUInBytesPerSec:  cfg.HostToDPUBytesPerSec / w,
		PerDPUOutBytesPerSec: cfg.DPUToHostBytesPerSec / w,
	}
}

// InSeconds prices one rank's copy-in: the largest per-DPU slice at
// the per-DPU rate.
func (m TransferModel) InSeconds(maxPerDPUBytes int64) float64 {
	if maxPerDPUBytes <= 0 {
		return 0
	}
	return float64(maxPerDPUBytes) / m.PerDPUInBytesPerSec
}

// OutSeconds prices one rank's copy-out.
func (m TransferModel) OutSeconds(maxPerDPUBytes int64) float64 {
	if maxPerDPUBytes <= 0 {
		return 0
	}
	return float64(maxPerDPUBytes) / m.PerDPUOutBytesPerSec
}
