package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/bfv"
	"repro/internal/sampling"
)

// DCRT perf tracking: measures the repo's own host-side EvalMul across
// backends and chain depths and emits BENCH_dcrt.json, so the
// performance trajectory of the evaluation layer is recorded from the PR
// that introduced it onward.
//
// v2 of the schema adds a depth axis and splits the double-CRT backend
// into its two rescale paths: "dcrt-rns" (RNS-native scale-and-round,
// NTT-resident ciphertexts — the default) and "dcrt-bigint" (the PR-1
// per-coefficient big.Int recombination round trip, kept behind
// Evaluator.SetBigIntRescale as the tracked baseline).

// DCRTPoint is one measured backend × ring-degree × depth combination.
// NsPerOp is the time of one full depth-long chain of relinearized
// multiplications (depth 1 ≡ one EvalMul).
type DCRTPoint struct {
	N           int     `json:"n"`
	QBits       int     `json:"q_bits"`
	Backend     string  `json:"backend"` // "schoolbook" | "dcrt-bigint" | "dcrt-rns"
	Depth       int     `json:"depth"`
	Iters       int     `json:"iters"`
	NsPerOp     int64   `json:"ns_per_op"`
	SpeedupX    float64 `json:"speedup_vs_schoolbook,omitempty"` // dcrt rows, depth 1
	SpeedupBigX float64 `json:"speedup_vs_bigint,omitempty"`     // dcrt-rns rows
}

// DCRTReport is the BENCH_dcrt.json schema.
type DCRTReport struct {
	Schema      string      `json:"schema"`
	GeneratedAt string      `json:"generated_at"`
	GoMaxProcs  int         `json:"gomaxprocs"`
	Op          string      `json:"op"`
	Points      []DCRTPoint `json:"points"`
}

// measureEvalMul times one depth-long chain of relinearized homomorphic
// multiplications. Setup (keygen, encryption, cache warming) is
// excluded. The schoolbook backend runs a single iteration — it is
// seconds per op by design.
func measureEvalMul(n, depth int, backend string) (DCRTPoint, error) {
	params := bfv.ParamsSec54AtDegree(n)
	src := sampling.NewSourceFromUint64(uint64(n))
	kg := bfv.NewKeyGenerator(params, src)
	sk, pk := kg.GenKeyPair()
	rlk := kg.GenRelinKey(sk)
	_ = sk
	enc := bfv.NewEncryptor(params, pk, src)
	ct0, err := enc.EncryptValue(11)
	if err != nil {
		return DCRTPoint{}, err
	}
	ct1, err := enc.EncryptValue(13)
	if err != nil {
		return DCRTPoint{}, err
	}
	var ev *bfv.Evaluator
	switch backend {
	case "schoolbook":
		ev = bfv.NewSchoolbookEvaluator(params, rlk)
	case "dcrt-bigint":
		ev = bfv.NewEvaluator(params, rlk)
		ev.SetBigIntRescale(true)
	case "dcrt-rns":
		ev = bfv.NewEvaluator(params, rlk)
	default:
		return DCRTPoint{}, fmt.Errorf("bench: unknown backend %q", backend)
	}
	chain := func() error {
		ct := ct0
		for d := 0; d < depth; d++ {
			next, err := ev.Mul(ct, ct1)
			if err != nil {
				return err
			}
			ct = next
		}
		return nil
	}
	if err := chain(); err != nil { // warm caches
		return DCRTPoint{}, err
	}
	iters := 0
	start := time.Now()
	for {
		if err := chain(); err != nil {
			return DCRTPoint{}, err
		}
		iters++
		if backend == "schoolbook" || (time.Since(start) > 300*time.Millisecond && iters >= 3) || iters >= 50 {
			break
		}
	}
	return DCRTPoint{
		N:       n,
		QBits:   params.Q.Bits(),
		Backend: backend,
		Depth:   depth,
		Iters:   iters,
		NsPerOp: time.Since(start).Nanoseconds() / int64(iters),
	}, nil
}

// MeasureDCRT measures EvalMul at depth 1 on all three backends for the
// given ring degrees, plus chained depth-3 and depth-5 runs of the two
// double-CRT rescale paths at the largest degree, and returns the
// tracking figure plus the JSON report.
func MeasureDCRT(degrees []int) (*Figure, *DCRTReport, error) {
	fig := &Figure{
		ID:     "dcrt",
		Title:  "Host EvalMul: RNS-native vs big.Int rescale vs schoolbook, 54-bit q",
		XLabel: "Ring degree / chain depth",
		Unit:   "ms",
		PaperNote: "§4.1: SEAL's RNS+NTT evaluation is the optimization the paper's " +
			"PIM kernels defer; this repo's host path now has it, rescale included",
	}
	rep := &DCRTReport{
		Schema:      "repro/dcrt-evalmul/v2",
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		Op:          "EvalMul chain (tensor + relinearize per level); ns_per_op is per chain",
	}
	for _, n := range degrees {
		sb, err := measureEvalMul(n, 1, "schoolbook")
		if err != nil {
			return nil, nil, err
		}
		bi, err := measureEvalMul(n, 1, "dcrt-bigint")
		if err != nil {
			return nil, nil, err
		}
		rn, err := measureEvalMul(n, 1, "dcrt-rns")
		if err != nil {
			return nil, nil, err
		}
		bi.SpeedupX = float64(sb.NsPerOp) / float64(bi.NsPerOp)
		rn.SpeedupX = float64(sb.NsPerOp) / float64(rn.NsPerOp)
		rn.SpeedupBigX = float64(bi.NsPerOp) / float64(rn.NsPerOp)
		rep.Points = append(rep.Points, sb, bi, rn)
		fig.Rows = append(fig.Rows, Row{
			Label: fmt.Sprintf("n=%d depth=1", n),
			Seconds: map[string]float64{
				"Schoolbook":  float64(sb.NsPerOp) / 1e9,
				"DCRT-bigint": float64(bi.NsPerOp) / 1e9,
				"DCRT-RNS":    float64(rn.NsPerOp) / 1e9,
			},
			Annotation: fmt.Sprintf("%.0fx vs schoolbook, %.1fx vs bigint", rn.SpeedupX, rn.SpeedupBigX),
		})
	}
	if len(degrees) == 0 {
		return fig, rep, nil
	}
	nMax := degrees[len(degrees)-1]
	for _, depth := range []int{3, 5} {
		bi, err := measureEvalMul(nMax, depth, "dcrt-bigint")
		if err != nil {
			return nil, nil, err
		}
		rn, err := measureEvalMul(nMax, depth, "dcrt-rns")
		if err != nil {
			return nil, nil, err
		}
		rn.SpeedupBigX = float64(bi.NsPerOp) / float64(rn.NsPerOp)
		rep.Points = append(rep.Points, bi, rn)
		fig.Rows = append(fig.Rows, Row{
			Label: fmt.Sprintf("n=%d depth=%d", nMax, depth),
			Seconds: map[string]float64{
				"DCRT-bigint": float64(bi.NsPerOp) / 1e9,
				"DCRT-RNS":    float64(rn.NsPerOp) / 1e9,
			},
			Annotation: fmt.Sprintf("%.1fx vs bigint", rn.SpeedupBigX),
		})
	}
	return fig, rep, nil
}

// WriteDCRTJSON writes the report to path (the conventional name is
// BENCH_dcrt.json at the repo root).
func WriteDCRTJSON(path string, rep *DCRTReport) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
