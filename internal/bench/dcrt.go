package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/bfv"
	"repro/internal/sampling"
)

// DCRT perf tracking: measures the repo's own host-side EvalMul on both
// backends (double-CRT vs the retired schoolbook hot path) and emits
// BENCH_dcrt.json, so the performance trajectory of the evaluation layer
// is recorded from the PR that introduced it onward.

// DCRTPoint is one measured backend × ring-degree combination.
type DCRTPoint struct {
	N        int     `json:"n"`
	QBits    int     `json:"q_bits"`
	Backend  string  `json:"backend"` // "schoolbook" | "dcrt"
	Iters    int     `json:"iters"`
	NsPerOp  int64   `json:"ns_per_op"`
	SpeedupX float64 `json:"speedup_vs_schoolbook,omitempty"` // dcrt rows
}

// DCRTReport is the BENCH_dcrt.json schema.
type DCRTReport struct {
	Schema      string      `json:"schema"`
	GeneratedAt string      `json:"generated_at"`
	GoMaxProcs  int         `json:"gomaxprocs"`
	Op          string      `json:"op"`
	Points      []DCRTPoint `json:"points"`
}

// measureEvalMul times one relinearized homomorphic multiplication.
// Setup (keygen, encryption, cache warming) is excluded. The schoolbook
// point runs a single iteration — it is seconds per op by design.
func measureEvalMul(n int, schoolbook bool) (DCRTPoint, error) {
	params := bfv.ParamsSec54AtDegree(n)
	src := sampling.NewSourceFromUint64(uint64(n))
	kg := bfv.NewKeyGenerator(params, src)
	sk, pk := kg.GenKeyPair()
	rlk := kg.GenRelinKey(sk)
	_ = sk
	enc := bfv.NewEncryptor(params, pk, src)
	ct0, err := enc.EncryptValue(11)
	if err != nil {
		return DCRTPoint{}, err
	}
	ct1, err := enc.EncryptValue(13)
	if err != nil {
		return DCRTPoint{}, err
	}
	ev := bfv.NewEvaluator(params, rlk)
	backend := "dcrt"
	if schoolbook {
		ev = bfv.NewSchoolbookEvaluator(params, rlk)
		backend = "schoolbook"
	}
	if _, err := ev.Mul(ct0, ct1); err != nil { // warm caches
		return DCRTPoint{}, err
	}
	iters := 0
	start := time.Now()
	for {
		if _, err := ev.Mul(ct0, ct1); err != nil {
			return DCRTPoint{}, err
		}
		iters++
		if schoolbook || (time.Since(start) > 300*time.Millisecond && iters >= 3) || iters >= 50 {
			break
		}
	}
	return DCRTPoint{
		N:       n,
		QBits:   params.Q.Bits(),
		Backend: backend,
		Iters:   iters,
		NsPerOp: time.Since(start).Nanoseconds() / int64(iters),
	}, nil
}

// MeasureDCRT measures EvalMul on both backends at the given ring
// degrees and returns the tracking figure plus the JSON report.
func MeasureDCRT(degrees []int) (*Figure, *DCRTReport, error) {
	fig := &Figure{
		ID:     "dcrt",
		Title:  "Host EvalMul: double-CRT (RNS+NTT) vs schoolbook, 54-bit q",
		XLabel: "Ring degree",
		Unit:   "ms",
		PaperNote: "§4.1: SEAL's RNS+NTT evaluation is the optimization the paper's " +
			"PIM kernels defer; this repo's host path now has it",
	}
	rep := &DCRTReport{
		Schema:      "repro/dcrt-evalmul/v1",
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		Op:          "EvalMul (tensor + relinearize)",
	}
	for _, n := range degrees {
		sb, err := measureEvalMul(n, true)
		if err != nil {
			return nil, nil, err
		}
		dc, err := measureEvalMul(n, false)
		if err != nil {
			return nil, nil, err
		}
		dc.SpeedupX = float64(sb.NsPerOp) / float64(dc.NsPerOp)
		rep.Points = append(rep.Points, sb, dc)
		fig.Rows = append(fig.Rows, Row{
			Label: fmt.Sprintf("n=%d", n),
			Seconds: map[string]float64{
				"Schoolbook": float64(sb.NsPerOp) / 1e9,
				"DCRT":       float64(dc.NsPerOp) / 1e9,
			},
			Annotation: fmt.Sprintf("%.0fx", dc.SpeedupX),
		})
	}
	return fig, rep, nil
}

// WriteDCRTJSON writes the report to path (the conventional name is
// BENCH_dcrt.json at the repo root).
func WriteDCRTJSON(path string, rep *DCRTReport) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
