package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/hebfv"
	"repro/internal/bfv"
	"repro/internal/cpufeat"
	"repro/internal/nt"
	"repro/internal/ntt"
	"repro/internal/sampling"
)

// DCRT perf tracking: measures the repo's own host-side EvalMul across
// backends and chain depths and emits BENCH_dcrt.json, so the
// performance trajectory of the evaluation layer is recorded from the PR
// that introduced it onward.
//
// v2 of the schema added a depth axis and split the double-CRT backend
// into its two rescale paths; v3 added the batched-rotation and
// decryption axes. v4 routes every evaluator through the public hebfv
// backend registry — backends are named by their registry names
// ("schoolbook", "dcrt-legacy", "dcrt-native"; the labels "dcrt-bigint"
// and "dcrt-rns" of v2/v3 are "dcrt-legacy" and "dcrt-native" now) and
// selected with hepim-bench's -backend flag — and adds the op "rotate"
// backend "galois-hoisted-ntt": RotateMany with NTT-resident outputs,
// the per-output base conversions deferred.
//
// v5 adds two axes for the fused lazy-reduction kernels: op "kernel"
// rows time the raw transform and convolution primitives at the 60-bit
// basis prime (backends "ntt-forward", "ntt-forward-lazy",
// "ntt-inverse", "ntt-inverse-lazy", "convolve"), and op "" backend
// "dcrt-native-deferred" rows time the depth-k Mul chain through the
// NTT-resident ProductNTT pipeline (every level consumes the previous
// deferred handle; only the final result materializes), with
// speedup_vs_serial relating each deferred row to its materialized
// dcrt-native pair.
//
// v6 adds the "dispatch" section: the host's detected SIMD features,
// the live vector mode (HEPIM_VECTOR), and a per-kernel table of the
// dispatch decision with measured scalar vs vector ns/op — so a
// regression in either tier, or a host silently falling back to
// scalar, is visible in the tracked JSON rather than only in wall
// times.

// DCRTPoint is one measured backend × ring-degree × depth combination.
// NsPerOp is the time of one full depth-long chain of relinearized
// multiplications (depth 1 ≡ one EvalMul) for evalmul rows, of all k
// rotations for rotate/rotate-sum rows, and of one decryption for
// decrypt rows.
type DCRTPoint struct {
	N           int     `json:"n"`
	QBits       int     `json:"q_bits"`
	Backend     string  `json:"backend"`      // evalmul: registry name or "dcrt-native-deferred"; rotate: "galois-serial"|"galois-hoisted"|"galois-hoisted-ntt"; decrypt: "decrypt-bigint"|"decrypt-rns"; kernel: primitive name
	Op          string  `json:"op,omitempty"` // "" (evalmul) | "rotate" | "rotate-sum" | "decrypt" | "kernel"
	Depth       int     `json:"depth,omitempty"`
	Rotations   int     `json:"rotations,omitempty"` // rotate rows: Galois-element count k
	Iters       int     `json:"iters"`
	NsPerOp     int64   `json:"ns_per_op"`
	SpeedupX    float64 `json:"speedup_vs_schoolbook,omitempty"` // dcrt rows, depth 1
	SpeedupBigX float64 `json:"speedup_vs_legacy,omitempty"`     // dcrt-native rows
	SpeedupSerX float64 `json:"speedup_vs_serial,omitempty"`     // hoisted/rns rows vs their serial/bigint pair
}

// KernelDispatchRow is one kernel's live dispatch decision plus its
// measured cost on the scalar oracle and on the dispatched vector path
// (equal when the kernel runs scalar in the current mode).
type KernelDispatchRow struct {
	Kernel   string  `json:"kernel"`
	Path     string  `json:"path"` // "scalar" | "avx2" | "avx512"
	Note     string  `json:"note,omitempty"`
	ScalarNs int64   `json:"scalar_ns_per_op"`
	VectorNs int64   `json:"vector_ns_per_op"`
	SpeedupX float64 `json:"speedup_x"`
}

// DispatchInfo is the v6 kernel-dispatch section: what the host can
// run, what the process chose, and what each choice costs.
type DispatchInfo struct {
	CPU     string              `json:"cpu"`  // detected features, e.g. "avx2,avx512"
	Mode    string              `json:"mode"` // live dispatch mode
	EnvNote string              `json:"env_note,omitempty"`
	N       int                 `json:"n"` // ring degree of the kernel sweep
	Kernels []KernelDispatchRow `json:"kernels"`
}

// DCRTReport is the BENCH_dcrt.json schema.
type DCRTReport struct {
	Schema      string        `json:"schema"`
	GeneratedAt string        `json:"generated_at"`
	GoMaxProcs  int           `json:"gomaxprocs"`
	Op          string        `json:"op"`
	Dispatch    *DispatchInfo `json:"dispatch,omitempty"`
	Points      []DCRTPoint   `json:"points"`
}

// evalMulBackends is the tracked backend set of the evalmul axis when
// no -backend restriction is given.
var evalMulBackends = []string{"schoolbook", "dcrt-legacy", "dcrt-native"}

// measureEvalMul times one depth-long chain of relinearized homomorphic
// multiplications on the named registry backend. Setup (keygen,
// encryption, cache warming) is excluded. The schoolbook backend runs a
// single iteration — it is seconds per op by design.
func measureEvalMul(n, depth int, backend string) (DCRTPoint, error) {
	params := bfv.ParamsSec54AtDegree(n)
	src := sampling.NewSourceFromUint64(uint64(n))
	kg := bfv.NewKeyGenerator(params, src)
	sk, pk := kg.GenKeyPair()
	rlk := kg.GenRelinKey(sk)
	_ = sk
	enc := bfv.NewEncryptor(params, pk, src)
	ct0, err := enc.EncryptValue(11)
	if err != nil {
		return DCRTPoint{}, err
	}
	ct1, err := enc.EncryptValue(13)
	if err != nil {
		return DCRTPoint{}, err
	}
	eng, err := hebfv.NewEngine(backend, hebfv.Config{Params: params, Relin: rlk})
	if err != nil {
		return DCRTPoint{}, err
	}
	chain := func() error {
		ct := ct0
		for d := 0; d < depth; d++ {
			next, err := eng.Mul(ct, ct1)
			if err != nil {
				return err
			}
			ct = next
		}
		return nil
	}
	// The schoolbook backend runs a single timed iteration — seconds per
	// op by design.
	iters, ns, err := timeOp(chain, backend == "schoolbook")
	if err != nil {
		return DCRTPoint{}, err
	}
	return DCRTPoint{
		N:       n,
		QBits:   params.Q.Bits(),
		Backend: backend,
		Depth:   depth,
		Iters:   iters,
		NsPerOp: ns,
	}, nil
}

// measureMulChainDeferred times the depth-long chain through the
// NTT-resident pipeline: each level consumes the previous level's
// deferred handle and only the final result materializes.
func measureMulChainDeferred(n, depth int) (DCRTPoint, error) {
	params := bfv.ParamsSec54AtDegree(n)
	src := sampling.NewSourceFromUint64(uint64(n))
	kg := bfv.NewKeyGenerator(params, src)
	sk, pk := kg.GenKeyPair()
	rlk := kg.GenRelinKey(sk)
	_ = sk
	enc := bfv.NewEncryptor(params, pk, src)
	ct0, err := enc.EncryptValue(11)
	if err != nil {
		return DCRTPoint{}, err
	}
	ct1, err := enc.EncryptValue(13)
	if err != nil {
		return DCRTPoint{}, err
	}
	ev := bfv.NewEvaluator(params, rlk)
	if !ev.CanDeferMuls() {
		return DCRTPoint{}, fmt.Errorf("bench: deferred multiplication unavailable at n=%d", n)
	}
	chain := func() error {
		var cur bfv.MulOperand = ct0
		var prev *bfv.ProductNTT
		for d := 0; d < depth; d++ {
			next, err := ev.MulNTT(cur, ct1)
			if err != nil {
				return err
			}
			if prev != nil {
				prev.Release()
			}
			cur, prev = next, next
		}
		prev.Materialize()
		prev.Release()
		return nil
	}
	iters, ns, err := timeOp(chain, false)
	if err != nil {
		return DCRTPoint{}, err
	}
	return DCRTPoint{
		N:       n,
		QBits:   params.Q.Bits(),
		Backend: "dcrt-native-deferred",
		Depth:   depth,
		Iters:   iters,
		NsPerOp: ns,
	}, nil
}

// MeasureKernels times the raw transform and convolution primitives at
// ring degree n over a 60-bit basis prime — the kernel-level axis of
// BENCH_dcrt.json v5.
func MeasureKernels(n int) ([]DCRTPoint, error) {
	primes, err := nt.NTTPrimes(60, n, 1)
	if err != nil {
		return nil, err
	}
	tab, err := ntt.GetTable(primes[0], n)
	if err != nil {
		return nil, err
	}
	q := tab.R.Q
	qBits := 60
	a := make([]uint64, n)
	b := make([]uint64, n)
	dst := make([]uint64, n)
	for i := range a {
		a[i] = uint64(i) * 12345 % q
		b[i] = uint64(i) * 54321 % q
	}
	// The lazy transforms accept their own lazy outputs as inputs
	// (ForwardLazy: < 4q, InverseLazy: < 2q), so every kernel self-feeds
	// without intermediate reduction — the rows measure exactly the
	// per-transform cost difference the lazy entry points exist for.
	kernels := []struct {
		name string
		fn   func() error
	}{
		{"ntt-forward", func() error { tab.Forward(a); return nil }},
		{"ntt-forward-lazy", func() error { tab.ForwardLazy(a); return nil }},
		{"ntt-inverse", func() error { tab.Inverse(a); return nil }},
		{"ntt-inverse-lazy", func() error { tab.InverseLazy(a); return nil }},
		{"convolve", func() error { tab.Convolve(dst, a, b); return nil }},
	}
	var out []DCRTPoint
	for _, k := range kernels {
		iters, ns, err := timeOp(k.fn, false)
		if err != nil {
			return nil, err
		}
		out = append(out, DCRTPoint{
			N: n, QBits: qBits, Backend: k.name, Op: "kernel",
			Iters: iters, NsPerOp: ns,
		})
		// Re-range for the next kernel (outside the timing): lazy rows
		// leave a below 4q, and the strict transforms require < q.
		for i, v := range a {
			for v >= q {
				v -= q
			}
			a[i] = v
		}
	}
	return out, nil
}

// MeasureKernelDispatch measures every dispatched kernel twice at ring
// degree n — once with the vector mode forced off (the scalar oracle)
// and once on the live mode's path — and returns the v6 dispatch
// section. The process-wide mode is restored before returning.
func MeasureKernelDispatch(n int) (*DispatchInfo, error) {
	primes, err := nt.NTTPrimes(60, n, 1)
	if err != nil {
		return nil, err
	}
	tab, err := ntt.GetTable(primes[0], n)
	if err != nil {
		return nil, err
	}
	r := tab.R
	q := r.Q
	rng := func(mul uint64, bound uint64) []uint64 {
		v := make([]uint64, n)
		for i := range v {
			v[i] = (uint64(i)*mul + 17) % bound
		}
		return v
	}
	a := rng(0x9E3779B97F4A7C15, 4*q)
	b := rng(0xBF58476D1CE4E5B9, 4*q)
	dst := make([]uint64, n)
	w := rng(12345, q)
	ws := make([]uint64, n)
	for i := range ws {
		ws[i] = r.ShoupConst(w[i])
	}
	const nd = 3
	k0 := make([][]uint64, nd)
	k1 := make([][]uint64, nd)
	digits := make([][]uint64, nd)
	for d := 0; d < nd; d++ {
		k0[d] = rng(uint64(7+d), q)
		k1[d] = rng(uint64(11+d), q)
		digits[d] = rng(uint64(13+d), 4*q)
	}
	acc0 := rng(3, q)
	acc1 := rng(5, q)
	idx := make([]uint32, n)
	for j := range idx {
		idx[j] = uint32((j * 7) % n)
	}
	// The transform rows self-feed: ForwardLazy tolerates its own < 4q
	// outputs and Inverse's canonical outputs re-enter its own domain.
	fwd := rng(1, q)
	inv := rng(2, q)
	kernels := map[string]func() error{
		"ntt-forward":         func() error { tab.ForwardLazy(fwd); return nil },
		"ntt-inverse":         func() error { tab.Inverse(inv); return nil },
		"pointwise-mul":       func() error { tab.PointwiseMul(dst, a, b); return nil },
		"pointwise-mul-shoup": func() error { ntt.MulShoupLazyVec(r, dst, a, w, ws); return nil },
		"mul-pair-add":        func() error { ntt.MulPairAddVec(r, dst, a, b, b, a); return nil },
		"acc-pair-128":        func() error { ntt.MulAddPair128(r, acc0, acc1, k0, k1, digits); return nil },
		"galois-acc-128":      func() error { ntt.GaloisAccPair128(r, acc0, acc1, k0, k1, digits, idx); return nil },
	}
	scalars := map[string]func() error{
		"ntt-forward":         func() error { tab.ForwardLazyScalar(fwd); return nil },
		"ntt-inverse":         func() error { tab.InverseScalar(inv); return nil },
		"pointwise-mul":       func() error { tab.PointwiseMulScalar(dst, a, b); return nil },
		"pointwise-mul-shoup": nil, // mode flip below: the Vec helpers dispatch internally
		"mul-pair-add":        nil,
		"acc-pair-128":        func() error { ntt.MulAddPair128Scalar(r, acc0, acc1, k0, k1, digits); return nil },
		"galois-acc-128":      func() error { ntt.GaloisAccPair128Scalar(r, acc0, acc1, k0, k1, digits, idx); return nil },
	}
	mode := ntt.VectorMode()
	defer ntt.SetVectorMode(mode)
	info := &DispatchInfo{
		CPU:     cpufeat.Host().String(),
		Mode:    mode,
		EnvNote: ntt.EnvNote(),
		N:       n,
	}
	for _, kp := range ntt.KernelPaths() {
		fn := kernels[kp.Kernel]
		if fn == nil {
			continue
		}
		if err := ntt.SetVectorMode(mode); err != nil {
			return nil, err
		}
		_, vecNs, err := timeOp(fn, false)
		if err != nil {
			return nil, err
		}
		sfn := scalars[kp.Kernel]
		if sfn == nil {
			// No pinned scalar entry point: force the mode off instead.
			if err := ntt.SetVectorMode("off"); err != nil {
				return nil, err
			}
			sfn = fn
		}
		_, scalNs, err := timeOp(sfn, false)
		if err != nil {
			return nil, err
		}
		row := KernelDispatchRow{
			Kernel:   kp.Kernel,
			Path:     kp.Path,
			Note:     kp.Note,
			ScalarNs: scalNs,
			VectorNs: vecNs,
		}
		if vecNs > 0 {
			row.SpeedupX = float64(scalNs) / float64(vecNs)
		}
		info.Kernels = append(info.Kernels, row)
	}
	return info, ntt.SetVectorMode(mode)
}

// MeasureDCRT measures EvalMul at depth 1 on the given registry
// backends (all three tracked backends when the list is empty) for the
// given ring degrees, plus chained depth-3 and depth-5 runs of the
// double-CRT backends at the largest degree (with a deferred-pipeline
// row alongside each dcrt-native chain row), and returns the tracking
// figure plus the JSON report.
func MeasureDCRT(degrees []int, backendNames []string) (*Figure, *DCRTReport, error) {
	if len(backendNames) == 0 {
		backendNames = evalMulBackends
	}
	fig := &Figure{
		ID:     "dcrt",
		Title:  "Host EvalMul by hebfv backend, 54-bit q",
		XLabel: "Ring degree / chain depth",
		Unit:   "ms",
		PaperNote: "§4.1: SEAL's RNS+NTT evaluation is the optimization the paper's " +
			"PIM kernels defer; this repo's host path now has it, rescale included",
	}
	rep := &DCRTReport{
		Schema:      "repro/dcrt-evalmul/v6",
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		Op:          "EvalMul chain (tensor + relinearize per level); ns_per_op is per chain",
	}
	for _, n := range degrees {
		pts := map[string]*DCRTPoint{}
		for _, backend := range backendNames {
			p, err := measureEvalMul(n, 1, backend)
			if err != nil {
				return nil, nil, err
			}
			pts[backend] = &p
		}
		// Cross-backend speedups, where the reference rows were measured.
		if sb := pts["schoolbook"]; sb != nil {
			for _, name := range backendNames {
				if name != "schoolbook" {
					pts[name].SpeedupX = float64(sb.NsPerOp) / float64(pts[name].NsPerOp)
				}
			}
		}
		if lg, nat := pts["dcrt-legacy"], pts["dcrt-native"]; lg != nil && nat != nil {
			nat.SpeedupBigX = float64(lg.NsPerOp) / float64(nat.NsPerOp)
		}
		row := Row{Label: fmt.Sprintf("n=%d depth=1", n), Seconds: map[string]float64{}}
		for _, name := range backendNames {
			p := pts[name]
			row.Seconds[name] = float64(p.NsPerOp) / 1e9
			rep.Points = append(rep.Points, *p)
		}
		if nat := pts["dcrt-native"]; nat != nil && nat.SpeedupX > 0 {
			row.Annotation = fmt.Sprintf("%.0fx vs schoolbook", nat.SpeedupX)
		}
		fig.Rows = append(fig.Rows, row)
	}
	if len(degrees) == 0 {
		return fig, rep, nil
	}
	// Depth chains: only meaningful for the double-CRT backends.
	var depthBackends []string
	for _, name := range backendNames {
		if name == "dcrt-legacy" || name == "dcrt-native" {
			depthBackends = append(depthBackends, name)
		}
	}
	nMax := degrees[len(degrees)-1]
	trackNative := false
	for _, name := range depthBackends {
		if name == "dcrt-native" {
			trackNative = true
		}
	}
	for _, depth := range []int{1, 3, 5} {
		pts := map[string]*DCRTPoint{}
		row := Row{Label: fmt.Sprintf("n=%d depth=%d", nMax, depth), Seconds: map[string]float64{}}
		if depth > 1 {
			for _, name := range depthBackends {
				p, err := measureEvalMul(nMax, depth, name)
				if err != nil {
					return nil, nil, err
				}
				pts[name] = &p
			}
			if lg, nat := pts["dcrt-legacy"], pts["dcrt-native"]; lg != nil && nat != nil {
				nat.SpeedupBigX = float64(lg.NsPerOp) / float64(nat.NsPerOp)
				row.Annotation = fmt.Sprintf("%.1fx vs legacy", nat.SpeedupBigX)
			}
			for _, name := range depthBackends {
				row.Seconds[name] = float64(pts[name].NsPerOp) / 1e9
				rep.Points = append(rep.Points, *pts[name])
			}
		}
		if trackNative {
			// The NTT-resident Mul-chain row: deferred handles between
			// levels, one materialization at the end.
			def, err := measureMulChainDeferred(nMax, depth)
			if err != nil {
				return nil, nil, err
			}
			nat := pts["dcrt-native"]
			if nat == nil && depth == 1 {
				// Depth-1 native was measured in the per-degree sweep.
				for i := range rep.Points {
					p := &rep.Points[i]
					if p.N == nMax && p.Backend == "dcrt-native" && p.Depth == 1 && p.Op == "" {
						nat = p
					}
				}
			}
			if nat != nil {
				def.SpeedupSerX = float64(nat.NsPerOp) / float64(def.NsPerOp)
			}
			row.Seconds["dcrt-native-deferred"] = float64(def.NsPerOp) / 1e9
			rep.Points = append(rep.Points, def)
		}
		if len(row.Seconds) > 0 && depth > 1 {
			fig.Rows = append(fig.Rows, row)
		}
	}
	if kpts, err := MeasureKernels(nMax); err == nil {
		rep.Points = append(rep.Points, kpts...)
	} else {
		return nil, nil, err
	}
	disp, err := MeasureKernelDispatch(nMax)
	if err != nil {
		return nil, nil, err
	}
	rep.Dispatch = disp
	return fig, rep, nil
}

// WriteDCRTJSON writes the report to path (the conventional name is
// BENCH_dcrt.json at the repo root).
func WriteDCRTJSON(path string, rep *DCRTReport) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// batchRig is the measured fixture of the batch axis: one encrypted
// ciphertext and k Galois keys at the 54-bit modulus, evaluated on a
// registry backend.
type batchRig struct {
	eng hebfv.Engine
	ct  *bfv.Ciphertext
	gks []*bfv.GaloisKey
}

func newBatchRig(n, k int, backend string) (*batchRig, error) {
	params := bfv.ParamsSec54AtDegree(n)
	src := sampling.NewSourceFromUint64(uint64(1000*n + k))
	kg := bfv.NewKeyGenerator(params, src)
	sk, pk := kg.GenKeyPair()
	enc := bfv.NewEncryptor(params, pk, src)
	ct, err := enc.EncryptValue(11)
	if err != nil {
		return nil, err
	}
	gks := make([]*bfv.GaloisKey, k)
	g := uint64(1)
	for i := range gks {
		g = g * 3 % uint64(2*n)
		gk, err := kg.GenGaloisKey(sk, g)
		if err != nil {
			return nil, err
		}
		gks[i] = gk
	}
	eng, err := hebfv.NewEngine(backend, hebfv.Config{Params: params})
	if err != nil {
		return nil, err
	}
	return &batchRig{eng: eng, ct: ct, gks: gks}, nil
}

// timeOp times fn (one full workload instance per call) with warmup,
// returning iterations and ns per op — the one timing policy every
// BENCH_dcrt.json axis measures under. single pins the timed run to one
// iteration, for backends that are seconds per op by design.
func timeOp(fn func() error, single bool) (int, int64, error) {
	if err := fn(); err != nil { // warm caches (key forms, twiddles, digit pools)
		return 0, 0, err
	}
	iters := 0
	start := time.Now()
	for {
		if err := fn(); err != nil {
			return 0, 0, err
		}
		iters++
		if single || (time.Since(start) > 300*time.Millisecond && iters >= 3) || iters >= 50 {
			break
		}
	}
	return iters, time.Since(start).Nanoseconds() / int64(iters), nil
}

// MeasureBatch measures the batched-rotation axis at ring degree n with
// k Galois elements on the named registry backend (dcrt-native when
// empty): per-output rotation (serial vs hoisted vs hoisted with
// NTT-resident outputs) and the rotate-and-sum workload (serial fold vs
// hoisted fused reduction), plus the decryption pair. It returns the
// tracking figure and the v4 points.
func MeasureBatch(n, k int, backend string) (*Figure, []DCRTPoint, error) {
	if backend == "" {
		backend = "dcrt-native"
	}
	rig, err := newBatchRig(n, k, backend)
	if err != nil {
		return nil, nil, err
	}
	params := bfv.ParamsSec54AtDegree(n)
	fig := &Figure{
		ID:     "batch",
		Title:  fmt.Sprintf("Batched rotations: hoisted vs per-rotation digit decomposition, k=%d, 54-bit q, backend %s", k, backend),
		XLabel: "Workload",
		Unit:   "ms",
		PaperNote: "§2/§6: rotation is the operation the paper lists beyond add/mul; " +
			"hoisting shares one digit decomposition across all k Galois elements",
	}
	var collected []*DCRTPoint

	measure := func(op, name string, rotations int, fn func() error) (*DCRTPoint, error) {
		iters, ns, err := timeOp(fn, false)
		if err != nil {
			return nil, err
		}
		p := &DCRTPoint{N: n, QBits: params.Q.Bits(), Backend: name, Op: op,
			Rotations: rotations, Iters: iters, NsPerOp: ns}
		collected = append(collected, p)
		return p, nil
	}
	row := func(label string, cols map[string]*DCRTPoint, annotation string) {
		r := Row{Label: label, Seconds: map[string]float64{}, Annotation: annotation}
		for name, p := range cols {
			r.Seconds[name] = float64(p.NsPerOp) / 1e9
		}
		fig.Rows = append(fig.Rows, r)
	}

	serial, err := measure("rotate", "galois-serial", k, func() error {
		for _, gk := range rig.gks {
			if _, err := rig.eng.ApplyGalois(rig.ct, gk); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	hoisted, err := measure("rotate", "galois-hoisted", k, func() error {
		_, err := rig.eng.RotateMany(rig.ct, rig.gks)
		return err
	})
	if err != nil {
		return nil, nil, err
	}
	hoisted.SpeedupSerX = float64(serial.NsPerOp) / float64(hoisted.NsPerOp)
	cols := map[string]*DCRTPoint{"Serial": serial, "Hoisted": hoisted}

	// NTT-resident outputs — only where the backend actually defers the
	// base conversions (CanDefer), so the row never mislabels a
	// materialized fallback as deferred.
	if dr, ok := rig.eng.(hebfv.DeferredRotator); ok && dr.CanDefer() {
		ntt, err := measure("rotate", "galois-hoisted-ntt", k, func() error {
			rots, err := dr.RotateManyNTT(rig.ct, rig.gks)
			if err != nil {
				return err
			}
			for _, r := range rots {
				r.Release()
			}
			return nil
		})
		if err != nil {
			return nil, nil, err
		}
		ntt.SpeedupSerX = float64(serial.NsPerOp) / float64(ntt.NsPerOp)
		cols["Hoisted-NTT"] = ntt
	}
	row(fmt.Sprintf("n=%d rotate k=%d", n, k), cols,
		fmt.Sprintf("%.1fx hoisted", hoisted.SpeedupSerX))

	serialSum, err := measure("rotate-sum", "galois-serial", k, func() error {
		acc := rig.ct.Clone()
		for _, gk := range rig.gks {
			r, err := rig.eng.ApplyGalois(rig.ct, gk)
			if err != nil {
				return err
			}
			if acc, err = rig.eng.Add(acc, r); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	hoistedSum, err := measure("rotate-sum", "galois-hoisted", k, func() error {
		_, err := rig.eng.RotateAndSum([]*bfv.Ciphertext{rig.ct}, rig.gks)
		return err
	})
	if err != nil {
		return nil, nil, err
	}
	hoistedSum.SpeedupSerX = float64(serialSum.NsPerOp) / float64(hoistedSum.NsPerOp)
	row(fmt.Sprintf("n=%d rotate-sum k=%d", n, k),
		map[string]*DCRTPoint{"Serial": serialSum, "Hoisted": hoistedSum},
		fmt.Sprintf("%.1fx hoisted", hoistedSum.SpeedupSerX))

	// Decryption pair: RNS-native Decrypt vs the retained big.Int oracle,
	// on the same degree-1 ciphertext (backend-independent).
	src := sampling.NewSourceFromUint64(uint64(n))
	kg := bfv.NewKeyGenerator(params, src)
	sk, pk := kg.GenKeyPair()
	enc := bfv.NewEncryptor(params, pk, src)
	dec := bfv.NewDecryptor(params, sk)
	ct, err := enc.EncryptValue(7)
	if err != nil {
		return nil, nil, err
	}
	decBig, err := measure("decrypt", "decrypt-bigint", 0, func() error {
		if dec.DecryptBigInt(ct).Coeffs[0] != 7 {
			return fmt.Errorf("bench: big.Int decrypt failed")
		}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	decRNS, err := measure("decrypt", "decrypt-rns", 0, func() error {
		if dec.Decrypt(ct).Coeffs[0] != 7 {
			return fmt.Errorf("bench: RNS decrypt failed")
		}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	decRNS.SpeedupSerX = float64(decBig.NsPerOp) / float64(decRNS.NsPerOp)
	row(fmt.Sprintf("n=%d decrypt", n),
		map[string]*DCRTPoint{"Serial": decBig, "Hoisted": decRNS},
		fmt.Sprintf("%.1fx rns", decRNS.SpeedupSerX))

	points := make([]DCRTPoint, len(collected))
	for i, p := range collected {
		points[i] = *p
	}
	return fig, points, nil
}
