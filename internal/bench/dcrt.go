package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/bfv"
	"repro/internal/sampling"
)

// DCRT perf tracking: measures the repo's own host-side EvalMul across
// backends and chain depths and emits BENCH_dcrt.json, so the
// performance trajectory of the evaluation layer is recorded from the PR
// that introduced it onward.
//
// v2 of the schema added a depth axis and split the double-CRT backend
// into its two rescale paths: "dcrt-rns" (RNS-native scale-and-round,
// NTT-resident ciphertexts — the default) and "dcrt-bigint" (the PR-1
// per-coefficient big.Int recombination round trip, kept behind
// Evaluator.SetBigIntRescale as the tracked baseline).
//
// v3 adds the batched-rotation axis (the `-fig batch` workload): op
// "rotate" rows measure k Galois rotations of one ciphertext — backend
// "galois-serial" pays one digit decomposition per rotation, backend
// "galois-hoisted" shares a single hoisted decomposition — and op
// "rotate-sum" rows measure the batched rotate-and-sum workload
// (ct + Σ_g τ_g(ct)), where the hoisted path additionally fuses all k
// key-switching reductions into one extended-basis accumulator. v3 also
// adds op "decrypt" rows tracking the RNS-native Decrypt against the
// retained big.Int oracle.

// DCRTPoint is one measured backend × ring-degree × depth combination.
// NsPerOp is the time of one full depth-long chain of relinearized
// multiplications (depth 1 ≡ one EvalMul) for evalmul rows, of all k
// rotations for rotate/rotate-sum rows, and of one decryption for
// decrypt rows.
type DCRTPoint struct {
	N           int     `json:"n"`
	QBits       int     `json:"q_bits"`
	Backend     string  `json:"backend"`      // evalmul: "schoolbook"|"dcrt-bigint"|"dcrt-rns"; rotate: "galois-serial"|"galois-hoisted"; decrypt: "decrypt-bigint"|"decrypt-rns"
	Op          string  `json:"op,omitempty"` // "" (evalmul) | "rotate" | "rotate-sum" | "decrypt"
	Depth       int     `json:"depth,omitempty"`
	Rotations   int     `json:"rotations,omitempty"` // rotate rows: Galois-element count k
	Iters       int     `json:"iters"`
	NsPerOp     int64   `json:"ns_per_op"`
	SpeedupX    float64 `json:"speedup_vs_schoolbook,omitempty"` // dcrt rows, depth 1
	SpeedupBigX float64 `json:"speedup_vs_bigint,omitempty"`     // dcrt-rns rows
	SpeedupSerX float64 `json:"speedup_vs_serial,omitempty"`     // hoisted/rns rows vs their serial/bigint pair
}

// DCRTReport is the BENCH_dcrt.json schema.
type DCRTReport struct {
	Schema      string      `json:"schema"`
	GeneratedAt string      `json:"generated_at"`
	GoMaxProcs  int         `json:"gomaxprocs"`
	Op          string      `json:"op"`
	Points      []DCRTPoint `json:"points"`
}

// measureEvalMul times one depth-long chain of relinearized homomorphic
// multiplications. Setup (keygen, encryption, cache warming) is
// excluded. The schoolbook backend runs a single iteration — it is
// seconds per op by design.
func measureEvalMul(n, depth int, backend string) (DCRTPoint, error) {
	params := bfv.ParamsSec54AtDegree(n)
	src := sampling.NewSourceFromUint64(uint64(n))
	kg := bfv.NewKeyGenerator(params, src)
	sk, pk := kg.GenKeyPair()
	rlk := kg.GenRelinKey(sk)
	_ = sk
	enc := bfv.NewEncryptor(params, pk, src)
	ct0, err := enc.EncryptValue(11)
	if err != nil {
		return DCRTPoint{}, err
	}
	ct1, err := enc.EncryptValue(13)
	if err != nil {
		return DCRTPoint{}, err
	}
	var ev *bfv.Evaluator
	switch backend {
	case "schoolbook":
		ev = bfv.NewSchoolbookEvaluator(params, rlk)
	case "dcrt-bigint":
		ev = bfv.NewEvaluator(params, rlk)
		ev.SetBigIntRescale(true)
	case "dcrt-rns":
		ev = bfv.NewEvaluator(params, rlk)
	default:
		return DCRTPoint{}, fmt.Errorf("bench: unknown backend %q", backend)
	}
	chain := func() error {
		ct := ct0
		for d := 0; d < depth; d++ {
			next, err := ev.Mul(ct, ct1)
			if err != nil {
				return err
			}
			ct = next
		}
		return nil
	}
	// The schoolbook backend runs a single timed iteration — seconds per
	// op by design.
	iters, ns, err := timeOp(chain, backend == "schoolbook")
	if err != nil {
		return DCRTPoint{}, err
	}
	return DCRTPoint{
		N:       n,
		QBits:   params.Q.Bits(),
		Backend: backend,
		Depth:   depth,
		Iters:   iters,
		NsPerOp: ns,
	}, nil
}

// MeasureDCRT measures EvalMul at depth 1 on all three backends for the
// given ring degrees, plus chained depth-3 and depth-5 runs of the two
// double-CRT rescale paths at the largest degree, and returns the
// tracking figure plus the JSON report.
func MeasureDCRT(degrees []int) (*Figure, *DCRTReport, error) {
	fig := &Figure{
		ID:     "dcrt",
		Title:  "Host EvalMul: RNS-native vs big.Int rescale vs schoolbook, 54-bit q",
		XLabel: "Ring degree / chain depth",
		Unit:   "ms",
		PaperNote: "§4.1: SEAL's RNS+NTT evaluation is the optimization the paper's " +
			"PIM kernels defer; this repo's host path now has it, rescale included",
	}
	rep := &DCRTReport{
		Schema:      "repro/dcrt-evalmul/v3",
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		Op:          "EvalMul chain (tensor + relinearize per level); ns_per_op is per chain",
	}
	for _, n := range degrees {
		sb, err := measureEvalMul(n, 1, "schoolbook")
		if err != nil {
			return nil, nil, err
		}
		bi, err := measureEvalMul(n, 1, "dcrt-bigint")
		if err != nil {
			return nil, nil, err
		}
		rn, err := measureEvalMul(n, 1, "dcrt-rns")
		if err != nil {
			return nil, nil, err
		}
		bi.SpeedupX = float64(sb.NsPerOp) / float64(bi.NsPerOp)
		rn.SpeedupX = float64(sb.NsPerOp) / float64(rn.NsPerOp)
		rn.SpeedupBigX = float64(bi.NsPerOp) / float64(rn.NsPerOp)
		rep.Points = append(rep.Points, sb, bi, rn)
		fig.Rows = append(fig.Rows, Row{
			Label: fmt.Sprintf("n=%d depth=1", n),
			Seconds: map[string]float64{
				"Schoolbook":  float64(sb.NsPerOp) / 1e9,
				"DCRT-bigint": float64(bi.NsPerOp) / 1e9,
				"DCRT-RNS":    float64(rn.NsPerOp) / 1e9,
			},
			Annotation: fmt.Sprintf("%.0fx vs schoolbook, %.1fx vs bigint", rn.SpeedupX, rn.SpeedupBigX),
		})
	}
	if len(degrees) == 0 {
		return fig, rep, nil
	}
	nMax := degrees[len(degrees)-1]
	for _, depth := range []int{3, 5} {
		bi, err := measureEvalMul(nMax, depth, "dcrt-bigint")
		if err != nil {
			return nil, nil, err
		}
		rn, err := measureEvalMul(nMax, depth, "dcrt-rns")
		if err != nil {
			return nil, nil, err
		}
		rn.SpeedupBigX = float64(bi.NsPerOp) / float64(rn.NsPerOp)
		rep.Points = append(rep.Points, bi, rn)
		fig.Rows = append(fig.Rows, Row{
			Label: fmt.Sprintf("n=%d depth=%d", nMax, depth),
			Seconds: map[string]float64{
				"DCRT-bigint": float64(bi.NsPerOp) / 1e9,
				"DCRT-RNS":    float64(rn.NsPerOp) / 1e9,
			},
			Annotation: fmt.Sprintf("%.1fx vs bigint", rn.SpeedupBigX),
		})
	}
	return fig, rep, nil
}

// WriteDCRTJSON writes the report to path (the conventional name is
// BENCH_dcrt.json at the repo root).
func WriteDCRTJSON(path string, rep *DCRTReport) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// batchRig is the measured fixture of the batch axis: one encrypted
// ciphertext and k Galois keys at the 54-bit modulus.
type batchRig struct {
	ev  *bfv.Evaluator
	be  *bfv.BatchEvaluator
	ct  *bfv.Ciphertext
	gks []*bfv.GaloisKey
}

func newBatchRig(n, k int) (*batchRig, error) {
	params := bfv.ParamsSec54AtDegree(n)
	src := sampling.NewSourceFromUint64(uint64(1000*n + k))
	kg := bfv.NewKeyGenerator(params, src)
	sk, pk := kg.GenKeyPair()
	enc := bfv.NewEncryptor(params, pk, src)
	ct, err := enc.EncryptValue(11)
	if err != nil {
		return nil, err
	}
	gks := make([]*bfv.GaloisKey, k)
	g := uint64(1)
	for i := range gks {
		g = g * 3 % uint64(2*n)
		gk, err := kg.GenGaloisKey(sk, g)
		if err != nil {
			return nil, err
		}
		gks[i] = gk
	}
	ev := bfv.NewEvaluator(params, nil)
	return &batchRig{ev: ev, be: bfv.NewBatchEvaluatorFrom(ev), ct: ct, gks: gks}, nil
}

// timeOp times fn (one full workload instance per call) with warmup,
// returning iterations and ns per op — the one timing policy every
// BENCH_dcrt.json axis measures under. single pins the timed run to one
// iteration, for backends that are seconds per op by design.
func timeOp(fn func() error, single bool) (int, int64, error) {
	if err := fn(); err != nil { // warm caches (key forms, twiddles, digit pools)
		return 0, 0, err
	}
	iters := 0
	start := time.Now()
	for {
		if err := fn(); err != nil {
			return 0, 0, err
		}
		iters++
		if single || (time.Since(start) > 300*time.Millisecond && iters >= 3) || iters >= 50 {
			break
		}
	}
	return iters, time.Since(start).Nanoseconds() / int64(iters), nil
}

// MeasureBatch measures the batched-rotation axis at ring degree n with
// k Galois elements: per-output rotation (serial vs hoisted) and the
// rotate-and-sum workload (serial fold vs hoisted fused reduction), plus
// the decryption pair. It returns the tracking figure and the v3 points.
func MeasureBatch(n, k int) (*Figure, []DCRTPoint, error) {
	rig, err := newBatchRig(n, k)
	if err != nil {
		return nil, nil, err
	}
	params := bfv.ParamsSec54AtDegree(n)
	fig := &Figure{
		ID:     "batch",
		Title:  fmt.Sprintf("Batched rotations: hoisted vs per-rotation digit decomposition, k=%d, 54-bit q", k),
		XLabel: "Workload",
		Unit:   "ms",
		PaperNote: "§2/§6: rotation is the operation the paper lists beyond add/mul; " +
			"hoisting shares one digit decomposition across all k Galois elements",
	}
	var points []DCRTPoint

	pair := func(op, serialName, fastName string, rotations int, serial, fast func() error) error {
		si, sns, err := timeOp(serial, false)
		if err != nil {
			return err
		}
		fi, fns, err := timeOp(fast, false)
		if err != nil {
			return err
		}
		sp := DCRTPoint{N: n, QBits: params.Q.Bits(), Backend: serialName, Op: op,
			Rotations: rotations, Iters: si, NsPerOp: sns}
		fp := DCRTPoint{N: n, QBits: params.Q.Bits(), Backend: fastName, Op: op,
			Rotations: rotations, Iters: fi, NsPerOp: fns,
			SpeedupSerX: float64(sns) / float64(fns)}
		points = append(points, sp, fp)
		label := fmt.Sprintf("n=%d %s", n, op)
		if rotations > 0 {
			label = fmt.Sprintf("%s k=%d", label, rotations)
		}
		fig.Rows = append(fig.Rows, Row{
			Label: label,
			Seconds: map[string]float64{
				"Serial":  float64(sns) / 1e9,
				"Hoisted": float64(fns) / 1e9,
			},
			Annotation: fmt.Sprintf("%.1fx hoisted", fp.SpeedupSerX),
		})
		return nil
	}

	err = pair("rotate", "galois-serial", "galois-hoisted", k,
		func() error {
			for _, gk := range rig.gks {
				if _, err := rig.ev.ApplyGalois(rig.ct, gk); err != nil {
					return err
				}
			}
			return nil
		},
		func() error {
			_, err := rig.be.RotateMany(rig.ct, rig.gks)
			return err
		})
	if err != nil {
		return nil, nil, err
	}

	err = pair("rotate-sum", "galois-serial", "galois-hoisted", k,
		func() error {
			acc := rig.ct.Clone()
			for _, gk := range rig.gks {
				r, err := rig.ev.ApplyGalois(rig.ct, gk)
				if err != nil {
					return err
				}
				acc = rig.ev.Add(acc, r)
			}
			return nil
		},
		func() error {
			_, err := rig.be.RotateAndSum([]*bfv.Ciphertext{rig.ct}, rig.gks)
			return err
		})
	if err != nil {
		return nil, nil, err
	}

	// Decryption pair: RNS-native Decrypt vs the retained big.Int oracle,
	// on the same degree-1 ciphertext.
	src := sampling.NewSourceFromUint64(uint64(n))
	kg := bfv.NewKeyGenerator(params, src)
	sk, pk := kg.GenKeyPair()
	enc := bfv.NewEncryptor(params, pk, src)
	dec := bfv.NewDecryptor(params, sk)
	ct, err := enc.EncryptValue(7)
	if err != nil {
		return nil, nil, err
	}
	err = pair("decrypt", "decrypt-bigint", "decrypt-rns", 0,
		func() error {
			if dec.DecryptBigInt(ct).Coeffs[0] != 7 {
				return fmt.Errorf("bench: big.Int decrypt failed")
			}
			return nil
		},
		func() error {
			if dec.Decrypt(ct).Coeffs[0] != 7 {
				return fmt.Errorf("bench: RNS decrypt failed")
			}
			return nil
		})
	if err != nil {
		return nil, nil, err
	}
	return fig, points, nil
}
