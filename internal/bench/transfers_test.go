package bench

import "testing"

func TestTransfersFigure(t *testing.T) {
	fig := getSuite(t).Transfers()
	if len(fig.Rows) != 2 {
		t.Fatalf("transfers rows = %d", len(fig.Rows))
	}
	kernelOnly := fig.Rows[0]
	withXfer := fig.Rows[1]
	// Kernel-only: PIM wins (the paper's Fig 1a regime).
	if kernelOnly.Seconds["PIM"] >= kernelOnly.Seconds["GPU"] {
		t.Error("kernel-only: PIM should beat GPU on addition")
	}
	// Cold data: transfers must dominate both accelerators (§2's
	// data-movement argument) and erase PIM's kernel advantage.
	for _, p := range []string{"PIM", "GPU"} {
		if withXfer.Seconds[p] < 10*kernelOnly.Seconds[p] {
			t.Errorf("%s: transfers (%.4g s total) should dwarf the kernel (%.4g s)",
				p, withXfer.Seconds[p], kernelOnly.Seconds[p])
		}
	}
	// With cold data the GPU's fatter host link wins end-to-end — the
	// honest flip side the kernel-only methodology hides.
	if withXfer.Seconds["GPU"] >= withXfer.Seconds["PIM"] {
		t.Error("cold-data end-to-end: PCIe should beat the DIMM interface")
	}
}
