package bench

import "testing"

func TestEnergyFigure(t *testing.T) {
	fig, err := getSuite(t).Energy()
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Rows) != 2 {
		t.Fatalf("energy rows = %d", len(fig.Rows))
	}
	kernelJ := fig.Rows[0].Seconds["PIM"]
	transferJ := fig.Rows[1].Seconds["PIM"]
	if kernelJ <= 0 || transferJ <= 0 {
		t.Fatal("energy values must be positive")
	}
	// The paper's §2 energy argument: moving the ciphertexts across the
	// host link costs energy on the order of computing on them in place.
	ratio := transferJ / kernelJ
	if ratio < 0.5 || ratio > 10 {
		t.Errorf("transfer/kernel energy ratio %.2f outside the expected 0.5-10 range", ratio)
	}
}
