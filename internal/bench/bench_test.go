package bench

import (
	"strings"
	"testing"
)

var suite *Suite

func getSuite(t *testing.T) *Suite {
	t.Helper()
	if suite == nil {
		s, err := NewSuite()
		if err != nil {
			t.Fatal(err)
		}
		suite = s
	}
	return suite
}

func TestFig1aShape(t *testing.T) {
	fig := getSuite(t).Fig1a()
	if len(fig.Rows) != 5 {
		t.Fatalf("fig1a has %d rows, want 5", len(fig.Rows))
	}
	for _, r := range fig.Rows {
		for _, p := range Platforms {
			if r.Seconds[p] <= 0 {
				t.Errorf("row %s platform %s has no time", r.Label, p)
			}
		}
		// PIM must be the fastest platform for addition (the paper's
		// headline result).
		for _, p := range []string{"CPU", "CPU-SEAL", "GPU"} {
			if r.Seconds["PIM"] >= r.Seconds[p] {
				t.Errorf("row %s: PIM (%.4g) not faster than %s (%.4g)",
					r.Label, r.Seconds["PIM"], p, r.Seconds[p])
			}
		}
	}
	// Times scale ~linearly with the ciphertext count.
	first, last := fig.Rows[0], fig.Rows[4]
	ratio := last.Seconds["CPU"] / first.Seconds["CPU"]
	if ratio < 14 || ratio > 18 {
		t.Errorf("CPU time scaled %.1fx over a 16x size range", ratio)
	}
}

func TestFig1bShape(t *testing.T) {
	fig := getSuite(t).Fig1b()
	if len(fig.Rows) != 5 {
		t.Fatalf("fig1b has %d rows, want 5", len(fig.Rows))
	}
	for _, r := range fig.Rows {
		// Multiplication ordering: GPU < CPU-SEAL < PIM < CPU (§4.2).
		if !(r.Seconds["GPU"] < r.Seconds["CPU-SEAL"] &&
			r.Seconds["CPU-SEAL"] < r.Seconds["PIM"] &&
			r.Seconds["PIM"] < r.Seconds["CPU"]) {
			t.Errorf("row %s: platform ordering wrong: %v", r.Label, r.Seconds)
		}
	}
}

func TestFig2Shapes(t *testing.T) {
	s := getSuite(t)
	fig2a := s.Fig2a()
	for _, r := range fig2a.Rows {
		// Mean: PIM fastest everywhere.
		for _, p := range []string{"CPU", "CPU-SEAL", "GPU"} {
			if r.Seconds["PIM"] >= r.Seconds[p] {
				t.Errorf("fig2a %s: PIM not fastest vs %s", r.Label, p)
			}
		}
	}
	for _, fig := range []*Figure{s.Fig2b(), s.Fig2c()} {
		for _, r := range fig.Rows {
			// Variance/linreg: PIM beats only the custom CPU.
			if r.Seconds["PIM"] >= r.Seconds["CPU"] {
				t.Errorf("fig%s %s: PIM not faster than CPU", fig.ID, r.Label)
			}
			if r.Seconds["GPU"] >= r.Seconds["PIM"] || r.Seconds["CPU-SEAL"] >= r.Seconds["PIM"] {
				t.Errorf("fig%s %s: GPU/SEAL should beat PIM on mul-heavy workloads", fig.ID, r.Label)
			}
		}
	}
}

func TestWidthSweepShape(t *testing.T) {
	fig := getSuite(t).WidthSweep()
	if len(fig.Rows) != 6 {
		t.Fatalf("width sweep has %d rows, want 6", len(fig.Rows))
	}
	for _, r := range fig.Rows {
		if r.Seconds["PIM"] >= r.Seconds["CPU"] {
			t.Errorf("width row %s: PIM not faster than CPU", r.Label)
		}
	}
}

func TestTaskletSweepSaturates(t *testing.T) {
	fig, err := getSuite(t).TaskletSweep()
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Rows) != 7 {
		t.Fatalf("tasklet sweep rows = %d", len(fig.Rows))
	}
	// Time at 11 tasklets ≈ time at 16 and 24 (saturation), but well
	// below time at 1.
	timeAt := map[string]float64{}
	for _, r := range fig.Rows {
		timeAt[r.Label] = r.Seconds["PIM"]
	}
	if timeAt["11"] >= timeAt["1"]/2 {
		t.Errorf("11 tasklets (%.4g) should be much faster than 1 (%.4g)", timeAt["11"], timeAt["1"])
	}
	if timeAt["16"] < timeAt["11"]*0.85 || timeAt["24"] < timeAt["11"]*0.85 {
		t.Errorf("saturation missing: t11=%.4g t16=%.4g t24=%.4g",
			timeAt["11"], timeAt["16"], timeAt["24"])
	}
}

func TestAblations(t *testing.T) {
	fig, err := getSuite(t).Ablations()
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Rows) != 5 {
		t.Fatalf("ablation rows = %d", len(fig.Rows))
	}
	base := fig.Rows[0].Seconds["PIM"]
	native := fig.Rows[1].Seconds["PIM"]
	if native >= base {
		t.Error("native 32-bit multiplier did not speed up multiplication")
	}
}

func TestRenderAndCSV(t *testing.T) {
	s := getSuite(t)
	fig := s.Fig1a()
	out := Render(fig)
	for _, want := range []string{"Figure 1a", "CPU (ms)", "PIM (ms)", "20480", "327680", "note"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render output missing %q:\n%s", want, out)
		}
	}
	csv := CSV(fig)
	if !strings.HasPrefix(csv, "Number of Ciphertexts,CPU,PIM,CPU-SEAL,GPU,annotation\n") {
		t.Errorf("CSV header wrong: %s", strings.SplitN(csv, "\n", 2)[0])
	}
	if got := strings.Count(csv, "\n"); got != 6 {
		t.Errorf("CSV line count = %d, want 6", got)
	}
}

func TestKaratsubaAblationNumbers(t *testing.T) {
	kar, school, err := karatsubaAblationCycles()
	if err != nil {
		t.Fatal(err)
	}
	if school <= kar {
		t.Error("schoolbook should cost more than Karatsuba")
	}
	if ratio := float64(school) / float64(kar); ratio < 1.2 || ratio > 1.9 {
		t.Errorf("Karatsuba advantage %.2fx outside the expected 1.2-1.9x", ratio)
	}
}
