package bench

import (
	"errors"
	"fmt"
	"math/big"

	"repro/internal/bfv"
	"repro/internal/hepim"
	"repro/internal/hestats"
	"repro/internal/pim"
	"repro/internal/sampling"
)

// Workload generation and functional verification. The paper-scale
// numbers come from models; this file guarantees each figure's *pipeline*
// is real: for every figure there is a scaled-down functional run on the
// PIM simulator whose results are checked against plaintext recomputation
// and against the host evaluator, bit for bit.

// Workload synthesizes deterministic per-user survey data.
type Workload struct {
	Users      int
	CtsPerUser int
	MaxValue   uint64
	Seed       uint64
}

// Values returns the users × cts sample matrix.
func (w Workload) Values() [][]uint64 {
	src := sampling.NewSourceFromUint64(w.Seed)
	out := make([][]uint64, w.Users)
	for u := range out {
		out[u] = make([]uint64, w.CtsPerUser)
		for c := range out[u] {
			out[u][c] = src.Uint64N(w.MaxValue)
		}
	}
	return out
}

// Flat returns all samples in one slice (user-major).
func (w Workload) Flat() []uint64 {
	var out []uint64
	for _, row := range w.Values() {
		out = append(out, row...)
	}
	return out
}

// verifyRig is the scaled-down functional environment shared by the
// verifiers: toy-sized ring, real keys, a PIM server and a host engine.
type verifyRig struct {
	params *bfv.Parameters
	enc    *bfv.Encryptor
	dec    *bfv.Decryptor
	host   *hestats.HostEngine
	srv    *hepim.Server
}

func newVerifyRig(dpus int, seed uint64) (*verifyRig, error) {
	q, ok := new(big.Int).SetString("1152921504606846883", 10)
	if !ok {
		return nil, errors.New("bench: bad modulus literal")
	}
	params, err := bfv.NewParameters(64, q, 65537, 20)
	if err != nil {
		return nil, err
	}
	src := sampling.NewSourceFromUint64(seed)
	kg := bfv.NewKeyGenerator(params, src)
	sk, pk := kg.GenKeyPair()
	rlk := kg.GenRelinKey(sk)
	cfg := pim.DefaultConfig()
	cfg.NumDPUs = dpus
	srv, err := hepim.NewServer(cfg, params, rlk)
	if err != nil {
		return nil, err
	}
	return &verifyRig{
		params: params,
		enc:    bfv.NewEncryptor(params, pk, src),
		dec:    bfv.NewDecryptor(params, sk),
		host:   &hestats.HostEngine{Eval: bfv.NewEvaluator(params, rlk)},
		srv:    srv,
	}, nil
}

func (r *verifyRig) encryptAll(vals []uint64) ([]*bfv.Ciphertext, error) {
	out := make([]*bfv.Ciphertext, len(vals))
	for i, v := range vals {
		ct, err := r.enc.EncryptValue(v)
		if err != nil {
			return nil, err
		}
		out[i] = ct
	}
	return out, nil
}

// VerifyFig1aFunctional runs the Fig 1(a) pipeline (element-wise
// ciphertext addition) at reduced scale on the PIM simulator and checks
// decryption against plaintext recomputation.
func VerifyFig1aFunctional() error {
	rig, err := newVerifyRig(4, 301)
	if err != nil {
		return err
	}
	w := Workload{Users: 1, CtsPerUser: 12, MaxValue: 100, Seed: 302}
	vals := w.Flat()
	a, err := rig.encryptAll(vals)
	if err != nil {
		return err
	}
	b, err := rig.encryptAll(vals)
	if err != nil {
		return err
	}
	for i := range a {
		sum, err := rig.srv.Add(a[i], b[i])
		if err != nil {
			return err
		}
		hostSum, err := rig.host.Add(a[i], b[i])
		if err != nil {
			return err
		}
		if !sum.Equal(hostSum) {
			return fmt.Errorf("bench: fig1a PIM/host divergence at element %d", i)
		}
		if got := rig.dec.DecryptValue(sum); got != 2*vals[i] {
			return fmt.Errorf("bench: fig1a element %d decrypts to %d, want %d", i, got, 2*vals[i])
		}
	}
	return nil
}

// VerifyFig1bFunctional runs the Fig 1(b) pipeline (ciphertext
// multiplication) at reduced scale.
func VerifyFig1bFunctional() error {
	rig, err := newVerifyRig(2, 303)
	if err != nil {
		return err
	}
	w := Workload{Users: 1, CtsPerUser: 4, MaxValue: 50, Seed: 304}
	vals := w.Flat()
	a, err := rig.encryptAll(vals)
	if err != nil {
		return err
	}
	b, err := rig.encryptAll(vals)
	if err != nil {
		return err
	}
	for i := range a {
		prod, err := rig.srv.Mul(a[i], b[i])
		if err != nil {
			return err
		}
		hostProd, err := rig.host.Mul(a[i], b[i])
		if err != nil {
			return err
		}
		if !prod.Equal(hostProd) {
			return fmt.Errorf("bench: fig1b PIM/host divergence at element %d", i)
		}
		want := (vals[i] * vals[i]) % rig.params.T
		if got := rig.dec.DecryptValue(prod); got != want {
			return fmt.Errorf("bench: fig1b element %d decrypts to %d, want %d", i, got, want)
		}
	}
	return nil
}

// VerifyFig2Functional runs the three statistical pipelines at reduced
// scale: mean, variance moments, and linear-regression scoring.
func VerifyFig2Functional() error {
	rig, err := newVerifyRig(4, 305)
	if err != nil {
		return err
	}
	w := Workload{Users: 6, CtsPerUser: 1, MaxValue: 40, Seed: 306}
	vals := w.Flat()
	cts, err := rig.encryptAll(vals)
	if err != nil {
		return err
	}

	// Mean.
	m, err := hestats.Mean(rig.srv, cts)
	if err != nil {
		return err
	}
	var sum uint64
	for _, v := range vals {
		sum += v
	}
	if got := rig.dec.DecryptValue(m.Sum); got != sum%rig.params.T {
		return fmt.Errorf("bench: fig2a sum = %d, want %d", got, sum)
	}

	// Variance moments.
	v, err := hestats.Variance(rig.srv, cts)
	if err != nil {
		return err
	}
	var sumSq uint64
	for _, x := range vals {
		sumSq += x * x
	}
	if got := rig.dec.DecryptValue(v.SumSquares); got != sumSq%rig.params.T {
		return fmt.Errorf("bench: fig2b sum of squares = %d, want %d", got, sumSq)
	}

	// Linear regression (3 features).
	weights, err := rig.encryptAll([]uint64{2, 3, 1})
	if err != nil {
		return err
	}
	model := &hestats.LinRegModel{Weights: weights}
	sample, err := rig.encryptAll([]uint64{4, 5, 6})
	if err != nil {
		return err
	}
	preds, err := model.Predict(rig.srv, [][]*bfv.Ciphertext{sample})
	if err != nil {
		return err
	}
	want := uint64(2*4 + 3*5 + 1*6)
	if got := rig.dec.DecryptValue(preds[0]); got != want {
		return fmt.Errorf("bench: fig2c prediction = %d, want %d", got, want)
	}
	return nil
}
