package bench

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"testing"
)

// validationEntry is one pinned cell of the checked-in paper-validation
// table: exact metered integers (cycles, bytes), modeled seconds with a
// relative tolerance, and the paper's reported numbers for the matching
// regime as context.
type validationEntry struct {
	N                 int     `json:"n"`
	DPUs              int     `json:"dpus"`
	KernelCycles      int64   `json:"kernel_cycles"`
	BytesIn           int64   `json:"bytes_in"`
	BytesOut          int64   `json:"bytes_out"`
	OverlapSeconds    float64 `json:"overlap_seconds"`
	SerialSeconds     float64 `json:"serial_seconds"`
	MinOverlapSpeedup float64 `json:"min_overlap_speedup"`
	TolRel            float64 `json:"tol_rel"`
	PaperContext      string  `json:"paper_context"`
}

type validationTable struct {
	Schema  string            `json:"schema"`
	CtPairs int               `json:"ct_pairs"`
	Note    string            `json:"note"`
	Entries []validationEntry `json:"entries"`
}

func loadValidationTable(t *testing.T) validationTable {
	t.Helper()
	data, err := os.ReadFile("testdata/paper_validation.json")
	if err != nil {
		t.Fatal(err)
	}
	var tab validationTable
	if err := json.Unmarshal(data, &tab); err != nil {
		t.Fatal(err)
	}
	if tab.Schema != "repro/pim-scale-validation/v1" {
		t.Fatalf("unexpected validation schema %q", tab.Schema)
	}
	if len(tab.Entries) == 0 {
		t.Fatal("empty validation table")
	}
	return tab
}

func within(got, want, tolRel float64) bool {
	if want == 0 {
		return got == 0
	}
	return math.Abs(got-want) <= tolRel*math.Abs(want)
}

// TestPaperValidation regenerates the validation table's sweep points
// on the async execution plane and gates the metered numbers against
// the checked-in expectations: cycle and byte counts exactly (the
// simulator is deterministic), modeled seconds within each entry's
// tolerance, and the overlap speedup at least the pinned floor.
func TestPaperValidation(t *testing.T) {
	tab := loadValidationTable(t)
	dpuSet := map[int]bool{}
	var dpus []int
	for _, e := range tab.Entries {
		if !dpuSet[e.DPUs] {
			dpuSet[e.DPUs] = true
			dpus = append(dpus, e.DPUs)
		}
	}
	_, rep, err := MeasurePIMScale(dpus, tab.CtPairs)
	if err != nil {
		t.Fatal(err)
	}
	points := map[string]PIMScalePoint{}
	for _, p := range rep.Points {
		points[fmt.Sprintf("%d/%d", p.N, p.DPUs)] = p
	}
	for _, e := range tab.Entries {
		key := fmt.Sprintf("%d/%d", e.N, e.DPUs)
		p, ok := points[key]
		if !ok {
			t.Errorf("%s: sweep produced no point", key)
			continue
		}
		if !p.BitIdentical {
			t.Errorf("%s: results not bit-identical to the host oracle", key)
		}
		if p.KernelCycles != e.KernelCycles {
			t.Errorf("%s: kernel cycles %d, validation table expects %d", key, p.KernelCycles, e.KernelCycles)
		}
		if p.BytesIn != e.BytesIn || p.BytesOut != e.BytesOut {
			t.Errorf("%s: transfer bytes %d/%d, validation table expects %d/%d",
				key, p.BytesIn, p.BytesOut, e.BytesIn, e.BytesOut)
		}
		if !within(p.OverlapSeconds, e.OverlapSeconds, e.TolRel) {
			t.Errorf("%s: pipelined makespan %g outside %g ± %.0f%%",
				key, p.OverlapSeconds, e.OverlapSeconds, 100*e.TolRel)
		}
		if !within(p.SerialSeconds, e.SerialSeconds, e.TolRel) {
			t.Errorf("%s: serial makespan %g outside %g ± %.0f%%",
				key, p.SerialSeconds, e.SerialSeconds, 100*e.TolRel)
		}
		if p.OverlapSpeedup < e.MinOverlapSpeedup {
			t.Errorf("%s: overlap speedup %.2fx below the %.2fx floor",
				key, p.OverlapSpeedup, e.MinOverlapSpeedup)
		}
	}
}

// TestPIMScaleSweepShape pins the default sweep's structural
// guarantees: it spans a single DPU to beyond-2048, every point is
// oracle-identical, and overlap strictly beats serial exactly on the
// multi-rank points.
func TestPIMScaleSweepShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full DPU sweep in -short mode")
	}
	_, rep, err := MeasurePIMScale(nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) < 8 {
		t.Fatalf("default sweep produced only %d points", len(rep.Points))
	}
	maxDPUs := 0
	for _, p := range rep.Points {
		if p.DPUs > maxDPUs {
			maxDPUs = p.DPUs
		}
		if !p.BitIdentical {
			t.Errorf("n=%d dpus=%d: not bit-identical", p.N, p.DPUs)
		}
		if p.Ranks > 1 {
			if !(p.OverlapSeconds < p.SerialSeconds) {
				t.Errorf("n=%d dpus=%d (%d ranks): pipelined %g not below serial %g",
					p.N, p.DPUs, p.Ranks, p.OverlapSeconds, p.SerialSeconds)
			}
		} else if p.OverlapSeconds != p.SerialSeconds {
			t.Errorf("n=%d dpus=%d (single rank): pipelined %g != serial %g",
				p.N, p.DPUs, p.OverlapSeconds, p.SerialSeconds)
		}
	}
	if maxDPUs < 2048 {
		t.Fatalf("sweep tops out at %d DPUs, want ≥ 2048", maxDPUs)
	}
}
