// Package bench regenerates every table and figure of the paper's
// evaluation (§4): the Fig. 1 microbenchmarks, the Fig. 2 statistical
// workloads, the §4.2 bit-width sweep, the tasklet-saturation observation,
// and the design ablations called out in DESIGN.md. Paper-scale execution
// times come from the perfmodel layer (the PIM side anchored in the
// cycle-level simulator); rendering produces the same rows/series the
// paper reports, annotated with the PIM-over-CPU speedups the figures
// carry.
package bench

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/perfmodel"
	"repro/internal/pim"
)

// Platforms in the paper's plotting order.
var Platforms = []string{"CPU", "PIM", "CPU-SEAL", "GPU"}

// Row is one x-axis point of a figure.
type Row struct {
	Label   string
	Seconds map[string]float64
	// Annotation mirrors the paper's in-figure speedup label (PIM vs CPU).
	Annotation string
}

// Figure is a reproducible table/figure.
type Figure struct {
	ID        string
	Title     string
	XLabel    string
	Unit      string // display unit for times: "ms" or "s"
	PaperNote string
	Rows      []Row
}

// Suite holds the calibrated models for all platforms.
type Suite struct {
	PIM  *perfmodel.PIMModel
	CPU  *perfmodel.CPUModel
	SEAL *perfmodel.SEALModel
	GPU  *perfmodel.GPUModel

	pimNative *perfmodel.PIMModel // lazy: Key Takeaway 2 ablation
}

// NewSuite calibrates the models (runs small kernels on the simulator).
func NewSuite() (*Suite, error) {
	pm, err := perfmodel.NewPIMModel(pim.DefaultConfig())
	if err != nil {
		return nil, err
	}
	return &Suite{
		PIM:  pm,
		CPU:  perfmodel.NewCPUModel(),
		SEAL: perfmodel.NewSEALModel(),
		GPU:  perfmodel.NewGPUModel(),
	}, nil
}

func (s *Suite) vecRow(label string, v perfmodel.VectorSpec, mul bool) Row {
	sec := map[string]float64{}
	if mul {
		sec["CPU"] = s.CPU.VectorMulSeconds(v)
		sec["PIM"] = s.PIM.VectorMulSeconds(v)
		sec["CPU-SEAL"] = s.SEAL.VectorMulSeconds(v)
		sec["GPU"] = s.GPU.VectorMulSeconds(v)
	} else {
		sec["CPU"] = s.CPU.VectorAddSeconds(v)
		sec["PIM"] = s.PIM.VectorAddSeconds(v)
		sec["CPU-SEAL"] = s.SEAL.VectorAddSeconds(v)
		sec["GPU"] = s.GPU.VectorAddSeconds(v)
	}
	return Row{
		Label:      label,
		Seconds:    sec,
		Annotation: fmt.Sprintf("%.1fx", sec["CPU"]/sec["PIM"]),
	}
}

// Fig1a reproduces Figure 1(a): execution time of ciphertext vector
// addition for 128-bit (109-bit) coefficients.
func (s *Suite) Fig1a() *Figure {
	fig := &Figure{
		ID:        "1a",
		Title:     "128-bit ciphertext vector addition",
		XLabel:    "Number of Ciphertexts",
		Unit:      "ms",
		PaperNote: "paper annotations: 21.4x 27.7x 26.5x 25.1x 24.2x; abstract: 50-100x; §4.2: 20-150x",
	}
	for _, n := range []int{20480, 40960, 81920, 163840, 327680} {
		fig.Rows = append(fig.Rows,
			s.vecRow(fmt.Sprintf("%d", n), perfmodel.VectorSpec{Elems: n, N: 4096, W: 4}, false))
	}
	return fig
}

// Fig1b reproduces Figure 1(b): execution time of ciphertext vector
// multiplication for 128-bit coefficients.
func (s *Suite) Fig1b() *Figure {
	fig := &Figure{
		ID:        "1b",
		Title:     "128-bit ciphertext vector multiplication",
		XLabel:    "Number of Ciphertexts",
		Unit:      "s",
		PaperNote: "paper annotations: 41.5x 41.6x 41.4x 33.4x 21.4x; GPU 12-15x faster, CPU-SEAL 2-4x faster than PIM",
	}
	for _, n := range []int{5120, 10240, 20480, 40960, 81920} {
		fig.Rows = append(fig.Rows,
			s.vecRow(fmt.Sprintf("%d", n), perfmodel.VectorSpec{Elems: n, N: 4096, W: 4}, true))
	}
	return fig
}

type statsFn func(perfmodel.Model, perfmodel.StatsSpec) float64

func (s *Suite) statsRow(label string, spec perfmodel.StatsSpec, f statsFn) Row {
	sec := map[string]float64{
		"CPU":      f(s.CPU, spec),
		"PIM":      f(s.PIM, spec),
		"CPU-SEAL": f(s.SEAL, spec),
		"GPU":      f(s.GPU, spec),
	}
	return Row{
		Label:      label,
		Seconds:    sec,
		Annotation: fmt.Sprintf("%.1fx", sec["CPU"]/sec["PIM"]),
	}
}

// Fig2a reproduces Figure 2(a): arithmetic mean.
func (s *Suite) Fig2a() *Figure {
	fig := &Figure{
		ID: "2a", Title: "Arithmetic mean (128-bit coefficients)",
		XLabel: "Users", Unit: "ms",
		PaperNote: "paper annotations: 25.2x 50.6x 101.2x; PIM beats CPU-SEAL 11-50x, GPU 9-34x",
	}
	mean := func(m perfmodel.Model, sp perfmodel.StatsSpec) float64 { return m.MeanSeconds(sp) }
	for _, u := range []int{640, 1280, 2560} {
		fig.Rows = append(fig.Rows, s.statsRow(fmt.Sprintf("%d USERS", u), perfmodel.PaperStatsSpec(u), mean))
	}
	return fig
}

// Fig2b reproduces Figure 2(b): variance.
func (s *Suite) Fig2b() *Figure {
	fig := &Figure{
		ID: "2b", Title: "Variance (128-bit coefficients)",
		XLabel: "Users", Unit: "s",
		PaperNote: "paper annotations: 6.2x 12.4x 24.4x; CPU-SEAL 2-10x and GPU 13-50x faster than PIM",
	}
	variance := func(m perfmodel.Model, sp perfmodel.StatsSpec) float64 { return m.VarianceSeconds(sp) }
	for _, u := range []int{640, 1280, 2560} {
		fig.Rows = append(fig.Rows, s.statsRow(fmt.Sprintf("%d USERS", u), perfmodel.PaperStatsSpec(u), variance))
	}
	return fig
}

// Fig2c reproduces Figure 2(c): linear regression (640 users, 3 features).
func (s *Suite) Fig2c() *Figure {
	fig := &Figure{
		ID: "2c", Title: "Linear regression (640 users, 3 features)",
		XLabel: "Ciphertexts per user", Unit: "s",
		PaperNote: "paper annotations: 7.4x 6.5x; CPU-SEAL 11.4x and GPU 54.9x faster than PIM at 64 cts",
	}
	linreg := func(m perfmodel.Model, sp perfmodel.StatsSpec) float64 { return m.LinRegSeconds(sp) }
	for _, cts := range []int{32, 64} {
		spec := perfmodel.PaperStatsSpec(640)
		spec.CtsPerUser = cts
		fig.Rows = append(fig.Rows, s.statsRow(fmt.Sprintf("%d Ciphertexts", cts), spec, linreg))
	}
	return fig
}

// WidthSweep reproduces the §4.2 text: add and mul speedups across the
// three bit widths (32/64/128-bit integers ↔ 27/54/109-bit coefficients).
func (s *Suite) WidthSweep() *Figure {
	fig := &Figure{
		ID: "width", Title: "Bit-width sweep: PIM speedup over CPU (add / mul)",
		XLabel: "Coefficient width", Unit: "s",
		PaperNote: "§4.2: add 20-150x over CPU; mul 40-50x over CPU at all widths",
	}
	nFor := map[int]int{1: 1024, 2: 2048, 4: 4096}
	for _, w := range []int{1, 2, 4} {
		va := perfmodel.VectorSpec{Elems: 20480, N: nFor[w], W: w}
		vm := perfmodel.VectorSpec{Elems: 5120, N: nFor[w], W: w}
		addRow := s.vecRow(fmt.Sprintf("%d-bit add", 32*w), va, false)
		mulRow := s.vecRow(fmt.Sprintf("%d-bit mul", 32*w), vm, true)
		fig.Rows = append(fig.Rows, addRow, mulRow)
	}
	return fig
}

// TaskletSweep reproduces §4.2 observation 1 on the simulator directly:
// "the performance of PIM implementations saturates at 11 or more PIM
// threads". Rows report simulated kernel cycles of a fixed 128-bit
// addition on one DPU as the tasklet count grows.
func (s *Suite) TaskletSweep() (*Figure, error) {
	fig := &Figure{
		ID: "tasklets", Title: "Tasklet scaling of 128-bit addition (1 DPU, simulated)",
		XLabel: "Tasklets", Unit: "ms",
		PaperNote: "§4.2 observation 1: saturation at >= 11 tasklets",
	}
	cycles, err := taskletSweepCycles([]int{1, 2, 4, 8, 11, 16, 24})
	if err != nil {
		return nil, err
	}
	base := cycles[0].cycles
	for _, pt := range cycles {
		fig.Rows = append(fig.Rows, Row{
			Label: fmt.Sprintf("%d", pt.tasklets),
			Seconds: map[string]float64{
				"PIM": float64(pt.cycles) / 425e6,
			},
			Annotation: fmt.Sprintf("%.2fx vs 1 tasklet", float64(base)/float64(pt.cycles)),
		})
	}
	return fig, nil
}

// Ablations reports the design ablations: Karatsuba vs schoolbook limb
// multiplication, and the hypothetical native 32-bit multiplier of Key
// Takeaway 2.
func (s *Suite) Ablations() (*Figure, error) {
	fig := &Figure{
		ID: "ablation", Title: "Design ablations (128-bit multiplication, N=5120)",
		XLabel: "Variant", Unit: "s",
		PaperNote: "Key Takeaway 2: native 32-bit multiply hardware would lift PIM multiplication",
	}
	v := perfmodel.VectorSpec{Elems: 5120, N: 4096, W: 4}
	baseT := s.PIM.VectorMulSeconds(v)
	fig.Rows = append(fig.Rows, Row{
		Label:      "PIM (shift-and-add mul32, Karatsuba limbs)",
		Seconds:    map[string]float64{"PIM": baseT},
		Annotation: "baseline",
	})

	if s.pimNative == nil {
		cfg := pim.DefaultConfig()
		cfg.Cost = pim.NativeMul32CostModel()
		nm, err := perfmodel.NewPIMModel(cfg)
		if err != nil {
			return nil, err
		}
		s.pimNative = nm
	}
	natT := s.pimNative.VectorMulSeconds(v)
	fig.Rows = append(fig.Rows, Row{
		Label:      "PIM + native 32-bit multiplier (Takeaway 2)",
		Seconds:    map[string]float64{"PIM": natT},
		Annotation: fmt.Sprintf("%.2fx faster", baseT/natT),
	})

	kar, school, err := karatsubaAblationCycles()
	if err != nil {
		return nil, err
	}
	fig.Rows = append(fig.Rows, Row{
		Label:      "limb algorithm: Karatsuba vs schoolbook (per pair, n=64)",
		Seconds:    map[string]float64{"PIM": float64(school) / 425e6},
		Annotation: fmt.Sprintf("Karatsuba %.2fx cheaper", float64(school)/float64(kar)),
	})
	school, nttc, err := nttAblationCycles(256)
	if err != nil {
		return nil, err
	}
	fig.Rows = append(fig.Rows, Row{
		Label:      "PIM + NTT multiplication (paper's future work; n=256, 27-bit)",
		Seconds:    map[string]float64{"PIM": float64(nttc) / 425e6},
		Annotation: fmt.Sprintf("%.1fx faster than schoolbook at equal occupancy", float64(school)/float64(nttc)),
	})
	fig.Rows = append(fig.Rows, Row{
		Label:      "GPU (native 32-bit multipliers) for reference",
		Seconds:    map[string]float64{"GPU": s.GPU.VectorMulSeconds(v)},
		Annotation: fmt.Sprintf("%.1fx faster than PIM baseline", baseT/s.GPU.VectorMulSeconds(v)),
	})
	return fig, nil
}

// columns returns the platforms that appear in any row, in plot order.
func columns(f *Figure) []string {
	var cols []string
	seen := map[string]bool{}
	for _, p := range Platforms {
		for _, r := range f.Rows {
			if _, ok := r.Seconds[p]; ok {
				cols = append(cols, p)
				seen[p] = true
				break
			}
		}
	}
	// Figures outside the paper's four platforms (e.g. the DCRT-vs-
	// schoolbook tracking figure) contribute their columns in row order.
	for _, r := range f.Rows {
		for _, p := range r.sortedExtra(seen) {
			cols = append(cols, p)
			seen[p] = true
		}
	}
	return cols
}

// sortedExtra returns r's column names not yet seen, sorted for
// deterministic rendering.
func (r Row) sortedExtra(seen map[string]bool) []string {
	var extra []string
	for p := range r.Seconds {
		if !seen[p] {
			extra = append(extra, p)
		}
	}
	sort.Strings(extra)
	return extra
}

// Transfers is the data-movement ablation (DESIGN.md): kernel-only vs
// transfer-inclusive timing of the Fig. 1(a) addition workload. It
// quantifies the paper's §2 motivation — when operands must first cross
// the host link, transfers dwarf compute on both accelerators, so PIM's
// advantage presumes the data already lives in PIM-enabled memory (and
// the paper's kernel-only methodology measures exactly that regime).
func (s *Suite) Transfers() *Figure {
	fig := &Figure{
		ID: "transfers", Title: "Data movement vs compute (Fig 1a workload, 20480 ciphertexts)",
		XLabel: "Timing scope", Unit: "ms",
		PaperNote: "§2: HE's low arithmetic intensity makes data movement the bottleneck on processor-centric systems",
	}
	v := perfmodel.VectorSpec{Elems: 20480, N: 4096, W: 4}
	operandBytes := int64(v.Bytes())
	pimKernel := s.PIM.VectorAddSeconds(v)
	gpuKernel := s.GPU.VectorAddSeconds(v)
	cfg := s.PIM.Cfg
	pimIn := float64(2*operandBytes) / cfg.HostToDPUBytesPerSec
	pimOut := float64(operandBytes) / cfg.DPUToHostBytesPerSec
	gpuIn := s.GPU.PCIeSeconds(2 * operandBytes)
	gpuOut := s.GPU.PCIeSeconds(operandBytes)

	fig.Rows = append(fig.Rows,
		Row{
			Label:      "kernel only (paper methodology)",
			Seconds:    map[string]float64{"PIM": pimKernel, "GPU": gpuKernel},
			Annotation: fmt.Sprintf("PIM %.1fx faster", gpuKernel/pimKernel),
		},
		Row{
			Label:   "with cold-data transfers",
			Seconds: map[string]float64{"PIM": pimKernel + pimIn + pimOut, "GPU": gpuKernel + gpuIn + gpuOut},
			Annotation: fmt.Sprintf("transfers are %.0f%% (PIM) / %.0f%% (GPU) of end-to-end",
				100*(pimIn+pimOut)/(pimKernel+pimIn+pimOut),
				100*(gpuIn+gpuOut)/(gpuKernel+gpuIn+gpuOut)),
		},
	)
	return fig
}

// Energy is the energy-split experiment: in-memory compute energy vs the
// host-link transfer energy the PIM paradigm avoids (paper §2's second
// motivation). Values are joules, displayed in the seconds column with
// unit "J".
func (s *Suite) Energy() (*Figure, error) {
	kernelJ, transferJ, err := energyFigures()
	if err != nil {
		return nil, err
	}
	fig := &Figure{
		ID: "energy", Title: "Energy split of the Fig 1a addition workload (modeled)",
		XLabel: "Component", Unit: "s", // raw numbers; values are joules
		PaperNote: "§2: PIM offsets the energy expense of transferring large ciphertexts",
	}
	fig.Rows = append(fig.Rows,
		Row{
			Label:      "PIM kernel energy (compute + MRAM DMA + static), joules",
			Seconds:    map[string]float64{"PIM": kernelJ},
			Annotation: "data stays in PIM memory",
		},
		Row{
			Label:      "host-link transfer energy if data were cold, joules",
			Seconds:    map[string]float64{"PIM": transferJ},
			Annotation: fmt.Sprintf("%.1fx the kernel energy", transferJ/kernelJ),
		},
	)
	return fig, nil
}

// Render formats a figure as an aligned ASCII table.
func Render(f *Figure) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure %s: %s\n", f.ID, f.Title)
	if f.PaperNote != "" {
		fmt.Fprintf(&b, "  [paper: %s]\n", f.PaperNote)
	}
	cols := columns(f)
	labelWidth := len(f.XLabel)
	for _, r := range f.Rows {
		if len(r.Label) > labelWidth {
			labelWidth = len(r.Label)
		}
	}
	fmt.Fprintf(&b, "%-*s", labelWidth+2, f.XLabel)
	for _, c := range cols {
		fmt.Fprintf(&b, "%14s", c+" ("+f.Unit+")")
	}
	fmt.Fprintf(&b, "  %s\n", "note")
	for _, r := range f.Rows {
		fmt.Fprintf(&b, "%-*s", labelWidth+2, r.Label)
		for _, c := range cols {
			if sec, ok := r.Seconds[c]; ok {
				fmt.Fprintf(&b, "%14s", formatTime(sec, f.Unit))
			} else {
				fmt.Fprintf(&b, "%14s", "-")
			}
		}
		fmt.Fprintf(&b, "  %s\n", r.Annotation)
	}
	return b.String()
}

// CSV formats a figure as comma-separated values.
func CSV(f *Figure) string {
	var b strings.Builder
	cols := columns(f)
	fmt.Fprintf(&b, "%s,%s,annotation\n", f.XLabel, strings.Join(cols, ","))
	for _, r := range f.Rows {
		fmt.Fprintf(&b, "%s", r.Label)
		for _, c := range cols {
			if sec, ok := r.Seconds[c]; ok {
				fmt.Fprintf(&b, ",%g", sec)
			} else {
				b.WriteString(",")
			}
		}
		fmt.Fprintf(&b, ",%s\n", r.Annotation)
	}
	return b.String()
}

func formatTime(sec float64, unit string) string {
	switch unit {
	case "ms":
		return fmt.Sprintf("%.3g", sec*1e3)
	default:
		return fmt.Sprintf("%.4g", sec)
	}
}
