package bench

import "testing"

func TestWorkloadDeterministic(t *testing.T) {
	w := Workload{Users: 4, CtsPerUser: 8, MaxValue: 100, Seed: 9}
	a, b := w.Values(), w.Values()
	for u := range a {
		for c := range a[u] {
			if a[u][c] != b[u][c] {
				t.Fatal("same seed must give same workload")
			}
			if a[u][c] >= 100 {
				t.Fatalf("value %d out of range", a[u][c])
			}
		}
	}
	w2 := w
	w2.Seed = 10
	diff := false
	for u, row := range w2.Values() {
		for c := range row {
			if row[c] != a[u][c] {
				diff = true
			}
		}
	}
	if !diff {
		t.Error("different seeds should give different workloads")
	}
	if got := len(w.Flat()); got != 32 {
		t.Errorf("Flat length = %d, want 32", got)
	}
}

func TestVerifyFig1aFunctional(t *testing.T) {
	if err := VerifyFig1aFunctional(); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyFig1bFunctional(t *testing.T) {
	if err := VerifyFig1bFunctional(); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyFig2Functional(t *testing.T) {
	if err := VerifyFig2Functional(); err != nil {
		t.Fatal(err)
	}
}
