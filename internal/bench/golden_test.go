package bench

import (
	"math"
	"strconv"
	"strings"
	"testing"
)

// Golden regression values: the model speedups EXPERIMENTS.md documents.
// If a calibration change moves any figure by more than the tolerance,
// this test fails and EXPERIMENTS.md must be re-verified.
func TestGoldenSpeedupsMatchExperimentsDoc(t *testing.T) {
	s := getSuite(t)
	const tol = 0.05 // 5 % drift allowed

	check := func(name string, rows []Row, want []float64) {
		t.Helper()
		if len(rows) != len(want) {
			t.Fatalf("%s: %d rows, want %d", name, len(rows), len(want))
		}
		for i, r := range rows {
			gotStr := strings.TrimSuffix(r.Annotation, "x")
			got, err := strconv.ParseFloat(gotStr, 64)
			if err != nil {
				t.Fatalf("%s row %d: bad annotation %q", name, i, r.Annotation)
			}
			if math.Abs(got-want[i])/want[i] > tol {
				t.Errorf("%s row %s: PIM/CPU %.1fx drifted from documented %.1fx — update EXPERIMENTS.md",
					name, r.Label, got, want[i])
			}
		}
	}

	check("fig1a", s.Fig1a().Rows, []float64{84.9, 85.7, 86.1, 86.3, 86.4})
	check("fig1b", s.Fig1b().Rows, []float64{41.0, 41.0, 41.0, 41.0, 41.0})
	check("fig2a", s.Fig2a().Rows, []float64{20.5, 40.0, 78.1})
	check("fig2b", s.Fig2b().Rows, []float64{10.4, 20.8, 41.6})
	check("fig2c", s.Fig2c().Rows, []float64{10.4, 10.4})
}
