package bench

import (
	"math/big"

	"repro/internal/nt"
	"repro/internal/pim"
	"repro/internal/pim/kernels"
	"repro/internal/poly"
	"repro/internal/sampling"
)

// Direct-simulation helpers for the experiments that interrogate the PIM
// machine itself rather than the cross-platform models.

func paperModulus109() (*poly.Modulus, error) {
	q, _ := new(big.Int).SetString("649037107316853453566312041152481", 10)
	return poly.NewModulus(q)
}

func randCoeffVec(src *sampling.Source, coeffs int, mod *poly.Modulus) []uint32 {
	out := make([]uint32, coeffs*mod.W)
	for i := 0; i < coeffs; i++ {
		copy(out[i*mod.W:(i+1)*mod.W], src.UniformNat(mod.Q, mod.W))
	}
	return out
}

type taskletPoint struct {
	tasklets int
	cycles   int64
}

// taskletSweepCycles measures simulated kernel cycles of a fixed 128-bit
// vector addition (8192 coefficients, 1 DPU) across tasklet counts.
func taskletSweepCycles(taskletCounts []int) ([]taskletPoint, error) {
	mod, err := paperModulus109()
	if err != nil {
		return nil, err
	}
	src := sampling.NewSourceFromUint64(77)
	a := randCoeffVec(src, 8192, mod)
	b := randCoeffVec(src, 8192, mod)
	var out []taskletPoint
	for _, tk := range taskletCounts {
		cfg := pim.DefaultConfig()
		cfg.NumDPUs = 1
		cfg.Tasklets = tk
		sys, err := pim.NewSystem(cfg)
		if err != nil {
			return nil, err
		}
		_, rep, err := kernels.RunVectorAdd(sys, a, b, mod.W, mod.Q)
		if err != nil {
			return nil, err
		}
		out = append(out, taskletPoint{tasklets: tk, cycles: rep.KernelCycles})
	}
	return out, nil
}

// nttAblationCycles compares the paper's deferred NTT optimization
// against the schoolbook kernel on the simulator: 16 polynomial pairs of
// degree n over a 27-bit NTT-friendly prime, all tasklets busy.
func nttAblationCycles(n int) (school, nttc int64, err error) {
	q, err := nt.NTTPrime(27, n)
	if err != nil {
		return 0, 0, err
	}
	plan, err := kernels.NewNTTPlan(q, n)
	if err != nil {
		return 0, 0, err
	}
	mod, err := poly.NewModulus(new(big.Int).SetUint64(q))
	if err != nil {
		return 0, 0, err
	}
	src := sampling.NewSourceFromUint64(79)
	pairs := 16
	a := make([]uint32, pairs*n)
	b := make([]uint32, pairs*n)
	for i := range a {
		a[i] = uint32(src.Uint64N(q))
		b[i] = uint32(src.Uint64N(q))
	}
	mk := func() (*pim.System, error) {
		cfg := pim.DefaultConfig()
		cfg.NumDPUs = 1
		return pim.NewSystem(cfg)
	}
	sys1, err := mk()
	if err != nil {
		return 0, 0, err
	}
	_, repS, err := kernels.RunVectorPolyMul(sys1, a, b, n, 1, mod.Q)
	if err != nil {
		return 0, 0, err
	}
	sys2, err := mk()
	if err != nil {
		return 0, 0, err
	}
	_, repN, err := kernels.RunNTTPolyMul(sys2, plan, a, b)
	if err != nil {
		return 0, 0, err
	}
	return repS.KernelCycles, repN.KernelCycles, nil
}

// energyFigures measures the energy split of a 128-bit addition shard on
// the simulator and extrapolates to the Fig 1(a) workload: kernel energy
// vs the host-transfer energy the PIM paradigm avoids for resident data.
func energyFigures() (kernelJ, transferJ float64, err error) {
	mod, err := paperModulus109()
	if err != nil {
		return 0, 0, err
	}
	src := sampling.NewSourceFromUint64(80)
	shard := 4096 // coefficients on one DPU
	a := randCoeffVec(src, shard, mod)
	b := randCoeffVec(src, shard, mod)
	cfg := pim.DefaultConfig()
	cfg.NumDPUs = 1
	sys, err := pim.NewSystem(cfg)
	if err != nil {
		return 0, 0, err
	}
	_, rep, err := kernels.RunVectorAdd(sys, a, b, mod.W, mod.Q)
	if err != nil {
		return 0, 0, err
	}
	em := pim.DefaultEnergyModel()
	perShardJ := em.KernelEnergyJoules(rep, &sys.Config)

	// Fig 1(a) at 20480 ciphertexts: 83.9M coefficients total.
	totalCoeffs := float64(20480 * 4096)
	kernelJ = perShardJ * totalCoeffs / float64(shard)
	bytes := int64(totalCoeffs) * int64(mod.W) * 4 * 3 // 2 in + 1 out
	transferJ = em.HostTransferEnergyJoules(bytes)
	return kernelJ, transferJ, nil
}

// karatsubaAblationCycles compares the metered cycle cost of one 128-bit
// polynomial pair (n=64) under Karatsuba vs schoolbook limb
// multiplication, by re-pricing the product mix: Karatsuba charges 9
// mul32 per coefficient product where schoolbook charges 16.
func karatsubaAblationCycles() (karatsuba, schoolbook int64, err error) {
	mod, err := paperModulus109()
	if err != nil {
		return 0, 0, err
	}
	src := sampling.NewSourceFromUint64(78)
	n := 64
	a := randCoeffVec(src, n, mod)
	b := randCoeffVec(src, n, mod)
	cfg := pim.DefaultConfig()
	cfg.NumDPUs = 1
	sys, err := pim.NewSystem(cfg)
	if err != nil {
		return 0, 0, err
	}
	_, rep, err := kernels.RunVectorPolyMul(sys, a, b, n, mod.W, mod.Q)
	if err != nil {
		return 0, 0, err
	}
	karatsuba = rep.KernelCycles

	// Schoolbook variant: every 4×4-limb product costs 16 instead of 9
	// mul32 (and proportionally more adds); re-price the dominant term.
	extraMuls := int64(n*n) * int64(16-9) // products per pair
	mulCost := int64(cfg.Cost.Mul32Instr)
	schoolbook = karatsuba + extraMuls*mulCost
	return karatsuba, schoolbook, nil
}
