package bench

import (
	"encoding/json"
	"fmt"
	"math/big"
	"os"

	"repro/internal/limb32"
	"repro/internal/pim"
	"repro/internal/pim/kernels"
	"repro/internal/pimsched"
	"repro/internal/poly"
	"repro/internal/sampling"
)

// The PIM-at-scale sweep: batched ciphertext addition executed for real
// on the async multi-DPU execution plane (internal/pimsched) across a
// DPU-count sweep up to the paper machine's scale. Unlike the Fig. 1/2
// figures — which extrapolate calibrated cost models — every point here
// runs the actual kernels over actual data on the simulator, checks the
// results bit-for-bit against a host oracle, and reports the metered
// transfer/compute split plus both modeled end-to-end times (pipelined
// makespan vs no-overlap serial), so the benefit of overlapping staging
// with compute is a measured quantity at every scale.

// PIMScaleSchema versions BENCH_pim.json.
const PIMScaleSchema = "repro/pim-scale/v1"

// DefaultPIMScaleDPUs is the tracked DPU sweep: single DPU, one rank,
// and whole-rank scales up to the paper machine (2,524 functional DPUs
// → 39 whole ranks; 2,560 = the 40-rank ceiling).
var DefaultPIMScaleDPUs = []int{1, 64, 256, 1024, 2048, 2560}

// PIMScalePoint is one (ring degree, DPU count) cell of the sweep.
type PIMScalePoint struct {
	N     int `json:"n"`     // ring degree
	Width int `json:"width"` // limb width of the modulus
	DPUs  int `json:"dpus"`  // requested DPU count

	Ranks       int `json:"ranks"` // scheduled topology (whole ranks)
	DPUsPerRank int `json:"dpus_per_rank"`
	Coeffs      int `json:"coeffs"` // coefficients in the workload
	Shards      int `json:"shards"`
	Launches    int `json:"launches"` // rank-granularity LaunchOn calls

	KernelCycles   int64   `json:"kernel_cycles"`
	KernelSeconds  float64 `json:"kernel_seconds"`
	CopyInSeconds  float64 `json:"copy_in_seconds"`
	CopyOutSeconds float64 `json:"copy_out_seconds"`
	BytesIn        int64   `json:"bytes_in"`
	BytesOut       int64   `json:"bytes_out"`

	// The two end-to-end modeled times: the pipelined makespan of the
	// overlap-enabled run and the makespan of the overlap-disabled run
	// (== the serial sum of per-chunk phases). Their ratio is the
	// overlap speedup.
	OverlapSeconds float64 `json:"overlap_seconds"`
	SerialSeconds  float64 `json:"serial_seconds"`
	OverlapSpeedup float64 `json:"overlap_speedup"`

	EnergyKernelJoules   float64 `json:"energy_kernel_joules"`
	EnergyTransferJoules float64 `json:"energy_transfer_joules"`

	// BitIdentical reports both runs matched the host oracle word for
	// word — the sweep's correctness gate.
	BitIdentical bool `json:"bit_identical"`
}

// PIMScaleReport is the BENCH_pim.json payload.
type PIMScaleReport struct {
	Schema  string          `json:"schema"`
	CtPairs int             `json:"ct_pairs"` // ciphertext pairs per workload
	Points  []PIMScalePoint `json:"points"`
}

// paperModulus54 is the 54-bit (width 2) paper modulus.
func paperModulus54() (*poly.Modulus, error) {
	q, _ := new(big.Int).SetString("18014398509481951", 10)
	return poly.NewModulus(q)
}

// pimScaleCase is one ring-degree/modulus row of the sweep, the paper's
// n=2048 (54-bit) and n=4096 (109-bit) operating points.
type pimScaleCase struct {
	n   int
	mod *poly.Modulus
}

func pimScaleCases() ([]pimScaleCase, error) {
	m54, err := paperModulus54()
	if err != nil {
		return nil, err
	}
	m109, err := paperModulus109()
	if err != nil {
		return nil, err
	}
	return []pimScaleCase{{2048, m54}, {4096, m109}}, nil
}

// addOracleVec computes the element-wise modular sum on the host — the
// bit-identity reference for every sweep point.
func addOracleVec(a, b []uint32, w int, q limb32.Nat) []uint32 {
	out := make([]uint32, len(a))
	for c := 0; c < len(a)/w; c++ {
		limb32.AddMod(limb32.Nat(out[c*w:(c+1)*w]),
			limb32.Nat(a[c*w:(c+1)*w]), limb32.Nat(b[c*w:(c+1)*w]), q, nil)
	}
	return out
}

// runPIMScalePoint executes the workload twice on fresh systems —
// overlap on and off — over a whole-rank topology fitting dpus.
func runPIMScalePoint(cs pimScaleCase, dpus, ctPairs int, a, b, want []uint32) (PIMScalePoint, error) {
	topo := pimsched.FitTopology(dpus)
	run := func(overlap bool) ([]uint32, *pimsched.Report, error) {
		cfg := pim.DefaultConfig()
		cfg.NumDPUs = topo.NumDPUs()
		sys, err := pim.NewSystem(cfg)
		if err != nil {
			return nil, nil, err
		}
		sched, err := pimsched.New(sys, topo, overlap)
		if err != nil {
			return nil, nil, err
		}
		return kernels.RunVectorAddSched(sched, a, b, cs.mod.W, cs.mod.Q)
	}
	outOn, repOn, err := run(true)
	if err != nil {
		return PIMScalePoint{}, err
	}
	outOff, repOff, err := run(false)
	if err != nil {
		return PIMScalePoint{}, err
	}
	identical := true
	for i := range want {
		if outOn[i] != want[i] || outOff[i] != want[i] {
			identical = false
			break
		}
	}
	return PIMScalePoint{
		N: cs.n, Width: cs.mod.W, DPUs: dpus,
		Ranks:       topo.Ranks,
		DPUsPerRank: topo.DPUsPerRank,
		Coeffs:      len(a) / cs.mod.W,
		Shards:      repOn.Shards,
		Launches:    repOn.Launches,

		KernelCycles:   repOn.KernelCycles,
		KernelSeconds:  repOn.KernelSeconds,
		CopyInSeconds:  repOn.CopyInSeconds,
		CopyOutSeconds: repOn.CopyOutSeconds,
		BytesIn:        repOn.BytesIn,
		BytesOut:       repOn.BytesOut,

		OverlapSeconds: repOn.MakespanSeconds,
		SerialSeconds:  repOff.MakespanSeconds,
		OverlapSpeedup: repOff.MakespanSeconds / repOn.MakespanSeconds,

		EnergyKernelJoules:   repOn.EnergyKernelJoules,
		EnergyTransferJoules: repOn.EnergyTransferJoules,

		BitIdentical: identical,
	}, nil
}

// MeasurePIMScale runs the DPU sweep: ctPairs ciphertext additions (two
// n-coefficient polynomials each) executed through the async execution
// plane at every DPU count, with overlap on and off. Every point is
// checked bit-for-bit against the host oracle.
func MeasurePIMScale(dpuCounts []int, ctPairs int) (*Figure, *PIMScaleReport, error) {
	if len(dpuCounts) == 0 {
		dpuCounts = DefaultPIMScaleDPUs
	}
	if ctPairs <= 0 {
		ctPairs = 32
	}
	cases, err := pimScaleCases()
	if err != nil {
		return nil, nil, err
	}
	rep := &PIMScaleReport{Schema: PIMScaleSchema, CtPairs: ctPairs}
	fig := &Figure{
		ID:     "pim-scale",
		Title:  fmt.Sprintf("Sharded async execution: %d-ciphertext addition across DPU counts", ctPairs),
		XLabel: "n / DPUs",
		Unit:   "ms",
		PaperNote: "metered on the async execution plane (overlap vs serial); " +
			"every point bit-identical to the host oracle",
	}
	for _, cs := range cases {
		coeffs := 2 * cs.n * ctPairs // 2 polynomials per ciphertext
		src := sampling.NewSourceFromUint64(uint64(9000 + cs.n))
		a := randCoeffVec(src, coeffs, cs.mod)
		b := randCoeffVec(src, coeffs, cs.mod)
		want := addOracleVec(a, b, cs.mod.W, cs.mod.Q)
		for _, dpus := range dpuCounts {
			pt, err := runPIMScalePoint(cs, dpus, ctPairs, a, b, want)
			if err != nil {
				return nil, nil, fmt.Errorf("pim-scale n=%d dpus=%d: %w", cs.n, dpus, err)
			}
			if !pt.BitIdentical {
				return nil, nil, fmt.Errorf("pim-scale n=%d dpus=%d: results diverged from the host oracle", cs.n, dpus)
			}
			rep.Points = append(rep.Points, pt)
			fig.Rows = append(fig.Rows, Row{
				Label: fmt.Sprintf("n=%d dpus=%d", cs.n, dpus),
				Seconds: map[string]float64{
					"pipelined": pt.OverlapSeconds,
					"serial":    pt.SerialSeconds,
					"kernel":    pt.KernelSeconds,
					"transfer":  pt.CopyInSeconds + pt.CopyOutSeconds,
				},
				Annotation: fmt.Sprintf("overlap %.2fx, %d ranks", pt.OverlapSpeedup, pt.Ranks),
			})
		}
	}
	return fig, rep, nil
}

// WritePIMScaleJSON writes the report to path (conventionally
// BENCH_pim.json at the repo root).
func WritePIMScaleJSON(path string, rep *PIMScaleReport) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
