package bench

import (
	"encoding/json"
	"os"
	"sort"
	"time"
)

// Serve perf tracking: the hebfv-loadgen command drives a running
// hebfvd evaluation server and emits BENCH_serve.json — the served
// evaluation plane's latency/throughput trajectory, recorded from the
// PR that introduced it onward.
//
// v1 measures per-op request latency quantiles (p50/p99) and
// throughput under a closed- or open-loop load, with byte-level
// response verification against locally evaluated expectations
// (mismatches must be zero: batching and coalescing on the server are
// scheduling constructs, never approximations).
//
// v2 adds the GC axis: the loadgen snapshots the server's /v1/stats
// memory counters before and after the measured window and reports
// server-side allocations and bytes per op, GC pause tail, and the
// decode-pool recycling counters — the zero-copy serving path's win,
// measured rather than asserted. v2 readers accept v1 reports (the GC
// section is simply absent), so baselines diff across the version
// bump.

// ServePoint is one operation's measured row.
type ServePoint struct {
	Op         string  `json:"op"` // "add" | "mul" | "rotate"
	Count      int     `json:"count"`
	OpsPerSec  float64 `json:"ops_per_sec"`
	P50Micros  int64   `json:"p50_us"`
	P99Micros  int64   `json:"p99_us"`
	MeanMicros int64   `json:"mean_us"`
}

// ServeReport is the BENCH_serve.json schema.
type ServeReport struct {
	Schema      string  `json:"schema"`
	GeneratedAt string  `json:"generated_at"`
	GoMaxProcs  int     `json:"gomaxprocs"`
	Backend     string  `json:"backend"`
	N           int     `json:"n"`
	Mode        string  `json:"mode"` // "closed" | "open"
	Tenants     int     `json:"tenants"`
	Concurrency int     `json:"concurrency"` // workers per tenant (closed loop)
	RatePerSec  float64 `json:"rate_per_sec,omitempty"`
	DurationSec float64 `json:"duration_sec"`

	TotalOps       int     `json:"total_ops"`
	TotalOpsPerSec float64 `json:"total_ops_per_sec"`
	Rejections     int64   `json:"rejections"` // 429/503 backpressure responses
	Checked        bool    `json:"checked"`    // responses compared byte-for-byte
	Mismatches     int64   `json:"mismatches"` // must stay 0

	Points []ServePoint `json:"points"`

	// GC is the schema-v2 server-side GC-pressure axis; nil in v1
	// reports and when the loadgen could not snapshot /v1/stats.
	GC *ServeGCStats `json:"gc,omitempty"`
}

// ServeGCStats is the measured server-side memory churn of one loadgen
// window: /v1/stats memory counters diffed across the run, normalized
// per evaluated op, plus the decode-pool recycling counters at the end
// of the window.
type ServeGCStats struct {
	AllocsPerOp       float64 `json:"allocs_per_op"`       // Δmallocs / ops
	BytesPerOp        float64 `json:"bytes_per_op"`        // Δtotal_alloc / ops
	NumGC             uint32  `json:"num_gc"`              // collections during the window
	GCPauseP99Micros  int64   `json:"gc_pause_p99_us"`     // p99 of the window's pauses
	PoolHitRate       float64 `json:"pool_hit_rate"`       // hits / gets over the window
	PoolInUse         int64   `json:"pool_in_use"`         // live handles at window end (leak balance)
	PoolRetainedBytes int64   `json:"pool_retained_bytes"` // steady-state pooled bytes at window end
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of the latency sample,
// sorting it in place. Zero-length samples yield 0.
func Quantile(sample []time.Duration, q float64) time.Duration {
	if len(sample) == 0 {
		return 0
	}
	sort.Slice(sample, func(i, j int) bool { return sample[i] < sample[j] })
	idx := int(q * float64(len(sample)-1))
	return sample[idx]
}

// ServePointFrom summarizes one op's latency sample (sorted in place)
// over the run's wall-clock duration.
func ServePointFrom(op string, sample []time.Duration, elapsed time.Duration) ServePoint {
	p := ServePoint{Op: op, Count: len(sample)}
	if len(sample) == 0 {
		return p
	}
	var sum time.Duration
	for _, d := range sample {
		sum += d
	}
	p.P50Micros = Quantile(sample, 0.50).Microseconds()
	p.P99Micros = Quantile(sample, 0.99).Microseconds()
	p.MeanMicros = (sum / time.Duration(len(sample))).Microseconds()
	if elapsed > 0 {
		p.OpsPerSec = float64(len(sample)) / elapsed.Seconds()
	}
	return p
}

// WriteServeJSON writes the report to path (the conventional name is
// BENCH_serve.json at the repo root).
func WriteServeJSON(path string, rep *ServeReport) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
