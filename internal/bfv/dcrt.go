package bfv

import (
	"fmt"
	"math/bits"
	"sync"

	"repro/internal/dcrt"
	"repro/internal/poly"
)

// Double-CRT glue: every host-side ring multiplication in the scheme
// (encryption, key generation, decryption phases, plaintext products,
// tensor products and key switching) routes through a shared
// dcrt.Context instead of the O(n²) limb schoolbook. The schoolbook path
// survives in two roles: it is the PIM-simulator cost model (any
// Evaluator with a Meter attached charges the exact schoolbook
// instruction stream), and it is the correctness oracle the double-CRT
// backend is differentially tested against (NewSchoolbookEvaluator).

// dcrtFor returns the process-shared double-CRT context for par. The
// basis is sized for the largest exact integer the evaluation produces:
// tensor-product coefficients reach n·q²/4 on centered lifts (and ring
// products n·q² on canonical ones), key-switching accumulators reach
// D·n·q·2^base. Construction cannot fail for any parameter set
// NewParameters accepts with q below ~2^3500 (basis primes run out only
// then), so failure panics rather than threading errors through
// infallible APIs.
func dcrtFor(par *Parameters) *dcrt.Context {
	par.dcrtOnce.Do(func() {
		logN := bits.TrailingZeros(uint(par.N))
		qb := par.Q.Bits()
		tensor := 2*qb + logN + 1
		keySwitch := qb + int(par.RelinBaseBits) + bits.Len(uint(par.RelinDigits())) + logN + 1
		bound := tensor
		if keySwitch > bound {
			bound = keySwitch
		}
		ctx, err := dcrt.GetContext(par.Q, par.N, bound+1)
		if err != nil {
			panic(fmt.Sprintf("bfv: double-CRT context for %v: %v", par, err))
		}
		par.dcrtCtx = ctx
		// Key-switching accumulators are bounded by keySwitch bits — far
		// below the tensor bound the basis is sized for — so their digit
		// transforms and accumulation run on a basis prefix and extend to
		// the remaining channels in the residue domain (ExtendResidues).
		par.dcrtSubK = ctx.SubBasisFor(keySwitch + 1)
	})
	if par.dcrtCtx == nil {
		// A recovered first-build panic leaves the Once spent; keep the
		// descriptive failure instead of a nil dereference downstream.
		panic(fmt.Sprintf("bfv: double-CRT context for %v unavailable", par))
	}
	return par.dcrtCtx
}

// mulRq multiplies two R_q polynomials on the double-CRT backend.
func mulRq(par *Parameters, a, b *poly.Poly) *poly.Poly {
	return dcrtFor(par).MulRq(a, b)
}

// keyForms caches the double-CRT NTT forms of a key-switching key's
// polynomials, so every Relinearize/ApplyGalois pays only the digit-side
// transforms. The fused 128-bit accumulation kernels multiply the raw key
// slots (no Shoup companions needed — the single Barrett fold per slot
// replaces the per-digit Shoup reductions). Keys are immutable after
// generation/deserialization, and the cache is keyed to the context that
// built it (a key is only ever used with one parameter set).
type keyForms struct {
	once   sync.Once
	k0, k1 []*dcrt.Poly
}

func (kf *keyForms) get(ctx *dcrt.Context, k0, k1 []*poly.Poly) (f0, f1 []*dcrt.Poly) {
	kf.once.Do(func() {
		kf.k0 = make([]*dcrt.Poly, len(k0))
		kf.k1 = make([]*dcrt.Poly, len(k1))
		for i := range k0 {
			kf.k0[i] = ctx.ToRNS(k0[i])
			kf.k1[i] = ctx.ToRNS(k1[i])
		}
	})
	return kf.k0, kf.k1
}

// keySwitchAcc folds Σᵢ digitᵢ·keyᵢ for both key components entirely in
// the NTT domain: one forward transform per digit, one inverse transform
// per component — the double-CRT key-switching inner loop. Digits arrive
// already in double-CRT form (from Context.DigitsToRNS, which decomposes
// with limb shifts and leaves the transforms lazily reduced), are
// consumed and returned to the context's scratch pool, and the whole
// digit sum folds in one fused pass per component (128-bit lazy
// accumulation, one Barrett reduction per slot). The accumulators leave
// through the word-sized fast base conversion — no big.Int and no
// steady-state allocation on the path.
func keySwitchAcc(ctx *dcrt.Context, digits []*dcrt.Poly, k0, k1 []*dcrt.Poly) (s0, s1 *poly.Poly) {
	acc0 := ctx.GetScratch()
	acc1 := ctx.GetScratch()
	defer ctx.PutScratch(acc0)
	defer ctx.PutScratch(acc1)
	ctx.MulPairAllNTT(acc0, acc1, k0, k1, digits)
	for _, dR := range digits {
		ctx.PutScratch(dR)
	}
	return ctx.FromRNS(acc0), ctx.FromRNS(acc1)
}

// keySwitchAccResidues runs the key switch on the sub-basis prefix of
// `limbs` channels — digits arrive with only those channels populated —
// and returns the accumulators as full-basis residue-domain elements:
// inverse transforms over the prefix, then an exact base extension into
// the remaining channels (the accumulator magnitude fits the prefix, see
// dcrtFor). Pooled; the caller owns them. Digits are consumed.
func keySwitchAccResidues(ctx *dcrt.Context, digits []*dcrt.Poly, k0, k1 []*dcrt.Poly, limbs int) (acc0, acc1 *dcrt.Poly) {
	acc0 = ctx.GetScratch()
	acc1 = ctx.GetScratch()
	ctx.MulPairLimbsNTT(acc0, acc1, k0, k1, digits, limbs)
	for _, dR := range digits {
		ctx.PutScratch(dR)
	}
	ctx.IntoResiduesLazyLimbs(acc0, limbs)
	ctx.IntoResiduesLazyLimbs(acc1, limbs)
	ctx.ExtendResidues(acc0, limbs)
	ctx.ExtendResidues(acc1, limbs)
	return acc0, acc1
}

// relinDigits returns ct polynomial p decomposed into double-CRT digit
// form, capped at the number of key digits actually present.
func relinDigits(ctx *dcrt.Context, par *Parameters, p *poly.Poly, keyLen int) []*dcrt.Poly {
	return ctx.DigitsToRNS(p, par.RelinBaseBits, min(par.RelinDigits(), keyLen))
}

// galoisKeySwitchAcc accumulates Σᵢ τ_g(digitᵢ)·keyᵢ for both key
// components into acc0/acc1 (NTT domain, extended basis) — the Galois
// key-switching inner loop under the decompose-then-permute convention.
// The automorphism is the slot gather idx (dcrt.GaloisNTTIndices), fused
// into the accumulation so permuted digits are never materialized, the
// whole digit sum folds in one 128-bit fused pass per component, and
// digits are NOT consumed: a hoisted rotation reuses one decomposition
// across many Galois elements, so ownership stays with the caller.
func galoisKeySwitchAcc(ctx *dcrt.Context, acc0, acc1 *dcrt.Poly, digits []*dcrt.Poly, idx []uint32, k0, k1 []*dcrt.Poly) {
	ctx.GaloisAccAllNTT(acc0, acc1, k0, k1, digits, idx)
}

// keySwitchAccLegacy is the PR-1 key-switching path: big.Int digit
// decomposition, per-digit ToRNS, and big.Int CRT recombination on the
// way out. Kept behind Evaluator.SetBigIntRescale so the perf-tracking
// benchmarks can measure the RNS-native path against it. Digits enter
// through the centered decomposition: for plain relinearization digits
// (small canonical values) centering is the identity, and for permuted
// Galois digits it maps the mod-q-negated coefficients q−v to the small
// integers −v, keeping the exact accumulator inside the basis bound.
func keySwitchAccLegacy(ctx *dcrt.Context, digits []*poly.Poly, k0, k1 []*dcrt.Poly) (s0, s1 *poly.Poly) {
	acc0 := ctx.NewPoly()
	acc1 := ctx.NewPoly()
	for i, d := range digits {
		if i >= len(k0) {
			break
		}
		dR := ctx.ToRNSCentered(d)
		ctx.MulAddNTT(acc0, k0[i], dR)
		ctx.MulAddNTT(acc1, k1[i], dR)
	}
	return ctx.FromRNSRecombine(acc0), ctx.FromRNSRecombine(acc1)
}
