package bfv

import (
	"errors"
	"math/big"
	"sync"

	"repro/internal/limb32"
	"repro/internal/poly"
)

// Evaluator performs homomorphic operations on ciphertexts. It is the
// functional counterpart of the paper's PIM kernels: EvalAdd is
// coefficient-wise polynomial addition, EvalMul is the tensor product
// built from polynomial multiplications and additions (§3).
//
// Multiplicative operations run on one of two backends. The default is
// the double-CRT (RNS + NTT) backend — O(n log n) per limb, the
// optimization the paper's SEAL baseline owes its multiplication lead to
// and defers to future work for PIM (§3, §4.1). Attaching a limb32.Meter
// switches the evaluator to the metered O(n²) schoolbook path, which
// charges every limb operation: that path is the PIM-simulator cost
// model and stays bit-identical to the double-CRT results, so the two
// backends differentially validate each other.
type Evaluator struct {
	params     *Parameters
	rlk        *RelinKey
	schoolbook bool
	bigRescale bool
	Meter      limb32.Meter

	scratch sync.Pool // *evScratch, big.Int workspace for the legacy paths
}

// evScratch is the reusable big.Int workspace of the schoolbook and
// legacy-rescale paths, pooled so concurrent evaluations on one
// Evaluator stop thrashing the GC with per-coefficient allocations.
type evScratch struct {
	num, m, tBig *big.Int
}

func (ev *Evaluator) getScratch() *evScratch {
	if s, ok := ev.scratch.Get().(*evScratch); ok {
		return s
	}
	return &evScratch{
		num:  new(big.Int),
		m:    new(big.Int),
		tBig: new(big.Int).SetUint64(ev.params.T),
	}
}

func (ev *Evaluator) putScratch(s *evScratch) { ev.scratch.Put(s) }

// SetBigIntRescale pins the double-CRT backend to the PR-1 evaluation
// path: tensor rescaling through per-coefficient big.Int CRT
// recombination and division, and key switching through big.Int digit
// decomposition. It exists for the perf-tracking benchmarks (the
// "round-trip path" rows of BENCH_dcrt.json) and changes no results —
// both paths are bit-identical.
func (ev *Evaluator) SetBigIntRescale(on bool) { ev.bigRescale = on }

// useRNSNative reports whether multiplicative operations run the fully
// RNS-native path: word-sized scale-and-round, limb-shift digit
// decomposition, and fast base conversion out of the extended basis.
func (ev *Evaluator) useRNSNative() bool {
	return ev.useDCRT() && !ev.bigRescale && dcrtFor(ev.params).RNSNative()
}

// NewEvaluator returns an evaluator on the double-CRT backend; rlk may be
// nil if Relinearize and Mul (which relinearizes by default) are not
// used.
func NewEvaluator(params *Parameters, rlk *RelinKey) *Evaluator {
	return &Evaluator{params: params, rlk: rlk}
}

// NewSchoolbookEvaluator returns an evaluator pinned to the O(n²)
// schoolbook backend even without a Meter — the correctness oracle the
// double-CRT backend is differentially tested against.
func NewSchoolbookEvaluator(params *Parameters, rlk *RelinKey) *Evaluator {
	return &Evaluator{params: params, rlk: rlk, schoolbook: true}
}

// useDCRT reports whether this evaluator runs the double-CRT backend: a
// metered evaluator always runs the schoolbook path, whose instruction
// stream is the quantity the meter exists to count.
func (ev *Evaluator) useDCRT() bool { return ev.Meter == nil && !ev.schoolbook }

// Add returns ct0 + ct1 (component-wise in R_q). Operands of different
// degrees are supported; the missing components are treated as zero.
func (ev *Evaluator) Add(ct0, ct1 *Ciphertext) *Ciphertext {
	par := ev.params
	n := len(ct0.Polys)
	if len(ct1.Polys) > n {
		n = len(ct1.Polys)
	}
	out := &Ciphertext{Polys: make([]*poly.Poly, n)}
	for i := 0; i < n; i++ {
		switch {
		case i >= len(ct0.Polys):
			out.Polys[i] = ct1.Polys[i].Clone()
		case i >= len(ct1.Polys):
			out.Polys[i] = ct0.Polys[i].Clone()
		default:
			p := poly.NewPoly(par.N, par.Q.W)
			poly.Add(p, ct0.Polys[i], ct1.Polys[i], par.Q, ev.Meter)
			out.Polys[i] = p
		}
	}
	return out
}

// Sub returns ct0 - ct1.
func (ev *Evaluator) Sub(ct0, ct1 *Ciphertext) *Ciphertext {
	return ev.Add(ct0, ev.Neg(ct1))
}

// Neg returns -ct.
func (ev *Evaluator) Neg(ct *Ciphertext) *Ciphertext {
	par := ev.params
	out := &Ciphertext{Polys: make([]*poly.Poly, len(ct.Polys))}
	for i, p := range ct.Polys {
		np := poly.NewPoly(par.N, par.Q.W)
		poly.Neg(np, p, par.Q, ev.Meter)
		out.Polys[i] = np
	}
	return out
}

// AddPlain returns ct + Δ·m for plaintext m.
func (ev *Evaluator) AddPlain(ct *Ciphertext, pt *Plaintext) *Ciphertext {
	par := ev.params
	out := ct.Clone()
	poly.Add(out.Polys[0], out.Polys[0], deltaPoly(par, pt), par.Q, ev.Meter)
	return out
}

// MulPlain returns ct · m for plaintext m (each component multiplied by
// the plaintext polynomial, no Δ scaling — standard BFV plaintext mul).
func (ev *Evaluator) MulPlain(ct *Ciphertext, pt *Plaintext) *Ciphertext {
	par := ev.params
	coeffs := make([]*big.Int, par.N)
	for i := range coeffs {
		coeffs[i] = new(big.Int).SetUint64(pt.Coeffs[i] % par.T)
	}
	mp := poly.FromBigCoeffs(coeffs, par.Q)
	out := &Ciphertext{Polys: make([]*poly.Poly, len(ct.Polys))}
	if ev.useDCRT() {
		ctx := dcrtFor(par)
		mpR := ctx.ToRNS(mp)
		for i, p := range ct.Polys {
			pR := ctx.ToRNS(p)
			ctx.MulNTT(pR, pR, mpR)
			out.Polys[i] = ctx.FromRNS(pR)
		}
		return out
	}
	for i, p := range ct.Polys {
		np := poly.NewPoly(par.N, par.Q.W)
		poly.MulNegacyclic(np, p, mp, par.Q, ev.Meter)
		out.Polys[i] = np
	}
	return out
}

// mulZ multiplies two centered-lift coefficient vectors negacyclically
// over the integers (no modular reduction): the BFV tensor product must be
// computed over Z before t/q rescaling. The result values share one
// backing slice — a single allocation instead of n.
func mulZ(a, b []*big.Int) []*big.Int {
	n := len(a)
	vals := make([]big.Int, n)
	out := make([]*big.Int, n)
	for i := range out {
		out[i] = &vals[i]
	}
	mulZAcc(out, a, b)
	return out
}

// mulZAcc accumulates the negacyclic integer product of a and b into out.
func mulZAcc(out []*big.Int, a, b []*big.Int) {
	n := len(a)
	t := new(big.Int)
	for i := 0; i < n; i++ {
		if a[i].Sign() == 0 {
			continue
		}
		for j := 0; j < n; j++ {
			if b[j].Sign() == 0 {
				continue
			}
			t.Mul(a[i], b[j])
			if i+j < n {
				out[i+j].Add(out[i+j], t)
			} else {
				out[i+j-n].Sub(out[i+j-n], t)
			}
		}
	}
}

// scaleRound maps each coefficient c to round(t·c/q) mod q and packs the
// result into a polynomial, reusing pooled big.Int scratch so the
// schoolbook (PIM cost model) and legacy-rescale paths allocate only the
// result polynomial.
func (ev *Evaluator) scaleRound(coeffs []*big.Int) *poly.Poly {
	par := ev.params
	s := ev.getScratch()
	defer ev.putScratch(s)
	out := poly.NewPoly(len(coeffs), par.Q.W)
	for i, c := range coeffs {
		s.num.Mul(c, s.tBig)
		divRoundInto(s.m, s.num, par.Q.Half, par.Q.QBig)
		s.m.Mod(s.m, par.Q.QBig)
		out.Coeff(i).SetBig(s.m)
	}
	return out
}

// MulNoRelin returns the degree-2 tensor product of two degree-1
// ciphertexts:
//
//	d0 = ⌊t·c0·c0'/q⌉, d1 = ⌊t·(c0·c1' + c1·c0')/q⌉, d2 = ⌊t·c1·c1'/q⌉
func (ev *Evaluator) MulNoRelin(ct0, ct1 *Ciphertext) (*Ciphertext, error) {
	if ct0.Degree() != 1 || ct1.Degree() != 1 {
		return nil, errors.New("bfv: MulNoRelin requires degree-1 operands")
	}
	par := ev.params
	if ev.useDCRT() {
		// Tensor product in the extended basis: the centered NTT forms of
		// the operands come from the per-ciphertext cache (chained and
		// squared operands pay no repeat transforms), the three tensor
		// components are pointwise products, and rescaling runs RNS-native
		// — word-sized base conversion and exact division, no big.Int.
		ctx := dcrtFor(par)
		ra0 := ct0.rnsNTT(ctx, 0)
		ra1 := ct0.rnsNTT(ctx, 1)
		rb0 := ct1.rnsNTT(ctx, 0)
		rb1 := ct1.rnsNTT(ctx, 1)

		rd0 := ctx.GetScratch()
		defer ctx.PutScratch(rd0)
		ctx.MulNTT(rd0, ra0, rb0)
		rd1 := ctx.GetScratch()
		defer ctx.PutScratch(rd1)
		ctx.MulNTT(rd1, ra0, rb1)
		ctx.MulAddNTT(rd1, ra1, rb0)
		rd2 := ctx.GetScratch()
		defer ctx.PutScratch(rd2)
		ctx.MulNTT(rd2, ra1, rb1)

		if ev.useRNSNative() {
			sr := ctx.ScaleRounder(par.T)
			return &Ciphertext{Polys: []*poly.Poly{
				sr.ScaleRound(rd0), sr.ScaleRound(rd1), sr.ScaleRound(rd2),
			}}, nil
		}
		// PR-1 round-trip path: exact integer coefficients through big.Int
		// CRT recombination, then the big.Int t/q rounding.
		return &Ciphertext{Polys: []*poly.Poly{
			ev.scaleRound(ctx.FromRNSBig(rd0)),
			ev.scaleRound(ctx.FromRNSBig(rd1)),
			ev.scaleRound(ctx.FromRNSBig(rd2)),
		}}, nil
	}
	a0 := ct0.Polys[0].ToCenteredCoeffs(par.Q)
	a1 := ct0.Polys[1].ToCenteredCoeffs(par.Q)
	b0 := ct1.Polys[0].ToCenteredCoeffs(par.Q)
	b1 := ct1.Polys[1].ToCenteredCoeffs(par.Q)

	d0 := mulZ(a0, b0)
	d2 := mulZ(a1, b1)
	d1 := mulZ(a0, b1)
	for i, c := range mulZ(a1, b0) {
		d1[i].Add(d1[i], c)
	}

	// Charge the meter for the four underlying R_q polynomial products the
	// kernel performs (the big.Int path is a host-side exactness detour).
	if ev.Meter != nil {
		chargePolyMul(ev.Meter, par, 4)
	}

	return &Ciphertext{Polys: []*poly.Poly{
		ev.scaleRound(d0), ev.scaleRound(d1), ev.scaleRound(d2),
	}}, nil
}

// Relinearize reduces a degree-2 ciphertext back to degree 1 using the
// relinearization key: c2 is decomposed in base 2^BaseBits and folded into
// (c0, c1) via the evaluation keys.
func (ev *Evaluator) Relinearize(ct *Ciphertext) (*Ciphertext, error) {
	if ct.Degree() == 1 {
		return ct.Clone(), nil
	}
	if ct.Degree() != 2 {
		return nil, errors.New("bfv: Relinearize supports degree-2 ciphertexts")
	}
	if ev.rlk == nil {
		return nil, errors.New("bfv: evaluator has no relinearization key")
	}
	par := ev.params
	c0 := ct.Polys[0].Clone()
	c1 := ct.Polys[1].Clone()

	if ev.useDCRT() {
		ctx := dcrtFor(par)
		k0, k1 := ev.rlk.forms.get(ctx, ev.rlk.K0, ev.rlk.K1)
		var s0, s1 *poly.Poly
		if ev.useRNSNative() {
			// Digit decomposition by limb shifts, accumulation in the NTT
			// domain, fast base conversion out — the big.Int-free path.
			s0, s1 = keySwitchAcc(ctx, relinDigits(ctx, par, ct.Polys[2], len(k0)), k0, k1)
		} else {
			s0, s1 = keySwitchAccLegacy(ctx, decomposePoly(ct.Polys[2], par), k0, k1)
		}
		poly.Add(c0, c0, s0, par.Q, nil)
		poly.Add(c1, c1, s1, par.Q, nil)
		return &Ciphertext{Polys: []*poly.Poly{c0, c1}}, nil
	}

	digits := decomposePoly(ct.Polys[2], par)
	tmp := poly.NewPoly(par.N, par.Q.W)
	for i, d := range digits {
		if i >= len(ev.rlk.K0) {
			break
		}
		poly.MulNegacyclic(tmp, ev.rlk.K0[i], d, par.Q, ev.Meter)
		poly.Add(c0, c0, tmp, par.Q, ev.Meter)
		poly.MulNegacyclic(tmp, ev.rlk.K1[i], d, par.Q, ev.Meter)
		poly.Add(c1, c1, tmp, par.Q, ev.Meter)
	}
	return &Ciphertext{Polys: []*poly.Poly{c0, c1}}, nil
}

// Mul returns the relinearized product of two degree-1 ciphertexts. On
// the RNS-native backend the tensor, rescale and key switch fuse through
// the deferred-product pipeline (see mul_ntt.go): the rescaled components
// and the key-switching accumulators sum as exact integers in the
// extended basis and leave through a single base conversion each — one
// conversion and one packing pass fewer per component than rescaling and
// key-switching separately, with bit-identical results.
func (ev *Evaluator) Mul(ct0, ct1 *Ciphertext) (*Ciphertext, error) {
	if ev.CanDeferMuls() && ct0.Degree() == 1 && ct1.Degree() == 1 {
		res0, res1 := ev.mulDeferred(ct0, ct1)
		defer dcrtFor(ev.params).PutScratch(res0)
		defer dcrtFor(ev.params).PutScratch(res1)
		ctx := dcrtFor(ev.params)
		return &Ciphertext{Polys: []*poly.Poly{
			ctx.FromResidues(res0), ctx.FromResidues(res1),
		}}, nil
	}
	d2, err := ev.MulNoRelin(ct0, ct1)
	if err != nil {
		return nil, err
	}
	return ev.Relinearize(d2)
}

// Square returns the relinearized square of a ciphertext — the operation
// the paper's variance workload is built on.
func (ev *Evaluator) Square(ct *Ciphertext) (*Ciphertext, error) {
	return ev.Mul(ct, ct)
}

// ScaleRoundCoeffs maps integer coefficients c to ⌊t·c/q⌉ mod q — the
// BFV tensor rescaling step, exported for backends that compute the
// tensor products on an accelerator and finish the scaling on the host.
func ScaleRoundCoeffs(params *Parameters, coeffs []*big.Int) *poly.Poly {
	ev := Evaluator{params: params}
	return ev.scaleRound(coeffs)
}

// DecomposeForRelin splits a ciphertext polynomial into its base-
// 2^RelinBaseBits digit polynomials, exported for accelerator backends.
func DecomposeForRelin(p *poly.Poly, params *Parameters) []*poly.Poly {
	return decomposePoly(p, params)
}

// decomposePoly splits p into base-2^RelinBaseBits digit polynomials:
// p = Σ 2^{i·base}·digit_i with digit coefficients < 2^base.
func decomposePoly(p *poly.Poly, par *Parameters) []*poly.Poly {
	digits := par.RelinDigits()
	base := par.RelinBaseBits
	out := make([]*poly.Poly, digits)
	coeffs := p.ToBigCoeffs()
	mask := new(big.Int).Sub(new(big.Int).Lsh(big.NewInt(1), base), big.NewInt(1))
	work := make([]*big.Int, len(coeffs))
	for i, c := range coeffs {
		work[i] = new(big.Int).Set(c)
	}
	for d := 0; d < digits; d++ {
		dc := make([]*big.Int, len(coeffs))
		for i := range work {
			dc[i] = new(big.Int).And(work[i], mask)
			work[i].Rsh(work[i], base)
		}
		out[d] = poly.FromBigCoeffs(dc, par.Q)
	}
	return out
}

// chargePolyMul charges the meter with the instruction stream of `count`
// schoolbook negacyclic polynomial multiplications in R_q, matching what
// poly.MulNegacyclic would charge (n² coefficient multiplies plus the
// final per-coefficient reductions). Used where the host computes via
// big.Int for exactness but the device would run the limb kernel.
func chargePolyMul(m limb32.Meter, par *Parameters, count int) {
	n, w := par.N, par.Q.W
	pairs := n * n * count
	m.Tick(limb32.OpMul32, pairs*limb32.MulCost(w))
	m.Tick(limb32.OpLoad, pairs*4*w)
	m.Tick(limb32.OpAddC, pairs*2*w)
	m.Tick(limb32.OpStore, pairs*2*w)
	m.Tick(limb32.OpLoop, pairs)
}
