package bfv

import (
	"fmt"

	"repro/internal/poly"
)

// Plaintext is a polynomial with coefficients in [0, T).
type Plaintext struct {
	Coeffs []uint64 // length N, values < T
}

// NewPlaintext returns an all-zero plaintext for the parameter set.
func NewPlaintext(params *Parameters) *Plaintext {
	return &Plaintext{Coeffs: make([]uint64, params.N)}
}

// Ciphertext is a BFV ciphertext: a list of polynomials in R_q. Fresh
// ciphertexts have degree 1 (two polynomials); an unrelinearized product
// has degree 2 (three polynomials).
type Ciphertext struct {
	Polys []*poly.Poly
}

// Degree returns len(Polys) - 1.
func (ct *Ciphertext) Degree() int { return len(ct.Polys) - 1 }

// Clone returns a deep copy.
func (ct *Ciphertext) Clone() *Ciphertext {
	out := &Ciphertext{Polys: make([]*poly.Poly, len(ct.Polys))}
	for i, p := range ct.Polys {
		out.Polys[i] = p.Clone()
	}
	return out
}

// Equal reports bitwise equality of two ciphertexts.
func (ct *Ciphertext) Equal(o *Ciphertext) bool {
	if len(ct.Polys) != len(o.Polys) {
		return false
	}
	for i := range ct.Polys {
		if !ct.Polys[i].Equal(o.Polys[i]) {
			return false
		}
	}
	return true
}

func (ct *Ciphertext) String() string {
	if len(ct.Polys) == 0 {
		return "Ciphertext{empty}"
	}
	return fmt.Sprintf("Ciphertext{degree=%d, N=%d, W=%d}",
		ct.Degree(), ct.Polys[0].N, ct.Polys[0].W)
}
