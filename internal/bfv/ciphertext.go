package bfv

import (
	"fmt"
	"sync"

	"repro/internal/dcrt"
	"repro/internal/poly"
)

// Plaintext is a polynomial with coefficients in [0, T).
type Plaintext struct {
	Coeffs []uint64 // length N, values < T
}

// NewPlaintext returns an all-zero plaintext for the parameter set.
func NewPlaintext(params *Parameters) *Plaintext {
	return &Plaintext{Coeffs: make([]uint64, params.N)}
}

// Ciphertext is a BFV ciphertext: a list of polynomials in R_q. Fresh
// ciphertexts have degree 1 (two polynomials); an unrelinearized product
// has degree 2 (three polynomials).
//
// Ciphertexts evaluated on the double-CRT backend are NTT-resident: the
// centered double-CRT form of each component is built lazily on first
// use and cached, so chained Mul/Rotate (and squarings, which consume
// the same component twice) never repeat the decompose + forward-NTT
// round trip. The cache assumes Polys are immutable once the ciphertext
// has been evaluated — every evaluator operation returns a fresh
// ciphertext, and Clone (the mutate-after-copy escape hatch) drops the
// cache.
type Ciphertext struct {
	Polys []*poly.Poly

	ntt nttCache
}

// nttCache lazily holds the NTT-resident centered double-CRT forms of a
// ciphertext's components for one dcrt context. Each form remembers the
// polynomial it was built from, so swapping a component in ct.Polys
// invalidates its entry structurally; only in-place mutation of a
// component's limbs remains covered by the immutability convention.
//
// Components that keep being multiplied (chained products consuming the
// same operand, shared weights in a dot product) additionally cache the
// per-slot Shoup companions of their form: the companions cost a
// hardware division per slot to build, so they are only constructed once
// a component's form has been requested for a second multiplication —
// single-use operands never pay for them.
type nttCache struct {
	mu     sync.Mutex
	ctx    *dcrt.Context
	forms  []*dcrt.Poly
	srcs   []*poly.Poly
	shoups []*dcrt.Poly
	uses   []int
}

// rnsNTT returns the cached centered double-CRT form of component i,
// building it on first use. Safe for concurrent use; a concurrent
// builder of another component of the same ciphertext serializes behind
// the per-ciphertext lock.
func (ct *Ciphertext) rnsNTT(ctx *dcrt.Context, i int) *dcrt.Poly {
	f, _ := ct.rnsNTTUse(ctx, i, false)
	return f
}

// rnsNTTShoup is rnsNTT returning the form's Shoup companions as well —
// nil until the component has been requested at least twice, after which
// they are built and cached (see nttCache).
func (ct *Ciphertext) rnsNTTShoup(ctx *dcrt.Context, i int) (form, shoup *dcrt.Poly) {
	return ct.rnsNTTUse(ctx, i, true)
}

func (ct *Ciphertext) rnsNTTUse(ctx *dcrt.Context, i int, wantShoup bool) (form, shoup *dcrt.Poly) {
	ct.ntt.mu.Lock()
	defer ct.ntt.mu.Unlock()
	if ct.ntt.ctx != ctx || len(ct.ntt.forms) != len(ct.Polys) {
		ct.ntt.ctx = ctx
		ct.ntt.forms = make([]*dcrt.Poly, len(ct.Polys))
		ct.ntt.srcs = make([]*poly.Poly, len(ct.Polys))
		ct.ntt.shoups = make([]*dcrt.Poly, len(ct.Polys))
		ct.ntt.uses = make([]int, len(ct.Polys))
	}
	if ct.ntt.forms[i] == nil || ct.ntt.srcs[i] != ct.Polys[i] {
		ct.ntt.forms[i] = ctx.ToRNSCentered(ct.Polys[i])
		ct.ntt.srcs[i] = ct.Polys[i]
		ct.ntt.shoups[i] = nil
		ct.ntt.uses[i] = 0
	}
	if wantShoup {
		ct.ntt.uses[i]++
		if ct.ntt.shoups[i] == nil && ct.ntt.uses[i] >= 2 {
			ct.ntt.shoups[i] = ctx.ShoupConsts(ct.ntt.forms[i])
		}
	}
	return ct.ntt.forms[i], ct.ntt.shoups[i]
}

// Degree returns len(Polys) - 1.
func (ct *Ciphertext) Degree() int { return len(ct.Polys) - 1 }

// Clone returns a deep copy.
func (ct *Ciphertext) Clone() *Ciphertext {
	out := &Ciphertext{Polys: make([]*poly.Poly, len(ct.Polys))}
	for i, p := range ct.Polys {
		out.Polys[i] = p.Clone()
	}
	return out
}

// Equal reports bitwise equality of two ciphertexts.
func (ct *Ciphertext) Equal(o *Ciphertext) bool {
	if len(ct.Polys) != len(o.Polys) {
		return false
	}
	for i := range ct.Polys {
		if !ct.Polys[i].Equal(o.Polys[i]) {
			return false
		}
	}
	return true
}

func (ct *Ciphertext) String() string {
	if len(ct.Polys) == 0 {
		return "Ciphertext{empty}"
	}
	return fmt.Sprintf("Ciphertext{degree=%d, N=%d, W=%d}",
		ct.Degree(), ct.Polys[0].N, ct.Polys[0].W)
}
