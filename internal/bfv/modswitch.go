package bfv

import (
	"errors"
	"math/big"

	"repro/internal/poly"
)

// Modulus switching: rescale a ciphertext from modulus q to a smaller
// modulus q', dividing the noise by ~q/q' at the cost of a small rounding
// term. In the paper's deployment this shrinks result ciphertexts before
// the DPU→host transfer — directly attacking the §2 data-movement cost —
// and is the standard noise-management lever of BFV implementations.

// ModSwitch maps ct from params to target (same N and T, smaller q):
// each coefficient becomes ⌊q'/q · c⌉ adjusted so the scaled value stays
// ≡ c (mod t)-consistent for BFV decryption.
func ModSwitch(ct *Ciphertext, params, target *Parameters) (*Ciphertext, error) {
	if params.N != target.N || params.T != target.T {
		return nil, errors.New("bfv: ModSwitch requires matching N and t")
	}
	if target.Q.QBig.Cmp(params.Q.QBig) >= 0 {
		return nil, errors.New("bfv: ModSwitch target modulus must be smaller")
	}
	out := &Ciphertext{Polys: make([]*poly.Poly, len(ct.Polys))}
	for i, p := range ct.Polys {
		coeffs := p.ToCenteredCoeffs(params.Q)
		scaled := make([]*big.Int, len(coeffs))
		for j, c := range coeffs {
			num := new(big.Int).Mul(c, target.Q.QBig)
			scaled[j] = divRound(num, params.Q.QBig)
		}
		out.Polys[i] = poly.FromBigCoeffs(scaled, target.Q)
	}
	return out, nil
}

// ModSwitchSecretKey maps a secret key to the target parameters (the
// ternary secret is modulus-independent; only its representation
// changes).
func ModSwitchSecretKey(sk *SecretKey, params, target *Parameters) (*SecretKey, error) {
	if params.N != target.N {
		return nil, errors.New("bfv: ModSwitchSecretKey requires matching N")
	}
	coeffs := sk.S.ToCenteredCoeffs(params.Q)
	return &SecretKey{S: poly.FromBigCoeffs(coeffs, target.Q)}, nil
}
