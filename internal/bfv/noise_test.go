package bfv

import "testing"

// TestNoiseModelIsConservative: the predicted budget must never exceed
// the measured budget (predictions are worst-case bounds).
func TestNoiseModelIsConservative(t *testing.T) {
	c := newCtx(t, ParamsToy(), 50, true)
	nm := NewNoiseModel(c.params)

	ct, _ := c.enc.EncryptValue(5)
	measuredFresh := c.dec.NoiseBudget(ct)
	predictedFresh := nm.FreshBudget()
	if predictedFresh > measuredFresh {
		t.Errorf("fresh: predicted budget %d exceeds measured %d", predictedFresh, measuredFresh)
	}
	if predictedFresh <= 0 {
		t.Errorf("fresh predicted budget %d should be positive for toy params", predictedFresh)
	}

	// After one multiplication.
	prod, err := c.eval.Mul(ct, ct)
	if err != nil {
		t.Fatal(err)
	}
	measuredMul := c.dec.NoiseBudget(prod)
	fresh := nm.FreshNoiseLog2()
	predictedMul := nm.BudgetForNoise(nm.MulNoiseLog2(fresh, fresh))
	if predictedMul > measuredMul {
		t.Errorf("mul: predicted budget %d exceeds measured %d", predictedMul, measuredMul)
	}

	// After an addition chain of 16.
	acc := ct
	for i := 0; i < 15; i++ {
		acc = c.eval.Add(acc, ct)
	}
	measuredAdd := c.dec.NoiseBudget(acc)
	noise := fresh
	for i := 0; i < 15; i++ {
		noise = nm.AddNoiseLog2(noise, fresh)
	}
	predictedAdd := nm.BudgetForNoise(noise)
	if predictedAdd > measuredAdd {
		t.Errorf("adds: predicted budget %d exceeds measured %d", predictedAdd, measuredAdd)
	}
}

func TestNoiseModelPresets(t *testing.T) {
	// Sec27 supports many additions but no multiplication; Sec54 and
	// Sec109 support at least one multiplication — exactly the paper's
	// usage of the three levels.
	if got := NewNoiseModel(ParamsSec27()).SupportedMulDepth(); got != 0 {
		t.Errorf("sec27 mul depth = %d, want 0", got)
	}
	if got := NewNoiseModel(ParamsSec27()).SupportedAdditions(); got < 64 {
		t.Errorf("sec27 supported additions = %d, want >= 64", got)
	}
	if got := NewNoiseModel(ParamsSec54()).SupportedMulDepth(); got < 1 {
		t.Errorf("sec54 mul depth = %d, want >= 1", got)
	}
	if got := NewNoiseModel(ParamsSec109()).SupportedMulDepth(); got < 2 {
		t.Errorf("sec109 mul depth = %d, want >= 2", got)
	}
}

func TestNoiseModelMonotonic(t *testing.T) {
	nm := NewNoiseModel(ParamsSec109())
	f := nm.FreshNoiseLog2()
	if nm.AddNoiseLog2(f, f) <= f {
		t.Error("addition must not shrink noise")
	}
	if nm.MulNoiseLog2(f, f) <= nm.AddNoiseLog2(f, f) {
		t.Error("multiplication must grow noise faster than addition")
	}
	if nm.BudgetForNoise(f) <= nm.BudgetForNoise(nm.MulNoiseLog2(f, f)) {
		t.Error("budget must shrink as noise grows")
	}
}
