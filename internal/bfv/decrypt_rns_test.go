package bfv

import (
	"sync"
	"testing"

	"repro/internal/poly"
)

// RNS-native decryption differential tests: the word-sized phase +
// RoundModT path must reproduce the big.Int oracle bit for bit, across
// parameter sets, ciphertext degrees, and evaluated (noisy) inputs.

func assertDecryptMatch(t *testing.T, d *Decryptor, ct *Ciphertext, label string) {
	t.Helper()
	got, ok := d.decryptRNS(ct)
	if !ok {
		t.Fatalf("%s: decryptRNS declined a supported ciphertext", label)
	}
	want := d.decryptBig(ct)
	for i := range want.Coeffs {
		if got.Coeffs[i] != want.Coeffs[i] {
			t.Fatalf("%s: RNS decrypt differs from big.Int oracle at coefficient %d: %d != %d",
				label, i, got.Coeffs[i], want.Coeffs[i])
		}
	}
}

func runDecryptRNSDifferential(t *testing.T, params *Parameters, seed uint64) {
	t.Helper()
	c := newCtx(t, params, seed, true)
	gk := genGaloisKeys(t, params, c.sk, seed+1, 1)[0]

	pt := NewPlaintext(params)
	for i := range pt.Coeffs {
		pt.Coeffs[i] = uint64((7*i + 1) % int(params.T))
	}
	ct, err := c.enc.Encrypt(pt)
	if err != nil {
		t.Fatal(err)
	}
	assertDecryptMatch(t, c.dec, ct, "fresh degree-1")

	rot, err := c.eval.ApplyGalois(ct, gk)
	if err != nil {
		t.Fatal(err)
	}
	assertDecryptMatch(t, c.dec, rot, "rotated")

	d2, err := c.eval.MulNoRelin(ct, ct)
	if err != nil {
		t.Fatal(err)
	}
	assertDecryptMatch(t, c.dec, d2, "degree-2 (unrelinearized)")

	rel, err := c.eval.Relinearize(d2)
	if err != nil {
		t.Fatal(err)
	}
	assertDecryptMatch(t, c.dec, rel, "relinearized product")
}

func TestDecryptRNSSec27(t *testing.T)  { runDecryptRNSDifferential(t, ParamsSec27(), 401) }
func TestDecryptRNSSec54(t *testing.T)  { runDecryptRNSDifferential(t, ParamsSec54(), 402) }
func TestDecryptRNSSec109(t *testing.T) { runDecryptRNSDifferential(t, ParamsSec109(), 403) }
func TestDecryptRNSToy(t *testing.T)    { runDecryptRNSDifferential(t, ParamsToy(), 404) }

// TestDecryptRNSBatching covers the large plaintext modulus (t=65537):
// the widest t·n² window the paper's parameter sets produce.
func TestDecryptRNSBatching(t *testing.T) {
	runDecryptRNSDifferential(t, ParamsBatching(), 405)
}

// TestDecryptRNSDegree3Fallback: degree-3 ciphertexts are outside the
// RNS-native window and fall back to the big.Int path, still decrypting
// correctly.
func TestDecryptRNSDegree3Fallback(t *testing.T) {
	params := ParamsToy()
	c := newCtx(t, params, 406, false)
	ct, err := c.enc.EncryptValue(2)
	if err != nil {
		t.Fatal(err)
	}
	// Pad with zero components: the phase (and hence the plaintext) is
	// unchanged, but the degree exceeds the native gate.
	d3 := &Ciphertext{Polys: []*poly.Poly{
		ct.Polys[0], ct.Polys[1],
		poly.NewPoly(params.N, params.Q.W), poly.NewPoly(params.N, params.Q.W),
	}}
	if _, ok := c.dec.decryptRNS(d3); ok {
		t.Fatal("degree-3 ciphertext accepted by the RNS-native window")
	}
	if got := c.dec.DecryptValue(d3); got != 2 {
		t.Fatalf("degree-3 fallback decrypted to %d, want 2", got)
	}
}

// TestDecryptRNSParallel decrypts concurrently through one shared
// Decryptor — under -race, the thread-safety proof of the cached secret
// forms and pooled rounding scratch.
func TestDecryptRNSParallel(t *testing.T) {
	params := ParamsSec27()
	c := newCtx(t, params, 407, false)
	cts := make([]*Ciphertext, 4)
	want := make([]uint64, len(cts))
	for i := range cts {
		ct, err := c.enc.EncryptValue(uint64(5 + 3*i))
		if err != nil {
			t.Fatal(err)
		}
		cts[i] = ct
		want[i] = uint64(5+3*i) % params.T
	}
	var wg sync.WaitGroup
	errc := make(chan string, 8*len(cts))
	for rep := 0; rep < 8; rep++ {
		for i, ct := range cts {
			wg.Add(1)
			go func(i int, ct *Ciphertext) {
				defer wg.Done()
				if got := c.dec.DecryptValue(ct); got != want[i] {
					errc <- "parallel RNS decrypt diverged"
				}
			}(i, ct)
		}
	}
	wg.Wait()
	close(errc)
	for msg := range errc {
		t.Fatal(msg)
	}
}
