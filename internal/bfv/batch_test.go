package bfv

import (
	"testing"

	"repro/internal/limb32"
)

// Batched-evaluation differential tests: every BatchEvaluator operation
// must be bit-identical to folding the schoolbook oracle's per-ciphertext
// operations in slice order — the same contract the single-ciphertext
// double-CRT backend holds.

// runBatchRotateAndSumDifferential drives the batched rotate-and-sum
// workload (each ciphertext plus k rotations of it, hoisted and fused on
// the native path) against the schoolbook oracle.
func runBatchRotateAndSumDifferential(t *testing.T, params *Parameters, seed uint64, batch, rotations int) {
	t.Helper()
	c := newCtx(t, params, seed, false)
	gks := genGaloisKeys(t, params, c.sk, seed+1, rotations)
	oracle := NewSchoolbookEvaluator(params, nil)

	cts := make([]*Ciphertext, batch)
	for i := range cts {
		pt := NewPlaintext(params)
		for j := range pt.Coeffs {
			pt.Coeffs[j] = uint64((j*(i+2) + i) % int(params.T))
		}
		ct, err := c.enc.Encrypt(pt)
		if err != nil {
			t.Fatal(err)
		}
		cts[i] = ct
	}

	be := NewBatchEvaluatorFrom(c.eval)
	got, err := be.RotateAndSum(cts, gks)
	if err != nil {
		t.Fatal(err)
	}
	for i, ct := range cts {
		want := ct.Clone()
		for _, gk := range gks {
			r, err := oracle.ApplyGalois(ct, gk)
			if err != nil {
				t.Fatal(err)
			}
			want = oracle.Add(want, r)
		}
		if !got[i].Equal(want) {
			t.Fatalf("ciphertext %d: batched rotate-and-sum differs from schoolbook oracle", i)
		}
		gp, wp := c.dec.Decrypt(got[i]), c.dec.Decrypt(want)
		for j := range gp.Coeffs {
			if gp.Coeffs[j] != wp.Coeffs[j] {
				t.Fatalf("ciphertext %d: decrypted rotate-and-sum differs at %d", i, j)
			}
		}
	}
}

// TestBatchRotateAndSumSec27 covers the 27-bit level at full degree.
func TestBatchRotateAndSumSec27(t *testing.T) {
	runBatchRotateAndSumDifferential(t, ParamsSec27(), 301, 3, 4)
}

// TestBatchRotateAndSumSec54 covers the 54-bit level at full degree; the
// schoolbook oracle is slow there, so -short skips it.
func TestBatchRotateAndSumSec54(t *testing.T) {
	if testing.Short() {
		t.Skip("schoolbook oracle at N=2048 is slow")
	}
	runBatchRotateAndSumDifferential(t, ParamsSec54(), 302, 2, 3)
}

// TestBatchRotateAndSumSec109 covers the 109-bit modulus and limb width
// (W=4) at the reduced ring degree the schoolbook oracle can afford,
// mirroring the depth-differential tests.
func TestBatchRotateAndSumSec109(t *testing.T) {
	if testing.Short() {
		t.Skip("schoolbook oracle at W=4 is slow")
	}
	runBatchRotateAndSumDifferential(t, mustParams(1024, prime109, 16, 28), 303, 2, 3)
}

// TestBatchRotateMany pins RotateMany outputs to per-rotation
// ApplyGalois, bitwise.
func TestBatchRotateMany(t *testing.T) {
	params := ParamsSec27()
	c := newCtx(t, params, 304, false)
	gks := genGaloisKeys(t, params, c.sk, 305, 5)
	ct, err := c.enc.EncryptValue(21)
	if err != nil {
		t.Fatal(err)
	}
	be := NewBatchEvaluatorFrom(c.eval)
	got, err := be.RotateMany(ct, gks)
	if err != nil {
		t.Fatal(err)
	}
	for i, gk := range gks {
		want, err := c.eval.ApplyGalois(ct, gk)
		if err != nil {
			t.Fatal(err)
		}
		if !got[i].Equal(want) {
			t.Fatalf("rotation %d (g=%d) differs from ApplyGalois", i, gk.G)
		}
	}
	all, err := be.RotateManyAll([]*Ciphertext{ct, ct}, gks)
	if err != nil {
		t.Fatal(err)
	}
	for r := range all {
		for i := range gks {
			if !all[r][i].Equal(got[i]) {
				t.Fatalf("RotateManyAll row %d rotation %d diverged", r, i)
			}
		}
	}
}

// TestBatchMulAddMany pins the batched Mul/Add pipelines to the
// sequential evaluator.
func TestBatchMulAddMany(t *testing.T) {
	params := ParamsToy()
	c := newCtx(t, params, 306, true)
	const batch = 4
	as := make([]*Ciphertext, batch)
	bs := make([]*Ciphertext, batch)
	for i := range as {
		var err error
		if as[i], err = c.enc.EncryptValue(uint64(2 + i)); err != nil {
			t.Fatal(err)
		}
		if bs[i], err = c.enc.EncryptValue(uint64(3 * (i + 1))); err != nil {
			t.Fatal(err)
		}
	}
	be := NewBatchEvaluatorFrom(c.eval)
	prods, err := be.MulMany(as, bs)
	if err != nil {
		t.Fatal(err)
	}
	sums, err := be.AddMany(as, bs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range as {
		wantMul, err := c.eval.Mul(as[i], bs[i])
		if err != nil {
			t.Fatal(err)
		}
		if !prods[i].Equal(wantMul) {
			t.Fatalf("MulMany[%d] differs from sequential Mul", i)
		}
		if !sums[i].Equal(c.eval.Add(as[i], bs[i])) {
			t.Fatalf("AddMany[%d] differs from sequential Add", i)
		}
	}
	if _, err := be.MulMany(as, bs[:1]); err == nil {
		t.Error("MulMany length mismatch accepted")
	}
	if _, err := be.AddMany(as[:1], bs); err == nil {
		t.Error("AddMany length mismatch accepted")
	}
}

// TestBatchMeteredSequential: a metered evaluator's batch items must run
// sequentially — Meter.Tick is unsynchronized by design — and charge
// exactly what the sequential loop charges.
func TestBatchMeteredSequential(t *testing.T) {
	params := ParamsToy()
	c := newCtx(t, params, 307, true)
	as := make([]*Ciphertext, 3)
	bs := make([]*Ciphertext, 3)
	for i := range as {
		var err error
		if as[i], err = c.enc.EncryptValue(uint64(i + 1)); err != nil {
			t.Fatal(err)
		}
		if bs[i], err = c.enc.EncryptValue(uint64(i + 2)); err != nil {
			t.Fatal(err)
		}
	}
	want := limb32.Counts{}
	seq := NewEvaluator(params, c.rlk)
	seq.Meter = &want
	for i := range as {
		if _, err := seq.Mul(as[i], bs[i]); err != nil {
			t.Fatal(err)
		}
	}
	got := limb32.Counts{}
	metered := NewEvaluator(params, c.rlk)
	metered.Meter = &got
	if _, err := NewBatchEvaluatorFrom(metered).MulMany(as, bs); err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("metered batch charged %+v, sequential loop charged %+v", got, want)
	}
}
