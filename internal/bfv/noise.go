package bfv

import (
	"math"

	"repro/internal/sampling"
)

// Analytic noise-growth model. The scheme's usability hinges on the noise
// budget (the paper's SHE setting constrains multiplicative depth, §2);
// this model predicts worst-case budgets for an operation sequence
// without touching a secret key, so applications can pick parameters
// up front. Predictions are upper bounds on the noise (lower bounds on
// the budget); tests verify measured budgets never fall below them.

// NoiseModel predicts noise magnitudes (log2) for a parameter set.
type NoiseModel struct {
	params *Parameters
}

// NewNoiseModel returns a noise model for params.
func NewNoiseModel(params *Parameters) *NoiseModel {
	return &NoiseModel{params: params}
}

// errBound is the worst-case magnitude of a fresh error sample.
func (nm *NoiseModel) errBound() float64 {
	return math.Ceil(6 * sampling.DefaultSigma)
}

// FreshNoiseLog2 bounds log2 |v − Δm| of a fresh encryption:
// e1 + u·e_pk + e2·s with ternary u, s: |noise| ≤ B(2N + 1).
func (nm *NoiseModel) FreshNoiseLog2() float64 {
	b := nm.errBound()
	return math.Log2(b * float64(2*nm.params.N+1))
}

// AddNoiseLog2 bounds the noise after adding two ciphertexts with the
// given noise levels (log2 domain): |n1 + n2| ≤ |n1| + |n2|.
func (nm *NoiseModel) AddNoiseLog2(n1, n2 float64) float64 {
	return math.Log2(math.Exp2(n1) + math.Exp2(n2))
}

// MulNoiseLog2 bounds the noise after multiplying two ciphertexts with
// the given noise levels, including relinearization at the configured
// base: the dominant term is t·N·(|n1| + |n2|) plus the rounding and
// key-switching contributions.
func (nm *NoiseModel) MulNoiseLog2(n1, n2 float64) float64 {
	par := nm.params
	t := float64(par.T)
	n := float64(par.N)
	// Tensor scaling: t·N·(noise1 + noise2) + t·N·(t·N/2 + ...) rounding.
	tensor := t * n * (math.Exp2(n1) + math.Exp2(n2) + 1)
	rounding := t * n * (1 + t)
	// Relinearization: digits · N · B · 2^base / 2.
	relin := float64(par.RelinDigits()) * n * nm.errBound() *
		math.Exp2(float64(par.RelinBaseBits)) / 2
	return math.Log2(tensor + rounding + relin)
}

// BudgetForNoise converts a noise bound (log2) to a noise budget in bits.
func (nm *NoiseModel) BudgetForNoise(noiseLog2 float64) int {
	return int(float64(nm.params.Q.Bits()-1) - noiseLog2)
}

// FreshBudget predicts the minimum budget of a fresh ciphertext.
func (nm *NoiseModel) FreshBudget() int {
	return nm.BudgetForNoise(nm.FreshNoiseLog2())
}

// SupportedAdditions bounds how many fresh ciphertexts can be summed
// while keeping a positive budget: each addition at most doubles the
// worst-case noise of equal operands, so the sum of k ciphertexts has
// noise ≤ k·fresh.
func (nm *NoiseModel) SupportedAdditions() int {
	head := float64(nm.params.Q.Bits()-1) - nm.FreshNoiseLog2() - 1 // keep 1 bit
	if head <= 0 {
		return 0
	}
	k := math.Exp2(head)
	if k > 1<<40 {
		return 1 << 40
	}
	return int(k)
}

// SupportedMulDepth bounds the multiplicative depth of a balanced
// product tree of fresh ciphertexts.
func (nm *NoiseModel) SupportedMulDepth() int {
	noise := nm.FreshNoiseLog2()
	depth := 0
	for {
		next := nm.MulNoiseLog2(noise, noise)
		if nm.BudgetForNoise(next) <= 0 {
			return depth
		}
		noise = next
		depth++
		if depth > 64 {
			return depth
		}
	}
}
