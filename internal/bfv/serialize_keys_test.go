package bfv

import (
	"bytes"
	"testing"
)

func TestPublicKeySerializationRoundTrip(t *testing.T) {
	c := newCtx(t, ParamsToy(), 40, false)
	var buf bytes.Buffer
	if err := c.pk.Serialize(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadPublicKey(&buf, c.params)
	if err != nil {
		t.Fatal(err)
	}
	if !back.P0.Equal(c.pk.P0) || !back.P1.Equal(c.pk.P1) {
		t.Fatal("public key round trip differs")
	}
	// A deserialized public key must produce decryptable ciphertexts.
	enc := NewEncryptor(c.params, back, samplingSource(40))
	ct, err := enc.EncryptValue(6)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.dec.DecryptValue(ct); got != 6 {
		t.Errorf("ciphertext from deserialized pk decrypts to %d", got)
	}
}

func TestRelinKeySerializationRoundTrip(t *testing.T) {
	c := newCtx(t, ParamsToy(), 41, true)
	var buf bytes.Buffer
	if err := c.rlk.Serialize(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadRelinKey(&buf, c.params)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.K0) != len(c.rlk.K0) || back.BaseBits != c.rlk.BaseBits {
		t.Fatal("relin key shape differs")
	}
	for i := range back.K0 {
		if !back.K0[i].Equal(c.rlk.K0[i]) || !back.K1[i].Equal(c.rlk.K1[i]) {
			t.Fatalf("relin key digit %d differs", i)
		}
	}
	// Multiplication with the deserialized key must still relinearize
	// correctly.
	eval := NewEvaluator(c.params, back)
	ct1, _ := c.enc.EncryptValue(3)
	ct2, _ := c.enc.EncryptValue(4)
	prod, err := eval.Mul(ct1, ct2)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.dec.DecryptValue(prod); got != 12 {
		t.Errorf("mul with deserialized rlk = %d", got)
	}
}

func TestKeySerializationRejectsGarbage(t *testing.T) {
	params := ParamsToy()
	if _, err := ReadPublicKey(bytes.NewReader([]byte("BFVxXXXXXXXX")), params); err == nil {
		t.Error("bad magic accepted for public key")
	}
	if _, err := ReadRelinKey(bytes.NewReader([]byte("BFVp")), params); err == nil {
		t.Error("wrong magic accepted for relin key")
	}
	// Shape mismatch: toy-params key read under sec27.
	c := newCtx(t, params, 42, true)
	var buf bytes.Buffer
	c.pk.Serialize(&buf)
	if _, err := ReadPublicKey(&buf, ParamsSec27()); err == nil {
		t.Error("public key shape mismatch accepted")
	}
	buf.Reset()
	c.rlk.Serialize(&buf)
	if _, err := ReadRelinKey(&buf, ParamsSec27()); err == nil {
		t.Error("relin key shape mismatch accepted")
	}
	// Truncation.
	buf.Reset()
	c.rlk.Serialize(&buf)
	trunc := buf.Bytes()[:buf.Len()/3]
	if _, err := ReadRelinKey(bytes.NewReader(trunc), params); err == nil {
		t.Error("truncated relin key accepted")
	}
}

func TestGaloisKeySerializationRoundTrip(t *testing.T) {
	c := newCtx(t, ParamsToy(), 43, false)
	kg := NewKeyGenerator(c.params, samplingSource(43))
	gk, err := kg.GenGaloisKey(c.sk, 3)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := gk.Serialize(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadGaloisKey(&buf, c.params)
	if err != nil {
		t.Fatal(err)
	}
	if back.G != gk.G || back.BaseBits != gk.BaseBits || len(back.K0) != len(gk.K0) {
		t.Fatal("Galois key shape differs")
	}
	for i := range back.K0 {
		if !back.K0[i].Equal(gk.K0[i]) || !back.K1[i].Equal(gk.K1[i]) {
			t.Fatalf("Galois key digit %d differs", i)
		}
	}
	// Rotation through the deserialized key must be bit-identical to the
	// original key's.
	ct, _ := c.enc.EncryptValue(9)
	want, err := c.eval.ApplyGalois(ct, gk)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.eval.ApplyGalois(ct, back)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatal("rotation with deserialized Galois key differs")
	}
}

func TestGaloisKeySerializationRejectsGarbage(t *testing.T) {
	params := ParamsToy()
	if _, err := ReadGaloisKey(bytes.NewReader([]byte("BFVrXXXXXXXXXXXX")), params); err == nil {
		t.Error("wrong magic accepted for Galois key")
	}
	c := newCtx(t, params, 44, false)
	kg := NewKeyGenerator(c.params, samplingSource(44))
	gk, err := kg.GenGaloisKey(c.sk, 5)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	gk.Serialize(&buf)
	if _, err := ReadGaloisKey(&buf, ParamsSec27()); err == nil {
		t.Error("Galois key shape mismatch accepted")
	}
	buf.Reset()
	gk.Serialize(&buf)
	trunc := buf.Bytes()[:buf.Len()/3]
	if _, err := ReadGaloisKey(bytes.NewReader(trunc), params); err == nil {
		t.Error("truncated Galois key accepted")
	}
	var empty bytes.Buffer
	if err := (&GaloisKey{G: 3}).Serialize(&empty); err == nil {
		t.Error("empty Galois key serialized")
	}
}

func TestRelinKeySerializeRejectsMalformed(t *testing.T) {
	var buf bytes.Buffer
	bad := &RelinKey{}
	if err := bad.Serialize(&buf); err == nil {
		t.Error("empty relin key serialized")
	}
}
