package bfv

import (
	"bytes"
	"testing"
)

func TestPublicKeySerializationRoundTrip(t *testing.T) {
	c := newCtx(t, ParamsToy(), 40, false)
	var buf bytes.Buffer
	if err := c.pk.Serialize(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadPublicKey(&buf, c.params)
	if err != nil {
		t.Fatal(err)
	}
	if !back.P0.Equal(c.pk.P0) || !back.P1.Equal(c.pk.P1) {
		t.Fatal("public key round trip differs")
	}
	// A deserialized public key must produce decryptable ciphertexts.
	enc := NewEncryptor(c.params, back, samplingSource(40))
	ct, err := enc.EncryptValue(6)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.dec.DecryptValue(ct); got != 6 {
		t.Errorf("ciphertext from deserialized pk decrypts to %d", got)
	}
}

func TestRelinKeySerializationRoundTrip(t *testing.T) {
	c := newCtx(t, ParamsToy(), 41, true)
	var buf bytes.Buffer
	if err := c.rlk.Serialize(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadRelinKey(&buf, c.params)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.K0) != len(c.rlk.K0) || back.BaseBits != c.rlk.BaseBits {
		t.Fatal("relin key shape differs")
	}
	for i := range back.K0 {
		if !back.K0[i].Equal(c.rlk.K0[i]) || !back.K1[i].Equal(c.rlk.K1[i]) {
			t.Fatalf("relin key digit %d differs", i)
		}
	}
	// Multiplication with the deserialized key must still relinearize
	// correctly.
	eval := NewEvaluator(c.params, back)
	ct1, _ := c.enc.EncryptValue(3)
	ct2, _ := c.enc.EncryptValue(4)
	prod, err := eval.Mul(ct1, ct2)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.dec.DecryptValue(prod); got != 12 {
		t.Errorf("mul with deserialized rlk = %d", got)
	}
}

func TestKeySerializationRejectsGarbage(t *testing.T) {
	params := ParamsToy()
	if _, err := ReadPublicKey(bytes.NewReader([]byte("BFVxXXXXXXXX")), params); err == nil {
		t.Error("bad magic accepted for public key")
	}
	if _, err := ReadRelinKey(bytes.NewReader([]byte("BFVp")), params); err == nil {
		t.Error("wrong magic accepted for relin key")
	}
	// Shape mismatch: toy-params key read under sec27.
	c := newCtx(t, params, 42, true)
	var buf bytes.Buffer
	c.pk.Serialize(&buf)
	if _, err := ReadPublicKey(&buf, ParamsSec27()); err == nil {
		t.Error("public key shape mismatch accepted")
	}
	buf.Reset()
	c.rlk.Serialize(&buf)
	if _, err := ReadRelinKey(&buf, ParamsSec27()); err == nil {
		t.Error("relin key shape mismatch accepted")
	}
	// Truncation.
	buf.Reset()
	c.rlk.Serialize(&buf)
	trunc := buf.Bytes()[:buf.Len()/3]
	if _, err := ReadRelinKey(bytes.NewReader(trunc), params); err == nil {
		t.Error("truncated relin key accepted")
	}
}

func TestRelinKeySerializeRejectsMalformed(t *testing.T) {
	var buf bytes.Buffer
	bad := &RelinKey{}
	if err := bad.Serialize(&buf); err == nil {
		t.Error("empty relin key serialized")
	}
}
