package bfv

import (
	"testing"

	"repro/internal/sampling"
)

// mulNTTRig builds a small RNS-native fixture: keys, two fresh
// encryptions, the deferring evaluator and the schoolbook oracle.
func mulNTTRig(t *testing.T, n int, seed uint64) (*Evaluator, *Evaluator, *Decryptor, *Ciphertext, *Ciphertext) {
	t.Helper()
	params := ParamsSec54AtDegree(n)
	src := sampling.NewSourceFromUint64(seed)
	kg := NewKeyGenerator(params, src)
	sk, pk := kg.GenKeyPair()
	rlk := kg.GenRelinKey(sk)
	enc := NewEncryptor(params, pk, src)
	ct0, err := enc.EncryptValue(11)
	if err != nil {
		t.Fatal(err)
	}
	ct1, err := enc.EncryptValue(13)
	if err != nil {
		t.Fatal(err)
	}
	return NewEvaluator(params, rlk), NewSchoolbookEvaluator(params, rlk), NewDecryptor(params, sk), ct0, ct1
}

// TestMulNTTMaterializeBitIdentical: a deferred product materializes to
// exactly Evaluator.Mul's (and the schoolbook oracle's) ciphertext.
func TestMulNTTBitIdentical(t *testing.T) {
	ev, oracle, _, ct0, ct1 := mulNTTRig(t, 64, 31)
	if !ev.CanDeferMuls() {
		t.Fatal("expected deferred multiplication on the RNS-native backend")
	}
	prod, err := ev.MulNTT(ct0, ct1)
	if err != nil {
		t.Fatal(err)
	}
	got := prod.Materialize()
	prod.Release()
	want, err := ev.Mul(ct0, ct1)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatal("MulNTT ≠ Mul")
	}
	sb, err := oracle.Mul(ct0, ct1)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(sb) {
		t.Fatal("MulNTT ≠ schoolbook oracle")
	}
}

// TestMulNTTChain: a depth-3 chain through deferred handles (each level
// consuming the previous handle) is bit-identical to the materialized
// chain, and Square through MulNTT(x, x) matches Square.
func TestMulNTTChain(t *testing.T) {
	ev, oracle, _, ct0, ct1 := mulNTTRig(t, 64, 32)
	var cur MulOperand = ct0
	var prev *ProductNTT
	for d := 0; d < 3; d++ {
		next, err := ev.MulNTT(cur, ct1)
		if err != nil {
			t.Fatal(err)
		}
		if prev != nil {
			prev.Release()
		}
		cur, prev = next, next
	}
	got := prev.Materialize()
	prev.Release()

	want := ct0
	for d := 0; d < 3; d++ {
		next, err := oracle.Mul(want, ct1)
		if err != nil {
			t.Fatal(err)
		}
		want = next
	}
	if !got.Equal(want) {
		t.Fatal("deferred chain ≠ schoolbook chain")
	}

	sq, err := ev.MulNTT(ct0, ct0)
	if err != nil {
		t.Fatal(err)
	}
	gotSq := sq.Materialize()
	sq.Release()
	wantSq, err := ev.Square(ct0)
	if err != nil {
		t.Fatal(err)
	}
	if !gotSq.Equal(wantSq) {
		t.Fatal("MulNTT(x,x) ≠ Square(x)")
	}

	// Square of a deferred handle: both tensor operands arrive lazily
	// (the ForwardLazy-bounded centered forms), exercising the fold-
	// before-Barrett guards of the pair kernel.
	ph, err := ev.MulNTT(ct0, ct1)
	if err != nil {
		t.Fatal(err)
	}
	sqd, err := ev.MulNTT(ph, ph)
	if err != nil {
		t.Fatal(err)
	}
	gotSqD := sqd.Materialize()
	sqd.Release()
	wantSqD, err := ev.Square(ph.Materialize())
	if err != nil {
		t.Fatal(err)
	}
	ph.Release()
	if !gotSqD.Equal(wantSqD) {
		t.Fatal("deferred MulNTT(p,p) ≠ Square(p)")
	}
}

// TestMulNTTAddFusion: deferred sums of products equal the materialized
// Add fold, and the fusion reports false after materialization.
func TestMulNTTAddFusion(t *testing.T) {
	ev, _, _, ct0, ct1 := mulNTTRig(t, 64, 33)
	p1, err := ev.MulNTT(ct0, ct1)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := ev.MulNTT(ct1, ct1)
	if err != nil {
		t.Fatal(err)
	}
	sum, ok := p1.Add(p2)
	if !ok {
		t.Fatal("deferred product sum fell back")
	}
	got := sum.Materialize()
	sum.Release()
	want := ev.Add(p1.Materialize(), p2.Materialize())
	if !got.Equal(want) {
		t.Fatal("deferred sum ≠ materialized Add")
	}
	// Materialized handles refuse to fuse (callers fall back).
	if _, ok := p1.Add(p2); ok {
		t.Fatal("Add fused materialized handles")
	}
	p1.Release()
	p2.Release()
}

// TestMulNTTFallback: on backends that cannot defer, MulNTT returns an
// already-materialized handle identical to Mul.
func TestMulNTTFallback(t *testing.T) {
	_, oracle, _, ct0, ct1 := mulNTTRig(t, 64, 34)
	if oracle.CanDeferMuls() {
		t.Fatal("schoolbook evaluator should not defer")
	}
	prod, err := oracle.MulNTT(ct0, ct1)
	if err != nil {
		t.Fatal(err)
	}
	want, err := oracle.Mul(ct0, ct1)
	if err != nil {
		t.Fatal(err)
	}
	if !prod.Materialize().Equal(want) {
		t.Fatal("fallback MulNTT ≠ Mul")
	}
	prod.Release() // no-op on materialized handles
}

// TestMulManyNTTSum: the batched deferred products and their RNS-domain
// fold decrypt to the same dot product the materialized pipeline yields.
func TestMulManyNTTSum(t *testing.T) {
	params := ParamsSec54AtDegree(64)
	src := sampling.NewSourceFromUint64(35)
	kg := NewKeyGenerator(params, src)
	sk, pk := kg.GenKeyPair()
	rlk := kg.GenRelinKey(sk)
	enc := NewEncryptor(params, pk, src)
	dec := NewDecryptor(params, sk)
	const pairs = 4
	as := make([]MulOperand, pairs)
	bs := make([]MulOperand, pairs)
	rawA := make([]*Ciphertext, pairs)
	rawB := make([]*Ciphertext, pairs)
	for i := 0; i < pairs; i++ {
		var err error
		if rawA[i], err = enc.EncryptValue(uint64(2 + i)); err != nil {
			t.Fatal(err)
		}
		if rawB[i], err = enc.EncryptValue(uint64(3 + i)); err != nil {
			t.Fatal(err)
		}
		as[i], bs[i] = rawA[i], rawB[i]
	}
	be := NewBatchEvaluator(params, rlk)
	prods, err := be.MulManyNTT(as, bs)
	if err != nil {
		t.Fatal(err)
	}
	acc := prods[0]
	for _, p := range prods[1:] {
		sum, ok := acc.Add(p)
		if !ok {
			t.Fatal("deferred fold fell back")
		}
		acc.Release()
		p.Release()
		acc = sum
	}
	got := acc.Materialize()
	acc.Release()

	want, err := be.MulMany(rawA, rawB)
	if err != nil {
		t.Fatal(err)
	}
	ref := want[0]
	for _, ct := range want[1:] {
		ref = be.Evaluator().Add(ref, ct)
	}
	if !got.Equal(ref) {
		t.Fatal("deferred dot product ≠ materialized")
	}
	var total uint64
	for i := 0; i < pairs; i++ {
		total += uint64(2+i) * uint64(3+i)
	}
	if v := dec.Decrypt(got).Coeffs[0]; v != total%params.T {
		t.Fatalf("dot product decrypts to %d, want %d", v, total%params.T)
	}
}

// TestMulNTTLongFold regression-tests the deferred-sum lazy bound: a
// long ProductNTT.Add fold must keep every limb word inside the < 2p
// lazy window. A strict fold lets a slot near the 2p ceiling creep up
// by ~p per sum and wrap uint64 after ~14 sums at the 60-bit basis
// primes — corrupting the result while reporting success — so folding
// one product onto itself 30 times (inside the exact-integer magnitude
// budget) deterministically exposes it; the fold must both stay
// deferred and match the materialized Add chain bit for bit.
func TestMulNTTLongFold(t *testing.T) {
	ev, _, _, ct0, ct1 := mulNTTRig(t, 64, 36)
	p, err := ev.MulNTT(ct0, ct1)
	if err != nil {
		t.Fatal(err)
	}
	const folds = 30
	acc := p
	for i := 0; i < folds; i++ {
		sum, ok := acc.Add(p)
		if !ok {
			t.Fatalf("deferred fold fell back at term %d", i)
		}
		acc = sum
	}
	got := acc.Materialize()
	want := p.Materialize()
	one := want
	for i := 0; i < folds; i++ {
		want = ev.Add(want, one)
	}
	if !got.Equal(want) {
		t.Fatal("long deferred fold diverged from materialized Add chain")
	}
}
