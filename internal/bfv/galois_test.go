package bfv

import (
	"testing"

	"repro/internal/sampling"
)

func samplingSource(seed uint64) *sampling.Source {
	return sampling.NewSourceFromUint64(seed)
}

func TestGaloisKeyRequiresOddElement(t *testing.T) {
	c := newCtx(t, ParamsToy(), 30, false)
	kg := NewKeyGenerator(c.params, samplingSource(30))
	if _, err := kg.GenGaloisKey(c.sk, 4); err == nil {
		t.Error("even Galois element accepted")
	}
	if _, err := kg.GenGaloisKey(c.sk, 3); err != nil {
		t.Errorf("odd Galois element rejected: %v", err)
	}
}

func TestApplyGaloisMatchesPlaintextAutomorphism(t *testing.T) {
	c := newCtx(t, ParamsToy(), 31, false)
	kg := NewKeyGenerator(c.params, samplingSource(31))

	pt := NewPlaintext(c.params)
	for i := range pt.Coeffs {
		pt.Coeffs[i] = uint64((3*i + 1) % int(c.params.T))
	}
	ct, err := c.enc.Encrypt(pt)
	if err != nil {
		t.Fatal(err)
	}

	for _, g := range []uint64{3, 5, uint64(2*c.params.N - 1)} {
		gk, err := kg.GenGaloisKey(c.sk, g)
		if err != nil {
			t.Fatal(err)
		}
		rot, err := c.eval.ApplyGalois(ct, gk)
		if err != nil {
			t.Fatal(err)
		}
		if rot.Degree() != 1 {
			t.Fatalf("g=%d: output degree %d", g, rot.Degree())
		}
		got := c.dec.Decrypt(rot)
		want := GaloisPlaintext(c.params, pt, g)
		for i := range want.Coeffs {
			if got.Coeffs[i] != want.Coeffs[i] {
				t.Fatalf("g=%d coeff %d: got %d want %d", g, i, got.Coeffs[i], want.Coeffs[i])
			}
		}
	}
}

func TestGaloisComposition(t *testing.T) {
	// τ_g1 ∘ τ_g2 = τ_{g1·g2 mod 2N} on plaintexts.
	params := ParamsToy()
	pt := NewPlaintext(params)
	for i := range pt.Coeffs {
		pt.Coeffs[i] = uint64(i % int(params.T))
	}
	g1, g2 := uint64(3), uint64(5)
	composed := GaloisPlaintext(params, GaloisPlaintext(params, pt, g2), g1)
	direct := GaloisPlaintext(params, pt, (g1*g2)%uint64(2*params.N))
	for i := range direct.Coeffs {
		if composed.Coeffs[i] != direct.Coeffs[i] {
			t.Fatalf("composition mismatch at %d", i)
		}
	}
}

func TestGaloisIdentity(t *testing.T) {
	// g = 1 is the identity automorphism.
	c := newCtx(t, ParamsToy(), 32, false)
	kg := NewKeyGenerator(c.params, samplingSource(32))
	gk, err := kg.GenGaloisKey(c.sk, 1)
	if err != nil {
		t.Fatal(err)
	}
	ct, _ := c.enc.EncryptValue(7)
	rot, err := c.eval.ApplyGalois(ct, gk)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.dec.DecryptValue(rot); got != 7 {
		t.Errorf("identity automorphism decrypts to %d", got)
	}
}

func TestApplyGaloisRejectsBadInputs(t *testing.T) {
	c := newCtx(t, ParamsToy(), 33, true)
	ct, _ := c.enc.EncryptValue(1)
	if _, err := c.eval.ApplyGalois(ct, nil); err == nil {
		t.Error("nil Galois key accepted")
	}
	d2, _ := c.eval.MulNoRelin(ct, ct)
	kg := NewKeyGenerator(c.params, samplingSource(33))
	gk, _ := kg.GenGaloisKey(c.sk, 3)
	if _, err := c.eval.ApplyGalois(d2, gk); err == nil {
		t.Error("degree-2 ciphertext accepted")
	}
}

func TestGaloisThenAdd(t *testing.T) {
	// Automorphism commutes with addition: τ(a) + τ(b) = τ(a+b).
	c := newCtx(t, ParamsToy(), 34, false)
	kg := NewKeyGenerator(c.params, samplingSource(34))
	gk, err := kg.GenGaloisKey(c.sk, 3)
	if err != nil {
		t.Fatal(err)
	}
	pa := NewPlaintext(c.params)
	pb := NewPlaintext(c.params)
	for i := range pa.Coeffs {
		pa.Coeffs[i] = uint64(i % 7)
		pb.Coeffs[i] = uint64(i % 5)
	}
	cta, _ := c.enc.Encrypt(pa)
	ctb, _ := c.enc.Encrypt(pb)

	lhsCt, err := c.eval.ApplyGalois(c.eval.Add(cta, ctb), gk)
	if err != nil {
		t.Fatal(err)
	}
	ra, err := c.eval.ApplyGalois(cta, gk)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := c.eval.ApplyGalois(ctb, gk)
	if err != nil {
		t.Fatal(err)
	}
	rhsCt := c.eval.Add(ra, rb)

	lhs := c.dec.Decrypt(lhsCt)
	rhs := c.dec.Decrypt(rhsCt)
	for i := range lhs.Coeffs {
		if lhs.Coeffs[i] != rhs.Coeffs[i] {
			t.Fatalf("commutation mismatch at %d", i)
		}
	}
}
