package bfv

import (
	"math/big"
	"testing"
)

// modSwitchParams: same N and t; the target modulus is 30-bit, crossing
// the limb-width boundary (W=2 → W=1) so the ciphertext really shrinks.
func modSwitchParams(t *testing.T) (*Parameters, *Parameters) {
	t.Helper()
	from := ParamsToy()           // 60-bit q, N=64, t=16
	q30 := big.NewInt(1073741789) // 2^30 - 35, prime
	to, err := NewParameters(64, q30, 16, 15)
	if err != nil {
		t.Fatal(err)
	}
	return from, to
}

func TestModSwitchPreservesPlaintext(t *testing.T) {
	from, to := modSwitchParams(t)
	c := newCtx(t, from, 60, false)
	for _, v := range []uint64{0, 1, 7, 15} {
		ct, err := c.enc.EncryptValue(v)
		if err != nil {
			t.Fatal(err)
		}
		switched, err := ModSwitch(ct, from, to)
		if err != nil {
			t.Fatal(err)
		}
		skTo, err := ModSwitchSecretKey(c.sk, from, to)
		if err != nil {
			t.Fatal(err)
		}
		decTo := NewDecryptor(to, skTo)
		if got := decTo.DecryptValue(switched); got != v {
			t.Errorf("ModSwitch(%d) decrypts to %d", v, got)
		}
	}
}

func TestModSwitchShrinksCiphertext(t *testing.T) {
	from, to := modSwitchParams(t)
	if to.CiphertextBytes() >= from.CiphertextBytes() {
		t.Errorf("switched ciphertext (%d B) not smaller than original (%d B)",
			to.CiphertextBytes(), from.CiphertextBytes())
	}
}

func TestModSwitchKeepsWorkingBudget(t *testing.T) {
	from, to := modSwitchParams(t)
	c := newCtx(t, from, 61, false)
	ct, _ := c.enc.EncryptValue(5)
	sum := c.eval.Add(ct, ct)
	switched, err := ModSwitch(sum, from, to)
	if err != nil {
		t.Fatal(err)
	}
	skTo, _ := ModSwitchSecretKey(c.sk, from, to)
	decTo := NewDecryptor(to, skTo)
	if got := decTo.DecryptValue(switched); got != 10 {
		t.Errorf("post-switch 5+5 = %d", got)
	}
	if b := decTo.NoiseBudget(switched); b <= 0 {
		t.Errorf("post-switch budget exhausted: %d", b)
	}
	// Additions must still work after the switch.
	evalTo := NewEvaluator(to, nil)
	sum2 := evalTo.Add(switched, switched)
	if got := decTo.DecryptValue(sum2); got != 4 { // 20 mod 16
		t.Errorf("post-switch addition = %d, want 4", got)
	}
}

func TestModSwitchValidation(t *testing.T) {
	from, to := modSwitchParams(t)
	c := newCtx(t, from, 62, false)
	ct, _ := c.enc.EncryptValue(1)
	if _, err := ModSwitch(ct, from, from); err == nil {
		t.Error("switch to same modulus accepted")
	}
	if _, err := ModSwitch(ct, to, from); err == nil {
		t.Error("switch to larger modulus accepted")
	}
	bad := ParamsSec27() // different N
	if _, err := ModSwitch(ct, from, bad); err == nil {
		t.Error("mismatched N accepted")
	}
	if _, err := ModSwitchSecretKey(c.sk, from, bad); err == nil {
		t.Error("mismatched N secret-key switch accepted")
	}
}
