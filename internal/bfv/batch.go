package bfv

import (
	"errors"
	"fmt"
	"math/bits"

	"repro/internal/dcrt"
	"repro/internal/poly"
)

// BatchEvaluator runs homomorphic pipelines over slices of ciphertexts —
// the shape of the paper's PIM workloads, where many ciphertexts flow
// through the same Mul/Add/Rotate kernels. Per-ciphertext work is
// scheduled on the same process-wide bounded pool the double-CRT backend
// uses for per-limb work (dcrt.Parallel): batch-level tasks fill idle
// workers, limb-level tasks fill the rest, and nested submission falls
// back inline, so a batch can never oversubscribe the machine. Rotations
// are hoisted: each input ciphertext is digit-decomposed once and the
// decomposition is shared across all requested Galois elements.
//
// Every result is bit-identical to running the wrapped Evaluator's
// operations one at a time in slice order.
type BatchEvaluator struct {
	ev *Evaluator
}

// NewBatchEvaluator returns a batched front end over the double-CRT
// backend. rlk may be nil if MulMany is not used.
func NewBatchEvaluator(params *Parameters, rlk *RelinKey) *BatchEvaluator {
	return &BatchEvaluator{ev: NewEvaluator(params, rlk)}
}

// NewBatchEvaluatorFrom wraps an existing evaluator (e.g. a schoolbook
// oracle for differential testing). A metered evaluator is supported but
// runs its batch items sequentially: limb32.Meter.Tick is unsynchronized
// by design (the PIM cost model wants a deterministic instruction
// stream), so its items must not run concurrently.
func NewBatchEvaluatorFrom(ev *Evaluator) *BatchEvaluator {
	return &BatchEvaluator{ev: ev}
}

// Evaluator returns the wrapped single-ciphertext evaluator.
func (be *BatchEvaluator) Evaluator() *Evaluator { return be.ev }

// forEach runs f over [0, n) — on the shared worker pool, or in slice
// order when the wrapped evaluator meters (see NewBatchEvaluatorFrom) —
// and returns the first error by index (deterministic even though
// pooled execution is not).
func (be *BatchEvaluator) forEach(n int, f func(i int) error) error {
	if be.ev.Meter != nil {
		for i := 0; i < n; i++ {
			if err := f(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	dcrt.Parallel(n, func(i int) {
		errs[i] = f(i)
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// MulMany returns the element-wise relinearized products as[i]·bs[i].
func (be *BatchEvaluator) MulMany(as, bs []*Ciphertext) ([]*Ciphertext, error) {
	if len(as) != len(bs) {
		return nil, fmt.Errorf("bfv: MulMany length mismatch: %d vs %d", len(as), len(bs))
	}
	out := make([]*Ciphertext, len(as))
	err := be.forEach(len(as), func(i int) error {
		ct, err := be.ev.Mul(as[i], bs[i])
		out[i] = ct
		return err
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// AddMany returns the element-wise sums as[i] + bs[i].
func (be *BatchEvaluator) AddMany(as, bs []*Ciphertext) ([]*Ciphertext, error) {
	if len(as) != len(bs) {
		return nil, fmt.Errorf("bfv: AddMany length mismatch: %d vs %d", len(as), len(bs))
	}
	out := make([]*Ciphertext, len(as))
	_ = be.forEach(len(as), func(i int) error {
		out[i] = be.ev.Add(as[i], bs[i])
		return nil
	})
	return out, nil
}

// RotateMany returns τ_g(ct) for every Galois key in gks, hoisting the
// digit decomposition of ct: one decomposition serves all k rotations.
// Each output is bit-identical to ApplyGalois(ct, gks[i]).
func (be *BatchEvaluator) RotateMany(ct *Ciphertext, gks []*GaloisKey) ([]*Ciphertext, error) {
	h, err := be.ev.Hoist(ct)
	if err != nil {
		return nil, err
	}
	defer h.Release()
	out := make([]*Ciphertext, len(gks))
	err = be.forEach(len(gks), func(i int) error {
		r, err := be.ev.ApplyGaloisHoisted(h, gks[i])
		out[i] = r
		return err
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// RotateManyAll applies the whole Galois-key set to every ciphertext:
// out[i][j] = τ_{gks[j]}(cts[i]), each row hoisted from one
// decomposition of cts[i].
func (be *BatchEvaluator) RotateManyAll(cts []*Ciphertext, gks []*GaloisKey) ([][]*Ciphertext, error) {
	out := make([][]*Ciphertext, len(cts))
	err := be.forEach(len(cts), func(i int) error {
		row, err := be.RotateMany(cts[i], gks)
		out[i] = row
		return err
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// RotateAndSum returns, for each input ciphertext, ct + Σ_g τ_g(ct) over
// the Galois-key set — the batched rotate-and-sum workload (aggregating
// shifted copies, e.g. partial slot sums). On the RNS-native backend the
// key-switching contributions of all k rotations accumulate in the
// extended basis and leave through a single base conversion, so the
// whole reduction pays 2 conversions instead of 2k; the result is still
// bit-identical to folding ApplyGalois outputs with Add in slice order,
// because the exact integer accumulator never wraps (checked against the
// basis bound, with a per-rotation fallback otherwise).
func (be *BatchEvaluator) RotateAndSum(cts []*Ciphertext, gks []*GaloisKey) ([]*Ciphertext, error) {
	out := make([]*Ciphertext, len(cts))
	err := be.forEach(len(cts), func(i int) error {
		r, err := be.rotateAndSumOne(cts[i], gks)
		out[i] = r
		return err
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// fusedSumOK reports whether k rotations' key-switch accumulators can
// share one extended-basis accumulator without the exact integer sum
// wrapping: digits · n · 2^base · q per rotation, times k, must stay
// under the context's 2^BoundBits exactness window.
func fusedSumOK(ctx *dcrt.Context, par *Parameters, k int) bool {
	perRotation := par.Q.Bits() + int(par.RelinBaseBits) +
		bits.Len(uint(par.RelinDigits())) + bits.Len(uint(par.N)) + 1
	return perRotation+bits.Len(uint(k)) <= ctx.BoundBits
}

func (be *BatchEvaluator) rotateAndSumOne(ct *Ciphertext, gks []*GaloisKey) (*Ciphertext, error) {
	ev := be.ev
	par := ev.params
	h, err := ev.Hoist(ct)
	if err != nil {
		return nil, err
	}
	defer h.Release()
	if h.ctx == nil || !fusedSumOK(h.ctx, par, len(gks)) {
		// Per-rotation fallback: hoisting still shares the decomposition.
		acc := ct.Clone()
		for _, gk := range gks {
			r, err := ev.ApplyGaloisHoisted(h, gk)
			if err != nil {
				return nil, err
			}
			acc = ev.Add(acc, r)
		}
		return acc, nil
	}
	ctx := h.ctx
	digits := h.snapshot(par)
	acc0 := ctx.GetScratch()
	acc1 := ctx.GetScratch()
	defer ctx.PutScratch(acc0)
	defer ctx.PutScratch(acc1)
	acc0.Zero()
	acc1.Zero()
	c0sum := ct.Polys[0].Clone()
	c1sum := ct.Polys[1].Clone()
	for _, gk := range gks {
		if gk == nil {
			return nil, errors.New("bfv: nil Galois key")
		}
		k0, k1 := gk.forms.get(ctx, gk.K0, gk.K1)
		idx := dcrt.GaloisNTTIndices(ctx.N, gk.G)
		galoisKeySwitchAcc(ctx, acc0, acc1, digits, idx, k0, k1)
		c0g := applyGaloisPoly(ct.Polys[0], gk.G, par.Q, nil)
		poly.Add(c0sum, c0sum, c0g, par.Q, nil)
	}
	s0 := ctx.FromRNS(acc0)
	s1 := ctx.FromRNS(acc1)
	poly.Add(c0sum, c0sum, s0, par.Q, nil)
	poly.Add(c1sum, c1sum, s1, par.Q, nil)
	return &Ciphertext{Polys: []*poly.Poly{c0sum, c1sum}}, nil
}
