package bfv

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"

	"repro/internal/limb32"
	"repro/internal/poly"
)

// Binary serialization. Layout (all little-endian):
//
//	ciphertext: magic "BFVc" | u32 polyCount | u32 N | u32 W | limbs…
//	secret key: magic "BFVs" | u32 N | u32 W | limbs…
//
// Ciphertexts are what crosses the user↔server boundary in the paper's
// deployment model (§3: users encrypt, the PIM server computes).

var (
	magicCiphertext = [4]byte{'B', 'F', 'V', 'c'}
	magicSecretKey  = [4]byte{'B', 'F', 'V', 's'}
)

const maxSerializedPolys = 16 // sanity bound when decoding

// Polynomial limbs cross io.Writer/io.Reader boundaries through a fixed
// pooled chunk buffer instead of binary.Write/binary.Read, which would
// stage the whole limb vector in one transient allocation. A served
// front end streams multi-hundred-KiB ciphertexts per request, so the
// encode/decode working set must stay O(chunk), not O(blob). The wire
// layout is unchanged: the little-endian u32 limb sequence.

const polyChunkWords = 8 << 10 // 32 KiB chunks

var polyChunkPool = sync.Pool{New: func() any {
	b := make([]byte, polyChunkWords*4)
	return &b
}}

func writePoly(w io.Writer, p *poly.Poly) error {
	bp := polyChunkPool.Get().(*[]byte)
	defer polyChunkPool.Put(bp)
	buf := *bp
	c := p.C
	for len(c) > 0 {
		k := min(len(c), polyChunkWords)
		for i, v := range c[:k] {
			binary.LittleEndian.PutUint32(buf[i*4:], v)
		}
		if _, err := w.Write(buf[:k*4]); err != nil {
			return err
		}
		c = c[k:]
	}
	return nil
}

// BackingAllocator supplies and reclaims []uint32 coefficient backings
// for the zero-copy decode path. Get returns a backing of exactly the
// requested word count with undefined contents (decoding overwrites
// every word); Put takes one back when a partially decoded ciphertext
// is abandoned mid-error. internal/polypool.Pool satisfies it.
type BackingAllocator interface {
	Get(words int) []uint32
	Put(b []uint32)
}

func readPoly(r io.Reader, n, width int, alloc BackingAllocator) (*poly.Poly, error) {
	var p *poly.Poly
	if alloc != nil {
		p = poly.NewPolyBacked(n, width, alloc.Get(n*width))
	} else {
		p = poly.NewPoly(n, width)
	}
	bp := polyChunkPool.Get().(*[]byte)
	defer polyChunkPool.Put(bp)
	buf := *bp
	c := p.C
	for len(c) > 0 {
		k := min(len(c), polyChunkWords)
		if _, err := io.ReadFull(r, buf[:k*4]); err != nil {
			if alloc != nil {
				alloc.Put(p.C)
			}
			return nil, err
		}
		for i := range c[:k] {
			c[i] = binary.LittleEndian.Uint32(buf[i*4:])
		}
		c = c[k:]
	}
	return p, nil
}

// readPolyCanonical reads one polynomial and rejects non-canonical
// coefficients (value ≥ q). Every decoder funnels through this check:
// downstream arithmetic assumes fully reduced residues, and a hostile
// blob must not smuggle unreduced ones past the boundary. On any error
// the backing (if pooled) has already been returned to alloc.
func readPolyCanonical(r io.Reader, n, width int, q limb32.Nat, alloc BackingAllocator) (*poly.Poly, error) {
	p, err := readPoly(r, n, width, alloc)
	if err != nil {
		return nil, err
	}
	for c := 0; c < n; c++ {
		if limb32.Cmp(limb32.Nat(p.C[c*width:(c+1)*width]), q, nil) >= 0 {
			if alloc != nil {
				alloc.Put(p.C)
			}
			return nil, fmt.Errorf("bfv: non-canonical coefficient %d (not reduced mod q)", c)
		}
	}
	return p, nil
}

// Serialize writes the ciphertext in binary form.
func (ct *Ciphertext) Serialize(w io.Writer) error {
	if len(ct.Polys) == 0 {
		return errors.New("bfv: cannot serialize empty ciphertext")
	}
	if _, err := w.Write(magicCiphertext[:]); err != nil {
		return err
	}
	hdr := []uint32{uint32(len(ct.Polys)), uint32(ct.Polys[0].N), uint32(ct.Polys[0].W)}
	if err := binary.Write(w, binary.LittleEndian, hdr); err != nil {
		return err
	}
	for _, p := range ct.Polys {
		if err := writePoly(w, p); err != nil {
			return err
		}
	}
	return nil
}

// ReadCiphertext deserializes a ciphertext and validates it against params.
func ReadCiphertext(r io.Reader, params *Parameters) (*Ciphertext, error) {
	return ReadCiphertextBacked(r, params, nil)
}

// ReadCiphertextBacked deserializes like ReadCiphertext but draws the
// coefficient backings from alloc (pass nil for ordinary allocation).
// On any decode error every backing already acquired is returned to
// alloc, so a rejected blob leaves the allocator balanced.
func ReadCiphertextBacked(r io.Reader, params *Parameters, alloc BackingAllocator) (*Ciphertext, error) {
	var magic [4]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, err
	}
	if magic != magicCiphertext {
		return nil, errors.New("bfv: bad ciphertext magic")
	}
	hdr := make([]uint32, 3)
	if err := binary.Read(r, binary.LittleEndian, hdr); err != nil {
		return nil, err
	}
	count, n, w := int(hdr[0]), int(hdr[1]), int(hdr[2])
	if count == 0 || count > maxSerializedPolys {
		return nil, fmt.Errorf("bfv: implausible polynomial count %d", count)
	}
	if n != params.N || w != params.Q.W {
		return nil, fmt.Errorf("bfv: ciphertext shape %d/%d does not match parameters %d/%d",
			n, w, params.N, params.Q.W)
	}
	ct := &Ciphertext{Polys: make([]*poly.Poly, count)}
	for i := range ct.Polys {
		p, err := readPolyCanonical(r, n, w, params.Q.Q, alloc)
		if err != nil {
			if alloc != nil {
				for _, done := range ct.Polys[:i] {
					alloc.Put(done.C)
				}
			}
			return nil, err
		}
		ct.Polys[i] = p
	}
	return ct, nil
}

// Serialize writes the secret key in binary form.
func (sk *SecretKey) Serialize(w io.Writer) error {
	if _, err := w.Write(magicSecretKey[:]); err != nil {
		return err
	}
	hdr := []uint32{uint32(sk.S.N), uint32(sk.S.W)}
	if err := binary.Write(w, binary.LittleEndian, hdr); err != nil {
		return err
	}
	return writePoly(w, sk.S)
}

// ReadSecretKey deserializes a secret key.
func ReadSecretKey(r io.Reader, params *Parameters) (*SecretKey, error) {
	var magic [4]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, err
	}
	if magic != magicSecretKey {
		return nil, errors.New("bfv: bad secret-key magic")
	}
	hdr := make([]uint32, 2)
	if err := binary.Read(r, binary.LittleEndian, hdr); err != nil {
		return nil, err
	}
	if int(hdr[0]) != params.N || int(hdr[1]) != params.Q.W {
		return nil, errors.New("bfv: secret key shape mismatch")
	}
	return readPolyAsSecret(r, params)
}

func readPolyAsSecret(r io.Reader, params *Parameters) (*SecretKey, error) {
	p, err := readPolyCanonical(r, params.N, params.Q.W, params.Q.Q, nil)
	if err != nil {
		return nil, err
	}
	return &SecretKey{S: p}, nil
}
