package bfv

import (
	"bytes"
	"testing"

	"repro/internal/limb32"
)

// limbCounts aliases limb32.Counts for brevity in tests.
type limbCounts = limb32.Counts

func TestIntegerEncoderRoundTrip(t *testing.T) {
	ie := NewIntegerEncoder(ParamsToy()) // t = 16
	for _, v := range []int64{0, 1, 7, -1, -8} {
		if got := ie.Decode(ie.Encode(v)); got != v {
			t.Errorf("Decode(Encode(%d)) = %d", v, got)
		}
	}
	// Values wrap mod t.
	if got := ie.Decode(ie.Encode(17)); got != 1 {
		t.Errorf("17 mod 16 = %d, want 1", got)
	}
}

func TestBatchEncoderRoundTrip(t *testing.T) {
	params := mustParams(64, prime109, 65537, 28) // t ≡ 1 mod 128
	be, err := NewBatchEncoder(params)
	if err != nil {
		t.Fatal(err)
	}
	vals := make([]uint64, params.N)
	for i := range vals {
		vals[i] = uint64(i * 31 % 65537)
	}
	pt, err := be.Encode(vals)
	if err != nil {
		t.Fatal(err)
	}
	got := be.Decode(pt)
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("slot %d: got %d want %d", i, got[i], vals[i])
		}
	}
}

func TestBatchEncoderSlotwiseOps(t *testing.T) {
	// SIMD property: homomorphic ops act slot-wise under batching.
	params := mustParams(64, prime109, 65537, 28)
	be, err := NewBatchEncoder(params)
	if err != nil {
		t.Fatal(err)
	}
	c := newCtx(t, params, 20, true)

	a := []uint64{3, 1, 4, 1, 5, 9, 2, 6}
	b := []uint64{2, 7, 1, 8, 2, 8, 1, 8}
	pa, _ := be.Encode(a)
	pb, _ := be.Encode(b)
	cta, _ := c.enc.Encrypt(pa)
	ctb, _ := c.enc.Encrypt(pb)

	sum := c.eval.Add(cta, ctb)
	gotSum := be.Decode(c.dec.Decrypt(sum))
	prod, err := c.eval.Mul(cta, ctb)
	if err != nil {
		t.Fatal(err)
	}
	gotProd := be.Decode(c.dec.Decrypt(prod))
	for i := range a {
		if gotSum[i] != a[i]+b[i] {
			t.Errorf("slot %d sum = %d, want %d", i, gotSum[i], a[i]+b[i])
		}
		if gotProd[i] != a[i]*b[i] {
			t.Errorf("slot %d prod = %d, want %d", i, gotProd[i], a[i]*b[i])
		}
	}
}

func TestBatchEncoderRejectsBadParams(t *testing.T) {
	if _, err := NewBatchEncoder(ParamsToy()); err == nil {
		t.Error("t=16 should not support batching (not prime)")
	}
	bad := mustParams(64, prime109, 97, 28) // 97 is prime but 96 % 128 != 0
	if _, err := NewBatchEncoder(bad); err == nil {
		t.Error("t=97, N=64 should not support batching")
	}
}

func TestBatchEncoderTooManyValues(t *testing.T) {
	params := mustParams(64, prime109, 65537, 28)
	be, _ := NewBatchEncoder(params)
	if _, err := be.Encode(make([]uint64, 65)); err == nil {
		t.Error("expected error for > N values")
	}
}

func TestCiphertextSerializationRoundTrip(t *testing.T) {
	c := newCtx(t, ParamsToy(), 21, false)
	ct, _ := c.enc.EncryptValue(9)
	var buf bytes.Buffer
	if err := ct.Serialize(&buf); err != nil {
		t.Fatal(err)
	}
	wantSize := 4 + 12 + 2*c.params.N*c.params.Q.W*4
	if buf.Len() != wantSize {
		t.Errorf("serialized size %d, want %d", buf.Len(), wantSize)
	}
	back, err := ReadCiphertext(&buf, c.params)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(ct) {
		t.Error("ciphertext round trip differs")
	}
	if got := c.dec.DecryptValue(back); got != 9 {
		t.Errorf("deserialized ciphertext decrypts to %d", got)
	}
}

func TestSecretKeySerializationRoundTrip(t *testing.T) {
	c := newCtx(t, ParamsToy(), 22, false)
	var buf bytes.Buffer
	if err := c.sk.Serialize(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSecretKey(&buf, c.params)
	if err != nil {
		t.Fatal(err)
	}
	if !back.S.Equal(c.sk.S) {
		t.Error("secret key round trip differs")
	}
}

func TestSerializationRejectsGarbage(t *testing.T) {
	params := ParamsToy()
	if _, err := ReadCiphertext(bytes.NewReader([]byte("nope")), params); err == nil {
		t.Error("garbage accepted as ciphertext")
	}
	if _, err := ReadSecretKey(bytes.NewReader([]byte("BFVcxxxxxxxx")), params); err == nil {
		t.Error("wrong magic accepted as secret key")
	}
	// Truncated ciphertext.
	c := newCtx(t, params, 23, false)
	ct, _ := c.enc.EncryptValue(1)
	var buf bytes.Buffer
	ct.Serialize(&buf)
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, err := ReadCiphertext(bytes.NewReader(trunc), params); err == nil {
		t.Error("truncated ciphertext accepted")
	}
	// Shape mismatch: serialize under toy params, read under sec27.
	buf.Reset()
	ct.Serialize(&buf)
	if _, err := ReadCiphertext(&buf, ParamsSec27()); err == nil {
		t.Error("shape mismatch accepted")
	}
}
