package bfv

import (
	"errors"
	"math/bits"
	"sync"
	"sync/atomic"

	"repro/internal/dcrt"
	"repro/internal/poly"
)

// NTT-resident multiplication outputs: a relinearized product's two
// components are exact integers in the extended basis — the rescaled
// tensor component Y = ⌊t·d/q⌉ plus the key-switching accumulator — and
// nothing forces them through the mod-q base conversion until a consumer
// needs coefficients. A ProductNTT keeps them as residue-domain
// accumulators: deferred products add in the RNS domain (fusing
// Mul-then-Sum pipelines into a single final conversion pair), chain into
// further multiplications through a centered-mod-q NTT form computed
// without ever packing coefficients, and materialize bit-identically to
// Evaluator.Mul. This extends PR 4's RotatedNTT pattern from rotations to
// the multiplication pipeline.

// ProductNTT is a relinearized degree-1 product held in deferred
// double-CRT form: res0/res1 are residue-domain extended-basis elements
// whose exact integer coefficients are congruent mod q to the
// materialized components. On backends that cannot defer the handle is
// created already materialized and behaves identically.
//
// Materialize, Add, Release and operand use are mutually safe: each takes
// the handle's lock (Add takes both operands' locks in allocation order),
// and Add reports false — so callers materialize and fall back — when an
// operand was already materialized or released.
type ProductNTT struct {
	par *Parameters
	ctx *dcrt.Context // nil when the handle was created materialized

	seq     uint64 // allocation order, the Add lock ordering
	magBits int    // bound: |component value| < 2^magBits

	mu           sync.Mutex
	res0, res1   *dcrt.Poly // residue-domain exact accumulators; nil after Release
	cent0, cent1 *dcrt.Poly // cached centered NTT forms for chaining
	ct           *Ciphertext

	// inUse counts in-flight multiplications reading this handle as an
	// operand; a Release that arrives while they run (a concurrent
	// consumer forcing the same facade handle) is deferred until the
	// last one finishes instead of freeing accumulators under them.
	inUse          int
	releasePending bool
}

// productSeq hands out the package-wide lock order for ProductNTT.
var productSeq atomic.Uint64

// mulMagBits bounds the exact integer magnitude of a deferred product's
// components: the rescaled tensor part |⌊t·d/q⌉| ≤ t·n·q/4 + 1 plus the
// key-switching accumulator (digits · n · 2^base · q), conservatively
// rounded up.
func mulMagBits(par *Parameters) int {
	tensor := bits.Len64(par.T) + par.Q.Bits() + bits.Len(uint(par.N))
	keySwitch := par.Q.Bits() + int(par.RelinBaseBits) +
		bits.Len(uint(par.RelinDigits())) + bits.Len(uint(par.N)) + 1
	if keySwitch > tensor {
		tensor = keySwitch
	}
	return tensor + 2
}

// MulOperand is an input to the deferred multiplication pipeline: either
// a *Ciphertext (degree 1) or a *ProductNTT — the latter feeds its
// centered NTT forms straight into the next tensor product, so chained
// multiplications never pack coefficients between levels. The interface
// is closed (both implementations live in this package).
type MulOperand interface {
	// tensorOperand returns the centered-mod-q NTT form of component i
	// (0 or 1) for the tensor product, cached on the operand.
	tensorOperand(ctx *dcrt.Context, i int) *dcrt.Poly
	// materializeOperand returns the coefficient-domain ciphertext — the
	// fallback for backends that cannot defer.
	materializeOperand() (*Ciphertext, error)
	// acquireOperand/releaseOperand bracket an in-flight multiplication
	// reading the operand's forms, deferring a concurrent Release.
	acquireOperand()
	releaseOperand()
}

func (ct *Ciphertext) tensorOperand(ctx *dcrt.Context, i int) *dcrt.Poly {
	return ct.rnsNTT(ctx, i)
}

func (ct *Ciphertext) materializeOperand() (*Ciphertext, error) { return ct, nil }

func (ct *Ciphertext) acquireOperand() {}
func (ct *Ciphertext) releaseOperand() {}

// tensorOperand serves the deferred product's cached centered NTT forms,
// building both on first use from the residue-domain accumulators — one
// base conversion and one lazy forward-transform set per component,
// bit-identical to materializing and re-decomposing. A handle whose
// accumulators were already released (a concurrent consumer forced and
// freed it) serves the materialized ciphertext's cached forms instead.
func (r *ProductNTT) tensorOperand(ctx *dcrt.Context, i int) *dcrt.Poly {
	r.mu.Lock()
	if r.ctx != nil && r.ctx != ctx {
		r.mu.Unlock()
		panic("bfv: ProductNTT used with a foreign double-CRT context")
	}
	if r.cent0 == nil && r.res0 != nil {
		r.cent0 = ctx.CenteredNTTFromResidues(r.res0)
		r.cent1 = ctx.CenteredNTTFromResidues(r.res1)
	}
	if r.cent0 != nil {
		f := r.cent0
		if i == 1 {
			f = r.cent1
		}
		r.mu.Unlock()
		return f
	}
	ct := r.ct
	r.mu.Unlock()
	if ct == nil {
		panic("bfv: ProductNTT operand use after Release")
	}
	return ct.rnsNTT(ctx, i)
}

func (r *ProductNTT) materializeOperand() (*Ciphertext, error) {
	return r.Materialize(), nil
}

func (r *ProductNTT) acquireOperand() {
	r.mu.Lock()
	r.inUse++
	r.mu.Unlock()
}

func (r *ProductNTT) releaseOperand() {
	r.mu.Lock()
	r.inUse--
	if r.inUse == 0 && r.releasePending {
		r.releasePending = false
		r.freeLocked()
	}
	r.mu.Unlock()
}

// freeLocked returns the accumulators and cached forms to the pool; the
// caller holds r.mu.
func (r *ProductNTT) freeLocked() {
	if r.res0 != nil {
		r.ctx.PutScratch(r.res0)
		r.ctx.PutScratch(r.res1)
		r.res0, r.res1 = nil, nil
	}
	if r.cent0 != nil {
		r.ctx.PutScratch(r.cent0)
		r.ctx.PutScratch(r.cent1)
		r.cent0, r.cent1 = nil, nil
	}
}

// CanDeferMuls reports whether this evaluator's products can actually
// stay NTT-resident: only the RNS-native double-CRT backend (with a
// relinearization key) defers; other backends' MulNTT transparently
// materializes. Capability queries gate on this instead of assuming
// deferral happened.
func (ev *Evaluator) CanDeferMuls() bool {
	return ev.useRNSNative() && ev.rlk != nil && mulMagBits(ev.params)+1 < dcrtFor(ev.params).BoundBits
}

// CanDeferMuls reports the wrapped evaluator's deferral capability.
func (be *BatchEvaluator) CanDeferMuls() bool { return be.ev.CanDeferMuls() }

// MulNTT returns the relinearized product of two degree-1 operands in
// deferred NTT-resident form: the tensor products, rescaling and
// key-switching accumulation run as usual, but the two output base
// conversions are postponed until Materialize, deferred products Add in
// the RNS domain, and a ProductNTT operand chains its centered NTT forms
// straight into the next tensor — a Mul→Mul→Mul chain packs coefficients
// only where a digit decomposition genuinely needs them. On backends that
// cannot defer it falls back to the materialized path; either way
// Materialize's result is bit-identical to Evaluator.Mul.
func (ev *Evaluator) MulNTT(a, b MulOperand) (*ProductNTT, error) {
	if !ev.CanDeferMuls() {
		ca, err := a.materializeOperand()
		if err != nil {
			return nil, err
		}
		cb, err := b.materializeOperand()
		if err != nil {
			return nil, err
		}
		ct, err := ev.Mul(ca, cb)
		if err != nil {
			return nil, err
		}
		return &ProductNTT{par: ev.params, ct: ct}, nil
	}
	if ct, ok := a.(*Ciphertext); ok && ct.Degree() != 1 {
		return nil, errors.New("bfv: MulNTT requires degree-1 operands")
	}
	if ct, ok := b.(*Ciphertext); ok && ct.Degree() != 1 {
		return nil, errors.New("bfv: MulNTT requires degree-1 operands")
	}
	a.acquireOperand()
	defer a.releaseOperand()
	if b != a {
		b.acquireOperand()
		defer b.releaseOperand()
	}
	res0, res1 := ev.mulDeferred(a, b)
	return &ProductNTT{
		par: ev.params, ctx: dcrtFor(ev.params),
		seq:  productSeq.Add(1),
		res0: res0, res1: res1,
		magBits: mulMagBits(ev.params),
	}, nil
}

// mulDeferred runs tensor + rescale + relinearization entirely in the
// extended basis and returns the two exact-integer component accumulators
// in the residue domain (pooled; the caller owns them). Requires
// CanDeferMuls.
func (ev *Evaluator) mulDeferred(a, b MulOperand) (res0, res1 *dcrt.Poly) {
	par := ev.params
	ctx := dcrtFor(par)
	ra0 := a.tensorOperand(ctx, 0)
	ra1 := a.tensorOperand(ctx, 1)
	// Repeat multiplicands (chained products against one operand, shared
	// dot-product weights) serve their forms with cached Shoup companions
	// — the tensor passes then run Shoup multiplications instead of
	// Barrett reductions. Single-use operands return nil companions.
	var rb0, rb1, rb0s, rb1s *dcrt.Poly
	if bct, ok := b.(*Ciphertext); ok {
		rb0, rb0s = bct.rnsNTTShoup(ctx, 0)
		rb1, rb1s = bct.rnsNTTShoup(ctx, 1)
	} else {
		rb0 = b.tensorOperand(ctx, 0)
		rb1 = b.tensorOperand(ctx, 1)
	}

	sr := ctx.ScaleRounder(par.T)

	// d2 = ⌊t·c1·c1'/q⌉ feeds the digit decomposition straight from its
	// base-conversion words — the rescaled polynomial is never packed —
	// and the key switch runs on the sub-basis prefix that holds its
	// accumulator exactly, extending back to the full basis in the
	// residue domain.
	rd0 := ctx.GetScratch()
	if rb1s != nil {
		ctx.MulShoupLazyNTT(rd0, ra1, rb1, rb1s)
	} else {
		ctx.MulNTT(rd0, ra1, rb1)
	}
	k0, k1 := ev.rlk.forms.get(ctx, ev.rlk.K0, ev.rlk.K1)
	subK := par.dcrtSubK
	digits := sr.ScaleRoundDigits(rd0, par.RelinBaseBits, min(par.RelinDigits(), len(k0)), subK)
	acc0, acc1 := keySwitchAccResidues(ctx, digits, k0, k1, subK)

	// d0 and d1 rescale in place to exact-integer residues (the scratch
	// transfers to the handle), with the key-switching accumulators
	// folded in during the division sweep itself — no mod-q reduction,
	// no packing, no separate addition pass.
	rd1 := ctx.GetScratch()
	if rb0s != nil && rb1s != nil {
		ctx.MulShoupLazyNTT(rd0, ra0, rb0, rb0s)
		ctx.MulPairAddShoupLazyNTT(rd1, ra0, rb1, rb1s, ra1, rb0, rb0s)
	} else {
		ctx.MulNTT(rd0, ra0, rb0)
		ctx.MulPairAddNTT(rd1, ra0, rb1, ra1, rb0)
	}
	res0 = sr.ScaleRoundResiduesAddInPlace(rd0, acc0)
	res1 = sr.ScaleRoundResiduesAddInPlace(rd1, acc1)
	ctx.PutScratch(acc0)
	ctx.PutScratch(acc1)
	return res0, res1
}

// Materialize forces the deferred product into a coefficient-domain
// ciphertext (the two base conversions), caching the result — repeated
// calls convert once. Bit-identical to Evaluator.Mul.
func (r *ProductNTT) Materialize() *Ciphertext {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.ct == nil {
		if r.res0 == nil {
			panic("bfv: Materialize after Release on an unmaterialized ProductNTT")
		}
		r.ct = &Ciphertext{Polys: []*poly.Poly{
			r.ctx.FromResidues(r.res0), r.ctx.FromResidues(r.res1),
		}}
	}
	return r.ct
}

// Add returns the deferred sum of two products, entirely in the RNS
// domain — no base conversion. It reports false when the sum cannot stay
// deferred (either operand already materialized or released, contexts
// differ, or the exact integer sum would leave the basis exactness
// window); callers then materialize and add mod q, which produces the
// identical result.
func (r *ProductNTT) Add(o *ProductNTT) (*ProductNTT, bool) {
	if r.ctx == nil || o.ctx == nil || r.ctx != o.ctx {
		return nil, false
	}
	mag := r.magBits
	if o.magBits > mag {
		mag = o.magBits
	}
	mag++
	if mag >= r.ctx.BoundBits {
		return nil, false
	}
	if r == o {
		r.mu.Lock()
		defer r.mu.Unlock()
	} else {
		first, second := r, o
		if first.seq > second.seq {
			first, second = second, first
		}
		first.mu.Lock()
		defer first.mu.Unlock()
		second.mu.Lock()
		defer second.mu.Unlock()
	}
	if r.res0 == nil || o.res0 == nil || r.ct != nil || o.ct != nil {
		return nil, false
	}
	res0 := r.ctx.GetScratch()
	res1 := r.ctx.GetScratch()
	// The accumulators carry the lazy < 2p bound; the lazy add keeps the
	// fold closed under that bound (a strict r.Add would let limb words
	// creep up by ~p per chained sum and silently wrap on long folds).
	r.ctx.AddLazyNTT(res0, r.res0, o.res0)
	r.ctx.AddLazyNTT(res1, r.res1, o.res1)
	return &ProductNTT{
		par: r.par, ctx: r.ctx,
		seq:  productSeq.Add(1),
		res0: res0, res1: res1,
		magBits: mag,
	}, true
}

// Release returns the accumulators and cached forms to the context's
// scratch pool. Call it on handles that are done deferring (materialized
// or discarded) to keep steady-state batched multiplication
// allocation-free; the handle must not be used for further Add, operand
// use, or first-time Materialize afterwards. A Release racing an
// in-flight multiplication that reads this handle is deferred until that
// multiplication finishes.
func (r *ProductNTT) Release() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.ctx == nil {
		return
	}
	if r.inUse > 0 {
		r.releasePending = true
		return
	}
	r.freeLocked()
}

// MulManyNTT is MulMany with deferred outputs: each product stays
// NTT-resident until a consumer forces coefficients, so Mul-then-Sum
// pipelines (dot products, variance sums) pay one base-conversion pair
// for the whole reduction instead of one per product. Materializing every
// output reproduces MulMany bit for bit.
func (be *BatchEvaluator) MulManyNTT(as, bs []MulOperand) ([]*ProductNTT, error) {
	if len(as) != len(bs) {
		return nil, errors.New("bfv: MulManyNTT length mismatch")
	}
	out := make([]*ProductNTT, len(as))
	err := be.forEach(len(as), func(i int) error {
		p, err := be.ev.MulNTT(as[i], bs[i])
		out[i] = p
		return err
	})
	if err != nil {
		// Hand the handles already produced back to the scratch pool —
		// the caller only sees the error, so nothing else can.
		for _, p := range out {
			if p != nil {
				p.Release()
			}
		}
		return nil, err
	}
	return out, nil
}
