package bfv

import (
	"errors"
	"math/big"

	"repro/internal/poly"
	"repro/internal/sampling"
)

// Encryptor encrypts plaintexts under a public key.
type Encryptor struct {
	params *Parameters
	pk     *PublicKey
	src    *sampling.Source
}

// NewEncryptor returns an Encryptor.
func NewEncryptor(params *Parameters, pk *PublicKey, src *sampling.Source) *Encryptor {
	return &Encryptor{params: params, pk: pk, src: src}
}

// DeltaEncode returns Δ·m in R_q for a plaintext m — the ring element a
// plaintext contributes to a ciphertext, exported for accelerator
// backends implementing AddPlain.
func DeltaEncode(params *Parameters, pt *Plaintext) *poly.Poly {
	return deltaPoly(params, pt)
}

// deltaPoly returns Δ·m in R_q for a plaintext m.
func deltaPoly(params *Parameters, pt *Plaintext) *poly.Poly {
	coeffs := make([]*big.Int, params.N)
	for i := range coeffs {
		c := new(big.Int).SetUint64(pt.Coeffs[i] % params.T)
		coeffs[i] = c.Mul(c, params.Delta)
	}
	return poly.FromBigCoeffs(coeffs, params.Q)
}

// Encrypt produces a fresh degree-1 encryption of pt:
//
//	c0 = p0·u + e1 + Δ·m,   c1 = p1·u + e2
func (e *Encryptor) Encrypt(pt *Plaintext) (*Ciphertext, error) {
	par := e.params
	if len(pt.Coeffs) != par.N {
		return nil, errors.New("bfv: plaintext length mismatch")
	}
	u := ternaryPoly(e.src, par.N, par.Q)
	e1 := gaussianPoly(e.src, par.N, par.Q)
	e2 := gaussianPoly(e.src, par.N, par.Q)

	// Both masking products p0·u and p1·u run on the double-CRT backend:
	// the public key's NTT forms are cached across encryptions and the
	// ephemeral u pays one forward transform set for both products.
	ctx := dcrtFor(par)
	p0R, p1R := e.pk.forms.get(ctx, []*poly.Poly{e.pk.P0}, []*poly.Poly{e.pk.P1})
	uR := ctx.ToRNS(u)

	prod := ctx.NewPoly()
	ctx.MulNTT(prod, p0R[0], uR)
	c0 := ctx.FromRNS(prod)
	poly.Add(c0, c0, e1, par.Q, nil)
	poly.Add(c0, c0, deltaPoly(par, pt), par.Q, nil)

	ctx.MulNTT(prod, p1R[0], uR)
	c1 := ctx.FromRNS(prod)
	poly.Add(c1, c1, e2, par.Q, nil)

	return &Ciphertext{Polys: []*poly.Poly{c0, c1}}, nil
}

// EncryptValue encrypts a single unsigned value into the constant
// coefficient — the encoding the paper's statistical workloads use (one
// datum per ciphertext).
func (e *Encryptor) EncryptValue(v uint64) (*Ciphertext, error) {
	pt := NewPlaintext(e.params)
	pt.Coeffs[0] = v % e.params.T
	return e.Encrypt(pt)
}

// Decryptor decrypts ciphertexts with the secret key.
type Decryptor struct {
	params *Parameters
	sk     *SecretKey
}

// NewDecryptor returns a Decryptor.
func NewDecryptor(params *Parameters, sk *SecretKey) *Decryptor {
	return &Decryptor{params: params, sk: sk}
}

// phase computes c0 + c1·s + c2·s² + … in R_q (the "phase" of the
// ciphertext, Δ·m + noise).
func (d *Decryptor) phase(ct *Ciphertext) *poly.Poly {
	par := d.params
	acc := ct.Polys[0].Clone()
	sPow := d.sk.S.Clone()
	for i := 1; i < len(ct.Polys); i++ {
		tmp := mulRq(par, ct.Polys[i], sPow)
		poly.Add(acc, acc, tmp, par.Q, nil)
		if i+1 < len(ct.Polys) {
			sPow = mulRq(par, sPow, d.sk.S)
		}
	}
	return acc
}

// Decrypt recovers the plaintext: m = ⌊t·phase/q⌉ mod t, coefficient-wise
// on centered representatives.
func (d *Decryptor) Decrypt(ct *Ciphertext) *Plaintext {
	par := d.params
	v := d.phase(ct)
	pt := NewPlaintext(par)
	tBig := new(big.Int).SetUint64(par.T)
	for i, c := range v.ToCenteredCoeffs(par.Q) {
		num := new(big.Int).Mul(c, tBig)
		m := divRound(num, par.Q.QBig)
		m.Mod(m, tBig)
		pt.Coeffs[i] = m.Uint64()
	}
	return pt
}

// DecryptValue decrypts the constant coefficient (EncryptValue's inverse).
func (d *Decryptor) DecryptValue(ct *Ciphertext) uint64 {
	return d.Decrypt(ct).Coeffs[0]
}

// NoiseBudget returns the remaining noise budget of ct in bits:
// log2(q / (2·|v − Δ·m|_∞)) with m the decrypted plaintext. A negative or
// zero budget means decryption is no longer guaranteed.
func (d *Decryptor) NoiseBudget(ct *Ciphertext) int {
	par := d.params
	v := d.phase(ct)
	pt := d.Decrypt(ct)
	// noise = v - Δ·m over centered representatives.
	dm := deltaPoly(par, pt)
	diff := poly.NewPoly(par.N, par.Q.W)
	poly.Sub(diff, v, dm, par.Q, nil)
	norm := diff.InfNormCentered(par.Q)
	if norm.Sign() == 0 {
		return par.Q.Bits() - 1
	}
	budget := par.Q.Bits() - 1 - norm.BitLen()
	return budget
}

// divRound returns round(num/den) for den > 0, rounding half away from
// zero, using floor division on the shifted numerator.
func divRound(num, den *big.Int) *big.Int {
	n := new(big.Int)
	divRoundInto(n, num, new(big.Int).Rsh(den, 1), den)
	return n
}

// divRoundInto is divRound for hot loops: it writes round(num/den) into
// dst (which must not alias num) given half = ⌊den/2⌋. This is the one
// place the scheme's rounding convention lives — the RNS-native
// ScaleRounder is differentially pinned to it.
func divRoundInto(dst, num, half, den *big.Int) {
	if num.Sign() >= 0 {
		dst.Add(num, half)
	} else {
		dst.Sub(num, half)
	}
	dst.Quo(dst, den)
}
