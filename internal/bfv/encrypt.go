package bfv

import (
	"errors"
	"math/big"
	"math/bits"
	"sync"

	"repro/internal/dcrt"
	"repro/internal/poly"
	"repro/internal/sampling"
)

// Encryptor encrypts plaintexts under a public key.
type Encryptor struct {
	params *Parameters
	pk     *PublicKey
	src    *sampling.Source
}

// NewEncryptor returns an Encryptor.
func NewEncryptor(params *Parameters, pk *PublicKey, src *sampling.Source) *Encryptor {
	return &Encryptor{params: params, pk: pk, src: src}
}

// DeltaEncode returns Δ·m in R_q for a plaintext m — the ring element a
// plaintext contributes to a ciphertext, exported for accelerator
// backends implementing AddPlain.
func DeltaEncode(params *Parameters, pt *Plaintext) *poly.Poly {
	return deltaPoly(params, pt)
}

// deltaPoly returns Δ·m in R_q for a plaintext m.
func deltaPoly(params *Parameters, pt *Plaintext) *poly.Poly {
	coeffs := make([]*big.Int, params.N)
	for i := range coeffs {
		c := new(big.Int).SetUint64(pt.Coeffs[i] % params.T)
		coeffs[i] = c.Mul(c, params.Delta)
	}
	return poly.FromBigCoeffs(coeffs, params.Q)
}

// Encrypt produces a fresh degree-1 encryption of pt:
//
//	c0 = p0·u + e1 + Δ·m,   c1 = p1·u + e2
func (e *Encryptor) Encrypt(pt *Plaintext) (*Ciphertext, error) {
	par := e.params
	if len(pt.Coeffs) != par.N {
		return nil, errors.New("bfv: plaintext length mismatch")
	}
	u := ternaryPoly(e.src, par.N, par.Q)
	e1 := gaussianPoly(e.src, par.N, par.Q)
	e2 := gaussianPoly(e.src, par.N, par.Q)

	// Both masking products p0·u and p1·u run on the double-CRT backend:
	// the public key's NTT forms are cached across encryptions and the
	// ephemeral u pays one forward transform set for both products.
	ctx := dcrtFor(par)
	p0R, p1R := e.pk.forms.get(ctx, []*poly.Poly{e.pk.P0}, []*poly.Poly{e.pk.P1})
	uR := ctx.ToRNS(u)

	prod := ctx.NewPoly()
	ctx.MulNTT(prod, p0R[0], uR)
	c0 := ctx.FromRNS(prod)
	poly.Add(c0, c0, e1, par.Q, nil)
	poly.Add(c0, c0, deltaPoly(par, pt), par.Q, nil)

	ctx.MulNTT(prod, p1R[0], uR)
	c1 := ctx.FromRNS(prod)
	poly.Add(c1, c1, e2, par.Q, nil)

	return &Ciphertext{Polys: []*poly.Poly{c0, c1}}, nil
}

// EncryptValue encrypts a single unsigned value into the constant
// coefficient — the encoding the paper's statistical workloads use (one
// datum per ciphertext).
func (e *Encryptor) EncryptValue(v uint64) (*Ciphertext, error) {
	pt := NewPlaintext(e.params)
	pt.Coeffs[0] = v % e.params.T
	return e.Encrypt(pt)
}

// Decryptor decrypts ciphertexts with the secret key. On RNS-native
// parameter sets the unmetered Decrypt path runs entirely in word
// arithmetic: the phase c0 + c1·s (+ c2·s²) accumulates on the cached
// double-CRT NTT forms and the exact t/q rounding folds straight to
// mod t per limb (dcrt.ScaleRounder.RoundModT) — no big.Int. The
// big.Int path remains as the oracle and the fallback for moduli or
// degrees outside the word-sized window.
type Decryptor struct {
	params *Parameters
	sk     *SecretKey

	sOnce  sync.Once
	sForm  *dcrt.Poly // centered double-CRT form of s
	s2Form *dcrt.Poly // NTT-domain s·s (the integer convolution s⊛s)
}

// NewDecryptor returns a Decryptor.
func NewDecryptor(params *Parameters, sk *SecretKey) *Decryptor {
	return &Decryptor{params: params, sk: sk}
}

// secretForms builds (once) the secret key's double-CRT forms. s enters
// centered (ternary ±1); s² is the pointwise square — the integer
// convolution s⊛s, congruent to s² mod q, with coefficients ≤ n, so the
// phase accumulator stays exactly representable.
func (d *Decryptor) secretForms(ctx *dcrt.Context) (s, s2 *dcrt.Poly) {
	d.sOnce.Do(func() {
		d.sForm = ctx.ToRNSCentered(d.sk.S)
		d.s2Form = ctx.NewPoly()
		ctx.MulNTT(d.s2Form, d.sForm, d.sForm)
	})
	return d.sForm, d.s2Form
}

// phase computes c0 + c1·s + c2·s² + … in R_q (the "phase" of the
// ciphertext, Δ·m + noise).
func (d *Decryptor) phase(ct *Ciphertext) *poly.Poly {
	par := d.params
	acc := ct.Polys[0].Clone()
	sPow := d.sk.S.Clone()
	for i := 1; i < len(ct.Polys); i++ {
		tmp := mulRq(par, ct.Polys[i], sPow)
		poly.Add(acc, acc, tmp, par.Q, nil)
		if i+1 < len(ct.Polys) {
			sPow = mulRq(par, sPow, d.sk.S)
		}
	}
	return acc
}

// Decrypt recovers the plaintext: m = ⌊t·phase/q⌉ mod t, coefficient-wise
// on centered representatives. Degree-1 and degree-2 ciphertexts on
// RNS-native parameter sets decrypt without big.Int (see decryptRNS);
// other shapes fall back to the big.Int path, bit-identically.
func (d *Decryptor) Decrypt(ct *Ciphertext) *Plaintext {
	if pt, ok := d.decryptRNS(ct); ok {
		return pt
	}
	return d.decryptBig(ct)
}

// decryptRNS is the RNS-native Decrypt: the phase accumulates as an
// exact integer on the cached centered NTT forms (|phase| ≤ q·n^deg, far
// inside the basis bound), and RoundModT folds ⌊t·phase/q⌉ mod t per
// coefficient in word arithmetic. The phase integer differs from the
// big.Int path's mod-q representative by a multiple of q, which shifts
// the rounded quotient by a multiple of t — invisible mod t, so the
// result is bit-identical to the oracle. Returns ok=false when the
// modulus shape or ciphertext degree is outside the word-sized window.
func (d *Decryptor) decryptRNS(ct *Ciphertext) (*Plaintext, bool) {
	par := d.params
	deg := ct.Degree()
	if deg < 1 || deg > 2 {
		return nil, false
	}
	ctx := dcrtFor(par)
	if !ctx.RNSNative() {
		return nil, false
	}
	sr := ctx.ScaleRounder(par.T)
	magBits := par.Q.Bits() + deg*bits.Len(uint(par.N)) + 1
	if !sr.CanRoundModT(magBits) {
		return nil, false
	}
	s, s2 := d.secretForms(ctx)
	acc := ctx.GetScratch()
	defer ctx.PutScratch(acc)
	acc.Zero()
	ctx.AddNTT(acc, acc, ct.rnsNTT(ctx, 0))
	ctx.MulAddNTT(acc, ct.rnsNTT(ctx, 1), s)
	if deg == 2 {
		ctx.MulAddNTT(acc, ct.rnsNTT(ctx, 2), s2)
	}
	pt := NewPlaintext(par)
	sr.RoundModT(acc, pt.Coeffs)
	return pt, true
}

// DecryptBigInt is the retained big.Int decryption path — the rounding
// oracle the RNS-native Decrypt is differentially pinned to, exported
// (like Evaluator.SetBigIntRescale) so the perf-tracking benchmarks can
// measure the word-sized path against it. Results are bit-identical.
func (d *Decryptor) DecryptBigInt(ct *Ciphertext) *Plaintext {
	return d.decryptBig(ct)
}

// decryptBig is the big.Int Decrypt — the rounding oracle decryptRNS is
// differentially pinned to, and the fallback outside its window.
func (d *Decryptor) decryptBig(ct *Ciphertext) *Plaintext {
	par := d.params
	v := d.phase(ct)
	pt := NewPlaintext(par)
	tBig := new(big.Int).SetUint64(par.T)
	for i, c := range v.ToCenteredCoeffs(par.Q) {
		num := new(big.Int).Mul(c, tBig)
		m := divRound(num, par.Q.QBig)
		m.Mod(m, tBig)
		pt.Coeffs[i] = m.Uint64()
	}
	return pt
}

// DecryptValue decrypts the constant coefficient (EncryptValue's inverse).
func (d *Decryptor) DecryptValue(ct *Ciphertext) uint64 {
	return d.Decrypt(ct).Coeffs[0]
}

// NoiseBudget returns the remaining noise budget of ct in bits:
// log2(q / (2·|v − Δ·m|_∞)) with m the decrypted plaintext. A negative or
// zero budget means decryption is no longer guaranteed.
func (d *Decryptor) NoiseBudget(ct *Ciphertext) int {
	par := d.params
	v := d.phase(ct)
	pt := d.Decrypt(ct)
	// noise = v - Δ·m over centered representatives.
	dm := deltaPoly(par, pt)
	diff := poly.NewPoly(par.N, par.Q.W)
	poly.Sub(diff, v, dm, par.Q, nil)
	norm := diff.InfNormCentered(par.Q)
	if norm.Sign() == 0 {
		return par.Q.Bits() - 1
	}
	budget := par.Q.Bits() - 1 - norm.BitLen()
	return budget
}

// divRound returns round(num/den) for den > 0, rounding half away from
// zero, using floor division on the shifted numerator.
func divRound(num, den *big.Int) *big.Int {
	n := new(big.Int)
	divRoundInto(n, num, new(big.Int).Rsh(den, 1), den)
	return n
}

// divRoundInto is divRound for hot loops: it writes round(num/den) into
// dst (which must not alias num) given half = ⌊den/2⌋. This is the one
// place the scheme's rounding convention lives — the RNS-native
// ScaleRounder is differentially pinned to it.
func divRoundInto(dst, num, half, den *big.Int) {
	if num.Sign() >= 0 {
		dst.Add(num, half)
	} else {
		dst.Sub(num, half)
	}
	dst.Quo(dst, den)
}
