package bfv

import (
	"math/big"

	"repro/internal/limb32"
	"repro/internal/poly"
	"repro/internal/sampling"
)

// SecretKey is a ternary polynomial s ∈ R_q.
type SecretKey struct {
	S *poly.Poly
}

// PublicKey is the RLWE pair (p0, p1) = (-(a·s + e), a).
type PublicKey struct {
	P0, P1 *poly.Poly

	forms keyForms // lazily-built double-CRT forms (see dcrt.go)
}

// RelinKey holds the evaluation keys for relinearization: for each base-w
// digit i, (k0_i, k1_i) = (-(a_i·s + e_i) + wⁱ·s², a_i).
type RelinKey struct {
	BaseBits uint
	K0, K1   []*poly.Poly

	forms keyForms // lazily-built double-CRT forms (see dcrt.go)
}

// KeyGenerator derives keys from a parameter set and randomness source.
type KeyGenerator struct {
	params *Parameters
	src    *sampling.Source
}

// NewKeyGenerator returns a key generator. Pass a deterministic source for
// reproducible tests or one from sampling.NewSystemSource for real use.
func NewKeyGenerator(params *Parameters, src *sampling.Source) *KeyGenerator {
	return &KeyGenerator{params: params, src: src}
}

// signedPoly maps a slice of small signed samples into R_q.
func signedPoly(vals []int8, mod *poly.Modulus) *poly.Poly {
	coeffs := make([]int64, len(vals))
	for i, v := range vals {
		coeffs[i] = int64(v)
	}
	return poly.FromInt64Coeffs(coeffs, mod)
}

// uniformPoly samples a uniform element of R_q.
func uniformPoly(src *sampling.Source, n int, mod *poly.Modulus) *poly.Poly {
	p := poly.NewPoly(n, mod.W)
	for i := 0; i < n; i++ {
		p.Coeff(i).Set(src.UniformNat(mod.Q, mod.W))
	}
	return p
}

// gaussianPoly samples a discrete-Gaussian error polynomial.
func gaussianPoly(src *sampling.Source, n int, mod *poly.Modulus) *poly.Poly {
	e := make([]int8, n)
	src.Gaussian(e)
	return signedPoly(e, mod)
}

// ternaryPoly samples a uniform ternary polynomial.
func ternaryPoly(src *sampling.Source, n int, mod *poly.Modulus) *poly.Poly {
	v := make([]int8, n)
	src.Ternary(v)
	return signedPoly(v, mod)
}

// GenSecretKey samples a fresh ternary secret.
func (kg *KeyGenerator) GenSecretKey() *SecretKey {
	return &SecretKey{S: ternaryPoly(kg.src, kg.params.N, kg.params.Q)}
}

// GenPublicKey derives a public key for sk.
func (kg *KeyGenerator) GenPublicKey(sk *SecretKey) *PublicKey {
	par := kg.params
	a := uniformPoly(kg.src, par.N, par.Q)
	e := gaussianPoly(kg.src, par.N, par.Q)

	// p0 = -(a·s + e)
	as := mulRq(par, a, sk.S)
	poly.Add(as, as, e, par.Q, nil)
	poly.Neg(as, as, par.Q, nil)
	return &PublicKey{P0: as, P1: a}
}

// GenRelinKey derives the relinearization (evaluation) key for sk.
func (kg *KeyGenerator) GenRelinKey(sk *SecretKey) *RelinKey {
	par := kg.params
	s2 := mulRq(par, sk.S, sk.S)

	digits := par.RelinDigits()
	rk := &RelinKey{
		BaseBits: par.RelinBaseBits,
		K0:       make([]*poly.Poly, digits),
		K1:       make([]*poly.Poly, digits),
	}
	wPow := big.NewInt(1)
	base := new(big.Int).Lsh(big.NewInt(1), par.RelinBaseBits)
	for i := 0; i < digits; i++ {
		a := uniformPoly(kg.src, par.N, par.Q)
		e := gaussianPoly(kg.src, par.N, par.Q)

		// k0 = -(a·s + e) + wⁱ·s²
		k0 := mulRq(par, a, sk.S)
		poly.Add(k0, k0, e, par.Q, nil)
		poly.Neg(k0, k0, par.Q, nil)

		scaled := poly.NewPoly(par.N, par.Q.W)
		wq := new(big.Int).Mod(wPow, par.Q.QBig)
		poly.MulScalar(scaled, s2, limb32.FromBig(wq, par.Q.W), par.Q, nil)
		poly.Add(k0, k0, scaled, par.Q, nil)

		rk.K0[i] = k0
		rk.K1[i] = a
		wPow.Mul(wPow, base)
	}
	return rk
}

// GenKeyPair is a convenience bundling secret and public key generation.
func (kg *KeyGenerator) GenKeyPair() (*SecretKey, *PublicKey) {
	sk := kg.GenSecretKey()
	return sk, kg.GenPublicKey(sk)
}
