// Package bfv implements the Brakerski–Fan–Vercauteren somewhat-
// homomorphic encryption scheme — the scheme the paper accelerates on the
// UPMEM PIM system (§1, §3). It provides key generation, encryption,
// decryption, homomorphic addition and multiplication (with tensor
// scaling and relinearization), noise-budget tracking, integer and batch
// encoders, and binary serialization.
//
// The three parameter presets correspond to the paper's security levels:
// 27-bit coefficients with 1024-coefficient polynomials, 54-bit with 2048,
// and 109-bit with 4096 (§3: "for 27-bit security we need a polynomial
// that has 1024 27-bit coefficients ... we use integers of 32, 64 and 128
// bits respectively").
package bfv

import (
	"errors"
	"fmt"
	"math/big"
	"sync"

	"repro/internal/dcrt"
	"repro/internal/poly"
)

// Parameters fixes a BFV instance: ring degree N, coefficient modulus Q,
// plaintext modulus T, and the relinearization decomposition base 2^RelinBaseBits.
type Parameters struct {
	N             int
	Q             *poly.Modulus
	T             uint64
	Delta         *big.Int // ⌊Q/T⌋, the plaintext scaling factor
	RelinBaseBits uint

	relinDigits int // ⌈bits(Q)/RelinBaseBits⌉

	// Memoized double-CRT context (see dcrtFor): looked up once instead
	// of hashing the modulus string on every evaluator operation.
	dcrtOnce sync.Once
	dcrtCtx  *dcrt.Context
	dcrtSubK int // sub-basis length for key-switching accumulators (dcrtFor)
}

// NewParameters validates and assembles a parameter set.
func NewParameters(n int, q *big.Int, t uint64, relinBaseBits uint) (*Parameters, error) {
	if n <= 1 || n&(n-1) != 0 {
		return nil, fmt.Errorf("bfv: N=%d must be a power of two > 1", n)
	}
	if t < 2 {
		return nil, errors.New("bfv: plaintext modulus must be >= 2")
	}
	if q.Cmp(new(big.Int).SetUint64(4*t)) < 0 {
		return nil, errors.New("bfv: coefficient modulus too small for plaintext modulus")
	}
	if relinBaseBits == 0 || relinBaseBits > 32 {
		return nil, errors.New("bfv: relinearization base must be 1..32 bits")
	}
	mod, err := poly.NewModulus(q)
	if err != nil {
		return nil, err
	}
	delta := new(big.Int).Div(q, new(big.Int).SetUint64(t))
	digits := (q.BitLen() + int(relinBaseBits) - 1) / int(relinBaseBits)
	return &Parameters{
		N:             n,
		Q:             mod,
		T:             t,
		Delta:         delta,
		RelinBaseBits: relinBaseBits,
		relinDigits:   digits,
	}, nil
}

// The paper's moduli: the largest primes below 2^27, 2^54 and 2^109.
const (
	prime27  = "134217689"
	prime54  = "18014398509481951"
	prime109 = "649037107316853453566312041152481"
)

func mustParams(n int, qs string, t uint64, base uint) *Parameters {
	q, ok := new(big.Int).SetString(qs, 10)
	if !ok {
		panic("bfv: bad modulus literal")
	}
	p, err := NewParameters(n, q, t, base)
	if err != nil {
		panic(err)
	}
	return p
}

// ParamsSec27 is the paper's 27-bit security level: N=1024, 27-bit q,
// coefficients held in one 32-bit word. Supports homomorphic addition;
// the noise headroom is too small for multiplication (the paper's PIM
// microbenchmarks likewise treat multiplication as a raw-throughput
// experiment at this level).
func ParamsSec27() *Parameters { return mustParams(1024, prime27, 16, 9) }

// ParamsSec54 is the 54-bit level: N=2048, 54-bit q, two 32-bit words per
// coefficient. Supports addition chains and a shallow multiplication.
func ParamsSec54() *Parameters { return mustParams(2048, prime54, 16, 18) }

// ParamsSec109 is the 109-bit level: N=4096, 109-bit q, four 32-bit words
// per coefficient. Supports multiplication with comfortable noise margin.
func ParamsSec109() *Parameters { return mustParams(4096, prime109, 16, 28) }

// ParamsSec54AtDegree returns the 54-bit modulus at a custom power-of-two
// ring degree — the axis the double-CRT perf-tracking benchmarks sweep.
func ParamsSec54AtDegree(n int) *Parameters { return mustParams(n, prime54, 16, 18) }

// ParamsToy is a deliberately small instance (N=64, 60-bit q) for fast
// functional tests. It offers no security.
func ParamsToy() *Parameters { return mustParams(64, "1152921504606846883", 16, 20) }

// ParamsBatching returns a parameter set whose plaintext modulus 65537
// supports CRT batching (t ≡ 1 mod 2N) at the 109-bit level.
func ParamsBatching() *Parameters { return mustParams(4096, prime109, 65537, 28) }

// RelinDigits returns the number of base-2^RelinBaseBits digits used to
// decompose a ciphertext polynomial during relinearization.
func (p *Parameters) RelinDigits() int { return p.relinDigits }

// CiphertextBytes returns the size of a fresh (degree-1) ciphertext in
// bytes: 2 polynomials × N coefficients × W limbs × 4 bytes. This is the
// "ciphertext length" that drives the paper's data-movement argument.
func (p *Parameters) CiphertextBytes() int { return 2 * p.N * p.Q.W * 4 }

// PlaintextBytes returns the nominal size of the plain data a ciphertext
// carries under constant-coefficient encoding (one T-ary value).
func (p *Parameters) PlaintextBytes() int {
	bits := 0
	for v := p.T - 1; v > 0; v >>= 8 {
		bits += 8
	}
	if bits == 0 {
		bits = 8
	}
	return bits / 8
}

// Equal reports whether two parameter sets are interoperable.
func (p *Parameters) Equal(o *Parameters) bool {
	return p.N == o.N && p.T == o.T &&
		p.Q.QBig.Cmp(o.Q.QBig) == 0 &&
		p.RelinBaseBits == o.RelinBaseBits
}

// String summarizes the parameter set.
func (p *Parameters) String() string {
	return fmt.Sprintf("BFV{N=%d, |q|=%d bits (W=%d), t=%d, relin base=2^%d}",
		p.N, p.Q.Bits(), p.Q.W, p.T, p.RelinBaseBits)
}
