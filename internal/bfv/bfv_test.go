package bfv

import (
	"testing"

	"repro/internal/sampling"
)

// ctx bundles everything a functional test needs.
type ctx struct {
	params *Parameters
	sk     *SecretKey
	pk     *PublicKey
	rlk    *RelinKey
	enc    *Encryptor
	dec    *Decryptor
	eval   *Evaluator
}

func newCtx(t *testing.T, params *Parameters, seed uint64, relin bool) *ctx {
	t.Helper()
	src := sampling.NewSourceFromUint64(seed)
	kg := NewKeyGenerator(params, src)
	sk, pk := kg.GenKeyPair()
	var rlk *RelinKey
	if relin {
		rlk = kg.GenRelinKey(sk)
	}
	return &ctx{
		params: params,
		sk:     sk,
		pk:     pk,
		rlk:    rlk,
		enc:    NewEncryptor(params, pk, src),
		dec:    NewDecryptor(params, sk),
		eval:   NewEvaluator(params, rlk),
	}
}

func TestParamsValidation(t *testing.T) {
	q := ParamsToy().Q.QBig
	if _, err := NewParameters(100, q, 16, 20); err == nil {
		t.Error("non-power-of-two N accepted")
	}
	if _, err := NewParameters(64, q, 1, 20); err == nil {
		t.Error("t=1 accepted")
	}
	if _, err := NewParameters(64, q, 16, 0); err == nil {
		t.Error("relin base 0 accepted")
	}
	if _, err := NewParameters(64, q, 16, 40); err == nil {
		t.Error("relin base 40 accepted")
	}
}

func TestPresetShapes(t *testing.T) {
	cases := []struct {
		p        *Parameters
		n, w, qb int
	}{
		{ParamsSec27(), 1024, 1, 27},
		{ParamsSec54(), 2048, 2, 54},
		{ParamsSec109(), 4096, 4, 109},
	}
	for _, c := range cases {
		if c.p.N != c.n || c.p.Q.W != c.w || c.p.Q.Bits() != c.qb {
			t.Errorf("%v: want N=%d W=%d bits=%d", c.p, c.n, c.w, c.qb)
		}
	}
	// Ciphertext expansion: the paper's motivation (§1) — encrypted data is
	// orders of magnitude larger than plain data.
	p := ParamsSec109()
	if p.CiphertextBytes() != 2*4096*4*4 {
		t.Errorf("CiphertextBytes = %d", p.CiphertextBytes())
	}
	if ratio := p.CiphertextBytes() / p.PlaintextBytes(); ratio < 1000 {
		t.Errorf("ciphertext expansion %dx, expected >1000x", ratio)
	}
}

func TestEncryptDecryptRoundTrip(t *testing.T) {
	c := newCtx(t, ParamsToy(), 1, false)
	for _, v := range []uint64{0, 1, 7, 15} {
		ct, err := c.enc.EncryptValue(v)
		if err != nil {
			t.Fatal(err)
		}
		if got := c.dec.DecryptValue(ct); got != v {
			t.Errorf("decrypt(encrypt(%d)) = %d", v, got)
		}
	}
}

func TestEncryptDecryptFullPlaintext(t *testing.T) {
	c := newCtx(t, ParamsToy(), 2, false)
	pt := NewPlaintext(c.params)
	for i := range pt.Coeffs {
		pt.Coeffs[i] = uint64(i) % c.params.T
	}
	ct, err := c.enc.Encrypt(pt)
	if err != nil {
		t.Fatal(err)
	}
	got := c.dec.Decrypt(ct)
	for i := range pt.Coeffs {
		if got.Coeffs[i] != pt.Coeffs[i] {
			t.Fatalf("coeff %d: got %d want %d", i, got.Coeffs[i], pt.Coeffs[i])
		}
	}
}

func TestEncryptionIsRandomized(t *testing.T) {
	c := newCtx(t, ParamsToy(), 3, false)
	ct1, _ := c.enc.EncryptValue(5)
	ct2, _ := c.enc.EncryptValue(5)
	if ct1.Equal(ct2) {
		t.Error("two encryptions of the same value must differ")
	}
}

func TestHomomorphicAdd(t *testing.T) {
	c := newCtx(t, ParamsToy(), 4, false)
	ct1, _ := c.enc.EncryptValue(3)
	ct2, _ := c.enc.EncryptValue(9)
	sum := c.eval.Add(ct1, ct2)
	if got := c.dec.DecryptValue(sum); got != 12 {
		t.Errorf("3 + 9 = %d", got)
	}
	// Chained additions mod t.
	acc := sum
	for i := 0; i < 10; i++ {
		acc = c.eval.Add(acc, ct1)
	}
	want := uint64((12 + 10*3) % 16)
	if got := c.dec.DecryptValue(acc); got != want {
		t.Errorf("chained adds = %d, want %d", got, want)
	}
}

func TestHomomorphicSubNeg(t *testing.T) {
	c := newCtx(t, ParamsToy(), 5, false)
	ct1, _ := c.enc.EncryptValue(9)
	ct2, _ := c.enc.EncryptValue(3)
	if got := c.dec.DecryptValue(c.eval.Sub(ct1, ct2)); got != 6 {
		t.Errorf("9 - 3 = %d", got)
	}
	neg := c.eval.Neg(ct2)
	if got := c.dec.DecryptValue(neg); got != c.params.T-3 {
		t.Errorf("-3 mod t = %d, want %d", got, c.params.T-3)
	}
}

func TestAddPlainMulPlain(t *testing.T) {
	c := newCtx(t, ParamsToy(), 6, false)
	ie := NewIntegerEncoder(c.params)
	ct, _ := c.enc.EncryptValue(5)
	ct2 := c.eval.AddPlain(ct, ie.Encode(4))
	if got := c.dec.DecryptValue(ct2); got != 9 {
		t.Errorf("5 + plain 4 = %d", got)
	}
	ct3 := c.eval.MulPlain(ct, ie.Encode(3))
	if got := c.dec.DecryptValue(ct3); got != 15 {
		t.Errorf("5 * plain 3 = %d", got)
	}
}

func TestHomomorphicMul(t *testing.T) {
	c := newCtx(t, ParamsToy(), 7, true)
	ct1, _ := c.enc.EncryptValue(3)
	ct2, _ := c.enc.EncryptValue(5)
	prod, err := c.eval.Mul(ct1, ct2)
	if err != nil {
		t.Fatal(err)
	}
	if prod.Degree() != 1 {
		t.Errorf("relinearized product has degree %d", prod.Degree())
	}
	if got := c.dec.DecryptValue(prod); got != 15 {
		t.Errorf("3 * 5 = %d", got)
	}
}

func TestMulNoRelinDecrypts(t *testing.T) {
	c := newCtx(t, ParamsToy(), 8, false)
	ct1, _ := c.enc.EncryptValue(7)
	ct2, _ := c.enc.EncryptValue(2)
	prod, err := c.eval.MulNoRelin(ct1, ct2)
	if err != nil {
		t.Fatal(err)
	}
	if prod.Degree() != 2 {
		t.Fatalf("tensor product degree = %d, want 2", prod.Degree())
	}
	if got := c.dec.DecryptValue(prod); got != 14 {
		t.Errorf("7 * 2 (degree-2) = %d", got)
	}
}

func TestSquareForVariance(t *testing.T) {
	c := newCtx(t, ParamsToy(), 9, true)
	ct, _ := c.enc.EncryptValue(3)
	sq, err := c.eval.Square(ct)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.dec.DecryptValue(sq); got != 9 {
		t.Errorf("3^2 = %d", got)
	}
}

func TestMulDepthTwo(t *testing.T) {
	c := newCtx(t, ParamsToy(), 10, true)
	ct2, _ := c.enc.EncryptValue(2)
	ct3, _ := c.enc.EncryptValue(3)
	p1, err := c.eval.Mul(ct2, ct3) // 6
	if err != nil {
		t.Fatal(err)
	}
	p2, err := c.eval.Mul(p1, ct2) // 12
	if err != nil {
		t.Fatal(err)
	}
	if got := c.dec.DecryptValue(p2); got != 12 {
		t.Errorf("2*3*2 = %d", got)
	}
}

func TestMulRequiresDegreeOne(t *testing.T) {
	c := newCtx(t, ParamsToy(), 11, true)
	ct1, _ := c.enc.EncryptValue(1)
	ct2, _ := c.enc.EncryptValue(2)
	d2, _ := c.eval.MulNoRelin(ct1, ct2)
	if _, err := c.eval.MulNoRelin(d2, ct1); err == nil {
		t.Error("MulNoRelin on degree-2 operand should fail")
	}
}

func TestRelinearizeWithoutKey(t *testing.T) {
	c := newCtx(t, ParamsToy(), 12, false)
	ct1, _ := c.enc.EncryptValue(1)
	ct2, _ := c.enc.EncryptValue(2)
	d2, _ := c.eval.MulNoRelin(ct1, ct2)
	if _, err := c.eval.Relinearize(d2); err == nil {
		t.Error("Relinearize without key should fail")
	}
}

func TestNoiseBudgetDecreases(t *testing.T) {
	c := newCtx(t, ParamsToy(), 13, true)
	ct, _ := c.enc.EncryptValue(5)
	fresh := c.dec.NoiseBudget(ct)
	if fresh <= 0 {
		t.Fatalf("fresh budget %d should be positive", fresh)
	}
	sum := c.eval.Add(ct, ct)
	afterAdd := c.dec.NoiseBudget(sum)
	if afterAdd > fresh {
		t.Errorf("budget grew after add: %d -> %d", fresh, afterAdd)
	}
	prod, _ := c.eval.Mul(ct, ct)
	afterMul := c.dec.NoiseBudget(prod)
	if afterMul >= fresh {
		t.Errorf("budget did not shrink after mul: %d -> %d", fresh, afterMul)
	}
	if afterMul <= 0 {
		t.Errorf("budget exhausted after one mul: %d", afterMul)
	}
}

func TestAdditionChainNoiseGrowth(t *testing.T) {
	// Mean-style workload: summing many ciphertexts must stay decryptable.
	c := newCtx(t, ParamsToy(), 14, false)
	cts := make([]*Ciphertext, 64)
	var want uint64
	for i := range cts {
		v := uint64(i % 4)
		cts[i], _ = c.enc.EncryptValue(v)
		want += v
	}
	acc := cts[0]
	for _, ct := range cts[1:] {
		acc = c.eval.Add(acc, ct)
	}
	if got := c.dec.DecryptValue(acc); got != want%c.params.T {
		t.Errorf("sum of 64 ciphertexts = %d, want %d", got, want%c.params.T)
	}
	if b := c.dec.NoiseBudget(acc); b <= 0 {
		t.Errorf("budget exhausted after 64 adds: %d", b)
	}
}

func TestSec27AdditionRealParams(t *testing.T) {
	// The paper's smallest security level supports the addition workloads.
	c := newCtx(t, ParamsSec27(), 15, false)
	ct1, _ := c.enc.EncryptValue(6)
	ct2, _ := c.enc.EncryptValue(7)
	if got := c.dec.DecryptValue(c.eval.Add(ct1, ct2)); got != 13 {
		t.Errorf("sec27: 6+7 = %d", got)
	}
}

func TestSec54MulRealParams(t *testing.T) {
	if testing.Short() {
		t.Skip("real-parameter multiplication is slow")
	}
	c := newCtx(t, ParamsSec54(), 16, true)
	ct1, _ := c.enc.EncryptValue(11)
	ct2, _ := c.enc.EncryptValue(13)
	prod, err := c.eval.Mul(ct1, ct2)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.dec.DecryptValue(prod); got != (11*13)%c.params.T {
		t.Errorf("sec54: 11*13 mod %d = %d", c.params.T, got)
	}
}

func TestEvaluatorMeterCharges(t *testing.T) {
	c := newCtx(t, ParamsToy(), 17, true)
	var m limbCounts
	c.eval.Meter = &m
	ct1, _ := c.enc.EncryptValue(1)
	ct2, _ := c.enc.EncryptValue(2)
	c.eval.Add(ct1, ct2)
	addOps := m.Total()
	if addOps == 0 {
		t.Fatal("Add charged nothing")
	}
	m.Reset()
	if _, err := c.eval.Mul(ct1, ct2); err != nil {
		t.Fatal(err)
	}
	if m.Total() <= addOps*100 {
		t.Errorf("Mul (%d ops) should dwarf Add (%d ops)", m.Total(), addOps)
	}
}
