package bfv

import (
	"errors"
	"sync"

	"repro/internal/dcrt"
	"repro/internal/poly"
)

// Hoisted rotations: ApplyGalois pays one digit decomposition of c1 —
// limb shifts plus a forward-transform set per digit, the dominant
// forward-NTT cost of a rotation — for every Galois element. Because the
// decompose-then-permute convention (see ApplyGalois) makes the digit
// set independent of g, that decomposition can be computed once and
// reused: k rotations of one ciphertext cost 1 decomposition instead of
// k, with each extra element paying only slot gathers, pointwise
// products, and the output conversions. This is the standard hoisting
// trick, and because per-rotation ApplyGalois uses the same digits, the
// hoisted outputs are bit-identical to it.

// Hoisted caches the double-CRT digit decomposition of a degree-1
// ciphertext's c1 component for reuse across Galois elements. The cache
// is keyed to the exact component polynomial it was built from: if the
// ciphertext is mutated by swapping a component (the only mutation the
// evaluation layer's immutability convention permits), the stale digits
// are detected and rebuilt rather than served — the old buffers return
// to the scratch pool. A Hoisted is safe for concurrent
// ApplyGaloisHoisted calls (each snapshots the digit set under the
// handle's lock) as long as the ciphertext is not mutated and Release is
// not called while rotations are in flight — the same convention the
// per-ciphertext NTT cache follows.
type Hoisted struct {
	ct  *Ciphertext
	ctx *dcrt.Context // nil when the evaluator cannot hoist (no RNS-native backend)

	mu     sync.Mutex
	src    *poly.Poly // ct.Polys[1] at decomposition time
	digits []*dcrt.Poly
}

// Hoist decomposes ct's c1 component into double-CRT digit form, shared
// by all subsequent ApplyGaloisHoisted calls. On backends that cannot
// hoist (schoolbook/metered evaluators, or non-RNS-native moduli) the
// returned handle transparently falls back to per-rotation ApplyGalois —
// results are bit-identical either way.
func (ev *Evaluator) Hoist(ct *Ciphertext) (*Hoisted, error) {
	if ct.Degree() != 1 {
		return nil, errors.New("bfv: Hoist requires a degree-1 ciphertext")
	}
	h := &Hoisted{ct: ct}
	if ev.useRNSNative() {
		h.ctx = dcrtFor(ev.params)
		h.decompose(ev.params)
	}
	return h, nil
}

// decompose (re)builds the digit cache from the current c1 component,
// returning any previous digit set to the scratch pool. Callers hold
// h.mu (or have exclusive access during construction).
func (h *Hoisted) decompose(par *Parameters) {
	h.putDigits()
	h.src = h.ct.Polys[1]
	h.digits = h.ctx.DigitsToRNS(h.src, par.RelinBaseBits, par.RelinDigits())
}

func (h *Hoisted) putDigits() {
	for _, d := range h.digits {
		h.ctx.PutScratch(d)
	}
	h.digits = nil
	h.src = nil
}

// snapshot returns the current digit set, rebuilding first if the
// ciphertext's component was swapped since decomposition — stale digits
// are never served. The returned slice is immutable once built; holding
// it outside the lock is safe under the handle's concurrency convention.
func (h *Hoisted) snapshot(par *Parameters) []*dcrt.Poly {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.src != h.ct.Polys[1] || h.digits == nil {
		h.decompose(par)
	}
	return h.digits
}

// Release returns the cached digit forms to the context's scratch pool.
// Call it when the hoisted handle is no longer needed to keep
// steady-state batched evaluation allocation-free; the handle must not
// be used afterwards.
func (h *Hoisted) Release() {
	if h.ctx == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.putDigits()
}

// ApplyGaloisHoisted is ApplyGalois reusing the hoisted digit
// decomposition: bit-identical output, with the per-rotation cost
// reduced to slot gathers, pointwise accumulation, and the output
// conversions. A handle whose ciphertext was mutated since Hoist (a
// swapped component) is re-decomposed, never served stale.
func (ev *Evaluator) ApplyGaloisHoisted(h *Hoisted, gk *GaloisKey) (*Ciphertext, error) {
	if gk == nil {
		return nil, errors.New("bfv: nil Galois key")
	}
	if h.ctx == nil || !ev.useRNSNative() {
		return ev.ApplyGalois(h.ct, gk)
	}
	par := ev.params
	digits := h.snapshot(par)
	c0 := applyGaloisPoly(h.ct.Polys[0], gk.G, par.Q, nil)
	s0, outC1 := galoisKeySwitch(h.ctx, digits, gk)
	poly.Add(c0, c0, s0, par.Q, nil)
	return &Ciphertext{Polys: []*poly.Poly{c0, outC1}}, nil
}
