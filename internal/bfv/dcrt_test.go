package bfv

import (
	"fmt"
	"os"
	"sync"
	"testing"

	"repro/internal/sampling"
)

// Differential tests: the double-CRT backend must agree with the metered
// O(n²) schoolbook oracle bit-for-bit — not merely after decryption —
// for every operation, because the extended basis is sized so no exact
// integer coefficient ever wraps. Ciphertext equality implies plaintext
// equality, and we assert both.

type diffRig struct {
	params *Parameters
	sk     *SecretKey
	rlk    *RelinKey
	enc    *Encryptor
	dec    *Decryptor
	fast   *Evaluator // double-CRT backend
	oracle *Evaluator // schoolbook backend
	gk     *GaloisKey
}

func newDiffRig(t *testing.T, params *Parameters, seed uint64) *diffRig {
	t.Helper()
	src := sampling.NewSourceFromUint64(seed)
	kg := NewKeyGenerator(params, src)
	sk, pk := kg.GenKeyPair()
	rlk := kg.GenRelinKey(sk)
	gk, err := kg.GenGaloisKey(sk, 3)
	if err != nil {
		t.Fatal(err)
	}
	return &diffRig{
		params: params,
		sk:     sk,
		rlk:    rlk,
		enc:    NewEncryptor(params, pk, src),
		dec:    NewDecryptor(params, sk),
		fast:   NewEvaluator(params, rlk),
		oracle: NewSchoolbookEvaluator(params, rlk),
		gk:     gk,
	}
}

func (r *diffRig) mustEqual(t *testing.T, op string, got, want *Ciphertext) {
	t.Helper()
	if !got.Equal(want) {
		t.Fatalf("%s: double-CRT ciphertext differs from schoolbook", op)
	}
	gp, wp := r.dec.Decrypt(got), r.dec.Decrypt(want)
	for i := range gp.Coeffs {
		if gp.Coeffs[i] != wp.Coeffs[i] {
			t.Fatalf("%s: decrypted plaintexts differ at coefficient %d", op, i)
		}
	}
}

func runDifferential(t *testing.T, params *Parameters, seed uint64) {
	r := newDiffRig(t, params, seed)
	ct0, err := r.enc.EncryptValue(11)
	if err != nil {
		t.Fatal(err)
	}
	ct1, err := r.enc.EncryptValue(7)
	if err != nil {
		t.Fatal(err)
	}

	r.mustEqual(t, "Add", r.fast.Add(ct0, ct1), r.oracle.Add(ct0, ct1))
	r.mustEqual(t, "Sub", r.fast.Sub(ct0, ct1), r.oracle.Sub(ct0, ct1))

	pt := NewPlaintext(params)
	pt.Coeffs[0] = 5
	pt.Coeffs[1] = 3
	r.mustEqual(t, "MulPlain", r.fast.MulPlain(ct0, pt), r.oracle.MulPlain(ct0, pt))

	dFast, err := r.fast.MulNoRelin(ct0, ct1)
	if err != nil {
		t.Fatal(err)
	}
	dOracle, err := r.oracle.MulNoRelin(ct0, ct1)
	if err != nil {
		t.Fatal(err)
	}
	r.mustEqual(t, "MulNoRelin", dFast, dOracle)

	relFast, err := r.fast.Relinearize(dFast)
	if err != nil {
		t.Fatal(err)
	}
	relOracle, err := r.oracle.Relinearize(dOracle)
	if err != nil {
		t.Fatal(err)
	}
	r.mustEqual(t, "Relinearize", relFast, relOracle)

	rotFast, err := r.fast.ApplyGalois(ct0, r.gk)
	if err != nil {
		t.Fatal(err)
	}
	rotOracle, err := r.oracle.ApplyGalois(ct0, r.gk)
	if err != nil {
		t.Fatal(err)
	}
	r.mustEqual(t, "ApplyGalois", rotFast, rotOracle)
}

// runDifferentialDepth chains depth rounds of Mul → Rotate → Add on both
// backends and asserts bit-identical ciphertexts (hence decryptions)
// after every operation — the NTT-resident chain against the schoolbook
// oracle. Noise overflows long before the chain ends at the smaller
// levels; bit-identity is unaffected, which is exactly the property
// differential testing relies on. The final round is also checked
// against the PR-1 big.Int rescale path (SetBigIntRescale), pinning all
// three implementations of the multiplication pipeline to the same bits.
func runDifferentialDepth(t *testing.T, params *Parameters, seed uint64, depth int) {
	r := newDiffRig(t, params, seed)
	ctB, err := r.enc.EncryptValue(5)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := r.enc.EncryptValue(3)
	if err != nil {
		t.Fatal(err)
	}
	oracle := fast
	for d := 0; d < depth; d++ {
		fm, err := r.fast.Mul(fast, ctB)
		if err != nil {
			t.Fatal(err)
		}
		om, err := r.oracle.Mul(oracle, ctB)
		if err != nil {
			t.Fatal(err)
		}
		r.mustEqual(t, "depth Mul", fm, om)

		fr, err := r.fast.ApplyGalois(fm, r.gk)
		if err != nil {
			t.Fatal(err)
		}
		or, err := r.oracle.ApplyGalois(om, r.gk)
		if err != nil {
			t.Fatal(err)
		}
		r.mustEqual(t, "depth Rotate", fr, or)

		fast = r.fast.Add(fr, ctB)
		oracle = r.oracle.Add(or, ctB)
		r.mustEqual(t, "depth Add", fast, oracle)
	}
	legacy := NewEvaluator(params, r.rlk)
	legacy.SetBigIntRescale(true)
	lm, err := legacy.Mul(fast, ctB)
	if err != nil {
		t.Fatal(err)
	}
	fm, err := r.fast.Mul(fast, ctB)
	if err != nil {
		t.Fatal(err)
	}
	r.mustEqual(t, "legacy big.Int rescale Mul", fm, lm)
}

// TestDCRTDifferentialDepthSec27 chains depth 3 with rotations at the
// 27-bit level's full ring degree.
func TestDCRTDifferentialDepthSec27(t *testing.T) {
	runDifferentialDepth(t, ParamsSec27(), 272, 3)
}

// TestDCRTDifferentialDepthSec54 chains depth 3 at the 54-bit level's
// full ring degree; several seconds of schoolbook oracle, so -short
// skips it.
func TestDCRTDifferentialDepthSec54(t *testing.T) {
	if testing.Short() {
		t.Skip("schoolbook oracle at N=2048 × depth 3 is slow")
	}
	runDifferentialDepth(t, ParamsSec54(), 542, 3)
}

// TestDCRTDifferentialDepthSec109 chains depth 3 on the 109-bit modulus
// (W=4, two-word fast-conversion path) at the reduced ring degree the
// schoolbook oracle can afford; TestDCRTDifferentialDepthSec109FullDegree
// covers N=4096 behind the same env gate as the depth-1 test.
func TestDCRTDifferentialDepthSec109(t *testing.T) {
	if testing.Short() {
		t.Skip("schoolbook oracle at W=4 × depth 3 is slow")
	}
	runDifferentialDepth(t, mustParams(1024, prime109, 16, 28), 1093, 3)
}

func TestDCRTDifferentialDepthSec109FullDegree(t *testing.T) {
	if os.Getenv("DCRT_FULL_DIFF") == "" {
		t.Skip("set DCRT_FULL_DIFF=1 to run the multi-minute full-degree schoolbook oracle")
	}
	runDifferentialDepth(t, ParamsSec109(), 1094, 3)
}

// TestDCRTDifferentialSec27 covers the 27-bit level at its full ring
// degree (N=1024, single-limb coefficients).
func TestDCRTDifferentialSec27(t *testing.T) {
	runDifferential(t, ParamsSec27(), 271)
}

// TestDCRTDifferentialSec54 covers the 54-bit level at its full ring
// degree (N=2048, two-limb coefficients). A few seconds of schoolbook
// oracle time, so skipped under -short.
func TestDCRTDifferentialSec54(t *testing.T) {
	if testing.Short() {
		t.Skip("schoolbook oracle at N=2048 is slow")
	}
	runDifferential(t, ParamsSec54(), 541)
}

// TestDCRTDifferentialSec109Modulus covers the 109-bit level's modulus,
// limb width (W=4) and relinearization base at a reduced ring degree the
// schoolbook oracle can afford. Full-degree equivalence is covered by
// TestDCRTDifferentialSec109FullDegree (env-gated: the oracle needs
// ~half a minute at N=4096) plus the full-degree pipeline tests in
// internal/hepim.
func TestDCRTDifferentialSec109Modulus(t *testing.T) {
	params := mustParams(1024, prime109, 16, 28)
	runDifferential(t, params, 1091)
}

func TestDCRTDifferentialSec109FullDegree(t *testing.T) {
	if os.Getenv("DCRT_FULL_DIFF") == "" {
		t.Skip("set DCRT_FULL_DIFF=1 to run the ~30s full-degree schoolbook oracle")
	}
	runDifferential(t, ParamsSec109(), 1092)
}

// TestDCRTEvaluatorParallel exercises the worker pool, the table and
// context caches, and the lazily-built key forms from many goroutines at
// once; run under -race it is the evaluator's thread-safety proof.
func TestDCRTEvaluatorParallel(t *testing.T) {
	params := ParamsSec27()
	r := newDiffRig(t, params, 4242)
	cts := make([]*Ciphertext, 4)
	for i := range cts {
		ct, err := r.enc.EncryptValue(uint64(3 + i))
		if err != nil {
			t.Fatal(err)
		}
		cts[i] = ct
	}
	type result struct {
		mul, rot *Ciphertext
	}
	want := make([]result, len(cts))
	for i, ct := range cts {
		m, err := r.fast.Mul(ct, cts[(i+1)%len(cts)])
		if err != nil {
			t.Fatal(err)
		}
		g, err := r.fast.ApplyGalois(ct, r.gk)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = result{m, g}
	}

	var wg sync.WaitGroup
	errs := make(chan error, 8*len(cts))
	for rep := 0; rep < 8; rep++ {
		for i, ct := range cts {
			wg.Add(1)
			go func(i int, ct *Ciphertext) {
				defer wg.Done()
				m, err := r.fast.Mul(ct, cts[(i+1)%len(cts)])
				if err != nil {
					errs <- err
					return
				}
				g, err := r.fast.ApplyGalois(ct, r.gk)
				if err != nil {
					errs <- err
					return
				}
				if !m.Equal(want[i].mul) || !g.Equal(want[i].rot) {
					errs <- fmt.Errorf("parallel evaluation diverged on input %d", i)
				}
			}(i, ct)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
