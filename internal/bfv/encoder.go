package bfv

import (
	"errors"
	"fmt"

	"repro/internal/nt"
	"repro/internal/ntt"
)

// IntegerEncoder places one value in the constant coefficient — the
// encoding the paper's statistical workloads use. Signed values are
// represented mod t.
type IntegerEncoder struct {
	params *Parameters
}

// NewIntegerEncoder returns an IntegerEncoder.
func NewIntegerEncoder(params *Parameters) *IntegerEncoder {
	return &IntegerEncoder{params: params}
}

// Encode returns a plaintext with v (mod t) in the constant coefficient.
func (ie *IntegerEncoder) Encode(v int64) *Plaintext {
	pt := NewPlaintext(ie.params)
	t := int64(ie.params.T)
	pt.Coeffs[0] = uint64(((v % t) + t) % t)
	return pt
}

// Decode returns the signed value in the constant coefficient, using the
// centered representative in [-t/2, t/2).
func (ie *IntegerEncoder) Decode(pt *Plaintext) int64 {
	v := pt.Coeffs[0] % ie.params.T
	if v >= ie.params.T/2+ie.params.T%2 {
		return int64(v) - int64(ie.params.T)
	}
	return int64(v)
}

// BatchEncoder packs N values into the N plaintext "slots" via the CRT
// isomorphism Z_t[X]/(Xⁿ+1) ≅ Z_tᴺ, available when t is a prime with
// t ≡ 1 (mod 2N). Homomorphic add/mul then act slot-wise (SIMD) — the
// optimization SEAL exposes and the paper leaves as PIM future work.
type BatchEncoder struct {
	params *Parameters
	tab    *ntt.Table
}

// NewBatchEncoder returns a BatchEncoder, or an error when the plaintext
// modulus does not support batching.
func NewBatchEncoder(params *Parameters) (*BatchEncoder, error) {
	t := params.T
	if !nt.IsPrime(t) {
		return nil, fmt.Errorf("bfv: batching needs a prime plaintext modulus, got %d", t)
	}
	if (t-1)%uint64(2*params.N) != 0 {
		return nil, fmt.Errorf("bfv: batching needs t ≡ 1 (mod 2N); t=%d N=%d", t, params.N)
	}
	// The (t, N) twiddle table comes from the process-wide cache, so
	// constructing encoders per request (a server pattern) costs nothing
	// after the first.
	tab, err := ntt.GetTable(t, params.N)
	if err != nil {
		return nil, err
	}
	return &BatchEncoder{params: params, tab: tab}, nil
}

// Encode maps slot values (length ≤ N, each < t) to a plaintext.
func (be *BatchEncoder) Encode(values []uint64) (*Plaintext, error) {
	if len(values) > be.params.N {
		return nil, errors.New("bfv: too many batch values")
	}
	slots := make([]uint64, be.params.N)
	for i, v := range values {
		slots[i] = v % be.params.T
	}
	be.tab.Inverse(slots) // slot values are the NTT image of the coefficients
	return &Plaintext{Coeffs: slots}, nil
}

// Decode recovers the slot values of a plaintext.
func (be *BatchEncoder) Decode(pt *Plaintext) []uint64 {
	out := append([]uint64(nil), pt.Coeffs...)
	for i := range out {
		out[i] %= be.params.T
	}
	be.tab.Forward(out)
	return out
}
