package bfv

import (
	"fmt"
	"testing"

	"repro/internal/sampling"
)

// Benchmarks pitting the double-CRT backend against the schoolbook path
// it replaced, at the 54-bit modulus (the acceptance point of the
// backend: ≥10× on EvalMul at n=4096) across two ring degrees.

func benchmarkEvalMul(b *testing.B, n int, schoolbook bool) {
	params := ParamsSec54AtDegree(n)
	src := sampling.NewSourceFromUint64(uint64(n))
	kg := NewKeyGenerator(params, src)
	sk, pk := kg.GenKeyPair()
	rlk := kg.GenRelinKey(sk)
	enc := NewEncryptor(params, pk, src)
	ct0, err := enc.EncryptValue(11)
	if err != nil {
		b.Fatal(err)
	}
	ct1, err := enc.EncryptValue(13)
	if err != nil {
		b.Fatal(err)
	}
	ev := NewEvaluator(params, rlk)
	if schoolbook {
		ev = NewSchoolbookEvaluator(params, rlk)
	}
	// Warm the caches (twiddle tables, key forms) outside the timer.
	if _, err := ev.Mul(ct0, ct1); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ev.Mul(ct0, ct1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvalMulSchoolbook(b *testing.B) {
	for _, n := range []int{1024, 4096} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			benchmarkEvalMul(b, n, true)
		})
	}
}

func BenchmarkEvalMulDCRT(b *testing.B) {
	for _, n := range []int{1024, 4096} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			benchmarkEvalMul(b, n, false)
		})
	}
}

// benchmarkEvalMulDepth times a depth-long chain of relinearized
// multiplications per iteration — the workload shape the NTT-resident
// ciphertext cache and the RNS-native rescale exist for — on either the
// RNS-native path or the PR-1 big.Int round-trip path.
func benchmarkEvalMulDepth(b *testing.B, n, depth int, bigRescale bool) {
	params := ParamsSec54AtDegree(n)
	src := sampling.NewSourceFromUint64(uint64(n + depth))
	kg := NewKeyGenerator(params, src)
	sk, pk := kg.GenKeyPair()
	rlk := kg.GenRelinKey(sk)
	_ = sk
	enc := NewEncryptor(params, pk, src)
	ct0, err := enc.EncryptValue(11)
	if err != nil {
		b.Fatal(err)
	}
	ct1, err := enc.EncryptValue(13)
	if err != nil {
		b.Fatal(err)
	}
	ev := NewEvaluator(params, rlk)
	ev.SetBigIntRescale(bigRescale)
	chain := func() {
		ct := ct0
		for d := 0; d < depth; d++ {
			next, err := ev.Mul(ct, ct1)
			if err != nil {
				b.Fatal(err)
			}
			ct = next
		}
	}
	chain() // warm the caches (twiddle tables, key and operand forms)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		chain()
	}
}

func benchmarkDepthPair(b *testing.B, depth int) {
	b.Run("path=rns", func(b *testing.B) { benchmarkEvalMulDepth(b, 4096, depth, false) })
	b.Run("path=bigint", func(b *testing.B) { benchmarkEvalMulDepth(b, 4096, depth, true) })
}

func BenchmarkEvalMulDepth1(b *testing.B) { benchmarkDepthPair(b, 1) }
func BenchmarkEvalMulDepth3(b *testing.B) { benchmarkDepthPair(b, 3) }
func BenchmarkEvalMulDepth5(b *testing.B) { benchmarkDepthPair(b, 5) }

// BenchmarkEncrypt tracks the non-Mul side of the double-CRT win: fresh
// encryption was two schoolbook products per ciphertext.
func BenchmarkEncrypt(b *testing.B) {
	for _, n := range []int{1024, 4096} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			params := ParamsSec54AtDegree(n)
			src := sampling.NewSourceFromUint64(uint64(n))
			kg := NewKeyGenerator(params, src)
			_, pk := kg.GenKeyPair()
			enc := NewEncryptor(params, pk, src)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := enc.EncryptValue(7); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
