package bfv

import (
	"fmt"
	"testing"

	"repro/internal/sampling"
)

// Benchmarks pitting the double-CRT backend against the schoolbook path
// it replaced, at the 54-bit modulus (the acceptance point of the
// backend: ≥10× on EvalMul at n=4096) across two ring degrees.

func benchmarkEvalMul(b *testing.B, n int, schoolbook bool) {
	params := ParamsSec54AtDegree(n)
	src := sampling.NewSourceFromUint64(uint64(n))
	kg := NewKeyGenerator(params, src)
	sk, pk := kg.GenKeyPair()
	rlk := kg.GenRelinKey(sk)
	enc := NewEncryptor(params, pk, src)
	ct0, err := enc.EncryptValue(11)
	if err != nil {
		b.Fatal(err)
	}
	ct1, err := enc.EncryptValue(13)
	if err != nil {
		b.Fatal(err)
	}
	ev := NewEvaluator(params, rlk)
	if schoolbook {
		ev = NewSchoolbookEvaluator(params, rlk)
	}
	// Warm the caches (twiddle tables, key forms) outside the timer.
	if _, err := ev.Mul(ct0, ct1); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ev.Mul(ct0, ct1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvalMulSchoolbook(b *testing.B) {
	for _, n := range []int{1024, 4096} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			benchmarkEvalMul(b, n, true)
		})
	}
}

func BenchmarkEvalMulDCRT(b *testing.B) {
	for _, n := range []int{1024, 4096} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			benchmarkEvalMul(b, n, false)
		})
	}
}

// benchmarkEvalMulDepth times a depth-long chain of relinearized
// multiplications per iteration — the workload shape the NTT-resident
// ciphertext cache and the RNS-native rescale exist for — on either the
// RNS-native path or the PR-1 big.Int round-trip path.
func benchmarkEvalMulDepth(b *testing.B, n, depth int, bigRescale bool) {
	params := ParamsSec54AtDegree(n)
	src := sampling.NewSourceFromUint64(uint64(n + depth))
	kg := NewKeyGenerator(params, src)
	sk, pk := kg.GenKeyPair()
	rlk := kg.GenRelinKey(sk)
	_ = sk
	enc := NewEncryptor(params, pk, src)
	ct0, err := enc.EncryptValue(11)
	if err != nil {
		b.Fatal(err)
	}
	ct1, err := enc.EncryptValue(13)
	if err != nil {
		b.Fatal(err)
	}
	ev := NewEvaluator(params, rlk)
	ev.SetBigIntRescale(bigRescale)
	chain := func() {
		ct := ct0
		for d := 0; d < depth; d++ {
			next, err := ev.Mul(ct, ct1)
			if err != nil {
				b.Fatal(err)
			}
			ct = next
		}
	}
	chain() // warm the caches (twiddle tables, key and operand forms)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		chain()
	}
}

func benchmarkDepthPair(b *testing.B, depth int) {
	b.Run("path=rns", func(b *testing.B) { benchmarkEvalMulDepth(b, 4096, depth, false) })
	b.Run("path=bigint", func(b *testing.B) { benchmarkEvalMulDepth(b, 4096, depth, true) })
}

func BenchmarkEvalMulDepth1(b *testing.B) { benchmarkDepthPair(b, 1) }
func BenchmarkEvalMulDepth3(b *testing.B) { benchmarkDepthPair(b, 3) }
func BenchmarkEvalMulDepth5(b *testing.B) { benchmarkDepthPair(b, 5) }

// benchmarkMulChainDeferred times the same depth-long chain through the
// NTT-resident pipeline: every level consumes the previous level's
// deferred handle and only the final result materializes — coefficients
// are packed once per chain instead of once per level.
func benchmarkMulChainDeferred(b *testing.B, n, depth int) {
	params := ParamsSec54AtDegree(n)
	src := sampling.NewSourceFromUint64(uint64(n + depth))
	kg := NewKeyGenerator(params, src)
	sk, pk := kg.GenKeyPair()
	rlk := kg.GenRelinKey(sk)
	_ = sk
	enc := NewEncryptor(params, pk, src)
	ct0, err := enc.EncryptValue(11)
	if err != nil {
		b.Fatal(err)
	}
	ct1, err := enc.EncryptValue(13)
	if err != nil {
		b.Fatal(err)
	}
	ev := NewEvaluator(params, rlk)
	if !ev.CanDeferMuls() {
		b.Fatal("deferred multiplication unavailable on this configuration")
	}
	chain := func() {
		var cur MulOperand = ct0
		var prev *ProductNTT
		for d := 0; d < depth; d++ {
			next, err := ev.MulNTT(cur, ct1)
			if err != nil {
				b.Fatal(err)
			}
			if prev != nil {
				prev.Release()
			}
			cur, prev = next, next
		}
		prev.Materialize()
		prev.Release()
	}
	chain() // warm the caches (twiddle tables, key and operand forms)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		chain()
	}
}

func BenchmarkMulChainDeferred1(b *testing.B) { benchmarkMulChainDeferred(b, 4096, 1) }
func BenchmarkMulChainDeferred3(b *testing.B) { benchmarkMulChainDeferred(b, 4096, 3) }

// BenchmarkMulManySum measures the dot-product reduction Σᵢ aᵢ·bᵢ over 8
// pairs, materialized (MulMany + Add fold) vs deferred (MulManyNTT + RNS
// domain Add fold, one final conversion pair).
func BenchmarkMulManySum(b *testing.B) {
	const pairs = 8
	params := ParamsSec54AtDegree(4096)
	src := sampling.NewSourceFromUint64(4096 + pairs)
	kg := NewKeyGenerator(params, src)
	sk, pk := kg.GenKeyPair()
	rlk := kg.GenRelinKey(sk)
	_ = sk
	enc := NewEncryptor(params, pk, src)
	as := make([]*Ciphertext, pairs)
	bs := make([]*Ciphertext, pairs)
	aOps := make([]MulOperand, pairs)
	bOps := make([]MulOperand, pairs)
	for i := range as {
		var err error
		if as[i], err = enc.EncryptValue(uint64(2 + i)); err != nil {
			b.Fatal(err)
		}
		if bs[i], err = enc.EncryptValue(uint64(3 + i)); err != nil {
			b.Fatal(err)
		}
		aOps[i], bOps[i] = as[i], bs[i]
	}
	be := NewBatchEvaluator(params, rlk)
	ev := be.Evaluator()
	b.Run("path=materialized", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			prods, err := be.MulMany(as, bs)
			if err != nil {
				b.Fatal(err)
			}
			acc := prods[0]
			for _, p := range prods[1:] {
				acc = ev.Add(acc, p)
			}
		}
	})
	b.Run("path=deferred", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			prods, err := be.MulManyNTT(aOps, bOps)
			if err != nil {
				b.Fatal(err)
			}
			acc := prods[0]
			for _, p := range prods[1:] {
				sum, ok := acc.Add(p)
				if !ok {
					b.Fatal("deferred sum fell back")
				}
				acc.Release()
				p.Release()
				acc = sum
			}
			acc.Materialize()
			acc.Release()
		}
	})
}

// BenchmarkEncrypt tracks the non-Mul side of the double-CRT win: fresh
// encryption was two schoolbook products per ciphertext.
func BenchmarkEncrypt(b *testing.B) {
	for _, n := range []int{1024, 4096} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			params := ParamsSec54AtDegree(n)
			src := sampling.NewSourceFromUint64(uint64(n))
			kg := NewKeyGenerator(params, src)
			_, pk := kg.GenKeyPair()
			enc := NewEncryptor(params, pk, src)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := enc.EncryptValue(7); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// rotationRig builds the n=4096/54-bit fixture the hoisting acceptance
// criterion is measured on: one ciphertext, k Galois keys.
func rotationRig(b *testing.B, n, k int) (*Evaluator, *Ciphertext, []*GaloisKey) {
	b.Helper()
	params := ParamsSec54AtDegree(n)
	src := sampling.NewSourceFromUint64(uint64(n + k))
	kg := NewKeyGenerator(params, src)
	sk, pk := kg.GenKeyPair()
	enc := NewEncryptor(params, pk, src)
	ct, err := enc.EncryptValue(11)
	if err != nil {
		b.Fatal(err)
	}
	gks := make([]*GaloisKey, k)
	g := uint64(1)
	for i := range gks {
		g = g * 3 % uint64(2*n)
		gk, err := kg.GenGaloisKey(sk, g)
		if err != nil {
			b.Fatal(err)
		}
		gks[i] = gk
	}
	return NewEvaluator(params, nil), ct, gks
}

// BenchmarkRotateSerial is the unhoisted baseline: k independent
// ApplyGalois calls (k digit decompositions) per iteration.
func BenchmarkRotateSerial(b *testing.B) {
	ev, ct, gks := rotationRig(b, 4096, 8)
	for _, gk := range gks { // warm key forms and operand caches
		if _, err := ev.ApplyGalois(ct, gk); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, gk := range gks {
			if _, err := ev.ApplyGalois(ct, gk); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkRotateHoisted is the same k rotations through one hoisted
// digit decomposition (BatchEvaluator.RotateMany).
func BenchmarkRotateHoisted(b *testing.B) {
	ev, ct, gks := rotationRig(b, 4096, 8)
	be := NewBatchEvaluatorFrom(ev)
	if _, err := be.RotateMany(ct, gks); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := be.RotateMany(ct, gks); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRotateHoistedNTT is the same k rotations with the per-output
// base conversions deferred (RotateManyNTT): the cost of producing the
// rotations for a consumer that aggregates or discards them in NTT form.
func BenchmarkRotateHoistedNTT(b *testing.B) {
	ev, ct, gks := rotationRig(b, 4096, 8)
	be := NewBatchEvaluatorFrom(ev)
	release := func(rots []*RotatedNTT) {
		for _, r := range rots {
			r.Release()
		}
	}
	rots, err := be.RotateManyNTT(ct, gks)
	if err != nil {
		b.Fatal(err)
	}
	release(rots)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rots, err := be.RotateManyNTT(ct, gks)
		if err != nil {
			b.Fatal(err)
		}
		release(rots)
	}
}

// BenchmarkRotateSumSerial / BenchmarkRotateSumHoisted measure the
// batched rotate-and-sum workload (ct + Σ_g τ_g(ct)): the serial side
// folds per-rotation ApplyGalois with Add; the hoisted side shares one
// decomposition and one fused extended-basis reduction.
func BenchmarkRotateSumSerial(b *testing.B) {
	ev, ct, gks := rotationRig(b, 4096, 8)
	rotateSum := func() {
		acc := ct.Clone()
		for _, gk := range gks {
			r, err := ev.ApplyGalois(ct, gk)
			if err != nil {
				b.Fatal(err)
			}
			acc = ev.Add(acc, r)
		}
	}
	rotateSum()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rotateSum()
	}
}

func BenchmarkRotateSumHoisted(b *testing.B) {
	ev, ct, gks := rotationRig(b, 4096, 8)
	be := NewBatchEvaluatorFrom(ev)
	cts := []*Ciphertext{ct}
	if _, err := be.RotateAndSum(cts, gks); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := be.RotateAndSum(cts, gks); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDecrypt tracks the RNS-native decryption against the big.Int
// path it replaced.
func BenchmarkDecrypt(b *testing.B) {
	params := ParamsSec54AtDegree(4096)
	src := sampling.NewSourceFromUint64(99)
	kg := NewKeyGenerator(params, src)
	sk, pk := kg.GenKeyPair()
	enc := NewEncryptor(params, pk, src)
	dec := NewDecryptor(params, sk)
	ct, err := enc.EncryptValue(7)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("path=rns", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if pt, ok := dec.decryptRNS(ct); !ok || pt.Coeffs[0] != 7 {
				b.Fatal("rns decrypt failed")
			}
		}
	})
	b.Run("path=bigint", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if pt := dec.decryptBig(ct); pt.Coeffs[0] != 7 {
				b.Fatal("bigint decrypt failed")
			}
		}
	})
}
