package bfv

import (
	"sync"
	"testing"

	"repro/internal/poly"
	"repro/internal/sampling"
)

// genGaloisKeys derives keys for the elements 3^1..3^k mod 2N (all odd).
func genGaloisKeys(t *testing.T, params *Parameters, sk *SecretKey, seed uint64, k int) []*GaloisKey {
	t.Helper()
	kg := NewKeyGenerator(params, sampling.NewSourceFromUint64(seed))
	gks := make([]*GaloisKey, k)
	g := uint64(1)
	for i := range gks {
		g = g * 3 % uint64(2*params.N)
		gk, err := kg.GenGaloisKey(sk, g)
		if err != nil {
			t.Fatal(err)
		}
		gks[i] = gk
	}
	return gks
}

// TestHoistedRotationBitIdentity is the hoisting contract: rotating a
// ciphertext through a hoisted digit decomposition yields bit-identical
// output to per-rotation ApplyGalois, for every Galois element, on fresh
// and on evaluated (NTT-resident) ciphertexts.
func TestHoistedRotationBitIdentity(t *testing.T) {
	for _, params := range []*Parameters{ParamsToy(), ParamsSec27()} {
		c := newCtx(t, params, 77, true)
		gks := genGaloisKeys(t, params, c.sk, 78, 5)

		pt := NewPlaintext(params)
		for i := range pt.Coeffs {
			pt.Coeffs[i] = uint64((5*i + 2) % int(params.T))
		}
		fresh, err := c.enc.Encrypt(pt)
		if err != nil {
			t.Fatal(err)
		}
		mulled, err := c.eval.Mul(fresh, fresh)
		if err != nil {
			t.Fatal(err)
		}
		for name, ct := range map[string]*Ciphertext{"fresh": fresh, "mulled": mulled} {
			h, err := c.eval.Hoist(ct)
			if err != nil {
				t.Fatal(err)
			}
			for _, gk := range gks {
				want, err := c.eval.ApplyGalois(ct, gk)
				if err != nil {
					t.Fatal(err)
				}
				got, err := c.eval.ApplyGaloisHoisted(h, gk)
				if err != nil {
					t.Fatal(err)
				}
				if !got.Equal(want) {
					t.Fatalf("%s %s g=%d: hoisted rotation differs from ApplyGalois", params, name, gk.G)
				}
			}
			h.Release()
		}
	}
}

// TestHoistedRotationParallel rotates through one shared hoisted handle
// from many goroutines — under -race, the thread-safety proof of the
// shared digit cache.
func TestHoistedRotationParallel(t *testing.T) {
	params := ParamsSec27()
	c := newCtx(t, params, 79, false)
	gks := genGaloisKeys(t, params, c.sk, 80, 4)
	ct, err := c.enc.EncryptValue(9)
	if err != nil {
		t.Fatal(err)
	}
	h, err := c.eval.Hoist(ct)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Release()
	want := make([]*Ciphertext, len(gks))
	for i, gk := range gks {
		if want[i], err = c.eval.ApplyGalois(ct, gk); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errc := make(chan string, 4*len(gks))
	for rep := 0; rep < 4; rep++ {
		for i, gk := range gks {
			wg.Add(1)
			go func(i int, gk *GaloisKey) {
				defer wg.Done()
				got, err := c.eval.ApplyGaloisHoisted(h, gk)
				if err != nil {
					errc <- err.Error()
					return
				}
				if !got.Equal(want[i]) {
					errc <- "parallel hoisted rotation diverged"
				}
			}(i, gk)
		}
	}
	wg.Wait()
	close(errc)
	for msg := range errc {
		t.Fatal(msg)
	}
}

// TestHoistedStaleCacheInvalidation is the cache-invariant test: after a
// component of the ciphertext is swapped (the one mutation the
// immutability convention permits), neither the per-ciphertext NTT cache
// nor a hoisted digit cache may serve stale forms — every consumer must
// observe the new component.
func TestHoistedStaleCacheInvalidation(t *testing.T) {
	params := ParamsToy()
	c := newCtx(t, params, 81, true)
	gk := genGaloisKeys(t, params, c.sk, 82, 1)[0]

	ctA, err := c.enc.EncryptValue(3)
	if err != nil {
		t.Fatal(err)
	}
	ctB, err := c.enc.EncryptValue(11)
	if err != nil {
		t.Fatal(err)
	}

	// Warm every cache on ctA: the NTT forms (via Mul and Decrypt) and a
	// hoisted digit decomposition.
	if _, err := c.eval.Mul(ctA, ctA); err != nil {
		t.Fatal(err)
	}
	c.dec.Decrypt(ctA)
	h, err := c.eval.Hoist(ctA)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Release()
	if _, err := c.eval.ApplyGaloisHoisted(h, gk); err != nil {
		t.Fatal(err)
	}

	// Swap both components: ctA now *is* ctB structurally.
	ctA.Polys[0] = ctB.Polys[0].Clone()
	ctA.Polys[1] = ctB.Polys[1].Clone()

	// A pristine ciphertext with the same polynomials is the reference.
	pristine := &Ciphertext{Polys: []*poly.Poly{ctA.Polys[0], ctA.Polys[1]}}

	if got, want := c.dec.DecryptValue(ctA), c.dec.DecryptValue(pristine); got != want {
		t.Fatalf("Decrypt served stale NTT forms: got %d want %d", got, want)
	}
	gotMul, err := c.eval.Mul(ctA, ctA)
	if err != nil {
		t.Fatal(err)
	}
	wantMul, err := c.eval.Mul(pristine, pristine)
	if err != nil {
		t.Fatal(err)
	}
	if !gotMul.Equal(wantMul) {
		t.Fatal("Mul served stale NTT forms after component swap")
	}
	gotRot, err := c.eval.ApplyGaloisHoisted(h, gk)
	if err != nil {
		t.Fatal(err)
	}
	wantRot, err := c.eval.ApplyGalois(pristine, gk)
	if err != nil {
		t.Fatal(err)
	}
	if !gotRot.Equal(wantRot) {
		t.Fatal("hoisted rotation served stale digit cache after component swap")
	}
}

// TestHoistedCloneIndependence: Clone must not share caches with its
// source — mutating the clone never affects the original's results.
func TestHoistedCloneIndependence(t *testing.T) {
	params := ParamsToy()
	c := newCtx(t, params, 83, false)
	gk := genGaloisKeys(t, params, c.sk, 84, 1)[0]
	ct, err := c.enc.EncryptValue(5)
	if err != nil {
		t.Fatal(err)
	}
	want, err := c.eval.ApplyGalois(ct, gk)
	if err != nil {
		t.Fatal(err)
	}
	clone := ct.Clone()
	other, err := c.enc.EncryptValue(12)
	if err != nil {
		t.Fatal(err)
	}
	clone.Polys[1] = other.Polys[1]
	got, err := c.eval.ApplyGalois(ct, gk)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatal("mutating a clone changed the original's rotation")
	}
	if c.dec.DecryptValue(ct) != 5 {
		t.Fatal("mutating a clone changed the original's decryption")
	}
}

// TestHoistedRejectsBadInputs covers the degree and nil-key guards.
func TestHoistedRejectsBadInputs(t *testing.T) {
	params := ParamsToy()
	c := newCtx(t, params, 85, true)
	ct, _ := c.enc.EncryptValue(1)
	d2, err := c.eval.MulNoRelin(ct, ct)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.eval.Hoist(d2); err == nil {
		t.Error("degree-2 ciphertext accepted by Hoist")
	}
	h, err := c.eval.Hoist(ct)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Release()
	if _, err := c.eval.ApplyGaloisHoisted(h, nil); err == nil {
		t.Error("nil Galois key accepted by ApplyGaloisHoisted")
	}
}

// TestHoistedSchoolbookFallback: a hoisted handle on the schoolbook
// oracle delegates to per-rotation ApplyGalois and still matches the
// native path bit for bit.
func TestHoistedSchoolbookFallback(t *testing.T) {
	params := ParamsToy()
	c := newCtx(t, params, 86, false)
	gk := genGaloisKeys(t, params, c.sk, 87, 1)[0]
	oracle := NewSchoolbookEvaluator(params, nil)
	ct, err := c.enc.EncryptValue(7)
	if err != nil {
		t.Fatal(err)
	}
	h, err := oracle.Hoist(ct)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Release()
	got, err := oracle.ApplyGaloisHoisted(h, gk)
	if err != nil {
		t.Fatal(err)
	}
	want, err := c.eval.ApplyGalois(ct, gk)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatal("schoolbook fallback diverged from native rotation")
	}
}

// TestHoistedMutateThenParallel covers the rebuild path under
// concurrency: the ciphertext is mutated (sequentially), then many
// goroutines rotate through the stale handle at once — exactly one
// coherent rebuild may happen, never a torn digit set. Run under -race
// this is the snapshot locking's proof.
func TestHoistedMutateThenParallel(t *testing.T) {
	params := ParamsSec27()
	c := newCtx(t, params, 88, false)
	gks := genGaloisKeys(t, params, c.sk, 89, 4)
	ctA, err := c.enc.EncryptValue(3)
	if err != nil {
		t.Fatal(err)
	}
	ctB, err := c.enc.EncryptValue(8)
	if err != nil {
		t.Fatal(err)
	}
	h, err := c.eval.Hoist(ctA)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Release()
	if _, err := c.eval.ApplyGaloisHoisted(h, gks[0]); err != nil {
		t.Fatal(err)
	}

	ctA.Polys[1] = ctB.Polys[1].Clone() // invalidate the hoisted digits
	pristine := &Ciphertext{Polys: []*poly.Poly{ctA.Polys[0], ctA.Polys[1]}}
	want := make([]*Ciphertext, len(gks))
	for i, gk := range gks {
		if want[i], err = c.eval.ApplyGalois(pristine, gk); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errc := make(chan string, 8*len(gks))
	for rep := 0; rep < 8; rep++ {
		for i, gk := range gks {
			wg.Add(1)
			go func(i int, gk *GaloisKey) {
				defer wg.Done()
				got, err := c.eval.ApplyGaloisHoisted(h, gk)
				if err != nil {
					errc <- err.Error()
					return
				}
				if !got.Equal(want[i]) {
					errc <- "stale or torn digits served after mutation"
				}
			}(i, gk)
		}
	}
	wg.Wait()
	close(errc)
	for msg := range errc {
		t.Fatal(msg)
	}
}
