package bfv

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/poly"
)

// Public-key, relinearization-key, and Galois-key serialization: what a
// client ships to the PIM server once, so later uploads are ciphertexts
// only.
//
//	public key: magic "BFVp" | u32 N | u32 W | p0 limbs | p1 limbs
//	relin key:  magic "BFVr" | u32 digits | u32 baseBits | u32 N | u32 W |
//	            digits × (k0 limbs | k1 limbs)
//	galois key: magic "BFVg" | u64 g | u32 digits | u32 baseBits | u32 N |
//	            u32 W | digits × (k0 limbs | k1 limbs)

var (
	magicPublicKey = [4]byte{'B', 'F', 'V', 'p'}
	magicRelinKey  = [4]byte{'B', 'F', 'V', 'r'}
	magicGaloisKey = [4]byte{'B', 'F', 'V', 'g'}
)

// Serialize writes the public key in binary form.
func (pk *PublicKey) Serialize(w io.Writer) error {
	if _, err := w.Write(magicPublicKey[:]); err != nil {
		return err
	}
	hdr := []uint32{uint32(pk.P0.N), uint32(pk.P0.W)}
	if err := binary.Write(w, binary.LittleEndian, hdr); err != nil {
		return err
	}
	if err := writePoly(w, pk.P0); err != nil {
		return err
	}
	return writePoly(w, pk.P1)
}

// ReadPublicKey deserializes a public key and validates it against params.
func ReadPublicKey(r io.Reader, params *Parameters) (*PublicKey, error) {
	var magic [4]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, err
	}
	if magic != magicPublicKey {
		return nil, errors.New("bfv: bad public-key magic")
	}
	hdr := make([]uint32, 2)
	if err := binary.Read(r, binary.LittleEndian, hdr); err != nil {
		return nil, err
	}
	if int(hdr[0]) != params.N || int(hdr[1]) != params.Q.W {
		return nil, errors.New("bfv: public key shape mismatch")
	}
	p0, err := readPolyCanonical(r, params.N, params.Q.W, params.Q.Q, nil)
	if err != nil {
		return nil, err
	}
	p1, err := readPolyCanonical(r, params.N, params.Q.W, params.Q.Q, nil)
	if err != nil {
		return nil, err
	}
	return &PublicKey{P0: p0, P1: p1}, nil
}

// Serialize writes the relinearization key in binary form.
func (rk *RelinKey) Serialize(w io.Writer) error {
	if len(rk.K0) == 0 || len(rk.K0) != len(rk.K1) {
		return errors.New("bfv: malformed relinearization key")
	}
	if _, err := w.Write(magicRelinKey[:]); err != nil {
		return err
	}
	hdr := []uint32{
		uint32(len(rk.K0)), uint32(rk.BaseBits),
		uint32(rk.K0[0].N), uint32(rk.K0[0].W),
	}
	if err := binary.Write(w, binary.LittleEndian, hdr); err != nil {
		return err
	}
	for i := range rk.K0 {
		if err := writePoly(w, rk.K0[i]); err != nil {
			return err
		}
		if err := writePoly(w, rk.K1[i]); err != nil {
			return err
		}
	}
	return nil
}

// ReadRelinKey deserializes a relinearization key and validates it
// against params.
func ReadRelinKey(r io.Reader, params *Parameters) (*RelinKey, error) {
	var magic [4]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, err
	}
	if magic != magicRelinKey {
		return nil, errors.New("bfv: bad relinearization-key magic")
	}
	hdr := make([]uint32, 4)
	if err := binary.Read(r, binary.LittleEndian, hdr); err != nil {
		return nil, err
	}
	digits, baseBits, n, w := int(hdr[0]), uint(hdr[1]), int(hdr[2]), int(hdr[3])
	if digits == 0 || digits > 64 {
		return nil, fmt.Errorf("bfv: implausible digit count %d", digits)
	}
	if n != params.N || w != params.Q.W || baseBits != params.RelinBaseBits {
		return nil, errors.New("bfv: relinearization key shape mismatch")
	}
	rk := &RelinKey{
		BaseBits: baseBits,
		K0:       make([]*poly.Poly, digits),
		K1:       make([]*poly.Poly, digits),
	}
	for i := 0; i < digits; i++ {
		k0, err := readPolyCanonical(r, n, w, params.Q.Q, nil)
		if err != nil {
			return nil, err
		}
		k1, err := readPolyCanonical(r, n, w, params.Q.Q, nil)
		if err != nil {
			return nil, err
		}
		rk.K0[i], rk.K1[i] = k0, k1
	}
	return rk, nil
}

// Serialize writes the Galois key in binary form — the rotation-key
// upload of the deployment model: a client that wants server-side slot
// rotations ships one Galois key per rotation step.
func (gk *GaloisKey) Serialize(w io.Writer) error {
	if len(gk.K0) == 0 || len(gk.K0) != len(gk.K1) {
		return errors.New("bfv: malformed Galois key")
	}
	if _, err := w.Write(magicGaloisKey[:]); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, gk.G); err != nil {
		return err
	}
	hdr := []uint32{
		uint32(len(gk.K0)), uint32(gk.BaseBits),
		uint32(gk.K0[0].N), uint32(gk.K0[0].W),
	}
	if err := binary.Write(w, binary.LittleEndian, hdr); err != nil {
		return err
	}
	for i := range gk.K0 {
		if err := writePoly(w, gk.K0[i]); err != nil {
			return err
		}
		if err := writePoly(w, gk.K1[i]); err != nil {
			return err
		}
	}
	return nil
}

// ReadGaloisKey deserializes a Galois key and validates it against
// params.
func ReadGaloisKey(r io.Reader, params *Parameters) (*GaloisKey, error) {
	var magic [4]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, err
	}
	if magic != magicGaloisKey {
		return nil, errors.New("bfv: bad Galois-key magic")
	}
	var g uint64
	if err := binary.Read(r, binary.LittleEndian, &g); err != nil {
		return nil, err
	}
	if g%2 == 0 {
		return nil, fmt.Errorf("bfv: Galois element %d must be odd", g)
	}
	hdr := make([]uint32, 4)
	if err := binary.Read(r, binary.LittleEndian, hdr); err != nil {
		return nil, err
	}
	digits, baseBits, n, w := int(hdr[0]), uint(hdr[1]), int(hdr[2]), int(hdr[3])
	if digits == 0 || digits > 64 {
		return nil, fmt.Errorf("bfv: implausible digit count %d", digits)
	}
	if n != params.N || w != params.Q.W || baseBits != params.RelinBaseBits {
		return nil, errors.New("bfv: Galois key shape mismatch")
	}
	gk := &GaloisKey{
		G:        g % uint64(2*params.N),
		BaseBits: baseBits,
		K0:       make([]*poly.Poly, digits),
		K1:       make([]*poly.Poly, digits),
	}
	for i := 0; i < digits; i++ {
		k0, err := readPolyCanonical(r, n, w, params.Q.Q, nil)
		if err != nil {
			return nil, err
		}
		k1, err := readPolyCanonical(r, n, w, params.Q.Q, nil)
		if err != nil {
			return nil, err
		}
		gk.K0[i], gk.K1[i] = k0, k1
	}
	return gk, nil
}
