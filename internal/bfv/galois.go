package bfv

import (
	"errors"
	"fmt"
	"math/big"

	"repro/internal/dcrt"
	"repro/internal/limb32"
	"repro/internal/poly"
)

// Galois automorphisms: τ_g(m(X)) = m(X^g) for odd g, the primitive
// behind slot rotations in batched BFV. The paper lists rotation among
// the homomorphic operations (§2) and leaves operations beyond add/mul
// as future work (§6); this file implements them for the library.

// GaloisKey enables key switching from s(X^g) back to s after applying
// the automorphism to a ciphertext.
type GaloisKey struct {
	G        uint64
	BaseBits uint
	K0, K1   []*poly.Poly

	forms keyForms // lazily-built double-CRT forms (see dcrt.go)
}

// applyGaloisPoly maps coefficient i to position i·g mod 2N with the
// negacyclic sign rule (X^N ≡ −1).
func applyGaloisPoly(p *poly.Poly, g uint64, mod *poly.Modulus, m limb32.Meter) *poly.Poly {
	n := p.N
	out := poly.NewPoly(n, p.W)
	for i := 0; i < n; i++ {
		j := int((uint64(i) * g) % uint64(2*n))
		src := p.Coeff(i)
		if j < n {
			out.Coeff(j).Set(src)
			tick2(m, limb32.OpMove, p.W)
		} else {
			limb32.NegMod(out.Coeff(j-n), src, mod.Q, m)
		}
	}
	return out
}

func tick2(m limb32.Meter, op limb32.Op, n int) {
	if m != nil {
		m.Tick(op, n)
	}
}

// GenGaloisKey derives the key-switching key for the automorphism X→X^g.
// g must be odd (even g is not an automorphism of the 2N-th cyclotomic).
func (kg *KeyGenerator) GenGaloisKey(sk *SecretKey, g uint64) (*GaloisKey, error) {
	if g%2 == 0 {
		return nil, fmt.Errorf("bfv: Galois element %d must be odd", g)
	}
	par := kg.params
	sG := applyGaloisPoly(sk.S, g, par.Q, nil)

	digits := par.RelinDigits()
	gk := &GaloisKey{
		G:        g,
		BaseBits: par.RelinBaseBits,
		K0:       make([]*poly.Poly, digits),
		K1:       make([]*poly.Poly, digits),
	}
	wPow := big.NewInt(1)
	base := new(big.Int).Lsh(big.NewInt(1), par.RelinBaseBits)
	for i := 0; i < digits; i++ {
		a := uniformPoly(kg.src, par.N, par.Q)
		e := gaussianPoly(kg.src, par.N, par.Q)

		k0 := mulRq(par, a, sk.S)
		poly.Add(k0, k0, e, par.Q, nil)
		poly.Neg(k0, k0, par.Q, nil)

		scaled := poly.NewPoly(par.N, par.Q.W)
		wq := new(big.Int).Mod(wPow, par.Q.QBig)
		poly.MulScalar(scaled, sG, limb32.FromBig(wq, par.Q.W), par.Q, nil)
		poly.Add(k0, k0, scaled, par.Q, nil)

		gk.K0[i] = k0
		gk.K1[i] = a
		wPow.Mul(wPow, base)
	}
	return gk, nil
}

// ApplyGalois maps a degree-1 ciphertext of m(X) to a degree-1 ciphertext
// of m(X^g), using the matching Galois key for key switching.
//
// Every backend uses the decompose-then-permute convention: c1 is digit-
// decomposed first and the automorphism τ_g is applied to the digits
// (valid because τ_g is a ring automorphism: Σ wⁱ·τ(dᵢ) = τ(c1)). The
// digits of c1 are therefore independent of g — the hoisting property
// that lets one decomposition serve many Galois elements (see hoist.go)
// — and on the double-CRT backend τ_g acts on a decomposed digit as a
// pure NTT-slot gather. Per-rotation ApplyGalois and hoisted rotation
// share the digit set, so their outputs are bit-identical, and the
// schoolbook oracle and PIM server use the same convention.
func (ev *Evaluator) ApplyGalois(ct *Ciphertext, gk *GaloisKey) (*Ciphertext, error) {
	if ct.Degree() != 1 {
		return nil, errors.New("bfv: ApplyGalois requires a degree-1 ciphertext")
	}
	if gk == nil {
		return nil, errors.New("bfv: nil Galois key")
	}
	par := ev.params
	c0 := applyGaloisPoly(ct.Polys[0], gk.G, par.Q, ev.Meter)

	if ev.useDCRT() {
		ctx := dcrtFor(par)
		k0, k1 := gk.forms.get(ctx, gk.K0, gk.K1)
		var s0, outC1 *poly.Poly
		if ev.useRNSNative() {
			digits := relinDigits(ctx, par, ct.Polys[1], len(k0))
			s0, outC1 = galoisKeySwitch(ctx, digits, gk)
			for _, d := range digits {
				ctx.PutScratch(d)
			}
		} else {
			s0, outC1 = keySwitchAccLegacy(ctx, permuteDigits(decomposePoly(ct.Polys[1], par), gk.G, par, nil), k0, k1)
		}
		poly.Add(c0, c0, s0, par.Q, nil)
		return &Ciphertext{Polys: []*poly.Poly{c0, outC1}}, nil
	}
	digitsP := permuteDigits(decomposePoly(ct.Polys[1], par), gk.G, par, ev.Meter)
	outC1 := poly.NewPoly(par.N, par.Q.W)
	tmp := poly.NewPoly(par.N, par.Q.W)
	for i, d := range digitsP {
		if i >= len(gk.K0) {
			break
		}
		poly.MulNegacyclic(tmp, gk.K0[i], d, par.Q, ev.Meter)
		poly.Add(c0, c0, tmp, par.Q, ev.Meter)
		poly.MulNegacyclic(tmp, gk.K1[i], d, par.Q, ev.Meter)
		poly.Add(outC1, outC1, tmp, par.Q, ev.Meter)
	}
	return &Ciphertext{Polys: []*poly.Poly{c0, outC1}}, nil
}

// galoisKeySwitch runs the RNS-native Galois key switch for one element
// over an existing digit decomposition of c1 (not consumed): the slot
// gather realizes τ_g on each digit, the products accumulate in the NTT
// domain against the key's cached Shoup forms, and both components leave
// through the fast base conversion.
func galoisKeySwitch(ctx *dcrt.Context, digits []*dcrt.Poly, gk *GaloisKey) (s0, s1 *poly.Poly) {
	k0, k1 := gk.forms.get(ctx, gk.K0, gk.K1)
	idx := dcrt.GaloisNTTIndices(ctx.N, gk.G)
	acc0 := ctx.GetScratch()
	acc1 := ctx.GetScratch()
	defer ctx.PutScratch(acc0)
	defer ctx.PutScratch(acc1)
	acc0.Zero()
	acc1.Zero()
	galoisKeySwitchAcc(ctx, acc0, acc1, digits, idx, k0, k1)
	return ctx.FromRNS(acc0), ctx.FromRNS(acc1)
}

// permuteDigits applies τ_g to each digit polynomial — the coefficient-
// domain form of the decompose-then-permute convention, used by the
// schoolbook (metered) and legacy big.Int paths. Negated coefficients
// become q−v; the double-CRT paths' centered lift maps them back to the
// small integers −v, so all backends agree mod q. The metered path
// charges one permutation per digit: that is the data movement this
// convention really costs a hoisting-capable kernel.
func permuteDigits(digits []*poly.Poly, g uint64, par *Parameters, m limb32.Meter) []*poly.Poly {
	out := make([]*poly.Poly, len(digits))
	for i, d := range digits {
		out[i] = applyGaloisPoly(d, g, par.Q, m)
	}
	return out
}

// PermuteGaloisPoly applies the coefficient permutation τ_g (with the
// negacyclic sign rule) to a single R_q polynomial — exported for
// accelerator backends that permute key-switching digits themselves
// under the decompose-then-permute convention.
func PermuteGaloisPoly(p *poly.Poly, g uint64, params *Parameters) *poly.Poly {
	return applyGaloisPoly(p, g, params.Q, nil)
}

// PermuteGalois applies the coefficient permutation τ_g to every
// component of ct without key switching — exported for accelerator
// backends that run the key-switching products themselves. The result
// decrypts under s(X^g), not s.
func PermuteGalois(ct *Ciphertext, g uint64, params *Parameters) *Ciphertext {
	out := &Ciphertext{Polys: make([]*poly.Poly, len(ct.Polys))}
	for i, p := range ct.Polys {
		out.Polys[i] = applyGaloisPoly(p, g, params.Q, nil)
	}
	return out
}

// GaloisPlaintext applies τ_g to a plaintext — the reference the
// homomorphic version must match after decryption.
func GaloisPlaintext(params *Parameters, pt *Plaintext, g uint64) *Plaintext {
	n := params.N
	out := NewPlaintext(params)
	t := params.T
	for i := 0; i < n; i++ {
		v := pt.Coeffs[i] % t
		j := int((uint64(i) * g) % uint64(2*n))
		if j < n {
			out.Coeffs[j] = (out.Coeffs[j] + v) % t
		} else {
			out.Coeffs[j-n] = (out.Coeffs[j-n] + t - v) % t
		}
	}
	return out
}
