package bfv

import "testing"

// NTT-resident rotation outputs: RotateManyNTT must reproduce RotateMany
// (and hence ApplyGalois) bit for bit once materialized, and deferred
// NTT-domain sums must match coefficient-domain addition.

func TestRotatedNTTMatchesRotateMany(t *testing.T) {
	params := ParamsSec27()
	c := newCtx(t, params, 501, false)
	gks := genGaloisKeys(t, params, c.sk, 502, 5)
	ct, err := c.enc.EncryptValue(17)
	if err != nil {
		t.Fatal(err)
	}
	be := NewBatchEvaluatorFrom(c.eval)
	want, err := be.RotateMany(ct, gks)
	if err != nil {
		t.Fatal(err)
	}
	got, err := be.RotateManyNTT(ct, gks)
	if err != nil {
		t.Fatal(err)
	}
	for i := range gks {
		m := got[i].Materialize()
		if !m.Equal(want[i]) {
			t.Fatalf("rotation %d (g=%d): materialized deferred output differs", i, gks[i].G)
		}
		// Materialize is cached: a second call returns the same ciphertext.
		if got[i].Materialize() != m {
			t.Fatalf("rotation %d: Materialize not cached", i)
		}
		got[i].Release()
	}
}

func TestRotatedNTTAddMatchesCoefficientAdd(t *testing.T) {
	params := ParamsSec27()
	c := newCtx(t, params, 503, false)
	gks := genGaloisKeys(t, params, c.sk, 504, 4)
	ct, err := c.enc.EncryptValue(23)
	if err != nil {
		t.Fatal(err)
	}
	be := NewBatchEvaluatorFrom(c.eval)
	rots, err := be.RotateManyNTT(ct, gks)
	if err != nil {
		t.Fatal(err)
	}

	// Fold all deferred outputs in the NTT domain; the materialized sum
	// must equal folding the materialized outputs with Add in slice order.
	acc := rots[0]
	for _, r := range rots[1:] {
		next, ok := acc.Add(r)
		if !ok {
			t.Fatal("deferred Add refused within the exactness window")
		}
		acc = next
	}
	want, err := c.eval.ApplyGalois(ct, gks[0])
	if err != nil {
		t.Fatal(err)
	}
	for _, gk := range gks[1:] {
		r, err := c.eval.ApplyGalois(ct, gk)
		if err != nil {
			t.Fatal(err)
		}
		want = c.eval.Add(want, r)
	}
	if !acc.Materialize().Equal(want) {
		t.Fatal("NTT-domain deferred sum differs from coefficient-domain Add fold")
	}
}

func TestRotatedNTTFallbackOnSchoolbook(t *testing.T) {
	params := ParamsToy()
	c := newCtx(t, params, 505, false)
	gks := genGaloisKeys(t, params, c.sk, 506, 2)
	ct, err := c.enc.EncryptValue(5)
	if err != nil {
		t.Fatal(err)
	}
	oracle := NewSchoolbookEvaluator(params, nil)
	be := NewBatchEvaluatorFrom(oracle)
	rots, err := be.RotateManyNTT(ct, gks)
	if err != nil {
		t.Fatal(err)
	}
	for i, gk := range gks {
		want, err := oracle.ApplyGalois(ct, gk)
		if err != nil {
			t.Fatal(err)
		}
		if !rots[i].Materialize().Equal(want) {
			t.Fatalf("rotation %d: schoolbook fallback differs", i)
		}
	}
	// Materialized-only handles refuse deferred Add; callers fall back to
	// coefficient addition.
	if _, ok := rots[0].Add(rots[1]); ok {
		t.Fatal("deferred Add succeeded on a materialized-only handle")
	}
	// Release is a no-op there, and materialization still works after it.
	rots[0].Release()
	if rots[0].Materialize() == nil {
		t.Fatal("materialized handle lost its ciphertext after Release")
	}
}

func TestRotatedNTTAddRefusesPastBound(t *testing.T) {
	params := ParamsSec27()
	c := newCtx(t, params, 507, false)
	gks := genGaloisKeys(t, params, c.sk, 508, 1)
	ct, err := c.enc.EncryptValue(3)
	if err != nil {
		t.Fatal(err)
	}
	be := NewBatchEvaluatorFrom(c.eval)
	rots, err := be.RotateManyNTT(ct, gks)
	if err != nil {
		t.Fatal(err)
	}
	// Doubling the magnitude bound each Add must eventually hit the basis
	// exactness window and refuse — never silently wrap.
	acc := rots[0]
	for i := 0; i < 200; i++ {
		next, ok := acc.Add(acc)
		if !ok {
			return
		}
		if next.magBits <= acc.magBits {
			t.Fatal("deferred Add did not grow the magnitude bound")
		}
		acc = next
	}
	t.Fatal("deferred Add never refused past the exactness window")
}
