package bfv

import (
	"errors"
	"math/bits"
	"sync"
	"sync/atomic"

	"repro/internal/dcrt"
	"repro/internal/poly"
)

// NTT-resident rotation outputs: the per-rotation cost of a hoisted
// ApplyGalois is dominated by the two base conversions that turn the
// key-switching accumulators back into coefficient-domain polynomials —
// the step that caps RotateMany at ~1.4× over serial rotation even
// though the digit decomposition is shared. A RotatedNTT defers those
// conversions: the output stays as its exact-integer NTT accumulators in
// the extended basis until a consumer actually forces coefficients
// (Materialize), and deferred outputs can be summed directly in the NTT
// domain (Add), so a rotate-then-aggregate pipeline pays base
// conversions only for the ciphertexts it keeps.

// RotatedNTT is a degree-1 rotation output held in deferred double-CRT
// form. The two accumulators hold the exact integer values of the output
// components (congruent mod q to the materialized polynomials), so
// Materialize is bit-identical to ApplyGaloisHoisted. On backends that
// cannot defer (schoolbook/metered evaluators, non-RNS-native moduli)
// the handle is created already materialized and behaves identically.
//
// Materialize, Add and Release are mutually safe: each takes the
// handle's lock (Add takes both operands' locks in allocation order),
// and Add reports false — so callers fall back to coefficient addition
// — when an operand's accumulators were already released.
type RotatedNTT struct {
	par *Parameters
	ctx *dcrt.Context // nil when the handle was created materialized

	seq     uint64 // allocation order, the Add lock ordering
	magBits int    // bound: |component value| < 2^magBits

	mu         sync.Mutex
	acc0, acc1 *dcrt.Poly  // exact-integer NTT accumulators; nil after Release
	ct         *Ciphertext // materialized form, cached
}

// rotatedSeq hands out the package-wide lock order for RotatedNTT.
var rotatedSeq atomic.Uint64

// rotatedMagBits bounds the exact integer magnitude of a rotation
// output's components: the key-switching accumulator (digits · n ·
// 2^base · q) plus the permuted c0 (≤ q/2), conservatively rounded up.
func rotatedMagBits(par *Parameters) int {
	return par.Q.Bits() + int(par.RelinBaseBits) +
		bits.Len(uint(par.RelinDigits())) + bits.Len(uint(par.N)) + 2
}

// CanDeferRotations reports whether this evaluator's rotation outputs
// can actually stay NTT-resident: only the RNS-native double-CRT
// backend defers base conversions; other backends' RotateManyNTT
// transparently materializes. Capability queries (the bench harness,
// the facade) gate on this instead of assuming deferral happened.
func (ev *Evaluator) CanDeferRotations() bool { return ev.useRNSNative() }

// CanDeferRotations reports the wrapped evaluator's deferral capability.
func (be *BatchEvaluator) CanDeferRotations() bool { return be.ev.CanDeferRotations() }

// ApplyGaloisHoistedNTT is ApplyGaloisHoisted returning the rotation in
// deferred NTT form: the slot permutation of c0 and the key-switching
// accumulation run as usual, but the two output base conversions are
// postponed until Materialize. On backends that cannot defer it falls
// back to the materialized path; either way Materialize's result is
// bit-identical to ApplyGaloisHoisted.
func (ev *Evaluator) ApplyGaloisHoistedNTT(h *Hoisted, gk *GaloisKey) (*RotatedNTT, error) {
	if gk == nil {
		return nil, errors.New("bfv: nil Galois key")
	}
	if h.ctx == nil || !ev.useRNSNative() {
		ct, err := ev.ApplyGaloisHoisted(h, gk)
		if err != nil {
			return nil, err
		}
		return &RotatedNTT{par: ev.params, ct: ct}, nil
	}
	par := ev.params
	ctx := h.ctx
	digits := h.snapshot(par)
	k0, k1 := gk.forms.get(ctx, gk.K0, gk.K1)
	idx := dcrt.GaloisNTTIndices(ctx.N, gk.G)
	acc0 := ctx.GetScratch()
	acc1 := ctx.GetScratch()
	// acc0 starts as τ_g(c0) — a pure NTT-slot gather of the ciphertext's
	// cached centered form — so the key-switching contributions accumulate
	// straight onto it and the whole component defers as one value.
	ctx.PermuteNTT(acc0, h.ct.rnsNTT(ctx, 0), idx)
	acc1.Zero()
	galoisKeySwitchAcc(ctx, acc0, acc1, digits, idx, k0, k1)
	return &RotatedNTT{
		par: par, ctx: ctx,
		seq:  rotatedSeq.Add(1),
		acc0: acc0, acc1: acc1,
		magBits: rotatedMagBits(par),
	}, nil
}

// Materialize forces the deferred output into a coefficient-domain
// ciphertext (the two base conversions), caching the result — repeated
// calls convert once. Bit-identical to ApplyGaloisHoisted, which is
// bit-identical to per-rotation ApplyGalois.
func (r *RotatedNTT) Materialize() *Ciphertext {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.ct == nil {
		if r.acc0 == nil {
			panic("bfv: Materialize after Release on an unmaterialized RotatedNTT")
		}
		r.ct = &Ciphertext{Polys: []*poly.Poly{
			r.ctx.FromRNS(r.acc0), r.ctx.FromRNS(r.acc1),
		}}
	}
	return r.ct
}

// Add returns the deferred sum of two rotation outputs, entirely in the
// NTT domain — no base conversion. It reports false when the sum cannot
// stay deferred (either operand already materialized or released,
// contexts differ, or the exact integer sum would leave the basis
// exactness window); callers then materialize and add mod q, which
// produces the identical result. Both operands' locks are held for the
// duration, so a concurrent Release cannot free an accumulator mid-sum.
func (r *RotatedNTT) Add(o *RotatedNTT) (*RotatedNTT, bool) {
	if r.ctx == nil || o.ctx == nil || r.ctx != o.ctx {
		return nil, false
	}
	mag := max(r.magBits, o.magBits) + 1
	if mag >= r.ctx.BoundBits {
		return nil, false
	}
	if r == o {
		r.mu.Lock()
		defer r.mu.Unlock()
	} else {
		first, second := r, o
		if first.seq > second.seq {
			first, second = second, first
		}
		first.mu.Lock()
		defer first.mu.Unlock()
		second.mu.Lock()
		defer second.mu.Unlock()
	}
	if r.acc0 == nil || o.acc0 == nil {
		return nil, false
	}
	acc0 := r.ctx.GetScratch()
	acc1 := r.ctx.GetScratch()
	r.ctx.AddNTT(acc0, r.acc0, o.acc0)
	r.ctx.AddNTT(acc1, r.acc1, o.acc1)
	return &RotatedNTT{
		par: r.par, ctx: r.ctx,
		seq:  rotatedSeq.Add(1),
		acc0: acc0, acc1: acc1,
		magBits: mag,
	}, true
}

// Release returns the accumulators to the context's scratch pool. Call
// it on handles that are done deferring (materialized or discarded) to
// keep steady-state batched rotation allocation-free; the handle must
// not be used for further Add or first-time Materialize afterwards.
func (r *RotatedNTT) Release() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.ctx != nil && r.acc0 != nil {
		r.ctx.PutScratch(r.acc0)
		r.ctx.PutScratch(r.acc1)
		r.acc0, r.acc1 = nil, nil
	}
}

// RotateManyNTT is RotateMany with deferred outputs: one hoisted digit
// decomposition serves all k Galois elements and no output pays its base
// conversions until materialized. Materializing every output reproduces
// RotateMany bit for bit; consumers that only aggregate (Add) or discard
// outputs skip the conversions entirely.
func (be *BatchEvaluator) RotateManyNTT(ct *Ciphertext, gks []*GaloisKey) ([]*RotatedNTT, error) {
	h, err := be.ev.Hoist(ct)
	if err != nil {
		return nil, err
	}
	defer h.Release()
	out := make([]*RotatedNTT, len(gks))
	err = be.forEach(len(gks), func(i int) error {
		r, err := be.ev.ApplyGaloisHoistedNTT(h, gks[i])
		out[i] = r
		return err
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
