// Package core is the top-level facade of the library: it bundles the
// client side (key generation, encryption, decryption) and the server
// side (a PIM-resident or host evaluator) of the paper's deployment model
// (§3): "Users handle key generation, encryption, and decryption to
// guarantee their data privacy. Computation of homomorphic operations
// takes place in a PIM system."
//
// Most applications need only this package plus the hestats workloads;
// the underlying packages (bfv, pim, hepim, perfmodel, bench) remain
// available for fine-grained control.
package core

import (
	"fmt"

	"repro/internal/bfv"
	"repro/internal/hepim"
	"repro/internal/hestats"
	"repro/internal/pim"
	"repro/internal/sampling"
)

// Re-exported parameter presets (see bfv for details).
var (
	// ParamsSec27 is the paper's 27-bit security level (N=1024, add-only).
	ParamsSec27 = bfv.ParamsSec27
	// ParamsSec54 is the 54-bit level (N=2048, one multiplication).
	ParamsSec54 = bfv.ParamsSec54
	// ParamsSec109 is the 109-bit level (N=4096, comfortable mul margin).
	ParamsSec109 = bfv.ParamsSec109
	// ParamsToy is an insecure, fast instance for tests and demos.
	ParamsToy = bfv.ParamsToy
)

// Client owns the keys and performs the user-side operations.
type Client struct {
	Params *bfv.Parameters

	sk  *bfv.SecretKey
	pk  *bfv.PublicKey
	rlk *bfv.RelinKey
	enc *bfv.Encryptor
	dec *bfv.Decryptor
}

// NewClient generates fresh keys from the system entropy source.
func NewClient(params *bfv.Parameters) (*Client, error) {
	src, err := sampling.NewSystemSource()
	if err != nil {
		return nil, err
	}
	return NewClientWithSource(params, src)
}

// NewClientWithSource generates keys from a caller-provided source
// (deterministic sources make tests reproducible).
func NewClientWithSource(params *bfv.Parameters, src *sampling.Source) (*Client, error) {
	if params == nil {
		return nil, fmt.Errorf("core: nil parameters")
	}
	kg := bfv.NewKeyGenerator(params, src)
	sk, pk := kg.GenKeyPair()
	rlk := kg.GenRelinKey(sk)
	return &Client{
		Params: params,
		sk:     sk,
		pk:     pk,
		rlk:    rlk,
		enc:    bfv.NewEncryptor(params, pk, src),
		dec:    bfv.NewDecryptor(params, sk),
	}, nil
}

// Encrypt encrypts one value (constant-coefficient encoding).
func (c *Client) Encrypt(v uint64) (*bfv.Ciphertext, error) { return c.enc.EncryptValue(v) }

// EncryptAll encrypts a batch of values, one ciphertext each.
func (c *Client) EncryptAll(vals []uint64) ([]*bfv.Ciphertext, error) {
	out := make([]*bfv.Ciphertext, len(vals))
	for i, v := range vals {
		ct, err := c.enc.EncryptValue(v)
		if err != nil {
			return nil, err
		}
		out[i] = ct
	}
	return out, nil
}

// Decrypt recovers a value.
func (c *Client) Decrypt(ct *bfv.Ciphertext) uint64 { return c.dec.DecryptValue(ct) }

// NoiseBudget reports the remaining noise budget of ct in bits.
func (c *Client) NoiseBudget(ct *bfv.Ciphertext) int { return c.dec.NoiseBudget(ct) }

// Decryptor exposes the underlying decryptor for the hestats result types.
func (c *Client) Decryptor() *bfv.Decryptor { return c.dec }

// RelinKey exposes the evaluation key a server needs for multiplication.
// It does not reveal the secret key.
func (c *Client) RelinKey() *bfv.RelinKey { return c.rlk }

// NewPIMServer builds a PIM evaluation server for this client's
// parameters on a simulated UPMEM system with the given DPU count
// (0 = the paper's full 2,524-DPU system).
func (c *Client) NewPIMServer(dpus int) (*hepim.Server, error) {
	cfg := pim.DefaultConfig()
	if dpus > 0 {
		cfg.NumDPUs = dpus
	}
	return hepim.NewServer(cfg, c.Params, c.rlk)
}

// NewHostServer builds the custom-CPU evaluation engine for this
// client's parameters.
func (c *Client) NewHostServer() *hestats.HostEngine {
	return &hestats.HostEngine{Eval: bfv.NewEvaluator(c.Params, c.rlk)}
}
