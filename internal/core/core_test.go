package core

import (
	"testing"

	"repro/internal/hestats"
	"repro/internal/sampling"
)

func testClient(t *testing.T, seed uint64) *Client {
	t.Helper()
	c, err := NewClientWithSource(ParamsToy(), sampling.NewSourceFromUint64(seed))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestClientRoundTrip(t *testing.T) {
	c := testClient(t, 1)
	ct, err := c.Encrypt(9)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Decrypt(ct); got != 9 {
		t.Errorf("round trip = %d", got)
	}
	if c.NoiseBudget(ct) <= 0 {
		t.Error("fresh ciphertext has no budget")
	}
}

func TestClientRejectsNilParams(t *testing.T) {
	if _, err := NewClientWithSource(nil, sampling.NewSourceFromUint64(1)); err == nil {
		t.Error("nil params accepted")
	}
}

func TestEncryptAll(t *testing.T) {
	c := testClient(t, 2)
	cts, err := c.EncryptAll([]uint64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	for i, ct := range cts {
		if got := c.Decrypt(ct); got != uint64(i+1) {
			t.Errorf("ct %d decrypts to %d", i, got)
		}
	}
}

func TestEndToEndPIMWorkflow(t *testing.T) {
	// The full deployment of the paper through the facade: client
	// encrypts, PIM server computes mean and a product, client decrypts.
	c := testClient(t, 3)
	srv, err := c.NewPIMServer(4)
	if err != nil {
		t.Fatal(err)
	}
	cts, err := c.EncryptAll([]uint64{2, 4, 6})
	if err != nil {
		t.Fatal(err)
	}
	m, err := hestats.Mean(srv, cts)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Decrypt(c.Decryptor()); got != 4.0 {
		t.Errorf("mean = %v", got)
	}
	prod, err := srv.Mul(cts[0], cts[1])
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Decrypt(prod); got != 8 {
		t.Errorf("2*4 = %d", got)
	}
	if srv.ModeledSeconds() <= 0 {
		t.Error("server reported no kernel time")
	}
}

func TestHostAndPIMServersAgree(t *testing.T) {
	c := testClient(t, 4)
	pimSrv, err := c.NewPIMServer(2)
	if err != nil {
		t.Fatal(err)
	}
	host := c.NewHostServer()
	cts, err := c.EncryptAll([]uint64{3, 5})
	if err != nil {
		t.Fatal(err)
	}
	hp, err := host.Mul(cts[0], cts[1])
	if err != nil {
		t.Fatal(err)
	}
	pp, err := pimSrv.Mul(cts[0], cts[1])
	if err != nil {
		t.Fatal(err)
	}
	if !hp.Equal(pp) {
		t.Error("host and PIM multiplication disagree")
	}
}

func TestPresetAliases(t *testing.T) {
	if ParamsSec27().N != 1024 || ParamsSec54().N != 2048 || ParamsSec109().N != 4096 {
		t.Error("preset aliases broken")
	}
}
