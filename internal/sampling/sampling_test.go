package sampling

import (
	"math"
	"math/big"
	"testing"

	"repro/internal/limb32"
)

func TestDeterminism(t *testing.T) {
	a := NewSourceFromUint64(42)
	b := NewSourceFromUint64(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must give same stream")
		}
	}
	c := NewSourceFromUint64(43)
	same := true
	for i := 0; i < 10; i++ {
		if a.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Error("different seeds should diverge")
	}
}

func TestSystemSource(t *testing.T) {
	s, err := NewSystemSource()
	if err != nil {
		t.Fatal(err)
	}
	x, y := s.Uint64(), s.Uint64()
	if x == 0 && y == 0 {
		t.Error("system source produced zeros (astronomically unlikely)")
	}
}

func TestUniformModRange(t *testing.T) {
	s := NewSourceFromUint64(1)
	out := make([]uint64, 10000)
	q := uint64(134217689)
	s.UniformMod(out, q)
	var sum float64
	for _, v := range out {
		if v >= q {
			t.Fatalf("value %d out of range", v)
		}
		sum += float64(v)
	}
	mean := sum / float64(len(out))
	want := float64(q) / 2
	if math.Abs(mean-want)/want > 0.05 {
		t.Errorf("uniform mean %.0f too far from %.0f", mean, want)
	}
}

func TestUniformNat(t *testing.T) {
	s := NewSourceFromUint64(2)
	q109, _ := new(big.Int).SetString("649037107316853453566312041152481", 10)
	q := limb32.FromBig(q109, 4)
	seenHigh := false
	for i := 0; i < 500; i++ {
		v := s.UniformNat(q, 4)
		if limb32.Cmp(v, q, nil) >= 0 {
			t.Fatalf("UniformNat produced %v >= q", v)
		}
		if v.BitLen() > 96 {
			seenHigh = true
		}
	}
	if !seenHigh {
		t.Error("UniformNat never used the high limb; distribution looks wrong")
	}
	// Tight modulus that forces rejection: q = 2^96 + 1 means top limb is
	// almost always rejected.
	qTight := limb32.Nat{1, 0, 0, 1}
	v := s.UniformNat(qTight, 4)
	if limb32.Cmp(v, qTight, nil) >= 0 {
		t.Fatal("rejection sampling failed for tight modulus")
	}
}

func TestUniformNatPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSourceFromUint64(3).UniformNat(limb32.NewNat(2), 2)
}

func TestTernaryDistribution(t *testing.T) {
	s := NewSourceFromUint64(4)
	out := make([]int8, 30000)
	s.Ternary(out)
	var counts [3]int
	for _, v := range out {
		if v < -1 || v > 1 {
			t.Fatalf("ternary value %d", v)
		}
		counts[v+1]++
	}
	for i, c := range counts {
		frac := float64(c) / float64(len(out))
		if math.Abs(frac-1.0/3.0) > 0.02 {
			t.Errorf("ternary bucket %d has fraction %.3f, want ~0.333", i-1, frac)
		}
	}
}

func TestGaussianShape(t *testing.T) {
	s := NewSourceFromUint64(5)
	out := make([]int8, 100000)
	s.Gaussian(out)
	bound := s.GaussianBound()
	var sum, sumSq float64
	for _, v := range out {
		if int(v) < -bound || int(v) > bound {
			t.Fatalf("gaussian value %d outside ±%d", v, bound)
		}
		sum += float64(v)
		sumSq += float64(v) * float64(v)
	}
	n := float64(len(out))
	mean := sum / n
	std := math.Sqrt(sumSq/n - mean*mean)
	if math.Abs(mean) > 0.05 {
		t.Errorf("gaussian mean %.3f, want ~0", mean)
	}
	if math.Abs(std-DefaultSigma)/DefaultSigma > 0.03 {
		t.Errorf("gaussian std %.3f, want ~%.1f", std, DefaultSigma)
	}
}

func TestGaussianBound(t *testing.T) {
	s := NewSourceFromUint64(6)
	if got, want := s.GaussianBound(), int(math.Ceil(6*DefaultSigma)); got != want {
		t.Errorf("GaussianBound = %d, want %d", got, want)
	}
}

func TestGaussTableMonotone(t *testing.T) {
	g := newGaussTable(DefaultSigma)
	for i := 1; i < len(g.cdf); i++ {
		if g.cdf[i] < g.cdf[i-1] {
			t.Fatalf("CDF not monotone at %d", i)
		}
	}
	if g.cdf[len(g.cdf)-1] != 1<<63 {
		t.Error("CDF must end at full scale")
	}
}
