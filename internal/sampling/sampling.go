// Package sampling provides the randomness used by the BFV scheme: a
// deterministic, seedable ChaCha8 source (reproducible tests and
// benchmarks), uniform sampling modulo word-sized and multi-limb moduli,
// uniform ternary secrets, and a bounded discrete Gaussian error sampler
// with the standard lattice-crypto width σ = 3.2.
package sampling

import (
	"crypto/rand"
	"math"
	mrand "math/rand/v2"

	"repro/internal/limb32"
)

// DefaultSigma is the error standard deviation used by SEAL and most BFV
// deployments.
const DefaultSigma = 3.2

// gaussTailCut bounds the support of the discrete Gaussian at ±⌈6σ⌉,
// beyond which the probability mass is < 2⁻⁵⁰.
const gaussTailCut = 6

// Source is a deterministic random source for all samplers.
type Source struct {
	rng *mrand.Rand
	// Cumulative distribution table for the discrete Gaussian, scaled to
	// [0, 1<<63): cdf[i] = P(|X| <= i-ish); see newGaussTable.
	gauss *gaussTable
}

// NewSource returns a Source seeded from the 32-byte seed (ChaCha8).
func NewSource(seed [32]byte) *Source {
	return &Source{
		rng:   mrand.New(mrand.NewChaCha8(seed)),
		gauss: defaultGauss,
	}
}

// NewSourceFromUint64 is a convenience for tests: the seed is the value
// repeated across the 32 bytes.
func NewSourceFromUint64(seed uint64) *Source {
	var s [32]byte
	for i := 0; i < 4; i++ {
		for j := 0; j < 8; j++ {
			s[i*8+j] = byte(seed >> (8 * j))
		}
	}
	return NewSource(s)
}

// NewSystemSource returns a Source seeded from crypto/rand; it fails only
// if the operating system's entropy source does.
func NewSystemSource() (*Source, error) {
	var seed [32]byte
	if _, err := rand.Read(seed[:]); err != nil {
		return nil, err
	}
	return NewSource(seed), nil
}

// Uint64 returns a uniform 64-bit value.
func (s *Source) Uint64() uint64 { return s.rng.Uint64() }

// Uint64N returns a uniform value in [0, n).
func (s *Source) Uint64N(n uint64) uint64 { return s.rng.Uint64N(n) }

// UniformMod fills out with independent uniform values in [0, q).
func (s *Source) UniformMod(out []uint64, q uint64) {
	for i := range out {
		out[i] = s.rng.Uint64N(q)
	}
}

// UniformNat returns a uniform value in [0, q) as a width-limb Nat, by
// rejection sampling on q.BitLen() bits (expected < 2 draws).
func (s *Source) UniformNat(q limb32.Nat, width int) limb32.Nat {
	bl := q.BitLen()
	if bl == 0 {
		panic("sampling: zero modulus")
	}
	limbs := (bl + 31) / 32
	topBits := uint(bl - 32*(limbs-1))
	mask := uint32(1)<<topBits - 1
	if topBits == 32 {
		mask = ^uint32(0)
	}
	out := limb32.NewNat(width)
	for {
		for i := 0; i < limbs; i++ {
			out[i] = uint32(s.rng.Uint64())
		}
		out[limbs-1] &= mask
		for i := limbs; i < width; i++ {
			out[i] = 0
		}
		if limb32.Cmp(out, q, nil) < 0 {
			return out
		}
	}
}

// Ternary fills out with independent uniform values from {-1, 0, +1}.
func (s *Source) Ternary(out []int8) {
	for i := range out {
		out[i] = int8(s.rng.Uint64N(3)) - 1
	}
}

// gaussTable is a precomputed inverse-CDF table for the centered discrete
// Gaussian with parameter sigma, supported on [-bound, bound].
type gaussTable struct {
	sigma float64
	bound int
	cdf   []uint64 // cdf[k] = round(2^63 * P(X <= k - bound)), strictly increasing
}

func newGaussTable(sigma float64) *gaussTable {
	bound := int(math.Ceil(gaussTailCut * sigma))
	weights := make([]float64, 2*bound+1)
	var total float64
	for k := -bound; k <= bound; k++ {
		w := math.Exp(-float64(k*k) / (2 * sigma * sigma))
		weights[k+bound] = w
		total += w
	}
	cdf := make([]uint64, 2*bound+1)
	var acc float64
	for i, w := range weights {
		acc += w / total
		v := acc * float64(1<<63)
		if v >= float64(1<<63) {
			cdf[i] = 1 << 63
		} else {
			cdf[i] = uint64(v)
		}
	}
	cdf[2*bound] = 1 << 63 // exact top
	return &gaussTable{sigma: sigma, bound: bound, cdf: cdf}
}

var defaultGauss = newGaussTable(DefaultSigma)

// Gaussian fills out with independent draws from the centered discrete
// Gaussian with σ = DefaultSigma, by inverse-CDF sampling.
func (s *Source) Gaussian(out []int8) {
	for i := range out {
		u := s.rng.Uint64() >> 1 // uniform in [0, 2^63)
		// Binary search the CDF.
		lo, hi := 0, len(s.gauss.cdf)-1
		for lo < hi {
			mid := (lo + hi) / 2
			if s.gauss.cdf[mid] <= u {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		out[i] = int8(lo - s.gauss.bound)
	}
}

// GaussianBound returns the maximum magnitude Gaussian can emit.
func (s *Source) GaussianBound() int { return s.gauss.bound }
