package limb32

// Barrett reduction (HAC, Algorithm 14.42) for fixed multi-limb moduli.
// This is the modular-reduction strategy the PIM multiplication kernels
// use after a Karatsuba coefficient product: two multiplies by a
// precomputed constant replace a division, which the DPU lacks entirely.

// Barrett holds the precomputed state for reducing values < q² modulo q.
type Barrett struct {
	Q  Nat // modulus, k limbs, top limb non-zero
	Mu Nat // floor(b^{2k} / q), k+1 limbs
	k  int
}

// NewBarrett precomputes the Barrett constant for modulus q. The modulus
// width defines k: q's most significant limb must be non-zero (pad the
// caller's value with TrimmedLen first if needed).
func NewBarrett(q Nat) *Barrett {
	k := q.TrimmedLen()
	if k == 0 {
		panic("limb32: Barrett modulus is zero")
	}
	qq := q[:k].Clone()
	// mu = floor(b^{2k} / q): dividend is 1 followed by 2k zero limbs.
	dividend := NewNat(2*k + 1)
	dividend[2*k] = 1
	mu := NewNat(k + 1)
	DivMod(mu, nil, dividend, qq, nil)
	return &Barrett{Q: qq, Mu: mu, k: k}
}

// Reduce sets dst = x mod q for x < q². x must have width 2k; dst must have
// width ≥ k. Charges the Meter for the two constant multiplies and the
// final conditional subtractions, exactly what the DPU kernel executes.
func (br *Barrett) Reduce(dst Nat, x Nat, m Meter) {
	k := br.k
	if len(x) != 2*k {
		panic("limb32: Barrett.Reduce expects a 2k-limb input")
	}

	// q1 = floor(x / b^{k-1}): top k+1 limbs of x.
	q1 := x[k-1:] // k+1 limbs, borrowed view
	tick(m, OpMove, k+1)

	// q2 = q1 * mu (2k+2 limbs); q3 = floor(q2 / b^{k+1}): top k+1 limbs.
	q2 := NewNat(2*k + 2)
	MulSchoolbook(q2, Nat(q1), br.Mu, m)
	q3 := q2[k+1:] // k+1 limbs

	// r1 = x mod b^{k+1}; r2 = (q3*q) mod b^{k+1}; r = r1 - r2 (mod b^{k+1}).
	r1 := NewNat(k + 1)
	copy(r1, x[:k+1])
	tick(m, OpMove, k+1)

	prod := NewNat(2*k + 2)
	MulSchoolbook(prod, Nat(q3), padTo(br.Q, k+1), m)
	r2 := prod[:k+1]

	r := NewNat(k + 1)
	Sub(r, r1, Nat(r2), m) // wraparound mod b^{k+1} is exactly HAC step 3

	// At most two final subtractions of q.
	qExt := padTo(br.Q, k+1)
	for Cmp(r, qExt, m) >= 0 {
		Sub(r, r, qExt, m)
	}
	copy(dst, r[:k])
	for i := k; i < len(dst); i++ {
		dst[i] = 0
	}
	tick(m, OpStore, k)
}

// MulMod sets dst = (a * b) mod q for a, b < q, using a Karatsuba product
// followed by a Barrett reduction — the paper's §3 multiplication pipeline.
// dst, a, b must have width k.
func (br *Barrett) MulMod(dst, a, b Nat, m Meter) {
	prod := NewNat(2 * br.k)
	Mul(prod, a[:br.k], b[:br.k], m)
	br.Reduce(dst, prod, m)
}

// padTo returns n padded with zero limbs to the given width (a copy when
// padding is needed, the original slice otherwise).
func padTo(n Nat, width int) Nat {
	if len(n) >= width {
		return n[:width]
	}
	p := NewNat(width)
	copy(p, n)
	return p
}
