package limb32

// Multiplication. The UPMEM DPU has no 32-bit multiplier: 8- and 16-bit
// multiplies use the native 8×8 hardware unit and anything wider compiles to
// a software shift-and-add loop (paper §3, footnote 1). This package charges
// exactly one OpMul32 per 32×32→64 product; the PIM cost model translates
// that into shift-and-add cycles, and the ablation benches re-price it to
// explore the "future PIM systems with native 32-bit multiplication"
// hypothesis of Key Takeaway 2.
//
// For 64- and 128-bit coefficient multiplication the paper splits operands
// into 32-bit chunks and applies the Karatsuba algorithm; Mul follows the
// same strategy (3 sub-products for 2 limbs, 9 for 4 limbs).

// mul32 returns the 64-bit product of two limbs and charges one software
// multiply plus the surrounding register traffic.
func mul32(a, b uint32, m Meter) uint64 {
	tick(m, OpLoad, 2)
	tick(m, OpMul32, 1)
	return uint64(a) * uint64(b)
}

// MulSchoolbook computes dst = a * b by long multiplication.
// dst must have width len(a)+len(b) and must not alias a or b.
func MulSchoolbook(dst, a, b Nat, m Meter) {
	if len(dst) != len(a)+len(b) {
		panic("limb32: MulSchoolbook dst width must be len(a)+len(b)")
	}
	dst.SetZero()
	for i := range a {
		var carry uint64
		ai := a[i]
		if ai == 0 {
			tick(m, OpLoad, 1)
			tick(m, OpLoop, 1)
			continue
		}
		for j := range b {
			p := mul32(ai, b[j], m)
			s := uint64(dst[i+j]) + (p & 0xffffffff) + carry
			dst[i+j] = uint32(s)
			carry = (s >> 32) + (p >> 32)
			tick(m, OpLoad, 1)
			tick(m, OpAdd, 1)
			tick(m, OpAddC, 2)
			tick(m, OpStore, 1)
			tick(m, OpLoop, 1)
		}
		k := i + len(b)
		for carry != 0 && k < len(dst) {
			s := uint64(dst[k]) + carry
			dst[k] = uint32(s)
			carry = s >> 32
			k++
			tick(m, OpLoad, 1)
			tick(m, OpAddC, 1)
			tick(m, OpStore, 1)
		}
		tick(m, OpLoop, 1)
	}
}

// Mul computes dst = a * b, picking the same algorithm the paper's PIM
// kernels use: direct multiply for 1 limb, Karatsuba for the 2- and 4-limb
// power-of-two widths, schoolbook otherwise. dst must have width
// len(a)+len(b) and must not alias a or b. a and b must share a width for
// the Karatsuba paths.
func Mul(dst, a, b Nat, m Meter) {
	switch {
	case len(a) == 1 && len(b) == 1:
		p := mul32(a[0], b[0], m)
		dst[0] = uint32(p)
		dst[1] = uint32(p >> 32)
		tick(m, OpStore, 2)
	case len(a) == len(b) && len(a) == 2:
		karatsuba2(dst, a, b, m)
	case len(a) == len(b) && len(a) == 4:
		karatsuba4(dst, a, b, m)
	default:
		MulSchoolbook(dst, a, b, m)
	}
}

// karatsuba2 multiplies two 2-limb (64-bit) values into a 4-limb product
// using 3 limb multiplies instead of 4:
//
//	a = a1·B + a0, b = b1·B + b0  (B = 2³²)
//	z0 = a0·b0, z2 = a1·b1, z1 = (a0+a1)(b0+b1) − z0 − z2
//	a·b = z2·B² + z1·B + z0
func karatsuba2(dst, a, b Nat, m Meter) {
	z0 := mul32(a[0], b[0], m)
	z2 := mul32(a[1], b[1], m)

	// (a0+a1) and (b0+b1) fit in 33 bits; split off the top bit the way the
	// DPU code tracks carries.
	sa := uint64(a[0]) + uint64(a[1])
	sb := uint64(b[0]) + uint64(b[1])
	saH, saL := sa>>32, sa&0xffffffff
	sbH, sbL := sb>>32, sb&0xffffffff
	tick(m, OpAdd, 2)

	zm := mul32(uint32(saL), uint32(sbL), m)
	// sa·sb = zm + cross·2³² + (saH·sbH)·2⁶⁴ where cross = saH·sbL + sbH·saL
	// (saH, sbH ∈ {0,1}, so these "multiplies" are conditional adds on the DPU).
	cross := saH*sbL + sbH*saL
	hh := saH & sbH
	tick(m, OpLogic, 3)

	// Fold sa·sb into a 128-bit (lo, hi) pair.
	lo := zm + cross<<32
	hi := cross>>32 + hh
	if lo < zm {
		hi++
	}
	tick(m, OpAdd, 1)
	tick(m, OpAddC, 1)

	// z1 = sa·sb − z0 − z2 over 128 bits (non-negative by construction).
	if lo < z0 {
		hi--
	}
	lo -= z0
	if lo < z2 {
		hi--
	}
	lo -= z2
	tick(m, OpSub, 2)
	tick(m, OpSubB, 2)
	z1lo, z1hi := lo, hi // z1hi ≤ 1 for 64-bit operands

	// Assemble dst = z2·2⁶⁴ + z1·2³² + z0.
	r0 := uint32(z0)
	s1 := z0>>32 + z1lo&0xffffffff
	r1 := uint32(s1)
	s2 := z2&0xffffffff + z1lo>>32 + s1>>32
	r2 := uint32(s2)
	s3 := z2>>32 + z1hi&0xffffffff + s2>>32
	r3 := uint32(s3)
	tick(m, OpAdd, 2)
	tick(m, OpAddC, 3)
	dst[0], dst[1], dst[2], dst[3] = r0, r1, r2, r3
	tick(m, OpStore, 4)
}

// karatsuba4 multiplies two 4-limb (128-bit) values into an 8-limb product
// with three 2-limb Karatsuba multiplies (9 limb multiplies total).
func karatsuba4(dst, a, b Nat, m Meter) {
	a0, a1 := a[:2], a[2:]
	b0, b1 := b[:2], b[2:]

	var z0, z2 [4]uint32
	karatsuba2(Nat(z0[:]), a0, b0, m)
	karatsuba2(Nat(z2[:]), a1, b1, m)

	// sa = a0+a1, sb = b0+b1: 65-bit values; keep the carry bits separate.
	var sa, sb [2]uint32
	ca := Add(Nat(sa[:]), a0, a1, m)
	cb := Add(Nat(sb[:]), b0, b1, m)

	var zm [4]uint32
	karatsuba2(Nat(zm[:]), Nat(sa[:]), Nat(sb[:]), m)

	// zmFull = zm + ca·sb·2⁶⁴ + cb·sa·2⁶⁴ + ca·cb·2¹²⁸ over 5 limbs + top bit.
	var zmFull [6]uint32
	copy(zmFull[:4], zm[:])
	if ca != 0 {
		addAt(zmFull[:], sb[:], 2, m)
	}
	if cb != 0 {
		addAt(zmFull[:], sa[:], 2, m)
	}
	if ca != 0 && cb != 0 {
		addAt(zmFull[:], []uint32{1}, 4, m)
	}

	// z1 = zmFull - z0 - z2 (fits in 6 limbs, non-negative).
	subAt(zmFull[:], z0[:], 0, m)
	subAt(zmFull[:], z2[:], 0, m)

	// dst = z2·2¹²⁸ + z1·2⁶⁴ + z0.
	dst.SetZero()
	copy(dst[0:4], z0[:])
	copy(dst[4:8], z2[:])
	tick(m, OpStore, 8)
	addAt(dst, zmFull[:], 2, m)
}

// addAt adds src into dst starting at limb offset k, propagating the carry
// through the rest of dst. Overflow past the top of dst must not occur for
// correct inputs; it panics otherwise to catch logic errors.
func addAt(dst, src []uint32, k int, m Meter) {
	var carry uint64
	i := 0
	for ; i < len(src) && k+i < len(dst); i++ {
		s := uint64(dst[k+i]) + uint64(src[i]) + carry
		dst[k+i] = uint32(s)
		carry = s >> 32
	}
	tick(m, OpLoad, 2*i)
	tick(m, OpAddC, i)
	tick(m, OpStore, i)
	tick(m, OpLoop, i)
	for j := k + i; carry != 0 && j < len(dst); j++ {
		s := uint64(dst[j]) + carry
		dst[j] = uint32(s)
		carry = s >> 32
		tick(m, OpAddC, 1)
		tick(m, OpLoad, 1)
		tick(m, OpStore, 1)
	}
	if carry != 0 {
		panic("limb32: addAt overflow")
	}
}

// subAt subtracts src from dst starting at limb offset k, propagating the
// borrow. The result must be non-negative; it panics otherwise.
func subAt(dst, src []uint32, k int, m Meter) {
	var borrow uint64
	i := 0
	for ; i < len(src) && k+i < len(dst); i++ {
		d := uint64(dst[k+i]) - uint64(src[i]) - borrow
		dst[k+i] = uint32(d)
		borrow = (d >> 32) & 1
	}
	tick(m, OpLoad, 2*i)
	tick(m, OpSubB, i)
	tick(m, OpStore, i)
	tick(m, OpLoop, i)
	for j := k + i; borrow != 0 && j < len(dst); j++ {
		d := uint64(dst[j]) - borrow
		dst[j] = uint32(d)
		borrow = (d >> 32) & 1
		tick(m, OpSubB, 1)
		tick(m, OpLoad, 1)
		tick(m, OpStore, 1)
	}
	if borrow != 0 {
		panic("limb32: subAt underflow")
	}
}

// MulCost returns the number of 32×32 software multiplies Mul performs for
// operands of the given limb width. Used by the analytic performance model.
func MulCost(width int) int {
	switch width {
	case 1:
		return 1
	case 2:
		return 3
	case 4:
		return 9
	default:
		return width * width
	}
}
