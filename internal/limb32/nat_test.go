package limb32

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

func randNat(rng *rand.Rand, width int) Nat {
	n := NewNat(width)
	for i := range n {
		n[i] = rng.Uint32()
	}
	return n
}

func TestFromUint64RoundTrip(t *testing.T) {
	cases := []uint64{0, 1, 0xffffffff, 0x100000000, 0xdeadbeefcafebabe, 1<<64 - 1}
	for _, v := range cases {
		n := FromUint64(v, 2)
		if got := n.Uint64(); got != v {
			t.Errorf("FromUint64(%#x) round trip = %#x", v, got)
		}
	}
}

func TestFromUint64PanicsWhenTooWide(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for 64-bit value in 1 limb")
		}
	}()
	FromUint64(1<<40, 1)
}

func TestBigRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for w := 1; w <= 9; w++ {
		for i := 0; i < 50; i++ {
			n := randNat(rng, w)
			got := FromBig(n.Big(), w)
			if Cmp(got, n, nil) != 0 {
				t.Fatalf("width %d: big round trip %v != %v", w, got, n)
			}
		}
	}
}

func TestBitLen(t *testing.T) {
	cases := []struct {
		n    Nat
		want int
	}{
		{NewNat(4), 0},
		{FromUint64(1, 4), 1},
		{FromUint64(0x80000000, 4), 32},
		{FromUint64(1<<33, 4), 34},
		{Nat{0, 0, 0, 1}, 97},
	}
	for _, c := range cases {
		if got := c.n.BitLen(); got != c.want {
			t.Errorf("BitLen(%v) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestTrimmedLen(t *testing.T) {
	if got := NewNat(4).TrimmedLen(); got != 0 {
		t.Errorf("TrimmedLen(0) = %d", got)
	}
	if got := (Nat{5, 0, 0, 0}).TrimmedLen(); got != 1 {
		t.Errorf("TrimmedLen = %d, want 1", got)
	}
	if got := (Nat{5, 0, 7, 0}).TrimmedLen(); got != 3 {
		t.Errorf("TrimmedLen = %d, want 3", got)
	}
}

func TestAddMatchesBig(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for w := 1; w <= 8; w++ {
		for i := 0; i < 100; i++ {
			a, b := randNat(rng, w), randNat(rng, w)
			dst := NewNat(w)
			carry := Add(dst, a, b, nil)
			want := new(big.Int).Add(a.Big(), b.Big())
			wantCarry := new(big.Int).Rsh(want, uint(32*w))
			want.SetBit(want, 32*w+1, 0) // irrelevant; mask below
			mask := new(big.Int).Lsh(big.NewInt(1), uint(32*w))
			mask.Sub(mask, big.NewInt(1))
			want.And(want, mask)
			if dst.Big().Cmp(want) != 0 {
				t.Fatalf("w=%d Add mismatch: %v+%v", w, a, b)
			}
			if uint64(carry) != wantCarry.Uint64() {
				t.Fatalf("w=%d Add carry mismatch", w)
			}
		}
	}
}

func TestSubMatchesBig(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for w := 1; w <= 8; w++ {
		for i := 0; i < 100; i++ {
			a, b := randNat(rng, w), randNat(rng, w)
			dst := NewNat(w)
			borrow := Sub(dst, a, b, nil)
			want := new(big.Int).Sub(a.Big(), b.Big())
			wantBorrow := uint32(0)
			if want.Sign() < 0 {
				wantBorrow = 1
				mod := new(big.Int).Lsh(big.NewInt(1), uint(32*w))
				want.Add(want, mod)
			}
			if dst.Big().Cmp(want) != 0 {
				t.Fatalf("w=%d Sub mismatch: %v-%v", w, a, b)
			}
			if borrow != wantBorrow {
				t.Fatalf("w=%d Sub borrow mismatch", w)
			}
		}
	}
}

func TestAddSubInverse(t *testing.T) {
	f := func(av, bv [4]uint32) bool {
		a, b := Nat(av[:]).Clone(), Nat(bv[:]).Clone()
		sum := NewNat(4)
		carry := Add(sum, a, b, nil)
		back := NewNat(4)
		borrow := Sub(back, sum, b, nil)
		return Cmp(back, a, nil) == 0 && carry == borrow
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddModSubModNegMod(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for w := 1; w <= 4; w++ {
		q := randNat(rng, w)
		q[w-1] |= 0x80000000 // ensure top limb set so values below stay < q
		for i := 0; i < 200; i++ {
			a, b := randNat(rng, w), randNat(rng, w)
			Mod(a, a.Clone(), q, nil)
			Mod(b, b.Clone(), q, nil)
			qb := q.Big()

			dst := NewNat(w)
			AddMod(dst, a, b, q, nil)
			want := new(big.Int).Add(a.Big(), b.Big())
			want.Mod(want, qb)
			if dst.Big().Cmp(want) != 0 {
				t.Fatalf("AddMod mismatch w=%d", w)
			}

			SubMod(dst, a, b, q, nil)
			want.Sub(a.Big(), b.Big())
			want.Mod(want, qb)
			if dst.Big().Cmp(want) != 0 {
				t.Fatalf("SubMod mismatch w=%d", w)
			}

			NegMod(dst, a, q, nil)
			want.Neg(a.Big())
			want.Mod(want, qb)
			if dst.Big().Cmp(want) != 0 {
				t.Fatalf("NegMod mismatch w=%d", w)
			}
		}
	}
}

func TestShiftLimbs(t *testing.T) {
	a := Nat{1, 2, 3, 4}
	dst := NewNat(4)
	ShiftLeftLimbs(dst, a, 1, nil)
	if dst[0] != 0 || dst[1] != 1 || dst[2] != 2 || dst[3] != 3 {
		t.Errorf("ShiftLeftLimbs = %v", dst)
	}
	ShiftRightLimbs(dst, a, 2, nil)
	if dst[0] != 3 || dst[1] != 4 || dst[2] != 0 || dst[3] != 0 {
		t.Errorf("ShiftRightLimbs = %v", dst)
	}
	// In-place shift must also work.
	b := Nat{9, 8, 7, 6}
	ShiftLeftLimbs(b, b, 1, nil)
	if b[0] != 0 || b[1] != 9 || b[2] != 8 || b[3] != 7 {
		t.Errorf("in-place ShiftLeftLimbs = %v", b)
	}
}

func TestShiftRightBits(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 100; i++ {
		a := randNat(rng, 4)
		s := uint(rng.Intn(32))
		dst := NewNat(4)
		ShiftRightBits(dst, a, s, nil)
		want := new(big.Int).Rsh(a.Big(), s)
		if dst.Big().Cmp(want) != 0 {
			t.Fatalf("ShiftRightBits(%v, %d) = %v, want %v", a, s, dst, want)
		}
	}
}

func TestCmp(t *testing.T) {
	a := Nat{0, 1}
	b := Nat{0xffffffff, 0}
	if Cmp(a, b, nil) != 1 || Cmp(b, a, nil) != -1 || Cmp(a, a, nil) != 0 {
		t.Error("Cmp ordering wrong")
	}
}

func TestMeterCharges(t *testing.T) {
	var m Counts
	a, b := FromUint64(1, 4), FromUint64(2, 4)
	dst := NewNat(4)
	Add(dst, a, b, &m)
	if m[OpAdd] != 1 || m[OpAddC] != 3 {
		t.Errorf("Add metering: add=%d addc=%d, want 1/3", m[OpAdd], m[OpAddC])
	}
	if m[OpLoad] != 8 || m[OpStore] != 4 {
		t.Errorf("Add metering: load=%d store=%d, want 8/4", m[OpLoad], m[OpStore])
	}
	if m.Total() == 0 {
		t.Error("Total should be non-zero")
	}
	m.Reset()
	if m.Total() != 0 {
		t.Error("Reset failed")
	}
}

func TestOpString(t *testing.T) {
	if OpAdd.String() != "add" || OpMul32.String() != "mul32" {
		t.Error("Op names wrong")
	}
	if Op(99).String() != "op?" {
		t.Error("out-of-range Op name")
	}
}
