package limb32

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

// paperModuli are 27-, 54- and 109-bit primes shaped like the paper's three
// security levels (§3).
func paperModuli() []Nat {
	q27 := FromBig(big.NewInt((1<<27)-39), 1) // 134217689, prime
	q54, _ := new(big.Int).SetString("18014398509481951", 10)
	q109, _ := new(big.Int).SetString("649037107316853453566312041152481", 10)
	return []Nat{q27, FromBig(q54, 2), FromBig(q109, 4)}
}

func TestBarrettReduceMatchesBig(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	for _, q := range paperModuli() {
		br := NewBarrett(q)
		k := q.TrimmedLen()
		qb := q.Big()
		q2 := new(big.Int).Mul(qb, qb)
		for i := 0; i < 300; i++ {
			// Random x < q².
			xb := new(big.Int).Rand(rng, q2)
			x := FromBig(xb, 2*k)
			dst := NewNat(k)
			br.Reduce(dst, x, nil)
			want := new(big.Int).Mod(xb, qb)
			if dst.Big().Cmp(want) != 0 {
				t.Fatalf("q=%v: Reduce(%#x) = %v, want %#x", q, xb, dst, want)
			}
		}
	}
}

func TestBarrettMulModMatchesBig(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, q := range paperModuli() {
		br := NewBarrett(q)
		k := q.TrimmedLen()
		qb := q.Big()
		for i := 0; i < 200; i++ {
			ab := new(big.Int).Rand(rng, qb)
			bb := new(big.Int).Rand(rng, qb)
			a, b := FromBig(ab, k), FromBig(bb, k)
			dst := NewNat(k)
			br.MulMod(dst, a, b, nil)
			want := new(big.Int).Mul(ab, bb)
			want.Mod(want, qb)
			if dst.Big().Cmp(want) != 0 {
				t.Fatalf("q=%v: MulMod mismatch", q)
			}
		}
	}
}

func TestBarrettEdgeValues(t *testing.T) {
	for _, q := range paperModuli() {
		br := NewBarrett(q)
		k := q.TrimmedLen()
		qb := q.Big()
		qm1 := new(big.Int).Sub(qb, big.NewInt(1))
		edges := []*big.Int{
			big.NewInt(0), big.NewInt(1), qm1,
			new(big.Int).Mul(qm1, qm1), // max product of reduced operands
			qb,                         // exactly q reduces to 0
		}
		for _, xb := range edges {
			x := FromBig(xb, 2*k)
			dst := NewNat(k)
			br.Reduce(dst, x, nil)
			want := new(big.Int).Mod(xb, qb)
			if dst.Big().Cmp(want) != 0 {
				t.Fatalf("edge %#x mod %v = %v, want %#x", xb, q, dst, want)
			}
		}
	}
}

func TestBarrettMulModProperty(t *testing.T) {
	q := paperModuli()[2] // 109-bit, 4 limbs
	br := NewBarrett(q)
	qb := q.Big()
	f := func(av, bv [4]uint32) bool {
		a, b := NewNat(4), NewNat(4)
		Mod(a, Nat(av[:]), q, nil)
		Mod(b, Nat(bv[:]), q, nil)
		dst := NewNat(4)
		br.MulMod(dst, a, b, nil)
		want := new(big.Int).Mul(a.Big(), b.Big())
		want.Mod(want, qb)
		return dst.Big().Cmp(want) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestBarrettPanicsOnZeroModulus(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero modulus")
		}
	}()
	NewBarrett(NewNat(4))
}

func BenchmarkBarrettMulMod128(b *testing.B) {
	q := paperModuli()[2]
	br := NewBarrett(q)
	rng := rand.New(rand.NewSource(32))
	x, y := NewNat(4), NewNat(4)
	Mod(x, randNat(rng, 4), q, nil)
	Mod(y, randNat(rng, 4), q, nil)
	dst := NewNat(4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		br.MulMod(dst, x, y, nil)
	}
}
