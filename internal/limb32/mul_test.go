package limb32

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMulSchoolbookMatchesBig(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for wa := 1; wa <= 5; wa++ {
		for wb := 1; wb <= 5; wb++ {
			for i := 0; i < 50; i++ {
				a, b := randNat(rng, wa), randNat(rng, wb)
				dst := NewNat(wa + wb)
				MulSchoolbook(dst, a, b, nil)
				want := new(big.Int).Mul(a.Big(), b.Big())
				if dst.Big().Cmp(want) != 0 {
					t.Fatalf("schoolbook %v*%v = %v, want %#x", a, b, dst, want)
				}
			}
		}
	}
}

func TestKaratsuba2MatchesBig(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	// Edge cases that stress the 33-bit sums and carries.
	edge := []Nat{
		{0, 0}, {1, 0}, {0, 1},
		{0xffffffff, 0xffffffff},
		{0xffffffff, 0}, {0, 0xffffffff},
		{0x80000000, 0x80000000},
	}
	for _, a := range edge {
		for _, b := range edge {
			dst := NewNat(4)
			karatsuba2(dst, a, b, nil)
			want := new(big.Int).Mul(a.Big(), b.Big())
			if dst.Big().Cmp(want) != 0 {
				t.Fatalf("karatsuba2(%v, %v) = %v, want %#x", a, b, dst, want)
			}
		}
	}
	for i := 0; i < 2000; i++ {
		a, b := randNat(rng, 2), randNat(rng, 2)
		dst := NewNat(4)
		karatsuba2(dst, a, b, nil)
		want := new(big.Int).Mul(a.Big(), b.Big())
		if dst.Big().Cmp(want) != 0 {
			t.Fatalf("karatsuba2(%v, %v) = %v, want %#x", a, b, dst, want)
		}
	}
}

func TestKaratsuba4MatchesBig(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	edge := []Nat{
		{0, 0, 0, 0},
		{1, 0, 0, 0},
		{0xffffffff, 0xffffffff, 0xffffffff, 0xffffffff},
		{0, 0, 0, 0xffffffff},
		{0xffffffff, 0, 0, 0xffffffff},
	}
	for _, a := range edge {
		for _, b := range edge {
			dst := NewNat(8)
			karatsuba4(dst, a, b, nil)
			want := new(big.Int).Mul(a.Big(), b.Big())
			if dst.Big().Cmp(want) != 0 {
				t.Fatalf("karatsuba4(%v, %v) = %v, want %#x", a, b, dst, want)
			}
		}
	}
	for i := 0; i < 2000; i++ {
		a, b := randNat(rng, 4), randNat(rng, 4)
		dst := NewNat(8)
		karatsuba4(dst, a, b, nil)
		want := new(big.Int).Mul(a.Big(), b.Big())
		if dst.Big().Cmp(want) != 0 {
			t.Fatalf("karatsuba4(%v, %v) mismatch", a, b)
		}
	}
}

func TestMulDispatch(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, w := range []int{1, 2, 3, 4, 6} {
		for i := 0; i < 100; i++ {
			a, b := randNat(rng, w), randNat(rng, w)
			dst := NewNat(2 * w)
			Mul(dst, a, b, nil)
			want := new(big.Int).Mul(a.Big(), b.Big())
			if dst.Big().Cmp(want) != 0 {
				t.Fatalf("Mul w=%d mismatch", w)
			}
		}
	}
}

func TestMulCommutes(t *testing.T) {
	f := func(av, bv [4]uint32) bool {
		a, b := Nat(av[:]), Nat(bv[:])
		d1, d2 := NewNat(8), NewNat(8)
		Mul(d1, a, b, nil)
		Mul(d2, b, a, nil)
		return Cmp(d1, d2, nil) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMulDistributesOverAdd(t *testing.T) {
	// (a+b)*c == a*c + b*c when a+b does not carry out.
	f := func(av, bv, cv [4]uint32) bool {
		av[3] &= 0x7fffffff
		bv[3] &= 0x7fffffff // ensure no carry out of the 4-limb sum
		a, b, c := Nat(av[:]), Nat(bv[:]), Nat(cv[:])
		sum := NewNat(4)
		if Add(sum, a, b, nil) != 0 {
			return true // skip carrying cases
		}
		lhs := NewNat(8)
		Mul(lhs, sum, c, nil)
		ac, bc := NewNat(8), NewNat(8)
		Mul(ac, a, c, nil)
		Mul(bc, b, c, nil)
		rhs := NewNat(8)
		Add(rhs, ac, bc, nil)
		return Cmp(lhs, rhs, nil) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKaratsubaCountsFewerMuls(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	a, b := randNat(rng, 4), randNat(rng, 4)
	var mk, ms Counts
	dst := NewNat(8)
	Mul(dst, a, b, &mk)
	MulSchoolbook(dst, a, b, &ms)
	if mk[OpMul32] != 9 {
		t.Errorf("karatsuba4 mul32 count = %d, want 9", mk[OpMul32])
	}
	if ms[OpMul32] >= 16 && mk[OpMul32] >= ms[OpMul32] {
		t.Errorf("karatsuba (%d muls) not cheaper than schoolbook (%d)", mk[OpMul32], ms[OpMul32])
	}
}

func TestMulCost(t *testing.T) {
	if MulCost(1) != 1 || MulCost(2) != 3 || MulCost(4) != 9 || MulCost(3) != 9 {
		t.Errorf("MulCost values wrong: %d %d %d %d", MulCost(1), MulCost(2), MulCost(4), MulCost(3))
	}
	// MulCost must agree with what Mul actually charges for the paper widths.
	rng := rand.New(rand.NewSource(15))
	for _, w := range []int{1, 2, 4} {
		var m Counts
		dst := NewNat(2 * w)
		Mul(dst, randNat(rng, w), randNat(rng, w), &m)
		if int(m[OpMul32]) != MulCost(w) {
			t.Errorf("w=%d: Mul charged %d mul32, MulCost says %d", w, m[OpMul32], MulCost(w))
		}
	}
}

func BenchmarkMulKaratsuba4(b *testing.B) {
	rng := rand.New(rand.NewSource(16))
	x, y := randNat(rng, 4), randNat(rng, 4)
	dst := NewNat(8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Mul(dst, x, y, nil)
	}
}

func BenchmarkMulSchoolbook4(b *testing.B) {
	rng := rand.New(rand.NewSource(17))
	x, y := randNat(rng, 4), randNat(rng, 4)
	dst := NewNat(8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MulSchoolbook(dst, x, y, nil)
	}
}
