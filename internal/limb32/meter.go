// Package limb32 implements fixed-width natural-number arithmetic on
// little-endian base-2³² limbs, the native word size of the UPMEM DPU.
//
// Every routine accepts a Meter. When the Meter is non-nil, the routine
// charges it one tick per dynamic instruction the equivalent DPU code would
// execute (register loads, stores, adds with carry, software multiplies,
// loop overhead). Host-side callers pass nil and pay nothing. This is how
// the same arithmetic code serves both as the functional implementation and
// as the instruction-count source for the PIM cycle model.
//
// The paper (§3) represents 27-, 54- and 109-bit polynomial coefficients as
// 32-, 64- and 128-bit integers, i.e. 1, 2 and 4 limbs, "because the UPMEM
// PIM system has native support for 32-bit integers". Wider accumulators
// (up to 8 limbs) appear in Barrett reduction and BFV tensor products.
package limb32

// Op identifies a class of dynamic instruction charged to a Meter.
type Op int

// Instruction classes. The split mirrors the UPMEM DPU ISA as characterized
// by the PrIM benchmarks (Gómez-Luna et al., IEEE Access 2022): 32-bit
// add/addc/sub/logic/shift/move are single-cycle pipeline instructions,
// loads and stores from WRAM are single-cycle, and multiplication wider
// than 16 bits is a software shift-and-add loop (OpMul32) whose cost is a
// parameter of the PIM cost model, not of this package.
const (
	OpAdd   Op = iota // 32-bit add (carry-out produced)
	OpAddC            // 32-bit add with carry-in (addc)
	OpSub             // 32-bit subtract (borrow-out produced)
	OpSubB            // 32-bit subtract with borrow-in
	OpMul32           // 32×32→64 multiply (software on the DPU)
	OpLoad            // WRAM→register load
	OpStore           // register→WRAM store
	OpLogic           // and/or/xor/compare
	OpShift           // shift/rotate
	OpMove            // register move / immediate
	OpLoop            // loop bookkeeping (index increment + branch)
	NumOps
)

var opNames = [NumOps]string{
	"add", "addc", "sub", "subb", "mul32",
	"load", "store", "logic", "shift", "move", "loop",
}

// String returns the mnemonic for the instruction class.
func (o Op) String() string {
	if o < 0 || o >= NumOps {
		return "op?"
	}
	return opNames[o]
}

// Meter receives dynamic instruction counts from arithmetic routines.
// Implementations must tolerate n == 0.
type Meter interface {
	// Tick records n dynamic instructions of class op.
	Tick(op Op, n int)
}

// Counts is a Meter that tallies instructions per class. The zero value is
// ready to use.
type Counts [NumOps]int64

// Tick implements Meter.
func (c *Counts) Tick(op Op, n int) { c[op] += int64(n) }

// Total returns the total dynamic instruction count across all classes.
func (c *Counts) Total() int64 {
	var t int64
	for _, v := range c {
		t += v
	}
	return t
}

// Add accumulates another tally into c.
func (c *Counts) Add(d *Counts) {
	for i := range c {
		c[i] += d[i]
	}
}

// Reset zeroes the tally.
func (c *Counts) Reset() { *c = Counts{} }

// tick charges m if it is non-nil. All limb32 routines funnel through this
// helper so that the nil-Meter fast path costs a single branch.
func tick(m Meter, op Op, n int) {
	if m != nil && n > 0 {
		m.Tick(op, n)
	}
}
