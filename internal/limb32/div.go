package limb32

import "math/bits"

// Division: Knuth, TAOCP vol. 2, Algorithm 4.3.1 D, on base-2³² limbs.
// Division never runs inside the PIM kernels' inner loops (modular
// reduction there is Barrett, built from Mul/Sub), so precise metering
// matters less here; costs are still charged so host-model op counts stay
// honest.

// DivMod computes quot = floor(u / v) and rem = u mod v.
//
// quot must have width ≥ len(u) and rem width ≥ len(v); either may be nil
// to discard that result. u and v are not modified. It panics on division
// by zero.
func DivMod(quot, rem Nat, u, v Nat, m Meter) {
	n := v.TrimmedLen()
	if n == 0 {
		panic("limb32: division by zero")
	}
	ulen := u.TrimmedLen()
	if quot != nil {
		quot.SetZero()
	}
	if rem != nil {
		rem.SetZero()
	}

	// Dividend smaller than divisor: quotient 0, remainder u.
	if ulen < n || (ulen == n && cmpPrefix(u, v, n) < 0) {
		if rem != nil {
			copy(rem, u[:min(len(rem), len(u))])
		}
		tick(m, OpLogic, n)
		return
	}

	if n == 1 {
		divModShort(quot, rem, u[:ulen], v[0], m)
		return
	}

	// Normalize: shift divisor so its top limb has the high bit set.
	s := uint(bits.LeadingZeros32(v[n-1]))
	vn := make([]uint32, n)
	shiftLeftInto(vn, v[:n], s)
	un := make([]uint32, ulen+1)
	shiftLeftInto(un[:ulen], u[:ulen], s)
	if s > 0 {
		un[ulen] = u[ulen-1] >> (32 - s)
	}
	tick(m, OpShift, 2*(n+ulen))

	const b = 1 << 32
	for j := ulen - n; j >= 0; j-- {
		// Estimate qhat from the top two limbs of the current remainder.
		top := uint64(un[j+n])<<32 | uint64(un[j+n-1])
		qhat := top / uint64(vn[n-1])
		rhat := top % uint64(vn[n-1])
		for qhat >= b || qhat*uint64(vn[n-2]) > rhat<<32|uint64(un[j+n-2]) {
			qhat--
			rhat += uint64(vn[n-1])
			if rhat >= b {
				break
			}
		}
		tick(m, OpMul32, 2) // divide step modeled as multiplies on the DPU
		tick(m, OpLogic, 3)

		// Multiply-and-subtract: un[j..j+n] -= qhat * vn.
		var borrow, carry uint64
		for i := 0; i < n; i++ {
			p := qhat * uint64(vn[i])
			pl := (p & 0xffffffff) + carry
			carry = p>>32 + pl>>32
			d := uint64(un[j+i]) - (pl & 0xffffffff) - borrow
			un[j+i] = uint32(d)
			borrow = (d >> 32) & 1
			tick(m, OpMul32, 1)
			tick(m, OpAddC, 1)
			tick(m, OpSubB, 1)
			tick(m, OpLoop, 1)
		}
		d := uint64(un[j+n]) - carry - borrow
		un[j+n] = uint32(d)
		tick(m, OpSubB, 1)

		if (d>>32)&1 != 0 {
			// qhat was one too large: add back.
			qhat--
			var c uint64
			for i := 0; i < n; i++ {
				s := uint64(un[j+i]) + uint64(vn[i]) + c
				un[j+i] = uint32(s)
				c = s >> 32
				tick(m, OpAddC, 1)
			}
			un[j+n] = uint32(uint64(un[j+n]) + c)
		}
		if quot != nil && j < len(quot) {
			quot[j] = uint32(qhat)
			tick(m, OpStore, 1)
		}
	}

	if rem != nil {
		// Denormalize the remainder.
		for i := 0; i < n && i < len(rem); i++ {
			r := un[i] >> s
			if s > 0 && i+1 < len(un) {
				r |= un[i+1] << (32 - s)
			}
			rem[i] = r
		}
		tick(m, OpShift, 2*n)
	}
}

// divModShort divides by a single limb.
func divModShort(quot, rem Nat, u []uint32, d uint32, m Meter) {
	var r uint64
	for i := len(u) - 1; i >= 0; i-- {
		cur := r<<32 | uint64(u[i])
		q := cur / uint64(d)
		r = cur % uint64(d)
		if quot != nil && i < len(quot) {
			quot[i] = uint32(q)
		}
		tick(m, OpMul32, 1)
		tick(m, OpLoop, 1)
	}
	if rem != nil {
		rem[0] = uint32(r)
	}
}

// Mod computes rem = u mod v (widths: len(rem) ≥ TrimmedLen(v)).
func Mod(rem Nat, u, v Nat, m Meter) { DivMod(nil, rem, u, v, m) }

// cmpPrefix compares the first n limbs of a and b.
func cmpPrefix(a, b Nat, n int) int {
	for i := n - 1; i >= 0; i-- {
		switch {
		case a[i] < b[i]:
			return -1
		case a[i] > b[i]:
			return 1
		}
	}
	return 0
}

// shiftLeftInto writes src << s into dst (same length), s < 32, dropping
// bits shifted past the top of dst.
func shiftLeftInto(dst, src []uint32, s uint) {
	if s == 0 {
		copy(dst, src)
		return
	}
	for i := len(src) - 1; i >= 0; i-- {
		v := src[i] << s
		if i > 0 {
			v |= src[i-1] >> (32 - s)
		}
		dst[i] = v
	}
}
