package limb32

import (
	"fmt"
	"math/big"
)

// Nat is a fixed-width natural number stored as little-endian base-2³²
// limbs. Unlike math/big, a Nat never renormalizes: its length is its
// storage width, exactly as a buffer in DPU WRAM would be laid out. High
// limbs may be zero.
type Nat []uint32

// NewNat returns a zero Nat with the given limb width.
func NewNat(width int) Nat {
	if width <= 0 {
		panic("limb32: width must be positive")
	}
	return make(Nat, width)
}

// FromUint64 returns a width-limb Nat holding v. It panics if v does not
// fit (width < 2 and v needs the high limb).
func FromUint64(v uint64, width int) Nat {
	n := NewNat(width)
	n[0] = uint32(v)
	if width >= 2 {
		n[1] = uint32(v >> 32)
	} else if v>>32 != 0 {
		panic("limb32: uint64 value does not fit in one limb")
	}
	return n
}

// Uint64 returns the low 64 bits of n.
func (n Nat) Uint64() uint64 {
	v := uint64(n[0])
	if len(n) >= 2 {
		v |= uint64(n[1]) << 32
	}
	return v
}

// FromBig returns a width-limb Nat holding v, which must be non-negative
// and fit in width limbs.
func FromBig(v *big.Int, width int) Nat {
	if v.Sign() < 0 {
		panic("limb32: FromBig of negative value")
	}
	if v.BitLen() > 32*width {
		panic(fmt.Sprintf("limb32: value of %d bits does not fit in %d limbs", v.BitLen(), width))
	}
	n := NewNat(width)
	words := v.Bits()
	for i, w := range words { // big.Word is 64-bit on all supported platforms
		if 2*i < width {
			n[2*i] = uint32(w)
		}
		if 2*i+1 < width {
			n[2*i+1] = uint32(uint64(w) >> 32)
		}
	}
	return n
}

// SetBig packs v — non-negative, fitting n's width — into n in place,
// the allocation-free counterpart of FromBig for hot loops.
func (n Nat) SetBig(v *big.Int) {
	if v.Sign() < 0 {
		panic("limb32: SetBig of negative value")
	}
	if v.BitLen() > 32*len(n) {
		panic(fmt.Sprintf("limb32: value of %d bits does not fit in %d limbs", v.BitLen(), len(n)))
	}
	for i := range n {
		n[i] = 0
	}
	for i, w := range v.Bits() { // big.Word is 64-bit on all supported platforms
		if 2*i < len(n) {
			n[2*i] = uint32(w)
		}
		if 2*i+1 < len(n) {
			n[2*i+1] = uint32(uint64(w) >> 32)
		}
	}
}

// Big returns n as a math/big integer.
func (n Nat) Big() *big.Int {
	v := new(big.Int)
	for i := len(n) - 1; i >= 0; i-- {
		v.Lsh(v, 32)
		v.Or(v, big.NewInt(int64(n[i])))
	}
	return v
}

// Clone returns an independent copy of n.
func (n Nat) Clone() Nat {
	c := make(Nat, len(n))
	copy(c, n)
	return c
}

// SetZero clears every limb.
func (n Nat) SetZero() {
	for i := range n {
		n[i] = 0
	}
}

// Set copies src into n; widths must match.
func (n Nat) Set(src Nat) {
	if len(n) != len(src) {
		panic("limb32: Set width mismatch")
	}
	copy(n, src)
}

// IsZero reports whether every limb is zero.
func (n Nat) IsZero() bool {
	for _, l := range n {
		if l != 0 {
			return false
		}
	}
	return true
}

// BitLen returns the position of the highest set bit (0 for zero).
func (n Nat) BitLen() int {
	for i := len(n) - 1; i >= 0; i-- {
		if n[i] != 0 {
			b := 0
			for v := n[i]; v != 0; v >>= 1 {
				b++
			}
			return 32*i + b
		}
	}
	return 0
}

// TrimmedLen returns the number of limbs up to and including the most
// significant non-zero limb (0 for zero).
func (n Nat) TrimmedLen() int {
	for i := len(n) - 1; i >= 0; i-- {
		if n[i] != 0 {
			return i + 1
		}
	}
	return 0
}

// String formats n in hexadecimal.
func (n Nat) String() string { return "0x" + n.Big().Text(16) }

// Cmp compares a and b limb-wise, returning -1, 0 or +1. Widths must match.
// Charges one compare per limb examined (most-significant first, early out).
func Cmp(a, b Nat, m Meter) int {
	if len(a) != len(b) {
		panic("limb32: Cmp width mismatch")
	}
	for i := len(a) - 1; i >= 0; i-- {
		tick(m, OpLoad, 2)
		tick(m, OpLogic, 1)
		switch {
		case a[i] < b[i]:
			return -1
		case a[i] > b[i]:
			return 1
		}
	}
	return 0
}

// Add computes dst = a + b, returning the carry-out (0 or 1). All operands
// must share a width; dst may alias a or b. The metered cost mirrors the
// DPU loop in the paper's homomorphic-addition kernel: per limb two WRAM
// loads, one add (addc after the first limb), one store, plus loop
// bookkeeping.
func Add(dst, a, b Nat, m Meter) uint32 {
	w := len(dst)
	if len(a) != w || len(b) != w {
		panic("limb32: Add width mismatch")
	}
	var carry uint64
	for i := 0; i < w; i++ {
		s := uint64(a[i]) + uint64(b[i]) + carry
		dst[i] = uint32(s)
		carry = s >> 32
	}
	if m != nil {
		m.Tick(OpLoad, 2*w)
		m.Tick(OpAdd, 1)
		if w > 1 {
			m.Tick(OpAddC, w-1)
		}
		m.Tick(OpStore, w)
		m.Tick(OpLoop, w)
	}
	return uint32(carry)
}

// Sub computes dst = a - b, returning the borrow-out (0 or 1).
func Sub(dst, a, b Nat, m Meter) uint32 {
	w := len(dst)
	if len(a) != w || len(b) != w {
		panic("limb32: Sub width mismatch")
	}
	var borrow uint64
	for i := 0; i < w; i++ {
		d := uint64(a[i]) - uint64(b[i]) - borrow
		dst[i] = uint32(d)
		borrow = (d >> 32) & 1
	}
	if m != nil {
		m.Tick(OpLoad, 2*w)
		m.Tick(OpSub, 1)
		if w > 1 {
			m.Tick(OpSubB, w-1)
		}
		m.Tick(OpStore, w)
		m.Tick(OpLoop, w)
	}
	return uint32(borrow)
}

// AddMod computes dst = (a + b) mod q, assuming a, b < q. It performs the
// add followed by a conditional subtract, the standard lazy modular add.
func AddMod(dst, a, b, q Nat, m Meter) {
	carry := Add(dst, a, b, m)
	// Subtract q when the sum overflowed the width or reached q.
	if carry != 0 || Cmp(dst, q, m) >= 0 {
		Sub(dst, dst, q, m)
	}
}

// SubMod computes dst = (a - b) mod q, assuming a, b < q.
func SubMod(dst, a, b, q Nat, m Meter) {
	if Sub(dst, a, b, m) != 0 {
		Add(dst, dst, q, m)
	}
}

// NegMod computes dst = (-a) mod q, assuming a < q.
func NegMod(dst, a, q Nat, m Meter) {
	if a.IsZero() {
		dst.SetZero()
		tick(m, OpLogic, len(a))
		return
	}
	Sub(dst, q, a, m)
}

// ShiftLeftLimbs sets dst = a << (32*k) within dst's width, zero filling.
// dst and a may alias.
func ShiftLeftLimbs(dst, a Nat, k int, m Meter) {
	w := len(dst)
	for i := w - 1; i >= 0; i-- {
		var v uint32
		if i-k >= 0 && i-k < len(a) {
			v = a[i-k]
		}
		dst[i] = v
	}
	tick(m, OpMove, w)
}

// ShiftRightLimbs sets dst = a >> (32*k) within dst's width, zero filling.
func ShiftRightLimbs(dst, a Nat, k int, m Meter) {
	w := len(dst)
	for i := 0; i < w; i++ {
		var v uint32
		if i+k < len(a) {
			v = a[i+k]
		}
		dst[i] = v
	}
	tick(m, OpMove, w)
}

// ShiftRightBits sets dst = a >> s for 0 <= s < 32, within dst's width.
func ShiftRightBits(dst, a Nat, s uint, m Meter) {
	w := len(dst)
	if len(a) != w {
		panic("limb32: ShiftRightBits width mismatch")
	}
	if s == 0 {
		copy(dst, a)
		tick(m, OpMove, w)
		return
	}
	for i := 0; i < w; i++ {
		v := a[i] >> s
		if i+1 < w {
			v |= a[i+1] << (32 - s)
		}
		dst[i] = v
	}
	tick(m, OpShift, 2*w)
	tick(m, OpLogic, w)
}
