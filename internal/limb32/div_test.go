package limb32

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDivModMatchesBig(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	for wu := 1; wu <= 8; wu++ {
		for wv := 1; wv <= wu; wv++ {
			for i := 0; i < 80; i++ {
				u, v := randNat(rng, wu), randNat(rng, wv)
				if v.IsZero() {
					v[0] = 1
				}
				quot, rem := NewNat(wu), NewNat(wv)
				DivMod(quot, rem, u, v, nil)
				wantQ, wantR := new(big.Int).QuoRem(u.Big(), v.Big(), new(big.Int))
				if quot.Big().Cmp(wantQ) != 0 {
					t.Fatalf("wu=%d wv=%d: %v / %v quot = %v, want %#x", wu, wv, u, v, quot, wantQ)
				}
				if rem.Big().Cmp(wantR) != 0 {
					t.Fatalf("wu=%d wv=%d: %v %% %v rem = %v, want %#x", wu, wv, u, v, rem, wantR)
				}
			}
		}
	}
}

func TestDivModSmallDividend(t *testing.T) {
	u := FromUint64(5, 2)
	v := FromUint64(100, 2)
	quot, rem := NewNat(2), NewNat(2)
	DivMod(quot, rem, u, v, nil)
	if !quot.IsZero() || rem.Uint64() != 5 {
		t.Errorf("5/100: quot=%v rem=%v", quot, rem)
	}
}

func TestDivModByOne(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	u := randNat(rng, 4)
	one := FromUint64(1, 4)
	quot, rem := NewNat(4), NewNat(4)
	DivMod(quot, rem, u, one, nil)
	if Cmp(quot, u, nil) != 0 || !rem.IsZero() {
		t.Errorf("u/1: quot=%v rem=%v, want %v/0", quot, rem, u)
	}
}

func TestDivModPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on division by zero")
		}
	}()
	DivMod(NewNat(2), NewNat(2), FromUint64(1, 2), NewNat(2), nil)
}

func TestDivModAddBackCase(t *testing.T) {
	// Construct the classic add-back trigger: divisor with max top limb,
	// dividend shaped to force qhat overestimation.
	u := Nat{0, 0, 0x00000001, 0x80000000, 0x7fffffff, 0}
	v := Nat{0xffffffff, 0xffffffff, 0x80000000}
	quot, rem := NewNat(6), NewNat(3)
	DivMod(quot, rem, u, v, nil)
	wantQ, wantR := new(big.Int).QuoRem(u.Big(), v.Big(), new(big.Int))
	if quot.Big().Cmp(wantQ) != 0 || rem.Big().Cmp(wantR) != 0 {
		t.Fatalf("add-back case: quot=%v rem=%v, want %#x %#x", quot, rem, wantQ, wantR)
	}
}

func TestDivModReconstruction(t *testing.T) {
	// u == quot*v + rem for random inputs (property-based).
	f := func(uv [6]uint32, vv [3]uint32) bool {
		u, v := Nat(uv[:]), Nat(vv[:])
		if v.IsZero() {
			return true
		}
		quot, rem := NewNat(6), NewNat(3)
		DivMod(quot, rem, u, v, nil)
		recon := new(big.Int).Mul(quot.Big(), v.Big())
		recon.Add(recon, rem.Big())
		return recon.Cmp(u.Big()) == 0 && rem.Big().Cmp(v.Big()) < 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestModOnly(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	u, v := randNat(rng, 6), randNat(rng, 3)
	if v.IsZero() {
		v[0] = 7
	}
	rem := NewNat(3)
	Mod(rem, u, v, nil)
	want := new(big.Int).Mod(u.Big(), v.Big())
	if rem.Big().Cmp(want) != 0 {
		t.Errorf("Mod mismatch: %v, want %#x", rem, want)
	}
}
