package dcrt

import (
	"math/big"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/limb32"
	"repro/internal/poly"
)

// Property tests for the fast base conversion and the RNS-native
// scale-and-round, against big.Int oracles, over adversarial inputs:
// values at the ±2^BoundBits extremes, values whose remainder t·x mod q
// lands next to the ±q/2 centering boundary, tiny values near zero
// (the lift-counter danger zone the quarter shift exists for), and bulk
// random sweeps.

// residuePoly builds a residue-domain (non-NTT) element whose channel i
// holds vals[j] mod p_i — the exact-integer representation convModQ and
// ScaleRound consume after intt.
func residuePoly(c *Context, vals []*big.Int) *Poly {
	p := c.NewPoly()
	t := new(big.Int)
	for i, prime := range c.Basis.Primes {
		pb := new(big.Int).SetUint64(prime)
		for j, v := range vals {
			p.Coeffs[i][j] = t.Mod(v, pb).Uint64()
		}
	}
	return p
}

// testValues returns n signed integers covering the adversarial corners
// for the given context.
func testValues(c *Context, n int, rng *rand.Rand) []*big.Int {
	q := c.Mod.QBig
	bound := new(big.Int).Lsh(big.NewInt(1), uint(c.BoundBits))
	vals := make([]*big.Int, 0, n)
	add := func(v *big.Int) {
		if len(vals) < n {
			vals = append(vals, v)
		}
	}
	// Extremes and near-zero (the lift counter's danger zone without the
	// quarter shift).
	add(new(big.Int).Set(bound))
	add(new(big.Int).Neg(bound))
	add(big.NewInt(0))
	add(big.NewInt(1))
	add(big.NewInt(-1))
	add(new(big.Int).Sub(bound, big.NewInt(1)))
	add(new(big.Int).Sub(big.NewInt(0), new(big.Int).Sub(bound, big.NewInt(1))))
	// Values v = m·q + s with t·? — directly target the centering
	// boundary: pick v so that v mod q sits at (q±1)/2 and just beside.
	half := new(big.Int).Rsh(q, 1) // (q-1)/2 for odd q
	for _, off := range []int64{-1, 0, 1, 2} {
		s := new(big.Int).Add(half, big.NewInt(off))
		m := new(big.Int).Rand(rng, new(big.Int).Div(bound, q))
		v := new(big.Int).Mul(m, q)
		v.Add(v, s)
		if rng.Intn(2) == 0 {
			v.Neg(v)
		}
		add(v)
	}
	// Random fill, signed, up to the full bound.
	for len(vals) < n {
		v := new(big.Int).Rand(rng, bound)
		if rng.Intn(2) == 0 {
			v.Neg(v)
		}
		add(v)
	}
	return vals
}

func convContexts(t *testing.T, n int) []*Context {
	t.Helper()
	var out []*Context
	for _, qs := range testModuli {
		q, _ := new(big.Int).SetString(qs, 10)
		mod, err := poly.NewModulus(q)
		if err != nil {
			t.Fatal(err)
		}
		c, err := GetContext(mod, n, 2*mod.Bits()+40)
		if err != nil {
			t.Fatal(err)
		}
		if !c.RNSNative() {
			t.Fatalf("context for %d-bit modulus is not RNS-native", mod.Bits())
		}
		out = append(out, c)
	}
	return out
}

// TestConvModQOracle drives the fast base conversion against x mod q
// computed with big.Int, over boundary and random inputs.
func TestConvModQOracle(t *testing.T) {
	const n = 64
	rng := rand.New(rand.NewSource(7))
	for _, c := range convContexts(t, n) {
		vals := testValues(c, n, rng)
		x := residuePoly(c, vals)
		lo := make([]uint64, n)
		hi := make([]uint64, n)
		c.convModQ(x, lo, hi)
		for j, v := range vals {
			want := new(big.Int).Mod(v, c.Mod.QBig)
			got := new(big.Int).SetUint64(hi[j])
			got.Lsh(got, 64)
			got.Or(got, new(big.Int).SetUint64(lo[j]))
			if got.Cmp(want) != 0 {
				t.Fatalf("q=%d bits, coeff %d (x=%v): convModQ=%v want %v",
					c.Mod.Bits(), j, v, got, want)
			}
		}
	}
}

// TestScaleRoundOracle drives the full RNS-native rescale against the
// big.Int round-half-away-from-zero oracle, including remainders placed
// hard against the ±q/2 sign boundary.
func TestScaleRoundOracle(t *testing.T) {
	const n = 64
	rng := rand.New(rand.NewSource(11))
	for _, tMod := range []uint64{2, 16, 65537} {
		for _, c := range convContexts(t, n) {
			vals := testValues(c, n, rng)
			x := residuePoly(c, vals)
			// ScaleRound expects the NTT domain; transform the residues in.
			for i := range x.Coeffs {
				c.Tabs[i].Forward(x.Coeffs[i])
			}
			got := c.ScaleRounder(tMod).ScaleRound(x)
			tBig := new(big.Int).SetUint64(tMod)
			half := new(big.Int).Rsh(c.Mod.QBig, 1)
			for j, v := range vals {
				num := new(big.Int).Mul(v, tBig)
				if num.Sign() >= 0 {
					num.Add(num, half)
				} else {
					num.Sub(num, half)
				}
				num.Quo(num, c.Mod.QBig)
				num.Mod(num, c.Mod.QBig)
				if got.Coeff(j).Big().Cmp(num) != 0 {
					t.Fatalf("q=%d bits t=%d coeff %d (x=%v): ScaleRound=%v want %v",
						c.Mod.Bits(), tMod, j, v, got.Coeff(j).Big(), num)
				}
			}
		}
	}
}

// TestScaleRoundParallel runs limb-parallel ScaleRound from many
// goroutines against precomputed answers — under -race this is the
// kernel's thread-safety proof (shared context, pooled scratch, shared
// rounder cache).
func TestScaleRoundParallel(t *testing.T) {
	const n = 256
	rng := rand.New(rand.NewSource(13))
	c := convContexts(t, n)[1] // 54-bit modulus
	sr := c.ScaleRounder(16)
	inputs := make([]*Poly, 8)
	want := make([]*poly.Poly, len(inputs))
	for g := range inputs {
		vals := testValues(c, n, rng)
		x := residuePoly(c, vals)
		for i := range x.Coeffs {
			c.Tabs[i].Forward(x.Coeffs[i])
		}
		inputs[g] = x
		want[g] = sr.ScaleRound(x)
	}
	var wg sync.WaitGroup
	errc := make(chan string, 4*len(inputs))
	for rep := 0; rep < 4; rep++ {
		for g := range inputs {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				if !c.ScaleRounder(16).ScaleRound(inputs[g]).Equal(want[g]) {
					errc <- "parallel ScaleRound diverged"
				}
			}(g)
		}
	}
	wg.Wait()
	close(errc)
	for msg := range errc {
		t.Fatal(msg)
	}
}

// TestDigitsToRNSOracle checks the limb-shift digit decomposition + NTT
// against the big.Int shift-and-mask oracle recombined through FromRNS.
func TestDigitsToRNSOracle(t *testing.T) {
	const n = 64
	rng := rand.New(rand.NewSource(17))
	for _, c := range convContexts(t, n) {
		base := uint(13)
		count := (c.Mod.Bits() + int(base) - 1) / int(base)
		p := poly.NewPoly(n, c.Mod.W)
		for j := 0; j < n; j++ {
			v := new(big.Int).Rand(rng, c.Mod.QBig)
			p.Coeff(j).Set(limb32.FromBig(v, c.Mod.W))
		}
		digits := c.DigitsToRNS(p, base, count)
		mask := new(big.Int).SetUint64(1<<base - 1)
		for d, dp := range digits {
			back := c.FromRNS(dp)
			for j := 0; j < n; j++ {
				want := new(big.Int).Rsh(p.Coeff(j).Big(), uint(d)*base)
				want.And(want, mask)
				if back.Coeff(j).Big().Cmp(want) != 0 {
					t.Fatalf("q=%d bits digit %d coeff %d: got %v want %v",
						c.Mod.Bits(), d, j, back.Coeff(j).Big(), want)
				}
			}
		}
	}
}

// boundedTestValues is testValues clamped to |v| < 2^magBits — the
// validity window RoundModT's limb-0 quotient read is gated on.
func boundedTestValues(c *Context, n, magBits int, rng *rand.Rand) []*big.Int {
	bound := new(big.Int).Lsh(big.NewInt(1), uint(magBits))
	vals := testValues(c, n, rng)
	for _, v := range vals {
		if v.CmpAbs(bound) >= 0 {
			v.Mod(v, bound)
		}
	}
	return vals
}

// TestRoundModTOracle drives the RNS-native decryption tail — the
// ⌊t·X/q⌉ mod t fold — against the big.Int round-half-away-from-zero +
// Euclidean-Mod oracle used by the schoolbook Decrypt.
func TestRoundModTOracle(t *testing.T) {
	const n = 64
	rng := rand.New(rand.NewSource(17))
	for _, tMod := range []uint64{2, 16, 65537} {
		for _, c := range convContexts(t, n) {
			sr := c.ScaleRounder(tMod)
			// The decryption phase magnitude is ~q·n²; give the oracle the
			// widest window the limb-0 read supports.
			magBits := 0
			for m := 1; m < c.BoundBits; m++ {
				if sr.CanRoundModT(m) {
					magBits = m
				}
			}
			if magBits < c.Mod.Bits()+10 {
				t.Fatalf("q=%d bits t=%d: RoundModT window %d too narrow for decryption",
					c.Mod.Bits(), tMod, magBits)
			}
			vals := boundedTestValues(c, n, magBits, rng)
			x := residuePoly(c, vals)
			for i := range x.Coeffs {
				c.Tabs[i].Forward(x.Coeffs[i])
			}
			out := make([]uint64, n)
			sr.RoundModT(x, out)
			tBig := new(big.Int).SetUint64(tMod)
			half := new(big.Int).Rsh(c.Mod.QBig, 1)
			for j, v := range vals {
				num := new(big.Int).Mul(v, tBig)
				if num.Sign() >= 0 {
					num.Add(num, half)
				} else {
					num.Sub(num, half)
				}
				num.Quo(num, c.Mod.QBig)
				num.Mod(num, tBig)
				if out[j] != num.Uint64() {
					t.Fatalf("q=%d bits t=%d coeff %d (x=%v): RoundModT=%d want %v",
						c.Mod.Bits(), tMod, j, v, out[j], num)
				}
			}
		}
	}
}
